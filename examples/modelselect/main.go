// Modelselect: hyperparameter search as a workflow operator — the
// paper's Table 1 "selection: fit(p1, . . . , pn)" composition (a reduce
// implemented in terms of learning, inference, and reduce), expressed as
// a HELIX Learner whose function runs a cross-validated grid search.
//
// Iteration 1 widens the hyperparameter grid (an L/I change): the
// assembled dataset is reused from disk and only the search reruns.
//
//	go run ./examples/modelselect
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"helix"
	"helix/internal/ml"
)

func main() {
	helix.RegisterType(&ml.Dataset{})
	helix.RegisterType(ml.DenseVector(nil))
	helix.RegisterType(&ml.SparseVector{})
	helix.RegisterType(&ml.LRModel{})
	helix.RegisterType(searchOutput{})
	helix.RegisterType(map[string]float64(nil))

	dir, err := os.MkdirTemp("", "helix-modelselect-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sess, err := helix.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("iteration 0: narrow grid {0.01, 0.1}")
	run(ctx, sess, []float64{0.01, 0.1})

	fmt.Println("\niteration 1: widened grid (L/I change) — dataset reused")
	run(ctx, sess, []float64{0.001, 0.01, 0.1, 1, 10})
}

type searchOutput struct {
	BestReg   float64
	BestScore float64
	TestAcc   float64
}

func run(ctx context.Context, sess *helix.Session, grid []float64) {
	res, err := sess.Run(ctx, buildWorkflow(grid))
	if err != nil {
		log.Fatal(err)
	}
	out := res.Values["selected"].(searchOutput)
	fmt.Printf("  wall %v; best regParam=%g (cv acc %.3f), test acc %.3f\n",
		res.Wall.Round(1000), out.BestReg, out.BestScore, out.TestAcc)
	for _, name := range []string{"data", "dataset", "selected"} {
		n := res.Nodes[name]
		fmt.Printf("  %-9s state=%-2v time=%.3fs\n", name, n.State, n.Seconds)
	}
}

func buildWorkflow(grid []float64) *helix.Workflow {
	wf := helix.New("modelselect")

	data := wf.Source("data", "synth rows=3000 seed=17", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		time.Sleep(40 * time.Millisecond) // simulate reading from slow storage
		rng := rand.New(rand.NewSource(17))
		dim := 12
		w := make([]float64, dim)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		ds := &ml.Dataset{Dim: dim}
		for i := 0; i < 3000; i++ {
			x := make(ml.DenseVector, dim)
			var dot float64
			for j := range x {
				x[j] = rng.NormFloat64()
				dot += w[j] * x[j]
			}
			y := 0.0
			if dot+rng.NormFloat64() > 0 {
				y = 1
			}
			ds.Examples = append(ds.Examples, ml.Example{X: x, Y: y, Train: i%5 != 0})
		}
		return ds, nil
	})

	dataset := wf.Synthesizer("dataset", "identity v1", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		return in[0], nil
	}, data)

	gridParams := fmt.Sprintf("GridSearch(LR, reg=%v, folds=4)", grid)
	wf.Learner("selected", gridParams, func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		ds := in[0].(*ml.Dataset)
		candidates := make([]ml.Fitter, len(grid))
		for i, reg := range grid {
			candidates[i] = ml.LRFitter{LogisticRegression: ml.LogisticRegression{RegParam: reg, Epochs: 10, Seed: 1}}
		}
		res, err := ml.GridSearch(candidates, ds, 4, func(m ml.Model, fold *ml.Dataset) float64 {
			return ml.BinaryAccuracy(m, fold)
		})
		if err != nil {
			return nil, err
		}
		_, test := ds.Split()
		return searchOutput{
			BestReg:   grid[res.BestIndex],
			BestScore: res.BestScore,
			TestAcc:   ml.BinaryAccuracy(res.Model, test),
		}, nil
	}, dataset).IsOutput()

	return wf
}
