// MNIST: the digit-classification workflow from KeystoneML's evaluation
// (paper §6.2) on the public API — synthetic digit images, a
// NONDETERMINISTIC random-Fourier-feature preprocessing step, a softmax
// classifier, and an accuracy reducer.
//
// The second iteration changes only the evaluation (PPR): HELIX loads the
// materialized predictions and prunes both the classifier and the
// nondeterministic feature map, which is never materialized (its output
// is a single random draw and cannot stand in for a fresh one).
//
//	go run ./examples/mnist
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync/atomic"

	"helix"
	"helix/internal/data"
	"helix/internal/ml"
)

type predictions struct {
	Scores, Labels []float64
	Train          []bool
}

var runCounter atomic.Int64

func main() {
	helix.RegisterType([]data.Image(nil))
	helix.RegisterType(&ml.Dataset{})
	helix.RegisterType(ml.DenseVector(nil))
	helix.RegisterType(&ml.SparseVector{})
	helix.RegisterType(predictions{})
	helix.RegisterType(map[string]float64(nil))

	dir, err := os.MkdirTemp("", "helix-mnist-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sess, err := helix.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("iteration 0: initial workflow")
	run(ctx, sess, "accuracy")

	fmt.Println("\niteration 1: PPR change — predictions loaded, RFF + learner pruned")
	run(ctx, sess, "accuracy+errors")
}

func run(ctx context.Context, sess *helix.Session, metric string) {
	res, err := sess.Run(ctx, buildWorkflow(metric))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wall %v; %v\n", res.Wall.Round(1000), res.Values["checked"])
	for _, name := range []string{"images", "pixels", "rffFeatures", "digitPred", "checked"} {
		n := res.Nodes[name]
		fmt.Printf("  %-12s state=%-2v time=%.3fs\n", name, n.State, n.Seconds)
	}
}

func buildWorkflow(metric string) *helix.Workflow {
	wf := helix.New("mnist-example")

	src := wf.Source("images", "digits train=1200 test=300 seed=9", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		return data.GenerateDigits(data.DigitsConfig{TrainImages: 1200, TestImages: 300, Side: 16, Seed: 9}), nil
	})

	pixels := wf.Scanner("pixels", "flatten", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		imgs := in[0].([]data.Image)
		ds := &ml.Dataset{Dim: 256, Examples: make([]ml.Example, len(imgs))}
		for i, im := range imgs {
			ds.Examples[i] = ml.Example{X: ml.DenseVector(im.Pixels), Y: float64(im.Label), Train: im.Train}
		}
		return ds, nil
	}, src)

	rff := wf.Extractor("rffFeatures", "RandomFFT D=192 gamma=0.1", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		ds := in[0].(*ml.Dataset)
		proj, err := ml.NewRFF(ds.Dim, 192, 0.1, 1000+runCounter.Add(1))
		if err != nil {
			return nil, err
		}
		return proj.ProjectDataset(ds), nil
	}, pixels)
	rff.Nondeterministic()

	pred := wf.Learner("digitPred", "Softmax reg=0.01 epochs=12", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		ds := in[0].(*ml.Dataset)
		model, err := ml.SoftmaxRegression{Classes: 10, RegParam: 0.01, Epochs: 12, LearningRate: 0.5, Seed: 7}.Fit(ds)
		if err != nil {
			return nil, err
		}
		p := predictions{
			Scores: make([]float64, len(ds.Examples)),
			Labels: make([]float64, len(ds.Examples)),
			Train:  make([]bool, len(ds.Examples)),
		}
		for i, e := range ds.Examples {
			p.Scores[i] = model.Predict(e.X)
			p.Labels[i] = e.Y
			p.Train[i] = e.Train
		}
		return p, nil
	}, rff)

	wf.Reducer("checked", "Reducer metric="+metric, func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		p := in[0].(predictions)
		var n, correct int
		for i := range p.Scores {
			if p.Train[i] {
				continue
			}
			n++
			if p.Scores[i] == p.Labels[i] {
				correct++
			}
		}
		out := map[string]float64{"accuracy": float64(correct) / float64(n)}
		if metric == "accuracy+errors" {
			out["errors"] = float64(n - correct)
		}
		return out, nil
	}, pred).
		IsOutput()

	return wf
}
