// Quickstart: the paper's census income-prediction workflow (Figure 3a)
// on the public HELIX-Go API, run for two iterations to show
// cross-iteration reuse.
//
// The first run computes everything and selectively materializes
// intermediates; the second run changes only the evaluation metric (a PPR
// iteration), so HELIX loads the learner's predictions from disk and
// prunes the whole preprocessing and training subgraph.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"helix"
)

// row is one parsed record: column → value.
type row map[string]string

// generateCSV emits a small census-like CSV with a learnable signal:
// higher education and age push income over the threshold.
func generateCSV(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	edus := []string{"HS", "College", "Bachelors", "Masters", "PhD"}
	var b strings.Builder
	b.WriteString("age,education,hours,target\n")
	for i := 0; i < n; i++ {
		age := 20 + rng.Intn(45)
		edu := rng.Intn(len(edus))
		hours := 20 + rng.Intn(40)
		score := float64(edu)*0.9 + float64(age)*0.05 + float64(hours)*0.04 + rng.NormFloat64()
		target := "<=50K"
		if score > 4.5 {
			target = ">50K"
		}
		fmt.Fprintf(&b, "%d,%s,%d,%s\n", age, edus[edu], hours, target)
	}
	return b.String()
}

// example is one assembled training example.
type example struct {
	Features []float64
	Label    float64
	Train    bool
}

// predictions carries scores and labels to the evaluation step.
type predictions struct {
	Scores, Labels []float64
	Train          []bool
}

func main() {
	// Values that cross materialization must be gob-registered.
	helix.RegisterType("")
	helix.RegisterType([]row(nil))
	helix.RegisterType([]example(nil))
	helix.RegisterType(predictions{})
	helix.RegisterType(map[string]float64(nil))

	dir, err := os.MkdirTemp("", "helix-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A session observer streams structured run events: here, one line
	// per retired operator with its state and measured time.
	sess, err := helix.Open(dir, helix.WithObserver(func(ev helix.RunEvent) {
		if e, ok := ev.(helix.NodeEvent); ok && e.Phase == helix.NodeRetired {
			fmt.Printf("    [event] %-8s %-7v %.3fs\n", e.Name, e.State, e.Seconds)
		}
	}))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("iteration 0: initial workflow (computes everything)")
	res, err := sess.Run(ctx, buildWorkflow("accuracy"))
	if err != nil {
		log.Fatal(err)
	}
	report(res)

	fmt.Println("\niteration 1: PPR change (evaluation metric) — DPR and L/I reused")
	res, err = sess.Run(ctx, buildWorkflow("accuracy+baserate"))
	if err != nil {
		log.Fatal(err)
	}
	report(res)
}

// buildWorkflow declares the census workflow; metric is the PPR knob.
func buildWorkflow(metric string) *helix.Workflow {
	wf := helix.New("census-quickstart")

	data := wf.Source("data", "census v1 rows=4000 seed=7", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		return generateCSV(4000, 7), nil
	})

	rows := wf.Scanner("rows", "CSVScanner(age,education,hours,target)", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		lines := strings.Split(strings.TrimSpace(in[0].(string)), "\n")
		header := strings.Split(lines[0], ",")
		out := make([]row, 0, len(lines)-1)
		for _, l := range lines[1:] {
			fields := strings.Split(l, ",")
			r := make(row, len(header))
			for i, h := range header {
				r[h] = fields[i]
			}
			out = append(out, r)
		}
		return out, nil
	}, data)

	income := wf.Synthesizer("income", "examples(age,education,hours; label=target)", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		rs := in[0].([]row)
		edus := map[string]float64{"HS": 0, "College": 1, "Bachelors": 2, "Masters": 3, "PhD": 4}
		out := make([]example, len(rs))
		for i, r := range rs {
			age, _ := strconv.ParseFloat(r["age"], 64)
			hours, _ := strconv.ParseFloat(r["hours"], 64)
			label := 0.0
			if r["target"] == ">50K" {
				label = 1
			}
			out[i] = example{
				Features: []float64{age / 65, edus[r["education"]] / 4, hours / 60},
				Label:    label,
				Train:    i%5 != 0,
			}
		}
		return out, nil
	}, rows)

	incPred := wf.Learner("incPred", "Learner(LR, regParam=0.1, epochs=30)", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		exs := in[0].([]example)
		w, bias := trainLogReg(exs, 0.1, 30)
		p := predictions{
			Scores: make([]float64, len(exs)),
			Labels: make([]float64, len(exs)),
			Train:  make([]bool, len(exs)),
		}
		for i, e := range exs {
			p.Scores[i] = sigmoid(dot(w, e.Features) + bias)
			p.Labels[i] = e.Label
			p.Train[i] = e.Train
		}
		return p, nil
	}, income)

	wf.Reducer("checked", "Reducer(metric="+metric+", split=test)", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		p := in[0].(predictions)
		var n, correct, pos int
		for i := range p.Scores {
			if p.Train[i] {
				continue
			}
			n++
			if (p.Scores[i] >= 0.5) == (p.Labels[i] >= 0.5) {
				correct++
			}
			if p.Labels[i] >= 0.5 {
				pos++
			}
		}
		out := map[string]float64{"accuracy": float64(correct) / float64(n)}
		if strings.Contains(metric, "baserate") {
			out["baserate"] = float64(pos) / float64(n)
		}
		return out, nil
	}, incPred).
		IsOutput()

	return wf
}

func report(res *helix.Result) {
	fmt.Printf("  wall time: %v\n", res.Wall.Round(1000))
	for name, v := range res.Values {
		fmt.Printf("  output %s = %v\n", name, v)
	}
	for _, name := range []string{"data", "rows", "income", "incPred", "checked"} {
		n := res.Nodes[name]
		fmt.Printf("  %-8s state=%-2v time=%.3fs\n", name, n.State, n.Seconds)
	}
}

// Minimal logistic regression on dense feature slices.
func trainLogReg(exs []example, lr float64, epochs int) ([]float64, float64) {
	dim := len(exs[0].Features)
	w := make([]float64, dim)
	var bias float64
	for ep := 0; ep < epochs; ep++ {
		for _, e := range exs {
			if !e.Train {
				continue
			}
			err := sigmoid(dot(w, e.Features)+bias) - e.Label
			for j := range w {
				w[j] -= lr * err * e.Features[j]
			}
			bias -= lr * err
		}
	}
	return w, bias
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }
