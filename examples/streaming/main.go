// Streaming: the paper's mini-batch stream processing adaptation (§5.3)
// grown into a continuous-ingest workload. A long-lived session keeps a
// window of batch slots (batch→parse→feat chains feeding a windowed
// window→model→metrics suffix); each tick either delivers a new batch
// into one slot or is quiet. Because node names are stable, a delivery
// dirties only that slot's chain plus the suffix — the plan cache serves
// a partial hit and the clean slots are loaded, not recomputed — while a
// quiet stretch converges to full fingerprint hits with near-zero wall
// time.
//
// The demo prints the per-tick table: plan-cache outcome, state mix, and
// the compute time reuse avoided.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"

	"helix/internal/sim"
)

func main() {
	rep, err := sim.RunIngest(context.Background(), sim.IngestConfig{
		Window:      4,
		Parallelism: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.String())
}
