// Streaming: the paper's mini-batch stream processing adaptation
// (§5.3, "Mini-Batches") on the public API. The input is divided into
// mini-batches processed end-to-end independently; the materialization
// policy decides from the FIRST batch's load/compute statistics and
// replays the same per-operator decision for every subsequent batch —
// avoiding the dataset fragmentation that per-batch decisions would
// cause.
//
// The demo processes a stream of census-like batches and prints which
// operators were materialized per batch: the decision set is identical
// from batch 0 onward.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"helix"
)

type batchRows []string

func main() {
	helix.RegisterType("")
	helix.RegisterType(batchRows{})
	helix.RegisterType(0)
	helix.RegisterType(0.0)
	helix.RegisterType(map[string]float64(nil))

	dir, err := os.MkdirTemp("", "helix-streaming-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sess, err := helix.Open(dir, helix.WithPolicy(helix.PolicyOptMiniBatch))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("batch  mean     materialized operators")
	for batch := 0; batch < 5; batch++ {
		res, err := sess.Run(ctx, buildBatchWorkflow(batch))
		if err != nil {
			log.Fatal(err)
		}
		var stored []string
		for name, n := range res.Nodes {
			if n.Bytes > 0 {
				stored = append(stored, name)
			}
		}
		fmt.Printf("%-6d %-8v %s\n", batch, res.Values["batchMean"], strings.Join(stored, " "))
	}
}

// buildBatchWorkflow declares the per-batch pipeline. The batch id enters
// the source params: every batch is new data, so nothing is reusable
// across batches — only the materialization DECISIONS carry over.
func buildBatchWorkflow(batch int) *helix.Workflow {
	wf := helix.New("stream")

	src := wf.Source("batch", fmt.Sprintf("stream batch=%d", batch),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			rng := rand.New(rand.NewSource(int64(batch)))
			rows := make(batchRows, 2000)
			for i := range rows {
				rows[i] = fmt.Sprintf("%d,%f", i, rng.NormFloat64()*10+50)
			}
			return rows, nil
		})

	parsed := wf.Scanner("parsed", "csv v1", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		rows := in[0].(batchRows)
		sum := 0.0
		n := 0
		for _, r := range rows {
			var id int
			var v float64
			if _, err := fmt.Sscanf(r, "%d,%f", &id, &v); err == nil {
				sum += v
				n++
			}
		}
		return sum / float64(n), nil
	}, src)

	wf.Reducer("batchMean", "mean v1", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		m := in[0].(float64)
		return map[string]float64{"mean": float64(int(m*100)) / 100}, nil
	}, parsed).IsOutput()

	return wf
}
