// Iterate: a full 10-iteration development session on the paper's census
// workflow (paper §6.3), printing the optimizer's per-operator decisions
// — compute (Sc), load (Sl), or prune (Sp) — at every iteration, plus the
// cumulative time of a from-scratch baseline for comparison.
//
// This is the paper's Figure 2 lifecycle made visible: DAG compilation,
// change tracking, OEP planning, execution with selective
// materialization, repeat.
//
//	go run ./examples/iterate
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"

	"helix"
	"helix/internal/core"
	"helix/internal/sim"
	"helix/internal/workloads"
)

func main() {
	workloads.RegisterAll()
	ctx := context.Background()

	scale := workloads.Scale{Rows: 1, CostFactor: 40}

	// HELIX session with the paper's default configuration.
	dirOpt, err := os.MkdirTemp("", "helix-iterate-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dirOpt)
	sess, err := helix.Open(dirOpt)
	if err != nil {
		log.Fatal(err)
	}

	// From-scratch baseline (KeystoneML-style) for the same sequence.
	baseline, err := helix.Open(os.TempDir()+"/helix-iterate-baseline",
		helix.WithPolicy(helix.PolicyNever), helix.WithReuse(false))
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(os.TempDir() + "/helix-iterate-baseline")

	wlOpt, _ := sim.NewWorkload("census", scale, 1)
	wlBase, _ := sim.NewWorkload("census", scale, 1)
	seq := wlOpt.Sequence()

	var cumOpt, cumBase float64
	fmt.Println("iter  type  helix(s)  cum      scratch(s)  cum      decisions")
	for t := 0; t < len(seq); t++ {
		if t > 0 {
			wlOpt.Mutate(t, seq[t])
			wlBase.Mutate(t, seq[t])
		}
		resOpt, err := sess.Run(ctx, wlOpt.Build())
		if err != nil {
			log.Fatal(err)
		}
		resBase, err := baseline.Run(ctx, wlBase.Build())
		if err != nil {
			log.Fatal(err)
		}
		cumOpt += resOpt.Wall.Seconds()
		cumBase += resBase.Wall.Seconds()
		fmt.Printf("%-5d %-5s %8.3f  %7.3f  %10.3f  %7.3f  %s\n",
			t, seq[t], resOpt.Wall.Seconds(), cumOpt,
			resBase.Wall.Seconds(), cumBase, decisions(resOpt))
	}
	fmt.Printf("\ncumulative speedup over from-scratch: %.1f×\n", cumBase/cumOpt)
	fmt.Printf("storage used by HELIX: %d KB\n", sess.StorageBytes()/1024)
}

// decisions summarizes per-node states compactly, grouped by state.
func decisions(res *helix.Result) string {
	byState := map[core.State][]string{}
	for name, n := range res.Nodes {
		byState[n.State] = append(byState[n.State], name)
	}
	out := ""
	for _, st := range []core.State{core.StateCompute, core.StateLoad, core.StatePrune} {
		names := byState[st]
		if len(names) == 0 {
			continue
		}
		sort.Strings(names)
		if len(names) > 3 {
			names = append(names[:3], fmt.Sprintf("+%d", len(byState[st])-3))
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%v:%v", st, names)
	}
	return out
}
