// Genomics: the gene-function discovery workflow of the paper's Example 1
// on the public API — parse literature, join entity mentions against a
// knowledge base, learn word embeddings, cluster gene vectors.
//
// Three iterations demonstrate the reuse profile of unsupervised
// multi-learner workflows: changing the cluster count K (a cheap L/I
// knob) reuses the expensive embedding learner; changing the corpus (a
// DPR knob) recomputes everything downstream.
//
//	go run ./examples/genomics
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"helix"
	"helix/internal/data"
	"helix/internal/ml"
	"helix/internal/nlp"
)

func main() {
	helix.RegisterType([]data.Article(nil))
	helix.RegisterType(&data.GeneKB{})
	helix.RegisterType(corpus{})
	helix.RegisterType([][]string(nil))
	helix.RegisterType([]string(nil))
	helix.RegisterType(&ml.Embeddings{})
	helix.RegisterType(&ml.Dataset{})
	helix.RegisterType(ml.DenseVector(nil))
	helix.RegisterType(&ml.SparseVector{})
	helix.RegisterType(ml.ClusterSummary{})

	dir, err := os.MkdirTemp("", "helix-genomics-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sess, err := helix.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("iteration 0: initial workflow (articles=240, K=6)")
	run(ctx, sess, 240, 6)

	fmt.Println("\niteration 1: L/I change K=6→4 — embeddings reused, clustering recomputed")
	run(ctx, sess, 240, 4)

	fmt.Println("\niteration 2: DPR change (corpus expanded) — everything recomputed")
	run(ctx, sess, 300, 4)
}

type corpus struct {
	Articles []data.Article
	KB       *data.GeneKB
}

func run(ctx context.Context, sess *helix.Session, nArticles, k int) {
	res, err := sess.Run(ctx, buildWorkflow(nArticles, k))
	if err != nil {
		log.Fatal(err)
	}
	sum := res.Values["clusterSummary"].(ml.ClusterSummary)
	fmt.Printf("  wall %v; clusters: %d, sizes %v\n", res.Wall.Round(1000), sum.K, sum.Sizes)
	for c, members := range sum.TopMembers {
		if len(members) > 3 {
			members = members[:3]
		}
		fmt.Printf("  cluster %d: %s\n", c, strings.Join(members, ", "))
	}
	for _, name := range []string{"corpus", "tokens", "embeddings", "clusters"} {
		n := res.Nodes[name]
		fmt.Printf("  %-11s state=%-2v time=%.3fs\n", name, n.State, n.Seconds)
	}
}

func buildWorkflow(nArticles, k int) *helix.Workflow {
	wf := helix.New("genomics-example")

	src := wf.Source("corpus", fmt.Sprintf("pubmed articles=%d seed=3", nArticles),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			articles, kb := data.GenerateGenomics(data.GenomicsConfig{
				Articles: nArticles, SentencesPerArticle: 8, Genes: 48, Functions: 6, Seed: 3,
			})
			return corpus{Articles: articles, KB: kb}, nil
		})

	tokens := wf.Scanner("tokens", "tokenize v1", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		c := in[0].(corpus)
		var out [][]string
		for _, a := range c.Articles {
			for _, s := range nlp.SplitSentences(a.Text) {
				if toks := nlp.Tokenize(s); len(toks) > 0 {
					out = append(out, toks)
				}
			}
		}
		return out, nil
	}, src)

	embeddings := wf.Learner("embeddings", "word2vec dim=24 epochs=3", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		return ml.Word2Vec{Dim: 24, Epochs: 3, Seed: 5}.Fit(in[0].([][]string))
	}, tokens)

	geneVectors := wf.Synthesizer("geneVectors", "join(embeddings, geneKB)", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		emb := in[0].(*ml.Embeddings)
		c := in[1].(corpus)
		ds := &ml.Dataset{Dim: emb.Dim}
		// Deterministic gene order for reproducible clustering.
		names := c.KB.Names()
		sort.Strings(names)
		for _, g := range names {
			if v, ok := emb.Vector(g); ok {
				ds.Examples = append(ds.Examples, ml.Example{X: v, ID: g, Train: true})
			}
		}
		if len(ds.Examples) == 0 {
			return nil, fmt.Errorf("no gene vectors")
		}
		return ds, nil
	}, embeddings, src)

	clusters := wf.Learner("clusters", fmt.Sprintf("kmeans K=%d", k), func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		ds := in[0].(*ml.Dataset)
		kk := k
		if kk > len(ds.Examples) {
			kk = len(ds.Examples)
		}
		return ml.KMeans{K: kk, Seed: 7}.Fit(ds)
	}, geneVectors)

	wf.Reducer("clusterSummary", "summary top=5", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		return ml.SummarizeClusters(in[0].(*ml.KMeansModel), in[1].(*ml.Dataset), 5), nil
	}, clusters, geneVectors).
		IsOutput()

	return wf
}
