// IE: the spouse-extraction workflow from the paper's information
// extraction evaluation (§6.2) on the public API — an expensive NLP parse,
// candidate person-pair extraction with distant supervision against a
// knowledge base, linguistic featurization, and a logistic-regression
// extractor scored by F1.
//
// Two DPR iterations demonstrate the workflow's defining reuse property
// (Figure 5c): feature-engineering changes never touch the parse, so the
// dominant parsing cost is paid exactly once.
//
//	go run ./examples/ie
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"helix"
	"helix/internal/data"
	"helix/internal/ml"
	"helix/internal/nlp"
)

type corpus struct {
	Articles []data.Article
	KB       *data.SpouseKB
}

type candidate struct {
	A, B    string
	Between []string
	POSSeq  []string
	Label   float64
}

func main() {
	helix.RegisterType(corpus{})
	helix.RegisterType([]nlp.Document(nil))
	helix.RegisterType([]candidate(nil))
	helix.RegisterType(&ml.Dataset{})
	helix.RegisterType(ml.DenseVector(nil))
	helix.RegisterType(&ml.SparseVector{})
	helix.RegisterType(map[string]float64(nil))

	dir, err := os.MkdirTemp("", "helix-ie-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sess, err := helix.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("iteration 0: word features (parse computed once)")
	run(ctx, sess, false)

	fmt.Println("\niteration 1: DPR change — add POS features; parse reused")
	run(ctx, sess, true)
}

func run(ctx context.Context, sess *helix.Session, usePOS bool) {
	res, err := sess.Run(ctx, buildWorkflow(usePOS))
	if err != nil {
		log.Fatal(err)
	}
	m := res.Values["f1"].(map[string]float64)
	fmt.Printf("  wall %v; precision=%.2f recall=%.2f f1=%.2f\n",
		res.Wall.Round(1000), m["precision"], m["recall"], m["f1"])
	for _, name := range []string{"news", "parsedDocs", "candidates", "examples", "spousePred"} {
		n := res.Nodes[name]
		fmt.Printf("  %-11s state=%-2v time=%.3fs\n", name, n.State, n.Seconds)
	}
}

func buildWorkflow(usePOS bool) *helix.Workflow {
	wf := helix.New("ie-example")

	src := wf.Source("news", "news articles=150 seed=5", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		articles, kb := data.GenerateIE(data.IEConfig{
			Articles: 150, SentencesPerArticle: 8, People: 40, SpousePairs: 14, Seed: 5,
		})
		return corpus{Articles: articles, KB: kb}, nil
	})

	parsed := wf.Scanner("parsedDocs", "CoreNLP parse cost=60", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		c := in[0].(corpus)
		docs := make([]nlp.Document, len(c.Articles))
		for i, a := range c.Articles {
			docs[i] = nlp.Parse(a.ID, a.Text, 60)
		}
		return docs, nil
	}, src)

	candidates := wf.Scanner("candidates", "pairExtractor window=6", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		docs := in[0].([]nlp.Document)
		c := in[1].(corpus)
		var out []candidate
		for _, d := range docs {
			for _, s := range d.Sentences {
				out = append(out, extractPairs(s, c.KB)...)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("no candidates")
		}
		return out, nil
	}, parsed, src)

	featureParams := "features=words"
	if usePOS {
		featureParams = "features=words+pos"
	}
	examples := wf.Synthesizer("examples", featureParams, func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		cands := in[0].([]candidate)
		raw := make([]ml.RawFeatures, len(cands))
		for i, c := range cands {
			rf := ml.RawFeatures{"gap": ml.Num(float64(len(c.Between)))}
			for _, w := range c.Between {
				rf["w:"+w] = ml.Num(1)
			}
			if usePOS {
				for _, p := range c.POSSeq {
					rf["p:"+p] = ml.Num(1)
				}
			}
			raw[i] = rf
		}
		fs := ml.FitFeatureSpace(raw)
		ds := &ml.Dataset{Dim: fs.Dim(), Examples: make([]ml.Example, len(cands))}
		for i, c := range cands {
			ds.Examples[i] = ml.Example{X: fs.Vectorize(raw[i]), Y: c.Label, Train: i%5 != 0}
		}
		return ds, nil
	}, candidates)

	pred := wf.Learner("spousePred", "LR reg=0.1 epochs=15", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		ds := in[0].(*ml.Dataset)
		model, err := ml.LogisticRegression{RegParam: 0.1, Epochs: 15, Seed: 3}.Fit(ds)
		if err != nil {
			return nil, err
		}
		// Carry the fitted model and dataset forward for evaluation.
		return &scored{Model: model, Data: ds}, nil
	}, examples)
	helix.RegisterType(&scored{})
	helix.RegisterType(&ml.LRModel{})

	wf.Reducer("f1", "PRF1 on test split", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		s := in[0].(*scored)
		_, test := s.Data.Split()
		r := ml.BinaryPRF1(s.Model, test)
		return map[string]float64{"precision": r.Precision, "recall": r.Recall, "f1": r.F1}, nil
	}, pred).
		IsOutput()

	return wf
}

// scored pairs a fitted model with its dataset for downstream evaluation.
type scored struct {
	Model *ml.LRModel
	Data  *ml.Dataset
}

func extractPairs(s nlp.Sentence, kb *data.SpouseKB) []candidate {
	var people []int
	for i, t := range s {
		if data.IsPersonToken(t.Text) {
			people = append(people, i)
		}
	}
	var out []candidate
	for i := 0; i < len(people); i++ {
		for j := i + 1; j < len(people); j++ {
			a, b := people[i], people[j]
			if b-a-1 > 6 {
				continue
			}
			c := candidate{A: s[a].Text, B: s[b].Text}
			for k := a + 1; k < b; k++ {
				c.Between = append(c.Between, s[k].Text)
				c.POSSeq = append(c.POSSeq, s[k].POS)
			}
			if kb.Known(c.A, c.B) {
				c.Label = 1
			}
			out = append(out, c)
		}
	}
	return out
}
