package helix

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
)

func TestSessionHistoryRecordsIterations(t *testing.T) {
	sess, err := NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var c atomic.Int64
	if _, err := sess.Run(ctx, buildWorkflow(&c, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, buildWorkflow(&c, "LR reg=0.5")); err != nil {
		t.Fatal(err)
	}
	h := sess.History()
	if len(h) != 2 {
		t.Fatalf("history length = %d", len(h))
	}
	if h[0].Iteration != 0 || h[1].Iteration != 1 {
		t.Fatal("iteration numbering wrong")
	}
	// Iteration 0: everything changed (no previous version).
	if len(h[0].Changed) != 4 {
		t.Fatalf("iteration 0 changed = %v, want all 4", h[0].Changed)
	}
	// Iteration 1: the learner and its descendant changed.
	if len(h[1].Changed) != 2 {
		t.Fatalf("iteration 1 changed = %v, want [checked model]", h[1].Changed)
	}
	if h[1].Changed[0] != "checked" || h[1].Changed[1] != "model" {
		t.Fatalf("iteration 1 changed = %v", h[1].Changed)
	}
	if h[1].Wall <= 0 || h[0].WorkflowName != "sess-test" {
		t.Fatal("record fields missing")
	}
	// The returned slice is a copy.
	h[0].Iteration = 99
	if sess.History()[0].Iteration == 99 {
		t.Fatal("History returned internal slice")
	}
}

func TestWorkflowDOT(t *testing.T) {
	var c atomic.Int64
	wf := buildWorkflow(&c, "LR reg=0.1")
	dot, err := wf.DOT(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", `"data"`, `"rows"`, `"model"`, `"checked"`, `"data" -> "rows"`, "peripheries=2"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestWorkflowDOTWithResult(t *testing.T) {
	sess, err := NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var c atomic.Int64
	if _, err := sess.Run(ctx, buildWorkflow(&c, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	// Rerun identical: output loads, rest prunes; the DOT should show it.
	wf := buildWorkflow(&c, "LR reg=0.1")
	res, err := sess.Run(ctx, wf)
	if err != nil {
		t.Fatal(err)
	}
	dot, err := wf.DOT(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "Sp") || !strings.Contains(dot, "Sl") {
		t.Fatalf("annotated DOT missing states:\n%s", dot)
	}
}

func TestWorkflowDOTCompileErrorPropagates(t *testing.T) {
	wf := New("bad")
	wf.Source("x", "v1", nil)
	if _, err := wf.DOT(nil); err == nil {
		t.Fatal("expected compile error")
	}
}
