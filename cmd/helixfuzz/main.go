// Command helixfuzz runs the property-based invariant harness
// (internal/fuzz): seed-driven random workflow DAGs (including streaming
// row-wise operators), random edit sequences, random session
// configurations, and randomly scheduled mid-sequence restarts and
// mid-run cancellations, each executed through a real Session and
// cross-checked against cache-off, FIFO, streaming-off, gob-codec,
// fresh-solve, and from-scratch oracles.
//
// Usage:
//
//	helixfuzz                         # 200 cases from suite seed 1
//	helixfuzz -seed 7 -cases 500      # bigger sweep
//	helixfuzz -case-seed 12345        # re-run one case by its seed
//	helixfuzz -replay testdata/fuzz/case-1-seed.json
//
// On an invariant violation the failing case is minimized, written into
// -corpus, and the reproducing seed is printed; the exit status is 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"helix/internal/fuzz"
)

func main() {
	seed := flag.Int64("seed", 1, "suite seed for the case-seed stream")
	cases := flag.Int("cases", 200, "number of random cases to run")
	corpus := flag.String("corpus", "testdata/fuzz", "directory receiving minimized failing cases")
	caseSeed := flag.Int64("case-seed", 0, "run exactly one generated case by its seed (as printed by a failure)")
	replay := flag.String("replay", "", "replay a corpus JSON file instead of generating cases")
	shrink := flag.Int("shrink", 150, "shrink budget (candidate executions)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	ctx := context.Background()
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	switch {
	case *replay != "":
		v, err := fuzz.Replay(ctx, *replay)
		fail(err)
		if v != nil {
			fmt.Fprintf(os.Stderr, "helixfuzz: %s: %s\n", *replay, v)
			os.Exit(1)
		}
		logf("helixfuzz: %s replayed clean", *replay)

	case *caseSeed != 0:
		c := fuzz.Generate(*caseSeed)
		dir, err := os.MkdirTemp("", "helixfuzz-*")
		fail(err)
		stats := &fuzz.Stats{}
		v, err := fuzz.RunCase(ctx, dir, c, stats)
		os.RemoveAll(dir)
		fail(err)
		if v != nil {
			fmt.Fprintf(os.Stderr, "helixfuzz: case seed %d: %s\n", *caseSeed, v)
			os.Exit(1)
		}
		logf("helixfuzz: case seed %d clean (%d iterations: %d cold / %d partial / %d full-hit plans; %d restarts, %d cancels)",
			*caseSeed, stats.Iterations, stats.ColdPlans, stats.Partial, stats.FullHits, stats.Restarts, stats.Cancels)

	default:
		stats := &fuzz.Stats{}
		f, err := fuzz.Run(ctx, fuzz.Options{
			Seed:         *seed,
			Cases:        *cases,
			Corpus:       *corpus,
			ShrinkBudget: *shrink,
			Log:          logf,
			Stats:        stats,
		})
		fail(err)
		if f != nil {
			fmt.Fprintf(os.Stderr, "helixfuzz: FAIL: %s\n", f)
			if f.CorpusFile != "" {
				fmt.Fprintf(os.Stderr, "helixfuzz: minimized case written to %s\n", f.CorpusFile)
			}
			os.Exit(1)
		}
		logf("helixfuzz: %d cases clean (%d iterations: %d cold / %d partial / %d full-hit plans; %d restarts, %d cancels [%d aborted])",
			stats.Cases, stats.Iterations, stats.ColdPlans, stats.Partial, stats.FullHits,
			stats.Restarts, stats.Cancels, stats.CancelAborted)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "helixfuzz:", err)
		os.Exit(2)
	}
}
