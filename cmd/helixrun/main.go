// Command helixrun drives one of the paper's evaluation workflows
// through an iterative development session and prints, per iteration,
// the optimizer's decisions and timings — a command-line view of the
// workflow lifecycle in paper Figure 2.
//
// Usage:
//
//	helixrun -workload census                    # HELIX OPT, paper schedule
//	helixrun -workload genomics -system helix-am # always-materialize
//	helixrun -workload nlp -iters 3 -v           # per-operator detail
//	helixrun -workload census -explain           # per-node decision table
//
// Workloads: census, census10x, genomics, nlp, mnist.
// Systems: helix-opt, helix-am, helix-nm, keystoneml, deepdive.
//
// With -explain, each iteration first prints the optimizer's plan — the
// per-node decision table from Plan.Explain(): state, costs, projected
// C(n), and the rationale for every Load/Compute/Prune choice — and then
// executes it, so the projected plan can be compared against the realized
// timings that follow.
//
// With -progress, each iteration streams the engine's structured run
// events live — the plan decision with its cache outcome, every
// operator's start and retirement with measured seconds and
// materialization outcome, the flush barrier, and completion — instead
// of going silent until the end-of-iteration table row.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"helix"
	"helix/internal/core"
	"helix/internal/sim"
	"helix/internal/workloads"
)

func main() {
	workload := flag.String("workload", "census", "workload to run (census|census10x|genomics|nlp|mnist)")
	system := flag.String("system", "helix-opt", "system to model (helix-opt|helix-am|helix-nm|keystoneml|deepdive)")
	scale := flag.Int("scale", 1, "workload size multiplier")
	cost := flag.Int("cost", 40, "NLP parse cost factor")
	seed := flag.Int64("seed", 1, "data generation seed")
	iters := flag.Int("iters", 0, "iterations to run (0 = paper schedule)")
	dir := flag.String("dir", "", "materialization directory (default: temp, removed at exit)")
	shared := flag.Bool("shared", false, "attach to a shared content-addressed store at -dir: artifacts publish once per chain signature and are reused by any session (or process) sharing the directory")
	tenant := flag.String("tenant", "", "tenant label for shared-store byte accounting (only with -shared)")
	writeBehind := flag.Bool("writebehind", false, "materialize via the background writer pool instead of the paper-faithful inline write")
	parallelism := flag.Int("parallelism", 0, "scheduler worker-pool size (0 = GOMAXPROCS)")
	planCache := flag.Bool("plancache", true, "reuse the previous iteration's plan when the planning fingerprint matches")
	sched := flag.String("sched", "critpath", "ready-queue ordering: critpath (longest projected chain first) or fifo")
	explain := flag.Bool("explain", false, "print the optimizer's per-node decision table before each iteration")
	progress := flag.Bool("progress", false, "stream per-node live progress from the run's event stream")
	verbose := flag.Bool("v", false, "print per-operator states")
	flag.Parse()

	if err := run(*workload, *system, *scale, *cost, *seed, *iters, *dir, *shared, *tenant, *parallelism, *writeBehind, *planCache, *sched, *explain, *progress, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "helixrun:", err)
		os.Exit(1)
	}
}

// progressObserver renders the run's structured events as live progress
// lines: per-node states as they happen instead of only the
// end-of-iteration table.
func progressObserver(ev helix.RunEvent) {
	switch e := ev.(type) {
	case helix.PlanEvent:
		fmt.Printf("      plan  cache=%-7s compute=%d load=%d prune=%d projected=%.3fs plan=%.4fs\n",
			e.Outcome, e.Compute, e.Load, e.Prune, e.ProjectedSeconds, e.PlanTime.Seconds())
	case helix.NodeEvent:
		if e.Phase == helix.NodeStarted {
			fmt.Printf("      start %-20s %v\n", e.Name, e.State)
		} else {
			mat := ""
			if e.Materialized {
				mat = "  mat"
			}
			fmt.Printf("      done  %-20s %v %8.3fs%s\n", e.Name, e.State, e.Seconds, mat)
		}
	case helix.FlushEvent:
		fmt.Printf("      flush wait=%.3fs\n", e.Wait.Seconds())
	case helix.DoneEvent:
		fmt.Printf("      done  iteration %d wall=%.3fs\n", e.Iteration, e.Wall.Seconds())
	}
}

func systemByName(name string) (sim.System, error) {
	for _, s := range []sim.System{sim.HelixOpt, sim.HelixAM, sim.HelixNM, sim.KeystoneML, sim.DeepDive} {
		if s.Name == name {
			return s, nil
		}
	}
	return sim.System{}, fmt.Errorf("unknown system %q", name)
}

func run(workload, system string, scale, cost int, seed int64, iters int, dir string, shared bool, tenant string, parallelism int, writeBehind, planCache bool, sched string, explain, progress, verbose bool) error {
	workloads.RegisterAll()
	sys, err := systemByName(system)
	if err != nil {
		return err
	}
	if !sim.Supports(sys.Name, workload) {
		return fmt.Errorf("%s does not support the %s workflow (paper Table 2)", sys.Name, workload)
	}
	wl, err := sim.NewWorkload(workload, workloads.Scale{Rows: scale, CostFactor: cost}, seed)
	if err != nil {
		return err
	}
	if dir == "" {
		dir, err = os.MkdirTemp("", "helixrun-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	// The flag set lowers onto the same functional options the public API
	// exposes; the system preset supplies the baseline and the flags
	// append overrides (later options win).
	opts := append([]helix.Option(nil), sys.Options...)
	if writeBehind {
		opts = append(opts, helix.WithSyncMaterialization(false))
	}
	opts = append(opts, helix.WithParallelism(parallelism))
	if !planCache {
		opts = append(opts, helix.WithPlanCache(helix.PlanCacheOff))
	}
	// -shared attaches to a content-addressed store rooted at -dir: a
	// second invocation on the same directory loads this one's artifacts
	// instead of recomputing (run with an explicit -dir, or the temp
	// directory vanishes at exit and the store is shared with nobody).
	var sharedStore *helix.SharedStore
	if shared {
		var err error
		sharedStore, err = helix.OpenSharedStore(dir)
		if err != nil {
			return err
		}
		defer sharedStore.Close()
		opts = append(opts, helix.WithSharedStore(sharedStore), helix.WithTenant(tenant))
	}
	switch sched {
	case "critpath", "":
		opts = append(opts, helix.WithScheduler(helix.SchedCriticalPath))
	case "fifo":
		opts = append(opts, helix.WithScheduler(helix.SchedFIFO))
	default:
		return fmt.Errorf("unknown -sched %q (want critpath or fifo)", sched)
	}
	sess, err := helix.Open(dir, opts...)
	if err != nil {
		return err
	}
	defer sess.Close()

	// -progress installs the observer per run (a run-scoped option), so
	// the final outputs re-run below stays quiet.
	var runOpts []helix.Option
	if progress {
		runOpts = append(runOpts, helix.WithObserver(progressObserver))
	}

	seq := wl.Sequence()
	if iters <= 0 || iters > len(seq) {
		iters = len(seq)
	}
	ctx := context.Background()
	var cum float64
	fmt.Printf("workload=%s system=%s store=%s\n\n", workload, sys.Name, dir)
	// seconds covers the compute critical path; flush(s) is the extra wait
	// at the write-behind barrier before Run returns (0 when inline).
	// Both count toward cum — the latency the user actually observes.
	// plan(s) is the planning share of seconds, with the plan-cache
	// outcome (cold/partial/hit) beside it.
	fmt.Println("iter  type  seconds  flush(s)    cum      plan(s)  cache     Sc  Sl  Sp   mat(s)  storage(KB)")
	for t := 0; t < iters; t++ {
		if t > 0 {
			if sys.DPROnly && seq[t] != core.DPR {
				fmt.Printf("stopping: %s supports only DPR iterations\n", sys.Name)
				break
			}
			wl.Mutate(t, seq[t])
		}
		wf := wl.Build()
		if explain {
			pl, err := sess.Plan(wf)
			if err != nil {
				return fmt.Errorf("iteration %d: plan: %w", t, err)
			}
			fmt.Println(pl.Explain())
		}
		if progress {
			fmt.Printf("iteration %d:\n", t)
		}
		res, err := sess.Run(ctx, wf, runOpts...)
		if err != nil {
			return fmt.Errorf("iteration %d: %w", t, err)
		}
		cum += res.Wall.Seconds() + res.FlushWait.Seconds()
		outcome := "-"
		if res.Plan != nil {
			outcome = res.Plan.Cache.String()
		}
		fmt.Printf("%-5d %-5s %8.3f  %8.3f  %8.3f  %7.4f  %-7s  %3d %3d %3d  %6.3f  %10d\n",
			t, seq[t], res.Wall.Seconds(), res.FlushWait.Seconds(), cum,
			res.PlanTime.Seconds(), outcome,
			res.StateCounts[core.StateCompute],
			res.StateCounts[core.StateLoad],
			res.StateCounts[core.StatePrune],
			res.MatTime.Seconds(), res.StorageBytes/1024)
		if verbose {
			printNodes(res)
		}
	}
	if sharedStore != nil {
		st := sharedStore.PlanCacheStats()
		fmt.Printf("\nshared store: artifacts=%d bytes=%d sessions=%d plan-cache hits=%d partial=%d misses=%d",
			sharedStore.Artifacts(), sharedStore.StorageBytes(), sharedStore.Sessions(),
			st.Hits, st.Partials, st.Misses)
		if tenant != "" {
			fmt.Printf(" tenant[%s]=%dB", tenant, sharedStore.TenantBytes(tenant))
		}
		fmt.Println()
	}
	fmt.Printf("\noutputs of the final iteration:\n")
	printOutputs(wl, sess)
	return nil
}

func printNodes(res *helix.Result) {
	names := make([]string, 0, len(res.Nodes))
	for name := range res.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := res.Nodes[name]
		fmt.Printf("        %-20s %-3s %-4v %8.3fs\n", name, n.Component, n.State, n.Seconds)
	}
}

func printOutputs(wl workloads.Workload, sess *helix.Session) {
	// Re-run costs nothing extra: everything is reusable, outputs load.
	res, err := sess.Run(context.Background(), wl.Build())
	if err != nil {
		fmt.Println("  (unavailable:", err, ")")
		return
	}
	names := make([]string, 0, len(res.Values))
	for name := range res.Values {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %s = %v\n", name, res.Values[name])
	}
}
