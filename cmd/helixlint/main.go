// Command helixlint runs the repo's custom static analyzers
// (internal/lint) over Go packages and exits non-zero on any finding.
//
// Usage:
//
//	helixlint [-disable a,b] [-v] [packages]
//
// Packages default to ./... resolved against the current directory. The
// -disable flag turns off the named analyzers (comma-separated); -v
// echoes every directive-based exemption with its recorded reason, so
// waived findings stay visible.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"helix/internal/lint"
)

func main() {
	disable := flag.String("disable", "", "comma-separated analyzer names to skip")
	verbose := flag.Bool("v", false, "echo exempted findings with their reasons")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: helixlint [-disable a,b] [-v] [packages]\n\nanalyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	disabled := make(map[string]bool)
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			disabled[name] = true
		}
	}
	known := make(map[string]bool)
	var analyzers []*lint.Analyzer
	for _, a := range lint.Suite() {
		known[a.Name] = true
		if !disabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	for name := range disabled {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "helixlint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "helixlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "helixlint: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for _, pkg := range pkgs {
		diags, sups := lint.RunSuite(pkg.NewPass(), analyzers)
		if *verbose {
			for _, s := range sups {
				fmt.Fprintf(os.Stdout, "%s: exempt: %s (%s)\n",
					relPos(cwd, s.Diagnostic), s.Diagnostic.Message, s.Reason)
			}
		}
		for _, d := range diags {
			failed = true
			fmt.Fprintf(os.Stdout, "%s: %s: %s\n", relPos(cwd, d), d.Analyzer, d.Message)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func relPos(cwd string, d lint.Diagnostic) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return fmt.Sprintf("%s:%d:%d", file, d.Pos.Line, d.Pos.Column)
}
