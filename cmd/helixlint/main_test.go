package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildLint compiles the helixlint binary once per test run.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "helixlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a one-package module so the binary's go-list
// loader has a real module root to resolve.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module lintsmoke\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runLint(t *testing.T, bin, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run helixlint: %v\n%s", err, out.String())
	}
	return out.String(), code
}

// TestSmoke drives the built binary end to end: a clean module exits 0,
// a module seeded with one violation per analyzer class exits 1 and
// names each finding, and -disable with an unknown analyzer exits 2.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to the go tool")
	}
	bin := buildLint(t)

	clean := writeModule(t, map[string]string{
		"good/good.go": `// Package good is taxonomy- and determinism-clean.
//
//lint:errtaxonomy
//lint:deterministic
package good

import "errors"

// ErrBoom is the package's one sentinel.
var ErrBoom = errors.New("good: boom")

// Do returns the sentinel, staying inside the taxonomy.
func Do() error { return ErrBoom }
`,
	})
	if out, code := runLint(t, bin, clean, "./..."); code != 0 {
		t.Fatalf("clean module: exit %d, want 0\n%s", code, out)
	}

	dirty := writeModule(t, map[string]string{
		"bad/bad.go": `// Package bad seeds one violation per quick-to-seed analyzer.
//
//lint:errtaxonomy
//lint:deterministic
package bad

import (
	"fmt"
	"time"
)

// Bare returns an anonymous error (errtaxonomy violation).
func Bare() error { return fmt.Errorf("bad: oops") }

// Now reads the wall clock in a deterministic package (plandeterminism
// violation).
func Now() int64 { return time.Now().Unix() }
`,
	})
	out, code := runLint(t, bin, dirty, "./...")
	if code != 1 {
		t.Fatalf("seeded module: exit %d, want 1\n%s", code, out)
	}
	for _, want := range []string{"errtaxonomy", "plandeterminism", "bad.go"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("seeded-module output missing %q:\n%s", want, out)
		}
	}

	// Disabling the two tripped analyzers must make the same tree pass —
	// and an unknown analyzer name must be rejected loudly.
	if out, code := runLint(t, bin, dirty, "-disable", "errtaxonomy,plandeterminism", "./..."); code != 0 {
		t.Fatalf("disabled run: exit %d, want 0\n%s", code, out)
	}
	if out, code := runLint(t, bin, dirty, "-disable", "nosuch", "./..."); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2\n%s", code, out)
	}
}
