// Command helixbench regenerates the tables and figures of the HELIX
// paper's evaluation (§6) on the Go reproduction. Each experiment prints
// the same rows/series the paper reports.
//
// Usage:
//
//	helixbench -exp all                 # every experiment
//	helixbench -exp fig5 -scale 2       # cumulative run times, 2× data
//	helixbench -exp table2              # use-case support matrix
//
// Experiments: table1, table2, fig5, fig6, fig7a, fig7b, fig8, fig9,
// fig10, ablation, writebehind, ingest, adaptive, headline, all.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"helix/internal/bench"
	"helix/internal/workloads"
)

// experiments is the canonical set of -exp names ("all" aside); both the
// flag validation and the dispatch assert membership.
var experiments = map[string]bool{
	"table1": true, "table2": true, "fig5": true, "fig6": true,
	"fig7a": true, "fig7b": true, "fig8": true, "fig9": true,
	"fig10": true, "ablation": true, "writebehind": true,
	"ingest": true, "adaptive": true, "headline": true,
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1|table2|fig5|fig6|fig7a|fig7b|fig8|fig9|fig10|ablation|writebehind|ingest|adaptive|headline|all)")
	scale := flag.Int("scale", 1, "workload size multiplier")
	cost := flag.Int("cost", 40, "NLP parse cost factor")
	seed := flag.Int64("seed", 1, "data generation seed")
	iters := flag.Int("iters", 0, "cap iterations per series (0 = paper schedule)")
	flag.Parse()

	workloads.RegisterAll()
	cfg := bench.Config{
		Scale:      workloads.Scale{Rows: *scale, CostFactor: *cost},
		Seed:       *seed,
		Iterations: *iters,
	}
	ctx := context.Background()

	// Reject unknown experiment names up front: a typo in -exp used to
	// match nothing and exit silently successful, which reads as "the
	// experiment ran and printed nothing". The experiments list is the
	// single source of truth — the run() dispatch below checks itself
	// against it, so a new experiment branch cannot drift out of the
	// validation set unnoticed.
	selected := strings.Split(*exp, ",")
	for _, s := range selected {
		if s != "all" && !experiments[s] {
			fmt.Fprintf(os.Stderr, "helixbench: unknown experiment %q (see -exp in the usage comment)\n", s)
			os.Exit(2)
		}
	}
	run := func(name string) bool {
		if !experiments[name] {
			panic(fmt.Sprintf("helixbench: experiment %q dispatched but not in the experiments list", name))
		}
		for _, s := range selected {
			if s == name || s == "all" {
				return true
			}
		}
		return false
	}

	if run("table1") {
		fmt.Println(bench.Table1String())
	}
	if run("table2") {
		fmt.Println(bench.Table2String())
	}
	if run("fig5") || run("headline") {
		r, err := bench.Fig5(ctx, cfg)
		fail(err)
		if run("fig5") {
			fmt.Print(r.String())
		}
		if run("headline") {
			fmt.Printf("Headline (§6.5.2): helix-opt speedup on census over 10 iterations: %.1f× vs KeystoneML, %.1f× vs DeepDive (DPR prefix)\n\n",
				r.Speedup("census", "keystoneml"), r.Speedup("census", "deepdive"))
		}
	}
	if run("fig6") {
		r, err := bench.Fig6(ctx, cfg)
		fail(err)
		fmt.Print(r.String())
	}
	if run("fig7a") {
		r, err := bench.Fig7a(ctx, cfg)
		fail(err)
		fmt.Print(r.String())
	}
	if run("fig7b") {
		r, err := bench.Fig7b(ctx, cfg)
		fail(err)
		fmt.Print(r.String())
	}
	if run("fig8") {
		r, err := bench.Fig8(ctx, cfg)
		fail(err)
		fmt.Print(r.String())
	}
	if run("fig9") {
		r, err := bench.Fig9(ctx, cfg)
		fail(err)
		fmt.Print(r.String())
	}
	if run("fig10") {
		r, err := bench.Fig10(ctx, cfg)
		fail(err)
		fmt.Print(r.String())
	}
	if run("ablation") {
		r, err := bench.Ablations(ctx, cfg)
		fail(err)
		fmt.Print(r.String())
	}
	if run("writebehind") {
		r, err := bench.WriteBehind(ctx, cfg)
		fail(err)
		fmt.Print(r.String())
	}
	if run("ingest") {
		r, err := bench.Ingest(ctx, cfg)
		fail(err)
		fmt.Print(r.String())
	}
	if run("adaptive") {
		r, err := bench.Adaptive(ctx, cfg)
		fail(err)
		fmt.Print(r.String())
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "helixbench:", err)
		os.Exit(1)
	}
}
