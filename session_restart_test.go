package helix

import (
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// TestSessionRestartResumesReuse: reopening a session on the same
// directory must resume change tracking, so an identical workflow reuses
// results materialized before the restart.
func TestSessionRestartResumesReuse(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	sess1, err := NewSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	var c1 atomic.Int64
	if _, err := sess1.Run(ctx, buildWorkflow(&c1, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	if sess1.Iteration() != 1 {
		t.Fatal("iteration not advanced")
	}

	// "Restart": a fresh Session on the same directory.
	sess2, err := NewSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sess2.Iteration() != 1 {
		t.Fatalf("restarted session iteration = %d, want 1", sess2.Iteration())
	}
	var c2 atomic.Int64
	res, err := sess2.Run(ctx, buildWorkflow(&c2, "LR reg=0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Load() != 0 {
		t.Fatalf("restarted identical run executed %d operators, want 0", c2.Load())
	}
	if res.Values["checked"] != 300.0 {
		t.Fatalf("restarted output = %v", res.Values["checked"])
	}
}

// TestSessionRestartDetectsChange: after a restart, a changed operator is
// still detected as original and recomputed with correct results.
func TestSessionRestartDetectsChange(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	sess1, err := NewSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	var c1 atomic.Int64
	if _, err := sess1.Run(ctx, buildWorkflow(&c1, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}

	sess2, err := NewSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	var c2 atomic.Int64
	res, err := sess2.Run(ctx, buildWorkflow(&c2, "LR reg=0.5"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["checked"] != 600.0 {
		t.Fatalf("post-restart changed output = %v, want 600", res.Values["checked"])
	}
	if res.Nodes["model"].State != StateCompute {
		t.Fatal("changed learner not recomputed after restart")
	}
	if res.Nodes["rows"].State == StateCompute {
		t.Fatal("unchanged DPR recomputed after restart")
	}
}

// TestSessionCorruptStateDegrades: a corrupt session file falls back to a
// fresh session (everything recomputed) without error.
func TestSessionCorruptStateDegrades(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	sess1, err := NewSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	var c1 atomic.Int64
	if _, err := sess1.Run(ctx, buildWorkflow(&c1, "LR reg=0.1")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, sessionStateFile), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	sess2, err := NewSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sess2.Iteration() != 0 {
		t.Fatal("corrupt state should reset the session")
	}
	var c2 atomic.Int64
	res, err := sess2.Run(ctx, buildWorkflow(&c2, "LR reg=0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["checked"] != 300.0 {
		t.Fatalf("output after corrupt state = %v", res.Values["checked"])
	}
	if c2.Load() != 4 {
		t.Fatalf("fresh session should recompute all 4 operators, got %d", c2.Load())
	}
}
