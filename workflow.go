package helix

import (
	"context"
	"fmt"

	"helix/internal/core"
	"helix/internal/exec"
)

// Func is the executable body of an operator. Inputs arrive in the order
// the operator's inputs were declared; the returned Value is the
// operator's output (a data collection, model, or scalar). Functions must
// be pure with respect to their inputs — HELIX's reuse correctness
// (Theorem 1) rests on operators computing identical results on identical
// inputs.
type Func func(ctx context.Context, inputs []Value) (Value, error)

// Op is a declared operator: one node of the workflow DAG. Ops are
// created through the Workflow declaration methods and configured
// fluently (Uses, IsOutput, Nondeterministic).
type Op struct {
	wf     *Workflow
	name   string
	kind   core.Kind
	comp   core.Component
	params string
	fn     Func
	inputs []*Op
	uses   []*Op
	output bool
	nondet bool
	// row is the per-row implementation of a streamable operator
	// (MapRows/FilterRows/FlatMapRows); nil for batch operators. Compile
	// marks such nodes Streamable and registers the RowOp so the planner
	// can fuse linear chains of them.
	row *exec.RowOp
}

// Name returns the operator's declared name.
func (o *Op) Name() string { return o.name }

// Uses declares a hidden dependency of this operator on the outputs of
// deps — the HML uses keyword (paper §5.4): UDF dependencies invisible to
// dataflow analysis that must be protected from pruning and premature
// uncaching. The dependency values are appended to the operator's inputs
// after the declared ones.
func (o *Op) Uses(deps ...*Op) *Op {
	for _, d := range deps {
		if d == nil {
			o.wf.fail(fmt.Errorf("helix: %s uses nil operator", o.name))
			continue
		}
		o.uses = append(o.uses, d)
	}
	return o
}

// IsOutput marks the operator's result as a required workflow output —
// the HML is_output keyword. Outputs anchor pruning and are always
// materialized.
func (o *Op) IsOutput() *Op {
	o.output = true
	return o
}

// Nondeterministic declares that the operator does not compute identical
// results on identical inputs (e.g. an unseeded random feature map, as in
// the paper's MNIST workflow §6.2). Nondeterministic operators are never
// reused across iterations.
func (o *Op) Nondeterministic() *Op {
	o.nondet = true
	return o
}

// Workflow is a declared ML workflow: the Go analogue of the paper's
// Workflow interface in HML (§3.2). Declaration errors are sticky and
// reported by Compile.
type Workflow struct {
	name string
	ops  []*Op
	by   map[string]*Op
	err  error
}

// New returns an empty workflow with the given name.
func New(name string) *Workflow {
	return &Workflow{name: name, by: make(map[string]*Op)}
}

// Name returns the workflow's name.
func (w *Workflow) Name() string { return w.name }

// Op returns the operator declared under name, or nil.
func (w *Workflow) Op(name string) *Op { return w.by[name] }

// Ops returns all declared operators in declaration order.
func (w *Workflow) Ops() []*Op { return w.ops }

// Err returns the first declaration error, if any.
func (w *Workflow) Err() error { return w.err }

func (w *Workflow) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// declare registers a new operator.
func (w *Workflow) declare(name string, kind core.Kind, comp core.Component, params string, fn Func, inputs []*Op) *Op {
	o := &Op{wf: w, name: name, kind: kind, comp: comp, params: params, fn: fn}
	if name == "" {
		w.fail(fmt.Errorf("helix: operator with empty name"))
	}
	if _, dup := w.by[name]; dup {
		w.fail(fmt.Errorf("helix: duplicate operator %q", name))
	}
	if fn == nil {
		w.fail(fmt.Errorf("helix: operator %q has no function", name))
	}
	for _, in := range inputs {
		if in == nil {
			w.fail(fmt.Errorf("helix: operator %q has nil input", name))
			continue
		}
		if in.wf != w {
			w.fail(fmt.Errorf("helix: operator %q input %q belongs to another workflow", name, in.name))
			continue
		}
		o.inputs = append(o.inputs, in)
	}
	w.ops = append(w.ops, o)
	w.by[name] = o
	return o
}

// Source declares a data-source operator (the HML refers_to FileSource
// pattern, Figure 3a line 3). params must encode everything that
// identifies the source (paths, versions): a changed params string marks
// the operator original in the next iteration, forcing recomputation.
func (w *Workflow) Source(name, params string, fn Func) *Op {
	return w.declare(name, core.KindSource, core.DPR, params, fn, nil)
}

// Scanner declares a parsing operator (parsing ∈ F; the HML is_read_into
// ... using pattern). It behaves like a flatMap over records.
func (w *Workflow) Scanner(name, params string, fn Func, inputs ...*Op) *Op {
	return w.declare(name, core.KindScanner, core.DPR, params, fn, inputs)
}

// Extractor declares a feature extraction or transformation operator
// (feature extraction/transformation ∈ F; the HML has_extractors
// pattern).
func (w *Workflow) Extractor(name, params string, fn Func, inputs ...*Op) *Op {
	return w.declare(name, core.KindExtractor, core.DPR, params, fn, inputs)
}

// Synthesizer declares a join/assembly operator producing examples from
// semantic units (join ∈ F; the HML results_from ... with_labels
// pattern).
func (w *Workflow) Synthesizer(name, params string, fn Func, inputs ...*Op) *Op {
	return w.declare(name, core.KindSynthesizer, core.DPR, params, fn, inputs)
}

// Learner declares a learning/inference operator (learning and inference
// ∈ F). Learners belong to the L/I component.
func (w *Workflow) Learner(name, params string, fn Func, inputs ...*Op) *Op {
	return w.declare(name, core.KindLearner, core.LI, params, fn, inputs)
}

// Reducer declares a postprocessing operator whose output size does not
// depend on the input size (reduce ∈ F). Reducers belong to the PPR
// component.
func (w *Workflow) Reducer(name, params string, fn Func, inputs ...*Op) *Op {
	return w.declare(name, core.KindReducer, core.PPR, params, fn, inputs)
}

// Compile lowers the declared workflow into the executable program run by
// the engine: the Workflow DAG of §4.1 plus per-node functions. The
// operator signature — kind, name, and params — implements the paper's
// representational equivalence check (§4.2): two iterations' operators
// are equivalent iff their declarations match and their ancestors are
// equivalent. Declaration and lowering failures (duplicate names, nil
// functions, cycles, …) satisfy errors.Is(err, ErrBadWorkflow).
func (w *Workflow) Compile() (*exec.Program, error) {
	prog, err := w.compile()
	if err != nil {
		return nil, tagged(ErrBadWorkflow, err)
	}
	return prog, nil
}

func (w *Workflow) compile() (*exec.Program, error) {
	if w.err != nil {
		return nil, w.err
	}
	d := core.NewDAG()
	nodes := make(map[*Op]*core.Node, len(w.ops))
	prog := &exec.Program{
		DAG:  d,
		Fns:  make(map[*core.Node]exec.OpFunc, len(w.ops)),
		Rows: make(map[*core.Node]*exec.RowOp),
	}
	for _, o := range w.ops {
		sig := fmt.Sprintf("%s|%s|%s", o.kind, o.name, o.params)
		n, err := d.AddNode(o.name, o.kind, o.comp, sig, !o.nondet)
		if err != nil {
			return nil, err
		}
		nodes[o] = n
		if o.output {
			d.MarkOutput(n)
		}
		if o.row != nil {
			n.Streamable = true
			prog.Rows[n] = o.row
		}
	}
	for _, o := range w.ops {
		n := nodes[o]
		for _, in := range o.inputs {
			if err := d.AddEdge(nodes[in], n); err != nil {
				return nil, err
			}
		}
		for _, u := range o.uses {
			if err := d.AddEdge(nodes[u], n); err != nil {
				return nil, err
			}
		}
		fn := o.fn
		prog.Fns[n] = func(ctx context.Context, inputs []any) (any, error) {
			return fn(ctx, inputs)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}
