package exec

import (
	"sync"
	"time"

	"helix/internal/core"
	"helix/internal/plan"
)

// Observer receives the structured events an executing iteration emits:
// the plan decision, per-node lifecycle, adaptive re-plan attempts, the
// write-behind flush barrier, planner-health stats, and iteration
// completion. Install one via Options.Observer (or the
// public helix.WithObserver option). Events are delivered serially — the
// engine never invokes the observer from two goroutines at once — but on
// whichever worker goroutine produced them, so a slow observer slows the
// run. A nil observer costs nothing: no events are constructed.
type Observer func(Event)

// Event is one structured occurrence within an executing iteration.
// Concrete types: PlanEvent, NodeEvent, ReplanEvent, FlushEvent,
// RunStatsEvent, DoneEvent.
type Event interface{ event() }

// PlanEvent reports the plan an iteration is about to execute: how the
// planner obtained it (cold solve, partial re-solve, or a wholesale cache
// hit), what it projects, and the state mix. Emitted exactly once per
// run, before any node starts.
type PlanEvent struct {
	// Iteration is the 0-based iteration index.
	Iteration int
	// Outcome reports how the plan was obtained (plan-cache consultation).
	Outcome plan.CacheOutcome
	// ProjectedSeconds is the plan's Equation-1 projection T(W, s).
	ProjectedSeconds float64
	// PlanTime is the time spent planning; zero when the run executes a
	// prebuilt plan (Engine.Execute).
	PlanTime time.Duration
	// Compute, Load, Prune count live nodes per assigned state.
	Compute, Load, Prune int
}

func (PlanEvent) event() {}

// NodePhase distinguishes the two lifecycle points a NodeEvent reports.
type NodePhase int

const (
	// NodeStarted fires when a worker picks the node up, before its
	// load or compute begins.
	NodeStarted NodePhase = iota
	// NodeRetired fires when the node goes out of scope (Definition 5):
	// its own time is final and its materialization decision has been
	// made. Live pruned nodes retire immediately with zero seconds.
	NodeRetired
)

// String names the phase for progress displays.
func (p NodePhase) String() string {
	if p == NodeStarted {
		return "start"
	}
	return "retire"
}

// NodeEvent reports one node's lifecycle transition.
type NodeEvent struct {
	// Iteration is the 0-based iteration index.
	Iteration int
	// Name is the operator's declared name.
	Name string
	// Phase is the lifecycle point (started or retired).
	Phase NodePhase
	// State is the plan-assigned execution state.
	State core.State
	// Seconds is the node's own measured time t(n); zero at NodeStarted.
	Seconds float64
	// Materialized reports, at retirement, whether the node's result is
	// known to be on disk (loaded results, already-stored equivalents, and
	// inline synchronous writes count; a write-behind write still in the
	// writer pool reports false — consult Result.Nodes after the run for
	// the settled outcome).
	Materialized bool
	// Bytes is the serialized size when known at emission time.
	Bytes int64
	// Fused reports that the node executed as a member of a streaming
	// fused run: its Seconds are an even share of the unit's measured
	// wall time, and interior members retire without a value of their own.
	Fused bool
}

func (NodeEvent) event() {}

// FlushEvent reports the write-behind flush barrier after the last node
// finished: Wait is the straggler wait before every handed-off write was
// durable (zero under SyncMaterialization, where writes were inline).
type FlushEvent struct {
	Iteration int
	Wait      time.Duration
}

func (FlushEvent) event() {}

// ReplanEvent reports one mid-run re-planning attempt by the adaptive
// divergence monitor (Options.AdaptiveThreshold): measured times on
// completed nodes drifted past the threshold, so the engine corrected the
// cost estimates of not-yet-started nodes and asked the planner to
// reconsider the frontier. Zero or more per run, between node events.
type ReplanEvent struct {
	// Iteration is the 0-based iteration index.
	Iteration int
	// Divergence is the relative gap |measured−projected|/projected over
	// the completions accumulated since the last attempt — the trigger.
	Divergence float64
	// Corrected counts frontier nodes whose compute estimate was rewritten
	// from observed timings before re-planning.
	Corrected int
	// Planned reports that a re-plan actually ran. False when no estimate
	// moved enough to matter (the correction was idempotent), in which
	// case the attempt cost one scan and no planning at all.
	Planned bool
	// Outcome is the plan cache's verdict for the re-plan (meaningful only
	// when Planned): CacheHit re-used the run's own cached plan wholesale,
	// CachePartial re-solved only the weak components whose cost keys
	// moved.
	Outcome plan.CacheOutcome
	// Solves is the cumulative number of max-flow solves consumed by
	// re-planning so far this run, bounded by Options.AdaptiveMaxSolves.
	Solves int
	// Swapped counts nodes this attempt moved from Compute to Load.
	Swapped int
	// ProjectedSeconds is the re-plan's revised Equation-1 projection;
	// zero when Planned is false.
	ProjectedSeconds float64
}

func (ReplanEvent) event() {}

// RunStatsEvent summarizes the run's planner health: how the plan was
// obtained, how many max-flow solves the iteration consumed in total
// (initial plan plus adaptive re-plans), and what the adaptive monitor
// did. Emitted once per successful run, after the flush barrier and
// before DoneEvent; failed runs end their stream without one.
type RunStatsEvent struct {
	// Iteration is the 0-based iteration index.
	Iteration int
	// Outcome is the plan cache's verdict for the initial plan.
	Outcome plan.CacheOutcome
	// Solves counts max-flow solves across the whole iteration: the
	// initial plan's (0 on a cache hit) plus every adaptive re-plan's.
	Solves int
	// Replans counts adaptive re-plan attempts (including idempotent ones
	// that skipped planning); zero when adaptivity is off.
	Replans int
	// Swapped counts nodes adaptively moved from Compute to Load mid-run.
	Swapped int
}

func (RunStatsEvent) event() {}

// DoneEvent reports successful completion of the iteration. Failed runs
// end their event stream without one.
type DoneEvent struct {
	Iteration int
	// Wall is the compute critical path (Result.Wall).
	Wall time.Duration
	// FlushWait is the barrier wait (Result.FlushWait).
	FlushWait time.Duration
}

func (DoneEvent) event() {}

// emitter serializes event delivery to one observer. A nil *emitter is
// the "no observer" case: every emit method nil-checks the receiver
// first and returns without constructing an event, so instrumentation
// costs nothing when disabled (asserted by TestEmitterNilCostsNothing).
type emitter struct {
	obs       Observer
	iteration int
	mu        sync.Mutex
}

// newEmitter returns an emitter for obs, or nil when obs is nil.
func newEmitter(obs Observer, iteration int) *emitter {
	if obs == nil {
		return nil
	}
	return &emitter{obs: obs, iteration: iteration}
}

func (em *emitter) emit(ev Event) {
	em.mu.Lock()
	em.obs(ev)
	em.mu.Unlock()
}

// plan emits the run's single PlanEvent.
func (em *emitter) plan(p *plan.Plan, planTime time.Duration) {
	if em == nil {
		return
	}
	em.emit(PlanEvent{
		Iteration:        em.iteration,
		Outcome:          p.Cache,
		ProjectedSeconds: p.ProjectedSeconds,
		PlanTime:         planTime,
		Compute:          p.Counts[core.StateCompute],
		Load:             p.Counts[core.StateLoad],
		Prune:            p.Counts[core.StatePrune],
	})
}

// node emits one node lifecycle event. Scalar arguments keep the call
// sites allocation-free when the emitter is nil.
func (em *emitter) node(name string, phase NodePhase, state core.State, secs float64, materialized bool, bytes int64, fused bool) {
	if em == nil {
		return
	}
	em.emit(NodeEvent{
		Iteration:    em.iteration,
		Name:         name,
		Phase:        phase,
		State:        state,
		Seconds:      secs,
		Materialized: materialized,
		Bytes:        bytes,
		Fused:        fused,
	})
}

// replan emits one adaptive re-plan attempt.
func (em *emitter) replan(ev ReplanEvent) {
	if em == nil {
		return
	}
	ev.Iteration = em.iteration
	em.emit(ev)
}

// runStats emits the run's planner-health summary.
func (em *emitter) runStats(outcome plan.CacheOutcome, solves, replans, swapped int) {
	if em == nil {
		return
	}
	em.emit(RunStatsEvent{
		Iteration: em.iteration,
		Outcome:   outcome,
		Solves:    solves,
		Replans:   replans,
		Swapped:   swapped,
	})
}

// flush emits the flush-barrier event.
func (em *emitter) flush(wait time.Duration) {
	if em == nil {
		return
	}
	em.emit(FlushEvent{Iteration: em.iteration, Wait: wait})
}

// done emits the iteration-complete event.
func (em *emitter) done(wall, flushWait time.Duration) {
	if em == nil {
		return
	}
	em.emit(DoneEvent{Iteration: em.iteration, Wall: wall, FlushWait: flushWait})
}
