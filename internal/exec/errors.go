package exec

import "fmt"

// NodeError reports the failure of one operator during an iteration. It
// wraps the operator's own error, so callers can both identify the
// failing node (errors.As → Op) and classify the cause (errors.Is on the
// wrapped error, e.g. context.Canceled).
type NodeError struct {
	// Op is the failing operator's declared name.
	Op string
	// Err is the underlying failure: the operator function's error, a
	// failed input, or the run context's cancellation error.
	Err error
}

// Error implements error.
func (e *NodeError) Error() string { return fmt.Sprintf("exec: node %q: %v", e.Op, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *NodeError) Unwrap() error { return e.Err }
