package exec

import (
	"errors"
	"fmt"
)

// Sentinel errors of the executor's taxonomy. Callers classify failures
// with errors.Is against these (and errors.As against *NodeError);
// helixlint (errtaxonomy) keeps exec's error returns inside the
// taxonomy.
var (
	// ErrBadPlan reports a plan handed to Run/execute that was not built
	// from the given program: nil, wrong node count, or foreign node
	// pointers.
	ErrBadPlan = errors.New("exec: plan was not built from this program")
	// ErrNoFunction reports a node scheduled for compute that has no
	// function — a Source fed no value, or a recompute of an opaque node.
	ErrNoFunction = errors.New("no function for node")
)

// NodeError reports the failure of one operator during an iteration. It
// wraps the operator's own error, so callers can both identify the
// failing node (errors.As → Op) and classify the cause (errors.Is on the
// wrapped error, e.g. context.Canceled).
type NodeError struct {
	// Op is the failing operator's declared name.
	Op string
	// Err is the underlying failure: the operator function's error, a
	// failed input, or the run context's cancellation error.
	Err error
}

// Error implements error.
func (e *NodeError) Error() string { return fmt.Sprintf("exec: node %q: %v", e.Op, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *NodeError) Unwrap() error { return e.Err }
