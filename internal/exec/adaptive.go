// Mid-run adaptive re-planning (Options.AdaptiveThreshold).
//
// The OPT-EXEC-PLAN solve prices every node from carried statistics; when
// those statistics are wrong — a new operator, changed data, a slower
// machine — the plan's Compute/Load split is wrong too, and the error is
// observable long before the run ends. The divergence monitor accumulates
// measured-versus-projected time over completed nodes and, past a relative
// threshold, corrects the estimates of not-yet-started nodes from the
// timings observed so far, then re-plans through the plan cache's partial
// path: completed and in-flight nodes' metrics are untouched (the executor
// defers its metric writes until after the run), so their cost keys are
// byte-identical to the run's own cached entry and only the weak
// components containing a corrected node are re-solved. Frontier nodes the
// revised solve moves from Compute to Load are swapped in the scheduler.
//
// Concurrency protocol: workers claim a run (nodeRun.started) under the
// monitor's read lock before reading its mutable fields; the re-planner
// runs inline on whichever worker tripped the threshold, holds the write
// lock, and mutates only runs it observes unstarted. Lock order is
// adaptState.mu → Engine.planMu; the emitter's and ready queue's internal
// mutexes are leaves.
package exec

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"helix/internal/core"
	"helix/internal/plan"
	"helix/internal/store"
)

const (
	// defaultAdaptiveMaxSolves bounds mid-run re-solve speculation when
	// Options.AdaptiveMaxSolves is unset.
	defaultAdaptiveMaxSolves = 3
	// biasApplyGate: a correction factor within this band of 1 is noise,
	// not a regime change — leave the estimate alone.
	biasApplyGate = 0.15
	// biasIdemGate: skip rewriting an estimate that would move by less
	// than this fraction. Repeated triggers under a stable skew therefore
	// write nothing, keep the fingerprint unchanged, and re-plan as a
	// free full cache hit — the property that lets re-plan attempts
	// outnumber the solve budget without exceeding it.
	biasIdemGate = 0.10
)

// snapView is a memoizing store view: the first Lookup/EstimateLoad per
// key is answered by the store, every later one from the memo. The
// adaptive runner plans its initial plan and all mid-run re-plans through
// one snapView, so artifacts published or evicted while the run executes
// cannot dirty a re-plan's fingerprint — the only deltas versus the run's
// cached entry are the monitor's deliberate metric corrections.
type snapView struct {
	mu    sync.Mutex
	st    *store.Store
	sizes map[string]int64
	miss  map[string]bool
	ests  map[int64]time.Duration
}

func newSnapView(st *store.Store) *snapView {
	return &snapView{
		st:    st,
		sizes: make(map[string]int64),
		miss:  make(map[string]bool),
		ests:  make(map[int64]time.Duration),
	}
}

func (v *snapView) Lookup(key string) (int64, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if size, ok := v.sizes[key]; ok {
		return size, true
	}
	if v.miss[key] {
		return 0, false
	}
	ent, ok := v.st.Entry(key)
	if !ok {
		v.miss[key] = true
		return 0, false
	}
	v.sizes[key] = ent.Size
	return ent.Size, true
}

func (v *snapView) EstimateLoad(size int64) time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	if d, ok := v.ests[size]; ok {
		return d
	}
	d := v.st.EstimateLoad(size)
	v.ests[size] = d
	return d
}

// biasSums accumulates measured seconds against planned compute seconds
// for one correction key (operator signature, kind, or globally).
type biasSums struct {
	meas float64 // measured own seconds of completed compute nodes
	base float64 // the initial plan's compute estimates for the same nodes
	n    int
}

// add folds one completed compute node into the sums.
func (b *biasSums) add(meas, base float64) {
	b.meas += meas
	b.base += base
	b.n++
}

// factor returns meas/base when the sums rest on at least minSamples
// completions, else 0.
func (b *biasSums) factor(minSamples int) float64 {
	if b == nil || b.n < minSamples || b.base <= 0 {
		return 0
	}
	return b.meas / b.base
}

// adaptState is the armed divergence monitor for one run.
type adaptState struct {
	mu sync.RWMutex

	engine *Engine
	d      *core.DAG
	prev   *core.DAG
	opts   Options
	view   *snapView

	threshold float64
	maxSolves int

	st   *runState
	runs []*nodeRun

	// Divergence accumulators over completions since the last re-plan
	// attempt; reset per attempt so each trigger needs fresh evidence.
	projSum float64
	measSum float64

	// Correction-factor evidence, keyed from most to least specific.
	// Factors are expressed against nodeRun.baseC — the initial plan's
	// estimate — never against an already-corrected value, so applying
	// the same factor twice writes the same number (idempotence).
	perOp   map[string]*biasSums
	perKind map[core.Kind]*biasSums
	global  biasSums

	solves   int // max-flow solves consumed by re-plans
	replans  int // re-plan attempts, idempotent ones included
	swapped  int // Compute→Load swaps adopted
	disabled bool

	// cloned is the row-cloned plan swaps are recorded on (cached plans
	// alias their rows into the plan cache, which must never see a
	// mutated row); nil until the first swap. Reported as Result.Plan.
	cloned *plan.Plan
}

func newAdaptState(e *Engine, d, prev *core.DAG, opts Options, view *snapView) *adaptState {
	maxSolves := opts.AdaptiveMaxSolves
	if maxSolves <= 0 {
		maxSolves = defaultAdaptiveMaxSolves
	}
	return &adaptState{
		engine:    e,
		d:         d,
		prev:      prev,
		opts:      opts,
		view:      view,
		threshold: opts.AdaptiveThreshold,
		maxSolves: maxSolves,
		perOp:     make(map[string]*biasSums),
		perKind:   make(map[core.Kind]*biasSums),
	}
}

// arm binds the monitor to the run. Called before any worker starts, so
// no locking: it snapshots each run's planned compute estimate (the
// correction base) and initial projection.
func (ad *adaptState) arm(st *runState, runs []*nodeRun) {
	ad.st = st
	ad.runs = runs
	st.adapt = ad
	for _, r := range runs {
		r.baseC = r.np.Costs.Compute
		r.proj = r.np.ProjectedOwn
	}
}

// note feeds one successful completion into the monitor and, when the
// accumulated divergence crosses the threshold, re-plans inline on the
// calling worker goroutine. The event (if any) is emitted after the lock
// is released so a slow observer never blocks claims.
func (ad *adaptState) note(s *runState, r *nodeRun, ready *readyQueue) {
	ad.mu.Lock()
	if r.unit != nil {
		for _, m := range r.unit {
			ad.noteOne(m)
		}
	} else {
		ad.noteOne(r)
	}
	var ev ReplanEvent
	replanned := false
	if !ad.disabled && ad.projSum > 0 {
		if div := math.Abs(ad.measSum-ad.projSum) / ad.projSum; div > ad.threshold {
			ev, replanned = ad.replanLocked(s, div, ready)
		}
	}
	ad.mu.Unlock()
	if replanned {
		s.em.replan(ev)
	}
}

// noteOne accumulates one completed run. Called with ad.mu held.
func (ad *adaptState) noteOne(r *nodeRun) {
	if !r.measuredOK {
		return
	}
	if r.proj > 0 {
		ad.projSum += r.proj
		ad.measSum += r.ownSecs
	}
	// Correction evidence comes from computed nodes only: loads already
	// self-correct through the store's bandwidth model, and a load's
	// timing says nothing about a compute estimate.
	if r.state == core.StateCompute && r.baseC > 0 {
		op := r.node.OpSignature
		b := ad.perOp[op]
		if b == nil {
			b = &biasSums{}
			ad.perOp[op] = b
		}
		b.add(r.ownSecs, r.baseC)
		k := ad.perKind[r.node.Kind]
		if k == nil {
			k = &biasSums{}
			ad.perKind[r.node.Kind] = k
		}
		k.add(r.ownSecs, r.baseC)
		ad.global.add(r.ownSecs, r.baseC)
	}
}

// factorFor resolves the correction factor for a frontier node from the
// most specific evidence available: same operator signature (one
// completion suffices — it is the same operator), same kind (two), any
// completion at all (two). 0 means no usable evidence.
func (ad *adaptState) factorFor(n *core.Node) float64 {
	if f := ad.perOp[n.OpSignature].factor(1); f > 0 {
		return f
	}
	if f := ad.perKind[n.Kind].factor(2); f > 0 {
		return f
	}
	return ad.global.factor(2)
}

// replanLocked runs one re-plan attempt: correct frontier estimates,
// re-plan through the cache's partial path, adopt Compute→Load swaps for
// unstarted nodes. Called with ad.mu held; returns the event to emit
// after unlock, with ok=false when the attempt was suppressed by the
// solve budget. The event is a named return value, never a heap
// literal, so the observer-off path allocates nothing.
func (ad *adaptState) replanLocked(s *runState, div float64, ready *readyQueue) (ev ReplanEvent, ok bool) {
	if ad.solves >= ad.maxSolves {
		ad.disabled = true
		return ev, false
	}
	ad.replans++
	ev.Divergence = div
	ev.Solves = ad.solves
	// Each attempt needs fresh divergence evidence; the correction sums
	// persist (they are estimates, not triggers).
	ad.projSum, ad.measSum = 0, 0

	// 1. Correct the frontier: rewrite unstarted compute nodes' estimates
	// from observed factors. Factors multiply the initial estimate
	// (baseC), so a repeat trigger under the same skew computes the same
	// value and the idempotence gate skips the write — leaving the
	// fingerprint, and therefore the cache outcome, untouched.
	corrected := 0
	for _, r := range ad.runs {
		if atomic.LoadInt32(&r.started) != 0 || r.state != core.StateCompute {
			continue
		}
		if r.unit != nil || r.fusedInto != nil {
			// Fused units share one measured wall; per-member correction
			// would be guesswork. Leave them to post-run observation.
			continue
		}
		f := ad.factorFor(r.node)
		if f <= 0 || math.Abs(f-1) <= biasApplyGate || r.baseC <= 0 {
			continue
		}
		newC := time.Duration(r.baseC * f * float64(time.Second))
		if cur := r.node.Metrics.Compute; cur > 0 {
			if ratio := float64(newC) / float64(cur); math.Abs(ratio-1) < biasIdemGate {
				continue
			}
		}
		r.node.Metrics.Compute = newC
		r.node.Metrics.Known = true
		corrected++
	}
	ev.Corrected = corrected
	if corrected == 0 {
		return ev, true
	}

	// 2. Re-plan. Same options, token, and memoized store view as the
	// initial plan; SkipCarry because the corrected metrics ARE the
	// input. Completed nodes' cost keys are unchanged, so the cache's
	// partial path re-solves only the components a correction touched —
	// or, when nothing moved since the last attempt, full-hits for free.
	p2, err := ad.engine.planWithView(ad.d, ad.prev, s.iteration, ad.opts, ad.view, true)
	if err != nil {
		// A mid-run planning failure only means the run proceeds with the
		// plan it already has.
		ad.disabled = true
		return ev, true
	}
	ev.Planned = true
	ev.Outcome = p2.Cache
	ev.ProjectedSeconds = p2.ProjectedSeconds
	ad.solves += p2.Solves
	ev.Solves = ad.solves
	if ad.solves >= ad.maxSolves {
		ad.disabled = true
	}

	// 3. Adopt. Projections refresh for every unstarted node; state
	// changes are adopted only as Compute→Load on deterministic,
	// unfused, unstarted nodes — the one swap that is always sound
	// mid-run (the artifact existed at run start; loading it is an
	// equivalent materialization by Definition 3).
	swapped := 0
	for i, np2 := range p2.Nodes {
		if i >= len(ad.runs) || np2.Node != ad.runs[i].node {
			break // defensive: plan/run misalignment, adopt nothing further
		}
		r := ad.runs[i]
		if atomic.LoadInt32(&r.started) != 0 || r.unit != nil || r.fusedInto != nil {
			continue
		}
		if r.state == np2.State {
			r.proj = np2.ProjectedOwn
			continue
		}
		if r.state != core.StateCompute || np2.State != core.StateLoad || !r.node.Deterministic {
			continue
		}
		ad.swapLocked(s, r, np2, ready)
		swapped++
	}
	ev.Swapped = swapped
	ad.swapped += swapped
	if swapped > 0 {
		ad.cloned.ProjectedSeconds = p2.ProjectedSeconds
	}
	return ev, true
}

// swapLocked moves one unstarted run from Compute to Load: record the
// decision on the row-cloned plan, release the parents' pending counts
// (the load reads disk, not their values), and make the run schedulable
// immediately if it was still waiting on parents. Called with ad.mu held.
func (ad *adaptState) swapLocked(s *runState, r *nodeRun, np2 *plan.NodePlan, ready *readyQueue) {
	if ad.cloned == nil {
		ad.cloned = s.plan.CloneRows()
	}
	row := ad.cloned.Nodes[np2.Index]
	row.State = core.StateLoad
	row.Costs = np2.Costs
	row.ProjectedOwn = np2.ProjectedOwn
	row.Rationale = "adaptive: observed compute cost exceeded load, swapped mid-run"
	ad.cloned.Counts[core.StateCompute]--
	ad.cloned.Counts[core.StateLoad]++

	hadDeps := atomic.LoadInt32(&r.deps) > 0
	r.state = core.StateLoad
	r.proj = np2.ProjectedOwn

	// The load consumes no parent values: release each parent's pending
	// count as the compute's completion would have. A parent that is
	// already finished and reaches zero retires here; an unfinished one
	// retires on its own completion path (its finished flag is set before
	// its own pending check, so exactly one side fires).
	for _, p := range r.node.Parents() {
		pr := s.runs[p]
		if pr == nil {
			continue
		}
		if atomic.AddInt32(&pr.pending, -1) == 0 && atomic.LoadInt32(&pr.finished) == 1 {
			s.retire(pr)
		}
	}
	if hadDeps {
		// Still queued behind unfinished parents as a compute; as a load
		// it is ready now. Future release() calls skip it (state is no
		// longer Compute), so this is the only push. A push after the
		// queue closed (cancellation) is dropped, which is fine — the run
		// is unwinding.
		ready.push(r)
	}
}

// summary reports the monitor's totals and the row-cloned plan (nil when
// no swap happened). Called after the workers have quiesced.
func (ad *adaptState) summary() (solves, replans, swapped int, final *plan.Plan) {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	return ad.solves, ad.replans, ad.swapped, ad.cloned
}
