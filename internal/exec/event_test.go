package exec

import (
	"context"
	"testing"
	"time"

	"helix/internal/core"
	"helix/internal/plan"
	"helix/internal/store"
)

// TestEmitterNilCostsNothing pins the no-observer contract: with no
// observer installed the emitter is nil, every emit helper returns
// before constructing an event, and the instrumented hot paths allocate
// nothing.
func TestEmitterNilCostsNothing(t *testing.T) {
	em := newEmitter(nil, 3)
	if em != nil {
		t.Fatal("newEmitter(nil) must return a nil emitter")
	}
	p := &planStub
	if allocs := testing.AllocsPerRun(100, func() {
		em.plan(p, time.Millisecond)
		em.node("n", NodeStarted, core.StateCompute, 0, false, 0, false)
		em.node("n", NodeRetired, core.StateCompute, 0.5, true, 128, true)
		em.flush(time.Millisecond)
		em.done(time.Second, time.Millisecond)
	}); allocs != 0 {
		t.Fatalf("nil emitter allocated %.1f times per run, want 0", allocs)
	}
}

// TestEngineEventOrdering: at the engine level, a run's stream is plan
// first, then node lifecycle, then flush, then run stats, then done —
// and a failed run's stream has no done event.
func TestEngineEventOrdering(t *testing.T) {
	e := newEngine(t)
	var events []Event
	e.Opts.Observer = func(ev Event) { events = append(events, ev) }
	var c counters
	prog := testProgram(&c)
	if _, err := e.Run(context.Background(), prog, nil, 0); err != nil {
		t.Fatal(err)
	}
	if len(events) < 5 {
		t.Fatalf("got %d events", len(events))
	}
	if _, ok := events[0].(PlanEvent); !ok {
		t.Fatalf("first event %T, want PlanEvent", events[0])
	}
	if _, ok := events[len(events)-3].(FlushEvent); !ok {
		t.Fatalf("antepenultimate event %T, want FlushEvent", events[len(events)-3])
	}
	rs, ok := events[len(events)-2].(RunStatsEvent)
	if !ok {
		t.Fatalf("penultimate event %T, want RunStatsEvent", events[len(events)-2])
	}
	if rs.Solves != 1 || rs.Replans != 0 || rs.Swapped != 0 {
		t.Fatalf("cold non-adaptive run stats = %+v, want 1 solve, 0 replans, 0 swaps", rs)
	}
	if _, ok := events[len(events)-1].(DoneEvent); !ok {
		t.Fatalf("last event %T, want DoneEvent", events[len(events)-1])
	}
	starts := 0
	for _, ev := range events[1 : len(events)-3] {
		ne, ok := ev.(NodeEvent)
		if !ok {
			t.Fatalf("mid-stream event %T, want NodeEvent", ev)
		}
		if ne.Phase == NodeStarted {
			starts++
		}
	}
	if starts != 4 {
		t.Fatalf("%d node starts, want 4", starts)
	}

	// A failing run ends its stream without a DoneEvent.
	events = nil
	bad := failingProgram()
	if _, err := e.Run(context.Background(), bad, nil, 1); err == nil {
		t.Fatal("expected failure")
	}
	for _, ev := range events {
		if _, ok := ev.(DoneEvent); ok {
			t.Fatal("failed run emitted DoneEvent")
		}
	}
}

// failingProgram is a two-node chain whose second operator errors.
func failingProgram() *Program {
	d := core.NewDAG()
	src := d.MustAddNode("fsource", core.KindSource, core.DPR, "fsrc-v1", true)
	bad := d.MustAddNode("fbad", core.KindReducer, core.PPR, "fbad-v1", true)
	mustEdge(d, src, bad)
	d.MarkOutput(bad)
	return &Program{
		DAG: d,
		Fns: map[*core.Node]OpFunc{
			src: func(ctx context.Context, in []any) (any, error) { return 1, nil },
			bad: func(ctx context.Context, in []any) (any, error) {
				return nil, context.DeadlineExceeded
			},
		},
	}
}

// planStub gives the nil-emitter alloc test a *plan.Plan argument with
// just the fields the emit path would read populated.
var planStub = plan.Plan{Counts: map[core.State]int{core.StateCompute: 1}}

// BenchmarkRunNoObserver / BenchmarkRunObserver guard the acceptance
// requirement that events add no measurable wall-clock cost when no
// observer is installed: compare the two series over time. The workload
// is a steady-state reuse iteration (the hot case the event system must
// not tax).
func BenchmarkRunNoObserver(b *testing.B) { benchmarkRunEvents(b, false) }

func BenchmarkRunObserver(b *testing.B) { benchmarkRunEvents(b, true) }

func benchmarkRunEvents(b *testing.B, observed bool) {
	dir := b.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	e := New(st, -1)
	e.Opts.Parallelism = 4
	if observed {
		var n int
		e.Opts.Observer = func(Event) { n++ }
	}
	var c counters
	prog := testProgram(&c)
	prev := prog.DAG
	if _, err := e.Run(context.Background(), prog, nil, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := testProgram(&c)
		if _, err := e.Run(context.Background(), p, prev, i+1); err != nil {
			b.Fatal(err)
		}
		prev = p.DAG
	}
}
