package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"helix/internal/core"
	"helix/internal/opt"
	"helix/internal/store"
)

// chainProgram builds a 1000+-node deep chain: each node adds 1 to its
// input, so the output equals the chain length and any scheduling error
// (skipped node, wrong input) shows up as a wrong integer.
func deepChainProgram(n int) *Program {
	d := core.NewDAG()
	prog := &Program{DAG: d, Fns: make(map[*core.Node]OpFunc, n)}
	var prev *core.Node
	for i := 0; i < n; i++ {
		node := d.MustAddNode(fmt.Sprintf("c%d", i), core.KindExtractor, core.DPR, fmt.Sprintf("c%d-v1", i), true)
		if prev != nil {
			mustEdge(d, prev, node)
		}
		prog.Fns[node] = func(ctx context.Context, in []any) (any, error) {
			if len(in) == 0 {
				return 1, nil
			}
			return in[0].(int) + 1, nil
		}
		prev = node
	}
	d.MarkOutput(prev)
	return prog
}

// fanoutProgram builds source → n extractors → sink: the widest possible
// ready queue. The sink sums its inputs, so the result checks that every
// branch ran against the right input.
func fanoutProgram(n int) *Program {
	d := core.NewDAG()
	prog := &Program{DAG: d, Fns: make(map[*core.Node]OpFunc, n+2)}
	src := d.MustAddNode("src", core.KindSource, core.DPR, "src-v1", true)
	prog.Fns[src] = func(ctx context.Context, in []any) (any, error) { return 7, nil }
	sink := d.MustAddNode("sink", core.KindReducer, core.PPR, "sink-v1", true)
	for i := 0; i < n; i++ {
		i := i
		node := d.MustAddNode(fmt.Sprintf("f%d", i), core.KindExtractor, core.DPR, fmt.Sprintf("f%d-v1", i), true)
		mustEdge(d, src, node)
		mustEdge(d, node, sink)
		prog.Fns[node] = func(ctx context.Context, in []any) (any, error) {
			return in[0].(int) * (i + 1), nil
		}
	}
	prog.Fns[sink] = func(ctx context.Context, in []any) (any, error) {
		sum := 0
		for _, v := range in {
			sum += v.(int)
		}
		return sum, nil
	}
	d.MarkOutput(sink)
	return prog
}

// runBounded executes prog on a fresh engine with the given parallelism,
// NeverMat policy and inline materialization (so the only goroutines in
// play are the scheduler's workers), returning the output value and the
// peak goroutine-count delta observed during the run.
func runBounded(t *testing.T, prog *Program, parallelism int) (any, int) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Opts: Options{
		Policy:              opt.NeverMat{},
		SyncMaterialization: true,
		Parallelism:         parallelism,
	}}

	before := runtime.NumGoroutine()
	var peak atomic.Int64
	stop := make(chan struct{})
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if g := int64(runtime.NumGoroutine()); g > peak.Load() {
				peak.Store(g)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	res, err := e.Run(context.Background(), prog, nil, 0)
	close(stop)
	<-monitorDone
	if err != nil {
		t.Fatal(err)
	}
	outs := prog.DAG.Outputs()
	delta := int(peak.Load()) - before
	return res.Values[outs[len(outs)-1].Name], delta
}

// maxSchedDelta is the goroutine-count bound the scheduler must respect:
// its compute worker pool plus the store's writer pool, with slack for
// the monitor goroutine and the runtime's own background goroutines. The
// stress plans are iteration-0 all-compute DAGs, so the scheduler's
// separate I/O pool (sized by the plan's load count, here zero) adds
// nothing.
func maxSchedDelta(parallelism int) int {
	return parallelism + store.DefaultWriters + 2
}

func TestSchedulerDeepChainBoundedGoroutines(t *testing.T) {
	const n, par = 1000, 4
	got, delta := runBounded(t, deepChainProgram(n), par)
	if got != n {
		t.Fatalf("deep chain output = %v, want %d", got, n)
	}
	if delta > maxSchedDelta(par) {
		t.Fatalf("goroutine delta %d exceeds bound %d (parallelism %d): scheduler is not bounded",
			delta, maxSchedDelta(par), par)
	}
	// The bounded run must produce exactly what an effectively unbounded
	// pool produces.
	baseline, _ := runBounded(t, deepChainProgram(n), n)
	if got != baseline {
		t.Fatalf("bounded output %v != unbounded baseline %v", got, baseline)
	}
}

func TestSchedulerWideFanoutBoundedGoroutines(t *testing.T) {
	const n, par = 1000, 4
	got, delta := runBounded(t, fanoutProgram(n), par)
	want := 0
	for i := 0; i < n; i++ {
		want += 7 * (i + 1)
	}
	if got != want {
		t.Fatalf("fan-out output = %v, want %d", got, want)
	}
	if delta > maxSchedDelta(par) {
		t.Fatalf("goroutine delta %d exceeds bound %d (parallelism %d): %d-wide fan-out spawned per-node goroutines?",
			delta, maxSchedDelta(par), par, n)
	}
	baseline, _ := runBounded(t, fanoutProgram(n), n+2)
	if got != baseline {
		t.Fatalf("bounded output %v != unbounded baseline %v", got, baseline)
	}
}

// TestSchedulerParallelismActuallyOverlaps asserts the pool really runs
// up to Parallelism operators concurrently (it is a scheduler, not a
// serializer): with 8 parallel branches each sleeping 20ms and 4 workers,
// peak observed concurrency must reach 4 — and never exceed it.
func TestSchedulerParallelismActuallyOverlaps(t *testing.T) {
	const branches, par = 8, 4
	d := core.NewDAG()
	prog := &Program{DAG: d, Fns: make(map[*core.Node]OpFunc, branches+1)}
	var inFlight, maxInFlight atomic.Int32
	sink := d.MustAddNode("sink", core.KindReducer, core.PPR, "sink-v1", true)
	for i := 0; i < branches; i++ {
		node := d.MustAddNode(fmt.Sprintf("b%d", i), core.KindExtractor, core.DPR, fmt.Sprintf("b%d-v1", i), true)
		mustEdge(d, node, sink)
		prog.Fns[node] = func(ctx context.Context, in []any) (any, error) {
			cur := inFlight.Add(1)
			for {
				prev := maxInFlight.Load()
				if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			inFlight.Add(-1)
			return 1, nil
		}
	}
	prog.Fns[sink] = func(ctx context.Context, in []any) (any, error) { return len(in), nil }
	d.MarkOutput(sink)

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Opts: Options{
		Policy:              opt.NeverMat{},
		SyncMaterialization: true,
		Parallelism:         par,
	}}
	res, err := e.Run(context.Background(), prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["sink"] != branches {
		t.Fatalf("sink = %v, want %d", res.Values["sink"], branches)
	}
	if got := maxInFlight.Load(); got > par {
		t.Fatalf("observed %d concurrent operators, bound is %d", got, par)
	}
	if got := maxInFlight.Load(); got < 2 {
		t.Fatalf("observed %d concurrent operators: pool is serializing", got)
	}
}

// TestSchedulerReuseAcrossIterationsAtScale drives the deep chain through
// a second identical iteration under a reusing engine: the output loads,
// everything else prunes, and the bounded scheduler handles a plan that
// is almost entirely pruned nodes.
func TestSchedulerReuseAcrossIterationsAtScale(t *testing.T) {
	const n, par = 1000, 4
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := New(st, -1)
	e.Opts.Parallelism = par
	ctx := context.Background()
	prog := deepChainProgram(n)
	if _, err := e.Run(ctx, prog, nil, 0); err != nil {
		t.Fatal(err)
	}
	// The trivial integer ops measure in nanoseconds, so recomputing the
	// whole chain would genuinely beat one disk load and the optimizer
	// would (correctly) recompute. Inflate the carried statistics to make
	// reuse the optimal plan — the paper's regime, where operators take
	// seconds — so the rerun exercises a 1000-node almost-all-pruned plan.
	for _, node := range prog.DAG.Nodes() {
		node.Metrics.Compute = time.Second
		node.Metrics.Known = true
	}
	prog2 := deepChainProgram(n)
	res, err := e.Run(ctx, prog2, prog.DAG, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[fmt.Sprintf("c%d", n-1)]; got != n {
		t.Fatalf("reused output = %v, want %d", got, n)
	}
	if res.StateCounts[core.StateCompute] != 0 {
		t.Fatalf("identical rerun computed %d nodes", res.StateCounts[core.StateCompute])
	}
}
