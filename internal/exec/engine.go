// Package exec implements HELIX-Go's execution engine (paper §2.1, §5.3).
// It carries out the physical plan produced by the DAG optimizer — loading
// materialized results, computing operators in parallel on goroutines
// (standing in for Spark's fair scheduling), pruning skipped nodes — while
// consulting the materialization policy whenever an intermediate result
// goes out of scope (Definition 5), and evicting out-of-scope results from
// the in-memory cache eagerly (§5.4, cache pruning).
//
// # Write-behind materialization
//
// By default materialization is write-behind: when a node goes out of
// scope, retire() hands the value to the store's bounded background
// writer pool (store.PutAsync) and computation proceeds immediately;
// gob-encoding, the size-dependent policy check, the disk write, and the
// manifest update all happen off the critical path. Run drains the pool
// with a store.Flush barrier after the last node finishes, before the
// Result is assembled — so Result.MatTime still reports the full
// serialize+write cost, cross-iteration reuse observes every accepted
// materialization, and the manifest is current when Run returns.
// Result.Wall covers only the compute critical path; the (mostly
// overlapped) tail spent waiting at the barrier is reported separately as
// Result.FlushWait. Options.SyncMaterialization restores the historical
// inline behavior — serialize and write on the worker goroutine that
// computed the value — for A/B comparison in internal/bench.
package exec

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"helix/internal/core"
	"helix/internal/opt"
	"helix/internal/store"
)

// OpFunc computes one operator's output from its inputs, which arrive in
// the same order as the node's parents.
type OpFunc func(ctx context.Context, inputs []any) (any, error)

// Program is a compiled workflow: a DAG plus the executable function for
// each node. Produced by the DSL compiler.
type Program struct {
	DAG *core.DAG
	Fns map[*core.Node]OpFunc
}

// Sizer lets values report their approximate serialized size cheaply, so
// the engine can evaluate Algorithm 2's condition without paying the
// serialization cost for results it will not materialize.
type Sizer interface {
	ApproxBytes() int64
}

// Options configures an engine run.
type Options struct {
	// Policy decides which out-of-scope intermediates to materialize.
	Policy opt.MatPolicy
	// DisableReuse makes the engine ignore existing materializations when
	// planning (used to model KeystoneML and DeepDive, which do not
	// perform automatic cross-iteration reuse).
	DisableReuse bool
	// MaterializeOutputs forces output nodes to disk regardless of Policy
	// (the paper's "mandatory output" drums in Figure 3). Disabled for the
	// never-materialize baseline.
	MaterializeOutputs bool
	// DPRSlowdown multiplies the cost of DPR operators by sleeping
	// (factor-1)·elapsed after each DPR compute. Models DeepDive's
	// Python/shell preprocessing being ~2× slower than Spark (paper
	// §6.5.2). 0 or 1 means no slowdown.
	DPRSlowdown float64
	// LISlowdown does the same for L/I operators. Models KeystoneML's
	// "longer L/I time incurred by its caching optimizer's failing to
	// cache the training data for learning" (paper §6.5.2).
	LISlowdown float64
	// SampleMemory enables the memory sampler (Figure 10).
	SampleMemory bool
	// DisablePruning turns off program slicing (ablation).
	DisablePruning bool
	// SyncMaterialization disables write-behind: retire() serializes and
	// writes inline on the worker goroutine, putting the full
	// materialization cost back on the critical path. Kept as an escape
	// hatch and for A/B benchmarking against the async default.
	SyncMaterialization bool
}

// NodeReport is the per-node outcome of a run.
type NodeReport struct {
	State     core.State
	Component core.Component
	Seconds   float64 // own time t(n): compute or load duration
	MatSecs   float64 // materialization (serialize+write) time, if any
	Bytes     int64   // serialized size, if known
}

// Result summarizes one iteration's execution.
type Result struct {
	Iteration int
	// Values holds the value of every output node, keyed by node name.
	Values map[string]any
	// Nodes reports per-node state and timing, keyed by node name.
	Nodes map[string]NodeReport
	// Wall is the wall-clock duration of the run's compute critical path:
	// from Run entry until the last node finished. With write-behind
	// materialization (the default) background writes overlap computation
	// and are excluded; the residual wait for stragglers is FlushWait.
	// With SyncMaterialization, Wall includes all materialization time,
	// as the paper measures.
	Wall time.Duration
	// FlushWait is the time Run spent blocked at the store's Flush
	// barrier after computation finished, waiting for write-behind
	// stragglers. Zero under SyncMaterialization.
	FlushWait time.Duration
	// Breakdown sums node times by workflow component (Figure 6).
	Breakdown map[core.Component]time.Duration
	// MatTime is the total time spent materializing results (Figure 6, gray).
	MatTime time.Duration
	// StorageBytes is the store usage after the run (Figure 9c,d).
	StorageBytes int64
	// PeakMemBytes / AvgMemBytes are heap statistics (Figure 10); zero
	// unless Options.SampleMemory.
	PeakMemBytes, AvgMemBytes uint64
	// StateCounts counts nodes per state among live nodes (Figure 8).
	StateCounts map[core.State]int
}

// Engine executes compiled workflows against a materialization store.
type Engine struct {
	Store *store.Store
	Opts  Options
}

// New returns an engine with the paper's default configuration: streaming
// OMP with the given storage budget and mandatory output materialization.
func New(st *store.Store, budget int64) *Engine {
	return &Engine{
		Store: st,
		Opts: Options{
			Policy:             opt.NewStreamingOMP(budget),
			MaterializeOutputs: true,
		},
	}
}

// nodeRun is the mutable per-node execution record.
type nodeRun struct {
	node  *core.Node
	fn    OpFunc
	state core.State
	done  chan struct{}
	// valMu orders post-completion accesses to value: eviction (retire
	// setting it nil, possibly from another node's goroutine) versus the
	// load-failure fallback reading it. The owner's pre-close write and
	// child-input reads need no lock — they are ordered by the done
	// channel and the pending counter respectively.
	valMu sync.Mutex
	value any
	err   error
	ownSecs float64
	matSecs float64
	bytes   int64
	// pending counts children in Compute state that still need this node's
	// value; when it reaches zero the node is out of scope (Definition 5).
	pending int32
	retired int32
}

// Run executes one iteration of the program. prev is the previous
// iteration's DAG (nil at iteration 0) used for change tracking; iteration
// seeds the nondeterminism nonce. On success the program's DAG carries
// updated metrics and should be retained as prev for the next iteration.
func (e *Engine) Run(ctx context.Context, prog *Program, prev *core.DAG, iteration int) (*Result, error) {
	start := time.Now()
	d := prog.DAG
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("exec: invalid workflow: %w", err)
	}

	// 1. Change tracking (paper §4.2).
	d.ComputeSignatures()
	d.CarryMetrics(prev)
	originals := d.OriginalNodes(prev)

	// 2. Program slicing (paper §5.4).
	live := d.Slice()
	if e.Opts.DisablePruning {
		for _, n := range d.Nodes() {
			live[n] = true
		}
	}

	// 3. Purge deprecated materializations: an original node's old results
	// can never be reused (paper §6.6).
	if !e.Opts.DisableReuse {
		current := make(map[string]bool, d.Len())
		for _, n := range d.Nodes() {
			current[n.ChainSignature()] = true
		}
		deprecatedNames := make(map[string]bool)
		for n := range originals {
			deprecatedNames[n.Name] = true
		}
		freed, err := e.Store.Purge(func(key string) bool {
			if current[key] {
				return true
			}
			ent, ok := e.Store.Entry(key)
			return ok && !deprecatedNames[ent.Name]
		})
		if err != nil {
			return nil, fmt.Errorf("exec: purge: %w", err)
		}
		// Return the freed bytes to budget-tracking policies so storage
		// reclaimed from deprecated results can be spent again.
		if rel, ok := e.Opts.Policy.(interface{ Release(int64) }); ok && freed > 0 {
			rel.Release(freed)
		}
	}

	// 4. Cost model + OEP (paper §5.2, Algorithm 1).
	costs := make(map[*core.Node]opt.Costs, d.Len())
	for _, n := range d.Nodes() {
		if !live[n] {
			continue
		}
		c := opt.Costs{
			Compute:     n.Metrics.Compute.Seconds(),
			Load:        math.Inf(1),
			MustCompute: originals[n],
		}
		// Nondeterministic nodes never have an equivalent materialization
		// (Definition 3): a stored result is one random draw and must not
		// stand in for a fresh computation.
		if !e.Opts.DisableReuse && n.Deterministic {
			if ent, ok := e.Store.Entry(n.ChainSignature()); ok {
				c.Load = e.Store.EstimateLoad(ent.Size).Seconds()
			}
		}
		costs[n] = c
	}
	for _, o := range d.Outputs() {
		if c, ok := costs[o]; ok {
			c.Required = true
			costs[o] = c
		}
	}
	plan := opt.OptimalStates(d, costs)

	// 5. Execute.
	runs := make(map[*core.Node]*nodeRun, d.Len())
	for _, n := range d.Nodes() {
		runs[n] = &nodeRun{
			node:  n,
			fn:    prog.Fns[n],
			state: plan.States[n],
			done:  make(chan struct{}),
		}
	}
	for _, n := range d.Nodes() {
		var pending int32
		for _, ch := range n.Children() {
			if plan.States[ch] == core.StateCompute {
				pending++
			}
		}
		runs[n].pending = pending
	}

	var sampler *memSampler
	if e.Opts.SampleMemory {
		sampler = startMemSampler(5 * time.Millisecond)
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := &runState{
		engine:    e,
		runs:      runs,
		outputs:   make(map[*core.Node]bool, len(d.Outputs())),
		iteration: iteration,
		cancel:    cancel,
	}
	for _, o := range d.Outputs() {
		st.outputs[o] = true
	}

	var wg sync.WaitGroup
	for _, n := range d.TopoSort() {
		r := runs[n]
		if r.state == core.StatePrune {
			close(r.done)
			continue
		}
		wg.Add(1)
		go func(r *nodeRun) {
			defer wg.Done()
			st.execNode(rctx, r)
		}(r)
	}
	wg.Wait()
	computeWall := time.Since(start)

	// Write-behind barrier: wait for every materialization handed to the
	// store's writer pool before touching per-node accounting or letting
	// the caller observe the store. Runs on the error paths too, so a
	// failed iteration still quiesces its background writes. The flush
	// error is deliberately discarded: a failed write degrades to "not
	// materialized" exactly as the sync path does (retireSync ignores
	// PutBytes errors), keeping the two modes' failure semantics
	// identical for A/B comparison.
	var flushWait time.Duration
	if !e.Opts.SyncMaterialization {
		flushStart := time.Now()
		_ = e.Store.Flush()
		flushWait = time.Since(flushStart)
	}

	var firstErr error
	for _, n := range d.Nodes() {
		if r := runs[n]; r.err != nil {
			firstErr = fmt.Errorf("exec: node %q: %w", r.node.Name, r.err)
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// 6. Assemble the result.
	res := &Result{
		Iteration:   iteration,
		Values:      make(map[string]any, len(d.Outputs())),
		Nodes:       make(map[string]NodeReport, d.Len()),
		Breakdown:   make(map[core.Component]time.Duration, 3),
		StateCounts: make(map[core.State]int, 3),
	}
	for _, n := range d.Nodes() {
		r := runs[n]
		res.Nodes[n.Name] = NodeReport{
			State:     r.state,
			Component: n.Component,
			Seconds:   r.ownSecs,
			MatSecs:   r.matSecs,
			Bytes:     r.bytes,
		}
		if live[n] {
			res.StateCounts[r.state]++
		}
		res.Breakdown[n.Component] += time.Duration(r.ownSecs * float64(time.Second))
		res.MatTime += time.Duration(r.matSecs * float64(time.Second))
	}
	for _, o := range d.Outputs() {
		res.Values[o.Name] = runs[o].value
	}
	if sampler != nil {
		res.PeakMemBytes, res.AvgMemBytes = sampler.stop()
	}
	res.StorageBytes = e.Store.UsedBytes()
	res.Wall = computeWall
	res.FlushWait = flushWait
	return res, nil
}

// runState holds shared execution state.
type runState struct {
	engine    *Engine
	runs      map[*core.Node]*nodeRun
	outputs   map[*core.Node]bool
	iteration int
	cancel    context.CancelFunc

	// fallbackMu serializes concurrent recursive recomputations after
	// load failures (value accesses are guarded per-run by valMu, so this
	// is only about not duplicating recomputation work).
	fallbackMu sync.Mutex
}

// evict drops a run's in-memory value (eager cache pruning, §5.4) under
// the run's own valMu. Ordinary child reads of r.value are ordered by
// the pending counter protocol — a parent cannot retire until every
// computing child has read its inputs — but the load-failure fallback
// reads finished runs' values from an unrelated goroutine, so eviction
// must synchronize with it. The lock is per-run and held for one store:
// retirements on the hot path never contend with each other or with an
// in-flight recomputation's user code.
func (s *runState) evict(r *nodeRun) {
	r.valMu.Lock()
	r.value = nil
	r.valMu.Unlock()
}

// execNode runs a single node to completion: waits for computed parents,
// loads or computes, records timing, then retires out-of-scope nodes.
func (s *runState) execNode(ctx context.Context, r *nodeRun) {
	defer close(r.done)
	n := r.node

	switch r.state {
	case core.StateLoad:
		value, dur, err := s.engine.Store.Get(n.ChainSignature())
		if err != nil {
			// Failure injection path: a corrupt or missing materialization
			// must not abort the iteration — recompute instead (possibly
			// recomputing pruned ancestors on demand).
			value, err = s.recompute(ctx, n)
			if err != nil {
				r.err = err
				s.cancel()
				return
			}
			r.value = value
			r.ownSecs = n.Metrics.Compute.Seconds()
		} else {
			r.value = value
			r.ownSecs = dur.Seconds()
			n.Metrics.Load = dur
			n.Metrics.Known = true
		}
	case core.StateCompute:
		inputs := make([]any, len(n.Parents()))
		for i, p := range n.Parents() {
			pr := s.runs[p]
			select {
			case <-pr.done:
			case <-ctx.Done():
				r.err = ctx.Err()
				return
			}
			if pr.err != nil {
				r.err = fmt.Errorf("input %q failed", p.Name)
				return
			}
			inputs[i] = pr.value
		}
		if r.fn == nil {
			r.err = fmt.Errorf("no function for node")
			s.cancel()
			return
		}
		start := time.Now()
		value, err := r.fn(ctx, inputs)
		if err != nil {
			r.err = err
			s.cancel()
			return
		}
		elapsed := time.Since(start)
		if f := s.engine.Opts.DPRSlowdown; f > 1 && n.Component == core.DPR {
			extra := time.Duration(float64(elapsed) * (f - 1))
			time.Sleep(extra)
			elapsed += extra
		}
		if f := s.engine.Opts.LISlowdown; f > 1 && n.Component == core.LI {
			extra := time.Duration(float64(elapsed) * (f - 1))
			time.Sleep(extra)
			elapsed += extra
		}
		r.value = value
		r.ownSecs = elapsed.Seconds()
		n.Metrics.Compute = elapsed
		n.Metrics.Known = true
	}

	// Retirement cascade: this node's completion may put parents (and
	// itself, if it has no computing children) out of scope.
	if r.state == core.StateCompute {
		for _, p := range n.Parents() {
			pr := s.runs[p]
			if atomic.AddInt32(&pr.pending, -1) == 0 {
				s.retire(pr)
			}
		}
	}
	if atomic.LoadInt32(&r.pending) == 0 {
		s.retire(r)
	}
}

// retire handles an out-of-scope node (Definition 5, Constraint 3): decide
// materialization via the policy (Algorithm 2), then release the in-memory
// reference (eager cache pruning, §5.4).
func (s *runState) retire(r *nodeRun) {
	if !atomic.CompareAndSwapInt32(&r.retired, 0, 1) {
		return
	}
	n := r.node
	if r.state != core.StateCompute || r.err != nil {
		// Loaded results are already on disk: just release the cache
		// reference. Pruned nodes have no value.
		if r.state == core.StateLoad && !s.outputs[n] {
			s.evict(r)
		}
		return
	}
	e := s.engine
	if !n.Deterministic && (e.Opts.Policy == nil || !e.Opts.Policy.Blind()) {
		// A nondeterministic result is a single random draw: it can never
		// serve as an equivalent materialization (Definition 3), so writing
		// it only wastes storage and time. Cost-aware policies skip it;
		// blind ones (HELIX AM, DeepDive) pay for it — the paper's reason
		// AM fails to finish MNIST (§6.6). Evict unless it is an output.
		if !s.outputs[n] {
			s.evict(r)
		}
		return
	}
	key := n.ChainSignature()
	if e.Store.Has(key) {
		// Equivalent result already materialized: nothing to write, but
		// eager cache pruning (§5.4) still applies.
		if !s.outputs[n] {
			s.evict(r)
		}
		return
	}

	mandatory := e.Opts.MaterializeOutputs && s.outputs[n]
	// Cumulative run time C(n) per Definition 6, the policy's payoff input.
	// An ancestor's time is read only after observing its done channel
	// closed (ownSecs is written before the deferred close, so the read is
	// ordered after the write). The done-gate is load-bearing: a loaded
	// node closes its done channel without waiting for its own parents, so
	// an ancestor reachable only through a StateLoad node can still be
	// executing when n retires — its unfinished time is simply not part of
	// this chain's bill. Computed here, on the retiring goroutine, so the
	// write-behind path can capture a finished value.
	var cum float64
	if !mandatory {
		cum = r.ownSecs
		for anc := range core.Ancestors(n) {
			if ar := s.runs[anc]; ar != nil {
				select {
				case <-ar.done:
					cum += ar.ownSecs
				default:
				}
			}
		}
	}
	if e.Opts.SyncMaterialization {
		s.retireSync(r, key, mandatory, cum)
	} else {
		s.retireAsync(r, key, mandatory, cum)
	}
}

// retireSync is the historical inline path: serialize and write on the
// retiring goroutine, charging the full cost to the critical path.
func (s *runState) retireSync(r *nodeRun, key string, mandatory bool, cum float64) {
	e := s.engine
	n := r.node
	var decided, encoded bool
	var data []byte
	size := int64(-1)
	if sz, ok := r.value.(Sizer); ok {
		size = sz.ApproxBytes()
	}
	if !mandatory {
		if size < 0 {
			// No cheap size available: serialize to learn it. The encode
			// time is charged as materialization overhead.
			encStart := time.Now()
			var err error
			data, err = store.Encode(r.value)
			if err != nil {
				return // unserializable values are simply not materialized
			}
			r.matSecs += time.Since(encStart).Seconds()
			encoded = true
			size = int64(len(data))
		}
		load := e.Store.EstimateLoad(size).Seconds()
		decided = e.Opts.Policy != nil && e.Opts.Policy.Decide(n, cum, load, size)
	}
	if !mandatory && !decided {
		if !s.outputs[n] {
			s.evict(r) // outputs keep their value for Result
		}
		return
	}

	matStart := time.Now()
	if !encoded {
		var err error
		data, err = store.Encode(r.value)
		if err != nil {
			return
		}
	}
	ent, err := e.Store.PutBytes(key, n.Name, data, s.iteration)
	r.matSecs += time.Since(matStart).Seconds()
	if err != nil {
		return // a failed write degrades to no materialization
	}
	r.bytes = ent.Size
	n.Metrics.Size = ent.Size
	n.Metrics.Load = e.Store.EstimateLoad(ent.Size)
	if !s.outputs[n] {
		s.evict(r)
	}
}

// retireAsync is the write-behind path: hand the value to the store's
// writer pool and return immediately, so the nodes waiting on this
// goroutine's done channel are not held behind serialization or disk.
// Values that can report their size cheaply (Sizer) get their policy
// decision inline — skipping the enqueue entirely on a "no" — while the
// rest defer the decision to the writer goroutine, which learns the size
// by encoding there. The OnDone callback's writes to the nodeRun and node
// metrics are published to Run by the store.Flush barrier.
func (s *runState) retireAsync(r *nodeRun, key string, mandatory bool, cum float64) {
	e := s.engine
	n := r.node
	isOutput := s.outputs[n]
	req := store.WriteRequest{
		Key:       key,
		Name:      n.Name,
		Iteration: s.iteration,
		Value:     r.value,
	}
	if !mandatory {
		if sz, ok := r.value.(Sizer); ok {
			size := sz.ApproxBytes()
			load := e.Store.EstimateLoad(size).Seconds()
			if e.Opts.Policy == nil || !e.Opts.Policy.Decide(n, cum, load, size) {
				if !isOutput {
					s.evict(r)
				}
				return
			}
		} else {
			req.Decide = func(size int64) bool {
				load := e.Store.EstimateLoad(size).Seconds()
				return e.Opts.Policy != nil && e.Opts.Policy.Decide(n, cum, load, size)
			}
		}
	}
	req.OnDone = func(out store.WriteOutcome) {
		// Runs on a writer goroutine; Run reads these after Flush.
		r.matSecs += out.Secs
		if out.Written {
			r.bytes = out.Entry.Size
			n.Metrics.Size = out.Entry.Size
			n.Metrics.Load = e.Store.EstimateLoad(out.Entry.Size)
		}
	}
	e.Store.PutAsync(req)
	if !isOutput {
		// Eager cache pruning still applies: the writer pool now holds the
		// only reference needed for the pending write.
		s.evict(r)
	}
}

// recompute computes a node's value on demand, recursively ensuring parent
// values (which may have been pruned or evicted). Used only on the load-
// failure fallback path, so simplicity beats parallelism here.
func (s *runState) recompute(ctx context.Context, n *core.Node) (any, error) {
	s.fallbackMu.Lock()
	defer s.fallbackMu.Unlock()
	return s.recomputeLocked(ctx, n, make(map[*core.Node]any))
}

func (s *runState) recomputeLocked(ctx context.Context, n *core.Node, memo map[*core.Node]any) (any, error) {
	if v, ok := memo[n]; ok {
		return v, nil
	}
	if r := s.runs[n]; r != nil {
		select {
		case <-r.done:
			if r.err == nil {
				r.valMu.Lock()
				v := r.value
				r.valMu.Unlock()
				if v != nil {
					memo[n] = v
					return v, nil
				}
			}
		default:
		}
	}
	fn := s.runs[n].fn
	if fn == nil {
		return nil, fmt.Errorf("exec: cannot recompute %q: no function", n.Name)
	}
	inputs := make([]any, len(n.Parents()))
	for i, p := range n.Parents() {
		v, err := s.recomputeLocked(ctx, p, memo)
		if err != nil {
			return nil, err
		}
		inputs[i] = v
	}
	v, err := fn(ctx, inputs)
	if err != nil {
		return nil, err
	}
	memo[n] = v
	return v, nil
}
