// Package exec implements HELIX-Go's execution engine (paper §2.1, §5.3).
// It is a pure plan executor: the planning pipeline — change tracking,
// program slicing, and the OPT-EXEC-PLAN solve — lives in internal/plan,
// and Engine.Run first builds a Plan, then carries it out. Execution runs
// on a bounded worker-pool scheduler (Options.Parallelism goroutines, a
// ready queue fed by parent-completion counts) — standing in for Spark's
// fair scheduling while keeping goroutine count independent of DAG size —
// loading materialized results, computing operators, and pruning skipped
// nodes. Whenever an intermediate result goes out of scope (Definition 5)
// the engine consults the materialization policy and evicts the value
// from the in-memory cache eagerly (§5.4, cache pruning).
//
// # Write-behind materialization
//
// By default materialization is write-behind: when a node goes out of
// scope, retire() hands the value to the store's bounded background
// writer pool (store.PutAsync) and computation proceeds immediately;
// gob-encoding, the size-dependent policy check, the disk write, and the
// manifest update all happen off the critical path. Run drains the pool
// with a store.Flush barrier after the last node finishes, before the
// Result is assembled — so Result.MatTime still reports the full
// serialize+write cost, cross-iteration reuse observes every accepted
// materialization, and the manifest is current when Run returns.
// Result.Wall covers only the compute critical path; the (mostly
// overlapped) tail spent waiting at the barrier is reported separately as
// Result.FlushWait. Options.SyncMaterialization restores the historical
// inline behavior — serialize and write on the worker goroutine that
// computed the value — for A/B comparison in internal/bench.
//
// helixlint (errtaxonomy) holds this package's error returns to the
// typed taxonomy: wrapped sentinels (ErrBadPlan, ErrNoFunction, the
// context errors) and *NodeError, never bare leaf errors.
//
//lint:errtaxonomy
package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"helix/internal/core"
	"helix/internal/opt"
	"helix/internal/plan"
	"helix/internal/store"
)

// OpFunc computes one operator's output from its inputs, which arrive in
// the same order as the node's parents.
type OpFunc func(ctx context.Context, inputs []any) (any, error)

// Program is a compiled workflow: a DAG plus the executable function for
// each node. Produced by the DSL compiler. Rows carries the per-row
// implementation of each streamable operator (nil for batch-only nodes);
// the engine consults it when the plan fused a chain of such operators
// into one scheduled unit.
type Program struct {
	DAG  *core.DAG
	Fns  map[*core.Node]OpFunc
	Rows map[*core.Node]*RowOp
}

// Sizer lets values report their approximate serialized size cheaply, so
// the engine can evaluate Algorithm 2's condition without paying the
// serialization cost for results it will not materialize.
type Sizer interface {
	ApproxBytes() int64
}

// Options configures an engine run.
// helixlint (fingerprintfields) requires every field to be read by
// planWithView — i.e. folded into plan identity — or to carry a
// //lint:fpexempt reason saying why it is fingerprint-neutral.
//
//lint:fingerprint planWithView
type Options struct {
	// Policy decides which out-of-scope intermediates to materialize.
	//
	//lint:fpexempt acts at retire time (OMP), not plan time; cache safety comes from the session ConfigToken, which encodes the policy
	Policy opt.MatPolicy
	// DisableReuse makes the engine ignore existing materializations when
	// planning (used to model KeystoneML and DeepDive, which do not
	// perform automatic cross-iteration reuse).
	DisableReuse bool
	// MaterializeOutputs forces output nodes to disk regardless of Policy
	// (the paper's "mandatory output" drums in Figure 3). Disabled for the
	// never-materialize baseline.
	MaterializeOutputs bool
	// DPRSlowdown multiplies the cost of DPR operators by sleeping
	// (factor-1)·elapsed after each DPR compute. Models DeepDive's
	// Python/shell preprocessing being ~2× slower than Spark (paper
	// §6.5.2). 0 or 1 means no slowdown.
	//
	//lint:fpexempt execution-side sleep; its effect reaches the fingerprint through the carried cost statistics of the runs it slows
	DPRSlowdown float64
	// LISlowdown does the same for L/I operators. Models KeystoneML's
	// "longer L/I time incurred by its caching optimizer's failing to
	// cache the training data for learning" (paper §6.5.2).
	//
	//lint:fpexempt execution-side sleep; its effect reaches the fingerprint through the carried cost statistics of the runs it slows
	LISlowdown float64
	// SampleMemory enables the memory sampler (Figure 10).
	//
	//lint:fpexempt observability only; sampling never changes what is planned or computed
	SampleMemory bool
	// DisablePruning turns off program slicing (ablation).
	DisablePruning bool
	// SyncMaterialization disables write-behind: retire() serializes and
	// writes inline on the worker goroutine, putting the full
	// materialization cost back on the critical path. Kept as an escape
	// hatch and for A/B benchmarking against the async default.
	//
	//lint:fpexempt write-behind vs inline changes when bytes hit disk, not what is planned; the fuzzer proves results identical
	SyncMaterialization bool
	// Parallelism bounds the scheduler's compute worker pool: at most
	// this many operators compute concurrently, regardless of DAG width.
	// ≤0 uses runtime.GOMAXPROCS(0). Load-state nodes run on a separate
	// small I/O pool (max(Parallelism, 4), capped by the plan's load
	// count): loads are disk/throttle-bound, not CPU-bound, and must not
	// serialize behind compute on narrow hosts.
	//
	//lint:fpexempt scheduling width, not plan identity; encoded in the session ConfigToken for cache hygiene
	Parallelism int
	// Sched selects the ready-queue ordering. The zero value,
	// SchedCriticalPath, pops the ready node with the longest projected
	// downstream compute chain first (NodePlan.ProjectedTail), so
	// stragglers start early on unbalanced DAGs; when no projections
	// exist (iteration 0) all priorities are zero and the order degrades
	// to exact FIFO. SchedFIFO forces pure arrival order.
	//
	//lint:fpexempt ready-queue ordering changes execution interleaving, never the plan
	Sched SchedMode
	// IOWorkers sizes the Load-state I/O pool explicitly (the "io"
	// worker class). ≤0 keeps the heuristic max(Parallelism,
	// minLoadWorkers); either way the pool is capped by the plan's load
	// count.
	//
	//lint:fpexempt I/O pool sizing, not plan identity
	IOWorkers int
	// ConfigToken describes the engine-level configuration the run
	// executes under, for the plan cache's fingerprint: two runs with
	// differing tokens can never reuse each other's plans. Empty falls
	// back to the Cache's session-wide token.
	ConfigToken string
	// Observer, when non-nil, receives the run's structured events (plan
	// decided, node started/retired, flush barrier, iteration done).
	// Events are delivered serially but from worker goroutines; a nil
	// observer costs nothing.
	//
	//lint:fpexempt observer wiring never affects plan identity
	Observer Observer
	// DisableStreaming turns off operator fusion: every streamable node
	// executes as an ordinary batch operator with its own scheduler slot
	// and fully built output. Kept as an escape hatch
	// (helix.WithStreaming(false)) and for A/B benchmarking; the fuzz
	// harness proves the two modes byte-identical.
	DisableStreaming bool
	// Shared marks the run as executing against a content-addressed
	// shared store (store.OpenShared): planning derives originality from
	// the store instead of the previous DAG and never deprecates names
	// (plan.Options.Shared), and the engine skips the purge pass —
	// eviction of shared entries is the store's refcounted concern, never
	// one session's.
	Shared bool
	// Tenant labels this run's published artifacts for per-tenant byte
	// accounting in a shared store; empty outside shared mode.
	//
	//lint:fpexempt byte-accounting label on published artifacts; content addressing already keys identity
	Tenant string
	// AdaptiveThreshold, when > 0, arms the mid-run divergence monitor:
	// whenever the cumulative measured time of completed nodes diverges
	// from their plan-projected time by more than this relative fraction
	// (e.g. 0.5 = 50%), the engine corrects the cost estimates of
	// not-yet-started nodes from the timings observed so far and re-plans
	// the frontier through the plan cache's partial path — completed
	// nodes' cost keys are untouched, so only the weak components whose
	// estimates moved are re-solved. Not-yet-started compute nodes whose
	// corrected estimate makes loading cheaper are swapped to Load.
	// Applies to Run/RunWith only; Execute carries a prebuilt plan out
	// verbatim. ≤ 0 disables (the default).
	//
	//lint:fpexempt gates mid-run re-planning, not the initial plan; encoded in the session ConfigToken
	AdaptiveThreshold float64
	// AdaptiveMaxSolves bounds the extra max-flow solves mid-run
	// re-planning may consume per run; once reached the monitor disarms.
	// Re-plan attempts that hit the plan cache (or change no estimate)
	// cost no solve and are not counted against it. ≤ 0 means the
	// default of 3.
	//
	//lint:fpexempt bounds re-plan speculation, not the initial plan; encoded in the session ConfigToken
	AdaptiveMaxSolves int
}

// SchedMode selects the scheduler's ready-queue ordering policy.
type SchedMode int

const (
	// SchedCriticalPath orders the ready queue by the plan's projected
	// downstream critical path, longest first, falling back to FIFO when
	// projections are absent. The default.
	SchedCriticalPath SchedMode = iota
	// SchedFIFO preserves pure arrival order (the historical behavior);
	// kept for A/B benchmarking and as an escape hatch.
	SchedFIFO
)

// String names the mode for flags and benchmark tables.
func (m SchedMode) String() string {
	if m == SchedFIFO {
		return "fifo"
	}
	return "critpath"
}

// NodeReport is the per-node outcome of a run.
type NodeReport struct {
	State     core.State
	Component core.Component
	Seconds   float64 // own time t(n): compute or load duration
	MatSecs   float64 // materialization (serialize+write) time, if any
	Bytes     int64   // serialized size, if known
}

// Result summarizes one iteration's execution.
type Result struct {
	Iteration int
	// Values holds the value of every output node, keyed by node name.
	Values map[string]any
	// Nodes reports per-node state and timing, keyed by node name.
	Nodes map[string]NodeReport
	// Plan is the executed plan: states, costs, rationale, and the
	// projected time T(W,s) the run was expected to take. Call
	// Plan.Explain() for the per-node decision table.
	Plan *plan.Plan
	// Wall is the wall-clock duration of the run's compute critical path:
	// from Run entry until the last node finished. With write-behind
	// materialization (the default) background writes overlap computation
	// and are excluded; the residual wait for stragglers is FlushWait.
	// With SyncMaterialization, Wall includes all materialization time,
	// as the paper measures.
	Wall time.Duration
	// PlanTime is the portion of Wall spent planning: change tracking,
	// slicing, cost assembly, fingerprinting, and — unless the plan cache
	// hit — the OPT-EXEC-PLAN solve. Zero when Execute was called with a
	// prebuilt plan. Plan.Cache says whether this iteration's planning
	// was cold, partial, or a cache hit.
	PlanTime time.Duration
	// FlushWait is the time Run spent blocked at the store's Flush
	// barrier after computation finished, waiting for write-behind
	// stragglers. Zero under SyncMaterialization.
	FlushWait time.Duration
	// Breakdown sums node times by workflow component (Figure 6).
	Breakdown map[core.Component]time.Duration
	// MatTime is the total time spent materializing results (Figure 6, gray).
	MatTime time.Duration
	// StorageBytes is the store usage after the run (Figure 9c,d).
	StorageBytes int64
	// PeakMemBytes / AvgMemBytes are heap statistics (Figure 10); zero
	// unless Options.SampleMemory.
	PeakMemBytes, AvgMemBytes uint64
	// StateCounts counts nodes per state among live nodes (Figure 8).
	StateCounts map[core.State]int
}

// Engine executes compiled workflows against a materialization store.
type Engine struct {
	Store *store.Store
	Opts  Options
	// Cache, when non-nil, enables incremental planning: successive Plan
	// calls fingerprint their inputs against the previous iteration's
	// plan and reuse whatever the fingerprint proves unchanged —
	// wholesale on a full match (zero solves), per-component on a
	// partial one. Session installs one unless the caller disabled it; a
	// bare Engine plans cold every time.
	Cache *plan.Cache
	// Shared, when non-nil, is the process-wide plan cache + frozen
	// statistics board for shared-store mode. Session sets Cache to
	// Shared.Cache() alongside; the engine additionally publishes each
	// run's measured metrics to the board so every attached session plans
	// from identical solver inputs.
	Shared *plan.SharedCache

	// planMu serializes planning: the pooled solver's scratch buffers
	// (and the cache's planner pipeline) are not safe for concurrent
	// use, and Engine.Plan/Run were safe to call concurrently on
	// distinct programs before the solver was pooled. Planning is
	// millisecond-scale, so serializing it is cheap insurance.
	planMu sync.Mutex
	// solver is the pooled OPT-EXEC-PLAN solver: its flow network and
	// buffers are reused across iterations instead of reallocated per
	// solve.
	solver opt.Solver
}

// New returns an engine with the paper's default configuration: streaming
// OMP with the given storage budget and mandatory output materialization.
func New(st *store.Store, budget int64) *Engine {
	return &Engine{
		Store: st,
		Opts: Options{
			Policy:             opt.NewStreamingOMP(budget),
			MaterializeOutputs: true,
		},
	}
}

// storeView adapts the materialization store to the planner's read-only
// view.
type storeView struct{ st *store.Store }

func (v storeView) Lookup(key string) (int64, bool) {
	ent, ok := v.st.Entry(key)
	return ent.Size, ok
}

func (v storeView) EstimateLoad(size int64) time.Duration {
	return v.st.EstimateLoad(size)
}

// Plan builds the execution plan Run would carry out for d against the
// engine's store and options, without executing or mutating anything but
// d itself (signatures and carried metrics). prev is the previous
// iteration's DAG (nil at iteration 0) used for change tracking.
func (e *Engine) Plan(d *core.DAG, prev *core.DAG, iteration int) (*plan.Plan, error) {
	return e.PlanWith(d, prev, iteration, e.Opts)
}

// PlanWith is Plan under an explicit per-call configuration: the given
// Options replace the engine's for this call only, letting one engine
// serve run-scoped overrides (Session.Plan/Run options) without
// rebuilding its store, cache, or pooled solver. The options'
// ConfigToken flows into the plan fingerprint, so plans built under
// differing configurations are never confused by the cache.
func (e *Engine) PlanWith(d *core.DAG, prev *core.DAG, iteration int, opts Options) (*plan.Plan, error) {
	return e.planWithView(d, prev, iteration, opts, storeView{e.Store}, false)
}

// planWithView is PlanWith with an injected store view and carry control:
// the adaptive re-planner plans the initial plan and every mid-run
// re-plan through one memoizing view (so the only fingerprint deltas are
// its own deliberate metric corrections) and skips the metric carry on
// re-plans (the DAG's current metrics are the corrections).
func (e *Engine) planWithView(d *core.DAG, prev *core.DAG, iteration int, opts Options, view plan.MatView, skipCarry bool) (*plan.Plan, error) {
	e.planMu.Lock()
	defer e.planMu.Unlock()
	pl := &plan.Planner{
		// The planner's Options.DisableReuse is the single switch: it
		// ignores the view and suppresses the purge spec by itself.
		View: view,
		Opts: plan.Options{
			DisableReuse:       opts.DisableReuse,
			DisablePruning:     opts.DisablePruning,
			MaterializeOutputs: opts.MaterializeOutputs,
			Streaming:          !opts.DisableStreaming,
			Shared:             opts.Shared,
		},
		Cache:       e.Cache,
		Shared:      e.Shared,
		Solver:      &e.solver,
		ConfigToken: opts.ConfigToken,
		SkipCarry:   skipCarry,
	}
	p, err := pl.Plan(d, prev, iteration)
	if err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	return p, nil
}

// nodeRun is the mutable per-node execution record.
type nodeRun struct {
	node  *core.Node
	np    *plan.NodePlan
	fn    OpFunc
	state core.State
	done  chan struct{}
	// valMu orders post-completion accesses to value: eviction (retire
	// setting it nil, possibly from another node's goroutine) versus the
	// load-failure fallback reading it. The owner's pre-close write and
	// child-input reads need no lock — they are ordered by the scheduler
	// (a child runs only after its parents completed) and the pending
	// counter respectively.
	valMu   sync.Mutex
	value   any
	err     error
	ownSecs float64
	matSecs float64
	bytes   int64
	// deps counts not-yet-finished non-pruned parents; the scheduler
	// enqueues the node when it reaches zero. Loaded nodes start at zero:
	// they read from disk, not from parents.
	deps int32
	// pri is the run's scheduling priority: the plan's projected
	// downstream critical path (NodePlan.ProjectedTail) under
	// SchedCriticalPath, zero under SchedFIFO. seq is its arrival number
	// in the ready queue, the FIFO tie-break among equal priorities.
	pri float64
	seq int
	// pending counts children in Compute state that still need this node's
	// value; when it reaches zero the node is out of scope (Definition 5).
	pending int32
	retired int32
	// unit, on a fused run's head, lists every member (head first, tail
	// last): the head's execution drives the whole chain with per-element
	// pull. fusedInto points non-head members at their head; they never
	// occupy a scheduler slot of their own. streamed marks members whose
	// value is never built (every member but the tail): retirement skips
	// the materialization decision for them.
	unit      []*nodeRun
	fusedInto *nodeRun
	streamed  bool

	// started is set (under the adaptive monitor's read lock, when armed)
	// by the worker that claims the run; the re-planner only touches runs
	// it observes unstarted under the write lock, so a claimed run's
	// state and metrics are never written concurrently with execution.
	started int32
	// finished is set before the completion path's own pending check, so
	// a swap-time pending decrement racing with it retires the node on
	// exactly one side.
	finished int32
	// measured is the node's observed own duration (load or compute wall,
	// per the final state); valid when measuredOK. Folding it into the
	// node's carried Metrics is deferred to a single-threaded pass after
	// the flush barrier so a mid-run re-plan sees completed nodes' cost
	// keys byte-identical to the cached entry.
	measured   time.Duration
	measuredOK bool
	// baseC is the compute estimate (seconds) the initial plan priced the
	// node at; the divergence monitor's correction factors are expressed
	// against this base so repeated corrections stay idempotent. proj is
	// the node's current projected own time, refreshed by re-plans.
	baseC float64
	proj  float64
}

// Run plans and executes one iteration of the program. prev is the
// previous iteration's DAG (nil at iteration 0) used for change tracking;
// iteration seeds the nondeterminism nonce. On success the program's DAG
// carries updated metrics and should be retained as prev for the next
// iteration.
func (e *Engine) Run(ctx context.Context, prog *Program, prev *core.DAG, iteration int) (*Result, error) {
	return e.RunWith(ctx, prog, prev, iteration, e.Opts)
}

// RunWith is Run under an explicit per-call configuration (see PlanWith):
// policy, scheduling, pools, and observer all come from opts for this
// call only, so one engine can execute successive iterations under
// run-scoped overrides.
func (e *Engine) RunWith(ctx context.Context, prog *Program, prev *core.DAG, iteration int, opts Options) (*Result, error) {
	start := time.Now()
	var (
		view plan.MatView = storeView{e.Store}
		ad   *adaptState
	)
	if opts.AdaptiveThreshold > 0 {
		// Adaptive mode plans the initial plan and every mid-run re-plan
		// through one memoizing store view: artifacts published while the
		// run executes are invisible to re-plans, so the only fingerprint
		// deltas are the monitor's deliberate metric corrections.
		sv := newSnapView(e.Store)
		view = sv
		ad = newAdaptState(e, prog.DAG, prev, opts, sv)
	}
	p, err := e.planWithView(prog.DAG, prev, iteration, opts, view, false)
	if err != nil {
		return nil, err
	}
	// Planning is part of the iteration's critical path: Result.Wall is
	// measured from Run entry, so the solve and ancestor-table passes
	// stay on the bill exactly as when they lived inline here. The
	// planning share is reported separately as Result.PlanTime, which is
	// what the plan cache shrinks on fingerprint hits.
	return e.execute(ctx, prog, p, start, time.Since(start), &opts, ad)
}

// Execute carries out a previously built plan against the program it was
// planned from (Engine.Run guarantees the pairing; callers using
// Session.Plan + Execute must pass the same compiled program). It applies
// the plan's purge decision, then runs every non-pruned node on the
// bounded scheduler. Result.Wall is measured from Execute entry; Run
// measures from its own entry so planning time is included there.
func (e *Engine) Execute(ctx context.Context, prog *Program, p *plan.Plan) (*Result, error) {
	return e.execute(ctx, prog, p, time.Now(), 0, &e.Opts, nil)
}

func (e *Engine) execute(ctx context.Context, prog *Program, p *plan.Plan, start time.Time, planTime time.Duration, opts *Options, ad *adaptState) (*Result, error) {
	d := prog.DAG
	// Fail fast on plan/program mispairing: fn lookup is by node pointer,
	// so a plan built from a different Compile of even the same workflow
	// would otherwise surface only as opaque "no function" failures.
	if p == nil {
		return nil, fmt.Errorf("%w: nil plan", ErrBadPlan)
	}
	if len(p.Nodes) != d.Len() {
		return nil, fmt.Errorf("%w: plan covers %d nodes, program has %d", ErrBadPlan, len(p.Nodes), d.Len())
	}
	for _, np := range p.Nodes {
		if d.Node(np.Node.Name) != np.Node {
			return nil, fmt.Errorf("%w: plan node %q does not belong to this program", ErrBadPlan, np.Node.Name)
		}
	}

	// The plan event opens the run's observer stream: the decision is
	// final here, before purge or any node starts.
	em := newEmitter(opts.Observer, p.Iteration)
	em.plan(p, planTime)

	// Purge deprecated materializations per the plan's decision: an
	// original node's old results can never be reused (paper §6.6). With
	// no deprecated names (always true in shared mode, where the plan
	// never deprecates) the keep predicate retains every entry, so the
	// whole scan is skipped.
	if p.Purge != nil && len(p.Purge.DeprecatedNames) > 0 {
		freed, err := e.Store.Purge(func(key string) bool {
			if p.Purge.CurrentSigs[key] {
				return true
			}
			ent, ok := e.Store.Entry(key)
			return ok && !p.Purge.DeprecatedNames[ent.Name]
		})
		if err != nil {
			return nil, fmt.Errorf("exec: purge: %w", err)
		}
		// Return the freed bytes to budget-tracking policies so storage
		// reclaimed from deprecated results can be spent again. The credit
		// goes to the engine's own (session-baseline) policy, not a
		// run-scoped override's instance: reservations were made by the
		// baseline in steady state, and crediting whichever configuration
		// happens to be active when the purge runs would leak budget from
		// the reserving instance into the override's (the override could
		// then exceed its cap while the baseline under-materializes
		// forever). A purge of bytes an override itself reserved is the
		// rare case and errs in the conservative direction.
		if rel, ok := e.Opts.Policy.(interface{ Release(int64) }); ok && freed > 0 {
			rel.Release(freed)
		}
	}

	// Per-node execution records, indexed both by plan order and by node.
	runs := make([]*nodeRun, len(p.Nodes))
	byNode := make(map[*core.Node]*nodeRun, len(p.Nodes))
	for i, np := range p.Nodes {
		r := &nodeRun{
			node:  np.Node,
			np:    np,
			fn:    prog.Fns[np.Node],
			state: np.State,
			done:  make(chan struct{}),
		}
		runs[i] = r
		byNode[np.Node] = r
	}

	// Wire the plan's fused runs into execution units. Each group is
	// validated against this program before use — a cached or test-mutated
	// plan whose members no longer line up (state changed, RowOp missing)
	// degrades to ordinary per-node batch execution rather than failing.
	for _, g := range p.Fused {
		ok := len(g) >= 2 && prog.Rows != nil
		for _, i := range g {
			if !ok || i < 0 || i >= len(runs) {
				ok = false
				break
			}
			if r := runs[i]; r.state != core.StateCompute || prog.Rows[r.node] == nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		head := runs[g[0]]
		head.unit = make([]*nodeRun, len(g))
		for k, i := range g {
			head.unit[k] = runs[i]
			if k > 0 {
				runs[i].fusedInto = head
			}
			if k < len(g)-1 {
				runs[i].streamed = true
			}
		}
	}

	scheduled := 0
	for _, r := range runs {
		if r.state == core.StatePrune {
			close(r.done)
			// A live node the solver pruned is "retired" the moment the
			// run starts: it will never execute. Non-live nodes are
			// outside the program slice and emit nothing.
			if r.np.Live {
				em.node(r.node.Name, NodeRetired, core.StatePrune, 0, false, 0, false)
			}
			continue
		}
		// Fused-run members ride inside their head's scheduler slot: they
		// still track pending (retirement) but never count as scheduled
		// work of their own.
		if r.fusedInto == nil {
			scheduled++
		}
		var pending int32
		for _, ch := range r.node.Children() {
			if cr := byNode[ch]; cr != nil && cr.state == core.StateCompute {
				pending++
			}
		}
		r.pending = pending
		if r.state == core.StateCompute {
			var deps int32
			for _, par := range r.node.Parents() {
				if pr := byNode[par]; pr != nil && pr.state != core.StatePrune {
					deps++
				}
			}
			r.deps = deps
		}
	}

	var sampler *memSampler
	if opts.SampleMemory {
		sampler = startMemSampler(5 * time.Millisecond)
	}

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := &runState{
		engine:    e,
		opts:      opts,
		em:        em,
		plan:      p,
		runs:      byNode,
		rows:      prog.Rows,
		times:     make([]atomic.Uint64, len(runs)),
		outputs:   make(map[*core.Node]bool, len(d.Outputs())),
		iteration: p.Iteration,
		cancel:    cancel,
	}
	for _, o := range d.Outputs() {
		st.outputs[o] = true
	}
	if ad != nil {
		ad.arm(st, runs)
	}

	e.schedule(rctx, st, runs, scheduled)
	computeWall := time.Since(start)

	// Write-behind barrier: wait for every materialization handed to the
	// store's writer pool before touching per-node accounting or letting
	// the caller observe the store. Runs on the error paths too, so a
	// failed iteration still quiesces its background writes. The flush
	// error is deliberately discarded: a failed write degrades to "not
	// materialized" exactly as the sync path does (retireSync ignores
	// PutBytes errors), keeping the two modes' failure semantics
	// identical for A/B comparison.
	var flushWait time.Duration
	if !opts.SyncMaterialization {
		flushStart := time.Now()
		_ = e.Store.Flush()
		flushWait = time.Since(flushStart)
	}
	em.flush(flushWait)

	// Fold measured timings into the carried per-node statistics. The
	// executor defers these writes to this single-threaded point (workers
	// only record durations on their own nodeRun) so that a mid-run
	// re-plan reads stable metrics: completed nodes' cost keys stay
	// byte-identical to the run's cached plan entry, and only the
	// monitor's deliberate frontier corrections dirty the fingerprint.
	// Each observation feeds the node's decayed online estimator
	// (core.CostStat), not a last-value overwrite.
	for _, r := range runs {
		if r.err != nil || !r.measuredOK {
			continue
		}
		if r.state == core.StateLoad {
			r.node.Metrics.ObserveLoad(r.measured)
		} else {
			r.node.Metrics.ObserveCompute(r.measured)
		}
	}

	if err := firstError(runs); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Shared-store mode: publish this run's measured metrics to the
	// process-wide statistics board (first writer wins) so every attached
	// session's planner sees identical solver inputs — the precondition
	// for cross-session fingerprint hits. After the flush barrier, so
	// write-behind size/load metrics have settled.
	if e.Shared != nil {
		e.Shared.PublishStats(d)
	}

	// Planner-health summary: cache outcome, total solve count (initial
	// plan plus adaptive re-plans), and what the divergence monitor did.
	totalSolves, replans, swapped := p.Solves, 0, 0
	if ad != nil {
		s, r, w, final := ad.summary()
		totalSolves += s
		replans, swapped = r, w
		if final != nil {
			// Swaps executed against a row-cloned plan; report that one so
			// Result.Plan reflects what actually ran. The cached entry's
			// rows were never touched.
			p = final
		}
	}
	em.runStats(p.Cache, totalSolves, replans, swapped)

	// Assemble the result.
	res := &Result{
		Iteration:   p.Iteration,
		Values:      make(map[string]any, len(d.Outputs())),
		Nodes:       make(map[string]NodeReport, len(runs)),
		Plan:        p,
		Breakdown:   make(map[core.Component]time.Duration, 3),
		StateCounts: make(map[core.State]int, 3),
	}
	for s, c := range p.Counts {
		res.StateCounts[s] = c
	}
	for _, r := range runs {
		res.Nodes[r.node.Name] = NodeReport{
			State:     r.state,
			Component: r.node.Component,
			Seconds:   r.ownSecs,
			MatSecs:   r.matSecs,
			Bytes:     r.bytes,
		}
		res.Breakdown[r.node.Component] += time.Duration(r.ownSecs * float64(time.Second))
		res.MatTime += time.Duration(r.matSecs * float64(time.Second))
	}
	for _, o := range d.Outputs() {
		if r := byNode[o]; r != nil {
			res.Values[o.Name] = r.value
		}
	}
	if sampler != nil {
		res.PeakMemBytes, res.AvgMemBytes = sampler.stop()
	}
	res.StorageBytes = e.Store.UsedBytes()
	res.Wall = computeWall
	res.PlanTime = planTime
	res.FlushWait = flushWait
	em.done(computeWall, flushWait)
	return res, nil
}

// firstError scans the runs for failures, preferring a real operator or
// load error over the context-cancellation errors that cascade from it.
// Failures surface as *NodeError so callers can identify the operator
// with errors.As and classify the cause with errors.Is.
func firstError(runs []*nodeRun) error {
	var first error
	for _, r := range runs {
		if r.err == nil {
			continue
		}
		wrapped := &NodeError{Op: r.node.Name, Err: r.err}
		if !errors.Is(r.err, context.Canceled) && !errors.Is(r.err, context.DeadlineExceeded) {
			return wrapped
		}
		if first == nil {
			first = wrapped
		}
	}
	return first
}

// minLoadWorkers floors the I/O pool: loads spend their time in disk
// reads or the simulated-disk throttle sleep, not on a core, so even a
// single-CPU host overlaps several loads profitably (per-node goroutines
// used to give this overlap for free).
const minLoadWorkers = 4

// schedule executes every non-pruned run on bounded worker pools: a
// priority ready queue fed by parent-completion counts, drained by
// Options.Parallelism compute workers (default GOMAXPROCS), plus a small
// separate I/O pool for Load-state nodes — loads are disk/throttle-bound,
// and making them occupy compute slots would serialize their sleeps on
// narrow hosts, skewing the very reuse advantage loading exists to
// provide. Goroutine count is therefore independent of DAG size —
// thousands-of-node DAGs run on fixed pools instead of a goroutine per
// node.
//
// Dispatch is per-class. Compute runs go through the heap-based
// readyQueue ordered by the plan's projected downstream critical path
// (see Options.Sched), so the longest remaining chain claims a worker
// first; the queue degrades to exact FIFO when projections are absent or
// SchedFIFO is set. Load runs have no in-DAG dependencies and are
// prefilled into a channel — already sorted by the same priority, since
// a static order is all a pre-known set needs. The compute queue closes
// when the last node finishes; on failure the run context is canceled,
// which closes the queue (dropping not-yet-started work) and wakes every
// worker.
func (e *Engine) schedule(ctx context.Context, st *runState, runs []*nodeRun, scheduled int) {
	if scheduled == 0 {
		return
	}
	par := st.opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > scheduled {
		par = scheduled
	}
	critPath := st.opts.Sched != SchedFIFO
	if critPath {
		for _, r := range runs {
			r.pri = r.np.ProjectedTail
		}
	}

	// Loads have no in-DAG dependencies (they read disk, not parents), so
	// the I/O queue is fully populated here and never written again.
	var loadRuns []*nodeRun
	for _, r := range runs {
		if r.state == core.StateLoad {
			loadRuns = append(loadRuns, r)
		}
	}
	if critPath {
		// Longest projected downstream chain loads first; stable sort
		// keeps plan order among ties, matching the FIFO fallback.
		sort.SliceStable(loadRuns, func(i, j int) bool { return loadRuns[i].pri > loadRuns[j].pri })
	}
	loads := make(chan *nodeRun, len(loadRuns))
	for _, r := range loadRuns {
		loads <- r
	}
	close(loads)

	ready := newReadyQueue()
	for _, r := range runs { // topological order: parents enqueue first
		if r.state == core.StateCompute && r.fusedInto == nil && atomic.LoadInt32(&r.deps) == 0 {
			ready.push(r)
		}
	}
	// Cancellation (operator failure, caller timeout) closes the ready
	// queue: queued-but-unstarted nodes are dropped and blocked workers
	// wake and exit, exactly as the old select-on-ctx.Done behaved.
	stopWatch := context.AfterFunc(ctx, ready.close)
	defer stopWatch()

	var remaining atomic.Int32
	remaining.Store(int32(scheduled))

	// finish runs a completed node's scheduling bookkeeping: release
	// children whose last dependency this was, and close the compute
	// queue after the overall last node (which may be a load). On failure,
	// descendants can never run; cancel closes the queue instead
	// (remaining never reaches zero).
	// release decrements the scheduling dependency of n's computing
	// children and enqueues any that became ready. Fused-run members are
	// skipped: they execute inside their head's slot, and a cross-group
	// member is released by its own head's unit completing, never by an
	// upstream finish.
	release := func(n *core.Node) {
		// Under the adaptive monitor a child's state can be swapped
		// (Compute→Load) by the re-planner; reading it under the
		// monitor's read lock orders this scan against those writes. A
		// swapped child was pushed to the ready queue at swap time and
		// must not be pushed again here — the state check already skips
		// it, since swaps only ever leave the Compute state.
		if ad := st.adapt; ad != nil {
			ad.mu.RLock()
			defer ad.mu.RUnlock()
		}
		for _, ch := range n.Children() {
			cr := st.runs[ch]
			if cr == nil || cr.state != core.StateCompute || cr.fusedInto != nil {
				continue
			}
			if atomic.AddInt32(&cr.deps, -1) == 0 {
				ready.push(cr)
			}
		}
	}
	finish := func(r *nodeRun) {
		if r.err != nil {
			st.cancel()
			return
		}
		if r.unit != nil {
			// A fused unit's completion releases the children of every
			// member at once — interiors have none outside the unit by the
			// fusion rule, but the tail (and load/prune-fed interiors) can.
			for _, m := range r.unit {
				release(m.node)
			}
		} else {
			release(r.node)
		}
		if ad := st.adapt; ad != nil {
			// Feed the divergence monitor; this may trigger an inline
			// re-plan on this worker goroutine while the others proceed.
			ad.note(st, r, ready)
		}
		if remaining.Add(-1) == 0 {
			ready.close()
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				r, ok := ready.pop()
				if !ok {
					return
				}
				st.execNode(ctx, r)
				finish(r)
			}
		}()
	}
	ioPar := max(par, minLoadWorkers)
	if st.opts.IOWorkers > 0 {
		// The "io" worker class was sized explicitly.
		ioPar = st.opts.IOWorkers
	}
	if ioPar > len(loadRuns) {
		ioPar = len(loadRuns)
	}
	for w := 0; w < ioPar; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var r *nodeRun
				select {
				case rr, ok := <-loads:
					if !ok {
						return
					}
					r = rr
				case <-ctx.Done():
					return
				}
				st.execNode(ctx, r)
				finish(r)
			}
		}()
	}
	wg.Wait()
}

// runState holds shared execution state.
type runState struct {
	engine *Engine
	// opts is the run's effective configuration: the engine's own Opts
	// for Run/Execute, or the per-call override for RunWith.
	opts *Options
	// em delivers observer events; nil when no observer is installed
	// (every emit method nil-checks the receiver).
	em   *emitter
	plan *plan.Plan
	runs map[*core.Node]*nodeRun
	// rows is Program.Rows: per-row implementations for streamable
	// operators, consulted when executing fused units.
	rows map[*core.Node]*RowOp
	// times publishes each run's measured own time t(n), indexed by plan
	// order, as atomic float bits. Written once when a node finishes;
	// retirement sums ancestor entries to price C(n). A still-running
	// ancestor (reachable only through a loaded node) reads as zero — its
	// unfinished time is simply not part of the chain's bill, exactly as
	// the old done-channel gate behaved.
	times     []atomic.Uint64
	outputs   map[*core.Node]bool
	iteration int
	cancel    context.CancelFunc
	// adapt, when non-nil, is the armed mid-run divergence monitor
	// (Options.AdaptiveThreshold): workers claim runs and read mutable
	// run state under its read lock; the re-planner mutates unstarted
	// runs under its write lock.
	adapt *adaptState

	// fallbackMu serializes concurrent recursive recomputations after
	// load failures (value accesses are guarded per-run by valMu, so this
	// is only about not duplicating recomputation work).
	fallbackMu sync.Mutex
}

// evict drops a run's in-memory value (eager cache pruning, §5.4) under
// the run's own valMu. Ordinary child reads of r.value are ordered by
// the scheduler and the pending counter protocol — a child runs only
// after its parents completed, and a parent cannot retire until every
// computing child has finished — but the load-failure fallback reads
// finished runs' values from an unrelated goroutine, so eviction must
// synchronize with it. The lock is per-run and held for one store:
// retirements on the hot path never contend with each other or with an
// in-flight recomputation's user code.
func (s *runState) evict(r *nodeRun) {
	r.valMu.Lock()
	r.value = nil
	r.valMu.Unlock()
}

// execNode runs a single node to completion: loads or computes, records
// timing, then retires out-of-scope nodes. The scheduler guarantees that
// a Compute node's parents have already finished, so inputs are read
// directly — no per-parent waiting.
func (s *runState) execNode(ctx context.Context, r *nodeRun) {
	defer close(r.done)
	n := r.node

	// A canceled run must not start new work: queued nodes can still win
	// the worker's select race against ctx.Done after a failure elsewhere,
	// and a throttled disk load (or its recursive recompute fallback)
	// would delay the error return by whole load durations.
	if err := ctx.Err(); err != nil {
		r.err = err
		return
	}

	// Claim the run before reading its state or metrics. Under the
	// adaptive monitor the claim happens inside the monitor's read lock:
	// the re-planner (holding the write lock) only mutates runs it
	// observes unstarted, so everything this function reads after the
	// claim is stable.
	if ad := s.adapt; ad != nil {
		ad.mu.RLock()
		atomic.StoreInt32(&r.started, 1)
		ad.mu.RUnlock()
	}

	if r.unit != nil {
		s.execFused(ctx, r)
		return
	}

	s.em.node(n.Name, NodeStarted, r.state, 0, false, 0, false)

	switch r.state {
	case core.StateLoad:
		value, dur, err := s.engine.Store.Get(n.ChainSignature())
		if err != nil {
			// Failure injection path: a corrupt or missing materialization
			// must not abort the iteration — recompute instead (possibly
			// recomputing pruned ancestors on demand).
			value, err = s.recompute(ctx, n)
			if err != nil {
				r.err = err
				return
			}
			r.value = value
			r.ownSecs = n.Metrics.Compute.Seconds()
		} else {
			r.value = value
			r.ownSecs = dur.Seconds()
			r.measured = dur
			r.measuredOK = true
		}
	case core.StateCompute:
		inputs := make([]any, len(n.Parents()))
		for i, p := range n.Parents() {
			pr := s.runs[p]
			if pr == nil || pr.state == core.StatePrune {
				continue // infeasible per Constraint 2; nil input defensively
			}
			if pr.err != nil {
				r.err = fmt.Errorf("input %q failed", p.Name)
				return
			}
			inputs[i] = pr.value
		}
		if r.fn == nil {
			r.err = ErrNoFunction
			return
		}
		start := time.Now()
		value, err := r.fn(ctx, inputs)
		if err != nil {
			r.err = err
			return
		}
		elapsed := time.Since(start)
		if f := s.opts.DPRSlowdown; f > 1 && n.Component == core.DPR {
			extra := time.Duration(float64(elapsed) * (f - 1))
			time.Sleep(extra)
			elapsed += extra
		}
		if f := s.opts.LISlowdown; f > 1 && n.Component == core.LI {
			extra := time.Duration(float64(elapsed) * (f - 1))
			time.Sleep(extra)
			elapsed += extra
		}
		r.value = value
		r.ownSecs = elapsed.Seconds()
		r.measured = elapsed
		r.measuredOK = true
	}

	// Publish the measured time for ancestor C(n) sums before any
	// retirement can read it.
	s.times[r.np.Index].Store(math.Float64bits(r.ownSecs))

	// Retirement cascade: this node's completion may put parents (and
	// itself, if it has no computing children) out of scope. finished is
	// set first so an adaptive swap's pending decrement racing with the
	// self-check below retires this node on exactly one side.
	atomic.StoreInt32(&r.finished, 1)
	if r.state == core.StateCompute {
		for _, p := range n.Parents() {
			pr := s.runs[p]
			if pr == nil {
				continue
			}
			if atomic.AddInt32(&pr.pending, -1) == 0 {
				s.retire(pr)
			}
		}
	}
	if atomic.LoadInt32(&r.pending) == 0 {
		s.retire(r)
	}
}

// execFused executes a fused run as one scheduled unit: the head's input
// rows stream through every member's per-row Apply and only the tail's
// value is ever built (runRowOps). Interiors never allocate an output
// proportional to the data and never occupy a worker slot of their own.
// Measured wall time is attributed evenly across members — per-member
// timing is unobservable inside a fused pipeline by design, and an even
// share keeps C(n) sums and Metrics-based cost models finite and
// order-of-magnitude right.
func (s *runState) execFused(ctx context.Context, r *nodeRun) {
	// The head's own done channel is closed by execNode's defer; the rest
	// of the unit completes (successfully or not) exactly when the head
	// does.
	defer func() {
		for _, m := range r.unit[1:] {
			close(m.done)
		}
	}()

	for _, m := range r.unit {
		s.em.node(m.node.Name, NodeStarted, m.state, 0, false, 0, true)
	}

	inputs := make([]any, len(r.node.Parents()))
	for i, p := range r.node.Parents() {
		pr := s.runs[p]
		if pr == nil || pr.state == core.StatePrune {
			continue
		}
		if pr.err != nil {
			r.err = fmt.Errorf("input %q failed", p.Name)
			return
		}
		inputs[i] = pr.value
	}
	if len(inputs) != 1 {
		r.err = fmt.Errorf("fused run head %q has %d inputs, want 1", r.node.Name, len(inputs))
		return
	}
	ops := make([]*RowOp, len(r.unit))
	for i, m := range r.unit {
		ops[i] = s.rows[m.node]
	}

	start := time.Now()
	value, err := runRowOps(ctx, ops, inputs[0])
	if err != nil {
		r.err = err
		return
	}
	elapsed := time.Since(start)

	share := elapsed / time.Duration(len(r.unit))
	tail := r.unit[len(r.unit)-1]
	tail.value = value
	for _, m := range r.unit {
		m.ownSecs = share.Seconds()
		m.measured = share
		m.measuredOK = true
		s.times[m.np.Index].Store(math.Float64bits(m.ownSecs))
		atomic.StoreInt32(&m.finished, 1)
	}

	// Retirement cascade. The head consumed its boundary parents' values;
	// each interior's (never-built) value was consumed by the next member,
	// so interiors retire as the stream passes — their streamed flag
	// short-circuits the materialization decision. The tail retires
	// normally and can materialize under its own chain signature, keeping
	// cross-iteration reuse keyed exactly as batch execution would.
	for _, p := range r.node.Parents() {
		pr := s.runs[p]
		if pr == nil {
			continue
		}
		if atomic.AddInt32(&pr.pending, -1) == 0 {
			s.retire(pr)
		}
	}
	for _, m := range r.unit[:len(r.unit)-1] {
		if atomic.AddInt32(&m.pending, -1) == 0 {
			s.retire(m)
		}
	}
	if atomic.LoadInt32(&tail.pending) == 0 {
		s.retire(tail)
	}
}

// retire handles an out-of-scope node (Definition 5, Constraint 3): decide
// materialization via the policy (Algorithm 2), release the in-memory
// reference (eager cache pruning, §5.4), then emit the node's NodeRetired
// event with the settled outcome as known at this moment (async writes
// still in the writer pool report unmaterialized; see NodeEvent).
func (s *runState) retire(r *nodeRun) {
	if !atomic.CompareAndSwapInt32(&r.retired, 0, 1) {
		return
	}
	materialized, bytes := s.retireValue(r)
	if r.err == nil {
		fused := r.unit != nil || r.fusedInto != nil
		s.em.node(r.node.Name, NodeRetired, r.state, r.ownSecs, materialized, bytes, fused)
	}
}

// retireValue applies the retirement decision and reports whether the
// node's result is known to be on disk at this point, plus its serialized
// size when known. The policy and materialization mode come from the
// run's effective options, so a run-scoped policy override governs this
// run's materialization decisions too, not only its plan.
func (s *runState) retireValue(r *nodeRun) (materialized bool, bytes int64) {
	n := r.node
	if r.streamed {
		// A fused run's non-tail member: its value was never built (rows
		// streamed straight through), so there is nothing to evict and
		// nothing the policy could materialize. The member's equivalent
		// result remains reconstructible via the recompute fallback.
		return false, 0
	}
	if r.state != core.StateCompute || r.err != nil {
		// Loaded results are already on disk: just release the cache
		// reference. Pruned nodes have no value. (The store lookup also
		// reports honestly when a load fell back to recomputation after
		// its materialization vanished.)
		if r.state == core.StateLoad && !s.outputs[n] {
			s.evict(r)
		}
		onDisk := r.err == nil && r.state == core.StateLoad && s.engine.Store.Has(n.ChainSignature())
		return onDisk, n.Metrics.Size
	}
	e := s.engine
	pol := s.opts.Policy
	if !n.Deterministic && (pol == nil || !pol.Blind()) {
		// A nondeterministic result is a single random draw: it can never
		// serve as an equivalent materialization (Definition 3), so writing
		// it only wastes storage and time. Cost-aware policies skip it;
		// blind ones (HELIX AM, DeepDive) pay for it — the paper's reason
		// AM fails to finish MNIST (§6.6). Evict unless it is an output.
		if !s.outputs[n] {
			s.evict(r)
		}
		return false, 0
	}
	key := n.ChainSignature()
	if e.Store.Has(key) {
		// Equivalent result already materialized: nothing to write, but
		// eager cache pruning (§5.4) still applies.
		if !s.outputs[n] {
			s.evict(r)
		}
		return true, n.Metrics.Size
	}

	mandatory := r.np.MandatoryMat
	// Cumulative run time C(n) per Definition 6, the policy's payoff
	// input. The plan precomputed the node's ancestor set as a bitset, so
	// pricing C(n) is a bit scan over the atomic times table instead of a
	// graph traversal: measured times of finished ancestors sum in, while
	// pruned ancestors and still-running ones (reachable only through a
	// loaded node) read as zero — the latter are simply not part of this
	// chain's bill. Computed here, on the retiring goroutine, so the
	// write-behind path can capture a finished value.
	var cum float64
	if !mandatory {
		cum = r.ownSecs
		s.plan.ForEachAncestor(r.np.Index, func(j int) {
			cum += math.Float64frombits(s.times[j].Load())
		})
	}
	if s.opts.SyncMaterialization {
		return s.retireSync(r, key, mandatory, cum)
	}
	return s.retireAsync(r, key, mandatory, cum)
}

// retireSync is the historical inline path: serialize and write on the
// retiring goroutine, charging the full cost to the critical path.
func (s *runState) retireSync(r *nodeRun, key string, mandatory bool, cum float64) (materialized bool, bytes int64) {
	e := s.engine
	n := r.node
	pol := s.opts.Policy
	var decided, encoded bool
	var data []byte
	size := int64(-1)
	if sz, ok := r.value.(Sizer); ok {
		size = sz.ApproxBytes()
	}
	if !mandatory {
		if size < 0 {
			// No cheap size available: serialize to learn it. The encode
			// time is charged as materialization overhead.
			encStart := time.Now()
			var err error
			data, err = e.Store.EncodeValue(r.value)
			if err != nil {
				return false, 0 // unserializable values are simply not materialized
			}
			r.matSecs += time.Since(encStart).Seconds()
			encoded = true
			size = int64(len(data))
		}
		load := e.Store.EstimateLoad(size).Seconds()
		decided = pol != nil && pol.Decide(n, cum, load, size)
	}
	if !mandatory && !decided {
		if !s.outputs[n] {
			s.evict(r) // outputs keep their value for Result
		}
		return false, 0
	}

	matStart := time.Now()
	if !encoded {
		var err error
		data, err = e.Store.EncodeValue(r.value)
		if err != nil {
			return false, 0
		}
	}
	ent, wrote, err := e.Store.PutBytesTenant(key, n.Name, data, s.iteration, s.opts.Tenant)
	r.matSecs += time.Since(matStart).Seconds()
	if err != nil {
		return false, 0 // a failed write degrades to no materialization
	}
	if !wrote {
		// Shared-mode dedup: another session published the signature
		// between the Has check and the write. The artifact is on disk
		// either way; refund the budget this tenant's Decide reserved for
		// the skipped write.
		if decided {
			if rel, ok := pol.(interface{ Release(int64) }); ok {
				rel.Release(size)
			}
		}
	}
	r.bytes = ent.Size
	n.Metrics.Size = ent.Size
	n.Metrics.Load = e.Store.EstimateLoad(ent.Size)
	if !s.outputs[n] {
		s.evict(r)
	}
	return true, ent.Size
}

// retireAsync is the write-behind path: hand the value to the store's
// writer pool and return immediately, so the nodes waiting on this
// goroutine are not held behind serialization or disk. Values that can
// report their size cheaply (Sizer) get their policy decision inline —
// skipping the enqueue entirely on a "no" — while the rest defer the
// decision to the writer goroutine, which learns the size by encoding
// there. The OnDone callback's writes to the nodeRun and node metrics are
// published to Run by the store.Flush barrier. The enqueued write is
// still in flight when the node retires, so this path always reports
// unmaterialized; Result.Nodes carries the settled outcome after Flush.
func (s *runState) retireAsync(r *nodeRun, key string, mandatory bool, cum float64) (materialized bool, bytes int64) {
	e := s.engine
	n := r.node
	pol := s.opts.Policy
	isOutput := s.outputs[n]
	req := store.WriteRequest{
		Key:       key,
		Name:      n.Name,
		Iteration: s.iteration,
		Tenant:    s.opts.Tenant,
		Value:     r.value,
	}
	// reservedSize tracks bytes a "yes" from Decide reserved against the
	// policy's budget, so a shared-mode dedup (another session published
	// the signature first; the write is skipped) can refund them. Decide
	// and OnDone run sequentially on the same writer goroutine, so plain
	// closure variables suffice.
	reservedSize := int64(-1)
	if !mandatory {
		if sz, ok := r.value.(Sizer); ok {
			size := sz.ApproxBytes()
			load := e.Store.EstimateLoad(size).Seconds()
			if pol == nil || !pol.Decide(n, cum, load, size) {
				if !isOutput {
					s.evict(r)
				}
				return false, 0
			}
			reservedSize = size
		} else {
			req.Decide = func(size int64) bool {
				load := e.Store.EstimateLoad(size).Seconds()
				if pol == nil || !pol.Decide(n, cum, load, size) {
					return false
				}
				reservedSize = size
				return true
			}
		}
	}
	req.OnDone = func(out store.WriteOutcome) {
		// Runs on a writer goroutine; Run reads these after Flush.
		r.matSecs += out.Secs
		if out.Written {
			r.bytes = out.Entry.Size
			n.Metrics.Size = out.Entry.Size
			n.Metrics.Load = e.Store.EstimateLoad(out.Entry.Size)
		} else if out.Err == nil && reservedSize >= 0 {
			// Decide said yes but nothing landed — either a deduplicated
			// publish (another session's write won; the artifact exists) or
			// an unserializable value. The reservation goes back to the
			// tenant's budget in both cases.
			if rel, ok := pol.(interface{ Release(int64) }); ok {
				rel.Release(reservedSize)
			}
			if out.Entry.Size > 0 {
				n.Metrics.Size = out.Entry.Size
				n.Metrics.Load = e.Store.EstimateLoad(out.Entry.Size)
			}
		}
	}
	e.Store.PutAsync(req)
	if !isOutput {
		// Eager cache pruning still applies: the writer pool now holds the
		// only reference needed for the pending write.
		s.evict(r)
	}
	return false, 0
}

// recompute computes a node's value on demand, recursively ensuring parent
// values (which may have been pruned or evicted). Used only on the load-
// failure fallback path, so simplicity beats parallelism here.
func (s *runState) recompute(ctx context.Context, n *core.Node) (any, error) {
	s.fallbackMu.Lock()
	defer s.fallbackMu.Unlock()
	return s.recomputeLocked(ctx, n, make(map[*core.Node]any))
}

func (s *runState) recomputeLocked(ctx context.Context, n *core.Node, memo map[*core.Node]any) (any, error) {
	if v, ok := memo[n]; ok {
		return v, nil
	}
	if r := s.runs[n]; r != nil {
		select {
		case <-r.done:
			if r.err == nil {
				r.valMu.Lock()
				v := r.value
				r.valMu.Unlock()
				if v != nil {
					memo[n] = v
					return v, nil
				}
			}
		default:
		}
	}
	fn := s.runs[n].fn
	if fn == nil {
		return nil, fmt.Errorf("exec: cannot recompute %q: %w", n.Name, ErrNoFunction)
	}
	inputs := make([]any, len(n.Parents()))
	for i, p := range n.Parents() {
		v, err := s.recomputeLocked(ctx, p, memo)
		if err != nil {
			return nil, err
		}
		inputs[i] = v
	}
	v, err := fn(ctx, inputs)
	if err != nil {
		return nil, err
	}
	memo[n] = v
	return v, nil
}
