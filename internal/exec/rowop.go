package exec

import (
	"context"
	"fmt"
	"iter"
)

// RowOp is the per-row implementation of a streamable operator: a unary
// row-wise transformation (map / flatMap / filter) expressed as untyped
// closures over the operator's element type. The DSL's streaming helpers
// construct one per declared operator and register it in Program.Rows;
// the planner then fuses linear chains of such operators (plan.Fused)
// and the engine executes a fused run as a single scheduled unit with
// per-element pull — only the chain's tail value is ever built.
//
// The same RowOp also backs the operator's ordinary batch execution
// (RunRowOp), so streaming-on and streaming-off runs share one
// implementation and produce byte-identical values.
type RowOp struct {
	// Seq returns a pull iterator over the rows of the operator's single
	// input value. Only the chain head's Seq runs — interior inputs are
	// never built. An error means the value had an unexpected type.
	Seq func(v any) (iter.Seq[any], error)
	// Apply transforms one row into zero or more rows via emit: a map
	// emits once, a filter zero or one time, a flatMap any number. emit
	// reports whether the consumer wants more rows; Apply must stop
	// emitting (and return nil) once it returns false.
	Apply func(row any, emit func(any) bool) error
	// Build assembles the operator's output value from the transformed
	// row stream. Only the chain tail's Build runs.
	Build func(rows iter.Seq[any]) (any, error)
}

// rowCheckInterval is how many pipeline rows pass between context
// checks: frequent enough that mid-run cancellation lands promptly, rare
// enough to stay invisible next to per-row work.
const rowCheckInterval = 1024

// runRowOps drives a fused chain over the head's single input value:
// head.Seq pulls input rows, every member's Apply runs per element, and
// tail.Build assembles the only value the chain ever constructs. A nil
// error pointer result travels back through errp-style capture because
// iter.Seq yields carry no error channel.
func runRowOps(ctx context.Context, ops []*RowOp, input any) (any, error) {
	seq, err := ops[0].Seq(input)
	if err != nil {
		return nil, err
	}
	var pipeErr error
	cur := checkedSeq(ctx, seq, &pipeErr)
	for _, op := range ops {
		cur = applySeq(op, cur, &pipeErr)
	}
	out, err := ops[len(ops)-1].Build(cur)
	if pipeErr != nil {
		return nil, pipeErr
	}
	return out, err
}

// RunRowOp executes one streamable operator in ordinary batch mode —
// the operator's OpFunc when it is not part of a fused run. Sharing the
// Seq/Apply/Build path with runRowOps is what guarantees streaming-on
// and streaming-off produce identical values.
func RunRowOp(ctx context.Context, op *RowOp, inputs []any) (any, error) {
	if len(inputs) != 1 {
		return nil, fmt.Errorf("%w: streamable operator expects 1 input, got %d", ErrBadPlan, len(inputs))
	}
	return runRowOps(ctx, []*RowOp{op}, inputs[0])
}

// checkedSeq passes rows through while polling ctx every
// rowCheckInterval rows, so a canceled run stops mid-stream instead of
// draining a large input first.
func checkedSeq(ctx context.Context, in iter.Seq[any], errp *error) iter.Seq[any] {
	return func(yield func(any) bool) {
		n := 0
		for v := range in {
			if n++; n%rowCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					*errp = err
					return
				}
			}
			if !yield(v) {
				return
			}
		}
	}
}

// applySeq lifts one RowOp's Apply into a lazy sequence stage,
// short-circuiting the pipeline on the first row error.
func applySeq(op *RowOp, in iter.Seq[any], errp *error) iter.Seq[any] {
	return func(yield func(any) bool) {
		stopped := false
		for row := range in {
			if *errp != nil {
				return
			}
			if err := op.Apply(row, func(out any) bool {
				if !yield(out) {
					stopped = true
					return false
				}
				return true
			}); err != nil {
				if *errp == nil {
					*errp = err
				}
				return
			}
			if stopped {
				return
			}
		}
	}
}
