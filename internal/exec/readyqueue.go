package exec

import "sync"

// readyQueue is the compute scheduler's ready set: a priority queue
// ordered by each run's scheduling priority (the plan's projected
// downstream critical path under SchedCriticalPath, constant zero under
// SchedFIFO), with arrival order as the tie-break. Equal priorities —
// including the all-zero case of an iteration with no carried statistics
// — therefore reproduce exact FIFO behavior, which is the documented
// fallback when projections are absent.
//
// Unlike the buffered channel it replaces, the queue reorders on every
// pop, so a straggler chain enqueued behind a pile of short branches
// starts as soon as a worker frees up. close wakes all blocked workers
// and drops anything still queued; it is called both when the last node
// completes (queue necessarily empty) and via context cancellation on
// failure (queued nodes must not start).
type readyQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	heap []*nodeRun
	seq  int
	done bool
}

func newReadyQueue() *readyQueue {
	q := &readyQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a run. Pushes after close are dropped: the run's
// descendants can never execute anyway (the scheduler is unwinding).
func (q *readyQueue) push(r *nodeRun) {
	q.mu.Lock()
	if q.done {
		q.mu.Unlock()
		return
	}
	r.seq = q.seq
	q.seq++
	q.heap = append(q.heap, r)
	q.up(len(q.heap) - 1)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until a run is available or the queue is closed. The second
// result is false exactly when the worker should exit.
func (q *readyQueue) pop() (*nodeRun, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.done {
		q.cond.Wait()
	}
	if len(q.heap) == 0 {
		return nil, false
	}
	r := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if len(q.heap) > 0 {
		q.down(0)
	}
	return r, true
}

// close marks the queue finished, drops queued runs, and wakes every
// blocked worker.
func (q *readyQueue) close() {
	q.mu.Lock()
	q.done = true
	q.heap = nil
	q.mu.Unlock()
	q.cond.Broadcast()
}

// less orders by priority descending (longest projected tail first),
// then by arrival ascending — exact FIFO among equals.
func (q *readyQueue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.pri != b.pri {
		return a.pri > b.pri
	}
	return a.seq < b.seq
}

func (q *readyQueue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			return
		}
		q.heap[i], q.heap[p] = q.heap[p], q.heap[i]
		i = p
	}
}

func (q *readyQueue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && q.less(l, best) {
			best = l
		}
		if r < n && q.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		q.heap[i], q.heap[best] = q.heap[best], q.heap[i]
		i = best
	}
}
