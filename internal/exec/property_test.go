package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"helix/internal/core"
	"helix/internal/opt"
	"helix/internal/store"
)

// randomProgram builds a random layered DAG of integer operators. Each
// operator's output is a deterministic function of its inputs and its
// version number, so any change tracking error surfaces as a wrong
// integer. versions[i] selects operator i's behavior.
func randomProgram(rng *rand.Rand, nNodes int, versions []int) *Program {
	d := core.NewDAG()
	nodes := make([]*core.Node, nNodes)
	prog := &Program{DAG: d, Fns: make(map[*core.Node]OpFunc, nNodes)}
	for i := 0; i < nNodes; i++ {
		comp := core.DPR
		switch {
		case i >= nNodes*2/3:
			comp = core.PPR
		case i >= nNodes/3:
			comp = core.LI
		}
		v := versions[i]
		nodes[i] = d.MustAddNode(fmt.Sprintf("n%d", i), core.KindExtractor, comp,
			fmt.Sprintf("op%d-v%d", i, v), true)
		// Wire to a random subset of earlier nodes (connected chain base).
		if i > 0 {
			if err := d.AddEdge(nodes[i-1], nodes[i]); err != nil {
				panic(err)
			}
			for j := 0; j < i-1; j++ {
				if rng.Float64() < 0.25 {
					if err := d.AddEdge(nodes[j], nodes[i]); err != nil {
						panic(err)
					}
				}
			}
		}
		id, ver := i, v
		prog.Fns[nodes[i]] = func(ctx context.Context, in []any) (any, error) {
			acc := 17*id + 31*ver
			for k, x := range in {
				acc = acc*31 + x.(int)*(k+1)
			}
			return acc % 1000003, nil
		}
	}
	d.MarkOutput(nodes[nNodes-1])
	return prog
}

// TestPropertyReuseMatchesScratch runs random mutation sequences through
// a reusing engine and a from-scratch engine and requires identical
// outputs at every iteration — Theorem 1 under randomized workloads.
func TestPropertyReuseMatchesScratch(t *testing.T) {
	ctx := context.Background()
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(trial) + 100))
			nNodes := 5 + rng.Intn(8)
			versions := make([]int, nNodes)

			stReuse, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			reuse := New(stReuse, -1)
			stScratch, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			scratch := &Engine{Store: stScratch, Opts: Options{Policy: opt.NeverMat{}, DisableReuse: true}}

			var prevReuse, prevScratch *core.DAG
			for iter := 0; iter < 6; iter++ {
				if iter > 0 {
					// Mutate 1-2 random operators.
					for m := 0; m < 1+rng.Intn(2); m++ {
						versions[rng.Intn(nNodes)]++
					}
				}
				// Distinct rng clones so both programs share structure.
				structSeed := int64(trial)*1000 + 7
				progA := randomProgram(rand.New(rand.NewSource(structSeed)), nNodes, versions)
				progB := randomProgram(rand.New(rand.NewSource(structSeed)), nNodes, versions)

				resA, err := reuse.Run(ctx, progA, prevReuse, iter)
				if err != nil {
					t.Fatal(err)
				}
				resB, err := scratch.Run(ctx, progB, prevScratch, iter)
				if err != nil {
					t.Fatal(err)
				}
				out := fmt.Sprintf("n%d", nNodes-1)
				if resA.Values[out] != resB.Values[out] {
					t.Fatalf("iteration %d: reuse output %v != scratch %v (Theorem 1)",
						iter, resA.Values[out], resB.Values[out])
				}
				prevReuse, prevScratch = progA.DAG, progB.DAG
			}
		})
	}
}

// TestPropertyPlanFeasibleOnRandomPrograms checks that the engine's
// realized states always satisfy the OEP constraints (Constraints 1-2)
// on random programs with partial materialization.
func TestPropertyPlanFeasibleOnRandomPrograms(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := New(st, -1)
	nNodes := 10
	versions := make([]int, nNodes)
	var prev *core.DAG
	for iter := 0; iter < 8; iter++ {
		if iter > 0 {
			versions[rng.Intn(nNodes)]++
		}
		prog := randomProgram(rand.New(rand.NewSource(5)), nNodes, versions)
		res, err := e.Run(ctx, prog, prev, iter)
		if err != nil {
			t.Fatal(err)
		}
		// Constraint 2 on realized states: computed nodes never have a
		// pruned parent.
		for _, n := range prog.DAG.Nodes() {
			if res.Nodes[n.Name].State != core.StateCompute {
				continue
			}
			for _, p := range n.Parents() {
				if res.Nodes[p.Name].State == core.StatePrune {
					t.Fatalf("iteration %d: %s computed with pruned parent %s", iter, n.Name, p.Name)
				}
			}
		}
		prev = prog.DAG
	}
}
