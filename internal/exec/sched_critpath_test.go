package exec

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"helix/internal/core"
	"helix/internal/opt"
	"helix/internal/plan"
	"helix/internal/store"
)

// runSched executes prog on a fresh engine under the given scheduler mode
// and returns the Result.
func runSched(t *testing.T, prog *Program, mode SchedMode, par int) *Result {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Opts: Options{
		Policy:              opt.NeverMat{},
		SyncMaterialization: true,
		Parallelism:         par,
		Sched:               mode,
	}}
	res, err := e.Run(context.Background(), prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSchedulerCriticalPathMatchesFIFO: on the 1000-node stress DAGs at
// Parallelism 4, critical-path ordering must produce Results identical to
// the FIFO baseline — same output values, same per-node states — and the
// goroutine bounds from the bounded-scheduler work still hold (covered by
// the existing bound tests, which run under the default critical-path
// mode). Run with -race in CI.
func TestSchedulerCriticalPathMatchesFIFO(t *testing.T) {
	const n, par = 1000, 4
	cases := []struct {
		name  string
		build func() *Program
	}{
		{"deep-chain", func() *Program { return deepChainProgram(n) }},
		{"wide-fanout", func() *Program { return fanoutProgram(n) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fifo := runSched(t, tc.build(), SchedFIFO, par)
			crit := runSched(t, tc.build(), SchedCriticalPath, par)
			if len(fifo.Values) != len(crit.Values) {
				t.Fatalf("output count differs: fifo %d, critpath %d", len(fifo.Values), len(crit.Values))
			}
			for name, want := range fifo.Values {
				if got := crit.Values[name]; got != want {
					t.Fatalf("output %s: critpath %v, fifo %v", name, got, want)
				}
			}
			if len(fifo.Nodes) != len(crit.Nodes) {
				t.Fatalf("node report count differs")
			}
			for name, fr := range fifo.Nodes {
				cr, ok := crit.Nodes[name]
				if !ok || cr.State != fr.State {
					t.Fatalf("node %s: critpath state %v, fifo %v", name, cr.State, fr.State)
				}
			}
			for s, c := range fifo.StateCounts {
				if crit.StateCounts[s] != c {
					t.Fatalf("state count %v: critpath %d, fifo %d", s, crit.StateCounts[s], c)
				}
			}
		})
	}
}

// TestSchedulerCriticalPathOrdersByProjectedTail pins the ordering
// itself: with one worker, execution order equals pop order. A fan-out of
// branches with seeded projected times must run longest-tail-first under
// SchedCriticalPath and in arrival order under SchedFIFO.
func TestSchedulerCriticalPathOrdersByProjectedTail(t *testing.T) {
	// src → b0..b3, with projected compute times 1s, 4s, 2s, 8s.
	secs := []float64{1, 4, 2, 8}
	build := func() (*Program, *[]string, *sync.Mutex) {
		d := core.NewDAG()
		prog := &Program{DAG: d, Fns: make(map[*core.Node]OpFunc)}
		var mu sync.Mutex
		order := &[]string{}
		src := d.MustAddNode("src", core.KindSource, core.DPR, "src-v1", true)
		prog.Fns[src] = func(ctx context.Context, in []any) (any, error) { return 1, nil }
		sink := d.MustAddNode("sink", core.KindReducer, core.PPR, "sink-v1", true)
		for i, s := range secs {
			name := fmt.Sprintf("b%d", i)
			n := d.MustAddNode(name, core.KindExtractor, core.DPR, name+"-v1", true)
			mustEdge(d, src, n)
			mustEdge(d, n, sink)
			n.Metrics = core.Metrics{Compute: time.Duration(s * float64(time.Second)), Known: true}
			prog.Fns[n] = func(ctx context.Context, in []any) (any, error) {
				mu.Lock()
				*order = append(*order, name)
				mu.Unlock()
				return 1, nil
			}
		}
		prog.Fns[sink] = func(ctx context.Context, in []any) (any, error) { return len(in), nil }
		d.MarkOutput(sink)
		return prog, order, &mu
	}

	prog, order, _ := build()
	runSched(t, prog, SchedCriticalPath, 1)
	want := []string{"b3", "b1", "b2", "b0"} // descending projected tail
	if fmt.Sprint(*order) != fmt.Sprint(want) {
		t.Fatalf("critpath order %v, want %v", *order, want)
	}

	prog, order, _ = build()
	runSched(t, prog, SchedFIFO, 1)
	want = []string{"b0", "b1", "b2", "b3"} // arrival (declaration) order
	if fmt.Sprint(*order) != fmt.Sprint(want) {
		t.Fatalf("fifo order %v, want %v", *order, want)
	}
}

// TestPlanCacheInvalidatedByStorePurge: at engine level, a steady-state
// cache hit must stop hitting the moment the store evicts the
// materializations the cached plan's Load decisions rest on — the
// fingerprint re-reads the store view on every call.
func TestPlanCacheInvalidatedByStorePurge(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := New(st, -1)
	e.Cache = plan.NewCache("test")
	ctx := context.Background()

	prog := deepChainProgram(50)
	if _, err := e.Run(ctx, prog, nil, 0); err != nil {
		t.Fatal(err)
	}
	// Seed carried statistics so reuse is the optimal plan (the paper's
	// regime: operators cost seconds, loads are cheap).
	for _, n := range prog.DAG.Nodes() {
		n.Metrics.Compute = time.Second
		n.Metrics.Known = true
	}
	prog2 := deepChainProgram(50)
	res, err := e.Run(ctx, prog2, prog.DAG, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.StateCounts[core.StateCompute] != 0 {
		t.Fatalf("identical rerun computed %d nodes", res.StateCounts[core.StateCompute])
	}

	// Settled: the next identical plan is a full hit with zero solves.
	solves := opt.SolveCount()
	prog3 := deepChainProgram(50)
	p, err := e.Plan(prog3.DAG, prog2.DAG, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cache != plan.CacheHit {
		t.Fatalf("settled plan outcome %v, want hit", p.Cache)
	}
	if d := opt.SolveCount() - solves; d != 0 {
		t.Fatalf("settled plan performed %d solves", d)
	}

	// Purge everything: the cached Load decisions are now stale and must
	// not be reused.
	if _, err := e.Store.Purge(func(string) bool { return false }); err != nil {
		t.Fatal(err)
	}
	solves = opt.SolveCount()
	prog4 := deepChainProgram(50)
	p2, err := e.Plan(prog4.DAG, prog3.DAG, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Cache == plan.CacheHit {
		t.Fatal("plan cache hit survived a store purge")
	}
	if d := opt.SolveCount() - solves; d == 0 {
		t.Fatal("post-purge plan performed no solve")
	}
	for _, np := range p2.Nodes {
		if np.State == core.StateLoad {
			t.Fatalf("node %s still planned to load a purged materialization", np.Node.Name)
		}
	}
}
