package exec

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"helix/internal/core"
	"helix/internal/opt"
	"helix/internal/store"
)

func init() {
	store.RegisterValueType([]float64(nil))
}

// chainProgram builds a linear chain of n nodes, each sleeping compute
// per step and emitting a fresh ~payloadFloats·8-byte slice. A linear
// chain puts every materialization on the critical path in sync mode:
// node i's write happens on the goroutine of node i+1 before i+1's done
// channel closes, so node i+2 cannot start until the write finishes.
// Payload values are reciprocals so every mantissa is fully populated —
// gob trims trailing zero bytes of the byte-reversed float encoding, and
// integer-valued floats would encode to a fraction of their in-memory
// size, starving the simulated disk of the load this test relies on.
func chainProgram(n int, compute time.Duration, payloadFloats int) *Program {
	d := core.NewDAG()
	fns := make(map[*core.Node]OpFunc, n)
	var prev *core.Node
	for i := 0; i < n; i++ {
		node := d.MustAddNode(fmt.Sprintf("n%02d", i), core.KindExtractor, core.DPR, fmt.Sprintf("v%02d", i), true)
		if prev != nil {
			mustEdge(d, prev, node)
		}
		fns[node] = func(ctx context.Context, in []any) (any, error) {
			time.Sleep(compute)
			out := make([]float64, payloadFloats)
			for j := range out {
				out[j] = 1 / float64(i*payloadFloats+j+1)
			}
			return out, nil
		}
		prev = node
	}
	d.MarkOutput(prev)
	return &Program{DAG: d, Fns: fns}
}

func runChain(t *testing.T, sync bool) *Result {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.DiskBytesPerSec = 8 << 20 // 8 MiB/s simulated disk: ~72ms per write
	// One writer per node: the throttle is a sleep, so all 8 background
	// writes overlap fully and the flush barrier waits roughly one write,
	// not a queue of them.
	st.Writers = 8
	e := &Engine{Store: st, Opts: Options{
		Policy:              opt.AlwaysMat{},
		MaterializeOutputs:  true,
		SyncMaterialization: sync,
		// Pinned pool width: this test compares sync/async timing, and on a
		// single-CPU host the GOMAXPROCS default would leave one worker
		// whose raced, instrumented compute starves the writer pool of
		// scheduling slots, skewing the very overlap being measured.
		Parallelism: 4,
	}}
	prog := chainProgram(8, 5*time.Millisecond, 1<<16) // ~512 KiB encoded each
	res, err := e.Run(context.Background(), prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Len(); got != 8 {
		t.Fatalf("sync=%v stored %d entries, want 8", sync, got)
	}
	return res
}

// TestWriteBehindExcludesMatFromWall is the PR's acceptance criterion: on
// a materialization-heavy chain, write-behind wall-clock must exclude at
// least 80% of the serialize+write time that sync mode pays on the
// critical path, while MatTime accounting stays honest in both modes.
func TestWriteBehindExcludesMatFromWall(t *testing.T) {
	syncRes := runChain(t, true)
	asyncRes := runChain(t, false)

	// Sanity: the workload is actually materialization-heavy — the
	// simulated disk alone costs 8 × ~64ms.
	if syncRes.MatTime < 400*time.Millisecond {
		t.Fatalf("sync MatTime = %v, workload not materialization-heavy", syncRes.MatTime)
	}
	// Accounting stays honest: async still reports the serialize+write
	// bill (the simulated-disk sleeps are identical in both modes).
	if asyncRes.MatTime < syncRes.MatTime/2 {
		t.Errorf("async MatTime = %v vs sync %v: materialization cost unaccounted", asyncRes.MatTime, syncRes.MatTime)
	}
	// The criterion: async end-to-end latency — compute wall plus the
	// flush-barrier wait Run blocks on — excludes ≥80% of sync's
	// materialization bill. Under the race detector the instrumented
	// encode work runs several times slower and contends with the compute
	// chain and with other packages' tests on the same box, so the raced
	// bar drops to 40% — still a firm "the pool overlaps most of the
	// bill" check — while the strict bound is enforced by every unraced
	// (tier-1) run.
	threshold := 0.8
	if raceEnabled {
		threshold = 0.4
		if runtime.GOMAXPROCS(0) == 1 {
			// A single OS thread cannot overlap the race-instrumented
			// encode with the compute chain at all — only the writers'
			// simulated-disk sleeps overlap one another. The ratio is
			// physically unattainable, so require only that write-behind
			// still strictly wins end-to-end.
			threshold = 0
		}
	}
	excluded := syncRes.Wall - (asyncRes.Wall + asyncRes.FlushWait)
	min := time.Duration(1)
	if threshold > 0 {
		min = time.Duration(threshold * float64(syncRes.MatTime))
	}
	if excluded < min {
		t.Errorf("write-behind excluded only %v of %v materialization (want ≥ %v); sync wall %v, async wall %v + flush %v",
			excluded, syncRes.MatTime, min, syncRes.Wall, asyncRes.Wall, asyncRes.FlushWait)
	}
	if syncRes.FlushWait != 0 {
		t.Errorf("sync run reported FlushWait %v", syncRes.FlushWait)
	}
}

// TestFlushMakesRunNVisibleToRunN1 is the flush-semantics contract: an
// iteration run immediately after its predecessor must observe every
// materialization the policy accepted — no reuse lost to unflushed
// write-behind writes.
func TestFlushMakesRunNVisibleToRunN1(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Opts: Options{Policy: opt.AlwaysMat{}, MaterializeOutputs: true}}
	ctx := context.Background()
	var c counters
	prog := testProgram(&c)
	if _, err := e.Run(ctx, prog, nil, 0); err != nil {
		t.Fatal(err)
	}
	// Back-to-back rerun: every node must load or prune; a single compute
	// means a write accepted in run N had not landed by planning time.
	var c2 counters
	prog2 := testProgram(&c2)
	res, err := e.Run(ctx, prog2, prog.DAG, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.source.Load() + c2.extract.Load() + c2.learn.Load() + c2.check.Load(); got != 0 {
		t.Fatalf("iteration N+1 recomputed %d operators: write-behind results not flushed", got)
	}
	if res.StateCounts[core.StateCompute] != 0 {
		t.Fatalf("iteration N+1 states: %v, want no computes", res.StateCounts)
	}
}

// TestLoadFailureRecoversWithAsyncWritesInFlight deletes a materialized
// blob behind the manifest's back and asserts the engine's recompute()
// fallback transparently recovers during a run whose own write-behind
// materializations are concurrently in flight.
func TestLoadFailureRecoversWithAsyncWritesInFlight(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Opts: Options{Policy: opt.AlwaysMat{}, MaterializeOutputs: true}}
	ctx := context.Background()
	var c counters
	prog := testProgram(&c)
	if _, err := e.Run(ctx, prog, nil, 0); err != nil {
		t.Fatal(err)
	}

	// Remove extract's blob only — the manifest still advertises it, so
	// the next plan schedules a Load that is doomed to fail.
	extKey := prog.DAG.Node("extract").ChainSignature()
	if !st.Has(extKey) {
		t.Fatal("extract not materialized in iteration 0")
	}
	if err := os.Remove(filepath.Join(dir, extKey+".gob")); err != nil {
		t.Fatal(err)
	}

	// Change the learner: learn/check recompute and re-materialize via
	// the writer pool while extract's failed load falls back to
	// recomputation on the same run.
	var c2 counters
	prog2 := testProgram(&c2)
	lrn := prog2.DAG.Node("learn")
	lrn.OpSignature = "lrn-v2"
	prog2.Fns[lrn] = func(ctx context.Context, in []any) (any, error) {
		c2.learn.Add(1)
		return in[0].(int) * 20, nil
	}
	res, err := e.Run(ctx, prog2, prog.DAG, 1)
	if err != nil {
		t.Fatalf("load-failure fallback errored: %v", err)
	}
	if got := res.Values["check"]; got != 0.6 {
		t.Fatalf("recovered output = %v, want 0.6", got)
	}
	if c2.extract.Load() == 0 {
		t.Fatal("extract was not recomputed despite its blob being gone")
	}
	// The run's own async writes all landed before Run returned.
	newLearnKey := prog2.DAG.Node("learn").ChainSignature()
	if !st.Has(newLearnKey) {
		t.Fatal("changed learner's materialization missing after Run")
	}
	if _, _, err := st.Get(newLearnKey); err != nil {
		t.Fatalf("changed learner's blob unreadable: %v", err)
	}
}

// TestAsyncPreservesBudgetedPolicy: the deferred Decide path must still
// respect a budgeted streaming-OMP policy when called from writer
// goroutines — no over-reservation, no lost release accounting.
func TestAsyncPreservesBudgetedPolicy(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	policy := opt.NewStreamingOMP(64 << 10)
	e := &Engine{Store: st, Opts: Options{Policy: policy, MaterializeOutputs: true}}
	ctx := context.Background()
	var c counters
	prog := testProgram(&c)
	if _, err := e.Run(ctx, prog, nil, 0); err != nil {
		t.Fatal(err)
	}
	reserved := int64(64<<10) - policy.Remaining()
	// Mandatory outputs bypass the policy and reserve nothing (seed
	// semantics); every policy-accepted entry must be covered by a
	// reservation made on the writer goroutine.
	var policyBytes int64
	for _, key := range st.Keys() {
		if ent, ok := st.Entry(key); ok && ent.Name != "check" {
			policyBytes += ent.Size
		}
	}
	if policyBytes == 0 {
		t.Fatal("policy accepted nothing; test needs a materialization-worthy chain")
	}
	if reserved < policyBytes {
		t.Fatalf("budget reserved %d < policy-accepted bytes %d: writer-side Decide skipped reservation", reserved, policyBytes)
	}
}
