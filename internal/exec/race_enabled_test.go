//go:build race

package exec

// raceEnabled reports that the test binary was built with -race. The
// detector multiplies the cost of instrumented work (gob encoding, the
// payload-fill loops) and serializes goroutines, distorting the timing
// ratios the write-behind acceptance test asserts.
const raceEnabled = true
