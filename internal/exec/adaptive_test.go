package exec

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"helix/internal/core"
	"helix/internal/plan"
)

// fanProgram builds source → c0..c(n-1), every child an output running
// childFn. childSig selects the children's operator signature: tests that
// need per-op correction evidence give every child the same signature
// (identical operators), tests that need distinct artifacts vary it.
func fanProgram(n int, sharedSig bool, srcFn OpFunc, childFn func(i int) OpFunc) *Program {
	d := core.NewDAG()
	src := d.MustAddNode("source", core.KindSource, core.DPR, "fan-src-v1", true)
	fns := map[*core.Node]OpFunc{src: srcFn}
	for i := 0; i < n; i++ {
		sig := "fan-child-v1"
		if !sharedSig {
			sig = fmt.Sprintf("fan-child-%d-v1", i)
		}
		c := d.MustAddNode(fmt.Sprintf("c%d", i), core.KindExtractor, core.PPR, sig, true)
		mustEdge(d, src, c)
		d.MarkOutput(c)
		fns[c] = childFn(i)
	}
	return &Program{DAG: d, Fns: fns}
}

// adaptiveEventLog collects a run's events; the engine delivers serially
// but from worker goroutines.
type adaptiveEventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *adaptiveEventLog) observe(ev Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *adaptiveEventLog) replans() (evs []ReplanEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range l.events {
		if re, ok := ev.(ReplanEvent); ok {
			evs = append(evs, re)
		}
	}
	return evs
}

func (l *adaptiveEventLog) runStats(t *testing.T) RunStatsEvent {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range l.events {
		if rs, ok := ev.(RunStatsEvent); ok {
			return rs
		}
	}
	t.Fatal("no RunStatsEvent in stream")
	return RunStatsEvent{}
}

// TestAdaptiveReplansStayUnderSolveBudget is the solve-bounding
// acceptance test: under a stable cost skew the monitor triggers more
// re-plan attempts than the solve budget allows, but only the first
// attempt actually moves estimates — the rest are idempotent (the same
// correction factors recompute the same values, the idempotence gate
// skips the writes, and no solve is spent). Re-plan attempts exceed the
// bound; solves stay within it; the one solving re-plan goes through the
// plan cache's partial path.
func TestAdaptiveReplansStayUnderSolveBudget(t *testing.T) {
	const (
		fan     = 8
		skew    = 80 * time.Millisecond // actual child cost
		carried = 2 * time.Millisecond  // what the previous iteration claims
	)
	// A hand-built previous iteration pins the carried estimates exactly:
	// identical baseC across children keeps the correction factor stable
	// between attempts, which is what makes repeat attempts idempotent.
	prev := fanProgram(fan, true,
		func(ctx context.Context, in []any) (any, error) { return 0, nil },
		func(i int) OpFunc {
			return func(ctx context.Context, in []any) (any, error) { return i, nil }
		}).DAG
	prev.ComputeSignatures()
	for _, n := range prev.Nodes() {
		n.Metrics.Compute = carried
		n.Metrics.Known = true
	}

	var childRuns atomic.Int32
	prog := fanProgram(fan, true,
		func(ctx context.Context, in []any) (any, error) {
			time.Sleep(carried)
			return 0, nil
		},
		func(i int) OpFunc {
			return func(ctx context.Context, in []any) (any, error) {
				childRuns.Add(1)
				time.Sleep(skew)
				return i, nil
			}
		})

	e := newEngine(t)
	e.Cache = plan.NewCache("adaptive-test")
	var log adaptiveEventLog
	opts := e.Opts
	// Three workers: when the first child completes and triggers the
	// solving re-plan, two siblings are already running with stale
	// projections — their completions re-trigger the monitor, exercising
	// the idempotent (free) path.
	opts.Parallelism = 3
	opts.DisableReuse = true // all-compute run: corrections only, no swaps
	opts.AdaptiveThreshold = 0.5
	opts.AdaptiveMaxSolves = 2
	opts.Observer = log.observe

	res, err := e.RunWith(context.Background(), prog, prev, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if childRuns.Load() != fan {
		t.Fatalf("reuse disabled, yet only %d/%d children computed", childRuns.Load(), fan)
	}
	for i := 0; i < fan; i++ {
		if got := res.Values[fmt.Sprintf("c%d", i)]; got != i {
			t.Fatalf("c%d = %v, want %d", i, got, i)
		}
	}

	replans := log.replans()
	rs := log.runStats(t)
	if rs.Replans < 3 {
		t.Fatalf("replans = %d, want at least 3 (one solving + stale-projection re-triggers)", rs.Replans)
	}
	if rs.Replans <= opts.AdaptiveMaxSolves {
		t.Fatalf("replans = %d must exceed the solve bound %d for this test to prove bounding", rs.Replans, opts.AdaptiveMaxSolves)
	}
	// Total solves: 1 for the cold initial plan + at most the adaptive
	// budget. With a stable skew exactly one re-plan should solve.
	if rs.Solves > 1+opts.AdaptiveMaxSolves {
		t.Fatalf("total solves = %d, want ≤ %d", rs.Solves, 1+opts.AdaptiveMaxSolves)
	}
	if rs.Solves != 2 {
		t.Fatalf("total solves = %d, want 2 (initial + one solving re-plan)", rs.Solves)
	}
	solving, idempotent := 0, 0
	for _, re := range replans {
		if re.Corrected > 0 {
			solving++
			if !re.Planned {
				t.Fatalf("re-plan corrected %d estimates but did not plan: %+v", re.Corrected, re)
			}
			// The run's own plan was cached at the initial solve; the
			// corrections dirty only the touched component, so the
			// re-plan must come back through the partial path, not cold.
			if re.Outcome != plan.CachePartial {
				t.Fatalf("solving re-plan outcome = %v, want CachePartial", re.Outcome)
			}
		} else {
			idempotent++
		}
	}
	if solving != 1 {
		t.Fatalf("%d solving re-plans, want exactly 1 under a stable skew", solving)
	}
	if idempotent < 2 {
		t.Fatalf("%d idempotent re-plans, want at least 2", idempotent)
	}
}

// TestAdaptiveSwapsComputeToLoad is the end-to-end mid-run adaptation
// scenario: iteration 0 materializes every child cheaply, so iteration
// 1's carried estimates say computing is cheaper than loading — but the
// operators have become slow. The divergence monitor corrects the
// frontier from the first measured completions, the re-solve flips the
// unstarted children to loads, and the run finishes by loading instead
// of recomputing, with identical outputs.
func TestAdaptiveSwapsComputeToLoad(t *testing.T) {
	const (
		fan  = 10
		slow = 50 * time.Millisecond
	)
	child := func(runs *atomic.Int32, delay time.Duration) func(i int) OpFunc {
		return func(i int) OpFunc {
			return func(ctx context.Context, in []any) (any, error) {
				if runs != nil {
					runs.Add(1)
				}
				time.Sleep(delay)
				return i * 10, nil
			}
		}
	}
	fastSrc := func(ctx context.Context, in []any) (any, error) { return 0, nil }

	e := newEngine(t)
	e.Cache = plan.NewCache("adaptive-swap-test")
	ctx := context.Background()

	// Iteration 0: everything computes instantly and materializes.
	prog0 := fanProgram(fan, false, fastSrc, child(nil, 0))
	if _, err := e.Run(ctx, prog0, nil, 0); err != nil {
		t.Fatal(err)
	}

	// Iteration 1: same workflow, operators now 3 orders slower than the
	// carried estimates claim.
	var slowRuns atomic.Int32
	prog1 := fanProgram(fan, false, fastSrc, child(&slowRuns, slow))
	var log adaptiveEventLog
	opts := e.Opts
	opts.Parallelism = 2
	opts.AdaptiveThreshold = 0.5
	opts.Observer = log.observe
	res, err := e.RunWith(ctx, prog1, prog0.DAG, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fan; i++ {
		if got := res.Values[fmt.Sprintf("c%d", i)]; got != i*10 {
			t.Fatalf("c%d = %v, want %d", i, got, i*10)
		}
	}

	rs := log.runStats(t)
	if rs.Replans < 1 {
		t.Fatal("divergence never triggered a re-plan")
	}
	if rs.Swapped < fan/2 {
		t.Fatalf("swapped %d children to loads, want at least %d", rs.Swapped, fan/2)
	}
	// At most the children already claimed when the monitor tripped (two
	// workers' worth, plus scheduling slack) actually computed.
	if n := slowRuns.Load(); n > fan/2 {
		t.Fatalf("%d/%d slow children computed; adaptation should have loaded most", n, fan)
	}
	// Result.Plan reflects the adopted swaps: load rows with the adaptive
	// rationale, and counts matching the swap tally.
	loads, rationed := 0, 0
	for _, np := range res.Plan.Nodes {
		if np.State == core.StateLoad {
			loads++
			if strings.Contains(np.Rationale, "adaptive") {
				rationed++
			}
		}
	}
	if rationed != rs.Swapped {
		t.Fatalf("%d plan rows carry the adaptive rationale, run stats swapped %d", rationed, rs.Swapped)
	}
	if res.Plan.Counts[core.StateLoad] != loads {
		t.Fatalf("plan counts %d loads, rows show %d", res.Plan.Counts[core.StateLoad], loads)
	}
	if rs.Solves > 1+defaultAdaptiveMaxSolves {
		t.Fatalf("total solves = %d, exceeded default budget %d", rs.Solves, 1+defaultAdaptiveMaxSolves)
	}
}

// TestAdaptiveDisabledEmitsNothing pins the off-by-default contract: with
// a zero threshold no ReplanEvent ever appears and run stats report zero
// re-plans, even under the same cost skew.
func TestAdaptiveDisabledEmitsNothing(t *testing.T) {
	prev := fanProgram(3, true,
		func(ctx context.Context, in []any) (any, error) { return 0, nil },
		func(i int) OpFunc {
			return func(ctx context.Context, in []any) (any, error) { return i, nil }
		}).DAG
	prev.ComputeSignatures()
	for _, n := range prev.Nodes() {
		n.Metrics.Compute = time.Millisecond
		n.Metrics.Known = true
	}
	prog := fanProgram(3, true,
		func(ctx context.Context, in []any) (any, error) { return 0, nil },
		func(i int) OpFunc {
			return func(ctx context.Context, in []any) (any, error) {
				time.Sleep(30 * time.Millisecond)
				return i, nil
			}
		})
	e := newEngine(t)
	var log adaptiveEventLog
	opts := e.Opts
	opts.DisableReuse = true
	opts.Observer = log.observe
	if _, err := e.RunWith(context.Background(), prog, prev, 1, opts); err != nil {
		t.Fatal(err)
	}
	if n := len(log.replans()); n != 0 {
		t.Fatalf("adaptive off, yet %d ReplanEvents emitted", n)
	}
	if rs := log.runStats(t); rs.Replans != 0 || rs.Swapped != 0 {
		t.Fatalf("adaptive off, yet run stats %+v", rs)
	}
}
