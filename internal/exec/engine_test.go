package exec

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"helix/internal/core"
	"helix/internal/opt"
	"helix/internal/store"
)

func init() {
	store.RegisterValueType([]string(nil))
	store.RegisterValueType(0)
	store.RegisterValueType(0.0)
}

// testProgram builds a 4-node chain source → extract → learn → check with
// call counters so tests can observe which operators actually ran.
//
// Operators sleep ~10ms each so that compute costs dominate the store's
// ~1ms load estimate: reuse (load + prune ancestors) is then genuinely the
// optimal plan, as in the paper's workloads where operators take seconds.
type counters struct {
	source, extract, learn, check atomic.Int32
}

// opDelay is the simulated per-operator compute cost in tests.
const opDelay = 10 * time.Millisecond

func testProgram(c *counters) *Program {
	d := core.NewDAG()
	src := d.MustAddNode("source", core.KindSource, core.DPR, "src-v1", true)
	ext := d.MustAddNode("extract", core.KindExtractor, core.DPR, "ext-v1", true)
	lrn := d.MustAddNode("learn", core.KindLearner, core.LI, "lrn-v1", true)
	chk := d.MustAddNode("check", core.KindReducer, core.PPR, "chk-v1", true)
	mustEdge(d, src, ext)
	mustEdge(d, ext, lrn)
	mustEdge(d, lrn, chk)
	d.MarkOutput(chk)
	return &Program{
		DAG: d,
		Fns: map[*core.Node]OpFunc{
			src: func(ctx context.Context, in []any) (any, error) {
				c.source.Add(1)
				time.Sleep(opDelay)
				return []string{"r1", "r2", "r3"}, nil
			},
			ext: func(ctx context.Context, in []any) (any, error) {
				c.extract.Add(1)
				time.Sleep(opDelay)
				rows := in[0].([]string)
				return len(rows), nil
			},
			lrn: func(ctx context.Context, in []any) (any, error) {
				c.learn.Add(1)
				time.Sleep(opDelay)
				return in[0].(int) * 10, nil
			},
			chk: func(ctx context.Context, in []any) (any, error) {
				c.check.Add(1)
				time.Sleep(opDelay)
				return float64(in[0].(int)) / 100.0, nil
			},
		},
	}
}

func mustEdge(d *core.DAG, from, to *core.Node) {
	if err := d.AddEdge(from, to); err != nil {
		panic(err)
	}
}

func newEngine(t *testing.T) *Engine {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := New(st, -1)
	// Pin the scheduler width so timing-sensitive assertions (component
	// breakdowns, slowdown factors) behave identically on single-CPU CI
	// runners and developer machines.
	e.Opts.Parallelism = 4
	return e
}

func TestRunComputesAllFirstIteration(t *testing.T) {
	e := newEngine(t)
	var c counters
	prog := testProgram(&c)
	res, err := e.Run(context.Background(), prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values["check"]; got != 0.3 {
		t.Fatalf("output = %v, want 0.3", got)
	}
	if c.source.Load() != 1 || c.extract.Load() != 1 || c.learn.Load() != 1 || c.check.Load() != 1 {
		t.Fatalf("operators not all run exactly once: src=%d ext=%d lrn=%d chk=%d", c.source.Load(), c.extract.Load(), c.learn.Load(), c.check.Load())
	}
	if res.StateCounts[core.StateCompute] != 4 {
		t.Fatalf("StateCounts = %v, want 4 computes", res.StateCounts)
	}
}

func TestRerunIdenticalWorkflowReuses(t *testing.T) {
	e := newEngine(t)
	var c counters
	prog := testProgram(&c)
	ctx := context.Background()
	res0, err := e.Run(ctx, prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the identical workflow (fresh DAG, same declarations).
	var c2 counters
	prog2 := testProgram(&c2)
	res1, err := e.Run(ctx, prog2, prog.DAG, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res1.Values["check"], res0.Values["check"]; got != want {
		t.Fatalf("iteration 1 output %v != iteration 0 output %v", got, want)
	}
	// Nothing changed, so nothing should be computed from scratch: the
	// output is loaded, ancestors pruned.
	if c2.source.Load()+c2.extract.Load()+c2.learn.Load()+c2.check.Load() != 0 {
		t.Fatalf("identical rerun recomputed operators: %+v", &c2)
	}
	if res1.StateCounts[core.StateCompute] != 0 {
		t.Fatalf("identical rerun has computes: %v", res1.StateCounts)
	}
}

func TestChangedOperatorRecomputesDownstreamOnly(t *testing.T) {
	e := newEngine(t)
	var c counters
	prog := testProgram(&c)
	ctx := context.Background()
	if _, err := e.Run(ctx, prog, nil, 0); err != nil {
		t.Fatal(err)
	}
	// Change the learner (an L/I iteration): DPR should be reused.
	var c2 counters
	prog2 := testProgram(&c2)
	lrn := prog2.DAG.Node("learn")
	lrn.OpSignature = "lrn-v2"
	prog2.Fns[lrn] = func(ctx context.Context, in []any) (any, error) {
		c2.learn.Add(1)
		return in[0].(int) * 20, nil
	}
	res, err := e.Run(ctx, prog2, prog.DAG, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values["check"]; got != 0.6 {
		t.Fatalf("updated output = %v, want 0.6", got)
	}
	if c2.source.Load() != 0 {
		t.Fatal("source recomputed although unchanged and materialized downstream")
	}
	if c2.learn.Load() != 1 || c2.check.Load() != 1 {
		t.Fatalf("changed subgraph not recomputed: %+v", &c2)
	}
}

// TestTheorem1Correctness: results with reuse must equal a from-scratch
// execution after arbitrary change sequences.
func TestTheorem1Correctness(t *testing.T) {
	ctx := context.Background()
	e := newEngine(t)
	var prev *core.DAG
	for iter := 0; iter < 5; iter++ {
		var c counters
		prog := testProgram(&c)
		factor := 10 + iter // modify the learner every iteration
		lrn := prog.DAG.Node("learn")
		lrn.OpSignature = fmt.Sprintf("lrn-v%d", iter)
		prog.Fns[lrn] = func(ctx context.Context, in []any) (any, error) {
			return in[0].(int) * factor, nil
		}
		res, err := e.Run(ctx, prog, prev, iter)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(3*factor) / 100.0
		if got := res.Values["check"]; got != want {
			t.Fatalf("iteration %d: output %v, want %v (Theorem 1 violated)", iter, got, want)
		}
		prev = prog.DAG
	}
}

func TestPruningSkipsNonContributing(t *testing.T) {
	e := newEngine(t)
	var c counters
	prog := testProgram(&c)
	// Add an extractor that no output depends on.
	var deadRuns atomic.Int32
	dead := prog.DAG.MustAddNode("deadExt", core.KindExtractor, core.DPR, "dead-v1", true)
	mustEdge(prog.DAG, prog.DAG.Node("source"), dead)
	prog.Fns[dead] = func(ctx context.Context, in []any) (any, error) {
		deadRuns.Add(1)
		return nil, nil
	}
	res, err := e.Run(context.Background(), prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if deadRuns.Load() != 0 {
		t.Fatal("non-contributing operator executed")
	}
	if res.Nodes["deadExt"].State != core.StatePrune {
		t.Fatalf("deadExt state = %v, want Prune", res.Nodes["deadExt"].State)
	}
}

func TestDisablePruningRunsEverything(t *testing.T) {
	e := newEngine(t)
	e.Opts.DisablePruning = true
	var c counters
	prog := testProgram(&c)
	var deadRuns atomic.Int32
	dead := prog.DAG.MustAddNode("deadExt", core.KindExtractor, core.DPR, "dead-v1", true)
	mustEdge(prog.DAG, prog.DAG.Node("source"), dead)
	prog.Fns[dead] = func(ctx context.Context, in []any) (any, error) {
		deadRuns.Add(1)
		return 1, nil
	}
	if _, err := e.Run(context.Background(), prog, nil, 0); err != nil {
		t.Fatal(err)
	}
	if deadRuns.Load() != 1 {
		t.Fatal("pruning not disabled")
	}
}

func TestNeverMatPolicyStoresOnlyNothing(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Opts: Options{Policy: opt.NeverMat{}, MaterializeOutputs: false}}
	var c counters
	prog := testProgram(&c)
	if _, err := e.Run(context.Background(), prog, nil, 0); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Fatalf("NeverMat stored %d entries", st.Len())
	}
}

func TestAlwaysMatPolicyStoresEverything(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Opts: Options{Policy: opt.AlwaysMat{}, MaterializeOutputs: true}}
	var c counters
	prog := testProgram(&c)
	if _, err := e.Run(context.Background(), prog, nil, 0); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 4 {
		t.Fatalf("AlwaysMat stored %d entries, want 4", st.Len())
	}
}

func TestDisableReuseRecomputesEverything(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Opts: Options{Policy: opt.AlwaysMat{}, MaterializeOutputs: true}}
	ctx := context.Background()
	var c counters
	prog := testProgram(&c)
	if _, err := e.Run(ctx, prog, nil, 0); err != nil {
		t.Fatal(err)
	}
	e.Opts.DisableReuse = true
	var c2 counters
	prog2 := testProgram(&c2)
	if _, err := e.Run(ctx, prog2, prog.DAG, 1); err != nil {
		t.Fatal(err)
	}
	if c2.source.Load() != 1 || c2.check.Load() != 1 {
		t.Fatalf("DisableReuse did not recompute: %+v", &c2)
	}
}

func TestLoadFailureFallsBackToRecompute(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Opts: Options{Policy: opt.AlwaysMat{}, MaterializeOutputs: true}}
	ctx := context.Background()
	var c counters
	prog := testProgram(&c)
	if _, err := e.Run(ctx, prog, nil, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt every stored file (failure injection).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) == ".gob" {
			if err := os.WriteFile(filepath.Join(dir, ent.Name()), []byte("corrupt"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	var c2 counters
	prog2 := testProgram(&c2)
	res, err := e.Run(ctx, prog2, prog.DAG, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values["check"]; got != 0.3 {
		t.Fatalf("fallback produced %v, want 0.3", got)
	}
}

func TestOperatorErrorPropagates(t *testing.T) {
	e := newEngine(t)
	var c counters
	prog := testProgram(&c)
	lrn := prog.DAG.Node("learn")
	prog.Fns[lrn] = func(ctx context.Context, in []any) (any, error) {
		return nil, fmt.Errorf("boom")
	}
	if _, err := e.Run(context.Background(), prog, nil, 0); err == nil {
		t.Fatal("expected operator error to propagate")
	}
}

func TestContextCancellation(t *testing.T) {
	e := newEngine(t)
	var c counters
	prog := testProgram(&c)
	src := prog.DAG.Node("source")
	prog.Fns[src] = func(ctx context.Context, in []any) (any, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return []string{}, nil
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := e.Run(ctx, prog, nil, 0); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestBreakdownByComponent(t *testing.T) {
	e := newEngine(t)
	var c counters
	prog := testProgram(&c)
	slow := prog.DAG.Node("learn")
	prog.Fns[slow] = func(ctx context.Context, in []any) (any, error) {
		time.Sleep(30 * time.Millisecond)
		return in[0].(int) * 10, nil
	}
	res, err := e.Run(context.Background(), prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown[core.LI] < 25*time.Millisecond {
		t.Fatalf("L/I breakdown = %v, want ≥ 25ms", res.Breakdown[core.LI])
	}
	if res.Breakdown[core.LI] <= res.Breakdown[core.PPR] {
		t.Fatal("slow learner should dominate PPR in breakdown")
	}
}

func TestMemorySampling(t *testing.T) {
	e := newEngine(t)
	e.Opts.SampleMemory = true
	var c counters
	prog := testProgram(&c)
	res, err := e.Run(context.Background(), prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakMemBytes == 0 || res.AvgMemBytes == 0 {
		t.Fatalf("memory not sampled: peak=%d avg=%d", res.PeakMemBytes, res.AvgMemBytes)
	}
	if res.PeakMemBytes < res.AvgMemBytes {
		t.Fatal("peak < average")
	}
}

func TestDPRSlowdown(t *testing.T) {
	e := newEngine(t)
	var c counters
	prog := testProgram(&c)
	src := prog.DAG.Node("source")
	prog.Fns[src] = func(ctx context.Context, in []any) (any, error) {
		time.Sleep(20 * time.Millisecond)
		return []string{"r"}, nil
	}
	res, err := e.Run(context.Background(), prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := res.Nodes["source"].Seconds

	e2 := newEngine(t)
	e2.Opts.DPRSlowdown = 3
	var c2 counters
	prog2 := testProgram(&c2)
	src2 := prog2.DAG.Node("source")
	prog2.Fns[src2] = func(ctx context.Context, in []any) (any, error) {
		time.Sleep(20 * time.Millisecond)
		return []string{"r"}, nil
	}
	res2, err := e2.Run(context.Background(), prog2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Nodes["source"].Seconds < 2*base {
		t.Fatalf("DPR slowdown not applied: %v vs base %v", res2.Nodes["source"].Seconds, base)
	}
}

func TestDeprecatedMaterializationsPurged(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st, Opts: Options{Policy: opt.AlwaysMat{}, MaterializeOutputs: true}}
	ctx := context.Background()
	var c counters
	prog := testProgram(&c)
	if _, err := e.Run(ctx, prog, nil, 0); err != nil {
		t.Fatal(err)
	}
	used0 := st.UsedBytes()
	// Change the extractor: extract/learn/check materializations deprecate.
	var c2 counters
	prog2 := testProgram(&c2)
	ext := prog2.DAG.Node("extract")
	ext.OpSignature = "ext-v2"
	if _, err := e.Run(ctx, prog2, prog.DAG, 1); err != nil {
		t.Fatal(err)
	}
	// Old deprecated entries must be gone; store holds current versions.
	for _, key := range st.Keys() {
		found := false
		for _, n := range prog2.DAG.Nodes() {
			if n.ChainSignature() == key {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("store retains deprecated entry %s", key)
		}
	}
	if used0 == 0 {
		t.Fatal("no bytes stored in iteration 0")
	}
}

func TestRunInvalidDAGFails(t *testing.T) {
	e := newEngine(t)
	prog := &Program{DAG: core.NewDAG(), Fns: map[*core.Node]OpFunc{}}
	// Empty DAG is valid; break it with a duplicate-name hack is not
	// possible through the API, so check the empty-run path instead.
	res, err := e.Run(context.Background(), prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 0 {
		t.Fatal("empty workflow produced values")
	}
}

func TestLISlowdown(t *testing.T) {
	e := newEngine(t)
	e.Opts.LISlowdown = 3
	var c counters
	prog := testProgram(&c)
	res, err := e.Run(context.Background(), prog, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The learner sleeps opDelay; with a 3x slowdown it should report at
	// least ~2x the base delay.
	if res.Nodes["learn"].Seconds < 2*opDelay.Seconds() {
		t.Fatalf("L/I slowdown not applied: %.3fs", res.Nodes["learn"].Seconds)
	}
	// DPR nodes unaffected.
	if res.Nodes["source"].Seconds > 2*opDelay.Seconds() {
		t.Fatalf("L/I slowdown leaked into DPR: %.3fs", res.Nodes["source"].Seconds)
	}
}

func TestBlindPolicyStoresNondeterministic(t *testing.T) {
	// AM (blind) materializes nondeterministic outputs — the paper's
	// reason AM cannot finish MNIST; OPT-style policies skip them.
	for _, tc := range []struct {
		policy opt.MatPolicy
		want   bool
	}{
		{opt.AlwaysMat{}, true},
		{opt.NewStreamingOMP(-1), false},
	} {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		e := &Engine{Store: st, Opts: Options{Policy: tc.policy, MaterializeOutputs: false}}
		var c counters
		prog := testProgram(&c)
		d := prog.DAG
		nd := d.MustAddNode("random", core.KindExtractor, core.DPR, "rand-v1", false)
		mustEdge(d, d.Node("source"), nd)
		sink := d.MustAddNode("sink", core.KindReducer, core.PPR, "sink-v1", true)
		mustEdge(d, nd, sink)
		d.MarkOutput(sink)
		prog.Fns[nd] = func(ctx context.Context, in []any) (any, error) {
			time.Sleep(opDelay)
			return 42, nil
		}
		prog.Fns[sink] = func(ctx context.Context, in []any) (any, error) {
			time.Sleep(opDelay)
			return in[0], nil
		}
		if _, err := e.Run(context.Background(), prog, nil, 0); err != nil {
			t.Fatal(err)
		}
		stored := false
		for _, key := range st.Keys() {
			if ent, ok := st.Entry(key); ok && ent.Name == "random" {
				stored = true
			}
		}
		if stored != tc.want {
			t.Fatalf("policy %s: nondeterministic stored = %v, want %v", tc.policy.Name(), stored, tc.want)
		}
	}
}

func TestPurgeReleasesOMPBudget(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits roughly one iteration's intermediates; purging the
	// deprecated results must return the bytes so the next iteration's
	// versions can be materialized too.
	policy := opt.NewStreamingOMP(64 << 10)
	e := &Engine{Store: st, Opts: Options{Policy: policy, MaterializeOutputs: true}}
	ctx := context.Background()

	var c counters
	prog := testProgram(&c)
	if _, err := e.Run(ctx, prog, nil, 0); err != nil {
		t.Fatal(err)
	}
	before := policy.Remaining()

	// Change the extractor: everything downstream deprecates and is
	// purged, so the reserved budget must come back.
	var c2 counters
	prog2 := testProgram(&c2)
	prog2.DAG.Node("extract").OpSignature = "ext-v2"
	if _, err := e.Run(ctx, prog2, prog.DAG, 1); err != nil {
		t.Fatal(err)
	}
	after := policy.Remaining()
	// After purging 3 deprecated entries and re-materializing 3 new
	// versions of similar size, remaining budget should be close to the
	// pre-iteration level — not monotonically drained.
	if after < before-(8<<10) {
		t.Fatalf("budget drained: before=%d after=%d (purge not released)", before, after)
	}
}
