package exec

import (
	"runtime"
	"sync"
	"time"
)

// memSampler periodically samples heap usage during a run, producing the
// peak and average memory figures of the paper's Figure 10.
type memSampler struct {
	interval time.Duration
	stopCh   chan struct{}
	wg       sync.WaitGroup

	mu    sync.Mutex
	peak  uint64
	total uint64
	count uint64
}

// startMemSampler begins sampling runtime.MemStats.HeapAlloc at the given
// interval until stop is called.
func startMemSampler(interval time.Duration) *memSampler {
	s := &memSampler{interval: interval, stopCh: make(chan struct{})}
	s.sample()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ticker := time.NewTicker(s.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				s.sample()
			case <-s.stopCh:
				return
			}
		}
	}()
	return s
}

func (s *memSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	if ms.HeapAlloc > s.peak {
		s.peak = ms.HeapAlloc
	}
	s.total += ms.HeapAlloc
	s.count++
	s.mu.Unlock()
}

// stop halts sampling and returns (peak, average) heap bytes observed.
func (s *memSampler) stop() (peak, avg uint64) {
	close(s.stopCh)
	s.wg.Wait()
	s.sample()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0, 0
	}
	return s.peak, s.total / s.count
}
