package core

import (
	"math"
	"time"
)

// statDecay is the per-observation geometric decay applied to the weight
// of all history when a new cost observation arrives. 0.6 keeps roughly
// 2.5 observations' worth of effective history (1/(1-d)), so an estimate
// converges to a shifted regime within two or three runs while still
// smoothing one-off scheduling noise.
const statDecay = 0.6

// CostStat is a decayed online estimator of one scalar cost (seconds):
// an exponentially weighted mean and variance maintained incrementally
// (weighted Welford update under geometric decay). It replaces last-value
// cost carrying: a single anomalous run moves the estimate, but does not
// replace it, and stale history is forgotten at rate statDecay per new
// observation.
//
// The zero value is an empty estimator. Fields are exported (with JSON
// tags) so the estimator rides along inside Metrics through session
// snapshots.
type CostStat struct {
	// Mean is the decayed weighted mean of observations, in seconds.
	Mean float64 `json:"mean"`
	// M2 is the decayed weighted sum of squared deviations; Var derives
	// the variance from it.
	M2 float64 `json:"m2,omitempty"`
	// Weight is the total decayed observation weight (the newest
	// observation contributes 1; history contributes Weight·statDecay).
	Weight float64 `json:"weight,omitempty"`
}

// Observe folds one observation (seconds) into the estimator: all prior
// weight decays by statDecay, then x joins with weight 1.
func (s *CostStat) Observe(x float64) {
	w := s.Weight*statDecay + 1
	s.M2 *= statDecay
	delta := x - s.Mean
	mean := s.Mean + delta/w
	s.M2 += delta * (x - mean)
	s.Mean = mean
	s.Weight = w
}

// Var returns the decayed weighted variance, or 0 with fewer than two
// observations' weight.
func (s *CostStat) Var() float64 {
	if s.Weight <= 1 {
		return 0
	}
	return s.M2 / s.Weight
}

// Std returns the decayed weighted standard deviation.
func (s *CostStat) Std() float64 { return math.Sqrt(s.Var()) }

// Empty reports whether the estimator has seen no observations.
func (s *CostStat) Empty() bool { return s.Weight == 0 }

// ObserveCompute folds a measured compute duration into the node's
// statistics: the decayed estimator absorbs the observation and the
// point estimate the optimizers read (Metrics.Compute) becomes the
// decayed mean, so every existing consumer is transparently corrected.
func (m *Metrics) ObserveCompute(d time.Duration) {
	m.ComputeStat.Observe(d.Seconds())
	m.Compute = time.Duration(m.ComputeStat.Mean * float64(time.Second))
	m.Known = true
}

// ObserveLoad is ObserveCompute for a measured load duration.
func (m *Metrics) ObserveLoad(d time.Duration) {
	m.LoadStat.Observe(d.Seconds())
	m.Load = time.Duration(m.LoadStat.Mean * float64(time.Second))
	m.Known = true
}
