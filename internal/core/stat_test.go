package core

import (
	"math"
	"testing"
	"time"
)

func TestCostStatConverges(t *testing.T) {
	var s CostStat
	if !s.Empty() {
		t.Fatal("zero value should be empty")
	}
	for i := 0; i < 10; i++ {
		s.Observe(2.0)
	}
	if math.Abs(s.Mean-2.0) > 1e-9 {
		t.Fatalf("constant stream: mean = %v, want 2.0", s.Mean)
	}
	if s.Var() > 1e-9 {
		t.Fatalf("constant stream: var = %v, want 0", s.Var())
	}
}

func TestCostStatDecayForgets(t *testing.T) {
	var s CostStat
	for i := 0; i < 20; i++ {
		s.Observe(10.0)
	}
	// Regime change: the decayed estimator must approach the new level
	// within a handful of observations, unlike a plain running mean
	// (which after 20 tens and 8 ones would still sit near 7.4).
	for i := 0; i < 8; i++ {
		s.Observe(1.0)
	}
	if s.Mean > 1.2 {
		t.Fatalf("after regime change mean = %v, want ≤ 1.2", s.Mean)
	}
	// And it is not last-value: one outlier moves but does not replace.
	s.Observe(100.0)
	if s.Mean >= 100.0/2 {
		t.Fatalf("single outlier dominated: mean = %v", s.Mean)
	}
	if s.Mean <= 1.0 {
		t.Fatalf("single outlier ignored: mean = %v", s.Mean)
	}
}

func TestCostStatVariance(t *testing.T) {
	var s CostStat
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			s.Observe(1.0)
		} else {
			s.Observe(3.0)
		}
	}
	if s.Mean < 1.5 || s.Mean > 2.5 {
		t.Fatalf("alternating stream mean = %v, want ≈2", s.Mean)
	}
	if s.Std() < 0.5 || s.Std() > 1.5 {
		t.Fatalf("alternating stream std = %v, want ≈1", s.Std())
	}
}

func TestMetricsObserve(t *testing.T) {
	var m Metrics
	m.ObserveCompute(2 * time.Second)
	if !m.Known || m.Compute != 2*time.Second {
		t.Fatalf("after first observation: Known=%v Compute=%v", m.Known, m.Compute)
	}
	m.ObserveCompute(4 * time.Second)
	if m.Compute <= 2*time.Second || m.Compute >= 4*time.Second {
		t.Fatalf("second observation should blend: Compute=%v", m.Compute)
	}
	m.ObserveLoad(time.Second)
	if m.Load != time.Second {
		t.Fatalf("Load=%v, want 1s", m.Load)
	}
}

func TestCarryMetricsCarriesStats(t *testing.T) {
	prev := NewDAG()
	a := prev.MustAddNode("a", KindSource, DPR, "src|a|v1", true)
	prev.ComputeSignatures()
	a.Metrics.ObserveCompute(3 * time.Second)
	a.Metrics.ObserveCompute(3 * time.Second)

	next := NewDAG()
	b := next.MustAddNode("a", KindSource, DPR, "src|a|v1", true)
	next.ComputeSignatures()
	next.CarryMetrics(prev)
	if b.Metrics.ComputeStat.Weight != a.Metrics.ComputeStat.Weight {
		t.Fatalf("estimator weight not carried: %v vs %v",
			b.Metrics.ComputeStat.Weight, a.Metrics.ComputeStat.Weight)
	}
	if b.Metrics.Compute != a.Metrics.Compute {
		t.Fatalf("point estimate not carried")
	}
}
