package core

// Snapshot is a serializable summary of an executed DAG: each node's
// equivalence signature and measured metrics. It carries exactly the
// state the next iteration's change tracking needs (OriginalNodes,
// CarryMetrics consult only signature-indexed maps), so a session can
// persist it and resume reuse across process restarts.
type Snapshot struct {
	Nodes []NodeSnapshot `json:"nodes"`
}

// NodeSnapshot is one node's persisted identity and statistics.
type NodeSnapshot struct {
	Name           string  `json:"name"`
	ChainSignature string  `json:"chain_signature"`
	Metrics        Metrics `json:"metrics"`
}

// Snapshot captures the DAG's current signatures and metrics.
// ComputeSignatures must have run.
func (d *DAG) Snapshot() Snapshot {
	s := Snapshot{Nodes: make([]NodeSnapshot, 0, len(d.nodes))}
	for _, n := range d.nodes {
		s.Nodes = append(s.Nodes, NodeSnapshot{
			Name:           n.Name,
			ChainSignature: n.chainSig,
			Metrics:        n.Metrics,
		})
	}
	return s
}

// FromSnapshot reconstructs a "ghost" DAG from a snapshot: nodes carry
// their persisted signatures and metrics but no edges or functions. It is
// sufficient as the prev argument to OriginalNodes and CarryMetrics.
func FromSnapshot(s Snapshot) *DAG {
	d := NewDAG()
	for _, ns := range s.Nodes {
		n, err := d.AddNode(ns.Name, KindSource, DPR, "", true)
		if err != nil {
			continue // duplicate names in a corrupt snapshot: keep first
		}
		n.chainSig = ns.ChainSignature
		n.Metrics = ns.Metrics
	}
	return d
}
