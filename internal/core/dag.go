// Package core defines the Workflow DAG — the intermediate representation
// that HELIX compiles HML programs into (paper §4). Nodes correspond to
// operator outputs; edges correspond to input→output relationships between
// operators. The package also implements change tracking across iterations
// via representational equivalence (Definition 2), and the program-slicing
// pruning of §5.4.
package core

import (
	"container/heap"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"
)

// Kind classifies an operator by its HML interface (paper §3.2.2).
type Kind int

const (
	// KindSource is a data source on disk (paper: FileSource); root nodes.
	KindSource Kind = iota
	// KindScanner implements parsing ∈ F (flatMap over records).
	KindScanner
	// KindExtractor implements feature extraction/transformation ∈ F.
	KindExtractor
	// KindSynthesizer implements join ∈ F and example assembly.
	KindSynthesizer
	// KindLearner implements learning and inference ∈ F.
	KindLearner
	// KindReducer implements reduce ∈ F (PPR).
	KindReducer
)

var kindNames = [...]string{"Source", "Scanner", "Extractor", "Synthesizer", "Learner", "Reducer"}

// String returns the HML interface name of the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Component classifies an operator into the three workflow components of
// the paper (§2): data preprocessing, learning/inference, postprocessing.
type Component int

const (
	// DPR is data preprocessing.
	DPR Component = iota
	// LI is learning/inference.
	LI
	// PPR is postprocessing.
	PPR
)

var componentNames = [...]string{"DPR", "L/I", "PPR"}

// String returns the paper's abbreviation for the component.
func (c Component) String() string {
	if c < 0 || int(c) >= len(componentNames) {
		return fmt.Sprintf("Component(%d)", int(c))
	}
	return componentNames[c]
}

// State is the execution state assigned to a node by the DAG optimizer
// (paper §5.1): load from disk, compute from inputs, or prune entirely.
type State int

const (
	// StateCompute (S_c): compute the node from its in-memory inputs.
	StateCompute State = iota
	// StateLoad (S_l): load the node's result from disk.
	StateLoad
	// StatePrune (S_p): skip the node (neither loaded nor computed).
	StatePrune
)

var stateNames = [...]string{"Sc", "Sl", "Sp"}

// String returns the paper's notation for the state.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// Metrics records the operator statistics used by the optimizers
// (paper §5.1): compute time c_i, load time l_i, and on-disk size s_i.
// Compute and Load are point estimates — when fed through ObserveCompute/
// ObserveLoad they are the decayed means of the per-signature online
// estimators carried alongside, rather than last-run values.
type Metrics struct {
	Compute time.Duration // c_i: time to compute from in-memory inputs
	Load    time.Duration // l_i: time to load materialized result from disk
	Size    int64         // s_i: bytes on disk when materialized
	Known   bool          // whether metrics come from a measured run

	// ComputeStat and LoadStat are the decayed online estimators behind
	// the point estimates above; they carry across iterations (and
	// through session snapshots) with the rest of the struct.
	ComputeStat CostStat
	LoadStat    CostStat
}

// Node is one vertex of the Workflow DAG: the output of a single operator.
type Node struct {
	ID        int
	Name      string
	Kind      Kind
	Component Component

	// OpSignature identifies the operator's own declaration: name, kind,
	// parameters, and UDF version tag. It deliberately excludes ancestry.
	OpSignature string

	// Deterministic reports whether the operator computes identical output
	// given identical input. Nondeterministic operators (e.g. randomized
	// feature maps without a fixed seed, as in the paper's MNIST workflow)
	// never have equivalent materializations and are always recomputed.
	Deterministic bool

	// Streamable reports that the operator is a unary row-wise
	// transformation (map / flatMap / filter over its single input's rows)
	// with a registered per-row implementation, making it a candidate for
	// operator fusion: the planner may place it inside a fused run whose
	// interior collections are never fully built. Set by the DSL compiler
	// for operators declared through the streaming helpers.
	Streamable bool

	// Metrics from the most recent execution (or a previous iteration, per
	// §5.2: statistics of equivalent nodes carry over exactly).
	Metrics Metrics

	parents  []*Node
	children []*Node

	// chainSig is the chained signature implementing Definition 2; computed
	// lazily by DAG.ComputeSignatures.
	chainSig string
}

// Parents returns the node's direct inputs in insertion order. The returned
// slice must not be modified.
func (n *Node) Parents() []*Node { return n.parents }

// Children returns the node's direct consumers in insertion order. The
// returned slice must not be modified.
func (n *Node) Children() []*Node { return n.children }

// ChainSignature returns the equivalence signature of the node: a hash of
// its own operator signature chained with the signatures of all ancestors.
// Two nodes across iterations with equal chain signatures are equivalent in
// the sense of Definition 2 (same operator declaration, equivalent parents).
// Empty until DAG.ComputeSignatures has run.
func (n *Node) ChainSignature() string { return n.chainSig }

// DAG is a workflow DAG G_W = (N, E). Nodes are identified by unique names
// (the HML variable bound with refers_to).
type DAG struct {
	nodes   []*Node
	byName  map[string]*Node
	outputs []*Node
	// bySig is the lazily built chain-signature index used when this DAG
	// serves as the previous iteration for change tracking; invalidated
	// whenever signatures are recomputed. With equal signatures (identical
	// duplicated subgraphs) the last node wins, matching the historical
	// map-build behavior.
	bySig map[string]*Node
}

// SigIndex returns the signature→node index, building it on first use.
// Valid only after ComputeSignatures (or FromSnapshot) populated the
// chain signatures. The returned map must not be modified.
func (d *DAG) SigIndex() map[string]*Node {
	if d.bySig == nil {
		d.bySig = make(map[string]*Node, len(d.nodes))
		for _, n := range d.nodes {
			d.bySig[n.chainSig] = n
		}
	}
	return d.bySig
}

// NewDAG returns an empty workflow DAG.
func NewDAG() *DAG {
	return &DAG{byName: make(map[string]*Node)}
}

// AddNode creates a node and adds it to the DAG. It returns an error if the
// name is already taken.
func (d *DAG) AddNode(name string, kind Kind, comp Component, opSig string, deterministic bool) (*Node, error) {
	if name == "" {
		return nil, fmt.Errorf("core: empty node name")
	}
	if _, ok := d.byName[name]; ok {
		return nil, fmt.Errorf("core: duplicate node %q", name)
	}
	n := &Node{
		ID:            len(d.nodes),
		Name:          name,
		Kind:          kind,
		Component:     comp,
		OpSignature:   opSig,
		Deterministic: deterministic,
	}
	d.nodes = append(d.nodes, n)
	d.byName[name] = n
	return n, nil
}

// MustAddNode is AddNode but panics on error; for use in tests and
// generated code where names are statically unique.
func (d *DAG) MustAddNode(name string, kind Kind, comp Component, opSig string, deterministic bool) *Node {
	n, err := d.AddNode(name, kind, comp, opSig, deterministic)
	if err != nil {
		panic(err)
	}
	return n
}

// AddEdge records that the output of from is an input to to. Duplicate
// edges are ignored. It returns an error if either node is unknown or the
// edge would close a cycle.
func (d *DAG) AddEdge(from, to *Node) error {
	if from == nil || to == nil {
		return fmt.Errorf("core: nil node in edge")
	}
	if d.byName[from.Name] != from || d.byName[to.Name] != to {
		return fmt.Errorf("core: edge endpoints not in this DAG")
	}
	if from == to {
		return fmt.Errorf("core: self-edge on %q", from.Name)
	}
	for _, c := range from.children {
		if c == to {
			return nil // already present
		}
	}
	if d.reaches(to, from) {
		return fmt.Errorf("core: edge %q→%q would create a cycle", from.Name, to.Name)
	}
	from.children = append(from.children, to)
	to.parents = append(to.parents, from)
	return nil
}

// reaches reports whether dst is reachable from src following child edges.
func (d *DAG) reaches(src, dst *Node) bool {
	if src == dst {
		return true
	}
	seen := make(map[*Node]bool)
	stack := []*Node{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == dst {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, n.children...)
	}
	return false
}

// MarkOutput declares a node as workflow output (HML is_output). Outputs
// anchor the program slice used for pruning.
func (d *DAG) MarkOutput(n *Node) {
	for _, o := range d.outputs {
		if o == n {
			return
		}
	}
	d.outputs = append(d.outputs, n)
}

// Outputs returns the declared output nodes.
func (d *DAG) Outputs() []*Node { return d.outputs }

// Nodes returns all nodes in insertion order. The slice must not be
// modified.
func (d *DAG) Nodes() []*Node { return d.nodes }

// Node returns the node with the given name, or nil.
func (d *DAG) Node(name string) *Node { return d.byName[name] }

// Len returns the number of nodes.
func (d *DAG) Len() int { return len(d.nodes) }

// nodeHeap is a min-heap of nodes ordered by ID, the TopoSort ready
// queue. Heap operations make each ready insertion O(log n) instead of
// the O(n) sorted-slice shift the queue used to pay, turning TopoSort
// from O(n²) into O((V+E) log V) on wide DAGs.
type nodeHeap []*Node

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].ID < h[j].ID }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(*Node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[: len(old)-1 : cap(old)]
	return n
}

// TopoSort returns the nodes in a topological order (parents before
// children). Ties are broken by insertion order (node ID), making the
// result deterministic: among all ready nodes, the lowest ID comes first.
func (d *DAG) TopoSort() []*Node {
	// Fast path: when every edge runs from a lower to a higher ID,
	// insertion order is itself the answer — the heap-based Kahn below,
	// with its min-ID tie-break, provably emits exactly 0,1,2,… in that
	// case (induction: after popping 0..k-1, node k's parents are all
	// popped, and k is the minimum remaining ID). DSL-compiled workflows
	// always qualify, since operators must be declared before use, so the
	// planner's repeated sorts cost one O(E) scan instead of heap churn.
	ordered := true
scan:
	for _, n := range d.nodes {
		for _, c := range n.children {
			if c.ID < n.ID {
				ordered = false
				break scan
			}
		}
	}
	if ordered {
		out := make([]*Node, len(d.nodes))
		copy(out, d.nodes)
		return out
	}

	// Node IDs are dense (AddNode assigns them sequentially and nodes are
	// never removed), so plain slices replace maps here.
	indeg := make([]int, len(d.nodes))
	ready := make(nodeHeap, 0, len(d.nodes))
	for _, n := range d.nodes {
		indeg[n.ID] = len(n.parents)
		if len(n.parents) == 0 {
			ready = append(ready, n)
		}
	}
	heap.Init(&ready)
	out := make([]*Node, 0, len(d.nodes))
	for len(ready) > 0 {
		n := heap.Pop(&ready).(*Node)
		out = append(out, n)
		for _, c := range n.children {
			indeg[c.ID]--
			if indeg[c.ID] == 0 {
				heap.Push(&ready, c)
			}
		}
	}
	return out
}

// Ancestors returns the set of all (transitive) ancestors of n.
func Ancestors(n *Node) map[*Node]bool {
	anc := make(map[*Node]bool)
	var visit func(*Node)
	visit = func(m *Node) {
		for _, p := range m.parents {
			if !anc[p] {
				anc[p] = true
				visit(p)
			}
		}
	}
	visit(n)
	return anc
}

// Descendants returns the set of all (transitive) descendants of n.
func Descendants(n *Node) map[*Node]bool {
	desc := make(map[*Node]bool)
	var visit func(*Node)
	visit = func(m *Node) {
		for _, c := range m.children {
			if !desc[c] {
				desc[c] = true
				visit(c)
			}
		}
	}
	visit(n)
	return desc
}

// Slice computes the backward program slice from the output nodes
// (paper §5.4): the set of nodes that contribute to at least one output.
// If no outputs are declared, every node is live (nothing can be pruned
// safely). The result maps node → live.
func (d *DAG) Slice() map[*Node]bool {
	live := make(map[*Node]bool, len(d.nodes))
	if len(d.outputs) == 0 {
		for _, n := range d.nodes {
			live[n] = true
		}
		return live
	}
	var visit func(*Node)
	visit = func(n *Node) {
		if live[n] {
			return
		}
		live[n] = true
		for _, p := range n.parents {
			visit(p)
		}
	}
	for _, o := range d.outputs {
		visit(o)
	}
	return live
}

// ComputeSignatures computes chained equivalence signatures for every node
// in topological order. A node's chain signature is
// H(opSignature ‖ sorted parent chain signatures); per Definition 2 two
// nodes are equivalent iff their operator declarations and all ancestors
// match, which is exactly what the chained hash captures (up to hash
// collisions).
//
// Nondeterministic nodes get stable signatures like any other: an
// unchanged nondeterministic operator does not deprecate its descendants'
// materializations (the paper's MNIST workflow reuses L/I outputs on PPR
// iterations despite nondeterministic DPR, §6.5.2). What nondeterminism
// forbids is reusing the node's own output — it never has an equivalent
// materialization (Definition 3) — which the execution engine enforces by
// never materializing or loading such nodes.
func (d *DAG) ComputeSignatures() {
	// One digest and scratch buffer serve the whole pass: signature
	// computation runs on every iteration's planning path (a freshly
	// compiled DAG has no signatures), so per-node allocations here were
	// measurable on 1000-node workflows.
	h := sha256.New()
	var sum [sha256.Size]byte
	var buf []byte
	var sigs []string
	for _, n := range d.TopoSort() {
		h.Reset()
		buf = append(buf[:0], n.OpSignature...)
		buf = append(buf, 0)
		sigs = sigs[:0]
		for _, p := range n.parents {
			sigs = append(sigs, p.chainSig)
		}
		if len(sigs) > 1 {
			sort.Strings(sigs)
		}
		for _, s := range sigs {
			buf = append(buf, s...)
			buf = append(buf, 0)
		}
		h.Write(buf)
		h.Sum(sum[:0])
		n.chainSig = hex.EncodeToString(sum[:])
	}
	d.bySig = nil // signatures changed; rebuild the index on next use
}

// OriginalNodes compares this DAG against the previous iteration's DAG and
// returns the set of nodes in d that are original (Definition 2: having no
// equivalent node in prev). Both DAGs must have had ComputeSignatures
// called. A nil prev marks every node original (iteration 0).
func (d *DAG) OriginalNodes(prev *DAG) map[*Node]bool {
	orig := make(map[*Node]bool, len(d.nodes))
	if prev == nil {
		for _, n := range d.nodes {
			orig[n] = true
		}
		return orig
	}
	prevSigs := prev.SigIndex()
	for _, n := range d.nodes {
		if _, ok := prevSigs[n.chainSig]; !ok {
			orig[n] = true
		}
	}
	return orig
}

// CarryMetrics copies measured metrics from equivalent nodes of a previous
// iteration into this DAG (paper §5.2: statistics from past iterations are
// accurate for equivalent nodes because the exact same operator ran
// before). Nodes without an equivalent keep their zero metrics.
func (d *DAG) CarryMetrics(prev *DAG) {
	if prev == nil {
		return
	}
	bySig := prev.SigIndex()
	for _, n := range d.nodes {
		if p, ok := bySig[n.chainSig]; ok && p.Metrics.Known {
			n.Metrics = p.Metrics
		}
	}
}

// Validate checks structural invariants: unique names, acyclicity,
// edge symmetry (parent/child lists agree). It returns the first violation
// found.
func (d *DAG) Validate() error {
	seen := make(map[string]bool, len(d.nodes))
	for _, n := range d.nodes {
		if seen[n.Name] {
			return fmt.Errorf("core: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		for _, c := range n.children {
			if !hasNode(c.parents, n) {
				return fmt.Errorf("core: edge %q→%q missing reverse link", n.Name, c.Name)
			}
		}
		for _, p := range n.parents {
			if !hasNode(p.children, n) {
				return fmt.Errorf("core: edge %q→%q missing forward link", p.Name, n.Name)
			}
		}
	}
	if got := len(d.TopoSort()); got != len(d.nodes) {
		return fmt.Errorf("core: cycle detected (topo sort visited %d of %d nodes)", got, len(d.nodes))
	}
	return nil
}

func hasNode(s []*Node, n *Node) bool {
	for _, m := range s {
		if m == n {
			return true
		}
	}
	return false
}
