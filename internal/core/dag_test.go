package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// chain builds a linear DAG a0 → a1 → ... → a(n-1).
func chain(t testing.TB, n int) *DAG {
	t.Helper()
	d := NewDAG()
	var prev *Node
	for i := 0; i < n; i++ {
		node := d.MustAddNode(fmt.Sprintf("a%d", i), KindExtractor, DPR, fmt.Sprintf("op%d", i), true)
		if prev != nil {
			if err := d.AddEdge(prev, node); err != nil {
				t.Fatal(err)
			}
		}
		prev = node
	}
	return d
}

func TestAddNodeDuplicate(t *testing.T) {
	d := NewDAG()
	d.MustAddNode("x", KindSource, DPR, "s", true)
	if _, err := d.AddNode("x", KindSource, DPR, "s", true); err == nil {
		t.Fatal("expected error for duplicate node name")
	}
}

func TestAddNodeEmptyName(t *testing.T) {
	d := NewDAG()
	if _, err := d.AddNode("", KindSource, DPR, "s", true); err == nil {
		t.Fatal("expected error for empty node name")
	}
}

func TestAddEdgeRejectsCycle(t *testing.T) {
	d := chain(t, 3)
	if err := d.AddEdge(d.Node("a2"), d.Node("a0")); err == nil {
		t.Fatal("expected cycle rejection")
	}
}

func TestAddEdgeRejectsSelfEdge(t *testing.T) {
	d := chain(t, 1)
	if err := d.AddEdge(d.Node("a0"), d.Node("a0")); err == nil {
		t.Fatal("expected self-edge rejection")
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	d := chain(t, 2)
	if err := d.AddEdge(d.Node("a0"), d.Node("a1")); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Node("a0").Children()); got != 1 {
		t.Fatalf("duplicate edge created: %d children", got)
	}
}

func TestAddEdgeForeignNode(t *testing.T) {
	d1 := chain(t, 1)
	d2 := chain(t, 1)
	if err := d1.AddEdge(d1.Node("a0"), d2.Node("a0")); err == nil {
		t.Fatal("expected rejection of node from another DAG")
	}
}

func TestTopoSortOrder(t *testing.T) {
	d := NewDAG()
	a := d.MustAddNode("a", KindSource, DPR, "a", true)
	b := d.MustAddNode("b", KindExtractor, DPR, "b", true)
	c := d.MustAddNode("c", KindLearner, LI, "c", true)
	if err := d.AddEdge(a, c); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	order := d.TopoSort()
	pos := map[string]int{}
	for i, n := range order {
		pos[n.Name] = i
	}
	if pos["a"] > pos["c"] || pos["b"] > pos["c"] {
		t.Fatalf("topological order violated: %v", pos)
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	d := chain(t, 6)
	first := d.TopoSort()
	for i := 0; i < 5; i++ {
		again := d.TopoSort()
		for j := range first {
			if first[j] != again[j] {
				t.Fatal("TopoSort not deterministic")
			}
		}
	}
}

func TestSliceKeepsOnlyContributors(t *testing.T) {
	// Paper Fig. 3b: raceExt is pruned because it does not contribute to
	// the output.
	d := NewDAG()
	rows := d.MustAddNode("rows", KindScanner, DPR, "rows", true)
	race := d.MustAddNode("raceExt", KindExtractor, DPR, "race", true)
	edu := d.MustAddNode("eduExt", KindExtractor, DPR, "edu", true)
	income := d.MustAddNode("income", KindSynthesizer, DPR, "income", true)
	checked := d.MustAddNode("checked", KindReducer, PPR, "checked", true)
	for _, e := range [][2]*Node{{rows, race}, {rows, edu}, {edu, income}, {income, checked}} {
		if err := d.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	d.MarkOutput(checked)
	live := d.Slice()
	if live[race] {
		t.Fatal("raceExt should be pruned (does not reach output)")
	}
	for _, n := range []*Node{rows, edu, income, checked} {
		if !live[n] {
			t.Fatalf("%s should be live", n.Name)
		}
	}
}

func TestSliceNoOutputsKeepsAll(t *testing.T) {
	d := chain(t, 4)
	live := d.Slice()
	for _, n := range d.Nodes() {
		if !live[n] {
			t.Fatalf("node %s should be live when no outputs declared", n.Name)
		}
	}
}

func TestMarkOutputIdempotent(t *testing.T) {
	d := chain(t, 1)
	d.MarkOutput(d.Node("a0"))
	d.MarkOutput(d.Node("a0"))
	if len(d.Outputs()) != 1 {
		t.Fatalf("outputs = %d, want 1", len(d.Outputs()))
	}
}

func TestSignatureStability(t *testing.T) {
	d1 := chain(t, 5)
	d2 := chain(t, 5)
	d1.ComputeSignatures()
	d2.ComputeSignatures()
	for i := range d1.Nodes() {
		if d1.Nodes()[i].ChainSignature() != d2.Nodes()[i].ChainSignature() {
			t.Fatal("identical DAGs must have identical signatures")
		}
	}
}

func TestSignatureChangePropagates(t *testing.T) {
	d1 := chain(t, 5)
	d2 := chain(t, 5)
	d2.Node("a1").OpSignature = "op1-modified"
	d1.ComputeSignatures()
	d2.ComputeSignatures()
	// a0 unchanged; a1..a4 all change (ancestor chain).
	if d1.Node("a0").ChainSignature() != d2.Node("a0").ChainSignature() {
		t.Fatal("a0 should be unaffected")
	}
	for i := 1; i < 5; i++ {
		name := fmt.Sprintf("a%d", i)
		if d1.Node(name).ChainSignature() == d2.Node(name).ChainSignature() {
			t.Fatalf("%s should change when ancestor a1 changes", name)
		}
	}
}

func TestNondeterministicNodeSignatureStable(t *testing.T) {
	// An unchanged nondeterministic operator keeps a stable signature so
	// that its descendants' materializations stay reusable (the paper's
	// MNIST workflow reuses L/I outputs on PPR iterations, §6.5.2). The
	// engine separately refuses to materialize or load the node itself.
	d1 := NewDAG()
	d1.MustAddNode("rff", KindExtractor, DPR, "rff", false)
	d2 := NewDAG()
	d2.MustAddNode("rff", KindExtractor, DPR, "rff", false)
	d1.ComputeSignatures()
	d2.ComputeSignatures()
	if d1.Node("rff").ChainSignature() != d2.Node("rff").ChainSignature() {
		t.Fatal("unchanged nondeterministic node must keep a stable signature")
	}
	if d1.Node("rff").Deterministic {
		t.Fatal("node should be flagged nondeterministic")
	}
}

func TestOriginalNodesIterationZero(t *testing.T) {
	d := chain(t, 3)
	d.ComputeSignatures()
	orig := d.OriginalNodes(nil)
	if len(orig) != 3 {
		t.Fatalf("all nodes original at iteration 0, got %d of 3", len(orig))
	}
}

func TestOriginalNodesDetectsChange(t *testing.T) {
	prev := chain(t, 4)
	cur := chain(t, 4)
	cur.Node("a2").OpSignature = "changed"
	prev.ComputeSignatures()
	cur.ComputeSignatures()
	orig := cur.OriginalNodes(prev)
	if orig[cur.Node("a0")] || orig[cur.Node("a1")] {
		t.Fatal("unchanged prefix marked original")
	}
	if !orig[cur.Node("a2")] || !orig[cur.Node("a3")] {
		t.Fatal("changed node and descendant not marked original")
	}
}

func TestCarryMetrics(t *testing.T) {
	prev := chain(t, 3)
	cur := chain(t, 3)
	cur.Node("a2").OpSignature = "changed"
	prev.ComputeSignatures()
	cur.ComputeSignatures()
	prev.Node("a0").Metrics = Metrics{Compute: time.Second, Load: time.Millisecond, Size: 42, Known: true}
	prev.Node("a2").Metrics = Metrics{Compute: time.Minute, Known: true}
	cur.CarryMetrics(prev)
	if got := cur.Node("a0").Metrics; !got.Known || got.Compute != time.Second || got.Size != 42 {
		t.Fatalf("metrics not carried for equivalent node: %+v", got)
	}
	if cur.Node("a2").Metrics.Known {
		t.Fatal("metrics carried for non-equivalent node")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	d := chain(t, 4)
	anc := Ancestors(d.Node("a3"))
	if len(anc) != 3 {
		t.Fatalf("ancestors of a3 = %d, want 3", len(anc))
	}
	desc := Descendants(d.Node("a0"))
	if len(desc) != 3 {
		t.Fatalf("descendants of a0 = %d, want 3", len(desc))
	}
}

func TestValidateDetectsOK(t *testing.T) {
	d := chain(t, 5)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKindAndComponentStrings(t *testing.T) {
	if KindLearner.String() != "Learner" {
		t.Fatalf("Kind string = %q", KindLearner.String())
	}
	if LI.String() != "L/I" {
		t.Fatalf("Component string = %q", LI.String())
	}
	if StatePrune.String() != "Sp" {
		t.Fatalf("State string = %q", StatePrune.String())
	}
	if Kind(99).String() == "" || Component(99).String() == "" || State(99).String() == "" {
		t.Fatal("out-of-range enums must still stringify")
	}
}

// randomDAG builds a random DAG with n nodes where edges only go from lower
// to higher insertion index.
func randomDAG(rng *rand.Rand, n int) *DAG {
	d := NewDAG()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = d.MustAddNode(fmt.Sprintf("n%d", i), KindExtractor, DPR, fmt.Sprintf("op%d", i), true)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				if err := d.AddEdge(nodes[i], nodes[j]); err != nil {
					panic(err)
				}
			}
		}
	}
	return d
}

// TestQuickTopoSortIsValid: on random DAGs, every edge goes forward in the
// topological order, and every node appears exactly once.
func TestQuickTopoSortIsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDAG(rng, 2+rng.Intn(12))
		order := d.TopoSort()
		if len(order) != d.Len() {
			return false
		}
		pos := make(map[*Node]int)
		for i, n := range order {
			pos[n] = i
		}
		for _, n := range d.Nodes() {
			for _, c := range n.Children() {
				if pos[n] >= pos[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSignatureSensitivity: modifying a random node's operator
// signature changes the chain signature of exactly that node and its
// descendants.
func TestQuickSignatureSensitivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		structSeed := rng.Int63()
		d1 := randomDAG(rand.New(rand.NewSource(structSeed)), n)
		d2 := randomDAG(rand.New(rand.NewSource(structSeed)), n)
		victim := rng.Intn(n)
		d2.Nodes()[victim].OpSignature += "-x"
		d1.ComputeSignatures()
		d2.ComputeSignatures()
		changed := Descendants(d1.Nodes()[victim])
		changed[d1.Nodes()[victim]] = true
		for i := 0; i < n; i++ {
			same := d1.Nodes()[i].ChainSignature() == d2.Nodes()[i].ChainSignature()
			if changed[d1.Nodes()[i]] == same {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickValidateRandomDAGs: randomly generated DAGs always validate.
func TestQuickValidateRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDAG(rng, 1+rng.Intn(15))
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
