package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// layeredDAG builds a DAG of `layers` layers with `width` nodes each;
// every node gets 1-3 random parents from the previous layer, giving the
// heap-based TopoSort ready queue realistic churn.
func layeredDAG(layers, width int, seed int64) *DAG {
	rng := rand.New(rand.NewSource(seed))
	d := NewDAG()
	prev := make([]*Node, 0, width)
	for l := 0; l < layers; l++ {
		cur := make([]*Node, 0, width)
		for w := 0; w < width; w++ {
			n := d.MustAddNode(fmt.Sprintf("n%d_%d", l, w), KindExtractor, DPR, "v1", true)
			if l > 0 {
				for p := 0; p < 1+rng.Intn(3); p++ {
					if err := d.AddEdge(prev[rng.Intn(len(prev))], n); err != nil {
						panic(err)
					}
				}
			}
			cur = append(cur, n)
		}
		prev = cur
	}
	d.MarkOutput(prev[len(prev)-1])
	return d
}

// naiveTopoSort is the reference Kahn's algorithm with an O(n) sorted
// insertion — the behavior the heap-based TopoSort must reproduce.
func naiveTopoSort(d *DAG) []*Node {
	indeg := make(map[*Node]int, d.Len())
	var ready []*Node
	for _, n := range d.Nodes() {
		indeg[n] = len(n.Parents())
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	out := make([]*Node, 0, d.Len())
	for len(ready) > 0 {
		// Pick the minimum ID among ready (the deterministic tie-break).
		min := 0
		for i := range ready {
			if ready[i].ID < ready[min].ID {
				min = i
			}
		}
		n := ready[min]
		ready = append(ready[:min], ready[min+1:]...)
		out = append(out, n)
		for _, c := range n.Children() {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	return out
}

func TestTopoSortMatchesReferenceOrder(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		d := layeredDAG(8, 12, seed)
		got := d.TopoSort()
		want := naiveTopoSort(d)
		if len(got) != len(want) {
			t.Fatalf("seed %d: length %d != %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: position %d: %s != %s (ID tie-break changed)",
					seed, i, got[i].Name, want[i].Name)
			}
		}
	}
}

// BenchmarkTopoSort measures sorting a ~5k-node DAG — the production-scale
// shape the heap-based ready queue targets (the previous sorted-slice
// insertion was O(n²) on wide DAGs).
func BenchmarkTopoSort(b *testing.B) {
	d := layeredDAG(50, 100, 1) // 5000 nodes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := d.TopoSort(); len(got) != d.Len() {
			b.Fatalf("topo sort visited %d of %d", len(got), d.Len())
		}
	}
}

// BenchmarkTopoSortWide is the worst case for the old sorted-slice queue:
// one root fanning out to ~5k ready nodes at once.
func BenchmarkTopoSortWide(b *testing.B) {
	d := NewDAG()
	root := d.MustAddNode("root", KindSource, DPR, "v1", true)
	for i := 0; i < 5000; i++ {
		n := d.MustAddNode(fmt.Sprintf("leaf%d", i), KindExtractor, DPR, "v1", true)
		if err := d.AddEdge(root, n); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := d.TopoSort(); len(got) != d.Len() {
			b.Fatalf("topo sort visited %d of %d", len(got), d.Len())
		}
	}
}
