package core

import (
	"encoding/json"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	d := chain(t, 4)
	d.ComputeSignatures()
	d.Node("a1").Metrics = Metrics{Compute: 2 * time.Second, Size: 99, Known: true}

	snap := d.Snapshot()
	if len(snap.Nodes) != 4 {
		t.Fatalf("snapshot nodes = %d", len(snap.Nodes))
	}

	// JSON round trip (what the session persists).
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	ghost := FromSnapshot(back)
	// The ghost must serve as prev for change tracking: an identical DAG
	// has no original nodes against it.
	d2 := chain(t, 4)
	d2.ComputeSignatures()
	orig := d2.OriginalNodes(ghost)
	if len(orig) != 0 {
		t.Fatalf("identical DAG has %d original nodes vs ghost", len(orig))
	}
	// And metrics carry over.
	d2.CarryMetrics(ghost)
	if got := d2.Node("a1").Metrics; !got.Known || got.Compute != 2*time.Second || got.Size != 99 {
		t.Fatalf("metrics not carried via ghost: %+v", got)
	}
}

func TestFromSnapshotDetectsChanges(t *testing.T) {
	d := chain(t, 3)
	d.ComputeSignatures()
	ghost := FromSnapshot(d.Snapshot())

	changed := chain(t, 3)
	changed.Node("a1").OpSignature = "a1-modified"
	changed.ComputeSignatures()
	orig := changed.OriginalNodes(ghost)
	if orig[changed.Node("a0")] {
		t.Fatal("unchanged prefix original")
	}
	if !orig[changed.Node("a1")] || !orig[changed.Node("a2")] {
		t.Fatal("change and descendant not original vs ghost")
	}
}

func TestFromSnapshotCorruptDuplicatesKeepFirst(t *testing.T) {
	s := Snapshot{Nodes: []NodeSnapshot{
		{Name: "x", ChainSignature: "sig1"},
		{Name: "x", ChainSignature: "sig2"},
	}}
	g := FromSnapshot(s)
	if g.Len() != 1 {
		t.Fatalf("ghost nodes = %d, want 1", g.Len())
	}
	if g.Node("x").ChainSignature() != "sig1" {
		t.Fatal("first snapshot entry not kept")
	}
}
