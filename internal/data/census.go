// Package data provides HELIX-Go's dataset substrate: a CSV scanner and
// synthetic generators for the four evaluation workloads (paper §6.2).
// Real datasets (UCI Census Income, PubMed articles, news corpora, MNIST)
// are unavailable offline, so each generator produces a synthetic
// equivalent with the same schema and the statistical structure the
// workflow's operators exercise; see DESIGN.md §4 for the substitution
// argument.
package data

import (
	"fmt"
	"math/rand"
	"strings"
)

// CensusColumns is the attribute schema of the Kohavi census-income
// dataset [35]: 14 demographic attributes plus the binary target.
// The note column stands in for the wide unused payload of real census
// records (free-text enumeration remarks): cheap to generate, large on
// disk. Its presence gives the raw scan output the paper's census
// profile — a big DPR intermediate that is faster to recompute than to
// load, which HELIX OPT therefore declines to materialize (§6.5.2:
// "HELIX OPT avoided materializing the large DPR output").
var CensusColumns = []string{
	"age", "workclass", "fnlwgt", "education", "education_num",
	"marital_status", "occupation", "relationship", "race", "sex",
	"capital_gain", "capital_loss", "hours_per_week", "native_country",
	"note", "target",
}

// noteTemplates are assembled into the note column's filler text.
var noteTemplates = []string{
	"enumerator recorded household response during scheduled visit; respondent confirmed details of employment and residence status without corrections",
	"record transcribed from long-form questionnaire; income fields verified against prior-year filing and adjusted for reporting period boundaries",
	"follow-up interview completed by phone; occupation classification reviewed by supervisor and matched against standard industry coding tables",
	"response collected during initial canvass; household composition cross-checked with administrative rolls and flagged consistent by review",
}

var (
	workclasses   = []string{"Private", "Self-emp", "Federal-gov", "Local-gov", "State-gov", "Without-pay"}
	educations    = []string{"HS-grad", "Some-college", "Bachelors", "Masters", "Doctorate", "11th", "Assoc"}
	maritals      = []string{"Married", "Never-married", "Divorced", "Widowed", "Separated"}
	occupations   = []string{"Tech-support", "Craft-repair", "Sales", "Exec-managerial", "Prof-specialty", "Handlers-cleaners", "Machine-op", "Adm-clerical", "Farming-fishing", "Transport"}
	relationships = []string{"Husband", "Wife", "Own-child", "Not-in-family", "Unmarried"}
	races         = []string{"White", "Black", "Asian-Pac", "Amer-Indian", "Other"}
	sexes         = []string{"Male", "Female"}
	countries     = []string{"United-States", "Mexico", "Philippines", "Germany", "Canada", "India"}
)

// CensusConfig parameterizes the census generator.
type CensusConfig struct {
	// TrainRows and TestRows are the split sizes.
	TrainRows, TestRows int
	// Seed makes generation deterministic.
	Seed int64
	// Replicas duplicates the dataset Replicas times — the paper's
	// "Census 10x is obtained by replicating Census ten times in order to
	// preserve the learning objective" (Figure 7a). 0 or 1 means no
	// replication.
	Replicas int
}

// GenerateCensusCSV renders the train and test splits as CSV strings with
// a header row, mimicking the two CSV files of Figure 3a line 3.
func GenerateCensusCSV(cfg CensusConfig) (train, test string) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	reps := cfg.Replicas
	if reps < 1 {
		reps = 1
	}
	gen := func(rows int) string {
		var b strings.Builder
		b.WriteString(strings.Join(CensusColumns, ","))
		b.WriteByte('\n')
		lines := make([]string, rows)
		for i := 0; i < rows; i++ {
			lines[i] = censusRow(rng)
		}
		for r := 0; r < reps; r++ {
			for _, l := range lines {
				b.WriteString(l)
				b.WriteByte('\n')
			}
		}
		return b.String()
	}
	return gen(cfg.TrainRows), gen(cfg.TestRows)
}

// censusRow draws one row whose income label correlates with education,
// age, hours, capital gains, marital status and occupation, so that a
// linear model genuinely has signal to learn.
func censusRow(rng *rand.Rand) string {
	age := 17 + rng.Intn(63)
	wc := pick(rng, workclasses)
	fnlwgt := 10000 + rng.Intn(700000)
	edu := pick(rng, educations)
	eduNum := map[string]int{"11th": 7, "HS-grad": 9, "Some-college": 10, "Assoc": 12, "Bachelors": 13, "Masters": 14, "Doctorate": 16}[edu]
	marital := pick(rng, maritals)
	occ := pick(rng, occupations)
	rel := pick(rng, relationships)
	race := pick(rng, races)
	sex := pick(rng, sexes)
	gain := 0
	if rng.Float64() < 0.08 {
		gain = rng.Intn(20000)
	}
	loss := 0
	if rng.Float64() < 0.05 {
		loss = rng.Intn(3000)
	}
	hours := 20 + rng.Intn(60)

	// Latent income score: the signal a model can recover.
	score := -4.0 +
		0.35*float64(eduNum) +
		0.02*float64(age) +
		0.03*float64(hours) +
		0.0002*float64(gain)
	if marital == "Married" {
		score += 1.0
	}
	if occ == "Exec-managerial" || occ == "Prof-specialty" {
		score += 0.8
	}
	score += rng.NormFloat64() * 1.2
	target := "<=50K"
	if score > 2.0 {
		target = ">50K"
	}

	return fmt.Sprintf("%d,%s,%d,%s,%d,%s,%s,%s,%s,%s,%d,%d,%d,%s,%s,%s",
		age, wc, fnlwgt, edu, eduNum, marital, occ, rel, race, sex,
		gain, loss, hours, pick(rng, countries),
		noteTemplates[rng.Intn(len(noteTemplates))], target)
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }
