package data

import (
	"fmt"
	"math/rand"
	"strings"
)

// IEConfig parameterizes the news-corpus generator for the information
// extraction workflow (paper §6.2): news articles with planted spouse-pair
// mentions plus a knowledge base of known spouse pairs for distant
// supervision, mirroring DeepDive's spouse example [19].
type IEConfig struct {
	Articles int
	// SentencesPerArticle controls document length.
	SentencesPerArticle int
	// People is the size of the person-name pool.
	People int
	// SpousePairs is the number of true married pairs planted in the KB.
	SpousePairs int
	Seed        int64
}

// SpouseKB is the knowledge base of known spouse pairs. Keys are
// canonical "a|b" with a < b lexicographically.
type SpouseKB struct {
	Pairs map[string]bool
}

// PairKey canonicalizes an unordered person pair.
func PairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Known reports whether (a, b) is a known spouse pair.
func (kb *SpouseKB) Known(a, b string) bool { return kb.Pairs[PairKey(a, b)] }

var firstNames = []string{
	"alice", "bob", "carol", "david", "emma", "frank", "grace", "henry",
	"irene", "jack", "karen", "leo", "maria", "nathan", "olivia", "peter",
	"quinn", "rachel", "sam", "tina", "victor", "wendy",
}

var lastNames = []string{
	"adams", "baker", "clark", "davis", "evans", "ford", "green", "hill",
	"irving", "jones", "king", "lewis", "moore", "nolan", "owens", "price",
}

// marriage-indicating connective phrases (positive evidence).
var marriagePhrases = []string{
	"married", "wed", "tied the knot with", "exchanged vows with",
	"celebrated their wedding with",
}

// non-marriage connective phrases (negative evidence).
var otherPhrases = []string{
	"met", "worked with", "debated", "interviewed", "sued",
	"campaigned against", "negotiated with", "dined with",
}

var newsFiller = []string{
	"yesterday", "in", "the", "city", "officials", "said", "report",
	"during", "a", "ceremony", "event", "company", "announced", "public",
	"attended", "by", "many", "guests", "local", "community",
}

// GenerateIE produces the news corpus and spouse knowledge base. Each
// article contains zero or more person-pair sentences; pairs in the KB
// predominantly co-occur with marriage phrases, so the extraction task is
// learnable (one-to-many input→example mapping, per Table 2).
func GenerateIE(cfg IEConfig) ([]Article, *SpouseKB) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	people := make([]string, cfg.People)
	for i := range people {
		people[i] = firstNames[i%len(firstNames)] + "_" + lastNames[(i/len(firstNames))%len(lastNames)]
	}
	kb := &SpouseKB{Pairs: make(map[string]bool, cfg.SpousePairs)}
	for len(kb.Pairs) < cfg.SpousePairs && cfg.People >= 2 {
		a := people[rng.Intn(len(people))]
		b := people[rng.Intn(len(people))]
		if a != b {
			kb.Pairs[PairKey(a, b)] = true
		}
	}

	sentences := cfg.SentencesPerArticle
	if sentences < 1 {
		sentences = 6
	}
	kbPairs := make([][2]string, 0, len(kb.Pairs))
	for k := range kb.Pairs {
		parts := strings.SplitN(k, "|", 2)
		kbPairs = append(kbPairs, [2]string{parts[0], parts[1]})
	}

	articles := make([]Article, cfg.Articles)
	for a := range articles {
		var b strings.Builder
		for s := 0; s < sentences; s++ {
			switch r := rng.Float64(); {
			case r < 0.3 && len(kbPairs) > 0:
				// Positive mention: known spouses + marriage phrase (90%).
				p := kbPairs[rng.Intn(len(kbPairs))]
				phrase := marriagePhrases[rng.Intn(len(marriagePhrases))]
				if rng.Float64() < 0.1 {
					phrase = otherPhrases[rng.Intn(len(otherPhrases))]
				}
				writeSentence(&b, rng, p[0], phrase, p[1])
			case r < 0.6 && cfg.People >= 2:
				// Negative mention: random pair + non-marriage phrase (90%).
				x := people[rng.Intn(len(people))]
				y := people[rng.Intn(len(people))]
				if x == y {
					continue
				}
				phrase := otherPhrases[rng.Intn(len(otherPhrases))]
				if rng.Float64() < 0.1 {
					phrase = marriagePhrases[rng.Intn(len(marriagePhrases))]
				}
				writeSentence(&b, rng, x, phrase, y)
			default:
				// Filler sentence with no person pair.
				n := 5 + rng.Intn(8)
				for w := 0; w < n; w++ {
					if w > 0 {
						b.WriteByte(' ')
					}
					b.WriteString(newsFiller[rng.Intn(len(newsFiller))])
				}
				b.WriteString(". ")
			}
		}
		articles[a] = Article{ID: fmt.Sprintf("news%05d", a), Text: b.String()}
	}
	return articles, kb
}

func writeSentence(b *strings.Builder, rng *rand.Rand, subj, phrase, obj string) {
	lead := newsFiller[rng.Intn(len(newsFiller))]
	b.WriteString(lead)
	b.WriteByte(' ')
	b.WriteString(subj)
	b.WriteByte(' ')
	b.WriteString(phrase)
	b.WriteByte(' ')
	b.WriteString(obj)
	b.WriteByte(' ')
	b.WriteString(newsFiller[rng.Intn(len(newsFiller))])
	b.WriteString(". ")
}

// IsPersonToken reports whether a token came from the person-name pool
// (first_last form). Used by the IE workflow's candidate extractor.
func IsPersonToken(tok string) bool {
	i := strings.IndexByte(tok, '_')
	if i <= 0 || i == len(tok)-1 {
		return false
	}
	first, last := tok[:i], tok[i+1:]
	for _, f := range firstNames {
		if f == first {
			for _, l := range lastNames {
				if l == last {
					return true
				}
			}
			return false
		}
	}
	return false
}
