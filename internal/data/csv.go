package data

import (
	"fmt"
	"strings"
)

// Row is one parsed CSV record: column name → raw string value. It is the
// record type r of the paper's DPR formalism (§3.1) for structured inputs.
type Row map[string]string

// ParseCSV parses a CSV string with a header row into Rows using the given
// column names; if columns is nil the header names are used. It implements
// the paper's CSVScanner (Figure 3a line 4) for the simple quote-free CSV
// the census workload uses.
func ParseCSV(text string, columns []string) ([]Row, error) {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		return nil, fmt.Errorf("data: empty CSV input")
	}
	header := strings.Split(lines[0], ",")
	if columns == nil {
		columns = header
	}
	if len(columns) != len(header) {
		return nil, fmt.Errorf("data: %d column names for %d header fields", len(columns), len(header))
	}
	rows := make([]Row, 0, len(lines)-1)
	for i, line := range lines[1:] {
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != len(columns) {
			return nil, fmt.Errorf("data: line %d has %d fields, want %d", i+2, len(fields), len(columns))
		}
		r := make(Row, len(columns))
		for j, c := range columns {
			r[c] = fields[j]
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// RowsApproxBytes estimates the in-memory footprint of parsed rows for
// materialization decisions.
func RowsApproxBytes(rows []Row) int64 {
	var b int64 = 16
	for _, r := range rows {
		for k, v := range r {
			b += int64(len(k)+len(v)) + 32
		}
	}
	return b
}
