package data

import (
	"fmt"
	"math/rand"
	"strings"
)

// Article is one document of a text corpus.
type Article struct {
	ID   string
	Text string
}

// GenomicsConfig parameterizes the scientific-literature generator for the
// genomics workflow (paper Example 1): articles mentioning genes and
// diseases, plus a gene knowledge base to join against.
type GenomicsConfig struct {
	Articles int
	// SentencesPerArticle controls document length.
	SentencesPerArticle int
	// Genes is the knowledge-base size.
	Genes int
	// Functions is the number of latent functional groups; genes in the
	// same group co-occur with the same context words, so embeddings can
	// recover the groups — the structure the workflow's clustering step
	// is meant to discover.
	Functions int
	Seed      int64
}

// GeneKB is the gene knowledge base: names grouped by latent function.
type GeneKB struct {
	// Genes maps gene name → latent functional group.
	Genes map[string]int
	// Groups is the number of functional groups.
	Groups int
}

// Names returns all gene names (unordered).
func (kb *GeneKB) Names() []string {
	out := make([]string, 0, len(kb.Genes))
	for g := range kb.Genes {
		out = append(out, g)
	}
	return out
}

// scientific filler vocabulary shared across groups.
var fillerWords = []string{
	"we", "observed", "that", "the", "expression", "of", "increased",
	"significantly", "in", "samples", "analysis", "showed", "results",
	"suggest", "pathway", "regulation", "during", "treatment", "study",
	"patients", "levels", "compared", "with", "control", "group",
}

// context words distinctive to each functional group.
var groupContexts = [][]string{
	{"apoptosis", "cell", "death", "caspase", "mitochondrial"},
	{"immune", "response", "cytokine", "inflammation", "antibody"},
	{"metabolism", "glucose", "insulin", "lipid", "energy"},
	{"transcription", "promoter", "binding", "chromatin", "histone"},
	{"repair", "damage", "replication", "genome", "stability"},
	{"signaling", "kinase", "receptor", "phosphorylation", "cascade"},
}

// GenerateGenomics produces a synthetic literature corpus and gene KB.
// Each article focuses on one functional group: it mentions that group's
// genes amid the group's characteristic context words, so that word2vec
// embeddings of gene names cluster by group.
func GenerateGenomics(cfg GenomicsConfig) ([]Article, *GeneKB) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	groups := cfg.Functions
	if groups < 1 {
		groups = 1
	}
	if groups > len(groupContexts) {
		groups = len(groupContexts)
	}
	kb := &GeneKB{Genes: make(map[string]int, cfg.Genes), Groups: groups}
	geneNames := make([][]string, groups)
	for i := 0; i < cfg.Genes; i++ {
		g := i % groups
		name := fmt.Sprintf("gene%03d", i)
		kb.Genes[name] = g
		geneNames[g] = append(geneNames[g], name)
	}

	sentences := cfg.SentencesPerArticle
	if sentences < 1 {
		sentences = 5
	}
	articles := make([]Article, cfg.Articles)
	for a := range articles {
		g := a % groups
		var b strings.Builder
		for s := 0; s < sentences; s++ {
			n := 6 + rng.Intn(8)
			for w := 0; w < n; w++ {
				if w > 0 {
					b.WriteByte(' ')
				}
				switch r := rng.Float64(); {
				case r < 0.25 && len(geneNames[g]) > 0:
					b.WriteString(geneNames[g][rng.Intn(len(geneNames[g]))])
				case r < 0.55:
					ctx := groupContexts[g]
					b.WriteString(ctx[rng.Intn(len(ctx))])
				default:
					b.WriteString(fillerWords[rng.Intn(len(fillerWords))])
				}
			}
			b.WriteString(". ")
		}
		articles[a] = Article{ID: fmt.Sprintf("pmid%05d", a), Text: b.String()}
	}
	return articles, kb
}
