package data

import (
	"math/rand"
)

// Image is one grayscale digit image (flattened row-major pixels in
// [0,1]) with its class label — the MNIST record type (paper §6.2).
type Image struct {
	Pixels []float64
	Label  int
	Train  bool
}

// DigitsConfig parameterizes the synthetic digit generator.
type DigitsConfig struct {
	TrainImages, TestImages int
	// Side is the image side length; 0 selects 16 (256 pixels).
	Side int
	// Noise is the per-pixel Gaussian noise sigma; 0 selects 0.15.
	Noise float64
	Seed  int64
}

// digitSegments encodes each digit 0-9 as lit segments of a 7-segment
// display: top, top-left, top-right, middle, bottom-left, bottom-right,
// bottom. Rendering these at Side×Side yields images that are linearly
// separable yet non-trivial under noise.
var digitSegments = [10][7]bool{
	{true, true, true, false, true, true, true},     // 0
	{false, false, true, false, false, true, false}, // 1
	{true, false, true, true, true, false, true},    // 2
	{true, false, true, true, false, true, true},    // 3
	{false, true, true, true, false, true, false},   // 4
	{true, true, false, true, false, true, true},    // 5
	{true, true, false, true, true, true, true},     // 6
	{true, false, true, false, false, true, false},  // 7
	{true, true, true, true, true, true, true},      // 8
	{true, true, true, true, false, true, true},     // 9
}

// GenerateDigits produces train and test images of noisy seven-segment
// digits, with small random translations so classes overlap realistically.
func GenerateDigits(cfg DigitsConfig) []Image {
	rng := rand.New(rand.NewSource(cfg.Seed))
	side := cfg.Side
	if side <= 0 {
		side = 16
	}
	noise := cfg.Noise
	if noise <= 0 {
		noise = 0.15
	}
	total := cfg.TrainImages + cfg.TestImages
	images := make([]Image, total)
	for i := range images {
		label := i % 10
		img := renderDigit(label, side, rng, noise)
		img.Train = i < cfg.TrainImages
		images[i] = img
	}
	return images
}

func renderDigit(label, side int, rng *rand.Rand, noise float64) Image {
	px := make([]float64, side*side)
	set := func(r, c int, v float64) {
		if r >= 0 && r < side && c >= 0 && c < side {
			px[r*side+c] += v
		}
	}
	// Jittered bounding box for the glyph.
	dr, dc := rng.Intn(3)-1, rng.Intn(3)-1
	top, bottom := 2+dr, side-3+dr
	left, right := 3+dc, side-4+dc
	mid := (top + bottom) / 2
	seg := digitSegments[label]
	drawH := func(row int) {
		for c := left; c <= right; c++ {
			set(row, c, 1)
		}
	}
	drawV := func(col, r0, r1 int) {
		for r := r0; r <= r1; r++ {
			set(r, col, 1)
		}
	}
	if seg[0] {
		drawH(top)
	}
	if seg[1] {
		drawV(left, top, mid)
	}
	if seg[2] {
		drawV(right, top, mid)
	}
	if seg[3] {
		drawH(mid)
	}
	if seg[4] {
		drawV(left, mid, bottom)
	}
	if seg[5] {
		drawV(right, mid, bottom)
	}
	if seg[6] {
		drawH(bottom)
	}
	for i := range px {
		px[i] += rng.NormFloat64() * noise
		if px[i] < 0 {
			px[i] = 0
		}
		if px[i] > 1 {
			px[i] = 1
		}
	}
	return Image{Pixels: px, Label: label}
}
