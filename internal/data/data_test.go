package data

import (
	"strings"
	"testing"
	"testing/quick"

	"helix/internal/nlp"
)

func TestGenerateCensusCSVShape(t *testing.T) {
	train, test := GenerateCensusCSV(CensusConfig{TrainRows: 100, TestRows: 20, Seed: 1})
	rows, err := ParseCSV(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("train rows = %d", len(rows))
	}
	testRows, err := ParseCSV(test, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(testRows) != 20 {
		t.Fatalf("test rows = %d", len(testRows))
	}
	for _, c := range CensusColumns {
		if _, ok := rows[0][c]; !ok {
			t.Fatalf("missing column %q", c)
		}
	}
}

func TestGenerateCensusDeterministic(t *testing.T) {
	a, _ := GenerateCensusCSV(CensusConfig{TrainRows: 50, TestRows: 5, Seed: 42})
	b, _ := GenerateCensusCSV(CensusConfig{TrainRows: 50, TestRows: 5, Seed: 42})
	if a != b {
		t.Fatal("same seed produced different census data")
	}
	c, _ := GenerateCensusCSV(CensusConfig{TrainRows: 50, TestRows: 5, Seed: 43})
	if a == c {
		t.Fatal("different seeds produced identical census data")
	}
}

func TestGenerateCensusReplication(t *testing.T) {
	one, _ := GenerateCensusCSV(CensusConfig{TrainRows: 30, TestRows: 1, Seed: 7})
	ten, _ := GenerateCensusCSV(CensusConfig{TrainRows: 30, TestRows: 1, Seed: 7, Replicas: 10})
	r1, _ := ParseCSV(one, nil)
	r10, _ := ParseCSV(ten, nil)
	if len(r10) != 10*len(r1) {
		t.Fatalf("10x rows = %d, want %d", len(r10), 10*len(r1))
	}
	// Replication preserves the learning objective: same distinct rows.
	if r10[0]["age"] != r1[0]["age"] {
		t.Fatal("replication changed row content")
	}
}

func TestCensusLabelHasSignal(t *testing.T) {
	train, _ := GenerateCensusCSV(CensusConfig{TrainRows: 2000, TestRows: 1, Seed: 3})
	rows, _ := ParseCSV(train, nil)
	// P(>50K | Doctorate) should exceed P(>50K | 11th).
	rate := func(edu string) float64 {
		var n, pos int
		for _, r := range rows {
			if r["education"] == edu {
				n++
				if r["target"] == ">50K" {
					pos++
				}
			}
		}
		if n == 0 {
			return 0
		}
		return float64(pos) / float64(n)
	}
	if rate("Doctorate") <= rate("11th") {
		t.Fatalf("education signal missing: Doctorate %.2f ≤ 11th %.2f", rate("Doctorate"), rate("11th"))
	}
	var pos int
	for _, r := range rows {
		if r["target"] == ">50K" {
			pos++
		}
	}
	frac := float64(pos) / float64(len(rows))
	if frac < 0.05 || frac > 0.8 {
		t.Fatalf("positive rate %.2f outside sane range", frac)
	}
}

func TestParseCSVErrors(t *testing.T) {
	if _, err := ParseCSV("", nil); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := ParseCSV("a,b\n1,2,3\n", nil); err == nil {
		t.Fatal("expected error on field count mismatch")
	}
	if _, err := ParseCSV("a,b\n1,2\n", []string{"only_one"}); err == nil {
		t.Fatal("expected error on column name count mismatch")
	}
}

func TestParseCSVSkipsBlankLines(t *testing.T) {
	rows, err := ParseCSV("a,b\n1,2\n\n3,4\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1]["b"] != "4" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestGenerateGenomicsStructure(t *testing.T) {
	articles, kb := GenerateGenomics(GenomicsConfig{
		Articles: 20, SentencesPerArticle: 4, Genes: 30, Functions: 3, Seed: 1,
	})
	if len(articles) != 20 {
		t.Fatalf("articles = %d", len(articles))
	}
	if len(kb.Genes) != 30 || kb.Groups != 3 {
		t.Fatalf("kb = %d genes, %d groups", len(kb.Genes), kb.Groups)
	}
	// Every group is populated.
	seen := make(map[int]bool)
	for _, g := range kb.Genes {
		seen[g] = true
	}
	if len(seen) != 3 {
		t.Fatalf("groups populated = %d", len(seen))
	}
	// Articles actually mention KB genes.
	var mentions int
	for _, a := range articles {
		for _, tok := range nlp.Tokenize(a.Text) {
			if _, ok := kb.Genes[tok]; ok {
				mentions++
			}
		}
	}
	if mentions == 0 {
		t.Fatal("no gene mentions in corpus")
	}
}

func TestGenerateGenomicsGroupContextCorrelation(t *testing.T) {
	articles, kb := GenerateGenomics(GenomicsConfig{
		Articles: 30, SentencesPerArticle: 6, Genes: 12, Functions: 2, Seed: 2,
	})
	// Group-0 articles (even index) should contain far more group-0 gene
	// mentions than group-1 gene mentions.
	var sameGroup, crossGroup int
	for i, a := range articles {
		g := i % 2
		for _, tok := range nlp.Tokenize(a.Text) {
			if gg, ok := kb.Genes[tok]; ok {
				if gg == g {
					sameGroup++
				} else {
					crossGroup++
				}
			}
		}
	}
	if sameGroup <= crossGroup*5 {
		t.Fatalf("weak group structure: same=%d cross=%d", sameGroup, crossGroup)
	}
}

func TestGenerateIEStructure(t *testing.T) {
	articles, kb := GenerateIE(IEConfig{
		Articles: 25, SentencesPerArticle: 5, People: 30, SpousePairs: 10, Seed: 1,
	})
	if len(articles) != 25 {
		t.Fatalf("articles = %d", len(articles))
	}
	if len(kb.Pairs) != 10 {
		t.Fatalf("spouse pairs = %d", len(kb.Pairs))
	}
	// KB pairs must appear in text alongside marriage phrases somewhere.
	var posEvidence int
	for _, a := range articles {
		if strings.Contains(a.Text, "married") || strings.Contains(a.Text, "wed") {
			posEvidence++
		}
	}
	if posEvidence == 0 {
		t.Fatal("no marriage evidence in corpus")
	}
}

func TestPairKeyCanonical(t *testing.T) {
	if PairKey("bob", "alice") != PairKey("alice", "bob") {
		t.Fatal("PairKey not symmetric")
	}
	kb := &SpouseKB{Pairs: map[string]bool{PairKey("a", "b"): true}}
	if !kb.Known("b", "a") {
		t.Fatal("Known not symmetric")
	}
}

func TestIsPersonToken(t *testing.T) {
	if !IsPersonToken("alice_adams") {
		t.Fatal("alice_adams should be a person")
	}
	for _, tok := range []string{"alice", "alice_", "_adams", "zelda_adams", "alice_zzz", "married"} {
		if IsPersonToken(tok) {
			t.Fatalf("%q should not be a person", tok)
		}
	}
}

func TestGenerateDigitsShape(t *testing.T) {
	imgs := GenerateDigits(DigitsConfig{TrainImages: 50, TestImages: 10, Seed: 1})
	if len(imgs) != 60 {
		t.Fatalf("images = %d", len(imgs))
	}
	var train int
	for _, im := range imgs {
		if len(im.Pixels) != 256 {
			t.Fatalf("pixels = %d, want 256", len(im.Pixels))
		}
		if im.Label < 0 || im.Label > 9 {
			t.Fatalf("label = %d", im.Label)
		}
		if im.Train {
			train++
		}
		for _, p := range im.Pixels {
			if p < 0 || p > 1 {
				t.Fatalf("pixel %v out of [0,1]", p)
			}
		}
	}
	if train != 50 {
		t.Fatalf("train images = %d", train)
	}
}

func TestGenerateDigitsClassesDiffer(t *testing.T) {
	imgs := GenerateDigits(DigitsConfig{TrainImages: 20, TestImages: 0, Side: 12, Noise: 0.01, Seed: 5})
	// Mean pixel intensity of an 8 (all segments) must exceed that of a 1
	// (two segments).
	mean := func(label int) float64 {
		var sum float64
		var n int
		for _, im := range imgs {
			if im.Label == label {
				for _, p := range im.Pixels {
					sum += p
				}
				n += len(im.Pixels)
			}
		}
		return sum / float64(n)
	}
	if mean(8) <= mean(1) {
		t.Fatalf("digit 8 intensity %.3f ≤ digit 1 intensity %.3f", mean(8), mean(1))
	}
}

// Property: CSV generation and parsing round-trip the row count for any
// small configuration.
func TestPropertyCensusRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		train, _ := GenerateCensusCSV(CensusConfig{TrainRows: n, TestRows: 1, Seed: seed})
		rows, err := ParseCSV(train, nil)
		return err == nil && len(rows) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRowsApproxBytes(t *testing.T) {
	rows := []Row{{"a": "1", "b": "2"}}
	if RowsApproxBytes(rows) <= 0 {
		t.Fatal("rows size must be positive")
	}
}
