// Package workloads implements the four evaluation workflows of the paper
// (§6.2) — Census, Genomics, Information Extraction (NLP), and MNIST — on
// top of the public HELIX-Go DSL, together with the deterministic
// iteration sequences used to simulate iterative development (§6.3).
//
// Each workload exposes Build, returning the workflow for its current
// knob settings, and Mutate, which modifies a knob of the requested
// component type (DPR, L/I, or PPR) exactly as the paper's methodology
// prescribes: "we randomly choose an operator of the drawn type and
// modify its source code". Knobs enter operator params strings, so a
// mutation marks the operator original and forces recomputation of its
// descendants.
package workloads

import (
	"helix"
	"helix/internal/core"
	"helix/internal/data"
	"helix/internal/ml"
	"helix/internal/nlp"
)

// Workload is one of the paper's four evaluation workflows with its
// iteration schedule.
type Workload interface {
	// Name identifies the workload ("census", "genomics", "nlp", "mnist").
	Name() string
	// Sequence returns the component type modified at each iteration;
	// index 0 describes the initial version (by convention its dominant
	// component). Its length is the experiment's iteration count.
	Sequence() []core.Component
	// Mutate modifies one knob of the given component type for the given
	// iteration. Mutations are deterministic in (iteration, comp).
	Mutate(iteration int, comp core.Component)
	// Build constructs the workflow for the current knob settings.
	Build() *helix.Workflow
}

// Scale is a global size multiplier for all workloads: 1 is the test
// scale; benchmarks may raise it. It multiplies row/article/image counts.
type Scale struct {
	// Rows multiplies dataset sizes; 0 means 1.
	Rows int
	// CostFactor multiplies the calibrated expense of the NLP parse;
	// 0 means the default.
	CostFactor int
}

func (s Scale) rows(base int) int {
	if s.Rows <= 1 {
		return base
	}
	return base * s.Rows
}

// RegisterAll registers every intermediate type the workloads flow between
// operators, so materialized results decode across sessions.
func RegisterAll() {
	helix.RegisterType(CensusData{})
	helix.RegisterType([]TaggedRow(nil))
	helix.RegisterType(Column{})
	helix.RegisterType([]data.Article(nil))
	helix.RegisterType(&data.GeneKB{})
	helix.RegisterType(&data.SpouseKB{})
	helix.RegisterType([][]string(nil))
	helix.RegisterType([]string(nil))
	helix.RegisterType(GenomicsCorpus{})
	helix.RegisterType(IECorpus{})
	helix.RegisterType([]nlp.Document(nil))
	helix.RegisterType([]Candidate(nil))
	helix.RegisterType(&ml.Dataset{})
	helix.RegisterType(ml.DenseVector(nil))
	helix.RegisterType(&ml.SparseVector{})
	helix.RegisterType(&ml.Embeddings{})
	helix.RegisterType(&ml.KMeansModel{})
	helix.RegisterType(Predictions{})
	helix.RegisterType(ml.ClusterSummary{})
	helix.RegisterType(EvalReport{})
	helix.RegisterType([]data.Image(nil))
	helix.RegisterType([]float64(nil))
	helix.RegisterType(map[string]float64(nil))
	helix.RegisterType(0.0)
	helix.RegisterType(0)
	helix.RegisterType("")
}

// Predictions carries a fitted model's inference results through the DAG:
// per-example probabilities or class scores, the true labels, and split
// flags — the DC named "predictions" of Figure 3a line 16.
type Predictions struct {
	Scores []float64
	Labels []float64
	Train  []bool
}

// ApproxBytes implements the engine's Sizer.
func (p Predictions) ApproxBytes() int64 {
	return int64(17*len(p.Scores)) + 16
}

// EvalReport is the scalar-ish output of a PPR reducer: named metrics.
type EvalReport struct {
	Metrics map[string]float64
}

// ApproxBytes implements the engine's Sizer.
func (r EvalReport) ApproxBytes() int64 {
	var b int64 = 16
	for k := range r.Metrics {
		b += int64(len(k)) + 16
	}
	return b
}
