package workloads

import (
	"context"
	"fmt"
	"strings"

	"helix"
	"helix/internal/collection"
	"helix/internal/core"
	"helix/internal/data"
	"helix/internal/ml"
	"helix/internal/nlp"
)

// IECorpus bundles the news corpus with the spouse knowledge base.
type IECorpus struct {
	Articles []data.Article
	KB       *data.SpouseKB
}

// ApproxBytes implements the engine's Sizer.
func (c IECorpus) ApproxBytes() int64 {
	var b int64 = 32
	for _, a := range c.Articles {
		b += int64(len(a.ID) + len(a.Text))
	}
	b += int64(len(c.KB.Pairs) * 24)
	return b
}

// Candidate is one person-pair mention: the sentence, the pair, and the
// token span between the two mentions — the unit of the IE workflow's
// one-to-many input→example mapping (Table 2).
type Candidate struct {
	A, B    string
	Between []string
	POSSeq  []string
	Label   float64
}

// IE is the spouse-extraction workflow from DeepDive's example (paper
// §6.2): an expensive NLP parse, candidate pair extraction, distant
// supervision against a knowledge base, fine-grained linguistic features,
// and a logistic-regression extractor evaluated by F1. Its iteration
// schedule is all-DPR (paper Figure 5c runs 6 iterations, "NLP, which has
// only DPR iterations").
type IE struct {
	ScaleCfg Scale
	Seed     int64

	articles   int
	parseCost  int    // calibrated NLP parse expense
	window     int    // DPR knob: max tokens between pair mentions
	featureSet string // DPR knob: "words", "words+pos", "words+pos+bigrams"
	regParam   float64
}

// NewIE returns the workload at its initial version.
func NewIE(scale Scale, seed int64) *IE {
	cost := scale.CostFactor
	if cost <= 0 {
		cost = 40
	}
	return &IE{
		ScaleCfg:   scale,
		Seed:       seed,
		articles:   scale.rows(200),
		parseCost:  cost,
		window:     6,
		featureSet: "words",
		regParam:   0.1,
	}
}

// Name implements Workload.
func (w *IE) Name() string { return "nlp" }

// Sequence implements Workload: six all-DPR iterations (Figure 5c).
func (w *IE) Sequence() []core.Component {
	return []core.Component{core.DPR, core.DPR, core.DPR, core.DPR, core.DPR, core.DPR}
}

// Mutate implements Workload. All mutations touch candidate extraction or
// featurization, never the parse — so the expensive parse stays reusable,
// the property Figure 5(c) exercises.
func (w *IE) Mutate(iteration int, comp core.Component) {
	if comp != core.DPR {
		comp = core.DPR // the IE schedule is all DPR
	}
	switch iteration % 3 {
	case 0:
		switch w.featureSet {
		case "words":
			w.featureSet = "words+pos"
		case "words+pos":
			w.featureSet = "words+pos+bigrams"
		default:
			w.featureSet = "words"
		}
	case 1:
		if w.window == 6 {
			w.window = 8
		} else {
			w.window = 6
		}
	default:
		w.featureSet = rotateFeatureSet(w.featureSet)
	}
}

func rotateFeatureSet(fs string) string {
	switch fs {
	case "words":
		return "words+pos+bigrams"
	case "words+pos":
		return "words"
	default:
		return "words+pos"
	}
}

// Build implements Workload.
func (w *IE) Build() *helix.Workflow {
	wf := helix.New("nlp")

	nArticles, seed := w.articles, w.Seed
	src := wf.Source("news", fmt.Sprintf("news articles=%d seed=%d", nArticles, seed),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			articles, kb := data.GenerateIE(data.IEConfig{
				Articles:            nArticles,
				SentencesPerArticle: 8,
				People:              40,
				SpousePairs:         15,
				Seed:                seed,
			})
			return IECorpus{Articles: articles, KB: kb}, nil
		})

	// parsedDocs: the time-consuming NLP parse whose results are reusable
	// across every subsequent iteration (paper §6.5.2).
	cost := w.parseCost
	parsed := wf.Scanner("parsedDocs", fmt.Sprintf("CoreNLP-parse cost=%d", cost),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			corpus := in[0].(IECorpus)
			// Parse articles data-parallel on the substrate — the shape of
			// running CoreNLP inside Spark map tasks.
			docs := collection.Map(collection.New(collection.DefaultEnv(), corpus.Articles),
				func(a data.Article) nlp.Document {
					return nlp.Parse(a.ID, a.Text, cost)
				}).Collect()
			return docs, nil
		}, src)

	// candidates: person-pair extraction with distant supervision.
	window := w.window
	candidates := wf.Scanner("candidates", fmt.Sprintf("pairExtractor window=%d", window),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			docs := in[0].([]nlp.Document)
			corpus := in[1].(IECorpus)
			var out []Candidate
			for _, d := range docs {
				for _, s := range d.Sentences {
					out = append(out, extractPairs(s, corpus.KB, window)...)
				}
			}
			if len(out) == 0 {
				return nil, fmt.Errorf("ie: no candidate pairs extracted")
			}
			return out, nil
		}, parsed, src)

	// examples: featurize candidates (fine-grained features, Table 2).
	featureSet := w.featureSet
	examples := wf.Synthesizer("examples", "features="+featureSet,
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			cands := in[0].([]Candidate)
			raw := make([]ml.RawFeatures, len(cands))
			for i, c := range cands {
				raw[i] = featurizeCandidate(c, featureSet)
			}
			fs := ml.FitFeatureSpace(raw)
			ds := &ml.Dataset{Dim: fs.Dim(), Examples: make([]ml.Example, len(cands))}
			for i, c := range cands {
				ds.Examples[i] = ml.Example{
					X:     fs.Vectorize(raw[i]),
					Y:     c.Label,
					Train: i%5 != 0, // held-out fifth for evaluation
					ID:    data.PairKey(c.A, c.B),
				}
			}
			return ds, nil
		}, candidates)

	reg := w.regParam
	predictions := wf.Learner("spousePred", fmt.Sprintf("Learner(LR, regParam=%g)", reg),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			ds := in[0].(*ml.Dataset)
			model, err := ml.LogisticRegression{RegParam: reg, Epochs: 15, Seed: 3}.Fit(ds)
			if err != nil {
				return nil, err
			}
			p := Predictions{
				Scores: make([]float64, len(ds.Examples)),
				Labels: make([]float64, len(ds.Examples)),
				Train:  make([]bool, len(ds.Examples)),
			}
			for i, e := range ds.Examples {
				p.Scores[i] = model.Predict(e.X)
				p.Labels[i] = e.Y
				p.Train[i] = e.Train
			}
			return p, nil
		}, examples)

	wf.Reducer("f1", "Reducer(PRF1, split=test)",
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			p := in[0].(Predictions)
			var tp, fp, fn int
			for i := range p.Scores {
				if p.Train[i] {
					continue
				}
				pred := p.Scores[i] >= 0.5
				truth := p.Labels[i] >= 0.5
				switch {
				case pred && truth:
					tp++
				case pred && !truth:
					fp++
				case !pred && truth:
					fn++
				}
			}
			rep := EvalReport{Metrics: map[string]float64{}}
			if tp+fp > 0 {
				rep.Metrics["precision"] = float64(tp) / float64(tp+fp)
			}
			if tp+fn > 0 {
				rep.Metrics["recall"] = float64(tp) / float64(tp+fn)
			}
			if p, r := rep.Metrics["precision"], rep.Metrics["recall"]; p+r > 0 {
				rep.Metrics["f1"] = 2 * p * r / (p + r)
			}
			return rep, nil
		}, predictions).
		IsOutput()

	return wf
}

// extractPairs finds person-pair mentions within window tokens of each
// other in one sentence, labeling them by KB membership (distant
// supervision).
func extractPairs(s nlp.Sentence, kb *data.SpouseKB, window int) []Candidate {
	var people []int
	for i, t := range s {
		if data.IsPersonToken(t.Text) {
			people = append(people, i)
		}
	}
	var out []Candidate
	for i := 0; i < len(people); i++ {
		for j := i + 1; j < len(people); j++ {
			a, b := people[i], people[j]
			if b-a-1 > window {
				continue
			}
			c := Candidate{A: s[a].Text, B: s[b].Text}
			for k := a + 1; k < b; k++ {
				c.Between = append(c.Between, s[k].Text)
				c.POSSeq = append(c.POSSeq, s[k].POS)
			}
			if kb.Known(c.A, c.B) {
				c.Label = 1
			}
			out = append(out, c)
		}
	}
	return out
}

// featurizeCandidate builds the raw feature map for a candidate under the
// configured feature set.
func featurizeCandidate(c Candidate, featureSet string) ml.RawFeatures {
	rf := make(ml.RawFeatures, len(c.Between)*2+2)
	for _, w := range c.Between {
		rf["between:"+w] = ml.Num(1)
	}
	rf["gap"] = ml.Num(float64(len(c.Between)))
	if strings.Contains(featureSet, "pos") {
		for _, p := range c.POSSeq {
			rf["pos:"+p] = ml.Num(1)
		}
	}
	if strings.Contains(featureSet, "bigrams") {
		for i := 0; i+1 < len(c.Between); i++ {
			rf["bigram:"+c.Between[i]+"_"+c.Between[i+1]] = ml.Num(1)
		}
	}
	return rf
}
