package workloads

import (
	"fmt"
	"reflect"
	"sort"

	"helix/internal/data"
	"helix/internal/ml"
	"helix/internal/store"
)

// The built-in workloads' row types flow between operators in bulk —
// tens of thousands of parsed census rows, feature columns, and score
// vectors per materialization. Without an extension the binary codec
// routes them through its gob escape hatch, which re-describes the type
// per artifact and stores each map key once per row. The extensions here
// encode them columnarly: string values interned across the whole slice,
// float columns flat, bool flags bit-packed.
//
// Registration happens in init (not RegisterAll, which is called once
// per test and RegisterExt panics on duplicates). The Name strings are
// the on-disk type tags — renaming one orphans published artifacts.
func init() {
	store.RegisterExt(store.Ext{
		Name:   "workloads.TaggedRows",
		Type:   reflect.TypeOf([]TaggedRow(nil)),
		Encode: encodeTaggedRows,
		Decode: decodeTaggedRows,
	})
	store.RegisterExt(store.Ext{
		Name:   "workloads.Column",
		Type:   reflect.TypeOf(Column{}),
		Encode: encodeColumn,
		Decode: decodeColumn,
	})
	store.RegisterExt(store.Ext{
		Name:   "workloads.Predictions",
		Type:   reflect.TypeOf(Predictions{}),
		Encode: encodePredictions,
		Decode: decodePredictions,
	})
}

// packBools bit-packs a bool column; Writer.Bytes carries the length.
func packBools(w *store.Writer, v []bool) {
	w.Uvarint(uint64(len(v)))
	packed := make([]byte, (len(v)+7)/8)
	for i, b := range v {
		if b {
			packed[i/8] |= 1 << (i % 8)
		}
	}
	w.Bytes(packed)
}

func unpackBools(r *store.Reader) ([]bool, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	packed, err := r.Bytes()
	if err != nil {
		return nil, err
	}
	if uint64(len(packed)) != (n+7)/8 {
		return nil, fmt.Errorf("bool column: %d bits in %d bytes", n, len(packed))
	}
	v := make([]bool, n)
	for i := range v {
		v[i] = packed[i/8]&(1<<(i%8)) != 0
	}
	return v, nil
}

// encodeTaggedRows stores parsed census rows key-major: the union of
// field names once, then per field a presence bitmap and the present
// values. CSV rows share one schema, so the presence bitmaps are all-ones
// in practice and every cell is an interned-string backreference.
func encodeTaggedRows(w *store.Writer, v any) error {
	rows := v.([]TaggedRow)
	w.Uvarint(uint64(len(rows)))
	train := make([]bool, len(rows))
	keySet := map[string]bool{}
	for i, tr := range rows {
		train[i] = tr.Train
		for k := range tr.Row {
			keySet[k] = true
		}
	}
	packBools(w, train)
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.String(k)
		present := make([]bool, len(rows))
		for i, tr := range rows {
			_, present[i] = tr.Row[k]
		}
		packBools(w, present)
		for i, tr := range rows {
			if present[i] {
				w.String(tr.Row[k])
			}
		}
	}
	return nil
}

func decodeTaggedRows(r *store.Reader) (any, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	train, err := unpackBools(r)
	if err != nil {
		return nil, err
	}
	if uint64(len(train)) != n {
		return nil, fmt.Errorf("tagged rows: %d rows, %d train flags", n, len(train))
	}
	rows := make([]TaggedRow, n)
	for i := range rows {
		rows[i] = TaggedRow{Row: make(data.Row), Train: train[i]}
	}
	nk, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	for k := uint64(0); k < nk; k++ {
		key, err := r.String()
		if err != nil {
			return nil, err
		}
		present, err := unpackBools(r)
		if err != nil {
			return nil, err
		}
		if uint64(len(present)) != n {
			return nil, fmt.Errorf("tagged rows: field %q has %d presence flags for %d rows", key, len(present), n)
		}
		for i, p := range present {
			if !p {
				continue
			}
			val, err := r.String()
			if err != nil {
				return nil, err
			}
			rows[i].Row[key] = val
		}
	}
	return rows, nil
}

// encodeColumn splits an extractor column into a numeric-or-categorical
// bitmap, a flat float column for the numeric cells, and interned strings
// for the categorical ones.
func encodeColumn(w *store.Writer, v any) error {
	c := v.(Column)
	w.String(c.Name)
	isNum := make([]bool, len(c.Values))
	var nums []float64
	for i, fv := range c.Values {
		isNum[i] = fv.IsNumber
		if fv.IsNumber {
			nums = append(nums, fv.Num)
		}
	}
	packBools(w, isNum)
	w.Float64s(nums)
	for _, fv := range c.Values {
		if !fv.IsNumber {
			w.String(fv.Str)
		}
	}
	return nil
}

func decodeColumn(r *store.Reader) (any, error) {
	name, err := r.String()
	if err != nil {
		return nil, err
	}
	isNum, err := unpackBools(r)
	if err != nil {
		return nil, err
	}
	nums, err := r.Float64s()
	if err != nil {
		return nil, err
	}
	values := make([]ml.FeatureValue, len(isNum))
	ni := 0
	for i, num := range isNum {
		if !num {
			continue
		}
		if ni >= len(nums) {
			return nil, fmt.Errorf("column %q: numeric cells exceed float column (%d)", name, len(nums))
		}
		values[i] = ml.FeatureValue{Num: nums[ni], IsNumber: true}
		ni++
	}
	if ni != len(nums) {
		return nil, fmt.Errorf("column %q: %d floats for %d numeric cells", name, len(nums), ni)
	}
	for i, num := range isNum {
		if num {
			continue
		}
		s, err := r.String()
		if err != nil {
			return nil, err
		}
		values[i] = ml.FeatureValue{Str: s}
	}
	return Column{Name: name, Values: values}, nil
}

// floatColumn writes a float column, downgrading to varints when every
// value is integral — class-label columns are 0/1, which gob packs into
// a byte or two per value and a flat 8-byte column would inflate 4-8×.
func floatColumn(w *store.Writer, fs []float64) {
	integral := true
	for _, f := range fs {
		if f != float64(int64(f)) {
			integral = false
			break
		}
	}
	w.Bool(integral)
	if !integral {
		w.Float64s(fs)
		return
	}
	w.Uvarint(uint64(len(fs)))
	for _, f := range fs {
		w.Varint(int64(f))
	}
}

func readFloatColumn(r *store.Reader) ([]float64, error) {
	integral, err := r.Bool()
	if err != nil {
		return nil, err
	}
	if !integral {
		return r.Float64s()
	}
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	fs := make([]float64, n)
	for i := range fs {
		v, err := r.Varint()
		if err != nil {
			return nil, err
		}
		fs[i] = float64(v)
	}
	return fs, nil
}

// encodePredictions stores a model's inference output as two flat float
// columns and a bit-packed split flag — 17 bytes/row under gob, ~8 here.
func encodePredictions(w *store.Writer, v any) error {
	p := v.(Predictions)
	floatColumn(w, p.Scores)
	floatColumn(w, p.Labels)
	packBools(w, p.Train)
	return nil
}

func decodePredictions(r *store.Reader) (any, error) {
	scores, err := readFloatColumn(r)
	if err != nil {
		return nil, err
	}
	labels, err := readFloatColumn(r)
	if err != nil {
		return nil, err
	}
	train, err := unpackBools(r)
	if err != nil {
		return nil, err
	}
	return Predictions{Scores: scores, Labels: labels, Train: train}, nil
}
