package workloads

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"helix"
	"helix/internal/collection"
	"helix/internal/core"
	"helix/internal/data"
	"helix/internal/ml"
)

// CensusData is the raw two-file input of the census workflow.
type CensusData struct {
	Train, Test string
}

// ApproxBytes implements the engine's Sizer.
func (c CensusData) ApproxBytes() int64 { return int64(len(c.Train) + len(c.Test)) }

// TaggedRow is one parsed census row with its split flag.
type TaggedRow struct {
	Row   data.Row
	Train bool
}

// Column is an extractor's output: one raw feature value per row, aligned
// with the scanner's row order — the semantic-unit output of §3.2.1.
type Column struct {
	Name   string
	Values []ml.FeatureValue
}

// ApproxBytes implements the engine's Sizer.
func (c Column) ApproxBytes() int64 {
	var b int64 = int64(len(c.Name)) + 16
	for _, v := range c.Values {
		b += int64(len(v.Str)) + 16
	}
	return b
}

// Census is the income-prediction workflow of Figure 3a: CSV scan, field
// extraction, learned bucketization, interaction features, logistic
// regression, and an accuracy reducer. Domain: social sciences; its
// iteration sequence is dominated by PPR changes (paper §6.5.2: "users in
// the social sciences conduct extensive fine-grained analysis of
// results").
type Census struct {
	ScaleCfg Scale
	Seed     int64

	// Env is the dataflow environment (stands in for the Spark cluster;
	// Figure 7b varies Workers and pays BarrierOverhead per operation).
	Env *collection.Env

	// Knobs mutated across iterations.
	trainRows, testRows int
	replicas            int
	fields              []string // active field extractors (DPR knob)
	ageBuckets          int      // bucketizer bins (DPR knob)
	regParam            float64  // LR regularization (L/I knob)
	epochs              int      // LR epochs (L/I knob)
	metric              string   // reducer metric variant (PPR knob)
}

// NewCensus returns the workload at its initial version (Figure 3a
// without the + lines) at the given scale.
func NewCensus(scale Scale, seed int64) *Census {
	return &Census{
		ScaleCfg:   scale,
		Seed:       seed,
		trainRows:  scale.rows(4000),
		testRows:   scale.rows(1000),
		replicas:   1,
		fields:     []string{"education", "occupation", "capital_loss", "age", "hours_per_week"},
		ageBuckets: 10,
		regParam:   0.1,
		epochs:     15,
		metric:     "accuracy",
	}
}

// NewCensus10x returns the 10×-replicated variant of Figure 7.
func NewCensus10x(scale Scale, seed int64) *Census {
	c := NewCensus(scale, seed)
	c.replicas = 10
	return c
}

// NewCensusCluster returns the Census 10x workload configured for a
// simulated cluster of the given worker count (Figure 7b). Each parallel
// operation pays a per-worker barrier overhead modeling scheduling and
// shuffle communication, which is what makes the paper's PPR operations
// regress at 8 workers.
func NewCensusCluster(scale Scale, seed int64, workers int) *Census {
	c := NewCensus10x(scale, seed)
	c.Env = &collection.Env{Workers: workers, BarrierOverhead: 300 * time.Microsecond}
	return c
}

// env returns the configured dataflow environment or the default.
func (c *Census) env() *collection.Env {
	if c.Env != nil {
		return c.Env
	}
	return collection.DefaultEnv()
}

// Name implements Workload.
func (c *Census) Name() string { return "census" }

// Sequence implements Workload: the 10-iteration schedule sampled from
// the survey's social-science distribution (fixed seed; matches the
// Figure 5(a)/6(a) pattern: three DPR iterations, an L/I iteration at 5,
// PPR elsewhere).
func (c *Census) Sequence() []core.Component {
	return []core.Component{
		core.DPR, core.DPR, core.DPR, core.PPR, core.PPR,
		core.LI, core.PPR, core.PPR, core.PPR, core.PPR,
	}
}

// Mutate implements Workload.
func (c *Census) Mutate(iteration int, comp core.Component) {
	switch comp {
	case core.DPR:
		switch iteration % 3 {
		case 0:
			// Toggle marital_status in the extractor set (the paper's
			// running example adds msExt and drops clExt; Figure 3a).
			c.toggleField("marital_status")
		case 1:
			c.toggleField("capital_loss")
		default:
			if c.ageBuckets == 10 {
				c.ageBuckets = 8
			} else {
				c.ageBuckets = 10
			}
		}
	case core.LI:
		if c.regParam == 0.1 {
			c.regParam = 0.5
		} else {
			c.regParam = 0.1
		}
	case core.PPR:
		switch c.metric {
		case "accuracy":
			c.metric = "accuracy+logloss"
		case "accuracy+logloss":
			c.metric = "confusion"
		default:
			c.metric = "accuracy"
		}
	}
}

func (c *Census) toggleField(f string) {
	for i, g := range c.fields {
		if g == f {
			c.fields = append(c.fields[:i], c.fields[i+1:]...)
			return
		}
	}
	c.fields = append(c.fields, f)
}

// numericCensusFields are the fields extracted as numbers.
var numericCensusFields = map[string]bool{
	"age": true, "fnlwgt": true, "education_num": true,
	"capital_gain": true, "capital_loss": true, "hours_per_week": true,
}

// Build implements Workload, constructing the Figure 3a DAG.
func (c *Census) Build() *helix.Workflow {
	wf := helix.New("census")

	cfg := data.CensusConfig{TrainRows: c.trainRows, TestRows: c.testRows, Seed: c.Seed, Replicas: c.replicas}
	src := wf.Source("data", fmt.Sprintf("census train=%d test=%d seed=%d reps=%d", cfg.TrainRows, cfg.TestRows, cfg.Seed, cfg.Replicas),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			train, test := data.GenerateCensusCSV(cfg)
			return CensusData{Train: train, Test: test}, nil
		})

	env := c.env()
	rows := wf.Scanner("rows", "CSVScanner(all-columns)", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		cd := in[0].(CensusData)
		trainRows, err := parseCSVParallel(env, cd.Train)
		if err != nil {
			return nil, err
		}
		testRows, err := parseCSVParallel(env, cd.Test)
		if err != nil {
			return nil, err
		}
		out := make([]TaggedRow, 0, len(trainRows)+len(testRows))
		for _, r := range trainRows {
			out = append(out, TaggedRow{Row: r, Train: true})
		}
		for _, r := range testRows {
			out = append(out, TaggedRow{Row: r, Train: false})
		}
		return out, nil
	}, src)

	// One field extractor per active field (Figure 3a lines 5-10).
	extractors := make([]*helix.Op, 0, len(c.fields)+2)
	var ageExt *helix.Op
	var eduExt, occExt *helix.Op
	for _, f := range c.fields {
		field := f
		ext := wf.Extractor(field+"Ext", "FieldExtractor("+field+")", fieldExtractor(env, field), rows)
		switch field {
		case "age":
			ageExt = ext
			continue // age enters via the bucketizer, not raw
		case "education":
			eduExt = ext
		case "occupation":
			occExt = ext
		}
		extractors = append(extractors, ext)
	}

	// ageBucket: a learned discretization (Figure 3a line 11).
	if ageExt != nil {
		bins := c.ageBuckets
		ageBucket := wf.Extractor("ageBucket", fmt.Sprintf("Bucketizer(ageExt, bins=%d)", bins),
			func(ctx context.Context, in []helix.Value) (helix.Value, error) {
				col := in[0].(Column)
				vals := make([]float64, 0, len(col.Values))
				for _, v := range col.Values {
					vals = append(vals, v.Num)
				}
				bk, err := ml.FitBucketizer(vals, bins)
				if err != nil {
					return nil, err
				}
				out := Column{Name: "ageBucket", Values: make([]ml.FeatureValue, len(col.Values))}
				for i, v := range col.Values {
					out.Values[i] = ml.Cat(fmt.Sprintf("b%d", int(bk.Transform(v.Num))))
				}
				return out, nil
			}, ageExt)
		extractors = append(extractors, ageBucket)
	}

	// eduXocc: interaction feature (Figure 3a line 12).
	if eduExt != nil && occExt != nil {
		eduXocc := wf.Extractor("eduXocc", "InteractionFeature(eduExt,occExt)",
			func(ctx context.Context, in []helix.Value) (helix.Value, error) {
				a, b := in[0].(Column), in[1].(Column)
				if len(a.Values) != len(b.Values) {
					return nil, fmt.Errorf("census: interaction arity mismatch %d vs %d", len(a.Values), len(b.Values))
				}
				out := Column{Name: "eduXocc", Values: make([]ml.FeatureValue, len(a.Values))}
				for i := range a.Values {
					out.Values[i] = ml.Cat(a.Values[i].Str + "|" + b.Values[i].Str)
				}
				return out, nil
			}, eduExt, occExt)
		extractors = append(extractors, eduXocc)
	}

	// raceExt is declared but never fed to the synthesizer — the paper's
	// Figure 3b example of an extractor pruned by program slicing ("prunes
	// away raceExt (grayed out) because it does not contribute to the
	// output"). With pruning disabled (ablation) it runs wastefully.
	wf.Extractor("raceExt", "FieldExtractor(race)", fieldExtractor(env, "race"), rows)

	target := wf.Extractor("target", "FieldExtractor(target)", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		rs := in[0].([]TaggedRow)
		out := Column{Name: "target", Values: make([]ml.FeatureValue, len(rs))}
		for i, r := range rs {
			if r.Row["target"] == ">50K" {
				out.Values[i] = ml.Num(1)
			} else {
				out.Values[i] = ml.Num(0)
			}
		}
		return out, nil
	}, rows)

	// income: example assembly (Figure 3a line 14). Inputs: rows (for the
	// split flags), the feature extractors, and the label extractor.
	synthIn := append([]*helix.Op{rows}, extractors...)
	synthIn = append(synthIn, target)
	income := wf.Synthesizer("income", fmt.Sprintf("examples(features=%d, label=target, scale=standard)", len(extractors)),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			rs := in[0].([]TaggedRow)
			nf := len(in) - 2
			cols := make([]Column, nf)
			for i := 0; i < nf; i++ {
				cols[i] = in[1+i].(Column)
			}
			labels := in[len(in)-1].(Column)
			// Standardize numeric columns: a data-dependent DPR function
			// whose statistics are learned in the same pass that assembles
			// examples (the paper's batched learning of DPR functions,
			// §3.2.1). Unscaled magnitudes (e.g. capital_loss in the
			// thousands) destabilize SGD.
			for ci, col := range cols {
				var vals []float64
				for _, v := range col.Values {
					if v.IsNumber {
						vals = append(vals, v.Num)
					}
				}
				if len(vals) != len(col.Values) {
					continue // categorical column
				}
				sc, err := ml.FitStandardScaler(vals)
				if err != nil {
					continue
				}
				scaled := Column{Name: col.Name, Values: make([]ml.FeatureValue, len(col.Values))}
				for i, v := range col.Values {
					scaled.Values[i] = ml.Num(sc.Transform(v.Num))
				}
				cols[ci] = scaled
			}
			raw := make([]ml.RawFeatures, len(rs))
			for i := range rs {
				rf := make(ml.RawFeatures, nf)
				for _, col := range cols {
					if i < len(col.Values) {
						rf[col.Name] = col.Values[i]
					}
				}
				raw[i] = rf
			}
			fs := ml.FitFeatureSpace(raw)
			ds := &ml.Dataset{Dim: fs.Dim(), Examples: make([]ml.Example, len(rs))}
			for i := range rs {
				ds.Examples[i] = ml.Example{
					X:     fs.Vectorize(raw[i]),
					Y:     labels.Values[i].Num,
					Train: rs[i].Train,
				}
			}
			return ds, nil
		}, synthIn...)

	// incPred: logistic regression + inference (Figure 3a lines 15-16).
	reg, ep := c.regParam, c.epochs
	predictions := wf.Learner("predictions", fmt.Sprintf("Learner(LR, regParam=%g, epochs=%d)", reg, ep),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			ds := in[0].(*ml.Dataset)
			model, err := ml.LogisticRegression{RegParam: reg, Epochs: ep, Seed: 1}.Fit(ds)
			if err != nil {
				return nil, err
			}
			p := Predictions{
				Scores: make([]float64, len(ds.Examples)),
				Labels: make([]float64, len(ds.Examples)),
				Train:  make([]bool, len(ds.Examples)),
			}
			for i, e := range ds.Examples {
				p.Scores[i] = model.Predict(e.X)
				p.Labels[i] = e.Y
				p.Train[i] = e.Train
			}
			return p, nil
		}, income)

	// checked: accuracy over the test split (Figure 3a lines 17-20).
	metric := c.metric
	wf.Reducer("checked", "Reducer(metric="+metric+", split=test)",
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			p := in[0].(Predictions)
			return evaluateBinary(p, metric), nil
		}, predictions).
		Uses(target). // Figure 3a line 19: UDF dependency on target
		IsOutput()

	return wf
}

// parseCSVParallel parses a header-led CSV text on the dataflow substrate,
// distributing row parsing across the environment's workers (the loop
// fusion + parallelism the paper gets from Spark).
func parseCSVParallel(env *collection.Env, text string) ([]data.Row, error) {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		return nil, fmt.Errorf("census: empty CSV input")
	}
	header := strings.Split(lines[0], ",")
	type parsed struct {
		row data.Row
		err error
	}
	coll := collection.Map(collection.New(env, lines[1:]), func(line string) parsed {
		if line == "" {
			return parsed{}
		}
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			return parsed{err: fmt.Errorf("census: row has %d fields, want %d", len(fields), len(header))}
		}
		r := make(data.Row, len(header))
		for j, c := range header {
			r[c] = fields[j]
		}
		return parsed{row: r}
	})
	all := coll.Collect()
	rows := make([]data.Row, 0, len(all))
	for _, p := range all {
		if p.err != nil {
			return nil, p.err
		}
		if p.row != nil {
			rows = append(rows, p.row)
		}
	}
	return rows, nil
}

// fieldExtractor returns the Func for a simple per-row field extractor,
// executed data-parallel on the workload's environment.
func fieldExtractor(env *collection.Env, field string) helix.Func {
	numeric := numericCensusFields[field]
	return func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		rs := in[0].([]TaggedRow)
		type extracted struct {
			v   ml.FeatureValue
			err error
		}
		vals := collection.Map(collection.New(env, rs), func(r TaggedRow) extracted {
			raw := r.Row[field]
			if numeric {
				f, err := strconv.ParseFloat(raw, 64)
				if err != nil {
					return extracted{err: fmt.Errorf("census: field %s: %w", field, err)}
				}
				return extracted{v: ml.Num(f)}
			}
			return extracted{v: ml.Cat(raw)}
		}).Collect()
		out := Column{Name: field, Values: make([]ml.FeatureValue, len(vals))}
		for i, e := range vals {
			if e.err != nil {
				return nil, e.err
			}
			out.Values[i] = e.v
		}
		return out, nil
	}
}

// evaluateBinary computes the reducer's metric variants on the test split.
func evaluateBinary(p Predictions, metric string) EvalReport {
	rep := EvalReport{Metrics: make(map[string]float64, 4)}
	var n, correct, tp, fp, fn int
	var logloss float64
	for i := range p.Scores {
		if p.Train[i] {
			continue
		}
		n++
		pred := p.Scores[i] >= 0.5
		truth := p.Labels[i] >= 0.5
		if pred == truth {
			correct++
		}
		switch {
		case pred && truth:
			tp++
		case pred && !truth:
			fp++
		case !pred && truth:
			fn++
		}
		s := p.Scores[i]
		if s < 1e-12 {
			s = 1e-12
		}
		if s > 1-1e-12 {
			s = 1 - 1e-12
		}
		if truth {
			logloss -= math.Log(s)
		} else {
			logloss -= math.Log(1 - s)
		}
	}
	if n == 0 {
		return rep
	}
	rep.Metrics["accuracy"] = float64(correct) / float64(n)
	switch metric {
	case "accuracy+logloss":
		rep.Metrics["logloss"] = logloss / float64(n)
	case "confusion":
		rep.Metrics["tp"] = float64(tp)
		rep.Metrics["fp"] = float64(fp)
		rep.Metrics["fn"] = float64(fn)
	}
	return rep
}
