package workloads

import (
	"context"
	"testing"

	"helix"
	"helix/internal/collection"
	"helix/internal/core"
	"helix/internal/ml"
)

// TestGenomicsFullScheduleTheorem1 drives the complete genomics schedule
// under reuse and from scratch, asserting identical cluster summaries at
// every iteration (Theorem 1 on the unsupervised multi-learner workflow).
func TestGenomicsFullScheduleTheorem1(t *testing.T) {
	if testing.Short() {
		t.Skip("full schedule is slow")
	}
	ctx := context.Background()
	reuse, err := helix.NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := helix.NewSession(t.TempDir(), helix.Options{Policy: helix.PolicyNever, DisableReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	a := NewGenomics(tiny(), 1)
	b := NewGenomics(tiny(), 1)
	seq := a.Sequence()
	for it := 0; it < len(seq); it++ {
		if it > 0 {
			a.Mutate(it, seq[it])
			b.Mutate(it, seq[it])
		}
		ra, err := reuse.Run(ctx, a.Build())
		if err != nil {
			t.Fatalf("reuse iteration %d: %v", it, err)
		}
		rb, err := scratch.Run(ctx, b.Build())
		if err != nil {
			t.Fatalf("scratch iteration %d: %v", it, err)
		}
		sa := ra.Values["clusterSummary"].(ml.ClusterSummary)
		sb := rb.Values["clusterSummary"].(ml.ClusterSummary)
		if sa.K != sb.K || sa.Inertia != sb.Inertia {
			t.Fatalf("iteration %d: summaries diverge (K %d/%d, inertia %v/%v)",
				it, sa.K, sb.K, sa.Inertia, sb.Inertia)
		}
	}
}

// TestMNISTFullScheduleRuns drives the complete MNIST schedule and
// asserts the per-iteration invariants of Figure 6d: nondeterministic DPR
// output is never materialized, and PPR iterations never recompute it.
func TestMNISTFullScheduleRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full schedule is slow")
	}
	ctx := context.Background()
	sess, err := helix.NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMNIST(tiny(), 1)
	seq := m.Sequence()
	for it := 0; it < len(seq); it++ {
		if it > 0 {
			m.Mutate(it, seq[it])
		}
		res, err := sess.Run(ctx, m.Build())
		if err != nil {
			t.Fatalf("iteration %d: %v", it, err)
		}
		if res.Nodes["rffFeatures"].Bytes != 0 {
			t.Fatalf("iteration %d: nondeterministic output materialized", it)
		}
		if seq[it] == core.PPR && res.Nodes["rffFeatures"].State == core.StateCompute {
			t.Fatalf("iteration %d (PPR): RFF recomputed", it)
		}
	}
}

// TestCensusClusterWorkersProduceSameResult checks that the simulated
// cluster size changes only performance, never results.
func TestCensusClusterWorkersProduceSameResult(t *testing.T) {
	ctx := context.Background()
	var accs []float64
	for _, workers := range []int{1, 4} {
		sess, err := helix.NewSession(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		c := NewCensus(tiny(), 1)
		c.Env = &collection.Env{Workers: workers}
		res, err := sess.Run(ctx, c.Build())
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, res.Values["checked"].(EvalReport).Metrics["accuracy"])
	}
	if accs[0] != accs[1] {
		t.Fatalf("worker count changed results: %v", accs)
	}
}
