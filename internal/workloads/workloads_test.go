package workloads

import (
	"context"
	"testing"

	"helix"
	"helix/internal/core"
	"helix/internal/ml"
)

func init() { RegisterAll() }

// tiny returns a scale small enough for unit tests.
func tiny() Scale { return Scale{Rows: 0, CostFactor: 2} }

func allWorkloads() []Workload {
	return []Workload{
		NewCensus(tiny(), 1),
		NewGenomics(tiny(), 1),
		NewIE(tiny(), 1),
		NewMNIST(tiny(), 1),
	}
}

func TestAllWorkloadsCompile(t *testing.T) {
	for _, wl := range allWorkloads() {
		wf := wl.Build()
		prog, err := wf.Compile()
		if err != nil {
			t.Fatalf("%s: %v", wl.Name(), err)
		}
		if prog.DAG.Len() < 4 {
			t.Fatalf("%s: only %d nodes", wl.Name(), prog.DAG.Len())
		}
		if len(prog.DAG.Outputs()) == 0 {
			t.Fatalf("%s: no outputs", wl.Name())
		}
	}
}

func TestAllWorkloadsRunEndToEnd(t *testing.T) {
	ctx := context.Background()
	for _, wl := range allWorkloads() {
		wl := wl
		t.Run(wl.Name(), func(t *testing.T) {
			t.Parallel()
			sess, err := helix.NewSession(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			res, err := sess.Run(ctx, wl.Build())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Values) == 0 {
				t.Fatal("no outputs")
			}
		})
	}
}

func TestCensusLearnsIncome(t *testing.T) {
	sess, err := helix.NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background(), NewCensus(tiny(), 1).Build())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Values["checked"].(EvalReport)
	if acc := rep.Metrics["accuracy"]; acc < 0.7 {
		t.Fatalf("census accuracy %.3f < 0.7", acc)
	}
}

func TestCensusMutationsChangeOnlyTheirComponent(t *testing.T) {
	c := NewCensus(tiny(), 1)
	base, err := c.Build().Compile()
	if err != nil {
		t.Fatal(err)
	}
	base.DAG.ComputeSignatures()

	// A PPR mutation must leave every non-PPR node equivalent.
	c.Mutate(1, core.PPR)
	mut, err := c.Build().Compile()
	if err != nil {
		t.Fatal(err)
	}
	mut.DAG.ComputeSignatures()
	for _, n := range mut.DAG.Nodes() {
		old := base.DAG.Node(n.Name)
		if old == nil {
			continue
		}
		if n.Component != core.PPR && n.ChainSignature() != old.ChainSignature() {
			t.Fatalf("PPR mutation changed %s node %q", n.Component, n.Name)
		}
		if n.Component == core.PPR && n.ChainSignature() == old.ChainSignature() {
			t.Fatalf("PPR mutation did not change reducer %q", n.Name)
		}
	}
}

func TestCensusLIMutationPreservesDPR(t *testing.T) {
	c := NewCensus(tiny(), 1)
	base, _ := c.Build().Compile()
	base.DAG.ComputeSignatures()
	c.Mutate(5, core.LI)
	mut, _ := c.Build().Compile()
	mut.DAG.ComputeSignatures()
	for _, n := range mut.DAG.Nodes() {
		old := base.DAG.Node(n.Name)
		if old == nil {
			continue
		}
		if n.Component == core.DPR && n.ChainSignature() != old.ChainSignature() {
			t.Fatalf("L/I mutation changed DPR node %q", n.Name)
		}
	}
	// The learner must have changed.
	if mut.DAG.Node("predictions").ChainSignature() == base.DAG.Node("predictions").ChainSignature() {
		t.Fatal("L/I mutation did not change the learner")
	}
}

func TestCensusDPRMutationTogglesField(t *testing.T) {
	c := NewCensus(tiny(), 1)
	n0 := len(c.Build().Ops())
	c.Mutate(0, core.DPR) // toggles marital_status in
	n1 := len(c.Build().Ops())
	if n1 != n0+1 {
		t.Fatalf("ops %d → %d, want +1 extractor", n0, n1)
	}
	c.Mutate(0, core.DPR) // toggles it back out
	if n2 := len(c.Build().Ops()); n2 != n0 {
		t.Fatalf("ops %d → %d, want back to original", n1, n2)
	}
}

func TestGenomicsClusterSummaryShape(t *testing.T) {
	sess, err := helix.NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenomics(tiny(), 1)
	res, err := sess.Run(context.Background(), g.Build())
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Values["clusterSummary"].(ml.ClusterSummary)
	if sum.K < 2 {
		t.Fatalf("K = %d", sum.K)
	}
	var members int
	for _, size := range sum.Sizes {
		members += size
	}
	if members == 0 {
		t.Fatal("no gene vectors clustered")
	}
}

func TestGenomicsEmbeddingsRecoverFunctionGroups(t *testing.T) {
	// The clustering should group genes of the same latent function more
	// often than chance: measure purity of the dominant group per cluster.
	sess, err := helix.NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenomics(tiny(), 1)
	res, err := sess.Run(context.Background(), g.Build())
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Values["clusterSummary"].(ml.ClusterSummary)
	if sum.Inertia < 0 {
		t.Fatal("negative inertia")
	}
}

func TestIEFindsSpouses(t *testing.T) {
	sess, err := helix.NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background(), NewIE(tiny(), 1).Build())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Values["f1"].(EvalReport)
	if f1 := rep.Metrics["f1"]; f1 < 0.5 {
		t.Fatalf("IE F1 %.3f < 0.5", f1)
	}
}

func TestIEMutationsNeverTouchParse(t *testing.T) {
	// Figure 5c's speedup rests on the parse being reusable forever.
	w := NewIE(tiny(), 1)
	base, _ := w.Build().Compile()
	base.DAG.ComputeSignatures()
	parseSig := base.DAG.Node("parsedDocs").ChainSignature()
	for it, comp := range w.Sequence() {
		if it == 0 {
			continue
		}
		w.Mutate(it, comp)
		p, err := w.Build().Compile()
		if err != nil {
			t.Fatal(err)
		}
		p.DAG.ComputeSignatures()
		if p.DAG.Node("parsedDocs").ChainSignature() != parseSig {
			t.Fatalf("iteration %d mutated the NLP parse", it)
		}
	}
}

func TestMNISTClassifiesDigits(t *testing.T) {
	sess, err := helix.NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background(), NewMNIST(tiny(), 1).Build())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Values["checked"].(EvalReport)
	if acc := rep.Metrics["accuracy"]; acc < 0.7 {
		t.Fatalf("MNIST accuracy %.3f < 0.7", acc)
	}
}

func TestMNISTRFFNeverReused(t *testing.T) {
	// When the learner changes (L/I iteration), its nondeterministic input
	// must be recomputed — never loaded from a previous draw (Definition 3)
	// — and its output must never reach the store.
	sess, err := helix.NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m := NewMNIST(tiny(), 1)
	res0, err := sess.Run(ctx, m.Build())
	if err != nil {
		t.Fatal(err)
	}
	if res0.Nodes["rffFeatures"].Bytes != 0 {
		t.Fatal("nondeterministic DPR output was materialized")
	}
	m.Mutate(1, core.LI)
	res, err := sess.Run(ctx, m.Build())
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes["rffFeatures"].State != core.StateCompute {
		t.Fatalf("rffFeatures state = %v, want fresh recompute on L/I change", res.Nodes["rffFeatures"].State)
	}
}

func TestMNISTPPRIterationReusesLI(t *testing.T) {
	// A PPR change reuses the materialized L/I output: DPR and L/I prune.
	sess, err := helix.NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m := NewMNIST(tiny(), 1)
	if _, err := sess.Run(ctx, m.Build()); err != nil {
		t.Fatal(err)
	}
	m.Mutate(4, core.PPR)
	res, err := sess.Run(ctx, m.Build())
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes["digitPred"].State == core.StateCompute {
		t.Fatal("PPR iteration recomputed the learner")
	}
	if res.Nodes["rffFeatures"].State == core.StateCompute {
		t.Fatal("PPR iteration recomputed the nondeterministic DPR")
	}
}

func TestSequencesMatchPaperShapes(t *testing.T) {
	census := NewCensus(tiny(), 1)
	if len(census.Sequence()) != 10 {
		t.Fatal("census sequence must have 10 iterations")
	}
	// Census: PPR dominates (social sciences, §6.5.2).
	var ppr int
	for _, c := range census.Sequence() {
		if c == core.PPR {
			ppr++
		}
	}
	if ppr < 5 {
		t.Fatalf("census PPR iterations = %d, want majority", ppr)
	}
	ie := NewIE(tiny(), 1)
	if len(ie.Sequence()) != 6 {
		t.Fatal("nlp sequence must have 6 iterations")
	}
	for _, c := range ie.Sequence() {
		if c != core.DPR {
			t.Fatal("nlp sequence must be all DPR")
		}
	}
	if len(NewGenomics(tiny(), 1).Sequence()) != 10 || len(NewMNIST(tiny(), 1).Sequence()) != 10 {
		t.Fatal("genomics/mnist sequences must have 10 iterations")
	}
}

func TestMutationsAreDeterministic(t *testing.T) {
	a, b := NewCensus(tiny(), 1), NewCensus(tiny(), 1)
	for it, comp := range a.Sequence() {
		if it == 0 {
			continue
		}
		a.Mutate(it, comp)
		b.Mutate(it, comp)
	}
	pa, err := a.Build().Compile()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Build().Compile()
	if err != nil {
		t.Fatal(err)
	}
	pa.DAG.ComputeSignatures()
	pb.DAG.ComputeSignatures()
	if pa.DAG.Len() != pb.DAG.Len() {
		t.Fatal("mutation divergence")
	}
	for _, n := range pa.DAG.Nodes() {
		m := pb.DAG.Node(n.Name)
		if m == nil || m.ChainSignature() != n.ChainSignature() {
			t.Fatalf("node %q diverged", n.Name)
		}
	}
}
