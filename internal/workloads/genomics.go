package workloads

import (
	"context"
	"fmt"

	"helix"
	"helix/internal/collection"
	"helix/internal/core"
	"helix/internal/data"
	"helix/internal/ml"
	"helix/internal/nlp"
)

// GenomicsCorpus bundles the literature corpus with the gene knowledge
// base (the workflow's two data sources, Table 2: "Multiple").
type GenomicsCorpus struct {
	Articles []data.Article
	KB       *data.GeneKB
}

// ApproxBytes implements the engine's Sizer.
func (g GenomicsCorpus) ApproxBytes() int64 {
	var b int64 = 32
	for _, a := range g.Articles {
		b += int64(len(a.ID) + len(a.Text))
	}
	b += int64(len(g.KB.Genes) * 16)
	return b
}

// Genomics is the gene-function-prediction workflow of Example 1: parse
// literature, identify gene mentions by joining with a knowledge base,
// learn word embeddings, cluster gene vectors, and summarize clusters.
// Both learning steps are unsupervised (Table 2).
type Genomics struct {
	ScaleCfg Scale
	Seed     int64

	// Knobs.
	articles     int
	minSentences int     // DPR knob: corpus expansion/shrinkage
	lowercase    bool    // DPR knob: tokenization variant
	embedDim     int     // L/I knob: embedding dimensionality
	embedAlgo    string  // L/I knob: "word2vec" or "line" (Example 1 iv)
	clusters     int     // L/I knob: K (Example 1 v)
	topMembers   int     // PPR knob: cluster summary size
	_            float64 // reserved
}

// NewGenomics returns the workload at its initial version.
func NewGenomics(scale Scale, seed int64) *Genomics {
	return &Genomics{
		ScaleCfg:     scale,
		Seed:         seed,
		articles:     scale.rows(300),
		minSentences: 8,
		lowercase:    true,
		embedDim:     24,
		embedAlgo:    "word2vec",
		clusters:     6,
		topMembers:   5,
	}
}

// Name implements Workload.
func (g *Genomics) Name() string { return "genomics" }

// Sequence implements Workload: a natural-sciences mixture of DPR and L/I
// iterations with occasional PPR, matching Figure 5(b)/6(b); the model
// change at iteration 4 leaves the expensive embedding learner unchanged
// so it can be pruned (paper §6.5.2: "one of the ML models takes
// considerably more time, and HELIX OPT is able to prune it in iteration
// 4 since it is not changed").
func (g *Genomics) Sequence() []core.Component {
	return []core.Component{
		core.DPR, core.LI, core.DPR, core.PPR, core.LI,
		core.PPR, core.LI, core.DPR, core.LI, core.PPR,
	}
}

// Mutate implements Workload.
func (g *Genomics) Mutate(iteration int, comp core.Component) {
	switch comp {
	case core.DPR:
		switch iteration % 2 {
		case 0:
			// Expand/shrink the literature corpus (Example 1 i).
			if g.articles == g.ScaleCfg.rows(300) {
				g.articles = g.ScaleCfg.rows(360)
			} else {
				g.articles = g.ScaleCfg.rows(300)
			}
		default:
			// Try a different tokenization (Example 1 iii).
			g.lowercase = !g.lowercase
		}
	case core.LI:
		switch iteration % 3 {
		case 0:
			// Change the embedding algorithm (Example 1 iv).
			if g.embedAlgo == "word2vec" {
				g.embedAlgo = "line"
			} else {
				g.embedAlgo = "word2vec"
			}
		case 1:
			// Tweak the number of clusters (Example 1 v). Changes only the
			// cheap clustering learner; the expensive embedding learner is
			// untouched and prunable.
			if g.clusters == 6 {
				g.clusters = 8
			} else {
				g.clusters = 6
			}
		default:
			if g.embedDim == 24 {
				g.embedDim = 32
			} else {
				g.embedDim = 24
			}
		}
	case core.PPR:
		if g.topMembers == 5 {
			g.topMembers = 8
		} else {
			g.topMembers = 5
		}
	}
}

// Build implements Workload.
func (g *Genomics) Build() *helix.Workflow {
	wf := helix.New("genomics")

	nArticles, sentences := g.articles, g.minSentences
	seed := g.Seed
	src := wf.Source("corpus", fmt.Sprintf("genomics articles=%d sentences=%d seed=%d", nArticles, sentences, seed),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			articles, kb := data.GenerateGenomics(data.GenomicsConfig{
				Articles:            nArticles,
				SentencesPerArticle: sentences,
				Genes:               60,
				Functions:           6,
				Seed:                seed,
			})
			return GenomicsCorpus{Articles: articles, KB: kb}, nil
		})

	lower := g.lowercase
	tokens := wf.Scanner("tokens", fmt.Sprintf("tokenize lowercase=%v", lower),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			corpus := in[0].(GenomicsCorpus)
			var out [][]string
			for _, a := range corpus.Articles {
				for _, s := range nlp.SplitSentences(a.Text) {
					toks := nlp.Tokenize(s)
					if !lower {
						// Identity variant: tokenization already lowercases;
						// model the "different NLP library" as a light
						// re-casing pass that preserves token identity for
						// downstream joins.
						for i := range toks {
							toks[i] = toks[i] + ""
						}
					}
					if len(toks) > 0 {
						out = append(out, toks)
					}
				}
			}
			return out, nil
		}, src)

	// geneMentions: join token stream against the knowledge base
	// (Example 1: "identified by joining with a genomic knowledge base"),
	// expressed on the dataflow substrate: flatten, filter by KB
	// membership, dedupe.
	mentions := wf.Synthesizer("geneMentions", "join(tokens, geneKB)",
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			sentences := in[0].([][]string)
			corpus := in[1].(GenomicsCorpus)
			env := collection.DefaultEnv()
			flat := collection.FlatMap(collection.New(env, sentences), func(s []string) []string {
				var hits []string
				for _, t := range s {
					if _, ok := corpus.KB.Genes[t]; ok {
						hits = append(hits, t)
					}
				}
				return hits
			})
			genes := collection.Distinct(flat, func(g string) string { return g }).Collect()
			return genes, nil
		}, tokens, src)

	// embeddings: the expensive unsupervised embedding learner.
	dim, algo := g.embedDim, g.embedAlgo
	embeddings := wf.Learner("embeddings", fmt.Sprintf("Embedding(algo=%s, dim=%d)", algo, dim),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			sentences := in[0].([][]string)
			w2v := ml.Word2Vec{Dim: dim, Epochs: 3, Seed: 11}
			if algo == "line" {
				// LINE's second-order proximity is approximated by a
				// narrower window and more negative samples.
				w2v.Window = 1
				w2v.Negatives = 8
			}
			return w2v.Fit(sentences)
		}, tokens)

	// geneVectors: dataset of embedding vectors for mentioned genes.
	geneVectors := wf.Synthesizer("geneVectors", "examples(gene embeddings)",
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			genes := in[0].([]string)
			emb := in[1].(*ml.Embeddings)
			ds := &ml.Dataset{Dim: emb.Dim}
			for _, gene := range genes {
				if v, ok := emb.Vector(gene); ok {
					ds.Examples = append(ds.Examples, ml.Example{X: v, ID: gene, Train: true})
				}
			}
			if len(ds.Examples) == 0 {
				return nil, fmt.Errorf("genomics: no gene vectors found")
			}
			return ds, nil
		}, mentions, embeddings)

	// clusters: k-means over gene vectors.
	k := g.clusters
	clusters := wf.Learner("clusters", fmt.Sprintf("KMeans(K=%d)", k),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			ds := in[0].(*ml.Dataset)
			kk := k
			if kk > len(ds.Examples) {
				kk = len(ds.Examples)
			}
			return ml.KMeans{K: kk, Seed: 13}.Fit(ds)
		}, geneVectors)

	// clusterSummary: qualitative PPR output.
	top := g.topMembers
	wf.Reducer("clusterSummary", fmt.Sprintf("summary(top=%d)", top),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			model := in[0].(*ml.KMeansModel)
			ds := in[1].(*ml.Dataset)
			return ml.SummarizeClusters(model, ds, top), nil
		}, clusters, geneVectors).
		IsOutput()

	return wf
}
