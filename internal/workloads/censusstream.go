package workloads

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"helix"
)

// CensusStream is the streaming counterpart of the census workflow: the
// same shape — CSV lines, field parsing, normalization, filtering, an
// aggregate — expressed through the row-wise streaming API (FlatMapRows /
// MapRows / FilterRows), so the parse→norm→keep chain fuses into one
// per-row pipeline. Batch execution of the identical workflow holds every
// intermediate column (3·rows float64s per stage) live at once; fused
// execution holds one row. The peak-RSS benchmark measures exactly that
// difference, and the byte-identity test asserts both modes produce the
// same aggregate to the bit.
//
// rows and seed enter the source's params string, so changing either
// deprecates the whole chain as a DPR change would.
func CensusStream(rows int, seed int64) *helix.Workflow {
	wf := helix.New("census-stream")
	lines := wf.Source("lines", fmt.Sprintf("rows=%d seed=%d", rows, seed),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			return censusLines(rows, seed), nil
		})
	// One CSV line → its three numeric fields (age, hours, wage).
	parse := helix.FlatMapRows(wf, "parse", "fields=age,hours,wage", func(line string) []float64 {
		fields := strings.Split(line, ",")
		out := make([]float64, 0, 3)
		for _, f := range fields[:3] {
			v, _ := strconv.ParseFloat(f, 64)
			out = append(out, v)
		}
		return out
	}, lines)
	norm := helix.MapRows(wf, "norm", "scale=0.01", func(v float64) float64 {
		return v * 0.01
	}, parse)
	keep := helix.FilterRows(wf, "keep", "min=0.18", func(v float64) bool {
		return v > 0.18
	}, norm)
	wf.Reducer("stats", "sum,count,mean", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		var sum float64
		var n int
		if vs, ok := in[0].([]float64); ok {
			for _, v := range vs {
				sum += v
			}
			n = len(vs)
		}
		mean := 0.0
		if n > 0 {
			mean = sum / float64(n)
		}
		return []float64{float64(n), sum, mean}, nil
	}, keep).IsOutput()
	return wf
}

// censusLines deterministically synthesizes rows CSV lines shaped like
// the adult-census extract: age,hours,wage,class.
func censusLines(rows int, seed int64) []string {
	out := make([]string, rows)
	x := uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	classes := [4]string{"private", "gov", "self", "other"}
	var b strings.Builder
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		age := 17 + (x>>33)%70
		hours := 1 + (x>>17)%99
		wage := float64((x>>3)%100000) / 100
		b.Reset()
		b.Grow(32)
		b.WriteString(strconv.FormatUint(age, 10))
		b.WriteByte(',')
		b.WriteString(strconv.FormatUint(hours, 10))
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(wage, 'f', 2, 64))
		b.WriteByte(',')
		b.WriteString(classes[x%4])
		out[i] = b.String()
	}
	return out
}
