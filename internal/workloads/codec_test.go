package workloads

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"helix/internal/data"
	"helix/internal/ml"
	"helix/internal/store"
)

// TestCodecExtRoundTrip drives each registered workload extension through
// the binary codec's full Encode/Decode path and demands exact value
// equality, plus a size win over the gob escape hatch the extension
// replaces — the point of registering at all.
func TestCodecExtRoundTrip(t *testing.T) {
	RegisterAll()

	rows := make([]TaggedRow, 400)
	for i := range rows {
		rows[i] = TaggedRow{
			Row: data.Row{
				"age":       fmt.Sprint(20 + i%60),
				"workclass": []string{"private", "state", "self"}[i%3],
				"income":    []string{"<=50K", ">50K"}[i%2],
			},
			Train: i%4 != 0,
		}
	}
	// One ragged row: schemas are uniform in practice, but the presence
	// bitmaps must survive a row missing a field.
	delete(rows[7].Row, "workclass")

	col := Column{Name: "age", Values: make([]ml.FeatureValue, 400)}
	for i := range col.Values {
		if i%5 == 0 {
			col.Values[i] = ml.Cat([]string{"low", "mid", "high"}[i%3])
		} else {
			col.Values[i] = ml.Num(float64(i) / 7)
		}
	}

	preds := Predictions{
		Scores: make([]float64, 400),
		Labels: make([]float64, 400),
		Train:  make([]bool, 400),
	}
	for i := range preds.Scores {
		// Full-precision sigmoid outputs, like a real fitted model emits.
		preds.Scores[i] = 1 / (1 + math.Exp(-float64(i-200)/37))
		preds.Labels[i] = float64(i % 2)
		preds.Train[i] = i%4 != 0
	}

	for _, tc := range []struct {
		name  string
		value any
	}{
		{"tagged-rows", rows},
		{"column", col},
		{"predictions", preds},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bin, err := store.BinaryCodec{}.Encode(tc.value)
			if err != nil {
				t.Fatalf("binary encode: %v", err)
			}
			back, err := store.BinaryCodec{}.Decode(bin)
			if err != nil {
				t.Fatalf("binary decode: %v", err)
			}
			if !reflect.DeepEqual(back, tc.value) {
				t.Fatalf("round trip changed value:\n got %#v\nwant %#v", back, tc.value)
			}
			gob, err := store.GobCodec{}.Encode(tc.value)
			if err != nil {
				t.Fatalf("gob encode: %v", err)
			}
			if len(bin) >= len(gob) {
				t.Fatalf("columnar encoding not smaller: binary %dB vs gob %dB", len(bin), len(gob))
			}
			t.Logf("binary %dB vs gob %dB (%.1f×)", len(bin), len(gob), float64(len(gob))/float64(len(bin)))
		})
	}
}
