package workloads

import (
	"context"
	"testing"

	"helix"
)

// TestMNISTAccuracyDiagnostic logs the achieved accuracy so tuning
// regressions are visible in verbose runs.
func TestMNISTAccuracyDiagnostic(t *testing.T) {
	sess, err := helix.NewSession(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background(), NewMNIST(tiny(), 1).Build())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Values["checked"].(EvalReport)
	t.Logf("mnist accuracy = %.3f", rep.Metrics["accuracy"])
}
