package workloads

import (
	"context"
	"fmt"
	"math"
	"time"

	"helix"
)

// Ingest is the continuous-ingest workload: the paper's mini-batch
// streaming adaptation (§5.3) grown into a windowed pipeline whose DAG
// topology never changes across ticks. It keeps Window batch slots, each
// a batch→parse→feat chain over one mini-batch of rows, all feeding a
// windowed suffix (window synthesizer → model learner → metrics reducer,
// the declared output).
//
// Node names are stable — batch0..batchW-1, parse<i>, feat<i>, window,
// model, metrics — so across ticks only operator params change. A
// delivered batch enters its slot's SOURCE params, marking exactly that
// slot's chain original and dirtying the windowed suffix downstream; the
// other W-1 slots are byte-identical and reusable from the store. That
// is precisely the shape incremental planning exploits: a delivery tick
// is a partial plan-cache hit (only the dirty weak component re-solves),
// and a quiet tick following a tick that computed nothing is a full
// fingerprint hit.
//
// Operator bodies sleep for a few milliseconds of simulated compute (the
// values themselves are cheap deterministic arithmetic), so loading a
// materialized slot (~1 ms at the paper's 170 MB/s disk) genuinely beats
// recomputing it and the solver's load-vs-compute trade-off is real.
type Ingest struct {
	window int
	rows   int
	// batch holds the current batch id per slot; Deliver bumps one.
	batch []int
	// sliding switches the window semantics: Slide evicts the oldest
	// slot (a ring buffer) and the synthesizer concatenates slots in
	// arrival order. head indexes the oldest slot.
	sliding bool
	head    int
}

// Per-operator simulated compute costs. Parse and feat dominate so that
// reusing a clean slot (one ~1 ms load instead of sleepParse+sleepFeat of
// compute) yields visible per-tick savings.
const (
	sleepSource  = 2 * time.Millisecond
	sleepParse   = 3 * time.Millisecond
	sleepFeat    = 4 * time.Millisecond
	sleepWindow  = 3 * time.Millisecond
	sleepModel   = 5 * time.Millisecond
	sleepMetrics = time.Millisecond
)

// NewIngest returns an ingest pipeline with the given number of batch
// slots (minimum 2), every slot initially holding batch id 0. Scale.Rows
// multiplies the per-batch row count (base 4000 floats ≈ 32 KB
// materialized, so a load costs ~1 ms against several ms of compute).
func NewIngest(window int, scale Scale) *Ingest {
	if window < 2 {
		window = 2
	}
	return &Ingest{
		window: window,
		rows:   scale.rows(4000),
		batch:  make([]int, window),
	}
}

// NewSlidingIngest returns the sliding-window variant of the pipeline:
// instead of a delivery replacing a schedule-chosen slot in place
// (tumbling), each Slide evicts the oldest batch from a ring of Window
// slots and the window synthesizer concatenates the slots oldest-first.
// The slot chains keep their stable names, so a slide still dirties
// exactly one source chain; only the synthesizer's param (which records
// the ring's head) changes besides it, which is what keeps delivery
// ticks partial plan-cache hits rather than cold solves.
func NewSlidingIngest(window int, scale Scale) *Ingest {
	g := NewIngest(window, scale)
	g.sliding = true
	return g
}

// Name identifies the workload.
func (g *Ingest) Name() string { return "ingest" }

// Window returns the number of batch slots.
func (g *Ingest) Window() int { return g.window }

// Mode reports the window semantics: "tumbling" or "sliding".
func (g *Ingest) Mode() string {
	if g.sliding {
		return "sliding"
	}
	return "tumbling"
}

// Deliver records the arrival of a new batch in the given slot; the next
// Build reflects it. Batch ids need only be distinct per slot over time.
// Sliding-window pipelines use Slide instead.
func (g *Ingest) Deliver(slot, batchID int) {
	g.batch[slot%g.window] = batchID
}

// Slide pushes a new batch into a sliding window: the oldest slot is
// overwritten in place and the ring head advances, so the W-1 surviving
// batches keep their slot (and their materialized chain) byte-identical.
func (g *Ingest) Slide(batchID int) {
	g.batch[g.head] = batchID
	g.head = (g.head + 1) % g.window
}

// Build constructs the workflow for the slots' current batch ids.
func (g *Ingest) Build() *helix.Workflow {
	wf := helix.New("ingest")
	feats := make([]*helix.Op, g.window)
	for i := 0; i < g.window; i++ {
		slot, id, rows := i, g.batch[i], g.rows

		src := wf.Source(fmt.Sprintf("batch%d", i),
			fmt.Sprintf("ingest slot=%d batch=%d", i, id),
			func(ctx context.Context, in []helix.Value) (helix.Value, error) {
				time.Sleep(sleepSource)
				return batchRows(slot, id, rows), nil
			})

		parse := wf.Scanner(fmt.Sprintf("parse%d", i), "decode v1",
			func(ctx context.Context, in []helix.Value) (helix.Value, error) {
				time.Sleep(sleepParse)
				rows := in[0].([]float64)
				out := make([]float64, len(rows))
				for j, v := range rows {
					out[j] = math.Abs(v) * 0.5
				}
				return out, nil
			}, src)

		feats[i] = wf.Extractor(fmt.Sprintf("feat%d", i), "slot stats v1",
			func(ctx context.Context, in []helix.Value) (helix.Value, error) {
				time.Sleep(sleepFeat)
				rows := in[0].([]float64)
				var sum, sq, mx float64
				for _, v := range rows {
					sum += v
					sq += v * v
					if v > mx {
						mx = v
					}
				}
				n := float64(len(rows))
				return []float64{sum / n, sq / n, mx, n}, nil
			}, parse)
	}

	// Tumbling windows concatenate slots in slot order with a fixed
	// param; sliding windows concatenate oldest-first. The rotation
	// happens inside the operator body — NOT by reordering the
	// synthesizer's parents — so the DAG topology is byte-stable across
	// slides and the plan cache keeps serving partial hits; the param
	// records the ring head, which is what carries the reordering into
	// the chain signature.
	winParam := fmt.Sprintf("tumbling w=%d v1", g.window)
	if g.sliding {
		winParam = fmt.Sprintf("sliding w=%d head=%d v1", g.window, g.head)
	}
	head := g.head
	sliding := g.sliding
	win := wf.Synthesizer("window", winParam,
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			time.Sleep(sleepWindow)
			var out []float64
			for i := range in {
				j := i
				if sliding {
					j = (head + i) % len(in)
				}
				out = append(out, in[j].([]float64)...)
			}
			return out, nil
		}, feats...)

	model := wf.Learner("model", "ridge v1",
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			time.Sleep(sleepModel)
			f := in[0].([]float64)
			w := make([]float64, 4)
			for j, v := range f {
				w[j%4] += v / (1 + float64(j))
			}
			return w, nil
		}, win)

	wf.Reducer("metrics", "window eval v1",
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			time.Sleep(sleepMetrics)
			w := in[0].([]float64)
			var norm float64
			for _, v := range w {
				norm += v * v
			}
			return EvalReport{Metrics: map[string]float64{
				"norm":   math.Sqrt(norm),
				"window": float64(len(w)),
			}}, nil
		}, model).IsOutput()

	return wf
}

// batchRows generates the deterministic mini-batch for (slot, batch id):
// same ids, same bytes, so clean slots stay reusable across ticks.
func batchRows(slot, id, n int) []float64 {
	x := uint64(slot+1)*0x9E3779B97F4A7C15 ^ uint64(id+1)*0xBF58476D1CE4E5B9
	rows := make([]float64, n)
	for i := range rows {
		x = x*6364136223846793005 + 1442695040888963407
		rows[i] = float64(int64(x>>24)%2000)/10 - 100
	}
	return rows
}
