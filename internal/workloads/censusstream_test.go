package workloads

import (
	"bytes"
	"context"
	"testing"

	"helix"
	"helix/internal/store"
)

// TestCensusStreamByteIdentical is the acceptance check behind the
// streaming benchmark's numbers: the census-scale pipeline produces
// byte-identical outputs (under canonical encoding) whether the
// parse→norm→keep chain runs fused per-row or as three batch operators.
func TestCensusStreamByteIdentical(t *testing.T) {
	wf := CensusStream(20000, 1)

	on, err := helix.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	p, err := on.Plan(wf)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fused) != 1 || len(p.Fused[0]) != 3 {
		t.Fatalf("Fused = %v, want one group of 3 (parse, norm, keep)", p.Fused)
	}
	resOn, err := on.Run(context.Background(), wf)
	if err != nil {
		t.Fatal(err)
	}

	off, err := helix.Open(t.TempDir(), helix.WithStreaming(false))
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	resOff, err := off.Run(context.Background(), wf)
	if err != nil {
		t.Fatal(err)
	}

	stats, ok := resOn.Values["stats"].([]float64)
	if !ok || len(stats) != 3 || stats[0] == 0 {
		t.Fatalf("stats = %#v, want [count sum mean] with count > 0", resOn.Values["stats"])
	}
	for name, v := range resOn.Values {
		a, err := store.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := store.Encode(resOff.Values[name])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("output %q differs between streaming and batch execution", name)
		}
	}
}
