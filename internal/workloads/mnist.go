package workloads

import (
	"context"
	"fmt"
	"sync/atomic"

	"helix"
	"helix/internal/core"
	"helix/internal/data"
	"helix/internal/ml"
)

// MNIST is the digit-classification workflow from KeystoneML's evaluation
// (MnistRandomFFT; paper §6.2). Its data preprocessing draws a fresh
// random Fourier projection every run — nondeterministic and therefore
// never reusable — and produces large intermediates, so the only
// profitable reuse is of the small L/I outputs on PPR iterations
// (paper §6.5.2, Figure 5d/6d).
type MNIST struct {
	ScaleCfg Scale
	Seed     int64

	trainImages, testImages int
	side                    int
	rffDim                  int     // DPR knob: random feature count
	gamma                   float64 // DPR knob: RBF bandwidth
	regParam                float64 // L/I knob
	epochs                  int     // L/I knob
	metric                  string  // PPR knob

	// runCounter feeds the fresh projection seed each execution, modeling
	// the paper's unseeded randomness while keeping tests reproducible at
	// the process level.
	runCounter atomic.Int64
}

// NewMNIST returns the workload at its initial version.
func NewMNIST(scale Scale, seed int64) *MNIST {
	return &MNIST{
		ScaleCfg:    scale,
		Seed:        seed,
		trainImages: scale.rows(1500),
		testImages:  scale.rows(400),
		side:        16,
		rffDim:      192,
		gamma:       0.1,
		regParam:    0.01,
		epochs:      12,
		metric:      "accuracy",
	}
}

// Name implements Workload.
func (m *MNIST) Name() string { return "mnist" }

// Sequence implements Workload: a computer-vision mixture of DPR, L/I and
// PPR iterations (Figure 5d/6d).
func (m *MNIST) Sequence() []core.Component {
	return []core.Component{
		core.DPR, core.LI, core.DPR, core.LI, core.PPR,
		core.LI, core.DPR, core.PPR, core.LI, core.PPR,
	}
}

// Mutate implements Workload.
func (m *MNIST) Mutate(iteration int, comp core.Component) {
	switch comp {
	case core.DPR:
		if iteration%2 == 0 {
			if m.rffDim == 192 {
				m.rffDim = 256
			} else {
				m.rffDim = 192
			}
		} else {
			if m.gamma == 0.1 {
				m.gamma = 0.05
			} else {
				m.gamma = 0.1
			}
		}
	case core.LI:
		if iteration%2 == 0 {
			if m.regParam == 0.01 {
				m.regParam = 0.1
			} else {
				m.regParam = 0.01
			}
		} else {
			if m.epochs == 12 {
				m.epochs = 16
			} else {
				m.epochs = 12
			}
		}
	case core.PPR:
		if m.metric == "accuracy" {
			m.metric = "confusion"
		} else {
			m.metric = "accuracy"
		}
	}
}

// Build implements Workload.
func (m *MNIST) Build() *helix.Workflow {
	wf := helix.New("mnist")

	nTrain, nTest, side, seed := m.trainImages, m.testImages, m.side, m.Seed
	src := wf.Source("images", fmt.Sprintf("digits train=%d test=%d side=%d seed=%d", nTrain, nTest, side, seed),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			return data.GenerateDigits(data.DigitsConfig{
				TrainImages: nTrain, TestImages: nTest, Side: side, Seed: seed,
			}), nil
		})

	pixels := wf.Scanner("pixels", "flatten+scale", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		imgs := in[0].([]data.Image)
		ds := &ml.Dataset{Dim: side * side, Examples: make([]ml.Example, len(imgs))}
		for i, im := range imgs {
			ds.Examples[i] = ml.Example{X: ml.DenseVector(im.Pixels), Y: float64(im.Label), Train: im.Train}
		}
		return ds, nil
	}, src)

	// rffFeatures: nondeterministic random Fourier features — the paper's
	// nonreusable DPR step with large output.
	rffDim, gamma := m.rffDim, m.gamma
	counter := &m.runCounter
	rff := wf.Extractor("rffFeatures", fmt.Sprintf("RandomFFT(D=%d, gamma=%g)", rffDim, gamma),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			ds := in[0].(*ml.Dataset)
			// Fresh projection every run: this operator is declared
			// Nondeterministic, so HELIX never reuses its output.
			runSeed := seed*1000 + counter.Add(1)
			proj, err := ml.NewRFF(ds.Dim, rffDim, gamma, runSeed)
			if err != nil {
				return nil, err
			}
			return proj.ProjectDataset(ds), nil
		}, pixels)
	rff.Nondeterministic()

	reg, ep := m.regParam, m.epochs
	predictions := wf.Learner("digitPred", fmt.Sprintf("Learner(Softmax, reg=%g, epochs=%d)", reg, ep),
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			ds := in[0].(*ml.Dataset)
			model, err := ml.SoftmaxRegression{Classes: 10, RegParam: reg, Epochs: ep, LearningRate: 0.5, Seed: 7}.Fit(ds)
			if err != nil {
				return nil, err
			}
			p := Predictions{
				Scores: make([]float64, len(ds.Examples)),
				Labels: make([]float64, len(ds.Examples)),
				Train:  make([]bool, len(ds.Examples)),
			}
			for i, e := range ds.Examples {
				p.Scores[i] = model.Predict(e.X)
				p.Labels[i] = e.Y
				p.Train[i] = e.Train
			}
			return p, nil
		}, rff)

	metric := m.metric
	wf.Reducer("checked", "Reducer(metric="+metric+", split=test)",
		func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			p := in[0].(Predictions)
			rep := EvalReport{Metrics: map[string]float64{}}
			var n, correct int
			perClassWrong := make([]int, 10)
			for i := range p.Scores {
				if p.Train[i] {
					continue
				}
				n++
				if p.Scores[i] == p.Labels[i] {
					correct++
				} else if int(p.Labels[i]) < 10 {
					perClassWrong[int(p.Labels[i])]++
				}
			}
			if n > 0 {
				rep.Metrics["accuracy"] = float64(correct) / float64(n)
			}
			if metric == "confusion" {
				for k, w := range perClassWrong {
					rep.Metrics[fmt.Sprintf("wrong_%d", k)] = float64(w)
				}
			}
			return rep, nil
		}, predictions).
		IsOutput()

	return wf
}
