package bench

import (
	"context"
	"fmt"
	"strings"

	"helix/internal/sim"
)

// WriteBehindResult is the A/B comparison behind the write-behind
// materialization pipeline: the same materialization-heavy workload run
// with inline (write-through) materialization versus the write-behind
// writer pool. Sync pays serialize+write on the critical path of every
// retiring node; async overlaps it with computation, so the comparison
// isolates exactly how much of the materialization bill leaves
// wall-clock time.
type WriteBehindResult struct {
	Workload string
	// SyncWall / AsyncWall are cumulative wall-clock seconds across the
	// iteration series for each mode.
	SyncWall, AsyncWall float64
	// SyncMat / AsyncMat are cumulative serialize+write seconds — the
	// accounting stays honest in both modes, only its placement changes.
	SyncMat, AsyncMat float64
	// AsyncFlush is the cumulative post-compute wait for write-behind
	// stragglers at each iteration's flush barrier.
	AsyncFlush float64
}

// SavedFraction reports what fraction of sync mode's materialization time
// the async pipeline removed from the caller-observable critical path:
// (sync − (async + flush)) / syncMat. The flush-barrier wait counts
// against async — Session.Run blocks there before returning, so it is
// latency the user still pays. Values near 1 mean materialization fully
// left the critical path.
func (r *WriteBehindResult) SavedFraction() float64 {
	if r.SyncMat <= 0 {
		return 0
	}
	return (r.SyncWall - r.AsyncWall - r.AsyncFlush) / r.SyncMat
}

// WriteBehind runs the A/B comparison on the census workload under the
// always-materialize policy — the most materialization-heavy
// configuration the evaluation has (every intermediate is serialized and
// written, paper §6.6) — once per mode, on separate stores.
func WriteBehind(ctx context.Context, cfg Config) (*WriteBehindResult, error) {
	out := &WriteBehindResult{Workload: "census"}
	for _, mode := range []sim.MatMode{sim.MatSync, sim.MatAsync} {
		wl, err := sim.NewWorkload(out.Workload, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		res, err := sim.RunSeries(ctx, wl, sim.HelixAM, sim.Config{
			Iterations: cfg.Iterations,
			Mat:        mode,
		})
		if err != nil {
			return nil, err
		}
		var wall, mat, flush float64
		for _, m := range res.Metrics {
			wall += m.Seconds
			mat += m.MatSeconds
			flush += m.FlushSeconds
		}
		if mode == sim.MatSync {
			out.SyncWall, out.SyncMat = wall, mat
		} else {
			out.AsyncWall, out.AsyncMat = wall, mat
			out.AsyncFlush = flush
		}
	}
	return out, nil
}

// String renders the comparison.
func (r *WriteBehindResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Write-behind materialization — %s / helix-am\n", r.Workload)
	fmt.Fprintf(&b, "%-28s %10s %10s\n", "", "sync", "async")
	fmt.Fprintf(&b, "%-28s %10.3f %10.3f\n", "wall-clock (s)", r.SyncWall, r.AsyncWall)
	fmt.Fprintf(&b, "%-28s %10.3f %10.3f\n", "serialize+write (s)", r.SyncMat, r.AsyncMat)
	fmt.Fprintf(&b, "%-28s %10s %10.3f\n", "flush-barrier wait (s)", "-", r.AsyncFlush)
	fmt.Fprintf(&b, "materialization removed from wall-clock: %.0f%%\n", 100*r.SavedFraction())
	return b.String()
}
