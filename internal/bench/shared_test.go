package bench

import (
	"context"
	"os"
	"testing"

	"helix/internal/sim"
	"helix/internal/workloads"
)

// sharedOutPath is where BenchmarkSharedWarmStart writes its JSON
// summary; override with HELIX_BENCH_SHARED_OUT. CI uploads the file
// alongside the other bench artifacts.
func sharedOutPath() string {
	if p := os.Getenv("HELIX_BENCH_SHARED_OUT"); p != "" {
		return p
	}
	return "BENCH_shared.json"
}

// BenchmarkSharedWarmStart measures the cross-session reuse win: four
// sessions attach to one shared content-addressed store and run the
// census workload. The cold session computes and publishes everything;
// each warm session's first run must answer entirely from the shared
// store and the process-wide plan cache — a full fingerprint hit with
// zero max-flow solves and zero computed operators — and a final session
// running a mutated variant recomputes only its changed suffix. The
// acceptance floors asserted here: warm wall ≥ 2× faster than cold,
// shared-prefix artifacts stored exactly once (warm sessions publish
// nothing), and the suffix session computing strictly less than cold.
func BenchmarkSharedWarmStart(b *testing.B) {
	workloads.RegisterAll()
	series, err := sim.RunSharedWarmStart(context.Background(), "census",
		workloads.Scale{Rows: 4, CostFactor: 40}, 1, 4, b.TempDir())
	if err != nil {
		b.Fatal(err)
	}

	cold := series.Cold
	if cold.Computes == 0 {
		b.Fatalf("cold session computed nothing (plan %s) — store not empty at start?", cold.PlanCache)
	}
	var warmWorst, warmSolves float64
	for _, w := range series.Warm {
		if w.PlanCache != "hit" {
			b.Fatalf("warm session %d first plan outcome %q, want a shared-cache full hit", w.Session, w.PlanCache)
		}
		if w.Solves != 0 {
			b.Fatalf("warm session %d first plan performed %d max-flow solves, want 0", w.Session, w.Solves)
		}
		if w.Computes != 0 {
			b.Fatalf("warm session %d recomputed %d operators, want 0 (all published)", w.Session, w.Computes)
		}
		if w.Seconds > warmWorst {
			warmWorst = w.Seconds
		}
		warmSolves += float64(w.Solves)
	}
	if cold.Seconds < 2*warmWorst {
		b.Fatalf("warm start too slow: cold %.3fs vs worst warm %.3fs (%.1f×, want ≥2×)",
			cold.Seconds, warmWorst, cold.Seconds/warmWorst)
	}
	// Write-once dedup: the warm sessions ran the identical workflow, so
	// the store must hold exactly the artifacts the cold session published.
	if series.ArtifactsAfter != series.Artifacts {
		b.Fatalf("warm sessions grew the store: %d artifacts after cold, %d after warm — shared-prefix artifacts must be stored exactly once",
			series.Artifacts, series.ArtifactsAfter)
	}
	// Overlapping-prefix reuse under change: the mutated variant shares
	// the workflow's unchanged prefix with the published artifacts, so it
	// must compute strictly fewer operators than the cold session did.
	if series.Suffix.Computes >= cold.Computes {
		b.Fatalf("suffix session computed %d operators, cold computed %d — prefix sharing failed",
			series.Suffix.Computes, cold.Computes)
	}

	b.ReportMetric(cold.Seconds*1e9, "cold-ns/session")
	b.ReportMetric(warmWorst*1e9, "warm-ns/session")
	b.ReportMetric(cold.Seconds/warmWorst, "speedup")
	recordMetricsTo(b, sharedOutPath(), map[string]float64{
		"shared_cold_wall_ns":    cold.Seconds * 1e9,
		"shared_warm_wall_ns":    warmWorst * 1e9,
		"shared_warm_speedup":    cold.Seconds / warmWorst,
		"shared_warm_solves":     warmSolves,
		"shared_artifacts":       float64(series.Artifacts),
		"shared_artifacts_after": float64(series.ArtifactsAfter),
		"shared_cold_computes":   float64(cold.Computes),
		"shared_suffix_computes": float64(series.Suffix.Computes),
		"shared_storage_bytes":   float64(series.StorageBytes),
	})
}
