// Package bench regenerates every table and figure of the paper's
// evaluation (§6). Each experiment function runs the relevant workloads
// and systems via the sim package and returns a structured result whose
// String method prints rows in the shape the paper reports — per-iteration
// and cumulative run times (Figure 5), component breakdowns (Figure 6),
// scaling series (Figure 7), state fractions (Figure 8), materialization
// policy comparisons and storage (Figure 9), memory (Figure 10), and the
// support matrices (Tables 1-2).
//
// Absolute numbers differ from the paper's (their substrate is a 16-core
// Spark server over hours-long workloads; ours is a process-local
// simulator over seconds-long synthetic equivalents) but the comparative
// shapes — who wins, by what factor, where crossovers fall — are the
// reproduction targets. EXPERIMENTS.md records both sides.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"helix/internal/core"
	"helix/internal/sim"
	"helix/internal/workloads"
)

// Config selects the workload scale for all experiments.
type Config struct {
	Scale workloads.Scale
	Seed  int64
	// Iterations caps iterations per series (0 = full paper schedule).
	Iterations int
}

// DefaultConfig is the test-scale configuration.
func DefaultConfig() Config {
	return Config{Scale: workloads.Scale{Rows: 1, CostFactor: 40}, Seed: 1}
}

// Series is one plotted line: per-iteration seconds and their cumulative
// sum for one workload under one system.
type Series struct {
	Workload, System string
	Types            []core.Component
	Seconds          []float64
	// Projected is the per-iteration T(W,s) projection of the executed
	// plan (Equation 1) — the optimizer's own forecast, recorded beside
	// the measured Seconds so cost-model fidelity is benchmarkable.
	Projected []float64
	// PlanSeconds is the per-iteration planning time; PlanCache is the
	// matching cache outcome ("cold", "partial", "hit"). Together they
	// quantify what the plan cache saves: the cold-vs-cached delta per
	// iteration.
	PlanSeconds     []float64
	PlanCache       []string
	Cumulative      []float64
	Storage         []int64
	PeakMem, AvgMem []uint64
	MatSeconds      []float64
	Breakdown       []map[core.Component]float64
	States          []map[core.State]int
}

func toSeries(r *sim.SeriesResult) Series {
	s := Series{Workload: r.Workload, System: r.System, Cumulative: r.Cumulative()}
	for _, m := range r.Metrics {
		s.Types = append(s.Types, m.Type)
		s.Seconds = append(s.Seconds, m.Seconds)
		s.Projected = append(s.Projected, m.ProjectedSeconds)
		s.PlanSeconds = append(s.PlanSeconds, m.PlanSeconds)
		s.PlanCache = append(s.PlanCache, m.PlanCache)
		s.Storage = append(s.Storage, m.StorageBytes)
		s.PeakMem = append(s.PeakMem, m.PeakMemBytes)
		s.AvgMem = append(s.AvgMem, m.AvgMemBytes)
		s.MatSeconds = append(s.MatSeconds, m.MatSeconds)
		s.Breakdown = append(s.Breakdown, m.Breakdown)
		s.States = append(s.States, m.States)
	}
	return s
}

// Total returns the series' cumulative run time.
func (s Series) Total() float64 {
	if len(s.Cumulative) == 0 {
		return 0
	}
	return s.Cumulative[len(s.Cumulative)-1]
}

func runOne(ctx context.Context, workload string, system sim.System, cfg Config, mem bool) (Series, error) {
	wl, err := sim.NewWorkload(workload, cfg.Scale, cfg.Seed)
	if err != nil {
		return Series{}, err
	}
	res, err := sim.RunSeries(ctx, wl, system, sim.Config{Iterations: cfg.Iterations, SampleMemory: mem})
	if err != nil {
		return Series{}, err
	}
	return toSeries(res), nil
}

// FigureWorkloads are the four evaluation workflows in paper order.
var FigureWorkloads = []string{"census", "genomics", "nlp", "mnist"}

// Fig5Result holds Figure 5: cumulative run time per workload for
// HELIX OPT, KeystoneML, and DeepDive.
type Fig5Result struct {
	Series map[string][]Series // workload → series per system
}

// Fig5 runs the cumulative-run-time comparison (Figure 5a-d).
func Fig5(ctx context.Context, cfg Config) (*Fig5Result, error) {
	out := &Fig5Result{Series: make(map[string][]Series, len(FigureWorkloads))}
	systems := []sim.System{sim.HelixOpt, sim.KeystoneML, sim.DeepDive}
	for _, wlName := range FigureWorkloads {
		for _, sys := range systems {
			if !sim.Supports(sys.Name, wlName) {
				continue
			}
			s, err := runOne(ctx, wlName, sys, cfg, false)
			if err != nil {
				return nil, err
			}
			out.Series[wlName] = append(out.Series[wlName], s)
		}
	}
	return out, nil
}

// Speedup returns the ratio of another system's cumulative time to
// HELIX OPT's on the given workload (the paper's headline "up to 19×").
func (r *Fig5Result) Speedup(workload, versus string) float64 {
	var opt, other float64
	for _, s := range r.Series[workload] {
		switch s.System {
		case "helix-opt":
			opt = s.Total()
		case versus:
			other = s.Total()
		}
	}
	if opt == 0 {
		return 0
	}
	return other / opt
}

// String renders Figure 5 as per-iteration cumulative columns.
func (r *Fig5Result) String() string {
	var b strings.Builder
	for _, wl := range FigureWorkloads {
		series := r.Series[wl]
		if len(series) == 0 {
			continue
		}
		fmt.Fprintf(&b, "Figure 5 — %s: cumulative run time (s)\n", wl)
		fmt.Fprintf(&b, "%-6s %-5s", "iter", "type")
		for _, s := range series {
			fmt.Fprintf(&b, " %12s", s.System)
		}
		b.WriteByte('\n')
		n := 0
		for _, s := range series {
			if len(s.Cumulative) > n {
				n = len(s.Cumulative)
			}
		}
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "%-6d %-5s", i, series[0].Types[min(i, len(series[0].Types)-1)])
			for _, s := range series {
				if i < len(s.Cumulative) {
					fmt.Fprintf(&b, " %12.3f", s.Cumulative[i])
				} else {
					fmt.Fprintf(&b, " %12s", "-")
				}
			}
			b.WriteByte('\n')
		}
		for _, vs := range []string{"keystoneml", "deepdive"} {
			if sp := r.Speedup(wl, vs); sp > 0 {
				fmt.Fprintf(&b, "  helix-opt speedup vs %s: %.1f×\n", vs, sp)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig6Result holds Figure 6: HELIX OPT's per-iteration run time broken
// down by workflow component plus materialization time.
type Fig6Result struct {
	Series map[string]Series
}

// Fig6 runs the per-iteration breakdown (Figure 6a-d).
func Fig6(ctx context.Context, cfg Config) (*Fig6Result, error) {
	out := &Fig6Result{Series: make(map[string]Series, len(FigureWorkloads))}
	for _, wlName := range FigureWorkloads {
		s, err := runOne(ctx, wlName, sim.HelixOpt, cfg, false)
		if err != nil {
			return nil, err
		}
		out.Series[wlName] = s
	}
	return out, nil
}

// String renders Figure 6 rows: iteration, type, DPR, L/I, PPR, Mat.
func (r *Fig6Result) String() string {
	var b strings.Builder
	for _, wl := range FigureWorkloads {
		s, ok := r.Series[wl]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "Figure 6 — %s: HELIX OPT run time breakdown (s)\n", wl)
		fmt.Fprintf(&b, "%-6s %-5s %10s %10s %10s %10s\n", "iter", "type", "DPR", "L/I", "PPR", "Mat")
		for i := range s.Seconds {
			bd := s.Breakdown[i]
			fmt.Fprintf(&b, "%-6d %-5s %10.3f %10.3f %10.3f %10.3f\n",
				i, s.Types[i], bd[core.DPR], bd[core.LI], bd[core.PPR], s.MatSeconds[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig7Result holds Figure 7: dataset-size scaling (a) and cluster-size
// scaling (b).
type Fig7Result struct {
	// SizeScaling: workload ("census", "census10x") → system → total.
	SizeScaling map[string]map[string]float64
	// ClusterScaling: workers → system → total (census10x).
	ClusterScaling map[int]map[string]float64
	Workers        []int
}

// Fig7a runs the dataset-size scaling comparison on a single node.
func Fig7a(ctx context.Context, cfg Config) (*Fig7Result, error) {
	out := &Fig7Result{SizeScaling: make(map[string]map[string]float64)}
	for _, wlName := range []string{"census", "census10x"} {
		out.SizeScaling[wlName] = make(map[string]float64, 2)
		for _, sys := range []sim.System{sim.HelixOpt, sim.KeystoneML} {
			s, err := runOne(ctx, wlName, sys, cfg, false)
			if err != nil {
				return nil, err
			}
			out.SizeScaling[wlName][sys.Name] = s.Total()
		}
	}
	return out, nil
}

// Fig7b runs the cluster-size scaling comparison on census10x.
func Fig7b(ctx context.Context, cfg Config) (*Fig7Result, error) {
	out := &Fig7Result{ClusterScaling: make(map[int]map[string]float64), Workers: []int{2, 4, 8}}
	for _, workers := range out.Workers {
		out.ClusterScaling[workers] = make(map[string]float64, 2)
		for _, sys := range []sim.System{sim.HelixOpt, sim.KeystoneML} {
			wl := workloads.NewCensusCluster(cfg.Scale, cfg.Seed, workers)
			res, err := sim.RunSeries(ctx, wl, sys, sim.Config{Iterations: cfg.Iterations})
			if err != nil {
				return nil, err
			}
			out.ClusterScaling[workers][sys.Name] = toSeries(res).Total()
		}
	}
	return out, nil
}

// String renders whichever halves of Figure 7 were run.
func (r *Fig7Result) String() string {
	var b strings.Builder
	if len(r.SizeScaling) > 0 {
		b.WriteString("Figure 7a — dataset-size scaling: cumulative run time (s)\n")
		fmt.Fprintf(&b, "%-12s %12s %12s\n", "workload", "helix-opt", "keystoneml")
		for _, wl := range []string{"census", "census10x"} {
			row := r.SizeScaling[wl]
			fmt.Fprintf(&b, "%-12s %12.3f %12.3f\n", wl, row["helix-opt"], row["keystoneml"])
		}
		b.WriteByte('\n')
	}
	if len(r.ClusterScaling) > 0 {
		b.WriteString("Figure 7b — cluster scaling on census10x: cumulative run time (s)\n")
		fmt.Fprintf(&b, "%-12s %12s %12s\n", "workers", "helix-opt", "keystoneml")
		for _, w := range r.Workers {
			row := r.ClusterScaling[w]
			fmt.Fprintf(&b, "%-12d %12.3f %12.3f\n", w, row["helix-opt"], row["keystoneml"])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig8Result holds Figure 8: per-iteration fractions of nodes in
// S_p/S_l/S_c for HELIX OPT and HELIX AM on census and genomics.
type Fig8Result struct {
	Series map[string]map[string]Series // workload → system → series
}

// Fig8 runs the state-fraction comparison.
func Fig8(ctx context.Context, cfg Config) (*Fig8Result, error) {
	out := &Fig8Result{Series: make(map[string]map[string]Series)}
	for _, wlName := range []string{"census", "genomics"} {
		out.Series[wlName] = make(map[string]Series, 2)
		for _, sys := range []sim.System{sim.HelixOpt, sim.HelixAM} {
			s, err := runOne(ctx, wlName, sys, cfg, false)
			if err != nil {
				return nil, err
			}
			out.Series[wlName][sys.Name] = s
		}
	}
	return out, nil
}

// Fractions returns the S_p/S_l/S_c fractions at iteration i of a series.
func Fractions(states map[core.State]int) (sp, sl, sc float64) {
	total := states[core.StatePrune] + states[core.StateLoad] + states[core.StateCompute]
	if total == 0 {
		return 0, 0, 0
	}
	t := float64(total)
	return float64(states[core.StatePrune]) / t,
		float64(states[core.StateLoad]) / t,
		float64(states[core.StateCompute]) / t
}

// String renders Figure 8 rows.
func (r *Fig8Result) String() string {
	var b strings.Builder
	wls := make([]string, 0, len(r.Series))
	for wl := range r.Series {
		wls = append(wls, wl)
	}
	sort.Strings(wls)
	for _, wl := range wls {
		for _, sys := range []string{"helix-opt", "helix-am"} {
			s, ok := r.Series[wl][sys]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "Figure 8 — %s / %s: fraction of nodes per state\n", wl, sys)
			fmt.Fprintf(&b, "%-6s %-5s %8s %8s %8s\n", "iter", "type", "Sp", "Sl", "Sc")
			for i := range s.States {
				sp, sl, sc := Fractions(s.States[i])
				fmt.Fprintf(&b, "%-6d %-5s %8.2f %8.2f %8.2f\n", i, s.Types[i], sp, sl, sc)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Fig9Result holds Figure 9: HELIX OPT vs AM vs NM cumulative run time on
// all four workloads, plus storage-use series on census and genomics.
type Fig9Result struct {
	Series map[string][]Series // workload → per-system series
}

// Fig9 runs the materialization-policy comparison.
func Fig9(ctx context.Context, cfg Config) (*Fig9Result, error) {
	out := &Fig9Result{Series: make(map[string][]Series, len(FigureWorkloads))}
	for _, wlName := range FigureWorkloads {
		systems := []sim.System{sim.HelixOpt, sim.HelixAM, sim.HelixNM}
		if wlName == "nlp" || wlName == "mnist" {
			// Paper §6.6: HELIX AM did not complete in reasonable time on
			// NLP and MNIST; Figures 9(e),(f) show only OPT and NM.
			systems = []sim.System{sim.HelixOpt, sim.HelixNM}
		}
		for _, sys := range systems {
			s, err := runOne(ctx, wlName, sys, cfg, false)
			if err != nil {
				return nil, err
			}
			out.Series[wlName] = append(out.Series[wlName], s)
		}
	}
	return out, nil
}

// Totals returns system → cumulative seconds for a workload.
func (r *Fig9Result) Totals(workload string) map[string]float64 {
	out := make(map[string]float64)
	for _, s := range r.Series[workload] {
		out[s.System] = s.Total()
	}
	return out
}

// FinalStorage returns system → bytes stored after the last iteration.
func (r *Fig9Result) FinalStorage(workload string) map[string]int64 {
	out := make(map[string]int64)
	for _, s := range r.Series[workload] {
		if len(s.Storage) > 0 {
			out[s.System] = s.Storage[len(s.Storage)-1]
		}
	}
	return out
}

// String renders Figure 9 time and storage rows.
func (r *Fig9Result) String() string {
	var b strings.Builder
	for _, wl := range FigureWorkloads {
		series := r.Series[wl]
		if len(series) == 0 {
			continue
		}
		fmt.Fprintf(&b, "Figure 9 — %s: cumulative run time (s)\n", wl)
		fmt.Fprintf(&b, "%-6s", "iter")
		for _, s := range series {
			fmt.Fprintf(&b, " %12s", s.System)
		}
		b.WriteByte('\n')
		for i := range series[0].Cumulative {
			fmt.Fprintf(&b, "%-6d", i)
			for _, s := range series {
				fmt.Fprintf(&b, " %12.3f", s.Cumulative[i])
			}
			b.WriteByte('\n')
		}
		if wl == "census" || wl == "genomics" {
			fmt.Fprintf(&b, "Figure 9 — %s: storage in KB per iteration\n", wl)
			fmt.Fprintf(&b, "%-6s", "iter")
			for _, s := range series {
				if s.System == "helix-nm" {
					continue // always zero, omitted as in the paper
				}
				fmt.Fprintf(&b, " %12s", s.System)
			}
			b.WriteByte('\n')
			for i := range series[0].Storage {
				fmt.Fprintf(&b, "%-6d", i)
				for _, s := range series {
					if s.System == "helix-nm" {
						continue
					}
					fmt.Fprintf(&b, " %12d", s.Storage[i]/1024)
				}
				b.WriteByte('\n')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig10Result holds Figure 10: peak and average memory per iteration for
// HELIX OPT on all four workloads.
type Fig10Result struct {
	Series map[string]Series
}

// Fig10 runs the memory-usage experiment.
func Fig10(ctx context.Context, cfg Config) (*Fig10Result, error) {
	out := &Fig10Result{Series: make(map[string]Series, len(FigureWorkloads))}
	for _, wlName := range FigureWorkloads {
		s, err := runOne(ctx, wlName, sim.HelixOpt, cfg, true)
		if err != nil {
			return nil, err
		}
		out.Series[wlName] = s
	}
	return out, nil
}

// String renders Figure 10 rows in MB.
func (r *Fig10Result) String() string {
	var b strings.Builder
	for _, wl := range FigureWorkloads {
		s, ok := r.Series[wl]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "Figure 10 — %s: HELIX memory use (MB)\n", wl)
		fmt.Fprintf(&b, "%-6s %-5s %10s %10s\n", "iter", "type", "peak", "avg")
		for i := range s.PeakMem {
			fmt.Fprintf(&b, "%-6d %-5s %10.1f %10.1f\n",
				i, s.Types[i], float64(s.PeakMem[i])/(1<<20), float64(s.AvgMem[i])/(1<<20))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
