//go:build race

package bench

// raceEnabled reports that the test binary was built with -race. The
// detector inflates compute times several-fold, which shifts the cost
// model's compute/load balance; timing-sensitive figure assertions
// loosen accordingly.
const raceEnabled = true
