package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"helix"
	"helix/internal/core"
	"helix/internal/opt"
	"helix/internal/sim"
)

// AblationResult holds the design-choice ablations DESIGN.md calls out:
// the streaming OMP threshold, min-cut OEP vs a greedy local rule, and
// pruning on/off.
type AblationResult struct {
	// OMPThreshold: threshold multiplier → census cumulative seconds.
	OMPThreshold map[float64]float64
	Thresholds   []float64
	// OEPGap is the mean relative regret of greedy vs optimal plans on
	// random DAG instances (0 = greedy always optimal); OEPGapWorst the
	// maximum observed.
	OEPGap      float64
	OEPGapWorst float64
	// PruningOn/PruningOff: census cumulative seconds with program
	// slicing enabled and disabled.
	PruningOn, PruningOff float64
	// Amortized compares Algorithm 2 against the survey-weighted variant.
	Amortized *AmortizedComparison
}

// AblationOMPThreshold reruns the census series with Algorithm 2's
// threshold swept over multipliers; the paper's value is 2 (write once,
// load once).
func AblationOMPThreshold(ctx context.Context, cfg Config) (map[float64]float64, []float64, error) {
	thresholds := []float64{1, 2, 4, 8}
	out := make(map[float64]float64, len(thresholds))
	for _, th := range thresholds {
		wl, err := sim.NewWorkload("census", cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		sys := sim.System{
			Name:    fmt.Sprintf("helix-opt-th%g", th),
			Options: []helix.Option{helix.WithPolicy(helix.PolicyOpt), helix.WithOMPThreshold(th)},
		}
		res, err := sim.RunSeries(ctx, wl, sys, sim.Config{Iterations: cfg.Iterations})
		if err != nil {
			return nil, nil, err
		}
		out[th] = res.TotalSeconds()
	}
	return out, thresholds, nil
}

// AblationOEPGreedy compares the optimal min-cut OEP plan against the
// greedy local rule on random DAG instances, returning the mean and worst
// relative regret (greedy time / optimal time − 1).
func AblationOEPGreedy(trials int, seed int64) (mean, worst float64) {
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	n := 0
	for trial := 0; trial < trials; trial++ {
		d, costs := randomOEPInstance(rng)
		optPlan := opt.OptimalStates(d, costs)
		greedy := opt.GreedyStates(d, costs)
		if optPlan.Time <= 0 {
			continue
		}
		regret := greedy.Time/optPlan.Time - 1
		if regret < 0 {
			regret = 0 // numeric noise; greedy cannot beat optimal
		}
		sum += regret
		if regret > worst {
			worst = regret
		}
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), worst
}

// randomOEPInstance builds a random layered DAG with mixed load/compute
// costs and some materialized nodes.
func randomOEPInstance(rng *rand.Rand) (*core.DAG, map[*core.Node]opt.Costs) {
	d := core.NewDAG()
	nNodes := 6 + rng.Intn(10)
	nodes := make([]*core.Node, nNodes)
	for i := range nodes {
		nodes[i] = d.MustAddNode(fmt.Sprintf("n%d", i), core.KindExtractor, core.DPR, "op", true)
		for j := 0; j < i; j++ {
			if rng.Float64() < 0.3 {
				if err := d.AddEdge(nodes[j], nodes[i]); err != nil {
					panic(err)
				}
			}
		}
	}
	d.MarkOutput(nodes[nNodes-1])
	live := d.Slice()
	costs := make(map[*core.Node]opt.Costs)
	for _, n := range nodes {
		if !live[n] {
			continue
		}
		c := opt.Costs{Compute: rng.Float64() * 10}
		if rng.Float64() < 0.6 {
			c.Load = rng.Float64() * 10
		} else {
			c.Load = math.Inf(1)
		}
		costs[n] = c
	}
	// The output is required.
	c := costs[nodes[nNodes-1]]
	c.Required = true
	costs[nodes[nNodes-1]] = c
	return d, costs
}

// AblationPruning measures census cumulative time with program slicing on
// and off. With slicing off, extractors excluded from the output slice
// still run (paper §5.4's raceExt example).
func AblationPruning(ctx context.Context, cfg Config) (on, off float64, err error) {
	for _, disable := range []bool{false, true} {
		wl, werr := sim.NewWorkload("census", cfg.Scale, cfg.Seed)
		if werr != nil {
			return 0, 0, werr
		}
		sys := sim.System{
			Name:    "helix-opt",
			Options: []helix.Option{helix.WithPolicy(helix.PolicyOpt), helix.WithPruning(!disable)},
		}
		res, rerr := sim.RunSeries(ctx, wl, sys, sim.Config{Iterations: cfg.Iterations})
		if rerr != nil {
			return 0, 0, rerr
		}
		if disable {
			off = res.TotalSeconds()
		} else {
			on = res.TotalSeconds()
		}
	}
	return on, off, nil
}

// Ablations runs all three ablations.
func Ablations(ctx context.Context, cfg Config) (*AblationResult, error) {
	out := &AblationResult{}
	var err error
	out.OMPThreshold, out.Thresholds, err = AblationOMPThreshold(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out.OEPGap, out.OEPGapWorst = AblationOEPGreedy(200, cfg.Seed)
	out.PruningOn, out.PruningOff, err = AblationPruning(ctx, cfg)
	if err != nil {
		return nil, err
	}
	out.Amortized, err = AblationAmortizedOMP(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the ablation rows.
func (r *AblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — streaming OMP threshold (census cumulative seconds)\n")
	for _, th := range r.Thresholds {
		fmt.Fprintf(&b, "  threshold %4.0f×: %10.3f s\n", th, r.OMPThreshold[th])
	}
	fmt.Fprintf(&b, "Ablation — OEP greedy vs min-cut optimal on random DAGs: mean regret %.1f%%, worst %.1f%%\n",
		r.OEPGap*100, r.OEPGapWorst*100)
	fmt.Fprintf(&b, "Ablation — DAG pruning: on %.3f s, off %.3f s\n", r.PruningOn, r.PruningOff)
	if a := r.Amortized; a != nil {
		fmt.Fprintf(&b, "Ablation — amortized OMP (user model): streaming %.3f s / %d KB vs amortized %.3f s / %d KB\n",
			a.StreamingSeconds, a.StreamingStorage/1024, a.AmortizedSeconds, a.AmortizedStorage/1024)
	}
	return b.String()
}

// AmortizedComparison holds the extension ablation: streaming OMP vs the
// survey-weighted amortized OMP on the census schedule.
type AmortizedComparison struct {
	StreamingSeconds, AmortizedSeconds float64
	StreamingStorage, AmortizedStorage int64
}

// AblationAmortizedOMP compares the paper's Algorithm 2 against the
// future-work amortized variant (§5.3's user-model extension) on census:
// with PPR-heavy schedules the amortized policy should spend no more
// storage while keeping the run time competitive.
func AblationAmortizedOMP(ctx context.Context, cfg Config) (*AmortizedComparison, error) {
	out := &AmortizedComparison{}
	for _, amortized := range []bool{false, true} {
		wl, err := sim.NewWorkload("census", cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		opts := []helix.Option{helix.WithPolicy(helix.PolicyOpt)}
		name := "helix-opt"
		if amortized {
			opts = []helix.Option{helix.WithPolicy(helix.PolicyOptAmortized), helix.WithDomain("census")}
			name = "helix-opt-amortized"
		}
		res, err := sim.RunSeries(ctx, wl, sim.System{Name: name, Options: opts}, sim.Config{Iterations: cfg.Iterations})
		if err != nil {
			return nil, err
		}
		last := res.Metrics[len(res.Metrics)-1]
		if amortized {
			out.AmortizedSeconds = res.TotalSeconds()
			out.AmortizedStorage = last.StorageBytes
		} else {
			out.StreamingSeconds = res.TotalSeconds()
			out.StreamingStorage = last.StorageBytes
		}
	}
	return out, nil
}
