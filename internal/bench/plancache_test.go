package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"helix/internal/core"
	"helix/internal/exec"
	"helix/internal/opt"
	"helix/internal/plan"
	"helix/internal/store"
)

// benchOutPath is where the plan/scheduler benchmark emitter writes its
// JSON summary; override with HELIX_BENCH_OUT. CI uploads the file as an
// artifact so cold-vs-cached and fifo-vs-critpath deltas are tracked per
// PR.
func benchOutPath() string {
	if p := os.Getenv("HELIX_BENCH_OUT"); p != "" {
		return p
	}
	return "BENCH_plan.json"
}

// recordBenchMetrics merges the given measurements into BENCH_plan.json,
// preserving keys written by other benchmarks in the same run.
func recordBenchMetrics(b *testing.B, kv map[string]float64) {
	b.Helper()
	recordMetricsTo(b, benchOutPath(), kv)
}

// recordMetricsTo merges measurements into the JSON file at path,
// preserving keys written by other benchmarks in the same run.
func recordMetricsTo(b *testing.B, path string, kv map[string]float64) {
	b.Helper()
	m := map[string]float64{}
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &m)
	}
	for k, v := range kv {
		m[k] = v
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		b.Fatalf("marshal bench metrics: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
}

// benchPlanDAG builds the planning benchmark DAG: a 1000-node layered
// fan-out (50 layers × 20 nodes, five parents each) with heterogeneous
// carried compute statistics — the shape and cost spread of a real
// iterative workflow, where the OPT-EXEC-PLAN min-cut has genuine work
// to do (the homogeneous deep chain admits a near-trivial cut).
// Deterministically seeded, so every call builds an equivalent DAG.
func benchPlanDAG() *core.DAG {
	d := core.NewDAG()
	rng := rand.New(rand.NewSource(1))
	const layers, width = 50, 20
	var prev []*core.Node
	for l := 0; l < layers; l++ {
		var cur []*core.Node
		for w := 0; w < width; w++ {
			nd := d.MustAddNode(fmt.Sprintf("n%d_%d", l, w), core.KindExtractor, core.DPR, fmt.Sprintf("op%d_%d-v1", l, w), true)
			nd.Metrics = core.Metrics{Compute: time.Duration(rng.Intn(2000)+1) * time.Millisecond, Known: true}
			if l > 0 {
				for k := 0; k < 5; k++ {
					if err := d.AddEdge(prev[(w+k)%width], nd); err != nil {
						panic(err)
					}
				}
			}
			cur = append(cur, nd)
		}
		prev = cur
	}
	for _, nd := range prev {
		d.MarkOutput(nd)
	}
	d.ComputeSignatures()
	return d
}

// benchView is a synthetic MatView over a signature→size map with the
// paper's 170 MB/s disk, so the solver faces a real load-vs-compute trade.
type benchView struct{ sizes map[string]int64 }

func (v benchView) Lookup(key string) (int64, bool) { s, ok := v.sizes[key]; return s, ok }
func (v benchView) EstimateLoad(size int64) time.Duration {
	return time.Duration(float64(size) / 170e6 * float64(time.Second))
}

// benchPlanView materializes ~60% of the DAG at 1–200 MiB (seeded), so
// the optimal plan mixes loads, computes, and prunes.
func benchPlanView(d *core.DAG) benchView {
	rng := rand.New(rand.NewSource(2))
	sizes := make(map[string]int64, d.Len())
	for _, nd := range d.Nodes() {
		if rng.Float64() < 0.6 {
			sizes[nd.ChainSignature()] = int64(rng.Intn(200)+1) << 20
		}
	}
	return benchView{sizes: sizes}
}

// BenchmarkPlanColdVsCached measures steady-state planning time on the
// 1000-node benchmark DAG with and without the plan cache: cold runs the
// full pipeline (slicing, bitsets, max-flow solve) every call; cached
// fingerprints the same inputs and reuses the previous plan wholesale.
// The acceptance floor — a fingerprint hit spends at least 10× less time
// in planning than a cold solve — is asserted here and the measured
// numbers are recorded in BENCH_plan.json. Best-of-reps is compared, not
// the mean: both paths run in one process and GC pauses would otherwise
// dominate the ratio's variance.
func BenchmarkPlanColdVsCached(b *testing.B) {
	prev := benchPlanDAG()
	d := benchPlanDAG()
	view := benchPlanView(d)
	opts := plan.Options{MaterializeOutputs: true}

	reps := b.N
	if reps < 5 {
		reps = 5
	}
	best := func(fn func(i int)) (bestNS, meanNS float64) {
		bestNS = math.Inf(1)
		var total float64
		for i := 0; i < reps; i++ {
			start := time.Now()
			fn(i)
			ns := float64(time.Since(start).Nanoseconds())
			total += ns
			if ns < bestNS {
				bestNS = ns
			}
		}
		return bestNS, total / float64(reps)
	}

	// Cold: no cache, but the pooled solver the engine would have — the
	// delta isolates the cache, not buffer reuse.
	coldPlanner := &plan.Planner{View: view, Opts: opts, Solver: new(opt.Solver)}
	if _, err := coldPlanner.Plan(d, prev, 0); err != nil {
		b.Fatal(err)
	}
	coldNS, coldMean := best(func(i int) {
		if _, err := coldPlanner.Plan(d, prev, i); err != nil {
			b.Fatal(err)
		}
	})

	// Cached: warm to a full-hit steady state, then measure hits.
	cachedPlanner := &plan.Planner{View: view, Opts: opts, Solver: new(opt.Solver), Cache: plan.NewCache("bench")}
	if _, err := cachedPlanner.Plan(d, prev, 0); err != nil {
		b.Fatal(err)
	}
	cachedNS, cachedMean := best(func(i int) {
		p, err := cachedPlanner.Plan(d, prev, i+1)
		if err != nil {
			b.Fatal(err)
		}
		if p.Cache != plan.CacheHit {
			b.Fatalf("rep %d: outcome %v, want hit", i, p.Cache)
		}
	})
	_ = coldMean
	_ = cachedMean

	b.ReportMetric(coldNS, "cold-ns/plan")
	b.ReportMetric(cachedNS, "cached-ns/plan")
	b.ReportMetric(coldNS/cachedNS, "speedup")
	recordBenchMetrics(b, map[string]float64{
		"cold_plan_ns":   coldNS,
		"cached_plan_ns": cachedNS,
	})
	if coldNS < 10*cachedNS {
		b.Fatalf("fingerprint hit too slow: cold %.0fns vs cached %.0fns (%.1f×, want ≥10×)",
			coldNS, cachedNS, coldNS/cachedNS)
	}
}

// benchSleepProgram builds the scheduler benchmark DAGs. unbalanced: a
// source feeding 950 short leaves (1ms) declared BEFORE a 50-node chain
// of 5ms stages — under FIFO the whole leaf pile delays the chain, under
// critical-path priority the chain claims a worker immediately. deep:
// a pure 1000-node chain (identical behavior under both orderings — the
// "never worse" guard).
func benchSleepProgram(unbalanced bool) *exec.Program {
	d := core.NewDAG()
	prog := &exec.Program{DAG: d, Fns: make(map[*core.Node]exec.OpFunc)}
	sleepFn := func(dur time.Duration) exec.OpFunc {
		return func(ctx context.Context, in []any) (any, error) {
			time.Sleep(dur)
			return 1, nil
		}
	}
	if !unbalanced {
		var prev *core.Node
		for i := 0; i < 1000; i++ {
			nd := d.MustAddNode(fmt.Sprintf("c%d", i), core.KindExtractor, core.DPR, fmt.Sprintf("c%d-v1", i), true)
			nd.Metrics = core.Metrics{Compute: 500 * time.Microsecond, Known: true}
			prog.Fns[nd] = sleepFn(500 * time.Microsecond)
			if prev != nil {
				if err := d.AddEdge(prev, nd); err != nil {
					panic(err)
				}
			}
			prev = nd
		}
		d.MarkOutput(prev)
		return prog
	}
	src := d.MustAddNode("src", core.KindSource, core.DPR, "src-v1", true)
	prog.Fns[src] = func(ctx context.Context, in []any) (any, error) { return 1, nil }
	sink := d.MustAddNode("sink", core.KindReducer, core.PPR, "sink-v1", true)
	for i := 0; i < 949; i++ {
		nd := d.MustAddNode(fmt.Sprintf("leaf%d", i), core.KindExtractor, core.DPR, fmt.Sprintf("leaf%d-v1", i), true)
		nd.Metrics = core.Metrics{Compute: time.Millisecond, Known: true}
		prog.Fns[nd] = sleepFn(time.Millisecond)
		if err := d.AddEdge(src, nd); err != nil {
			panic(err)
		}
		if err := d.AddEdge(nd, sink); err != nil {
			panic(err)
		}
	}
	prev := src
	for i := 0; i < 49; i++ {
		nd := d.MustAddNode(fmt.Sprintf("chain%d", i), core.KindExtractor, core.DPR, fmt.Sprintf("chain%d-v1", i), true)
		nd.Metrics = core.Metrics{Compute: 5 * time.Millisecond, Known: true}
		prog.Fns[nd] = sleepFn(5 * time.Millisecond)
		if err := d.AddEdge(prev, nd); err != nil {
			panic(err)
		}
		prev = nd
	}
	if err := d.AddEdge(prev, sink); err != nil {
		panic(err)
	}
	prog.Fns[sink] = func(ctx context.Context, in []any) (any, error) { return len(in), nil }
	d.MarkOutput(sink)
	return prog
}

// execWall plans once and executes the program under the given scheduler
// mode at Parallelism 4, returning the execution wall-clock (planning
// excluded — this benchmark isolates ordering).
func execWall(b *testing.B, prog *exec.Program, mode exec.SchedMode) time.Duration {
	b.Helper()
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	e := &exec.Engine{Store: st, Opts: exec.Options{
		Policy:              opt.NeverMat{},
		SyncMaterialization: true,
		Parallelism:         4,
		Sched:               mode,
	}}
	p, err := e.Plan(prog.DAG, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	res, err := e.Execute(context.Background(), prog, p)
	if err != nil {
		b.Fatal(err)
	}
	return res.Wall
}

// BenchmarkSchedCriticalPath compares FIFO against critical-path ready
// ordering at Parallelism 4 on the 1k-node benchmark DAGs. On the
// unbalanced fan-out the straggler chain must start early enough that
// critical-path wall-clock beats FIFO; on the deep chain the two
// orderings are behaviorally identical and critical-path may never be
// meaningfully worse. Results land in BENCH_plan.json.
func BenchmarkSchedCriticalPath(b *testing.B) {
	// Floor the sample count even under -benchtime=1x: each measurement
	// is a sleep-bound wall-clock on a possibly noisy shared runner, and
	// the crit≤fifo assertion below must not fail CI on a single CPU
	// hiccup. Best-of-3 per mode is stable; more reps add time, not
	// precision.
	reps := b.N
	if reps < 3 {
		reps = 3
	}
	if reps > 5 {
		reps = 5
	}
	measure := func(unbalanced bool, mode exec.SchedMode) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			if w := execWall(b, benchSleepProgram(unbalanced), mode); w < best {
				best = w
			}
		}
		return best
	}

	// Warm the scheduler/runtime once so neither mode pays first-run cost.
	execWall(b, benchSleepProgram(true), exec.SchedCriticalPath)

	fifoFan := measure(true, exec.SchedFIFO)
	critFan := measure(true, exec.SchedCriticalPath)
	fifoChain := measure(false, exec.SchedFIFO)
	critChain := measure(false, exec.SchedCriticalPath)

	b.ReportMetric(float64(fifoFan.Nanoseconds()), "fifo-fanout-ns")
	b.ReportMetric(float64(critFan.Nanoseconds()), "critpath-fanout-ns")
	b.ReportMetric(float64(fifoChain.Nanoseconds()), "fifo-chain-ns")
	b.ReportMetric(float64(critChain.Nanoseconds()), "critpath-chain-ns")
	recordBenchMetrics(b, map[string]float64{
		"fifo_wall":           float64(fifoFan.Nanoseconds()),
		"critpath_wall":       float64(critFan.Nanoseconds()),
		"fifo_chain_wall":     float64(fifoChain.Nanoseconds()),
		"critpath_chain_wall": float64(critChain.Nanoseconds()),
	})

	if critFan > fifoFan {
		b.Fatalf("critical-path scheduling lost on the unbalanced fan-out: crit %v > fifo %v", critFan, fifoFan)
	}
	// Deep chain: single ready node at every step, so the orderings are
	// identical; allow generous noise but catch systematic regressions.
	if critChain > fifoChain*5/4+100*time.Millisecond {
		b.Fatalf("critical-path scheduling worse than FIFO on the deep chain: crit %v vs fifo %v", critChain, fifoChain)
	}
}
