package bench

import (
	"context"

	"helix/internal/sim"
)

// Ingest runs the continuous-ingest experiment: the streaming mini-batch
// adaptation (§5.3) as a long-lived session over the default delivery
// schedule, reporting per-tick plan-cache outcomes (partial hits on
// delivery ticks, full fingerprint hits on quiet stretches) and the
// compute time reuse avoided.
func Ingest(ctx context.Context, cfg Config) (*sim.IngestReport, error) {
	return sim.RunIngest(ctx, sim.IngestConfig{
		Window:      4,
		Scale:       cfg.Scale,
		Parallelism: 2,
	})
}
