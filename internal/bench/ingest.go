package bench

import (
	"context"
	"fmt"

	"helix/internal/sim"
)

// IngestComparison pairs the two window semantics of the continuous-ingest
// experiment over the same delivery schedule: tumbling (a delivery
// replaces its scheduled slot in place) and sliding (a delivery evicts the
// oldest batch from the ring). Both series ride in BENCH_ingest.json so
// the partial-hit rate and reuse savings of each mode are tracked per PR.
type IngestComparison struct {
	Tumbling *sim.IngestReport `json:"tumbling"`
	Sliding  *sim.IngestReport `json:"sliding"`
}

// String renders both per-tick tables.
func (c *IngestComparison) String() string {
	return c.Tumbling.String() + "\n" + c.Sliding.String()
}

// Ingest runs the continuous-ingest experiment: the streaming mini-batch
// adaptation (§5.3) as a long-lived session over the default delivery
// schedule, reporting per-tick plan-cache outcomes (partial hits on
// delivery ticks, full fingerprint hits on quiet stretches) and the
// compute time reuse avoided — once under tumbling and once under sliding
// window semantics.
func Ingest(ctx context.Context, cfg Config) (*IngestComparison, error) {
	var c IngestComparison
	for _, mode := range []struct {
		dst     **sim.IngestReport
		sliding bool
	}{{&c.Tumbling, false}, {&c.Sliding, true}} {
		rep, err := sim.RunIngest(ctx, sim.IngestConfig{
			Window:      4,
			Scale:       cfg.Scale,
			Parallelism: 2,
			Sliding:     mode.sliding,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: ingest (sliding=%v): %w", mode.sliding, err)
		}
		*mode.dst = rep
	}
	return &c, nil
}
