package bench

import (
	"context"
	"strings"
	"testing"
)

// TestWriteBehindComparison runs the sync-vs-async A/B at test scale and
// checks its structural invariants. The strict ≥80% critical-path
// exclusion criterion is asserted in internal/exec on a controlled chain
// (TestWriteBehindExcludesMatFromWall), where the materialization load is
// deterministic; here on a real workload we assert the directional
// properties that must hold at any scale.
func TestWriteBehindComparison(t *testing.T) {
	r, err := WriteBehind(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.SyncWall <= 0 || r.AsyncWall <= 0 {
		t.Fatalf("degenerate walls: sync %.3f async %.3f", r.SyncWall, r.AsyncWall)
	}
	// helix-am materializes every intermediate: both modes must report a
	// real serialize+write bill.
	if r.SyncMat <= 0 || r.AsyncMat <= 0 {
		t.Fatalf("no materialization recorded: sync %.3f async %.3f", r.SyncMat, r.AsyncMat)
	}
	// Write-behind can only remove materialization from the critical
	// path, never add compute: async end-to-end latency (wall plus the
	// flush-barrier wait the caller blocks on) must not exceed sync wall
	// by more than scheduling noise.
	if asyncTotal := r.AsyncWall + r.AsyncFlush; asyncTotal > r.SyncWall*1.25 {
		t.Errorf("async wall+flush %.3fs materially slower than sync %.3fs", asyncTotal, r.SyncWall)
	}
	out := r.String()
	for _, want := range []string{"Write-behind", "wall-clock", "serialize+write", "flush-barrier"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
