package bench

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"helix"
	"helix/internal/store"
	"helix/internal/workloads"
)

func init() {
	// The gob side of the comparison needs the composite payload types
	// registered; the binary codec handles them natively.
	store.RegisterValueType([]float64(nil))
	store.RegisterValueType([]string(nil))
	store.RegisterValueType([][]float64(nil))
}

// codecBenchOutPath is where the codec and streaming benchmarks write
// their JSON summary; override with HELIX_BENCH_CODEC_OUT. CI uploads it
// beside BENCH_plan.json.
func codecBenchOutPath() string {
	if p := os.Getenv("HELIX_BENCH_CODEC_OUT"); p != "" {
		return p
	}
	return "BENCH_codec.json"
}

// codecPayloads are the microbenchmark inputs: the value shapes the
// store actually materializes at census scale — a numeric column, a
// low-cardinality categorical column, and a row matrix.
func codecPayloads() []struct {
	name  string
	value any
} {
	floats := make([]float64, 1_000_000)
	for i := range floats {
		floats[i] = float64(i%100000) / 100
	}
	cats := make([]string, 500_000)
	for i := range cats {
		cats[i] = fmt.Sprintf("category-%d", i%16)
	}
	mat := make([][]float64, 50_000)
	for i := range mat {
		row := make([]float64, 20)
		for j := range row {
			row[j] = float64(i*20 + j)
		}
		mat[i] = row
	}
	return []struct {
		name  string
		value any
	}{
		{"float64s_1m", floats},
		{"strings_500k", cats},
		{"floatmat_50kx20", mat},
	}
}

// BenchmarkCodecEncodeDecode measures encode+decode wall time for the
// binary codec against gob on census-shaped payloads. The acceptance
// floor — binary at least 2× faster than gob on combined encode+decode —
// is asserted per payload, and the measured numbers land in
// BENCH_codec.json. Best-of-reps is compared: both codecs run in one
// process and GC pauses would otherwise dominate the ratio's variance.
func BenchmarkCodecEncodeDecode(b *testing.B) {
	const reps = 5
	metrics := map[string]float64{}
	for _, p := range codecPayloads() {
		roundTrip := func(c store.Codec) float64 {
			best := 0.0
			for rep := 0; rep < reps; rep++ {
				// Quiesce the collector outside the timed region: gob's
				// decode garbage (one allocation per string) otherwise bills
				// GC pauses to whichever codec runs next.
				runtime.GC()
				start := time.Now()
				enc, err := c.Encode(p.value)
				if err != nil {
					b.Fatal(err)
				}
				dec, err := c.Decode(enc)
				if err != nil {
					b.Fatal(err)
				}
				secs := time.Since(start).Seconds()
				if rep == 0 {
					if !reflect.DeepEqual(dec, p.value) {
						b.Fatalf("%s: %s round trip corrupted the value", p.name, c.Name())
					}
					metrics[p.name+"_"+c.Name()+"_bytes"] = float64(len(enc))
				}
				if rep == 0 || secs < best {
					best = secs
				}
			}
			return best
		}
		for i := 0; i < b.N; i++ {
			binSecs := roundTrip(store.BinaryCodec{})
			gobSecs := roundTrip(store.GobCodec{})
			ratio := gobSecs / binSecs
			metrics[p.name+"_binary_s"] = binSecs
			metrics[p.name+"_gob_s"] = gobSecs
			metrics[p.name+"_speedup"] = ratio
			b.Logf("%s: binary %.2fms vs gob %.2fms (%.1fx)", p.name, binSecs*1e3, gobSecs*1e3, ratio)
			if ratio < 2 {
				b.Errorf("%s: binary codec only %.2fx faster than gob on encode+decode, want ≥2x", p.name, ratio)
			}
		}
	}
	recordMetricsTo(b, codecBenchOutPath(), metrics)
}

// BenchmarkStreamingCensus runs the census-scale streaming pipeline
// (internal/workloads.CensusStream) with fused row-wise execution and
// again in batch mode, recording wall time and sampled peak heap for
// both. Batch execution necessarily holds every intermediate column live
// at once, so fused execution must show a lower peak; the outputs are
// checked byte-identical here too (the workloads test asserts the same
// at test scale).
func BenchmarkStreamingCensus(b *testing.B) {
	const rows = 2_000_000
	wf := workloads.CensusStream(rows, 1)
	ctx := context.Background()

	run := func(streaming bool) (secs float64, peak uint64, out []byte) {
		sess, err := helix.Open(b.TempDir(),
			helix.WithStreaming(streaming),
			helix.WithMemorySampling(true),
			helix.WithPolicy(helix.PolicyNever))
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		start := time.Now()
		res, err := sess.Run(ctx, wf)
		if err != nil {
			b.Fatal(err)
		}
		secs = time.Since(start).Seconds()
		enc, err := store.Encode(res.Values["stats"])
		if err != nil {
			b.Fatal(err)
		}
		return secs, res.PeakMemBytes, enc
	}

	for i := 0; i < b.N; i++ {
		streamSecs, streamPeak, streamOut := run(true)
		batchSecs, batchPeak, batchOut := run(false)
		if !bytes.Equal(streamOut, batchOut) {
			b.Fatal("census-stream outputs differ between fused and batch execution")
		}
		reduction := 1 - float64(streamPeak)/float64(batchPeak)
		b.Logf("rows=%d: fused %.2fs peak %d MiB vs batch %.2fs peak %d MiB (peak-RSS −%.0f%%)",
			rows, streamSecs, streamPeak>>20, batchSecs, batchPeak>>20, reduction*100)
		if streamPeak >= batchPeak {
			b.Errorf("fused peak heap %d B not below batch %d B", streamPeak, batchPeak)
		}
		recordMetricsTo(b, codecBenchOutPath(), map[string]float64{
			"streaming_census_rows":               rows,
			"streaming_census_fused_s":            streamSecs,
			"streaming_census_batch_s":            batchSecs,
			"streaming_census_fused_peak_b":       float64(streamPeak),
			"streaming_census_batch_peak_b":       float64(batchPeak),
			"streaming_census_peak_reduction_pct": reduction * 100,
		})
	}
}
