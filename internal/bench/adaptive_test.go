package bench

import (
	"context"
	"encoding/json"
	"os"
	"testing"
)

// adaptiveOutPath is where the adaptive re-planning benchmark writes its
// static-versus-adaptive JSON report; override with
// HELIX_BENCH_ADAPTIVE_OUT. CI uploads the file alongside BENCH_plan.json
// so the skew-tick speedup, projection gap, and solve counts are tracked
// per PR.
func adaptiveOutPath() string {
	if p := os.Getenv("HELIX_BENCH_ADAPTIVE_OUT"); p != "" {
		return p
	}
	return "BENCH_adaptive.json"
}

// BenchmarkAdaptive runs the mid-run re-planning comparison
// (internal/sim.RunAdaptive: a fan whose carried cost model turns ~20×
// wrong on tick 1, executed statically and with the divergence monitor
// armed) and records both per-tick series in BENCH_adaptive.json. The
// acceptance shape is asserted: the adaptive run must re-plan, swap work
// to loads, stay within the solve budget, and beat the static run
// decisively on the skewed tick — so a monitor or solve-bounding
// regression fails the benchmark rather than silently flattening the
// report.
func BenchmarkAdaptive(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		r, err := Adaptive(ctx, Config{})
		if err != nil {
			b.Fatal(err)
		}

		st, ad := r.Static.SkewTick(), r.Adaptive.SkewTick()
		if ad.Replans < 1 || ad.Swapped < 1 {
			b.Fatalf("adaptive skew tick never adapted: %+v", ad)
		}
		// Solve bounding: the initial solve plus at most the default budget
		// of mid-run re-solves, even though re-plan attempts may exceed it.
		if ad.Solves > 1+3 {
			b.Fatalf("adaptive skew tick consumed %d solves, budget allows 4", ad.Solves)
		}
		if ad.Seconds >= st.Seconds*0.75 {
			b.Fatalf("adaptive skew tick %.3fs not decisively faster than static %.3fs", ad.Seconds, st.Seconds)
		}
		b.ReportMetric(st.Seconds/ad.Seconds, "skew-speedup")
		b.ReportMetric(float64(ad.Solves), "skew-solves")
		b.ReportMetric(ad.GapSeconds, "skew-gap-sec")

		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(adaptiveOutPath(), append(data, '\n'), 0o644); err != nil {
			b.Fatalf("write %s: %v", adaptiveOutPath(), err)
		}
	}
}
