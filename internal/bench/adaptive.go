package bench

import (
	"context"

	"helix/internal/sim"
)

// Adaptive runs the mid-run re-planning experiment: a fan workload whose
// carried cost model is made ~20× wrong between ticks, executed once
// statically and once with the run-scoped divergence monitor armed
// (helix.WithAdaptive). The report carries per-tick wall time, the plan's
// own T(W,s) projection and its residual gap, and the planner counters
// (re-plan attempts, solves consumed, compute→load swaps) for both modes,
// so the benchmark can assert both the speedup and the solve bounding.
func Adaptive(ctx context.Context, cfg Config) (*sim.AdaptiveReport, error) {
	return sim.RunAdaptive(ctx, sim.Config{Parallelism: 2}, 0)
}
