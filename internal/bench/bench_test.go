package bench

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"helix/internal/core"
	"helix/internal/workloads"
)

func init() { workloads.RegisterAll() }

// testConfig keeps experiments fast: small data, short NLP cost.
func testConfig() Config {
	return Config{Scale: workloads.Scale{Rows: 0, CostFactor: 10}, Seed: 1}
}

func TestTable1HasAllScikitOps(t *testing.T) {
	rows := Table1()
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	want := []string{"fit(", "predict_proba", "predict(", "fit_predict", "transform(", "fit_transform", "score"}
	joined := Table1String()
	for _, w := range want {
		if !strings.Contains(joined, w) {
			t.Fatalf("Table 1 missing %q", w)
		}
	}
}

func TestTable2MatchesPaperSupport(t *testing.T) {
	rows := Table2()
	byWL := make(map[string]Table2Row)
	for _, r := range rows {
		byWL[r.Workload] = r
	}
	if len(byWL["census"].SupportedBy) != 3 {
		t.Fatal("census must be supported by all three systems")
	}
	has := func(xs []string, s string) bool {
		for _, x := range xs {
			if x == s {
				return true
			}
		}
		return false
	}
	if has(byWL["nlp"].SupportedBy, "keystoneml") {
		t.Fatal("KeystoneML must not support the IE workflow")
	}
	if has(byWL["mnist"].SupportedBy, "deepdive") || has(byWL["genomics"].SupportedBy, "deepdive") {
		t.Fatal("DeepDive must not support mnist/genomics")
	}
}

// TestFig5Shapes asserts the comparative claims of Figure 5 at test
// scale: HELIX OPT's cumulative time is below KeystoneML's on every
// shared workload, and below DeepDive's on NLP.
func TestFig5Shapes(t *testing.T) {
	r, err := Fig5(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"census", "genomics", "mnist"} {
		if sp := r.Speedup(wl, "keystoneml"); sp <= 1 {
			t.Errorf("%s: helix-opt speedup vs keystoneml = %.2f, want > 1", wl, sp)
		}
	}
	if sp := r.Speedup("nlp", "deepdive"); sp <= 2 {
		t.Errorf("nlp: helix-opt speedup vs deepdive = %.2f, want > 2 (linear DeepDive growth)", sp)
	}
	// DeepDive's NLP series must grow roughly linearly: its last
	// per-iteration time is no smaller than half its first.
	for _, s := range r.Series["nlp"] {
		if s.System != "deepdive" {
			continue
		}
		first, last := s.Seconds[0], s.Seconds[len(s.Seconds)-1]
		if last < first/2 {
			t.Errorf("deepdive nlp iteration time fell from %.3f to %.3f: unexpected reuse", first, last)
		}
	}
	// Census 10-iteration series must exist for helix and keystoneml.
	if len(r.Series["census"]) < 2 {
		t.Fatal("census series incomplete")
	}
	if out := r.String(); !strings.Contains(out, "Figure 5") {
		t.Fatal("missing render")
	}
}

// TestFig6PPRIterationsCheap asserts Figure 6's visible property: on PPR
// iterations HELIX recomputes only PPR, so DPR+L/I time is near zero.
func TestFig6PPRIterationsCheap(t *testing.T) {
	r, err := Fig6(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Series["census"]
	var iter0, pprDPR float64
	iter0 = s.Breakdown[0][core.DPR] + s.Breakdown[0][core.LI]
	found := false
	for i := 1; i < len(s.Types); i++ {
		if s.Types[i] == core.PPR {
			pprDPR = s.Breakdown[i][core.DPR] + s.Breakdown[i][core.LI]
			found = true
			break
		}
	}
	if !found {
		t.Fatal("census sequence has no PPR iteration")
	}
	if pprDPR > iter0/4 {
		t.Errorf("PPR iteration DPR+L/I time %.4fs vs iteration-0 %.4fs: insufficient reuse", pprDPR, iter0)
	}
	if out := r.String(); !strings.Contains(out, "Mat") {
		t.Fatal("missing materialization column")
	}
}

// TestFig7aScalesWithData asserts Figure 7a's property: both systems
// scale with dataset size, and HELIX stays at or below KeystoneML.
func TestFig7aScalesWithData(t *testing.T) {
	r, err := Fig7a(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []string{"helix-opt", "keystoneml"} {
		small, big := r.SizeScaling["census"][sys], r.SizeScaling["census10x"][sys]
		if big <= small {
			t.Errorf("%s: census10x (%.3f) not slower than census (%.3f)", sys, big, small)
		}
	}
	if r.SizeScaling["census10x"]["helix-opt"] >= r.SizeScaling["census10x"]["keystoneml"] {
		t.Error("helix-opt should beat keystoneml on census10x")
	}
}

// TestFig7bHelixBelowKeystone asserts Figure 7b's property at every
// cluster size.
func TestFig7bHelixBelowKeystone(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep is slow")
	}
	r, err := Fig7b(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range r.Workers {
		if r.ClusterScaling[w]["helix-opt"] >= r.ClusterScaling[w]["keystoneml"] {
			t.Errorf("%d workers: helix-opt %.3f ≥ keystoneml %.3f",
				w, r.ClusterScaling[w]["helix-opt"], r.ClusterScaling[w]["keystoneml"])
		}
	}
}

// retryTimingAssertion reruns a timing-marginal paper assertion on a
// fresh, independent series before failing: the policies' decisions rest
// on measured operator times, so a transient CPU-load spike on the test
// host can legitimately tip a near-equal comparison once. A genuine
// ordering regression reproduces on the immediate rerun; noise does not.
func retryTimingAssertion(t *testing.T, check func(t *testing.T) []string) {
	t.Helper()
	first := check(t)
	if len(first) == 0 {
		return
	}
	t.Logf("timing-marginal assertion violated once, retrying on a fresh series: %v", first)
	for _, v := range check(t) {
		t.Error(v)
	}
}

// TestFig8OptMatchesAMReuse asserts the paper's §6.6 finding: HELIX OPT
// achieves the same compute fractions as always-materialize.
func TestFig8OptMatchesAMReuse(t *testing.T) {
	retryTimingAssertion(t, func(t *testing.T) []string {
		r, err := Fig8(context.Background(), testConfig())
		if err != nil {
			t.Fatal(err)
		}
		var violations []string
		for _, wl := range []string{"census", "genomics"} {
			optSeries := r.Series[wl]["helix-opt"]
			am := r.Series[wl]["helix-am"].States
			for i, st := range optSeries.States {
				_, _, scOpt := Fractions(st)
				_, _, scAM := Fractions(am[i])
				// On DPR iterations OPT may recompute the cheap raw
				// intermediates it deliberately declined to materialize (the
				// paper's §6.5.2: "HELIX OPT reruns DPR ... because HELIX OPT
				// avoided materializing the large DPR output"), so a larger
				// compute fraction there is the heuristic working as designed.
				tol := 0.15
				if optSeries.Types[i] == core.DPR {
					tol = 0.40
				}
				if d := scOpt - scAM; d > tol || d < -tol {
					violations = append(violations,
						fmt.Sprintf("%s iteration %d (%s): compute fraction OPT %.2f vs AM %.2f", wl, i, optSeries.Types[i], scOpt, scAM))
				}
			}
		}
		return violations
	})
}

// TestFig9PolicyOrdering asserts Figure 9's ordering: OPT is the fastest
// policy and AM uses strictly more storage than OPT.
func TestFig9PolicyOrdering(t *testing.T) {
	retryTimingAssertion(t, func(t *testing.T) []string {
		r, err := Fig9(context.Background(), testConfig())
		if err != nil {
			t.Fatal(err)
		}
		var violations []string
		for _, wl := range FigureWorkloads {
			tot := r.Totals(wl)
			opt := tot["helix-opt"]
			for sys, v := range tot {
				if sys == "helix-opt" {
					continue
				}
				// Allow 25% tolerance: at unit-test scale, timer noise can
				// make near-equal policies cross.
				if v < opt*0.75 {
					violations = append(violations,
						fmt.Sprintf("%s: %s (%.3f) materially faster than helix-opt (%.3f)", wl, sys, v, opt))
				}
			}
		}
		for _, wl := range []string{"census", "genomics"} {
			st := r.FinalStorage(wl)
			// AM materializes a superset of what OPT does, so AM < OPT is always
			// a violation. The strict gap additionally requires OPT to decline
			// something; under the race detector (or a transient CPU-load
			// spike, which the retry absorbs), inflated compute times tip the
			// cost model into accepting every node, so equality is legitimate
			// there and only asserted in unraced runs.
			if st["helix-am"] < st["helix-opt"] || (!raceEnabled && st["helix-am"] == st["helix-opt"]) {
				violations = append(violations,
					fmt.Sprintf("%s: AM storage %d ≤ OPT storage %d", wl, st["helix-am"], st["helix-opt"]))
			}
			if st["helix-nm"] != 0 {
				violations = append(violations,
					fmt.Sprintf("%s: NM stored %d bytes", wl, st["helix-nm"]))
			}
		}
		return violations
	})
}

// TestFig10MemoryRecorded asserts the memory sampler produces plausible
// bounded values.
func TestFig10MemoryRecorded(t *testing.T) {
	r, err := Fig10(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for wl, s := range r.Series {
		for i := range s.PeakMem {
			if s.PeakMem[i] == 0 || s.AvgMem[i] == 0 {
				t.Errorf("%s iteration %d: memory not sampled", wl, i)
			}
			if s.PeakMem[i] < s.AvgMem[i] {
				t.Errorf("%s iteration %d: peak < avg", wl, i)
			}
		}
	}
}

func TestAblationOEPGreedyHasRegret(t *testing.T) {
	mean, worst := AblationOEPGreedy(300, 7)
	if mean < 0 || worst < mean {
		t.Fatalf("regret stats inconsistent: mean %.3f worst %.3f", mean, worst)
	}
	// Greedy should be suboptimal on at least some instances.
	if worst == 0 {
		t.Fatal("greedy never suboptimal across 300 random DAGs: ablation not discriminating")
	}
}

func TestAblationPruningHelps(t *testing.T) {
	on, off, err := AblationPruning(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if on <= 0 || off <= 0 {
		t.Fatal("ablation produced zero times")
	}
	// At this scale pruning mainly avoids the raceExt-style dead
	// extractors; times should at minimum not explode with pruning on.
	if on > off*1.5 {
		t.Fatalf("pruning on (%.3f) much slower than off (%.3f)", on, off)
	}
}

func TestAblationThresholdSweepRuns(t *testing.T) {
	res, ths, err := AblationOMPThreshold(context.Background(), Config{Scale: workloads.Scale{}, Seed: 1, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ths) != 4 || len(res) != 4 {
		t.Fatalf("sweep = %v", res)
	}
	for th, v := range res {
		if v <= 0 {
			t.Fatalf("threshold %v: zero time", th)
		}
	}
}

func TestAblationAmortizedOMP(t *testing.T) {
	r, err := AblationAmortizedOMP(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.StreamingSeconds <= 0 || r.AmortizedSeconds <= 0 {
		t.Fatal("zero run times")
	}
	// The user model only removes marginal materializations: storage must
	// not grow, run time must stay within 2x (it should be close).
	if r.AmortizedStorage > r.StreamingStorage {
		t.Errorf("amortized storage %d > streaming %d", r.AmortizedStorage, r.StreamingStorage)
	}
	if r.AmortizedSeconds > r.StreamingSeconds*2 {
		t.Errorf("amortized time %.3f ≫ streaming %.3f", r.AmortizedSeconds, r.StreamingSeconds)
	}
}
