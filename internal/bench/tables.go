package bench

import (
	"fmt"
	"strings"

	"helix/internal/sim"
)

// Table1Row maps one Scikit-learn operation to its composition of basis
// functions F (paper Table 1, §3.1.1).
type Table1Row struct {
	SklearnOp   string
	Composition string
	Section     string // "DPR, L/I" or "PPR"
}

// Table1 is the static coverage mapping of paper Table 1: every
// Scikit-learn DPR, L/I, and PPR interface expressed as compositions of
// the basis functions F = {parsing, join, feature extraction, feature
// transformation, feature concatenation, learning, inference, reduce}.
func Table1() []Table1Row {
	return []Table1Row{
		{"fit(X[, y])", "learning (D → f)", "DPR, L/I"},
		{"predict_proba(X)", "inference ((D, f) → Y)", "DPR, L/I"},
		{"predict(X)", "inference, optionally followed by transformation", "DPR, L/I"},
		{"fit_predict(X[, y])", "learning, then inference", "DPR, L/I"},
		{"transform(X)", "transformation or inference, depending on prior fit", "DPR, L/I"},
		{"fit_transform(X)", "learning, then inference", "DPR, L/I"},
		{"eval: score(ytrue, ypred)", "join ytrue and ypred into one dataset, then reduce", "PPR"},
		{"eval: score(op, X, y)", "inference, then join, then reduce", "PPR"},
		{"selection: fit(p1..pn)", "reduce over learning, inference, and reduce (scoring)", "PPR"},
	}
}

// Table1String renders Table 1.
func Table1String() string {
	var b strings.Builder
	b.WriteString("Table 1 — Scikit-learn coverage in terms of basis functions F\n")
	fmt.Fprintf(&b, "%-26s %-60s %s\n", "Scikit-learn", "composed members of F", "part")
	for _, r := range Table1() {
		fmt.Fprintf(&b, "%-26s %-60s %s\n", r.SklearnOp, r.Composition, r.Section)
	}
	return b.String()
}

// Table2Row is one workload row of the use-case support matrix.
type Table2Row struct {
	Workload      string
	NumSources    string
	InputMapping  string
	Granularity   string
	TaskType      string
	Domain        string
	SupportedBy   []string
	UnsupportedBy []string
}

// Table2 reproduces the support matrix of paper Table 2 by querying the
// sim package's support predicate for every (system, workload) pair.
func Table2() []Table2Row {
	meta := map[string][5]string{
		"census":   {"Single", "One-to-One", "Fine Grained", "Supervised; Classification", "Social Sciences"},
		"genomics": {"Multiple", "One-to-Many", "N/A", "Unsupervised", "Natural Sciences"},
		"nlp":      {"Multiple", "One-to-Many", "Fine Grained", "Structured Prediction", "NLP"},
		"mnist":    {"Single", "One-to-One", "Coarse Grained", "Supervised; Classification", "Computer Vision"},
	}
	systems := []string{"helix-opt", "keystoneml", "deepdive"}
	var rows []Table2Row
	for _, wl := range FigureWorkloads {
		m := meta[wl]
		row := Table2Row{
			Workload: wl, NumSources: m[0], InputMapping: m[1],
			Granularity: m[2], TaskType: m[3], Domain: m[4],
		}
		for _, sys := range systems {
			if sim.Supports(sys, wl) {
				row.SupportedBy = append(row.SupportedBy, sys)
			} else {
				row.UnsupportedBy = append(row.UnsupportedBy, sys)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Table2String renders Table 2.
func Table2String() string {
	var b strings.Builder
	b.WriteString("Table 2 — workflow characteristics and system support\n")
	fmt.Fprintf(&b, "%-10s %-9s %-12s %-14s %-28s %-17s %s\n",
		"workload", "sources", "mapping", "granularity", "task", "domain", "supported by")
	for _, r := range Table2() {
		fmt.Fprintf(&b, "%-10s %-9s %-12s %-14s %-28s %-17s %s\n",
			r.Workload, r.NumSources, r.InputMapping, r.Granularity, r.TaskType, r.Domain,
			strings.Join(r.SupportedBy, ","))
	}
	return b.String()
}
