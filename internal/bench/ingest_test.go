package bench

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"helix/internal/sim"
)

// ingestOutPath is where the continuous-ingest benchmark writes its
// per-tick JSON report; override with HELIX_BENCH_INGEST_OUT. CI uploads
// the file alongside BENCH_plan.json so the partial-hit rate and reuse
// savings of the streaming workload are tracked per PR.
func ingestOutPath() string {
	if p := os.Getenv("HELIX_BENCH_INGEST_OUT"); p != "" {
		return p
	}
	return "BENCH_ingest.json"
}

// BenchmarkContinuousIngest runs the continuous-ingest simulation
// (internal/sim.RunIngest: windowed batch slots, per-tick deliveries and
// quiet stretches under a long-lived PolicyOpt session) under both window
// semantics — tumbling and sliding — and records the two per-tick series
// side by side in BENCH_ingest.json. The plan-cache acceptance shape —
// exactly one cold solve, >0 partial hits, >0 full hits, positive savings
// — is asserted for each mode, so a planner or fingerprint regression
// fails the benchmark rather than silently flattening the report.
func BenchmarkContinuousIngest(b *testing.B) {
	ctx := context.Background()
	var cmp *IngestComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = Ingest(ctx, Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, mode := range []struct {
		name string
		rep  *sim.IngestReport
	}{{"tumbling", cmp.Tumbling}, {"sliding", cmp.Sliding}} {
		if mode.rep.ColdPlans != 1 || mode.rep.PartialHits == 0 || mode.rep.FullHits == 0 {
			b.Fatalf("%s plan-cache shape regressed: %d cold / %d partial / %d full hits",
				mode.name, mode.rep.ColdPlans, mode.rep.PartialHits, mode.rep.FullHits)
		}
		if mode.rep.TotalSavedSeconds <= 0 {
			b.Fatalf("%s reuse savings = %f, want > 0", mode.name, mode.rep.TotalSavedSeconds)
		}
	}
	b.ReportMetric(cmp.Tumbling.PartialHitRate(), "partial-hit-rate")
	b.ReportMetric(cmp.Tumbling.TotalSavedSeconds, "saved-sec")
	b.ReportMetric(cmp.Sliding.PartialHitRate(), "sliding-partial-hit-rate")
	b.ReportMetric(cmp.Sliding.TotalSavedSeconds, "sliding-saved-sec")

	data, err := json.MarshalIndent(cmp, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(ingestOutPath(), append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", ingestOutPath(), err)
	}
}
