package bench

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"helix/internal/sim"
)

// ingestOutPath is where the continuous-ingest benchmark writes its
// per-tick JSON report; override with HELIX_BENCH_INGEST_OUT. CI uploads
// the file alongside BENCH_plan.json so the partial-hit rate and reuse
// savings of the streaming workload are tracked per PR.
func ingestOutPath() string {
	if p := os.Getenv("HELIX_BENCH_INGEST_OUT"); p != "" {
		return p
	}
	return "BENCH_ingest.json"
}

// BenchmarkContinuousIngest runs the continuous-ingest simulation
// (internal/sim.RunIngest: windowed batch slots, per-tick deliveries and
// quiet stretches under a long-lived PolicyOpt session) and records the
// per-tick plan-cache outcomes and reuse savings into BENCH_ingest.json.
// The plan-cache acceptance shape — exactly one cold solve, >0 partial
// hits, >0 full hits, positive savings — is asserted, so a planner or
// fingerprint regression fails the benchmark rather than silently
// flattening the report.
func BenchmarkContinuousIngest(b *testing.B) {
	ctx := context.Background()
	var rep *sim.IngestReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = sim.RunIngest(ctx, sim.IngestConfig{Window: 4, Parallelism: 2})
		if err != nil {
			b.Fatal(err)
		}
	}
	if rep.ColdPlans != 1 || rep.PartialHits == 0 || rep.FullHits == 0 {
		b.Fatalf("plan-cache shape regressed: %d cold / %d partial / %d full hits",
			rep.ColdPlans, rep.PartialHits, rep.FullHits)
	}
	if rep.TotalSavedSeconds <= 0 {
		b.Fatalf("reuse savings = %f, want > 0", rep.TotalSavedSeconds)
	}
	b.ReportMetric(rep.PartialHitRate(), "partial-hit-rate")
	b.ReportMetric(rep.TotalSavedSeconds, "saved-sec")

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(ingestOutPath(), append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", ingestOutPath(), err)
	}
}
