package opt

import (
	"math"

	"helix/internal/core"
)

// BruteForceStates solves OPT-EXEC-PLAN by exhaustive enumeration of all
// 3^n state assignments. Exponential — test oracle only (n ≲ 12).
func BruteForceStates(d *core.DAG, costs map[*core.Node]Costs) Plan {
	var live []*core.Node
	for _, n := range d.Nodes() {
		if _, ok := costs[n]; ok {
			live = append(live, n)
		}
	}
	best := Plan{Time: math.Inf(1)}
	assign := make([]core.State, len(live))
	var rec func(i int)
	rec = func(i int) {
		if i == len(live) {
			states := make(map[*core.Node]core.State, d.Len())
			for _, n := range d.Nodes() {
				states[n] = core.StatePrune
			}
			for j, n := range live {
				states[n] = assign[j]
			}
			if CheckFeasible(d, costs, states) != nil {
				return
			}
			t := PlanTime(states, costs)
			if t < best.Time {
				best = Plan{States: states, Time: t}
			}
			return
		}
		for _, s := range []core.State{core.StateCompute, core.StateLoad, core.StatePrune} {
			assign[i] = s
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// ExactOMP solves OPT-MAT-PLAN exactly by enumerating all 2^n
// materialization subsets, under the paper's simplifying assumption for the
// NP-hardness proof (Eq. 11): the next iteration's workflow is identical
// and every node is reusable. For each candidate subset M it evaluates
// Equation 3, T_M(W_t) = Σ_{n∈M} l_n + T*(W_{t+1} | M materialized), using
// the optimal OEP solver for the second term. Exponential — test oracle and
// ablation reference only.
func ExactOMP(d *core.DAG, costs map[*core.Node]Costs, sizes map[*core.Node]int64, budget int64) (best map[*core.Node]bool, bestTime float64) {
	nodes := d.Nodes()
	bestTime = math.Inf(1)
	n := len(nodes)
	for mask := 0; mask < 1<<n; mask++ {
		var matTime float64
		var used int64
		m := make(map[*core.Node]bool)
		ok := true
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			node := nodes[i]
			c, inCosts := costs[node]
			if !inCosts || math.IsInf(c.Load, 1) {
				ok = false // cannot materialize a node with unknown load cost
				break
			}
			m[node] = true
			matTime += c.Load // write time ≈ load time (paper §5.3)
			used += sizes[node]
		}
		if !ok || (budget >= 0 && used > budget) {
			continue
		}
		// Next-iteration costs: identical workflow, loads available only
		// for materialized nodes.
		next := make(map[*core.Node]Costs, len(costs))
		for node, c := range costs {
			nc := Costs{Compute: c.Compute, Load: math.Inf(1), Required: c.Required}
			if m[node] {
				nc.Load = c.Load
			}
			next[node] = nc
		}
		t := matTime + OptimalStates(d, next).Time
		if t < bestTime {
			bestTime = t
			best = m
		}
	}
	return best, bestTime
}
