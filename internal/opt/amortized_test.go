package opt

import (
	"testing"

	"helix/internal/core"
)

// pprChain builds DPR → LI → PPR with the PPR node as the leaf.
func pprChain(t *testing.T) (*core.DAG, *core.Node, *core.Node, *core.Node) {
	t.Helper()
	d := core.NewDAG()
	dpr := d.MustAddNode("dpr", core.KindScanner, core.DPR, "s", true)
	li := d.MustAddNode("li", core.KindLearner, core.LI, "l", true)
	ppr := d.MustAddNode("ppr", core.KindReducer, core.PPR, "r", true)
	if err := d.AddEdge(dpr, li); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(li, ppr); err != nil {
		t.Fatal(err)
	}
	return d, dpr, li, ppr
}

func TestSurveyChangeModelDomains(t *testing.T) {
	for _, domain := range []string{"census", "nlp", "genomics", "mnist", "unknown"} {
		m := SurveyChangeModel(domain)
		var sum float64
		for _, p := range m.P {
			sum += p
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s: probabilities sum to %v", domain, sum)
		}
	}
	if SurveyChangeModel("nlp").P[core.DPR] != 1 {
		t.Fatal("nlp domain must be all-DPR")
	}
}

func TestReuseProbabilityOrdering(t *testing.T) {
	_, dpr, _, ppr := pprChain(t)
	m := SurveyChangeModel("census") // PPR-heavy changes
	// The DPR node is deprecated only by DPR changes (p=0.3); the PPR
	// node by changes anywhere in its ancestry (p=1.0). So the DPR node
	// is the safer bet for reuse.
	if m.ReuseProbability(dpr) <= m.ReuseProbability(ppr) {
		t.Fatalf("reuse probability DPR %.2f ≤ PPR %.2f",
			m.ReuseProbability(dpr), m.ReuseProbability(ppr))
	}
}

func TestAmortizedOMPDiscountsUnstableNodes(t *testing.T) {
	_, dpr, _, ppr := pprChain(t)
	m := SurveyChangeModel("census")
	p := NewAmortizedOMP(m, -1)
	// Marginal case: C = 2.5·load. The stable DPR node's expected payoff
	// clears the threshold; the unstable PPR leaf's does not.
	if !p.Decide(dpr, 2.5, 1, 10) {
		t.Fatal("stable DPR node should materialize")
	}
	if p.Decide(ppr, 2.5, 1, 10) {
		t.Fatal("unstable PPR node should be discounted below threshold")
	}
	// Overwhelming payoff clears either.
	if !p.Decide(ppr, 100, 1, 10) {
		t.Fatal("huge payoff should still materialize")
	}
}

func TestAmortizedOMPReducesToStreamingWithCertainReuse(t *testing.T) {
	_, dpr, _, _ := pprChain(t)
	certain := ChangeModel{P: map[core.Component]float64{}} // nothing ever changes
	am := NewAmortizedOMP(certain, -1)
	st := NewStreamingOMP(-1)
	for _, c := range []struct{ cum, load float64 }{{1, 1}, {2.1, 1}, {3, 1}, {0.5, 1}} {
		if am.Decide(dpr, c.cum, c.load, 1) != st.Decide(dpr, c.cum, c.load, 1) {
			t.Fatalf("divergence at C=%v l=%v", c.cum, c.load)
		}
	}
}

func TestAmortizedOMPBudget(t *testing.T) {
	_, dpr, _, _ := pprChain(t)
	m := ChangeModel{P: map[core.Component]float64{}}
	p := NewAmortizedOMP(m, 100)
	if !p.Decide(dpr, 100, 1, 80) {
		t.Fatal("first decision within budget")
	}
	if p.Decide(dpr, 100, 1, 80) {
		t.Fatal("second decision should exceed budget")
	}
	p.Release(80)
	if !p.Decide(dpr, 100, 1, 80) {
		t.Fatal("released budget should be spendable")
	}
}
