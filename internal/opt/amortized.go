package opt

import (
	"sync"

	"helix/internal/core"
)

// ChangeModel gives the probability that the next iteration modifies each
// workflow component — the user model the paper defers to future work
// (§5.3: "This user model can be incorporated into OMP by using the
// predicted changes to better estimate the likelihood of reuse for each
// operator"). Probabilities come from the iteration-frequency survey [78]
// that also drives the simulated schedules.
type ChangeModel struct {
	// P maps component → probability that an iteration changes it.
	// Values should sum to ~1 across components.
	P map[core.Component]float64
}

// SurveyChangeModel returns the change distribution for a workload
// domain, mirroring the per-domain schedules of §6.3: social sciences
// iterate mostly on PPR, NLP entirely on DPR, natural sciences and
// computer vision mix DPR and L/I.
func SurveyChangeModel(domain string) ChangeModel {
	switch domain {
	case "social", "census":
		return ChangeModel{P: map[core.Component]float64{core.DPR: 0.3, core.LI: 0.1, core.PPR: 0.6}}
	case "nlp", "ie":
		return ChangeModel{P: map[core.Component]float64{core.DPR: 1.0}}
	case "natural", "genomics":
		return ChangeModel{P: map[core.Component]float64{core.DPR: 0.3, core.LI: 0.4, core.PPR: 0.3}}
	case "vision", "mnist":
		return ChangeModel{P: map[core.Component]float64{core.DPR: 0.3, core.LI: 0.4, core.PPR: 0.3}}
	default:
		return ChangeModel{P: map[core.Component]float64{core.DPR: 1.0 / 3, core.LI: 1.0 / 3, core.PPR: 1.0 / 3}}
	}
}

// ReuseProbability estimates the probability that node n itself remains
// equivalent in the next iteration: one minus the probability that the
// change lands in n's own component or any ancestor's. Downstream
// changes do not deprecate n.
func (m ChangeModel) ReuseProbability(n *core.Node) float64 {
	// Components present in n's ancestry (including n).
	present := map[core.Component]bool{n.Component: true}
	for anc := range core.Ancestors(n) {
		present[anc.Component] = true
	}
	var pChange float64
	for comp, p := range m.P {
		if present[comp] {
			pChange += p
		}
	}
	// A change in a present component deprecates n only if it hits n or
	// an ancestor, not a sibling; discount by half as a coarse prior for
	// intra-component locality.
	pDeprecate := pChange * 0.5
	if pDeprecate > 1 {
		pDeprecate = 1
	}
	return 1 - pDeprecate
}

// AmortizedOMP extends the streaming heuristic with the change model:
// materialize iff expected payoff p(reuse)·C(n) exceeds the write+load
// cost. With p(reuse)=1 it reduces exactly to Algorithm 2. Like every
// MatPolicy it is safe for concurrent Decide calls, including from the
// store's write-behind writer goroutines; the budget is reserved under
// an internal mutex.
type AmortizedOMP struct {
	Model ChangeModel
	// Threshold as in StreamingOMP; 0 selects 2.
	Threshold float64

	mu        sync.Mutex
	remaining int64
	unbounded bool
}

// NewAmortizedOMP returns the amortized policy with the given budget in
// bytes (negative = unbounded).
func NewAmortizedOMP(model ChangeModel, budget int64) *AmortizedOMP {
	return &AmortizedOMP{Model: model, Threshold: 2, remaining: budget, unbounded: budget < 0}
}

// Name implements MatPolicy.
func (p *AmortizedOMP) Name() string { return "helix-opt-amortized" }

// Blind implements MatPolicy.
func (p *AmortizedOMP) Blind() bool { return false }

// Decide implements MatPolicy: C(n)·p(reuse) > threshold·load and budget.
func (p *AmortizedOMP) Decide(n *core.Node, cumulative, load float64, size int64) bool {
	th := p.Threshold
	if th <= 0 {
		th = 2
	}
	if cumulative*p.Model.ReuseProbability(n) <= th*load {
		return false
	}
	if p.unbounded {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.remaining < size {
		return false
	}
	p.remaining -= size
	return true
}

// Release returns budget (e.g. after purging deprecated entries).
func (p *AmortizedOMP) Release(size int64) {
	if p.unbounded {
		return
	}
	p.mu.Lock()
	p.remaining += size
	p.mu.Unlock()
}
