package opt

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"helix/internal/core"
)

// --- PSP ---

func TestPSPAllPositiveNoPrereqs(t *testing.T) {
	sel := SolvePSP([]float64{3, 5, 2}, nil)
	for i, s := range sel {
		if !s {
			t.Fatalf("project %d with positive profit unselected", i)
		}
	}
}

func TestPSPNegativeAlone(t *testing.T) {
	sel := SolvePSP([]float64{-4}, nil)
	if sel[0] {
		t.Fatal("negative-profit project selected with no reason")
	}
}

func TestPSPPrereqForcesBundle(t *testing.T) {
	// Project 0 profit 10 requires project 1 profit -3: bundle worth 7 → select both.
	sel := SolvePSP([]float64{10, -3}, []Prereq{{Project: 0, Requires: 1}})
	if !sel[0] || !sel[1] {
		t.Fatalf("profitable bundle not selected: %v", sel)
	}
	// Profit 2 requires -3: bundle worth -1 → select neither.
	sel = SolvePSP([]float64{2, -3}, []Prereq{{Project: 0, Requires: 1}})
	if sel[0] || sel[1] {
		t.Fatalf("losing bundle selected: %v", sel)
	}
}

// bruteForcePSP enumerates all subsets.
func bruteForcePSP(profits []float64, prereqs []Prereq) float64 {
	n := len(profits)
	best := 0.0 // empty selection is always feasible with profit 0
	for mask := 0; mask < 1<<n; mask++ {
		sel := make([]bool, n)
		for i := 0; i < n; i++ {
			sel[i] = mask&(1<<i) != 0
		}
		if v, ok := PSPValue(profits, prereqs, sel); ok && v > best {
			best = v
		}
	}
	return best
}

func TestQuickPSPOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		profits := make([]float64, n)
		for i := range profits {
			profits[i] = float64(rng.Intn(21) - 10)
		}
		var prereqs []Prereq
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.2 {
					prereqs = append(prereqs, Prereq{Project: i, Requires: j})
				}
			}
		}
		sel := SolvePSP(profits, prereqs)
		got, ok := PSPValue(profits, prereqs, sel)
		if !ok {
			return false // solver violated a prerequisite
		}
		want := bruteForcePSP(profits, prereqs)
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- OEP ---

// buildDAG constructs a DAG from an edge list over n nodes.
func buildDAG(t testing.TB, n int, edges [][2]int) *core.DAG {
	t.Helper()
	d := core.NewDAG()
	nodes := make([]*core.Node, n)
	for i := range nodes {
		nodes[i] = d.MustAddNode(fmt.Sprintf("n%d", i), core.KindExtractor, core.DPR, fmt.Sprintf("op%d", i), true)
	}
	for _, e := range edges {
		if err := d.AddEdge(nodes[e[0]], nodes[e[1]]); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestOEPFigure4 reproduces the paper's Figure 4 example shape: loading a
// node lets its entire ancestor chain be pruned.
func TestOEPFigure4(t *testing.T) {
	// n0 → n1 → n2, n2 cheap to load, expensive chain above.
	d := buildDAG(t, 3, [][2]int{{0, 1}, {1, 2}})
	ns := d.Nodes()
	costs := map[*core.Node]Costs{
		ns[0]: {Compute: 100, Load: math.Inf(1)},
		ns[1]: {Compute: 100, Load: math.Inf(1)},
		ns[2]: {Compute: 100, Load: 1, Required: true},
	}
	plan := OptimalStates(d, costs)
	if plan.States[ns[2]] != core.StateLoad {
		t.Fatalf("n2 state = %v, want Load", plan.States[ns[2]])
	}
	if plan.States[ns[0]] != core.StatePrune || plan.States[ns[1]] != core.StatePrune {
		t.Fatalf("ancestors not pruned: %v %v", plan.States[ns[0]], plan.States[ns[1]])
	}
	if math.Abs(plan.Time-1) > 1e-9 {
		t.Fatalf("plan time = %v, want 1", plan.Time)
	}
}

// TestOEPComputeForcesParent mirrors the n8/n5 interaction in Figure 4:
// computing a node forces its parent to be available even if another
// branch is loaded.
func TestOEPComputeForcesParent(t *testing.T) {
	// n0 → n1 (changed, must compute); n0 expensive to compute, cheap load.
	d := buildDAG(t, 2, [][2]int{{0, 1}})
	ns := d.Nodes()
	costs := map[*core.Node]Costs{
		ns[0]: {Compute: 50, Load: 2},
		ns[1]: {Compute: 5, Load: math.Inf(1), MustCompute: true, Required: true},
	}
	plan := OptimalStates(d, costs)
	if plan.States[ns[1]] != core.StateCompute {
		t.Fatalf("original node state = %v, want Compute", plan.States[ns[1]])
	}
	if plan.States[ns[0]] != core.StateLoad {
		t.Fatalf("parent state = %v, want Load (cheaper than compute)", plan.States[ns[0]])
	}
	if err := CheckFeasible(d, costs, plan.States); err != nil {
		t.Fatal(err)
	}
}

func TestOEPPruneEverythingWhenNothingRequired(t *testing.T) {
	d := buildDAG(t, 3, [][2]int{{0, 1}, {1, 2}})
	costs := map[*core.Node]Costs{}
	for _, n := range d.Nodes() {
		costs[n] = Costs{Compute: 10, Load: 1}
	}
	plan := OptimalStates(d, costs)
	for n, s := range plan.States {
		if s != core.StatePrune {
			t.Fatalf("node %s = %v, want Prune (no outputs required)", n.Name, s)
		}
	}
	if plan.Time != 0 {
		t.Fatalf("time = %v, want 0", plan.Time)
	}
}

func TestOEPNodesOutsideSlicePruned(t *testing.T) {
	d := buildDAG(t, 2, nil)
	ns := d.Nodes()
	costs := map[*core.Node]Costs{ns[0]: {Compute: 1, Load: math.Inf(1), Required: true}}
	plan := OptimalStates(d, costs)
	if plan.States[ns[1]] != core.StatePrune {
		t.Fatal("node outside costs must be pruned")
	}
	if plan.States[ns[0]] != core.StateCompute {
		t.Fatal("required node without materialization must be computed")
	}
}

// randomOEPInstance builds a random DAG and cost assignment.
func randomOEPInstance(rng *rand.Rand, n int) (*core.DAG, map[*core.Node]Costs) {
	d := core.NewDAG()
	nodes := make([]*core.Node, n)
	for i := range nodes {
		nodes[i] = d.MustAddNode(fmt.Sprintf("n%d", i), core.KindExtractor, core.DPR, fmt.Sprintf("op%d", i), true)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.35 {
				if err := d.AddEdge(nodes[i], nodes[j]); err != nil {
					panic(err)
				}
			}
		}
	}
	costs := make(map[*core.Node]Costs, n)
	for _, node := range nodes {
		c := Costs{
			Compute: float64(1 + rng.Intn(20)),
			Load:    float64(1 + rng.Intn(20)),
		}
		if rng.Float64() < 0.3 {
			c.Load = math.Inf(1)
		}
		if rng.Float64() < 0.2 {
			c.MustCompute = true
			c.Load = math.Inf(1)
		}
		if rng.Float64() < 0.3 {
			c.Required = true
		}
		costs[node] = c
	}
	// Ensure at least one sink is required so the instance is nontrivial.
	costs[nodes[n-1]] = Costs{Compute: float64(1 + rng.Intn(20)), Load: math.Inf(1), Required: true}
	return d, costs
}

// TestQuickOEPOptimalVsBruteForce is the core correctness property:
// Algorithm 1's plan cost equals the exhaustive optimum (Theorem 2).
func TestQuickOEPOptimalVsBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		d, costs := randomOEPInstance(rng, n)
		plan := OptimalStates(d, costs)
		if err := CheckFeasible(d, costs, plan.States); err != nil {
			t.Logf("infeasible: %v", err)
			return false
		}
		brute := BruteForceStates(d, costs)
		if math.IsInf(brute.Time, 1) {
			return true // no feasible plan exists; nothing to compare
		}
		if math.Abs(plan.Time-brute.Time) > 1e-6 {
			t.Logf("plan=%v brute=%v", plan.Time, brute.Time)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOEPFeasibleLarge checks feasibility (not optimality) on larger
// random DAGs where brute force is impossible.
func TestQuickOEPFeasibleLarge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		d, costs := randomOEPInstance(rng, n)
		plan := OptimalStates(d, costs)
		return CheckFeasible(d, costs, plan.States) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGreedyFeasibleAndNeverBeatsOptimal: the greedy ablation baseline
// is always feasible and never better than the optimal plan.
func TestQuickGreedyFeasibleAndNeverBeatsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		d, costs := randomOEPInstance(rng, n)
		greedy := GreedyStates(d, costs)
		if err := CheckFeasible(d, costs, greedy.States); err != nil {
			t.Logf("greedy infeasible: %v", err)
			return false
		}
		opt := OptimalStates(d, costs)
		return greedy.Time >= opt.Time-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedySuboptimalExample(t *testing.T) {
	// Greedy loads both children locally; optimal loads only the sink and
	// prunes the chain. Demonstrates the value of the global min-cut.
	d := buildDAG(t, 3, [][2]int{{0, 1}, {1, 2}})
	ns := d.Nodes()
	costs := map[*core.Node]Costs{
		ns[0]: {Compute: 10, Load: 4},
		ns[1]: {Compute: 10, Load: 4},
		ns[2]: {Compute: 10, Load: 4, Required: true},
	}
	opt := OptimalStates(d, costs)
	if opt.Time != 4 {
		t.Fatalf("optimal time = %v, want 4 (load sink only)", opt.Time)
	}
}

// --- OMP ---

func TestStreamingOMPThreshold(t *testing.T) {
	p := NewStreamingOMP(-1)
	if p.Decide(nil, 10, 6, 100) {
		t.Fatal("materialized although C <= 2l")
	}
	if !p.Decide(nil, 13, 6, 100) {
		t.Fatal("did not materialize although C > 2l")
	}
}

func TestStreamingOMPBudget(t *testing.T) {
	p := NewStreamingOMP(150)
	if !p.Decide(nil, 100, 1, 100) {
		t.Fatal("first decision should fit budget")
	}
	if p.Decide(nil, 100, 1, 100) {
		t.Fatal("second decision should exceed budget")
	}
	if got := p.Remaining(); got != 50 {
		t.Fatalf("remaining = %d, want 50", got)
	}
	p.Release(100)
	if !p.Decide(nil, 100, 1, 100) {
		t.Fatal("released budget should allow materialization")
	}
}

func TestAlwaysNeverPolicies(t *testing.T) {
	if !(AlwaysMat{}).Decide(nil, 0, 1e9, 1<<40) {
		t.Fatal("AlwaysMat must always materialize")
	}
	if (NeverMat{}).Decide(nil, 1e9, 0, 0) {
		t.Fatal("NeverMat must never materialize")
	}
	names := map[string]bool{(AlwaysMat{}).Name(): true, (NeverMat{}).Name(): true, NewStreamingOMP(0).Name(): true}
	if len(names) != 3 {
		t.Fatal("policy names must be distinct")
	}
}

func TestCumulativeTimes(t *testing.T) {
	d := buildDAG(t, 3, [][2]int{{0, 1}, {1, 2}})
	ns := d.Nodes()
	own := map[*core.Node]float64{ns[0]: 1, ns[1]: 2, ns[2]: 4}
	cum := CumulativeTimes(d, own)
	if cum[ns[0]] != 1 || cum[ns[1]] != 3 || cum[ns[2]] != 7 {
		t.Fatalf("cumulative = %v %v %v, want 1 3 7", cum[ns[0]], cum[ns[1]], cum[ns[2]])
	}
}

func TestCumulativeTimesDiamondCountsOnce(t *testing.T) {
	// Diamond: 0 → 1, 0 → 2, 1 → 3, 2 → 3. Node 0 counted once for node 3.
	d := buildDAG(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	ns := d.Nodes()
	own := map[*core.Node]float64{ns[0]: 10, ns[1]: 1, ns[2]: 1, ns[3]: 1}
	cum := CumulativeTimes(d, own)
	if cum[ns[3]] != 13 {
		t.Fatalf("cumulative(n3) = %v, want 13 (shared ancestor counted once)", cum[ns[3]])
	}
}

// TestExactOMPPrefersExpensiveChains: with budget for one node, the exact
// OMP materializes the node whose reuse saves the most.
func TestExactOMPPrefersExpensiveChains(t *testing.T) {
	d := buildDAG(t, 3, [][2]int{{0, 1}, {1, 2}})
	ns := d.Nodes()
	costs := map[*core.Node]Costs{
		ns[0]: {Compute: 10, Load: 1, Required: false},
		ns[1]: {Compute: 10, Load: 1},
		ns[2]: {Compute: 10, Load: 1, Required: true},
	}
	sizes := map[*core.Node]int64{ns[0]: 100, ns[1]: 100, ns[2]: 100}
	m, _ := ExactOMP(d, costs, sizes, 100)
	if !m[ns[2]] {
		t.Fatalf("exact OMP should materialize the sink: got %v", m)
	}
}

// TestQuickStreamingOMPNeverWorseThanNeverMat: under the identical-next-
// iteration assumption, following Algorithm 2's choices never yields a
// worse next-iteration total than materializing nothing.
func TestQuickStreamingOMPNeverWorseThanNeverMat(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		d, costs := randomOEPInstance(rng, n)
		// First iteration: everything computed (no materializations yet).
		own := make(map[*core.Node]float64, n)
		firstCosts := make(map[*core.Node]Costs, n)
		for node, c := range costs {
			own[node] = c.Compute
			firstCosts[node] = Costs{Compute: c.Compute, Load: math.Inf(1), Required: c.Required, MustCompute: c.MustCompute}
		}
		cum := CumulativeTimes(d, own)
		// Apply Algorithm 2 with synthetic load costs.
		pol := NewStreamingOMP(-1)
		matTime := 0.0
		mat := make(map[*core.Node]bool)
		for _, node := range d.Nodes() {
			load := float64(1 + rng.Intn(10))
			if pol.Decide(node, cum[node], load, 1) {
				mat[node] = true
				matTime += load
				c := costs[node]
				c.Load = load
				costs[node] = c
			} else {
				c := costs[node]
				c.Load = math.Inf(1)
				costs[node] = c
			}
		}
		// Next iteration identical: drop MustCompute.
		next := make(map[*core.Node]Costs, n)
		nothing := make(map[*core.Node]Costs, n)
		for node, c := range costs {
			next[node] = Costs{Compute: c.Compute, Load: c.Load, Required: c.Required}
			nothing[node] = Costs{Compute: c.Compute, Load: math.Inf(1), Required: c.Required}
		}
		withMat := matTime + OptimalStates(d, next).Time
		noMat := OptimalStates(d, nothing).Time
		// Algorithm 2 materializes only when 2·load < C, so the investment
		// should not exceed the recompute-from-scratch bound by more than
		// the materialization time itself (it is a heuristic, not optimal;
		// we check the weaker sound-investment property).
		return withMat <= noMat+matTime+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMiniBatchOMPPinsFirstDecision(t *testing.T) {
	d := core.NewDAG()
	n := d.MustAddNode("op", core.KindExtractor, core.DPR, "op-v1", true)
	inner := NewStreamingOMP(-1)
	p := NewMiniBatchOMP(inner)
	if p.Name() == "" || p.Blind() {
		t.Fatal("metadata wrong")
	}
	// First batch: cumulative 10s vs load 1s → materialize (10 > 2).
	if !p.Decide(n, 10, 1, 100) {
		t.Fatal("first batch should materialize")
	}
	// Later batches with contradicting statistics replay the decision.
	if !p.Decide(n, 0.1, 1, 100) {
		t.Fatal("pinned decision not replayed")
	}
	// A different operator gets its own first-batch decision.
	m := d.MustAddNode("other", core.KindExtractor, core.DPR, "o-v1", true)
	if p.Decide(m, 0.1, 1, 100) {
		t.Fatal("cheap operator should not materialize")
	}
	if p.Decide(m, 100, 1, 100) {
		t.Fatal("pinned negative decision not replayed")
	}
}

func TestMiniBatchOMPConcurrent(t *testing.T) {
	d := core.NewDAG()
	n := d.MustAddNode("op", core.KindExtractor, core.DPR, "op-v1", true)
	p := NewMiniBatchOMP(NewStreamingOMP(-1))
	const workers = 16
	results := make(chan bool, workers)
	for i := 0; i < workers; i++ {
		go func() { results <- p.Decide(n, 10, 1, 100) }()
	}
	first := <-results
	for i := 1; i < workers; i++ {
		if <-results != first {
			t.Fatal("concurrent batches saw different decisions")
		}
	}
}

// TestSolverReuseMatchesFreshSolves: one Solver reused across many
// differently-shaped random instances must produce exactly the plan a
// throwaway solver produces — scratch reuse may never leak state between
// solves.
func TestSolverReuseMatchesFreshSolves(t *testing.T) {
	var pooled Solver
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(40)
		d, costs := randomOEPInstance(rng, n)
		got := pooled.OptimalStates(d, costs)
		want := OptimalStates(d, costs)
		if math.Abs(got.Time-want.Time) > 1e-9 {
			t.Fatalf("instance %d: pooled time %v, fresh %v", i, got.Time, want.Time)
		}
		if err := CheckFeasible(d, costs, got.States); err != nil {
			t.Fatalf("instance %d: pooled plan infeasible: %v", i, err)
		}
		for _, nd := range d.Nodes() {
			if got.States[nd] != want.States[nd] {
				t.Fatalf("instance %d node %s: pooled %v, fresh %v", i, nd.Name, got.States[nd], want.States[nd])
			}
		}
	}
}

// TestSolveCountInstrumentation: every OptimalStates call ticks the
// process-wide counter exactly once.
func TestSolveCountInstrumentation(t *testing.T) {
	d := buildDAG(t, 2, [][2]int{{0, 1}})
	costs := map[*core.Node]Costs{
		d.Nodes()[0]: {Compute: 1, Load: math.Inf(1)},
		d.Nodes()[1]: {Compute: 1, Load: math.Inf(1), Required: true},
	}
	before := SolveCount()
	OptimalStates(d, costs)
	var s Solver
	s.OptimalStates(d, costs)
	if got := SolveCount() - before; got != 2 {
		t.Fatalf("SolveCount delta = %d, want 2", got)
	}
}
