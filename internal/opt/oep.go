package opt

import (
	"fmt"
	"math"
	"sync/atomic"

	"helix/internal/core"

	"helix/internal/maxflow"
)

// solveCount tallies OPT-EXEC-PLAN max-flow solves process-wide. The plan
// cache's acceptance contract — a fingerprint hit performs zero solves —
// is asserted against deltas of this counter.
var solveCount atomic.Int64

// SolveCount reports the cumulative number of OPT-EXEC-PLAN solves
// (Solver.OptimalStates invocations, each one max-flow computation)
// performed by the process so far.
func SolveCount() int64 { return solveCount.Load() }

// Costs holds the per-node inputs to OPT-EXEC-PLAN (paper §5.1).
// Times are in seconds (float64 for solver arithmetic).
type Costs struct {
	// Compute is c_i: the time to compute the node from in-memory inputs.
	Compute float64
	// Load is l_i: the time to load the node's equivalent materialization
	// from disk. math.Inf(1) when no equivalent materialization exists
	// (Definition 3).
	Load float64
	// MustCompute enforces Constraint 1: original operators are recomputed.
	MustCompute bool
	// Required forbids pruning (used for outputs that have no previously
	// recorded result: they must be produced one way or another).
	Required bool
}

// Plan is the result of OEP: a state per node plus the projected run time
// T(W, s) of Equation 1.
type Plan struct {
	States map[*core.Node]core.State
	// Time is the projected run time in seconds under the true costs.
	Time float64
}

// Solver solves OPT-EXEC-PLAN instances. The zero value is ready to use;
// a Solver retained across iterations (the planner pools one) reuses its
// flow network, profit/prerequisite buffers, and index maps between
// solves, cutting the steady-state allocation bill of iterative planning.
// A Solver is not safe for concurrent use.
type Solver struct {
	g        *maxflow.Graph
	idx      map[*core.Node]int
	live     []*core.Node
	sc       []solverCost
	profits  []float64
	prereqs  []Prereq
	selected []bool
}

type solverCost struct{ load, compute float64 }

// OptimalStates solves OPT-EXEC-PLAN (Problem 1) optimally via Algorithm 1:
// the linear-time reduction to the project selection problem, solved by
// min-cut. Nodes absent from costs are pruned outright (they are outside
// the program slice). Equivalent to the package-level OptimalStates but
// reuses the solver's scratch storage.
//
// The reduction builds, per node n_i, project a_i with profit -l_i and
// project b_i with profit l_i - c_i, with a_i prerequisite to b_i, and
// a_i prerequisite to b_j for every child n_j of n_i. Selecting {a_i, b_i}
// ⇔ Compute, {a_i} ⇔ Load, {} ⇔ Prune.
//
// Infinite loads, forced computes and required nodes are encoded with
// tiered finite magnitudes (bigM, epsilon) so that the flow network stays
// finite; the tiers are separated by more than the total true cost so they
// can never be traded against real savings.
func (s *Solver) OptimalStates(d *core.DAG, costs map[*core.Node]Costs) Plan {
	solveCount.Add(1)
	nodes := d.TopoSort()
	// Index the participating (live) nodes.
	if s.idx == nil {
		s.idx = make(map[*core.Node]int, len(nodes))
	} else {
		clear(s.idx)
	}
	idx := s.idx
	live := s.live[:0]
	for _, n := range nodes {
		if _, ok := costs[n]; ok {
			idx[n] = len(live)
			live = append(live, n)
		}
	}
	s.live = live

	// Tiered magnitudes: sumTrue < bigM < reward, with epsilon far below
	// any real cost distinction.
	var sumTrue float64
	for _, c := range costs {
		sumTrue += c.Compute
		if !math.IsInf(c.Load, 1) {
			sumTrue += c.Load
		}
	}
	bigM := (sumTrue + 1) * 1e3
	// reward dominates the worst-case drag of forcing a node: even if every
	// node in the instance must be loaded at bigM cost to satisfy the
	// forced selection, the reward still wins. Kept within ~9 decimal
	// orders of the true costs so float64 additions stay exact enough.
	reward := bigM * float64(len(live)+1) * 1e3

	// Solver-facing costs: infinite loads become bigM (never attractive,
	// but finite for the flow network).
	if cap(s.sc) < len(live) {
		s.sc = make([]solverCost, len(live))
	}
	sc := s.sc[:len(live)]
	for i, n := range live {
		c := costs[n]
		load := c.Load
		if math.IsInf(load, 1) || c.MustCompute {
			load = bigM
		}
		sc[i] = solverCost{load: load, compute: c.Compute}
	}

	// Projects: a_i at 2i, b_i at 2i+1. Constraint 1 (MustCompute) is
	// encoded as a dominating reward on b_i (selecting b_i ⇔ Compute);
	// Required as a dominating reward on a_i (selecting a_i ⇔ not pruned).
	if cap(s.profits) < 2*len(live) {
		s.profits = make([]float64, 2*len(live))
	}
	profits := s.profits[:2*len(live)]
	prereqs := s.prereqs[:0]
	for i, n := range live {
		profits[2*i] = -sc[i].load
		profits[2*i+1] = sc[i].load - sc[i].compute
		if costs[n].MustCompute {
			profits[2*i+1] += reward
		}
		if costs[n].Required {
			profits[2*i] += reward
		}
		prereqs = append(prereqs, Prereq{Project: 2*i + 1, Requires: 2 * i})
		for _, child := range n.Children() {
			j, ok := idx[child]
			if !ok {
				continue // child outside the slice
			}
			// Computing child b_j requires parent not pruned: a_i.
			prereqs = append(prereqs, Prereq{Project: 2*j + 1, Requires: 2 * i})
		}
	}
	s.prereqs = prereqs

	if s.g == nil {
		s.g = maxflow.New(len(profits) + 2)
	} else {
		s.g.Reset(len(profits) + 2)
	}
	if cap(s.selected) < len(profits) {
		s.selected = make([]bool, len(profits))
	}
	selected := s.selected[:len(profits)]
	solvePSPInto(s.g, profits, prereqs, selected)

	plan := Plan{States: make(map[*core.Node]core.State, d.Len())}
	for _, n := range nodes {
		i, ok := idx[n]
		if !ok {
			plan.States[n] = core.StatePrune
			continue
		}
		switch {
		case selected[2*i] && selected[2*i+1]:
			plan.States[n] = core.StateCompute
		case selected[2*i]:
			plan.States[n] = core.StateLoad
		default:
			plan.States[n] = core.StatePrune
		}
	}
	plan.Time = PlanTime(plan.States, costs)
	return plan
}

// OptimalStates solves OPT-EXEC-PLAN with a throwaway Solver. Callers that
// plan every iteration should retain a Solver and call its method instead,
// reusing the flow network and buffers across solves.
func OptimalStates(d *core.DAG, costs map[*core.Node]Costs) Plan {
	var s Solver
	return s.OptimalStates(d, costs)
}

// PlanTime evaluates Equation 1: the total run time of a state assignment
// under the true costs. Pruned nodes and nodes outside costs contribute 0.
func PlanTime(states map[*core.Node]core.State, costs map[*core.Node]Costs) float64 {
	var total float64
	for n, s := range states {
		c, ok := costs[n]
		if !ok {
			continue
		}
		switch s {
		case core.StateCompute:
			total += c.Compute
		case core.StateLoad:
			total += c.Load
		}
	}
	return total
}

// CheckFeasible verifies that a state assignment satisfies the OEP
// constraints: Constraint 1 (MustCompute ⇒ Compute), Constraint 2
// (Compute ⇒ no parent pruned), loads only with finite load cost, and
// Required ⇒ not pruned. Nodes outside costs must be pruned.
func CheckFeasible(d *core.DAG, costs map[*core.Node]Costs, states map[*core.Node]core.State) error {
	for _, n := range d.Nodes() {
		s, ok := states[n]
		if !ok {
			return fmt.Errorf("opt: node %q has no state", n.Name)
		}
		c, inCosts := costs[n]
		if !inCosts {
			if s != core.StatePrune {
				return fmt.Errorf("opt: node %q outside slice has state %v", n.Name, s)
			}
			continue
		}
		if c.MustCompute && s != core.StateCompute {
			return fmt.Errorf("opt: original node %q has state %v, want Sc (Constraint 1)", n.Name, s)
		}
		if c.Required && s == core.StatePrune {
			return fmt.Errorf("opt: required node %q pruned", n.Name)
		}
		if s == core.StateLoad && math.IsInf(c.Load, 1) {
			return fmt.Errorf("opt: node %q loaded without equivalent materialization", n.Name)
		}
		if s == core.StateCompute {
			for _, p := range n.Parents() {
				if states[p] == core.StatePrune {
					return fmt.Errorf("opt: node %q computed but parent %q pruned (Constraint 2)", n.Name, p.Name)
				}
			}
		}
	}
	return nil
}

// GreedyStates is an ablation baseline for OEP: a local rule that loads a
// node iff loading is cheaper than computing it (ignoring cascading
// pruning), then prunes ancestors that no computed node depends on. It is
// feasible but not optimal; BenchmarkAblation_OEPvsGreedy quantifies the
// gap.
func GreedyStates(d *core.DAG, costs map[*core.Node]Costs) Plan {
	states := make(map[*core.Node]core.State, d.Len())
	order := d.TopoSort()
	// First pass: local load-vs-compute choice.
	for _, n := range order {
		c, ok := costs[n]
		switch {
		case !ok:
			states[n] = core.StatePrune
		case c.MustCompute:
			states[n] = core.StateCompute
		case c.Load < c.Compute:
			states[n] = core.StateLoad
		default:
			states[n] = core.StateCompute
		}
	}
	// Second pass (reverse topo): prune nodes no computed child needs, and
	// that are not required.
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if states[n] != core.StateLoad && states[n] != core.StateCompute {
			continue
		}
		c := costs[n]
		if c.MustCompute || c.Required {
			continue
		}
		needed := false
		for _, ch := range n.Children() {
			if states[ch] == core.StateCompute {
				needed = true
				break
			}
		}
		if !needed {
			states[n] = core.StatePrune
		}
	}
	// Third pass: pruning may have orphaned computed nodes whose parents
	// got pruned. Fix by re-promoting parents of computed nodes to Load or
	// Compute until a fixed point (bounded by |N| rounds).
	for changed := true; changed; {
		changed = false
		for _, n := range order {
			if states[n] != core.StateCompute {
				continue
			}
			for _, p := range n.Parents() {
				if states[p] != core.StatePrune {
					continue
				}
				c := costs[p]
				if !math.IsInf(c.Load, 1) && c.Load < c.Compute {
					states[p] = core.StateLoad
				} else {
					states[p] = core.StateCompute
				}
				changed = true
			}
		}
	}
	return Plan{States: states, Time: PlanTime(states, costs)}
}
