package opt

import (
	"sync"

	"helix/internal/core"
)

// MatPolicy decides, when a node goes out of scope during execution
// (Definition 5: all children computed or loaded), whether to materialize
// its result to disk (paper §5.3, Constraint 3: materialize immediately or
// evict). Implementations must be safe for concurrent use: the execution
// engine retires nodes from multiple worker goroutines, and with
// write-behind materialization Decide is also invoked from the store's
// background writer goroutines (for values whose size is only known
// after serialization), concurrently with worker-side calls. All budget
// bookkeeping must therefore be internally synchronized — a true return
// reserves budget atomically with the decision.
type MatPolicy interface {
	// Name identifies the policy in benchmark output.
	Name() string
	// Decide reports whether to materialize node n given its cumulative
	// run time C(n) (Definition 6), projected load time, and on-disk size,
	// all in seconds/bytes. A true return also reserves any budget.
	Decide(n *core.Node, cumulative, load float64, size int64) bool
	// Blind reports whether the policy materializes indiscriminately,
	// including nondeterministic outputs that can never be reused
	// (Definition 3). HELIX AM and DeepDive are blind — which is exactly
	// why the paper's AM fails to finish the MNIST workload (§6.6) —
	// while the streaming OMP skips them.
	Blind() bool
}

// StreamingOMP is Algorithm 2: materialize an out-of-scope node iff twice
// its load cost is below its cumulative run time and the storage budget
// allows. The intuition (paper §5.3): the materialization write at
// iteration t plus the load at t+1 must beat recomputing the node's entire
// ancestor chain.
type StreamingOMP struct {
	// Threshold is the load-cost multiplier; the paper uses 2 (write once,
	// load once). Exposed for the ablation benchmark.
	Threshold float64

	mu        sync.Mutex
	remaining int64
	unbounded bool
}

// NewStreamingOMP returns the paper's heuristic with the given storage
// budget in bytes. A negative budget means unbounded.
func NewStreamingOMP(budget int64) *StreamingOMP {
	return &StreamingOMP{Threshold: 2, remaining: budget, unbounded: budget < 0}
}

// Name implements MatPolicy.
func (p *StreamingOMP) Name() string { return "helix-opt" }

// Blind implements MatPolicy: the streaming heuristic never materializes
// results that cannot be reused.
func (p *StreamingOMP) Blind() bool { return false }

// Decide implements MatPolicy (Algorithm 2 line 5: C(n) > 2·l and budget).
func (p *StreamingOMP) Decide(_ *core.Node, cumulative, load float64, size int64) bool {
	if cumulative <= p.Threshold*load {
		return false
	}
	if p.unbounded {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.remaining < size {
		return false
	}
	p.remaining -= size
	return true
}

// Remaining reports the unreserved budget in bytes (negative if unbounded).
func (p *StreamingOMP) Remaining() int64 {
	if p.unbounded {
		return -1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.remaining
}

// Release returns budget (e.g. when a previously materialized node is
// purged because it became deprecated).
func (p *StreamingOMP) Release(size int64) {
	if p.unbounded {
		return
	}
	p.mu.Lock()
	p.remaining += size
	p.mu.Unlock()
}

// AlwaysMat is the HELIX AM baseline (§6.1): materialize every intermediate
// result, as DeepDive does.
type AlwaysMat struct{}

// Name implements MatPolicy.
func (AlwaysMat) Name() string { return "helix-am" }

// Blind implements MatPolicy: AM materializes indiscriminately.
func (AlwaysMat) Blind() bool { return true }

// Decide implements MatPolicy: always true.
func (AlwaysMat) Decide(*core.Node, float64, float64, int64) bool { return true }

// NeverMat is the HELIX NM baseline (§6.1): never materialize, as
// KeystoneML does.
type NeverMat struct{}

// Name implements MatPolicy.
func (NeverMat) Name() string { return "helix-nm" }

// Blind implements MatPolicy: trivially not (it writes nothing).
func (NeverMat) Blind() bool { return false }

// Decide implements MatPolicy: always false.
func (NeverMat) Decide(*core.Node, float64, float64, int64) bool { return false }

// CumulativeTimes computes C(n_i) per Definition 6 for every node, given
// each node's own elapsed time t(n_i) (compute time if computed, load time
// if loaded, 0 if pruned): C(n_i) = t(n_i) + Σ_{n_j ∈ ancestors(n_i)} t(n_j).
func CumulativeTimes(d *core.DAG, own map[*core.Node]float64) map[*core.Node]float64 {
	cum := make(map[*core.Node]float64, d.Len())
	for _, n := range d.TopoSort() {
		total := own[n]
		for anc := range core.Ancestors(n) {
			total += own[anc]
		}
		cum[n] = total
	}
	return cum
}

// MiniBatchOMP adapts the streaming heuristic to mini-batch stream
// processing (paper §5.3, "Mini-Batches"): materialization decisions are
// made from the load and compute statistics of the FIRST batch processed
// end-to-end, then the same per-operator decision is reused for every
// subsequent batch. This avoids the dataset fragmentation that would
// complicate reuse if each batch decided independently.
type MiniBatchOMP struct {
	// Inner makes the first-batch decision; typically a StreamingOMP.
	Inner MatPolicy

	mu        sync.Mutex
	decisions map[string]bool // operator name → first-batch decision
}

// NewMiniBatchOMP wraps inner with first-batch decision pinning.
func NewMiniBatchOMP(inner MatPolicy) *MiniBatchOMP {
	return &MiniBatchOMP{Inner: inner, decisions: make(map[string]bool)}
}

// Name implements MatPolicy.
func (p *MiniBatchOMP) Name() string { return "helix-opt-minibatch" }

// Blind implements MatPolicy.
func (p *MiniBatchOMP) Blind() bool { return p.Inner.Blind() }

// Decide implements MatPolicy: the first decision per operator name is
// delegated to Inner and pinned; later batches replay it.
func (p *MiniBatchOMP) Decide(n *core.Node, cumulative, load float64, size int64) bool {
	p.mu.Lock()
	if d, ok := p.decisions[n.Name]; ok {
		p.mu.Unlock()
		return d
	}
	p.mu.Unlock()
	d := p.Inner.Decide(n, cumulative, load, size)
	p.mu.Lock()
	if prev, ok := p.decisions[n.Name]; ok {
		d = prev // lost the race: keep the pinned decision
	} else {
		p.decisions[n.Name] = d
	}
	p.mu.Unlock()
	return d
}
