package opt

import (
	"fmt"
	"math"

	"helix/internal/core"
)

// Rationale explains, in one phrase, why OPT-EXEC-PLAN assigned state s to
// a node with the given costs. deterministic is the node's determinism
// flag (Definition 3); live is its membership in the program slice (§5.4).
// The phrasing mirrors the solver's actual structure: forced computes
// (Constraint 1), missing materializations, and the local load-vs-compute
// trade the min-cut resolves globally.
func Rationale(c Costs, s core.State, deterministic, live bool) string {
	switch s {
	case core.StatePrune:
		if !live {
			return "outside the program slice: no output depends on it (§5.4)"
		}
		return "pruned: every consumer is loaded or pruned, so its value is never needed (Constraint 2 released)"
	case core.StateLoad:
		if math.IsInf(c.Compute, 1) || c.Compute == 0 {
			return fmt.Sprintf("load: equivalent materialization available (%.3fs)", c.Load)
		}
		return fmt.Sprintf("load: materialized result (%.3fs) beats recomputing (%.3fs) and frees ancestors for pruning", c.Load, c.Compute)
	default: // StateCompute
		switch {
		case c.MustCompute:
			return "compute: operator changed this iteration (original, Constraint 1)"
		case !deterministic:
			return "compute: nondeterministic result has no equivalent materialization (Definition 3)"
		case math.IsInf(c.Load, 1):
			return "compute: no equivalent materialization to load"
		default:
			return fmt.Sprintf("compute: recomputing (%.3fs) beats loading (%.3fs) under the global plan", c.Compute, c.Load)
		}
	}
}
