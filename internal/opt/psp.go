// Package opt implements HELIX's two optimization problems (paper §5):
//
//   - OPT-EXEC-PLAN (OEP, §5.2): given previously materialized results,
//     assign each workflow node a state in {Compute, Load, Prune} minimizing
//     the workflow run time. Solved optimally in PTIME by reduction to the
//     PROJECT SELECTION PROBLEM, which is solved by MAX-FLOW/MIN-CUT
//     (Algorithm 1).
//
//   - OPT-MAT-PLAN (OMP, §5.3): choose which intermediate results to
//     materialize during execution to accelerate future iterations. NP-hard
//     (Theorem 3); approximated by the streaming heuristic of Algorithm 2.
//
// Brute-force reference implementations of both problems are provided for
// property-based testing on small inputs.
//
// helixlint (plandeterminism) holds this package to byte-stable output:
// state assignments and materialization picks feed the plan fingerprint,
// so equal inputs must decide identically.
//
//lint:deterministic
package opt

import "helix/internal/maxflow"

// Prereq records that selecting Project requires selecting Requires.
type Prereq struct {
	Project, Requires int
}

// SolvePSP solves the PROJECT SELECTION PROBLEM (paper Problem 2): given
// per-project profits (positive or negative) and prerequisite constraints,
// select the subset of projects with maximum total profit such that every
// prerequisite of a selected project is also selected. Returns the
// selection as a boolean slice indexed by project.
//
// The reduction to MIN-CUT is standard [Kleinberg & Tardos §7.11]: source
// s connects to positive-profit projects with capacity = profit; negative-
// profit projects connect to sink t with capacity = -profit; prerequisite
// pairs get infinite-capacity edges project→prerequisite. The source side
// of a minimum cut is an optimal selection.
func SolvePSP(profits []float64, prereqs []Prereq) []bool {
	selected := make([]bool, len(profits))
	solvePSPInto(maxflow.New(len(profits)+2), profits, prereqs, selected)
	return selected
}

// solvePSPInto is SolvePSP over a caller-provided graph (already sized to
// len(profits)+2 nodes, typically via Reset) and result buffer, so
// iterative callers can amortize the flow network across solves.
func solvePSPInto(g *maxflow.Graph, profits []float64, prereqs []Prereq, selected []bool) {
	n := len(profits)
	s, t := n, n+1
	for i, p := range profits {
		switch {
		case p > 0:
			g.AddEdge(s, i, p)
		case p < 0:
			g.AddEdge(i, t, -p)
		}
	}
	for _, pr := range prereqs {
		g.AddEdge(pr.Project, pr.Requires, maxflow.Inf)
	}
	g.MaxFlow(s, t)
	cut := g.MinCut(s)
	copy(selected, cut[:n])
}

// PSPValue returns the total profit of a selection, or false if the
// selection violates a prerequisite constraint.
func PSPValue(profits []float64, prereqs []Prereq, selected []bool) (float64, bool) {
	for _, pr := range prereqs {
		if selected[pr.Project] && !selected[pr.Requires] {
			return 0, false
		}
	}
	var total float64
	for i, sel := range selected {
		if sel {
			total += profits[i]
		}
	}
	return total, true
}
