// Package store implements HELIX-Go's materialization store: the disk
// layer where the execution engine persists selected intermediate results
// (paper §2.1, "the execution engine selectively materializes intermediate
// results to disk") and from which later iterations load equivalent
// materializations (Definition 3).
//
// Entries are keyed by chain signature, so a stored result is by
// construction only retrievable by an equivalent operator. Values are
// gob-encoded. An optional simulated disk speed reproduces the paper's
// 170 MB/s HDD environment on faster local storage; it is applied as a
// sleep proportional to the byte count on both reads and writes.
package store

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Entry describes one materialized result.
type Entry struct {
	Key       string        `json:"key"`  // chain signature of the node
	Name      string        `json:"name"` // node name (diagnostics only)
	Size      int64         `json:"size"` // bytes on disk
	WriteTime time.Duration `json:"write_time"`
	Iteration int           `json:"iteration"` // iteration that produced it
}

// Store is a directory-backed materialization store. It is safe for
// concurrent use.
type Store struct {
	// DiskBytesPerSec, when positive, simulates a disk with the given
	// throughput by sleeping size/DiskBytesPerSec on each read and write —
	// reproducing the paper's 170 MB/s HDD on faster media. Zero disables
	// simulation (real I/O timing only).
	DiskBytesPerSec float64

	dir string

	mu      sync.Mutex
	entries map[string]Entry
}

// Register exposes gob.Register for value types stored through the store.
func Register(v any) { gob.Register(v) }

// Open opens (creating if needed) a store rooted at dir and loads its
// manifest.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := &Store{dir: dir, entries: make(map[string]Entry)}
	manifest := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(manifest)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("store: decode manifest: %w", err)
	}
	for _, e := range entries {
		s.entries[e.Key] = e
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".gob")
}

func (s *Store) throttle(size int64) {
	if s.DiskBytesPerSec > 0 {
		time.Sleep(time.Duration(float64(size) / s.DiskBytesPerSec * float64(time.Second)))
	}
}

// Encode gob-encodes a value, returning its on-disk representation. Exposed
// so callers can learn a result's size (for the OMP budget and load-time
// estimate) before deciding to write it.
func Encode(value any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&value); err != nil {
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// EstimateLoad predicts the time to load size bytes, per the paper's model
// l_i = s_i / (disk read speed) (§5.3). With simulation disabled it assumes
// a fast local disk at 1 GB/s plus a fixed 1ms seek.
func (s *Store) EstimateLoad(size int64) time.Duration {
	speed := s.DiskBytesPerSec
	if speed <= 0 {
		speed = 1 << 30
	}
	return time.Millisecond + time.Duration(float64(size)/speed*float64(time.Second))
}

// PutBytes writes pre-encoded bytes under key and records the entry. The
// write is timed (including simulated disk delay); the measured duration is
// stored in the entry and returned.
func (s *Store) PutBytes(key, name string, data []byte, iteration int) (Entry, error) {
	start := time.Now()
	if err := os.WriteFile(s.path(key), data, 0o644); err != nil {
		return Entry{}, fmt.Errorf("store: write %q: %w", key, err)
	}
	s.throttle(int64(len(data)))
	e := Entry{
		Key:       key,
		Name:      name,
		Size:      int64(len(data)),
		WriteTime: time.Since(start),
		Iteration: iteration,
	}
	s.mu.Lock()
	s.entries[key] = e
	s.mu.Unlock()
	if err := s.flushManifest(); err != nil {
		return e, err
	}
	return e, nil
}

// Put encodes and writes a value under key.
func (s *Store) Put(key, name string, value any, iteration int) (Entry, error) {
	data, err := Encode(value)
	if err != nil {
		return Entry{}, err
	}
	return s.PutBytes(key, name, data, iteration)
}

// Get loads and decodes the value stored under key, returning the value and
// the measured load duration (including simulated disk delay).
func (s *Store) Get(key string) (any, time.Duration, error) {
	s.mu.Lock()
	e, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("store: no entry for key %q", key)
	}
	start := time.Now()
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, 0, fmt.Errorf("store: read %q: %w", key, err)
	}
	s.throttle(e.Size)
	var value any
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&value); err != nil {
		return nil, 0, fmt.Errorf("store: decode %q: %w", key, err)
	}
	return value, time.Since(start), nil
}

// Has reports whether an entry exists for key — the engine's "equivalent
// materialization" check (Definition 3).
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Entry returns the metadata for key.
func (s *Store) Entry(key string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	return e, ok
}

// Delete removes the entry and its file. Deleting a missing key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	_, ok := s.entries[key]
	delete(s.entries, key)
	s.mu.Unlock()
	if !ok {
		return nil
	}
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %q: %w", key, err)
	}
	return s.flushManifest()
}

// Purge removes every entry for which keep returns false, returning the
// bytes freed. Used to deprecate old results when operators change (paper
// §6.6: "HELIX purges any previous materialization of original operators
// prior to execution").
func (s *Store) Purge(keep func(key string) bool) (freed int64, err error) {
	// Snapshot first: keep may call back into the store (e.g. Entry), so it
	// must run without s.mu held.
	s.mu.Lock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	var doomed []string
	for _, k := range keys {
		if !keep(k) {
			doomed = append(doomed, k)
		}
	}
	s.mu.Lock()
	var victims []Entry
	for _, k := range doomed {
		if e, ok := s.entries[k]; ok {
			victims = append(victims, e)
			delete(s.entries, k)
		}
	}
	s.mu.Unlock()
	for _, e := range victims {
		freed += e.Size
		if rmErr := os.Remove(s.path(e.Key)); rmErr != nil && !os.IsNotExist(rmErr) && err == nil {
			err = fmt.Errorf("store: purge %q: %w", e.Key, rmErr)
		}
	}
	if ferr := s.flushManifest(); ferr != nil && err == nil {
		err = ferr
	}
	return freed, err
}

// UsedBytes reports the total size of stored entries.
func (s *Store) UsedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, e := range s.entries {
		total += e.Size
	}
	return total
}

// Len reports the number of stored entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Keys returns all stored keys, sorted (for deterministic iteration).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// flushManifest persists the entry table.
func (s *Store) flushManifest() error {
	s.mu.Lock()
	entries := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	tmp := filepath.Join(s.dir, "manifest.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "manifest.json")); err != nil {
		return fmt.Errorf("store: commit manifest: %w", err)
	}
	return nil
}
