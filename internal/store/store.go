// Package store implements HELIX-Go's materialization store: the disk
// layer where the execution engine persists selected intermediate results
// (paper §2.1, "the execution engine selectively materializes intermediate
// results to disk") and from which later iterations load equivalent
// materializations (Definition 3).
//
// Entries are keyed by chain signature, so a stored result is by
// construction only retrievable by an equivalent operator. Values are
// serialized by a pluggable Codec (codec.go) — the default is a
// purpose-built binary format with columnar layouts, varint numerics and
// interned strings; legacy gob artifacts keep decoding via a header
// sniff. An optional simulated disk speed reproduces the paper's
// 170 MB/s HDD environment on faster local storage; it is applied as a
// sleep proportional to the byte count on both reads and writes.
//
// # Concurrency model
//
// The store is built for many goroutines hammering it at once — the
// execution engine retires nodes from every worker goroutine, and the
// write-behind pool (writer.go) adds background writers on top:
//
//   - The entry table is sharded: each key hashes to one of shardCount
//     shards with its own mutex, so metadata operations on different keys
//     never contend on a single store-wide lock.
//   - No shard (or any store-wide) lock is ever held across disk I/O or
//     the simulated-disk throttle sleep. Mutual exclusion for a key's
//     file is provided by a per-key lock, which serializes Put/Delete/
//     load on the *same* key while leaving every other key unobstructed.
//   - Concurrent Gets of the same key are single-flighted: one goroutine
//     performs the read+decode, the rest wait and share the decoded
//     value. Stored values are treated as immutable (the engine already
//     shares them freely across node goroutines), so sharing the decode
//     is safe.
//   - The manifest is rewritten atomically (tmp file + rename) under a
//     dedicated mutex after every synchronous mutation. Write-behind
//     writes instead mark the table dirty and batch the (whole-table)
//     manifest rewrite into the Flush barrier, so the writer pool is
//     never serialized behind per-write manifest flushes.
//
// # Write-behind
//
// PutAsync enqueues a write to a bounded pool of background writer
// goroutines and returns immediately; Flush is the barrier that waits for
// every enqueued write (and its manifest update) to land. See writer.go
// for the contract. Synchronous Put/PutBytes remain available and are
// what SyncMaterialization mode uses.
package store

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Entry describes one materialized result.
type Entry struct {
	Key       string        `json:"key"`  // chain signature of the node
	Name      string        `json:"name"` // node name (diagnostics only)
	Size      int64         `json:"size"` // bytes on disk
	WriteTime time.Duration `json:"write_time"`
	Iteration int           `json:"iteration"` // iteration that produced it
	// Tenant labels which tenant namespace published the entry (shared
	// mode only; empty for private stores). Accounting, not access control:
	// artifacts are shared across tenants by content address.
	Tenant string `json:"tenant,omitempty"`
	// Refs is the number of live attachments pinning the entry at the time
	// the manifest was snapshotted (shared mode only). Diagnostic: the
	// in-memory pin table is authoritative, and a fresh open starts with
	// zero live sessions regardless of the persisted counts.
	Refs int `json:"refs,omitempty"`
}

// shardCount is the number of entry-table shards. Power of two so the
// hash can be masked; 16 comfortably exceeds the engine's worker-level
// parallelism on the synthetic workloads.
const shardCount = 16

// shard is one slice of the entry table with its own lock. The lock
// guards only the map — never disk I/O.
type shard struct {
	//lint:nolockio
	mu      sync.Mutex
	entries map[string]Entry
}

// Store is a directory-backed materialization store, safe for concurrent
// use by any number of goroutines.
type Store struct {
	// DiskBytesPerSec, when positive, simulates a disk with the given
	// throughput by sleeping size/DiskBytesPerSec on each read and write —
	// reproducing the paper's 170 MB/s HDD on faster media. Zero disables
	// simulation (real I/O timing only).
	DiskBytesPerSec float64

	// Writers is the size of the background writer pool started lazily by
	// the first PutAsync; ≤0 selects DefaultWriters. Set before the first
	// PutAsync.
	Writers int

	// QueueDepth bounds the write-behind queue; a full queue makes
	// PutAsync block (backpressure). ≤0 selects DefaultQueueDepth. Set
	// before the first PutAsync.
	QueueDepth int

	// Codec serializes stored values; nil selects the default binary
	// codec (codec.go). Set before first use. Both bundled codecs sniff
	// the format header on decode, so switching codecs on an existing
	// directory keeps old artifacts readable.
	Codec Codec

	dir string

	shards [shardCount]shard

	// keyLocks serializes file operations per key (Put vs Delete vs load
	// races on the same key) without any cross-key contention.
	keyLocks keyedMutex

	// flight single-flights concurrent Gets of the same key. The lock
	// guards only the call map; waiting for a flight's disk read happens
	// on the flightCall's done channel after release.
	//lint:nolockio
	flightMu sync.Mutex
	flight   map[string]*flightCall

	// manifestMu serializes manifest snapshots and their tmp+rename.
	manifestMu sync.Mutex
	// manifestDirty marks entry-table mutations whose manifest flush was
	// deferred to the next Flush barrier (write-behind writes only —
	// synchronous mutations flush inline).
	manifestDirty atomic.Bool

	wp writerPool

	// shared is non-nil when the store was opened via OpenShared: publish
	// becomes content-addressed write-once and Purge respects attachment
	// pins. See shared.go.
	shared *sharedState

	// loads is the self-correcting load-bandwidth model fed by measured
	// physical reads; EstimateLoad prefers its adopted bandwidth over the
	// static assumption. See loadmodel.go.
	loads loadModel
}

// codec returns the effective value codec.
func (s *Store) codec() Codec {
	if s.Codec != nil {
		return s.Codec
	}
	return defaultCodec
}

// CodecName reports the effective codec's name.
func (s *Store) CodecName() string { return s.codec().Name() }

// Open opens (creating if needed) a store rooted at dir and loads its
// manifest.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := &Store{dir: dir, flight: make(map[string]*flightCall)}
	for i := range s.shards {
		s.shards[i].entries = make(map[string]Entry)
	}
	s.keyLocks.init()
	s.wp.init()
	manifest := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(manifest)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("store: decode manifest: %w", err)
	}
	for _, e := range entries {
		sh := s.shardFor(e.Key)
		sh.entries[e.Key] = e
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// shardFor picks a key's shard by inline FNV-1a: this sits on every
// metadata operation from every worker and writer goroutine, and the
// hash.Hash32 route would pay two heap allocations per call.
func (s *Store) shardFor(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &s.shards[h&(shardCount-1)]
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".gob")
}

func (s *Store) throttle(size int64) {
	if s.DiskBytesPerSec > 0 {
		time.Sleep(time.Duration(float64(size) / s.DiskBytesPerSec * float64(time.Second)))
	}
}

// Encode gob-encodes a value. This is NOT the store's on-disk codec (see
// EncodeValue) — it is the codec-independent canonical encoding used to
// compare values across sessions regardless of their configured codec
// (the fuzz harness's byte-for-byte oracle) and the payload format of
// GobCodec.
func Encode(value any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&value); err != nil {
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// EncodeValue encodes a value with the store's configured codec,
// returning its on-disk representation. Exposed so callers can learn a
// result's size (for the OMP budget and load-time estimate) before
// deciding to write it.
func (s *Store) EncodeValue(value any) ([]byte, error) {
	return s.codec().Encode(value)
}

// EstimateLoad predicts the time to load size bytes, per the paper's model
// l_i = s_i / (disk read speed) (§5.3). The disk speed self-corrects: once
// the store has observed enough real reads, their measured (decayed,
// quantized) bandwidth replaces the static assumption — a fast local disk
// at 1 GB/s, or DiskBytesPerSec when simulation is on — plus a fixed 1ms
// seek either way.
func (s *Store) EstimateLoad(size int64) time.Duration {
	speed := s.loads.bandwidth()
	if speed <= 0 {
		speed = s.staticBandwidth()
	}
	return time.Millisecond + time.Duration(float64(size)/speed*float64(time.Second))
}

// staticBandwidth is the bytes/sec the static load model assumes when no
// observed bandwidth has been adopted: the configured simulated-disk
// throughput, or a fast local disk (1 GB/s) when simulation is off. It is
// also the hysteresis reference the bandwidth model measures against
// before its first adoption (see loadModel).
func (s *Store) staticBandwidth() float64 {
	if s.DiskBytesPerSec > 0 {
		return s.DiskBytesPerSec
	}
	return 1 << 30
}

// PutBytes writes pre-encoded bytes under key and records the entry. The
// write is timed (including simulated disk delay); the measured duration is
// stored in the entry and returned. The key's per-key lock is held across
// the file write so a concurrent Delete or Get of the same key cannot
// observe a half-updated file/manifest pair; no shard lock is held during
// I/O. The manifest is flushed before returning.
func (s *Store) PutBytes(key, name string, data []byte, iteration int) (Entry, error) {
	e, _, err := s.putBytes(key, name, data, iteration, "", true)
	return e, err
}

// PutBytesTenant is PutBytes with a tenant label for shared-mode byte
// accounting. The second result reports whether the payload actually
// landed: false (with a nil error) means the signature was already
// published — content-addressed dedup — and the caller may refund any
// budget it reserved for the write.
func (s *Store) PutBytesTenant(key, name string, data []byte, iteration int, tenant string) (Entry, bool, error) {
	return s.putBytes(key, name, data, iteration, tenant, true)
}

// putBytes is PutBytes with the manifest flush optional: the write-behind
// pool passes syncManifest=false and defers the (whole-table) manifest
// rewrite to the Flush barrier, so N background writes cost one manifest
// flush instead of N serialized ones.
//
// The payload lands atomically: it is written to a same-directory temp
// file and renamed over the final path, so no reader — in this process or
// any other session attached to a shared store — can observe a partially
// written artifact. In shared mode the publish is additionally write-once:
// if the key is already present when the per-key lock is acquired, the
// write is skipped (same signature ⇒ equivalent value, Definition 3) and
// the existing entry is returned with written=false.
func (s *Store) putBytes(key, name string, data []byte, iteration int, tenant string, syncManifest bool) (Entry, bool, error) {
	start := time.Now()
	s.keyLocks.lock(key)
	if s.shared != nil {
		sh := s.shardFor(key)
		sh.mu.Lock()
		e, ok := sh.entries[key]
		sh.mu.Unlock()
		if ok {
			s.keyLocks.unlock(key)
			return e, false, nil
		}
	}
	tmp := s.path(key) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		s.keyLocks.unlock(key)
		return Entry{}, false, fmt.Errorf("store: write %q: %w", key, err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		s.keyLocks.unlock(key)
		return Entry{}, false, fmt.Errorf("store: publish %q: %w", key, err)
	}
	s.throttle(int64(len(data)))
	e := Entry{
		Key:       key,
		Name:      name,
		Size:      int64(len(data)),
		WriteTime: time.Since(start),
		Iteration: iteration,
		Tenant:    tenant,
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	sh.entries[key] = e
	sh.mu.Unlock()
	s.keyLocks.unlock(key)
	if !syncManifest {
		s.manifestDirty.Store(true)
		return e, true, nil
	}
	if err := s.flushManifest(); err != nil {
		return e, true, err
	}
	return e, true, nil
}

// Put encodes (with the store's codec) and writes a value under key.
func (s *Store) Put(key, name string, value any, iteration int) (Entry, error) {
	data, err := s.EncodeValue(value)
	if err != nil {
		return Entry{}, err
	}
	return s.PutBytes(key, name, data, iteration)
}

// flightCall is one in-flight load shared by concurrent Gets of a key.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Get loads and decodes the value stored under key, returning the value and
// the caller's measured wait (including simulated disk delay). Concurrent
// Gets of the same key share a single disk read and decode; the returned
// value must therefore be treated as immutable, which the engine already
// guarantees for everything it stores.
func (s *Store) Get(key string) (any, time.Duration, error) {
	start := time.Now()
	s.flightMu.Lock()
	if c, ok := s.flight[key]; ok {
		s.flightMu.Unlock()
		<-c.done
		return c.val, time.Since(start), c.err
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[key] = c
	s.flightMu.Unlock()

	c.val, c.err = s.load(key)

	s.flightMu.Lock()
	delete(s.flight, key)
	s.flightMu.Unlock()
	close(c.done)
	return c.val, time.Since(start), c.err
}

// load performs the physical read for Get under the key's per-key lock, so
// it cannot interleave with a Put or Delete of the same key.
func (s *Store) load(key string) (any, error) {
	s.keyLocks.lock(key)
	defer s.keyLocks.unlock(key)
	sh := s.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	sh.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: no entry for key %q", key)
	}
	start := time.Now()
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, fmt.Errorf("store: read %q: %w", key, err)
	}
	s.throttle(e.Size)
	// Feed the bandwidth model the physical transfer only (read plus any
	// simulated throttle). Decode time is deliberately excluded: the
	// paper's load model is l_i = s_i / (disk read speed) (§5.3), so the
	// self-correcting term is the disk-speed denominator, not codec cost —
	// folding decode in would report a "disk" many times slower than the
	// one configured and skew every load/compute trade-off.
	readDur := time.Since(start)
	value, err := s.codec().Decode(data)
	if err != nil {
		return nil, fmt.Errorf("store: %q: %w", key, err)
	}
	s.loads.observe(e.Size, readDur, s.staticBandwidth())
	return value, nil
}

// Has reports whether an entry exists for key — the engine's "equivalent
// materialization" check (Definition 3).
func (s *Store) Has(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.entries[key]
	return ok
}

// Entry returns the metadata for key.
func (s *Store) Entry(key string) (Entry, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	return e, ok
}

// Delete removes the entry and its file. Deleting a missing key is a no-op.
func (s *Store) Delete(key string) error {
	s.keyLocks.lock(key)
	sh := s.shardFor(key)
	sh.mu.Lock()
	_, ok := sh.entries[key]
	delete(sh.entries, key)
	sh.mu.Unlock()
	var rmErr error
	if ok {
		rmErr = os.Remove(s.path(key))
	}
	s.keyLocks.unlock(key)
	if !ok {
		return nil
	}
	if rmErr != nil && !os.IsNotExist(rmErr) {
		return fmt.Errorf("store: delete %q: %w", key, rmErr)
	}
	return s.flushManifest()
}

// Purge removes every entry for which keep returns false, returning the
// bytes freed. Used to deprecate old results when operators change (paper
// §6.6: "HELIX purges any previous materialization of original operators
// prior to execution").
//
// In shared mode an entry pinned by any live attachment is never purged,
// regardless of keep: a pin means some attached session's last executed
// plan depends on the artifact, and evicting it under that session would
// invalidate results it may still load. The pin check is re-taken per key
// at deletion time, so a Repin that lands between the snapshot and the
// delete still protects its entries.
func (s *Store) Purge(keep func(key string) bool) (freed int64, err error) {
	// Snapshot first: keep may call back into the store (e.g. Entry), so it
	// must run without any shard lock held.
	keys := s.Keys()
	var doomed []string
	for _, k := range keys {
		if !keep(k) {
			doomed = append(doomed, k)
		}
	}
	for _, k := range doomed {
		if s.shared != nil && s.Pinned(k) {
			continue
		}
		s.keyLocks.lock(k)
		sh := s.shardFor(k)
		sh.mu.Lock()
		e, ok := sh.entries[k]
		if ok {
			delete(sh.entries, k)
		}
		sh.mu.Unlock()
		if ok {
			freed += e.Size
			if rmErr := os.Remove(s.path(k)); rmErr != nil && !os.IsNotExist(rmErr) && err == nil {
				err = fmt.Errorf("store: purge %q: %w", k, rmErr)
			}
		}
		s.keyLocks.unlock(k)
	}
	if ferr := s.flushManifest(); ferr != nil && err == nil {
		err = ferr
	}
	return freed, err
}

// UsedBytes reports the total size of stored entries.
func (s *Store) UsedBytes() int64 {
	var total int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			total += e.Size
		}
		sh.mu.Unlock()
	}
	return total
}

// Len reports the number of stored entries.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Keys returns all stored keys, sorted (for deterministic iteration).
func (s *Store) Keys() []string {
	var keys []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.entries {
			keys = append(keys, k)
		}
		sh.mu.Unlock()
	}
	sort.Strings(keys)
	return keys
}

// snapshotEntries collects a point-in-time copy of the entry table. In
// shared mode each entry's Refs field is stamped with the current live
// pin count (taken before the shard locks — pin and shard locks never
// nest).
func (s *Store) snapshotEntries() []Entry {
	var refs map[string]int
	if s.shared != nil {
		refs = s.shared.refCounts()
	}
	var entries []Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			e.Refs = refs[e.Key]
			entries = append(entries, e)
		}
		sh.mu.Unlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return entries
}

// flushManifest persists the entry table atomically. manifestMu is taken
// before the snapshot so concurrent flushes cannot commit an older table
// over a newer one; every mutation triggers its own flush, so the last
// writer always leaves the manifest current.
func (s *Store) flushManifest() error {
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	entries := s.snapshotEntries()
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	tmp := filepath.Join(s.dir, "manifest.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "manifest.json")); err != nil {
		return fmt.Errorf("store: commit manifest: %w", err)
	}
	return nil
}

// keyedMutex provides a mutex per string key, created on demand and
// reclaimed when the last holder releases it.
type keyedMutex struct {
	// mu guards only the per-key lock map; the per-key locks themselves
	// (keyLockEntry.mu) are held across file I/O by design and are
	// deliberately not annotated.
	//lint:nolockio
	mu    sync.Mutex
	locks map[string]*keyLockEntry
}

type keyLockEntry struct {
	mu   sync.Mutex
	refs int
}

func (k *keyedMutex) init() {
	k.locks = make(map[string]*keyLockEntry)
}

func (k *keyedMutex) lock(key string) {
	k.mu.Lock()
	e, ok := k.locks[key]
	if !ok {
		e = &keyLockEntry{}
		k.locks[key] = e
	}
	e.refs++
	k.mu.Unlock()
	e.mu.Lock()
}

func (k *keyedMutex) unlock(key string) {
	k.mu.Lock()
	e := k.locks[key]
	e.refs--
	if e.refs == 0 {
		delete(k.locks, key)
	}
	k.mu.Unlock()
	e.mu.Unlock()
}
