package store

import (
	"testing"
	"time"
)

// loadNTimes performs n Gets of key, failing the test on any error.
func loadNTimes(t *testing.T, s *Store, key string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, _, err := s.Get(key); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
}

// TestEstimateLoadSelfCorrects seeds the bandwidth model with a wildly
// wrong adopted bandwidth and checks that a handful of measured reads —
// whose true throughput is pinned by the simulated-disk throttle —
// converge the estimate onto the measured bandwidth.
func TestEstimateLoadSelfCorrects(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const trueBW = 64e6 // simulated disk: ground truth for measured reads
	s.DiskBytesPerSec = trueBW

	rows := make([]float64, 32<<10) // ~256 KiB encoded, above the model's floor
	for i := range rows {
		rows[i] = float64(i)
	}
	e, err := s.Put("sig-a", "a", rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Size < minLoadModelBytes {
		t.Fatalf("artifact too small to exercise the model: %d bytes", e.Size)
	}

	// Seed wrong by 16×: pretend a 1 GB/s disk was observed previously.
	s.loads.adopted = quantizeBandwidth(1e9)
	loadNTimes(t, s, "sig-a", 6)

	bw := s.LoadBandwidth()
	if bw < trueBW/2 || bw > trueBW*2 {
		t.Fatalf("after 6 observations adopted bandwidth = %.0f, want within 2x of %.0f", bw, trueBW)
	}
	est := s.EstimateLoad(e.Size)
	want := time.Millisecond + time.Duration(float64(e.Size)/bw*float64(time.Second))
	if est != want {
		t.Fatalf("EstimateLoad = %v, want %v (adopted bandwidth %0.f)", est, want, bw)
	}
}

// TestEstimateLoadForgetsOldHardware checks the decay: after the disk
// slows 8×, the model abandons the old regime within a few reads instead
// of averaging it in forever. The old regime is both accumulated history
// (real reads at the fast speed) and an adopted bandwidth carried from it.
func TestEstimateLoadForgetsOldHardware(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const fastBW = 64e6
	s.DiskBytesPerSec = fastBW

	rows := make([]float64, 32<<10)
	for i := range rows {
		rows[i] = float64(i)
	}
	if _, err := s.Put("sig-a", "a", rows, 0); err != nil {
		t.Fatal(err)
	}
	loadNTimes(t, s, "sig-a", 6)                // accumulate fast-regime history
	s.loads.adopted = quantizeBandwidth(fastBW) // estimate in use from that regime

	const slowBW = 8e6
	s.DiskBytesPerSec = slowBW // hardware change
	loadNTimes(t, s, "sig-a", 8)

	bw := s.LoadBandwidth()
	if bw < slowBW/2 || bw > slowBW*2.2 {
		t.Fatalf("after hardware change adopted bandwidth = %.0f, want within ~2x of %.0f", bw, slowBW)
	}
}

// TestLoadModelIgnoresTinyReads: artifacts below the size floor must not
// perturb the estimate — tiny reads measure constant costs, not
// bandwidth, and a wobbling estimate would dirty plan fingerprints.
func TestLoadModelIgnoresTinyReads(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Put("sig-tiny", "tiny", []float64{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	loadNTimes(t, s, "sig-tiny", 5)
	if bw := s.LoadBandwidth(); bw != 0 {
		t.Fatalf("tiny reads adopted a bandwidth: %.0f", bw)
	}
}
