package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

type payload struct {
	Rows []string
	N    int
}

func init() {
	RegisterValueType(payload{})
	RegisterValueType([]float64(nil))
	RegisterValueType(map[string]int(nil))
}

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	want := payload{Rows: []string{"a", "b"}, N: 7}
	if _, err := s.Put("k1", "rows", want, 0); err != nil {
		t.Fatal(err)
	}
	got, dur, err := s.Get("k1")
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatal("load duration not measured")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Get = %+v, want %+v", got, want)
	}
}

func TestGetMissingKey(t *testing.T) {
	s := open(t)
	if _, _, err := s.Get("nope"); err == nil {
		t.Fatal("expected error for missing key")
	}
}

func TestHasAndEntry(t *testing.T) {
	s := open(t)
	if s.Has("k") {
		t.Fatal("Has on empty store")
	}
	e, err := s.Put("k", "node", payload{N: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has("k") {
		t.Fatal("Has after Put")
	}
	got, ok := s.Entry("k")
	if !ok || got.Iteration != 3 || got.Size != e.Size || got.Name != "node" {
		t.Fatalf("Entry = %+v, %v", got, ok)
	}
}

func TestDelete(t *testing.T) {
	s := open(t)
	if _, err := s.Put("k", "n", payload{}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if s.Has("k") {
		t.Fatal("entry survived delete")
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal("deleting missing key should be a no-op")
	}
}

func TestPurgeKeepsSelected(t *testing.T) {
	s := open(t)
	for _, k := range []string{"a", "b", "c"} {
		if _, err := s.Put(k, k, payload{N: 1}, 0); err != nil {
			t.Fatal(err)
		}
	}
	freed, err := s.Purge(func(k string) bool { return k == "b" })
	if err != nil {
		t.Fatal(err)
	}
	if freed <= 0 {
		t.Fatal("purge freed nothing")
	}
	if s.Len() != 1 || !s.Has("b") {
		t.Fatalf("after purge: len=%d has(b)=%v", s.Len(), s.Has("b"))
	}
}

func TestUsedBytesAndKeys(t *testing.T) {
	s := open(t)
	if s.UsedBytes() != 0 {
		t.Fatal("fresh store has nonzero usage")
	}
	s.Put("z", "z", payload{Rows: []string{"xxxx"}}, 0)
	s.Put("a", "a", payload{Rows: []string{"yyyy"}}, 0)
	if s.UsedBytes() <= 0 {
		t.Fatal("usage not tracked")
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "z" {
		t.Fatalf("Keys = %v, want sorted [a z]", keys)
	}
}

func TestManifestPersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Put("k", "n", payload{N: 42}, 5); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := s2.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if got.(payload).N != 42 {
		t.Fatalf("reopened value = %+v", got)
	}
	e, _ := s2.Entry("k")
	if e.Iteration != 5 {
		t.Fatalf("iteration lost on reopen: %d", e.Iteration)
	}
}

func TestCorruptedFileReturnsError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("k", "n", payload{N: 1}, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file on disk (failure injection: engine must fall back
	// to recomputation when a load fails).
	if err := os.WriteFile(filepath.Join(dir, "k.gob"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("k"); err == nil {
		t.Fatal("expected decode error for corrupted file")
	}
}

func TestSimulatedDiskSlowsIO(t *testing.T) {
	s := open(t)
	data := make([]float64, 1<<14) // ≈128 KiB encoded
	for i := range data {
		data[i] = 0.1 + float64(i) // non-zero: gob varint-compresses zeros
	}
	s.DiskBytesPerSec = 1 << 20 // 1 MiB/s: ~130ms for this payload
	start := time.Now()
	if _, err := s.Put("k", "n", data, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("simulated disk not throttling writes: %v", elapsed)
	}
	start = time.Now()
	if _, _, err := s.Get("k"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("simulated disk not throttling reads: %v", elapsed)
	}
}

func TestEstimateLoadMonotonic(t *testing.T) {
	s := open(t)
	s.DiskBytesPerSec = 170 << 20 // the paper's HDD
	small := s.EstimateLoad(1 << 10)
	big := s.EstimateLoad(1 << 30)
	if big <= small {
		t.Fatalf("EstimateLoad not monotonic: %v vs %v", small, big)
	}
	// 1 GiB at 170 MiB/s ≈ 6s.
	if big < 5*time.Second || big > 8*time.Second {
		t.Fatalf("EstimateLoad(1GiB) = %v, want ≈6s", big)
	}
}

// TestQuickRoundTrip: arbitrary string-keyed maps survive the store.
func TestQuickRoundTrip(t *testing.T) {
	s := open(t)
	i := 0
	f := func(m map[string]int) bool {
		i++
		key := string(rune('a'+i%26)) + "-roundtrip"
		if m == nil {
			m = map[string]int{}
		}
		if _, err := s.Put(key, "m", m, 0); err != nil {
			return false
		}
		got, _, err := s.Get(key)
		if err != nil {
			return false
		}
		gm := got.(map[string]int)
		if len(gm) != len(m) {
			return false
		}
		for k, v := range m {
			if gm[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
