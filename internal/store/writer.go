package store

import (
	"sync"
	"time"
)

// DefaultWriters is the writer-pool size used when Store.Writers is unset.
// Materialization is I/O-bound (and, under disk simulation, sleep-bound),
// so a small pool suffices to keep writes off the computation's critical
// path without swamping the disk.
const DefaultWriters = 4

// DefaultQueueDepth bounds the write-behind queue when Store.QueueDepth is
// unset. A full queue applies backpressure to PutAsync callers, bounding
// the memory pinned by values awaiting serialization.
const DefaultQueueDepth = 64

// WriteRequest is one unit of write-behind work handed to the writer pool.
// Exactly one of Data or Value supplies the payload: when Data is nil the
// pool encodes Value (with the store's codec) on a writer goroutine,
// keeping serialization cost off the caller's critical path.
type WriteRequest struct {
	Key       string
	Name      string
	Iteration int

	// Tenant labels the publishing tenant for shared-mode byte accounting;
	// empty for private stores.
	Tenant string

	// Value is encoded on the writer goroutine when Data is nil. The pool
	// holds the only required reference: callers may drop theirs
	// immediately after PutAsync returns (eager cache pruning, §5.4).
	Value any
	// Data, when non-nil, is the pre-encoded payload.
	Data []byte

	// Decide, when non-nil, is consulted after encoding with the encoded
	// size; returning false drops the write. This is how the engine defers
	// the materialization-policy check (Algorithm 2 needs the size) to the
	// writer goroutine for values that cannot report their size cheaply.
	// It must be safe to call from a writer goroutine.
	Decide func(size int64) bool

	// OnDone, when non-nil, receives the outcome on the writer goroutine.
	// It runs before the request is counted as drained, so everything it
	// writes is visible to any goroutine that returns from Flush —
	// callers need no additional synchronization for Flush-ordered reads.
	OnDone func(WriteOutcome)
}

// WriteOutcome reports how one WriteRequest ended.
type WriteOutcome struct {
	// Entry is the recorded entry; zero unless Written, except when a
	// shared-mode publish found the signature already on disk — then it is
	// the existing entry (Written false, Err nil), so callers can refund
	// budget reserved for the deduplicated write.
	Entry Entry
	// Written reports whether the payload landed in the store. False when
	// Decide declined, an equivalent entry already existed, or Err is set.
	Written bool
	// Err is the write error, if any. A failed write leaves the store
	// without the entry — callers degrade to "not materialized".
	Err error
	// Secs is the time spent on the writer goroutine: serialization,
	// the policy check, the file write, simulated-disk throttle, and the
	// manifest update. Queue wait is excluded — this is the cost the
	// write-behind design moves off the critical path.
	Secs float64
}

// WriterPoolSize reports the effective size of the write-behind writer
// pool — Writers when positive, DefaultWriters otherwise. This is the
// number the session's WorkerMat class accounts for.
func (s *Store) WriterPoolSize() int {
	if s.Writers > 0 {
		return s.Writers
	}
	return DefaultWriters
}

// writerPool is the bounded background pool behind PutAsync/Flush/Close.
type writerPool struct {
	// mu guards the pool's counters and error slot; workers perform the
	// actual disk writes after dequeuing, outside the lock.
	//lint:nolockio
	mu      sync.Mutex
	cond    *sync.Cond
	queue   chan WriteRequest
	pending int
	started bool
	stopped bool
	stop    chan struct{}
	err     error // first async write error since the last Flush
}

func (w *writerPool) init() {
	w.cond = sync.NewCond(&w.mu)
	w.stop = make(chan struct{})
}

// PutAsync enqueues a write-behind request and returns as soon as it is
// queued; encoding, the deferred policy check, the disk write, and the
// manifest update all happen on a background writer goroutine. A full
// queue blocks (backpressure). After Close the request is processed
// synchronously on the caller's goroutine instead.
//
// Requests for the same key are not ordered relative to one another; the
// engine never issues concurrent writes for one key (retirement is
// once-per-node), and the per-key lock keeps any such race consistent.
func (s *Store) PutAsync(req WriteRequest) {
	w := &s.wp
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		// Synchronous fallback: no Flush barrier is guaranteed to follow,
		// so the manifest must be flushed inline like any sync Put.
		out := s.processWrite(req, true)
		if req.OnDone != nil {
			req.OnDone(out)
		}
		return
	}
	if !w.started {
		w.started = true
		writers := s.Writers
		if writers <= 0 {
			writers = DefaultWriters
		}
		depth := s.QueueDepth
		if depth <= 0 {
			depth = DefaultQueueDepth
		}
		w.queue = make(chan WriteRequest, depth)
		for i := 0; i < writers; i++ {
			go s.writerLoop()
		}
	}
	w.pending++
	queue := w.queue
	w.mu.Unlock()
	queue <- req
}

// writerLoop drains the queue until Close. The pending count is
// decremented only after OnDone returns, so a Flush that observes zero
// pending requests happens-after every callback's effects.
func (s *Store) writerLoop() {
	w := &s.wp
	for {
		select {
		case req := <-w.queue:
			out := s.processWrite(req, false)
			if req.OnDone != nil {
				req.OnDone(out)
			}
			w.mu.Lock()
			if out.Err != nil && w.err == nil {
				w.err = out.Err
			}
			w.pending--
			if w.pending == 0 {
				w.cond.Broadcast()
			}
			w.mu.Unlock()
		case <-w.stop:
			return
		}
	}
}

// processWrite performs one request: encode if needed, consult Decide,
// write through the synchronous path. Timing starts here — queue wait is
// deliberately not charged as materialization cost. With syncManifest
// false (writer goroutines) the manifest update is deferred to the Flush
// barrier instead of rewritten per write.
func (s *Store) processWrite(req WriteRequest, syncManifest bool) WriteOutcome {
	start := time.Now()
	if ent, ok := s.Entry(req.Key); ok {
		// An equivalent result landed since the request was enqueued. The
		// existing entry is reported so callers can refund reserved budget
		// and adopt the artifact's size.
		return WriteOutcome{Entry: ent, Secs: time.Since(start).Seconds()}
	}
	data := req.Data
	if data == nil {
		var err error
		data, err = s.EncodeValue(req.Value)
		if err != nil {
			// Unserializable values are simply not materialized; the encode
			// attempt is still charged as materialization overhead.
			return WriteOutcome{Secs: time.Since(start).Seconds()}
		}
	}
	if req.Decide != nil && !req.Decide(int64(len(data))) {
		return WriteOutcome{Secs: time.Since(start).Seconds()}
	}
	ent, wrote, err := s.putBytes(req.Key, req.Name, data, req.Iteration, req.Tenant, syncManifest)
	return WriteOutcome{
		Entry:   ent,
		Written: wrote && err == nil,
		Err:     err,
		Secs:    time.Since(start).Seconds(),
	}
}

// Flush is the write-behind barrier: it blocks until every request
// enqueued before the call (and any enqueued while it waits) has fully
// drained — payload on disk, manifest updated, OnDone returned. It
// returns the first background write error since the previous Flush, if
// any. Callers that need cross-iteration reuse or a durable manifest
// (Session.Run, Session.Close) call this between iterations.
func (s *Store) Flush() error {
	w := &s.wp
	w.mu.Lock()
	for w.pending > 0 {
		w.cond.Wait()
	}
	err := w.err
	w.err = nil
	w.mu.Unlock()
	// Batched manifest update: writer goroutines only mark the table
	// dirty; the one whole-table rewrite happens here, once per barrier.
	if s.manifestDirty.CompareAndSwap(true, false) {
		if ferr := s.flushManifest(); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}

// Close flushes pending writes and stops the writer pool. The store
// remains usable afterwards: subsequent PutAsync calls degrade to
// synchronous writes on the caller's goroutine.
//
// stopped is set before the flush: from that point every new PutAsync
// takes the synchronous path, so once Flush observes a drained queue no
// producer can enqueue again and the workers can be stopped without
// stranding a request.
func (s *Store) Close() error {
	w := &s.wp
	w.mu.Lock()
	already := w.stopped
	w.stopped = true
	w.mu.Unlock()
	err := s.Flush()
	if !already {
		close(w.stop)
	}
	return err
}
