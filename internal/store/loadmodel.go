package store

import (
	"math"
	"sync"
	"time"
)

// loadDecay is the geometric decay applied to accumulated load-bandwidth
// history per new observation: recent reads dominate, and a hardware or
// environment change is forgotten within a handful of loads.
const loadDecay = 0.7

// minLoadModelBytes is the smallest read the bandwidth model learns from.
// Below this, per-read constant costs (seek, syscall, decode setup)
// dominate and the computed "bandwidth" is noise; tiny-artifact sessions
// therefore keep the static estimate and byte-stable plan fingerprints.
const minLoadModelBytes = 64 << 10

// loadAdoptBand is the hysteresis ratio for (re-)adopting an observed
// bandwidth: the raw measurement must differ from the bandwidth the
// estimate currently uses — the adopted value, or the static assumption
// while none has been adopted — by more than this factor either way.
// Within the band the static model is close enough that correcting it
// would buy little accuracy while dirtying plan fingerprints (measured
// reads include decode overhead, so observed bandwidth always sits a
// little under a simulated disk's configured throughput).
const loadAdoptBand = 1.7

// loadModel is the store's self-correcting load-bandwidth estimator. Each
// sufficiently large physical read contributes its byte count and
// measured transfer time (the read syscall plus any simulated-disk
// throttle — decode excluded, matching the paper's l_i = s_i/(disk speed)
// model); the decayed ratio is the observed bandwidth.
//
// The bandwidth EstimateLoad actually uses is deliberately coarse: the
// raw estimate is quantized to the nearest power of two and adopted only
// when the raw value sits outside a loadAdoptBand× band around the
// bandwidth the estimate currently assumes (the previously adopted value,
// or the static assumption before any adoption). Plan fingerprints hash
// projected load costs, so a load estimate that wobbled with every read
// would dirty the plan cache on every iteration; quantization plus
// hysteresis keeps the estimate byte-stable across runs unless measured
// throughput genuinely contradicts it, while still converging within a
// factor √2 of the measured bandwidth when it does.
type loadModel struct {
	//lint:nolockio
	mu      sync.Mutex
	bytes   float64 // decayed cumulative bytes read
	secs    float64 // decayed cumulative read seconds
	adopted float64 // quantized bandwidth in use; 0 = none yet
}

// observe folds one physical read into the model. staticBW is the
// bandwidth the static estimate would assume (the configured simulated
// throughput, or the fast-local-disk default): while nothing has been
// adopted it serves as the hysteresis reference, so measurements that
// roughly agree with the static model never perturb it.
func (m *loadModel) observe(size int64, dur time.Duration, staticBW float64) {
	if size < minLoadModelBytes || dur <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bytes = m.bytes*loadDecay + float64(size)
	m.secs = m.secs*loadDecay + dur.Seconds()
	raw := m.bytes / m.secs
	if raw <= 0 || math.IsInf(raw, 0) || math.IsNaN(raw) {
		return
	}
	ref := m.adopted
	if ref == 0 {
		ref = staticBW
	}
	if ref <= 0 {
		m.adopted = quantizeBandwidth(raw)
		return
	}
	if r := raw / ref; r > loadAdoptBand || r < 1/loadAdoptBand {
		m.adopted = quantizeBandwidth(raw)
	}
}

// bandwidth returns the adopted bytes/sec, or 0 when nothing has been
// observed yet.
func (m *loadModel) bandwidth() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.adopted
}

// quantizeBandwidth rounds to the nearest power of two (in log space).
func quantizeBandwidth(bw float64) float64 {
	return math.Exp2(math.Round(math.Log2(bw)))
}

// LoadBandwidth reports the bandwidth (bytes/sec) the store's load-time
// estimate currently assumes from observed reads, or 0 while none has
// been adopted (EstimateLoad then uses its static model). Diagnostic.
func (s *Store) LoadBandwidth() float64 { return s.loads.bandwidth() }
