package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentStress hammers every mutating and reading operation from
// many goroutines over a deliberately overlapping key space, then checks
// the store's core consistency invariants once quiescent:
//
//  1. every key the entry table reports is actually loadable (an entry
//     never outlives or precedes its blob), and
//  2. the on-disk manifest agrees exactly with the in-memory table (a
//     fresh Open sees the same entries).
//
// Run under -race this doubles as the data-race check for the sharded
// store and the write-behind pool.
func TestConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		opsPer  = 150
		keySpan = 24 // small: force overlapping-key contention
	)
	keys := make([]string, keySpan)
	for i := range keys {
		keys[i] = fmt.Sprintf("stress-%02d", i)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPer; i++ {
				k := keys[rng.Intn(keySpan)]
				switch rng.Intn(10) {
				case 0, 1:
					if _, err := s.Put(k, "n", payload{N: w*1000 + i}, i); err != nil {
						t.Errorf("Put(%s): %v", k, err)
					}
				case 2, 3:
					data, _ := Encode(payload{N: i})
					if _, err := s.PutBytes(k, "n", data, i); err != nil {
						t.Errorf("PutBytes(%s): %v", k, err)
					}
				case 4:
					s.PutAsync(WriteRequest{Key: k, Name: "n", Iteration: i, Value: payload{N: i}})
				case 5, 6:
					// Concurrent Get may legitimately race a Delete; only
					// crashes and inconsistencies count as failures.
					_, _, _ = s.Get(k)
				case 7:
					if err := s.Delete(k); err != nil {
						t.Errorf("Delete(%s): %v", k, err)
					}
				case 8:
					s.Has(k)
					s.Entry(k)
					s.UsedBytes()
				case 9:
					victim := keys[rng.Intn(keySpan)]
					if _, err := s.Purge(func(key string) bool { return key != victim }); err != nil {
						t.Errorf("Purge: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	for _, k := range s.Keys() {
		if _, _, err := s.Get(k); err != nil {
			t.Errorf("entry %q not loadable after quiescence: %v", k, err)
		}
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got, want := reopened.Keys(), s.Keys(); !reflect.DeepEqual(got, want) {
		t.Errorf("manifest inconsistent: reopened keys %v, live keys %v", got, want)
	}
	for _, k := range s.Keys() {
		live, _ := s.Entry(k)
		persisted, ok := reopened.Entry(k)
		if !ok || persisted.Size != live.Size || persisted.Iteration != live.Iteration {
			t.Errorf("manifest entry %q diverged: live %+v persisted %+v", k, live, persisted)
		}
	}
}

// TestConcurrentDistinctPutsLoseNothing drives sync and async writes to
// disjoint keys from many goroutines and asserts that every single one
// survives — in the live table, on disk, and in the reopened manifest.
func TestConcurrentDistinctPutsLoseNothing(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k-%03d", i)
			if i%2 == 0 {
				if _, err := s.Put(key, "n", payload{N: i}, i); err != nil {
					t.Errorf("Put(%s): %v", key, err)
				}
			} else {
				s.PutAsync(WriteRequest{Key: key, Name: "n", Iteration: i, Value: payload{N: i}})
			}
		}(i)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := s.Len(); got != n {
		t.Fatalf("lost entries: Len = %d, want %d", got, n)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Len(); got != n {
		t.Fatalf("manifest lost entries: reopened Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		v, _, err := reopened.Get(fmt.Sprintf("k-%03d", i))
		if err != nil {
			t.Fatalf("Get(k-%03d): %v", i, err)
		}
		if v.(payload).N != i {
			t.Fatalf("k-%03d holds %+v", i, v)
		}
	}
}

// TestPutAsyncDecideAndOutcome covers the deferred policy check: Decide
// sees the encoded size, a false verdict drops the write, and OnDone
// reports the outcome either way.
func TestPutAsyncDecideAndOutcome(t *testing.T) {
	s := open(t)
	outcomes := make(chan WriteOutcome, 2)
	s.PutAsync(WriteRequest{
		Key: "accepted", Name: "n", Value: payload{N: 1},
		Decide: func(size int64) bool {
			if size <= 0 {
				t.Errorf("Decide saw size %d", size)
			}
			return true
		},
		OnDone: func(out WriteOutcome) { outcomes <- out },
	})
	s.PutAsync(WriteRequest{
		Key: "declined", Name: "n", Value: payload{N: 2},
		Decide: func(int64) bool { return false },
		OnDone: func(out WriteOutcome) { outcomes <- out },
	})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		out := <-outcomes
		if out.Err != nil {
			t.Fatalf("outcome error: %v", out.Err)
		}
		if out.Written && out.Entry.Key != "accepted" {
			t.Fatalf("unexpected write: %+v", out.Entry)
		}
	}
	if !s.Has("accepted") || s.Has("declined") {
		t.Fatalf("store state: accepted=%v declined=%v", s.Has("accepted"), s.Has("declined"))
	}
}

// TestFlushIsBarrier asserts the core Flush contract: once Flush returns,
// every previously enqueued write is visible in the table, durable in the
// manifest, and its OnDone has finished (no extra synchronization needed
// to read what the callback wrote).
func TestFlushIsBarrier(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Int32
	const n = 50
	for i := 0; i < n; i++ {
		s.PutAsync(WriteRequest{
			Key: fmt.Sprintf("b-%02d", i), Name: "n", Iteration: i,
			Value:  payload{N: i},
			OnDone: func(WriteOutcome) { done.Add(1) },
		})
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := done.Load(); got != n {
		t.Fatalf("Flush returned before all callbacks: %d/%d", got, n)
	}
	if got := s.Len(); got != n {
		t.Fatalf("Flush returned with %d/%d entries visible", got, n)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Len(); got != n {
		t.Fatalf("manifest behind after Flush: %d/%d", got, n)
	}
}

// TestSingleFlightGet issues many concurrent Gets of one slow key and
// checks they all succeed with the shared decoded value. With the
// simulated disk each physical read costs ~40ms; single-flighting keeps
// the elapsed time near one read instead of one per caller.
func TestSingleFlightGet(t *testing.T) {
	s := open(t)
	data := make([]float64, 1<<13)
	for i := range data {
		data[i] = float64(i) + 0.5
	}
	if _, err := s.Put("hot", "n", data, 0); err != nil {
		t.Fatal(err)
	}
	s.DiskBytesPerSec = 1 << 21 // ~32ms per physical read of this payload
	const readers = 16
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := s.Get("hot")
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			if got := v.([]float64); len(got) != len(data) || got[7] != data[7] {
				t.Error("shared value corrupted")
			}
		}()
	}
	wg.Wait()
	// 16 serialized reads would cost ≥ 512ms; allow generous slack for a
	// couple of non-overlapping flights plus scheduling noise.
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("concurrent Gets not single-flighted: %v for %d readers", elapsed, readers)
	}
}

// TestCloseDegradesToSync: after Close, PutAsync must still work by
// writing synchronously on the caller's goroutine.
func TestCloseDegradesToSync(t *testing.T) {
	s := open(t)
	s.PutAsync(WriteRequest{Key: "before", Name: "n", Value: payload{N: 1}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	called := false
	s.PutAsync(WriteRequest{
		Key: "after", Name: "n", Value: payload{N: 2},
		OnDone: func(out WriteOutcome) {
			called = true
			if !out.Written {
				t.Errorf("post-Close write failed: %+v", out)
			}
		},
	})
	// No Flush needed: post-Close PutAsync is synchronous.
	if !called {
		t.Fatal("post-Close PutAsync did not run inline")
	}
	if !s.Has("before") || !s.Has("after") {
		t.Fatalf("entries missing: before=%v after=%v", s.Has("before"), s.Has("after"))
	}
	if err := s.Close(); err != nil {
		t.Fatal("double Close must be safe:", err)
	}
}
