package store

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Shared is a content-addressed artifact store that any number of
// sessions attach to concurrently. It wraps exactly one *Store, so every
// concurrency property of the single-session store — the 16-way sharded
// entry table, per-key file locks, single-flighted Gets, and the
// PutAsync/Flush writer pool — holds across sessions for free.
//
// Shared mode changes the store's write semantics from "latest wins" to
// content-addressed write-once: a chain signature is a sha256 over the
// operator chain that produced the value, so two sessions computing the
// same signature computed equivalent values (Definition 3) and the first
// publish wins. Publishes are atomic (temp file + rename), so a reader in
// another session can never observe a torn artifact.
//
// Lifecycle: OpenShared opens the handle; each session Attaches and later
// Detaches; the owner Closes the handle once after all sessions detach.
// Entries are protected from Purge while any live attachment pins them —
// an attachment pins the chain signatures of its last executed plan
// (Attachment.Repin), so one session's purge can never invalidate an
// artifact another live session depends on.
type Shared struct {
	store *Store

	//lint:nolockio
	mu     sync.Mutex
	closed bool
	atts   map[int]*Attachment
}

// sharedState lives on the Store so Purge and manifest snapshots can
// consult pins without reaching back through the Shared handle.
type sharedState struct {
	//lint:nolockio
	mu   sync.Mutex
	next int
	// pins maps a live attachment id to the chain signatures its session's
	// last executed plan depends on. In-memory pins are authoritative: a
	// freshly opened shared store has no live sessions, so nothing is
	// pinned and the persisted Refs counts are diagnostics only.
	pins map[int]map[string]bool
}

// OpenShared opens (creating if needed) a shared content-addressed store
// rooted at dir. Store-level configuration (codec, writer-pool size, disk
// simulation) is set once on the underlying Store() before the first use;
// attaching sessions inherit it.
func OpenShared(dir string) (*Shared, error) {
	s, err := Open(dir)
	if err != nil {
		return nil, err
	}
	s.shared = &sharedState{pins: make(map[int]map[string]bool)}
	return &Shared{store: s, atts: make(map[int]*Attachment)}, nil
}

// Store returns the underlying store all attachments share.
func (sh *Shared) Store() *Store { return sh.store }

// Attach registers a new session under the given tenant namespace and
// returns its attachment handle. The tenant labels the entries the
// session publishes (for per-tenant byte accounting); it does not
// partition the namespace — artifacts are shared across tenants by
// content address.
func (sh *Shared) Attach(tenant string) (*Attachment, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return nil, fmt.Errorf("store: attach: shared store is closed")
	}
	st := sh.store.shared
	st.mu.Lock()
	id := st.next
	st.next++
	st.pins[id] = make(map[string]bool)
	st.mu.Unlock()
	a := &Attachment{shared: sh, id: id, tenant: tenant}
	sh.atts[id] = a
	return a, nil
}

// Attachments reports the number of live (attached, not yet detached)
// sessions.
func (sh *Shared) Attachments() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.atts)
}

// TenantBytes reports the total on-disk bytes of artifacts published
// under the given tenant label.
func (sh *Shared) TenantBytes(tenant string) int64 { return sh.store.TenantBytes(tenant) }

// Close flushes pending writes, persists the manifest, and stops the
// writer pool. Live attachments keep working (their writes degrade to
// synchronous), but new Attach calls fail. Close is idempotent.
func (sh *Shared) Close() error {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return nil
	}
	sh.closed = true
	sh.mu.Unlock()
	return sh.store.Close()
}

// Attachment is one session's handle on a Shared store. It carries the
// session's tenant label and its pin set — the chain signatures of the
// session's last executed plan, which Purge must not evict while the
// attachment is live.
type Attachment struct {
	shared   *Shared
	id       int
	tenant   string
	detached atomic.Bool
}

// Store returns the shared underlying store.
func (a *Attachment) Store() *Store { return a.shared.store }

// Tenant returns the namespace label the attachment publishes under.
func (a *Attachment) Tenant() string { return a.tenant }

// Repin replaces the attachment's pin set with the given chain
// signatures. The engine calls this after each successful run with the
// executed plan's full signature set, so everything the session's current
// results were loaded from (or could be re-loaded from) stays protected.
func (a *Attachment) Repin(sigs []string) {
	st := a.shared.store.shared
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, live := st.pins[a.id]; !live {
		return // detached: never resurrect a released pin set
	}
	m := make(map[string]bool, len(sigs))
	for _, sig := range sigs {
		m[sig] = true
	}
	st.pins[a.id] = m
}

// Detach flushes the session's pending writes and releases its pins.
// Idempotent. The underlying store stays open for other attachments.
func (a *Attachment) Detach() error {
	if a.detached.Swap(true) {
		return nil
	}
	err := a.shared.store.Flush()
	st := a.shared.store.shared
	st.mu.Lock()
	delete(st.pins, a.id)
	st.mu.Unlock()
	a.shared.mu.Lock()
	delete(a.shared.atts, a.id)
	a.shared.mu.Unlock()
	return err
}

// SharedMode reports whether the store was opened via OpenShared and
// therefore uses content-addressed write-once publish semantics.
func (s *Store) SharedMode() bool { return s.shared != nil }

// refCounts snapshots, per pinned key, how many live attachments pin it.
func (st *sharedState) refCounts() map[string]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	refs := make(map[string]int)
	for _, pins := range st.pins {
		for key := range pins {
			refs[key]++
		}
	}
	return refs
}

// Refs reports how many live attachments pin key (0 outside shared mode).
func (s *Store) Refs(key string) int {
	if s.shared == nil {
		return 0
	}
	s.shared.mu.Lock()
	defer s.shared.mu.Unlock()
	n := 0
	for _, pins := range s.shared.pins {
		if pins[key] {
			n++
		}
	}
	return n
}

// Pinned reports whether any live attachment pins key.
func (s *Store) Pinned(key string) bool { return s.Refs(key) > 0 }

// TenantBytes reports the total size of entries published under tenant.
func (s *Store) TenantBytes(tenant string) int64 {
	var total int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			if e.Tenant == tenant {
				total += e.Size
			}
		}
		sh.mu.Unlock()
	}
	return total
}
