package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
	"slices"
	"sort"
	"sync"
)

// Codec serializes values for the materialization store. Implementations
// must be safe for concurrent use: the write-behind pool encodes from
// several writer goroutines at once, and single-flighted Gets decode from
// whichever goroutine wins the flight.
//
// Type registration is part of the interface so callers never couple to a
// specific encoding (historically store.Register leaked gob into every
// call site): register value types once via RegisterValueType and every
// codec sees them.
type Codec interface {
	// Name identifies the codec ("binary", "gob") for diagnostics and
	// configuration fingerprints.
	Name() string
	// Encode returns the on-disk representation of value.
	Encode(value any) ([]byte, error)
	// Decode reverses Encode. Implementations are expected to sniff the
	// format header and fall back to legacy gob payloads, so a store
	// directory written by an older build keeps loading.
	Decode(data []byte) (any, error)
}

// The binary format is a 5-byte header followed by one tagged value:
//
//	'H' 'X' 'B' '1'  magic
//	0x01             format version
//	tag byte         value encoding, one of the tag* constants
//	payload          tag-specific
//
// Payload conventions: integers are unsigned varints (counts, lengths,
// dictionary ids) or zigzag varints (signed data); float64 is 8 bytes
// little-endian of math.Float64bits; strings are interned per message —
// each occurrence is either a back-reference to a previously seen string
// or a literal that assigns the next id — so repeated categorical values
// (the census columns, row keys) cost one varint after first sight.
// Slices of numerics are laid out flat (columnar), not per-element.
//
// A payload that does not start with the magic is treated as a legacy
// gob artifact and decoded by gob: old store directories migrate in
// place, entry by entry, with no rewrite step.
var binaryMagic = [4]byte{'H', 'X', 'B', '1'}

const binaryVersion = 1

// Value tags. Append only — the on-disk format is pinned by golden
// fixtures in testdata/codec.
const (
	tagNil      = 0x00
	tagGob      = 0x01 // gob-encoded payload (fallback for unregistered types)
	tagBool     = 0x02
	tagInt      = 0x03 // zigzag varint, decodes as int
	tagInt64    = 0x04 // zigzag varint, decodes as int64
	tagFloat64  = 0x05
	tagString   = 0x06
	tagBytes    = 0x07
	tagInts     = 0x08 // []int: count + zigzag varints
	tagInt64s   = 0x09 // []int64: count + zigzag varints
	tagFloat64s = 0x0a // []float64: count + raw 8-byte LE column
	tagStrings  = 0x0b // []string: count + interned refs
	tagBools    = 0x0c // []bool: count + bitmap
	tagFloatMat = 0x0d // [][]float64: row count + row lens + flat column
	tagStrMat   = 0x0e // [][]string: row count + row lens + interned refs
	tagMapSF    = 0x0f // map[string]float64: count + sorted key/value pairs
	tagExt      = 0x10 // registered extension: interned type name + payload
)

// BinaryCodec is the purpose-built columnar codec: native encodings for
// the repo's row-shaped types, varint numerics, per-message string
// interning, and a gob escape hatch for anything unregistered. The zero
// value is ready to use.
type BinaryCodec struct{}

func (BinaryCodec) Name() string { return "binary" }

// GobCodec is the legacy encoding, kept as an escape hatch
// (helix.WithCodec(helix.CodecGob)) and as the reference encoder the
// fuzz harness compares cross-codec outputs through.
type GobCodec struct{}

func (GobCodec) Name() string { return "gob" }

func (GobCodec) Encode(value any) ([]byte, error) { return Encode(value) }

// Decode sniffs for the binary header so a directory that once held
// binary artifacts keeps loading after a switch back to gob.
func (GobCodec) Decode(data []byte) (any, error) {
	if hasBinaryHeader(data) {
		return BinaryCodec{}.Decode(data)
	}
	return gobDecode(data)
}

// defaultCodec is used by stores whose Codec field is nil.
var defaultCodec Codec = BinaryCodec{}

// RegisterValueType registers a concrete Go type for materialization with
// every codec. The binary codec needs it for values it routes through its
// gob escape hatch; the gob codec needs it for everything. Call it for
// each concrete operator-output type, like gob.Register.
func RegisterValueType(v any) { gob.Register(v) }

// Ext is a custom columnar encoding for one concrete type, registered
// with RegisterExt. It lets packages the store cannot import (workload
// row types, example types) opt into the binary format instead of the
// gob escape hatch.
type Ext struct {
	// Name is the stable on-disk type tag. Renaming it orphans artifacts.
	Name string
	// Type is the concrete type handled, e.g. reflect.TypeOf([]Row(nil)).
	Type reflect.Type
	// Encode writes v (guaranteed of type Type) to w.
	Encode func(w *Writer, v any) error
	// Decode reads the value back from r.
	Decode func(r *Reader) (any, error)
}

var (
	//lint:nolockio
	extMu     sync.RWMutex
	extByType = map[reflect.Type]*Ext{}
	extByName = map[string]*Ext{}
)

// RegisterExt installs a custom columnar encoding. Registering the same
// type or name twice panics — silent replacement would orphan artifacts.
func RegisterExt(ext Ext) {
	if ext.Name == "" || ext.Type == nil || ext.Encode == nil || ext.Decode == nil {
		panic("store: RegisterExt: incomplete extension")
	}
	extMu.Lock()
	defer extMu.Unlock()
	if _, dup := extByType[ext.Type]; dup {
		panic(fmt.Sprintf("store: RegisterExt: duplicate type %v", ext.Type))
	}
	if _, dup := extByName[ext.Name]; dup {
		panic(fmt.Sprintf("store: RegisterExt: duplicate name %q", ext.Name))
	}
	e := ext
	extByType[ext.Type] = &e
	extByName[ext.Name] = &e
}

func lookupExt(v any) *Ext {
	extMu.RLock()
	defer extMu.RUnlock()
	return extByType[reflect.TypeOf(v)]
}

func lookupExtName(name string) *Ext {
	extMu.RLock()
	defer extMu.RUnlock()
	return extByName[name]
}

func hasBinaryHeader(data []byte) bool {
	return len(data) >= 5 && [4]byte(data[:4]) == binaryMagic
}

func (BinaryCodec) Encode(value any) ([]byte, error) {
	w := NewWriter()
	w.buf = append(w.buf, binaryMagic[:]...)
	w.buf = append(w.buf, binaryVersion)
	if err := w.Value(value); err != nil {
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	return w.buf, nil
}

func (BinaryCodec) Decode(data []byte) (any, error) {
	if !hasBinaryHeader(data) {
		// Legacy artifact written before the binary codec existed.
		return gobDecode(data)
	}
	if data[4] != binaryVersion {
		return nil, fmt.Errorf("store: decode: unsupported binary format version %d", data[4])
	}
	r := NewReader(data[5:])
	v, err := r.Value()
	if err != nil {
		return nil, fmt.Errorf("store: decode: %w", err)
	}
	return v, nil
}

func gobDecode(data []byte) (any, error) {
	var value any
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&value); err != nil {
		return nil, fmt.Errorf("store: decode: %w", err)
	}
	return value, nil
}

// Writer serializes values into the binary format. It is the primitive
// surface extensions build on; one Writer serves one message, carrying
// the message-scoped intern table.
type Writer struct {
	buf    []byte
	intern map[string]uint64
	tmp    [binary.MaxVarintLen64]byte
}

// NewWriter returns an empty Writer (no header — BinaryCodec.Encode owns
// the header; extensions receive a Writer mid-message).
func NewWriter() *Writer { return &Writer{intern: make(map[string]uint64)} }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(u uint64) {
	n := binary.PutUvarint(w.tmp[:], u)
	w.buf = append(w.buf, w.tmp[:n]...)
}

// Varint appends a zigzag-encoded signed varint.
func (w *Writer) Varint(i int64) {
	n := binary.PutVarint(w.tmp[:], i)
	w.buf = append(w.buf, w.tmp[:n]...)
}

// Float64 appends 8 little-endian bytes.
func (w *Writer) Float64(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}

// Bool appends one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// String appends an interned string: 0 followed by len+bytes the first
// time a string is seen (assigning it the next id), or id+1 as a
// back-reference on every later occurrence.
func (w *Writer) String(s string) {
	if id, ok := w.intern[s]; ok {
		w.Uvarint(id + 1)
		return
	}
	w.intern[s] = uint64(len(w.intern))
	w.Uvarint(0)
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes appends a length-prefixed byte slice (no interning).
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Float64s appends a flat column of float64s (count + raw values). The
// buffer is grown once and filled in place: per-element append growth
// would copy megabyte columns several times over.
func (w *Writer) Float64s(fs []float64) {
	w.Uvarint(uint64(len(fs)))
	off := len(w.buf)
	w.buf = slices.Grow(w.buf, 8*len(fs))[:off+8*len(fs)]
	for _, f := range fs {
		binary.LittleEndian.PutUint64(w.buf[off:], math.Float64bits(f))
		off += 8
	}
}

// Value appends one tagged value using the native encodings, a
// registered extension, or the gob escape hatch.
func (w *Writer) Value(value any) error {
	switch v := value.(type) {
	case nil:
		w.buf = append(w.buf, tagNil)
	case bool:
		w.buf = append(w.buf, tagBool)
		w.Bool(v)
	case int:
		w.buf = append(w.buf, tagInt)
		w.Varint(int64(v))
	case int64:
		w.buf = append(w.buf, tagInt64)
		w.Varint(v)
	case float64:
		w.buf = append(w.buf, tagFloat64)
		w.Float64(v)
	case string:
		w.buf = append(w.buf, tagString)
		w.String(v)
	case []byte:
		w.buf = append(w.buf, tagBytes)
		w.Bytes(v)
	case []int:
		w.buf = append(w.buf, tagInts)
		w.Uvarint(uint64(len(v)))
		for _, i := range v {
			w.Varint(int64(i))
		}
	case []int64:
		w.buf = append(w.buf, tagInt64s)
		w.Uvarint(uint64(len(v)))
		for _, i := range v {
			w.Varint(i)
		}
	case []float64:
		w.buf = append(w.buf, tagFloat64s)
		w.Float64s(v)
	case []string:
		w.buf = append(w.buf, tagStrings)
		w.Uvarint(uint64(len(v)))
		for _, s := range v {
			w.String(s)
		}
	case []bool:
		w.buf = append(w.buf, tagBools)
		w.Uvarint(uint64(len(v)))
		w.bitmap(v)
	case [][]float64:
		w.buf = append(w.buf, tagFloatMat)
		w.Uvarint(uint64(len(v)))
		total := 0
		for _, row := range v {
			w.Uvarint(uint64(len(row)))
			total += len(row)
		}
		off := len(w.buf)
		w.buf = slices.Grow(w.buf, 8*total)[:off+8*total]
		for _, row := range v {
			for _, f := range row {
				binary.LittleEndian.PutUint64(w.buf[off:], math.Float64bits(f))
				off += 8
			}
		}
	case [][]string:
		w.buf = append(w.buf, tagStrMat)
		w.Uvarint(uint64(len(v)))
		for _, row := range v {
			w.Uvarint(uint64(len(row)))
		}
		for _, row := range v {
			for _, s := range row {
				w.String(s)
			}
		}
	case map[string]float64:
		w.buf = append(w.buf, tagMapSF)
		w.Uvarint(uint64(len(v)))
		keys := make([]string, 0, len(v))
		for k := range v {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic bytes for equal maps
		for _, k := range keys {
			w.String(k)
			w.Float64(v[k])
		}
	default:
		if ext := lookupExt(value); ext != nil {
			w.buf = append(w.buf, tagExt)
			w.String(ext.Name)
			return ext.Encode(w, value)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&value); err != nil {
			return err
		}
		w.buf = append(w.buf, tagGob)
		w.Bytes(buf.Bytes())
	}
	return nil
}

// bitmap packs bools 8 per byte, LSB first.
func (w *Writer) bitmap(v []bool) {
	var cur byte
	for i, b := range v {
		if b {
			cur |= 1 << (i & 7)
		}
		if i&7 == 7 {
			w.buf = append(w.buf, cur)
			cur = 0
		}
	}
	if len(v)&7 != 0 {
		w.buf = append(w.buf, cur)
	}
}

// Reader deserializes the binary format. Every method bounds-checks, so
// truncated or corrupt payloads surface as errors, never panics.
type Reader struct {
	data   []byte
	pos    int
	intern []string
}

// NewReader wraps a payload (past the header) for decoding.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

var errTruncated = fmt.Errorf("truncated payload")

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	u, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, errTruncated
	}
	r.pos += n
	return u, nil
}

// Varint reads a zigzag-encoded signed varint.
func (r *Reader) Varint() (int64, error) {
	i, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, errTruncated
	}
	r.pos += n
	return i, nil
}

// Float64 reads 8 little-endian bytes.
func (r *Reader) Float64() (float64, error) {
	if r.pos+8 > len(r.data) {
		return 0, errTruncated
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	return f, nil
}

// Bool reads one byte.
func (r *Reader) Bool() (bool, error) {
	if r.pos >= len(r.data) {
		return false, errTruncated
	}
	b := r.data[r.pos]
	r.pos++
	return b != 0, nil
}

// String reads an interned string reference or literal.
func (r *Reader) String() (string, error) {
	ref, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if ref > 0 {
		id := ref - 1
		if id >= uint64(len(r.intern)) {
			return "", fmt.Errorf("intern reference %d out of range", id)
		}
		return r.intern[id], nil
	}
	n, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.data)-r.pos) {
		return "", errTruncated
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	r.intern = append(r.intern, s)
	return s, nil
}

// Bytes reads a length-prefixed byte slice (aliasing the input).
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.pos) {
		return nil, errTruncated
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

// count reads a length prefix and sanity-bounds it against the remaining
// bytes (each element costs at least minBytes), so a corrupt length
// cannot trigger a huge allocation.
func (r *Reader) count(minBytes int) (int, error) {
	n, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes > 0 && n > uint64(len(r.data)-r.pos)/uint64(minBytes) {
		return 0, errTruncated
	}
	return int(n), nil
}

// Float64s reads a flat column written by Writer.Float64s.
func (r *Reader) Float64s() ([]float64, error) {
	n, err := r.count(8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	fs := make([]float64, n)
	col := r.data[r.pos:]
	for i := range fs {
		fs[i] = math.Float64frombits(binary.LittleEndian.Uint64(col[8*i:]))
	}
	r.pos += 8 * n
	return fs, nil
}

// Value reads one tagged value.
func (r *Reader) Value() (any, error) {
	if r.pos >= len(r.data) {
		return nil, errTruncated
	}
	tag := r.data[r.pos]
	r.pos++
	switch tag {
	case tagNil:
		return nil, nil
	case tagBool:
		return r.Bool()
	case tagInt:
		i, err := r.Varint()
		return int(i), err
	case tagInt64:
		return r.Varint()
	case tagFloat64:
		return r.Float64()
	case tagString:
		return r.String()
	case tagBytes:
		b, err := r.Bytes()
		if err != nil {
			return nil, err
		}
		return append([]byte(nil), b...), nil
	case tagInts:
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return []int(nil), nil
		}
		is := make([]int, n)
		for i := range is {
			v, err := r.Varint()
			if err != nil {
				return nil, err
			}
			is[i] = int(v)
		}
		return is, nil
	case tagInt64s:
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return []int64(nil), nil
		}
		is := make([]int64, n)
		for i := range is {
			v, err := r.Varint()
			if err != nil {
				return nil, err
			}
			is[i] = v
		}
		return is, nil
	case tagFloat64s:
		return r.Float64s()
	case tagStrings:
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return []string(nil), nil
		}
		ss := make([]string, n)
		for i := range ss {
			if ss[i], err = r.String(); err != nil {
				return nil, err
			}
		}
		return ss, nil
	case tagBools:
		n, err := r.count(0)
		if err != nil {
			return nil, err
		}
		if uint64(n) > uint64(len(r.data)-r.pos)*8 {
			return nil, errTruncated
		}
		if n == 0 {
			return []bool(nil), nil
		}
		bs := make([]bool, n)
		for i := range bs {
			bs[i] = r.data[r.pos+i/8]&(1<<(i&7)) != 0
		}
		r.pos += (n + 7) / 8
		return bs, nil
	case tagFloatMat:
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return [][]float64(nil), nil
		}
		lens := make([]int, n)
		total := 0
		for i := range lens {
			l, err := r.count(0)
			if err != nil {
				return nil, err
			}
			lens[i] = l
			total += l
		}
		if uint64(total) > uint64(len(r.data)-r.pos)/8 {
			return nil, errTruncated
		}
		flat := make([]float64, total)
		col := r.data[r.pos:]
		for i := range flat {
			flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(col[8*i:]))
		}
		r.pos += 8 * total
		rows := make([][]float64, n)
		off := 0
		for i, l := range lens {
			if l > 0 {
				rows[i] = flat[off : off+l : off+l]
			}
			off += l
		}
		return rows, nil
	case tagStrMat:
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return [][]string(nil), nil
		}
		lens := make([]int, n)
		for i := range lens {
			if lens[i], err = r.count(0); err != nil {
				return nil, err
			}
		}
		rows := make([][]string, n)
		for i, l := range lens {
			if l == 0 {
				continue
			}
			rows[i] = make([]string, l)
			for j := range rows[i] {
				if rows[i][j], err = r.String(); err != nil {
					return nil, err
				}
			}
		}
		return rows, nil
	case tagMapSF:
		n, err := r.count(2)
		if err != nil {
			return nil, err
		}
		m := make(map[string]float64, n)
		for i := 0; i < n; i++ {
			k, err := r.String()
			if err != nil {
				return nil, err
			}
			v, err := r.Float64()
			if err != nil {
				return nil, err
			}
			m[k] = v
		}
		return m, nil
	case tagExt:
		name, err := r.String()
		if err != nil {
			return nil, err
		}
		ext := lookupExtName(name)
		if ext == nil {
			return nil, fmt.Errorf("unknown codec extension %q", name)
		}
		return ext.Decode(r)
	case tagGob:
		b, err := r.Bytes()
		if err != nil {
			return nil, err
		}
		return gobDecode(b)
	default:
		return nil, fmt.Errorf("unknown value tag 0x%02x", tag)
	}
}
