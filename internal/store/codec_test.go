package store

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/codec golden fixtures")

// migrationRecord is a struct the binary codec has no native tag for: it
// rides the gob escape hatch, exercising tagGob in the fixtures.
type migrationRecord struct {
	Label string
	Score float64
	Tags  []string
}

func init() {
	RegisterValueType(migrationRecord{})
	// The gob side of the cross-codec tests needs every composite fixture
	// type registered; the binary codec handles them natively.
	RegisterValueType([]byte(nil))
	RegisterValueType([]int(nil))
	RegisterValueType([]int64(nil))
	RegisterValueType([]float64(nil))
	RegisterValueType([]string(nil))
	RegisterValueType([]bool(nil))
	RegisterValueType([][]float64(nil))
	RegisterValueType([][]string(nil))
	RegisterValueType(map[string]float64(nil))
}

// goldenValues is the fixture set: one entry per value tag, with repeated
// strings so the intern table's back-references are pinned too. The
// names double as fixture file names under testdata/codec.
func goldenValues() []struct {
	name  string
	value any
} {
	return []struct {
		name  string
		value any
	}{
		{"nil", nil},
		{"bool", true},
		{"int", -42},
		{"int64", int64(1 << 40)},
		{"float64", 3.141592653589793},
		{"string", "hello, census"},
		{"bytes", []byte{0x00, 0xff, 0x10, 0x20}},
		{"ints", []int{0, -1, 1, 1 << 20, -(1 << 20)}},
		{"int64s", []int64{0, 127, 128, -129, 1 << 33}},
		{"float64s", []float64{0, 1.5, -2.25, 1e300, -1e-300}},
		{"strings", []string{"alpha", "beta", "alpha", "alpha", "gamma", "beta"}},
		{"bools", []bool{true, false, true, true, false, false, true, true, false}},
		{"floatmat", [][]float64{{1, 2, 3}, nil, {4.5}, {6, 7}}},
		{"strmat", [][]string{{"x", "y"}, {"x"}, nil, {"y", "y", "z"}}},
		{"mapsf", map[string]float64{"age": 39, "hours": 40.5, "wage": 0}},
		{"gob", migrationRecord{Label: ">50K", Score: 0.87, Tags: []string{"a", "b"}}},
	}
}

// TestGoldenFixtures pins the on-disk binary format: every committed
// fixture must decode to its expected value, and re-encoding the value
// must reproduce the committed bytes exactly. A deliberate format change
// regenerates the fixtures with `go test ./internal/store -run Golden
// -update` — and must bump the version byte if old payloads no longer
// decode.
func TestGoldenFixtures(t *testing.T) {
	dir := filepath.Join("testdata", "codec")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	codec := BinaryCodec{}
	for _, g := range goldenValues() {
		t.Run(g.name, func(t *testing.T) {
			enc, err := codec.Encode(g.value)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, g.name+".bin")
			if *updateGolden {
				if err := os.WriteFile(path, enc, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update to regenerate): %v", err)
			}
			if !bytes.Equal(enc, want) {
				t.Errorf("encoding drifted from committed fixture: got %d bytes %x..., want %d bytes %x...",
					len(enc), enc[:min(16, len(enc))], len(want), want[:min(16, len(want))])
			}
			dec, err := codec.Decode(want)
			if err != nil {
				t.Fatalf("decode fixture: %v", err)
			}
			if !reflect.DeepEqual(dec, g.value) {
				t.Errorf("fixture decoded to %#v, want %#v", dec, g.value)
			}
		})
	}
}

// TestCodecRoundTripEquivalence: both codecs round-trip every fixture
// value, and cross-decoding works both ways — the binary codec reads
// legacy gob artifacts (in-place store migration) and the gob codec
// sniffs binary headers (switching back never strands artifacts).
func TestCodecRoundTripEquivalence(t *testing.T) {
	codecs := []Codec{BinaryCodec{}, GobCodec{}}
	for _, g := range goldenValues() {
		for _, encC := range codecs {
			for _, decC := range codecs {
				enc, err := encC.Encode(g.value)
				if err != nil {
					t.Fatalf("%s: %s encode: %v", g.name, encC.Name(), err)
				}
				dec, err := decC.Decode(enc)
				if err != nil {
					t.Fatalf("%s: %s→%s decode: %v", g.name, encC.Name(), decC.Name(), err)
				}
				if !reflect.DeepEqual(dec, g.value) {
					t.Errorf("%s: %s→%s round trip: got %#v, want %#v",
						g.name, encC.Name(), decC.Name(), dec, g.value)
				}
			}
		}
	}
}

// TestLegacyGobStoreMigrates writes artifacts with a gob-codec store and
// reopens the directory under the default binary codec: every entry must
// load (the decode path sniffs per artifact), and newly materialized
// values land in the new format without any rewrite step.
func TestLegacyGobStoreMigrates(t *testing.T) {
	dir := t.TempDir()
	old, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	old.Codec = GobCodec{}
	want := []float64{1, 2, 3.5}
	if _, err := old.Put("sig-legacy", "legacy", want, 1); err != nil {
		t.Fatal(err)
	}

	migrated, err := Open(dir) // nil Codec → default binary
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := migrated.Get("sig-legacy")
	if err != nil {
		t.Fatalf("binary-codec store failed to load gob artifact: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("migrated artifact = %#v, want %#v", got, want)
	}
	if _, err := migrated.Put("sig-new", "new", want, 2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(migrated.path("sig-new"))
	if err != nil {
		t.Fatal(err)
	}
	if !hasBinaryHeader(data) {
		t.Fatal("new artifact in migrated store lacks the binary header")
	}
}

// TestDecodeCorruptPayloads: corrupt headers and truncated payloads must
// surface as errors — never panics, never silent garbage.
func TestDecodeCorruptPayloads(t *testing.T) {
	codec := BinaryCodec{}
	full, err := codec.Encode([]string{"alpha", "beta", "alpha"})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad-version", func(t *testing.T) {
		bad := append([]byte(nil), full...)
		bad[4] = 0x7f
		if _, err := codec.Decode(bad); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("decode = %v, want unsupported-version error", err)
		}
	})
	t.Run("unknown-tag", func(t *testing.T) {
		bad := append([]byte(nil), full...)
		bad[5] = 0xee
		if _, err := codec.Decode(bad); err == nil || !strings.Contains(err.Error(), "tag") {
			t.Fatalf("decode = %v, want unknown-tag error", err)
		}
	})
	t.Run("not-binary-not-gob", func(t *testing.T) {
		if _, err := codec.Decode([]byte("csv,not,an,artifact\n")); err == nil {
			t.Fatal("decoding junk succeeded")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		// Every proper prefix must fail cleanly (prefixes shorter than the
		// header route to gob, which also errors).
		for n := 0; n < len(full); n++ {
			if _, err := codec.Decode(full[:n]); err == nil {
				t.Fatalf("decoding %d/%d-byte prefix succeeded", n, len(full))
			}
		}
	})
	t.Run("truncated-every-fixture", func(t *testing.T) {
		for _, g := range goldenValues() {
			enc, err := codec.Encode(g.value)
			if err != nil {
				t.Fatal(err)
			}
			// nil encodes to exactly the 6-byte header+tag; any longer
			// payload must reject all proper prefixes past the header.
			for n := 5; n < len(enc); n++ {
				if _, err := codec.Decode(enc[:n]); err == nil {
					t.Fatalf("%s: decoding %d/%d-byte prefix succeeded", g.name, n, len(enc))
				}
			}
		}
	})
	t.Run("corrupt-intern-ref", func(t *testing.T) {
		w := NewWriter()
		buf := append([]byte{}, binaryMagic[:]...)
		buf = append(buf, binaryVersion, tagString)
		w.buf = buf
		w.Uvarint(99) // back-reference into an empty intern table
		if _, err := codec.Decode(w.buf); err == nil || !strings.Contains(err.Error(), "intern") {
			t.Fatalf("decode = %v, want intern-range error", err)
		}
	})
	t.Run("huge-count", func(t *testing.T) {
		// A corrupt length prefix must not drive a giant allocation.
		w := NewWriter()
		buf := append([]byte{}, binaryMagic[:]...)
		buf = append(buf, binaryVersion, tagFloat64s)
		w.buf = buf
		w.Uvarint(1 << 50)
		if _, err := codec.Decode(w.buf); err == nil {
			t.Fatal("decoding a 2^50-element column succeeded")
		}
	})
}

// TestUnknownExtensionErrors: a payload naming an unregistered extension
// is a clean error (e.g. artifacts from a build with extra workload
// types).
func TestUnknownExtensionErrors(t *testing.T) {
	w := NewWriter()
	w.buf = append(w.buf, binaryMagic[:]...)
	w.buf = append(w.buf, binaryVersion, tagExt)
	w.String("no-such-extension")
	_, err := BinaryCodec{}.Decode(w.buf)
	if err == nil || !strings.Contains(err.Error(), "no-such-extension") {
		t.Fatalf("decode = %v, want unknown-extension error", err)
	}
}

// TestInternCompression: repeated strings must cost a 1–2 byte
// back-reference, not a repeated literal — the property the codec's size
// win on categorical columns rests on.
func TestInternCompression(t *testing.T) {
	col := make([]string, 1000)
	for i := range col {
		col[i] = fmt.Sprintf("category-%d", i%4)
	}
	enc, err := BinaryCodec{}.Encode(col)
	if err != nil {
		t.Fatal(err)
	}
	gobEnc, err := GobCodec{}.Encode(col)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc)*4 > len(gobEnc) {
		t.Errorf("interned column is %d B vs gob's %d B; want ≥4× smaller", len(enc), len(gobEnc))
	}
}

func TestTruncatedErrorIsSentinel(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.Uvarint(); !errors.Is(err, errTruncated) {
		t.Fatalf("Uvarint on empty reader = %v, want errTruncated", err)
	}
}
