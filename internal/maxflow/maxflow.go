// Package maxflow implements maximum-flow / minimum-cut computation on
// directed graphs using the Edmonds–Karp algorithm (BFS-based
// Ford–Fulkerson), as used by the HELIX OPT-EXEC-PLAN solver.
//
// The paper (§5.2) reduces the optimal-execution-plan problem to the
// PROJECT SELECTION PROBLEM, which in turn reduces to MAX-FLOW; the
// Edmonds–Karp algorithm gives the O(V·E²) bound cited in the paper.
//
// helixlint (plandeterminism) holds this package to byte-stable output:
// min-cut assignments feed the plan fingerprint, so equal inputs must
// solve identically.
//
//lint:deterministic
package maxflow

import (
	"fmt"
	"math"
)

// Inf is the capacity used for "infinite" edges (prerequisite edges in the
// project-selection reduction). Using a finite sentinel keeps arithmetic
// exact while being larger than any sum of finite capacities in practice.
const Inf = math.MaxFloat64 / 4

// edge is a directed edge in the residual graph. Edges are stored in pairs:
// edge i and edge i^1 are reverses of each other.
type edge struct {
	to  int
	cap float64
}

// Graph is a flow network over nodes 0..N-1. The zero value is not usable;
// construct with New. A Graph can be reused across solves with Reset,
// which retains the edge and adjacency storage — callers that solve one
// network per iteration (the OPT-EXEC-PLAN planner) avoid re-allocating
// the whole residual graph every time.
type Graph struct {
	n     int
	edges []edge // paired: i and i^1 are mutual reverses
	adj   [][]int

	// BFS scratch reused across MaxFlow calls: parent edge ids and the
	// traversal queue. Sized lazily to n.
	parent []int
	queue  []int
}

// New returns an empty flow network with n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("maxflow: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// Reset reinitializes the graph in place to n nodes and no edges, keeping
// previously allocated edge, adjacency, and BFS storage for reuse. After
// Reset the graph is equivalent to New(n) except for capacity retained in
// its internal slices.
func (g *Graph) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("maxflow: negative node count %d", n))
	}
	g.n = n
	g.edges = g.edges[:0]
	if cap(g.adj) < n {
		g.adj = append(g.adj[:cap(g.adj)], make([][]int, n-cap(g.adj))...)
	}
	g.adj = g.adj[:n]
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
}

// NumNodes reports the number of nodes in the network.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and returns its
// edge index (usable with Flow after a MaxFlow call). Capacities must be
// non-negative. Adding an edge also adds a residual reverse edge with zero
// capacity.
func (g *Graph) AddEdge(u, v int, capacity float64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("maxflow: negative capacity %v on edge (%d,%d)", capacity, u, v))
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: v, cap: capacity})
	g.edges = append(g.edges, edge{to: u, cap: 0})
	g.adj[u] = append(g.adj[u], id)
	g.adj[v] = append(g.adj[v], id+1)
	return id
}

// MaxFlow computes the maximum flow from s to t using Edmonds–Karp and
// returns its value. The graph's residual capacities are updated in place;
// call Flow or MinCut afterwards to inspect the result. Calling MaxFlow a
// second time on the same graph continues from the current residual state
// (and therefore returns 0 additional flow for the same s,t).
func (g *Graph) MaxFlow(s, t int) float64 {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		panic(fmt.Sprintf("maxflow: source/sink (%d,%d) out of range [0,%d)", s, t, g.n))
	}
	if s == t {
		return 0
	}
	var total float64
	if cap(g.parent) < g.n {
		g.parent = make([]int, g.n)
	}
	parent := g.parent[:g.n] // edge id used to reach node, -1 if unreached
	for {
		for i := range parent {
			parent[i] = -1
		}
		// BFS for the shortest augmenting path. The queue is consumed via a
		// head index (not re-slicing) so the scratch buffer's full capacity
		// survives for the next call.
		queue := append(g.queue[:0], s)
		parent[s] = -2
		for head := 0; head < len(queue) && parent[t] == -1; head++ {
			u := queue[head]
			for _, id := range g.adj[u] {
				e := g.edges[id]
				if e.cap > 0 && parent[e.to] == -1 {
					parent[e.to] = id
					queue = append(queue, e.to)
				}
			}
		}
		g.queue = queue[:0]
		if parent[t] == -1 {
			return total
		}
		// Find the bottleneck along the path.
		bottleneck := math.Inf(1)
		for v := t; v != s; {
			id := parent[v]
			if g.edges[id].cap < bottleneck {
				bottleneck = g.edges[id].cap
			}
			v = g.edges[id^1].to
		}
		// Augment.
		for v := t; v != s; {
			id := parent[v]
			g.edges[id].cap -= bottleneck
			g.edges[id^1].cap += bottleneck
			v = g.edges[id^1].to
		}
		total += bottleneck
	}
}

// MinCut returns the set of nodes on the source side of a minimum s-t cut.
// It must be called after MaxFlow; it walks the residual graph from s.
// The returned slice is indexed by node: sourceSide[v] is true iff v is
// reachable from s in the residual graph.
func (g *Graph) MinCut(s int) []bool {
	if s < 0 || s >= g.n {
		panic(fmt.Sprintf("maxflow: source %d out of range [0,%d)", s, g.n))
	}
	seen := make([]bool, g.n)
	queue := []int{s}
	seen[s] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.adj[u] {
			e := g.edges[id]
			if e.cap > 0 && !seen[e.to] {
				seen[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}
	return seen
}
