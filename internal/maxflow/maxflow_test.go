package maxflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplePath(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 5)
	if got := g.MaxFlow(0, 1); got != 5 {
		t.Fatalf("MaxFlow = %v, want 5", got)
	}
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 1, 4)
	if got := g.MaxFlow(0, 1); got != 7 {
		t.Fatalf("MaxFlow = %v, want 7", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 10)
	if got := g.MaxFlow(0, 2); got != 0 {
		t.Fatalf("MaxFlow = %v, want 0", got)
	}
}

func TestSourceEqualsSink(t *testing.T) {
	g := New(1)
	if got := g.MaxFlow(0, 0); got != 0 {
		t.Fatalf("MaxFlow(s,s) = %v, want 0", got)
	}
}

// TestClassicNetwork exercises the standard CLRS example network.
func TestClassicNetwork(t *testing.T) {
	// Nodes: s=0, v1=1, v2=2, v3=3, v4=4, t=5. Max flow = 23.
	g := New(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Fatalf("MaxFlow = %v, want 23", got)
	}
}

func TestBottleneck(t *testing.T) {
	// s -> a -> b -> t with capacities 10, 1, 10: flow limited to 1.
	g := New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 10)
	if got := g.MaxFlow(0, 3); got != 1 {
		t.Fatalf("MaxFlow = %v, want 1", got)
	}
}

func TestMinCutSeparatesSourceAndSink(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 3)
	g.AddEdge(1, 3, 4)
	g.AddEdge(2, 3, 1)
	g.MaxFlow(0, 3)
	cut := g.MinCut(0)
	if !cut[0] {
		t.Fatal("source not on source side of cut")
	}
	if cut[3] {
		t.Fatal("sink on source side of cut")
	}
}

func TestInfEdgeNeverCut(t *testing.T) {
	// s --5--> a --Inf--> b --3--> t. The Inf edge must not be in the cut.
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, Inf)
	g.AddEdge(2, 3, 3)
	if got := g.MaxFlow(0, 3); got != 3 {
		t.Fatalf("MaxFlow = %v, want 3", got)
	}
	cut := g.MinCut(0)
	// The Inf edge (1→2) must not cross the cut: if 1 is on the source
	// side then 2 must be as well.
	if cut[1] && !cut[2] {
		t.Fatal("infinite-capacity edge crosses the min cut")
	}
}

func TestAddEdgePanicsOnNegativeCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative capacity")
		}
	}()
	g := New(2)
	g.AddEdge(0, 1, -1)
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	g := New(2)
	g.AddEdge(0, 5, 1)
}

// randomNetwork builds a random DAG-ish flow network with integer
// capacities, returning the graph plus an adjacency-capacity matrix for the
// brute-force checker.
func randomNetwork(rng *rand.Rand, n int) (*Graph, [][]float64) {
	g := New(n)
	capMat := make([][]float64, n)
	for i := range capMat {
		capMat[i] = make([]float64, n)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if rng.Float64() < 0.4 {
				c := float64(rng.Intn(10))
				g.AddEdge(u, v, c)
				capMat[u][v] += c
			}
		}
	}
	return g, capMat
}

// bruteMaxFlow computes max flow via repeated DFS augmentation on a
// capacity matrix — an independent (slower) implementation used as a
// property-test oracle.
func bruteMaxFlow(capMat [][]float64, s, t int) float64 {
	n := len(capMat)
	residual := make([][]float64, n)
	for i := range residual {
		residual[i] = append([]float64(nil), capMat[i]...)
	}
	var total float64
	for {
		// DFS for any augmenting path.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		stack := []int{s}
		for len(stack) > 0 && parent[t] == -1 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v := 0; v < n; v++ {
				if residual[u][v] > 0 && parent[v] == -1 {
					parent[v] = u
					stack = append(stack, v)
				}
			}
		}
		if parent[t] == -1 {
			return total
		}
		bottleneck := math.Inf(1)
		for v := t; v != s; v = parent[v] {
			if residual[parent[v]][v] < bottleneck {
				bottleneck = residual[parent[v]][v]
			}
		}
		for v := t; v != s; v = parent[v] {
			residual[parent[v]][v] -= bottleneck
			residual[v][parent[v]] += bottleneck
		}
		total += bottleneck
	}
}

// TestQuickAgainstBruteForce checks Edmonds–Karp against an independent
// DFS-based implementation on random networks.
func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		g, capMat := randomNetwork(rng, n)
		s, tk := 0, n-1
		got := g.MaxFlow(s, tk)
		want := bruteMaxFlow(capMat, s, tk)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinCutValue checks that the capacity crossing the min cut equals
// the max-flow value (max-flow/min-cut theorem).
func TestQuickMinCutValue(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		g, capMat := randomNetwork(rng, n)
		s, tk := 0, n-1
		flow := g.MaxFlow(s, tk)
		cut := g.MinCut(s)
		if !cut[s] || cut[tk] {
			return false
		}
		var crossing float64
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if cut[u] && !cut[v] {
					crossing += capMat[u][v]
				}
			}
		}
		return math.Abs(crossing-flow) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedMaxFlowIsIdempotent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 4)
	g.AddEdge(1, 2, 4)
	if got := g.MaxFlow(0, 2); got != 4 {
		t.Fatalf("first MaxFlow = %v, want 4", got)
	}
	if got := g.MaxFlow(0, 2); got != 0 {
		t.Fatalf("second MaxFlow = %v, want 0 (saturated residual)", got)
	}
}

// TestResetReusesStorageAndSolvesFresh: a Reset graph must behave exactly
// like a brand-new one — no residual capacities, flows, or adjacency from
// the previous solve may leak into the next.
func TestResetReusesStorageAndSolvesFresh(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 3, 5)
	if got := g.MaxFlow(0, 3); got != 5 {
		t.Fatalf("first solve = %v, want 5", got)
	}

	// Reset to a larger network with a different shape.
	g.Reset(6)
	if g.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d, want 6", g.NumNodes())
	}
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 2, 4)
	g.AddEdge(1, 5, 2)
	g.AddEdge(2, 5, 4)
	if got := g.MaxFlow(0, 5); got != 6 {
		t.Fatalf("post-reset solve = %v, want 6", got)
	}

	// Reset to a smaller network: stale adjacency must be gone.
	g.Reset(2)
	g.AddEdge(0, 1, 7)
	if got := g.MaxFlow(0, 1); got != 7 {
		t.Fatalf("shrunk solve = %v, want 7", got)
	}

	// Same instance solved repeatedly via Reset must be deterministic.
	for i := 0; i < 3; i++ {
		g.Reset(4)
		g.AddEdge(0, 1, 5)
		g.AddEdge(0, 2, 3)
		g.AddEdge(1, 3, 4)
		g.AddEdge(2, 3, 3)
		if got := g.MaxFlow(0, 3); got != 7 {
			t.Fatalf("repeat %d = %v, want 7", i, got)
		}
	}
}
