package plan

import (
	"sync"

	"helix/internal/core"
)

// sharedCacheCapacity bounds the process-wide shared plan cache's MRU
// list. Much larger than the per-session bound: a shared cache serves
// every attached session's workflows, and each entry is small relative to
// the solve it saves.
const sharedCacheCapacity = 64

// SharedCache is the process-wide, fingerprint-keyed plan cache used when
// sessions share a content-addressed store (store.OpenShared). It
// replaces each session's private 4-entry MRU: session B's first Run of a
// workflow session A already planned — same DAG, same configuration, same
// store view — is a full fingerprint hit with zero max-flow solves.
//
// Alongside the plans it keeps a frozen per-signature statistics board.
// Cross-session full hits need byte-identical fingerprints, and the
// fingerprint covers the carried cost statistics that become the solver's
// c_i — so every session must plan from the same numbers. The first
// session to execute a node publishes its measured metrics under the
// node's chain signature (first writer wins, same as the artifact store's
// write-once publish); every later planning pass applies the board over
// its own carried metrics. The trade-off is deliberate: shared mode
// freezes the cost model per signature in exchange for cross-session plan
// determinism.
type SharedCache struct {
	cache *Cache

	mu    sync.Mutex
	stats map[string]core.Metrics // chain signature → frozen measured metrics
}

// NewSharedCache returns an empty shared plan cache. Its inner Cache
// carries no session ConfigToken — each Plan call supplies its own
// (Planner.ConfigToken), so sessions opened under different
// configurations still never reuse each other's decisions.
func NewSharedCache() *SharedCache {
	return &SharedCache{
		cache: &Cache{capacity: sharedCacheCapacity},
		stats: make(map[string]core.Metrics),
	}
}

// Cache returns the inner fingerprint-keyed plan cache to attach to a
// Planner. All its methods are mutex-guarded, so any number of sessions'
// planners may consult it concurrently.
func (sc *SharedCache) Cache() *Cache { return sc.cache }

// Stats reports the inner cache's hit/partial/miss counters.
func (sc *SharedCache) Stats() CacheStats { return sc.cache.Stats() }

// PublishStats records the measured metrics of every Known node in an
// executed DAG under its chain signature. First writer wins: once a
// signature has frozen metrics, later measurements are ignored, so all
// sessions keep planning from identical solver inputs.
func (sc *SharedCache) PublishStats(d *core.DAG) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for _, n := range d.Nodes() {
		if !n.Metrics.Known {
			continue
		}
		sig := n.ChainSignature()
		if _, ok := sc.stats[sig]; !ok {
			sc.stats[sig] = n.Metrics
		}
	}
}

// ApplyStats overwrites the DAG's carried metrics with the frozen board
// wherever a node's chain signature has an entry. Called by the planner
// after CarryMetrics, so a session's privately measured numbers never
// leak into a fingerprint other sessions must reproduce.
func (sc *SharedCache) ApplyStats(d *core.DAG) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for _, n := range d.Nodes() {
		if m, ok := sc.stats[n.ChainSignature()]; ok {
			n.Metrics = m
		}
	}
}
