package plan

import (
	"fmt"
	"slices"
	"sync"

	"helix/internal/core"
)

// CacheOutcome reports how the planner obtained a Plan.
type CacheOutcome int

const (
	// CacheCold means the plan was solved from scratch: no cache was
	// attached, the cache was empty, or the fingerprint mismatched beyond
	// what partial reuse covers (topology or configuration changed).
	CacheCold CacheOutcome = iota
	// CachePartial means the DAG topology matched the cached plan and only
	// the weakly-connected live components containing a changed node were
	// re-solved; every other row — and the ancestor bitset table — was
	// reused.
	CachePartial
	// CacheHit means the full fingerprint matched and the previous plan
	// was reused wholesale: no slicing decision changed, no bitsets were
	// rebuilt, and no max-flow solve ran.
	CacheHit
)

// String returns a short label for benchmark tables and Explain output.
func (o CacheOutcome) String() string {
	switch o {
	case CacheHit:
		return "hit"
	case CachePartial:
		return "partial"
	default:
		return "cold"
	}
}

// CacheStats counts cache consultations by outcome.
type CacheStats struct {
	// Hits counts full-fingerprint reuses: zero max-flow solves.
	Hits int64
	// Partials counts topology matches that re-solved only the dirty
	// components (one restricted solve, or none when no live node was
	// dirty).
	Partials int64
	// Misses counts plans solved entirely from scratch.
	Misses int64
}

// Cache holds recent iterations' fingerprinted plans for incremental
// planning. A Cache belongs to one logical session: its ConfigToken pins
// the execution configuration (policy, budget, parallelism, …) the cached
// plans were built under, so a session opened with different options can
// never reuse another configuration's decisions. The zero value is usable;
// NewCache sets the token. All methods are safe for concurrent use,
// though the planner pipeline around them is not.
//
// The cache retains a small MRU list rather than a single entry so that
// interleaved planning of other workflows — Session.Plan is documented as
// pure inspection — cannot evict the steady-state entry the next Run's
// full hit depends on.
type Cache struct {
	// ConfigToken is an opaque description of every engine-level setting
	// outside the planner's own Options that the owner wants plan reuse
	// conditioned on. It is hashed into the fingerprint: a changed token
	// is a changed fingerprint, forcing a fresh solve.
	ConfigToken string

	// capacity bounds the MRU list; ≤0 selects cacheCapacity. The shared
	// process-wide cache (SharedCache) raises it, since one cache then
	// serves every attached session's workflows.
	capacity int

	mu      sync.Mutex
	entries []*cacheEntry // most recently stored/hit first
	stats   CacheStats
}

// cacheCapacity bounds the MRU list. Four entries cover a main workflow
// plus a few inspected variants between runs; each entry retains one plan
// and one DAG generation, so the bound also caps memory.
const cacheCapacity = 4

// cacheEntry is the retained previous plan plus the raw fingerprint
// inputs needed to localize a mismatch. token records the configuration
// the plan was built under (the Planner's per-call ConfigToken, falling
// back to the Cache's); partial reuse requires an exact token match so a
// run-scoped configuration override can never inherit another
// configuration's decisions.
type cacheEntry struct {
	fp      Fingerprint
	keys    []nodeKey
	parents []int32
	opts    Options
	token   string
	plan    *Plan
}

// NewCache returns an empty plan cache whose fingerprints are bound to
// the given configuration token.
func NewCache(configToken string) *Cache {
	return &Cache{ConfigToken: configToken}
}

// Stats returns a snapshot of the cache's hit/partial/miss counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// hit returns the cached plan rebound onto the current DAG when the full
// fingerprint matches, or nil. A hit performs no solve and no bitset
// construction: rows are copied with their Node pointers remapped
// positionally (the fingerprint covers names and topology, so position i
// is the same operator), and the ancestor table is shared.
func (c *Cache) hit(fp Fingerprint, in *planInputs) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	var e *cacheEntry
	for i, ent := range c.entries {
		if ent.fp == fp {
			e = ent
			// Move to front: this is the live workflow's entry.
			copy(c.entries[1:i+1], c.entries[:i])
			c.entries[0] = e
			break
		}
	}
	if e == nil {
		return nil
	}
	cached := e.plan
	p := &Plan{
		Iteration:        in.iteration,
		Nodes:            make([]*NodePlan, len(in.order)),
		ProjectedSeconds: cached.ProjectedSeconds,
		Counts:           make(map[core.State]int, len(cached.Counts)),
		// The purge decision is derived from the chain-signature set and
		// the originals — both fingerprint-covered — so the cached spec is
		// identical and the hit path skips rebuilding its maps.
		Purge:       cached.Purge,
		Cache:       CacheHit,
		Fingerprint: fp,
		// Fused runs are positional (indices into Nodes), so they survive
		// rebinding unchanged; the fingerprint covers streamable flags and
		// the streaming option bit, so a hit guarantees the same fusion
		// decision. Dropping them here would silently unfuse cache-hit
		// iterations (and strand rows whose FuseGroup points nowhere).
		Fused:     cached.Fused,
		FusedSigs: cached.FusedSigs,
		anc:       cached.anc,
		ancWords:  cached.ancWords,
	}
	for s, n := range cached.Counts {
		p.Counts[s] = n
	}
	rows := make([]NodePlan, len(in.order))
	for i, n := range in.order {
		rows[i] = *cached.Nodes[i]
		rows[i].Node = n
		rows[i].Reused = true
		p.Nodes[i] = &rows[i]
	}
	// Retain the rebound plan so at most one DAG generation per entry
	// stays reachable through the cache.
	e.plan = p
	c.stats.Hits++
	return p
}

// partial checks whether the cached plan's topology and configuration
// match the current inputs and, if so, returns the reusable rows: row i
// is non-nil iff node i's fingerprint key is unchanged AND no node in its
// weakly-connected live component changed. The caller re-solves exactly
// the remaining live nodes. The second and third results are the cached
// ancestor bitset table, shared whenever the topology matched (even if no
// rows were reusable). Returns (nil, nil, 0) when nothing can be reused.
//
// Correctness: the project-selection objective OPT-EXEC-PLAN reduces to
// is separable across weakly-connected components of the live slice —
// prerequisite edges exist only along DAG edges between live nodes, and
// every ancestor of a live node is itself live. A component with no
// changed node therefore has byte-identical solver inputs and no
// constraint linking it to the re-solved remainder: its cached states
// remain exactly optimal. Any change to the live set itself marks every
// live node dirty (a conservative full re-solve on the reused bitsets),
// because component boundaries may have moved.
func (c *Cache) partial(in *planInputs, opts Options, token string, keys []nodeKey, parents []int32) ([]*NodePlan, []uint64, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Most recently used topology/configuration match wins: for the
	// iterative-editing steady state that is the previous iteration of
	// the same workflow.
	var e *cacheEntry
	for _, ent := range c.entries {
		if ent.opts == opts && ent.token == token && len(ent.keys) == len(keys) && slices.Equal(ent.parents, parents) {
			e = ent
			break
		}
	}
	if e == nil {
		return nil, nil, 0
	}

	n := len(keys)
	dirty := make([]bool, n)
	liveChanged := false
	any := false
	for i := range keys {
		if keys[i] != e.keys[i] {
			dirty[i] = true
			any = true
			if keys[i].live != e.keys[i].live {
				liveChanged = true
			}
		}
	}
	if !any {
		// Equal keys with an unequal full fingerprint should be
		// impossible (the fingerprint is derived from the keys, options,
		// and the cache's own constant token); treat it as a miss rather
		// than reuse anything on inconsistent evidence.
		return nil, nil, 0
	}
	if liveChanged {
		for i := range keys {
			dirty[i] = dirty[i] || keys[i].live
		}
	}

	// Union-find over the live slice: live nodes joined by DAG edges
	// share a component; a component containing any dirty live node is
	// re-solved in full.
	uf := newUnionFind(n)
	for i, nd := range in.order {
		if !keys[i].live {
			continue
		}
		for _, par := range nd.Parents() {
			j := in.idx(par)
			if keys[j].live {
				uf.union(i, j)
			}
		}
	}
	dirtyComp := make(map[int]bool)
	for i := range keys {
		if dirty[i] && keys[i].live {
			dirtyComp[uf.find(i)] = true
		}
	}

	reused := make([]*NodePlan, n)
	for i := range keys {
		if dirty[i] {
			continue
		}
		if keys[i].live && dirtyComp[uf.find(i)] {
			continue
		}
		reused[i] = e.plan.Nodes[i]
	}
	return reused, e.plan.anc, e.plan.ancWords
}

// store records the freshly assembled plan as the most recent cache
// entry, ages out the oldest beyond capacity, and tallies the outcome
// that produced it.
func (c *Cache) store(fp Fingerprint, keys []nodeKey, parents []int32, opts Options, token string, p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := &cacheEntry{fp: fp, keys: keys, parents: parents, opts: opts, token: token, plan: p}
	c.entries = append(c.entries, nil)
	copy(c.entries[1:], c.entries)
	c.entries[0] = e
	max := c.capacity
	if max <= 0 {
		max = cacheCapacity
	}
	if len(c.entries) > max {
		c.entries = c.entries[:max]
	}
	if p.Cache == CachePartial {
		c.stats.Partials++
	} else {
		c.stats.Misses++
	}
}

// unionFind is a plain path-halving union-find over dense indices.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(i int) int {
	for uf.parent[i] != i {
		uf.parent[i] = uf.parent[uf.parent[i]]
		i = uf.parent[i]
	}
	return i
}

func (uf *unionFind) union(i, j int) {
	ri, rj := uf.find(i), uf.find(j)
	if ri != rj {
		uf.parent[ri] = rj
	}
}

// String summarizes the stats for logs.
func (s CacheStats) String() string {
	return fmt.Sprintf("hits=%d partials=%d misses=%d", s.Hits, s.Partials, s.Misses)
}
