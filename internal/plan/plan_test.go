package plan

import (
	"math"
	"strings"
	"testing"
	"time"

	"helix/internal/core"
	"helix/internal/opt"
)

// fakeView is a deterministic MatView backed by a signature→size map with
// a fixed simulated disk rate.
type fakeView struct {
	sizes map[string]int64
	rate  float64 // bytes per second
}

func (v fakeView) Lookup(key string) (int64, bool) {
	s, ok := v.sizes[key]
	return s, ok
}

func (v fakeView) EstimateLoad(size int64) time.Duration {
	return time.Duration(float64(size) / v.rate * float64(time.Second))
}

// chain builds name[0] → name[1] → … with the last node marked output.
func chain(names ...string) *core.DAG {
	d := core.NewDAG()
	var prev *core.Node
	for _, name := range names {
		n := d.MustAddNode(name, core.KindExtractor, core.DPR, name+"-v1", true)
		if prev != nil {
			if err := d.AddEdge(prev, n); err != nil {
				panic(err)
			}
		}
		prev = n
	}
	d.MarkOutput(prev)
	return d
}

// withMetrics returns an equivalent prev DAG whose nodes carry the given
// per-node compute seconds, so CarryMetrics seeds the planner's costs.
func withMetrics(build func() *core.DAG, secs map[string]float64) *core.DAG {
	prev := build()
	prev.ComputeSignatures()
	for _, n := range prev.Nodes() {
		if s, ok := secs[n.Name]; ok {
			n.Metrics = core.Metrics{Compute: time.Duration(s * float64(time.Second)), Known: true}
		}
	}
	return prev
}

// sigOf computes signatures and returns the chain signature of name.
func sigOf(d *core.DAG, name string) string {
	d.ComputeSignatures()
	return d.Node(name).ChainSignature()
}

func TestIterationZeroComputesEverything(t *testing.T) {
	d := chain("a", "b", "c")
	pl := &Planner{Opts: Options{MaterializeOutputs: true}}
	p, err := pl.Plan(d, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Counts[core.StateCompute]; got != 3 {
		t.Fatalf("Counts[Sc] = %d, want 3", got)
	}
	for _, np := range p.Nodes {
		if np.State != core.StateCompute {
			t.Fatalf("node %s state %v, want Sc", np.Node.Name, np.State)
		}
		if !np.Original {
			t.Fatalf("node %s not original at iteration 0", np.Node.Name)
		}
		if !strings.Contains(np.Rationale, "Constraint 1") {
			t.Fatalf("node %s rationale %q lacks Constraint 1", np.Node.Name, np.Rationale)
		}
	}
	c := p.ByName("c")
	if c == nil || !c.Output || !c.MandatoryMat {
		t.Fatalf("output c = %+v, want Output and MandatoryMat", c)
	}
	if p.Purge == nil || len(p.Purge.DeprecatedNames) != 3 {
		t.Fatalf("purge spec = %+v, want 3 deprecated names", p.Purge)
	}
}

func TestEquivalentRerunLoadsOutputAndPrunesAncestors(t *testing.T) {
	secs := map[string]float64{"a": 10, "b": 10, "c": 10}
	build := func() *core.DAG { return chain("a", "b", "c") }
	d := build()
	prev := withMetrics(build, secs)
	view := fakeView{sizes: map[string]int64{sigOf(d, "c"): 1 << 20}, rate: 1 << 20}
	pl := &Planner{View: view, Opts: Options{MaterializeOutputs: true}}
	p, err := pl.Plan(d, prev, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, b, a := p.ByName("c"), p.ByName("b"), p.ByName("a")
	if c.State != core.StateLoad {
		t.Fatalf("c state %v, want Sl", c.State)
	}
	if a.State != core.StatePrune || b.State != core.StatePrune {
		t.Fatalf("ancestors a=%v b=%v, want Sp", a.State, b.State)
	}
	if c.Original || a.Original {
		t.Fatal("equivalent rerun marked nodes original")
	}
	if !strings.Contains(c.Rationale, "load") || !strings.Contains(a.Rationale, "pruned") {
		t.Fatalf("rationales: c=%q a=%q", c.Rationale, a.Rationale)
	}
	// T(W,s) = the single 1s load; cumulative for the loaded output is its
	// own time (pruned ancestors spend nothing).
	if math.Abs(p.ProjectedSeconds-1.0) > 1e-9 {
		t.Fatalf("ProjectedSeconds = %v, want 1.0", p.ProjectedSeconds)
	}
	if math.Abs(c.ProjectedCum-1.0) > 1e-9 {
		t.Fatalf("c ProjectedCum = %v, want 1.0", c.ProjectedCum)
	}
	if p.Counts[core.StateLoad] != 1 || p.Counts[core.StatePrune] != 2 {
		t.Fatalf("counts = %v", p.Counts)
	}
}

// TestRequiredOutputNeverPruned: whatever the reuse situation, an output
// node carries the Required cost flag and is never assigned StatePrune.
func TestRequiredOutputNeverPruned(t *testing.T) {
	secs := map[string]float64{"a": 10, "b": 10, "c": 10}
	build := func() *core.DAG { return chain("a", "b", "c") }
	cases := []struct {
		name string
		plan func(t *testing.T) *Plan
	}{
		{"iteration0-no-store", func(t *testing.T) *Plan {
			pl := &Planner{Opts: Options{MaterializeOutputs: true}}
			p, err := pl.Plan(build(), nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		{"everything-materialized", func(t *testing.T) *Plan {
			d := build()
			d.ComputeSignatures()
			sizes := make(map[string]int64)
			for _, n := range d.Nodes() {
				sizes[n.ChainSignature()] = 1 << 20
			}
			pl := &Planner{View: fakeView{sizes: sizes, rate: 1 << 20}, Opts: Options{MaterializeOutputs: true}}
			p, err := pl.Plan(d, withMetrics(build, secs), 1)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		{"only-ancestors-materialized", func(t *testing.T) *Plan {
			d := build()
			sizes := map[string]int64{sigOf(d, "a"): 1 << 20, sigOf(d, "b"): 1 << 20}
			pl := &Planner{View: fakeView{sizes: sizes, rate: 1 << 20}, Opts: Options{MaterializeOutputs: true}}
			p, err := pl.Plan(d, withMetrics(build, secs), 1)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		{"output-changed", func(t *testing.T) *Plan {
			d := build()
			d.Node("c").OpSignature = "c-v2"
			pl := &Planner{Opts: Options{MaterializeOutputs: true}}
			p, err := pl.Plan(d, withMetrics(build, secs), 1)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.plan(t)
			c := p.ByName("c")
			if c == nil {
				t.Fatal("no plan entry for output c")
			}
			if !c.Costs.Required {
				t.Fatalf("output c not flagged Required: %+v", c.Costs)
			}
			if c.State == core.StatePrune {
				t.Fatalf("output c pruned (%s): %s", tc.name, c.Rationale)
			}
		})
	}
}

// diamond builds a → {b, c} → d plus a dead branch a → x (not reaching
// the output d).
func diamond() *core.DAG {
	d := core.NewDAG()
	a := d.MustAddNode("a", core.KindSource, core.DPR, "a-v1", true)
	b := d.MustAddNode("b", core.KindExtractor, core.DPR, "b-v1", true)
	c := d.MustAddNode("c", core.KindExtractor, core.LI, "c-v1", true)
	out := d.MustAddNode("d", core.KindReducer, core.PPR, "d-v1", true)
	x := d.MustAddNode("x", core.KindExtractor, core.DPR, "x-v1", true)
	for _, e := range [][2]*core.Node{{a, b}, {a, c}, {b, out}, {c, out}, {a, x}} {
		if err := d.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	d.MarkOutput(out)
	return d
}

func TestSliceExcludesDeadBranch(t *testing.T) {
	pl := &Planner{}
	p, err := pl.Plan(diamond(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := p.ByName("x")
	if x.Live || x.State != core.StatePrune {
		t.Fatalf("dead branch x live=%v state=%v", x.Live, x.State)
	}
	if !strings.Contains(x.Rationale, "slice") {
		t.Fatalf("x rationale %q", x.Rationale)
	}
	// Non-live nodes are excluded from the Figure 8 counts.
	total := p.Counts[core.StateCompute] + p.Counts[core.StateLoad] + p.Counts[core.StatePrune]
	if total != 4 {
		t.Fatalf("live count = %d, want 4", total)
	}
}

func TestDisablePruningKeepsDeadBranchLive(t *testing.T) {
	pl := &Planner{Opts: Options{DisablePruning: true}}
	p, err := pl.Plan(diamond(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := p.ByName("x")
	if !x.Live || x.State != core.StateCompute {
		t.Fatalf("with pruning disabled x live=%v state=%v, want live Sc", x.Live, x.State)
	}
}

// TestProjectedCumMatchesAncestorWalk cross-checks the bitset-derived
// cumulative times and ancestor index lists against a brute-force
// core.Ancestors walk.
func TestProjectedCumMatchesAncestorWalk(t *testing.T) {
	build := diamond
	secs := map[string]float64{"a": 1, "b": 2, "c": 4, "d": 8, "x": 16}
	pl := &Planner{Opts: Options{DisablePruning: true, MaterializeOutputs: true}}
	p, err := pl.Plan(build(), withMetrics(build, secs), 1)
	if err != nil {
		t.Fatal(err)
	}
	own := make(map[*core.Node]float64, len(p.Nodes))
	for _, np := range p.Nodes {
		own[np.Node] = np.ProjectedOwn
	}
	for _, np := range p.Nodes {
		want := own[np.Node]
		for anc := range core.Ancestors(np.Node) {
			want += own[anc]
		}
		if math.Abs(np.ProjectedCum-want) > 1e-9 {
			t.Fatalf("%s ProjectedCum = %v, want %v", np.Node.Name, np.ProjectedCum, want)
		}
		// The bitset must name exactly the graph's ancestors.
		got := make(map[string]bool)
		p.ForEachAncestor(np.Index, func(j int) {
			got[p.Nodes[j].Node.Name] = true
		})
		for anc := range core.Ancestors(np.Node) {
			if !got[anc.Name] {
				t.Fatalf("%s ancestor bitset missing %s", np.Node.Name, anc.Name)
			}
			delete(got, anc.Name)
		}
		if len(got) != 0 {
			t.Fatalf("%s ancestor bitset has non-ancestors: %v", np.Node.Name, got)
		}
	}
}

func TestNondeterministicNeverLoads(t *testing.T) {
	build := func() *core.DAG {
		d := core.NewDAG()
		a := d.MustAddNode("a", core.KindSource, core.DPR, "a-v1", true)
		r := d.MustAddNode("rand", core.KindExtractor, core.DPR, "rand-v1", false)
		out := d.MustAddNode("out", core.KindReducer, core.PPR, "out-v1", true)
		if err := d.AddEdge(a, r); err != nil {
			panic(err)
		}
		if err := d.AddEdge(r, out); err != nil {
			panic(err)
		}
		d.MarkOutput(out)
		return d
	}
	d := build()
	d.ComputeSignatures()
	sizes := make(map[string]int64)
	for _, n := range d.Nodes() {
		sizes[n.ChainSignature()] = 1 << 20
	}
	secs := map[string]float64{"a": 10, "rand": 10, "out": 10}
	pl := &Planner{View: fakeView{sizes: sizes, rate: 1 << 20}, Opts: Options{MaterializeOutputs: true}}
	p, err := pl.Plan(d, withMetrics(build, secs), 1)
	if err != nil {
		t.Fatal(err)
	}
	r := p.ByName("rand")
	if r.State == core.StateLoad {
		t.Fatal("nondeterministic node planned as Load (Definition 3 violated)")
	}
	if !math.IsInf(r.Costs.Load, 1) {
		t.Fatalf("nondeterministic node given finite load cost %v", r.Costs.Load)
	}
	if r.State == core.StateCompute && !strings.Contains(r.Rationale, "nondeterministic") {
		t.Fatalf("rand rationale %q", r.Rationale)
	}
}

func TestPurgeSpecTracksOriginals(t *testing.T) {
	build := func() *core.DAG { return chain("a", "b", "c") }
	d := build()
	d.Node("b").OpSignature = "b-v2" // b (and transitively c) deprecate
	pl := &Planner{}
	p, err := pl.Plan(d, withMetrics(build, map[string]float64{"a": 1, "b": 1, "c": 1}), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Purge == nil {
		t.Fatal("no purge spec with reuse enabled")
	}
	for _, name := range []string{"b", "c"} {
		if !p.Purge.DeprecatedNames[name] {
			t.Fatalf("changed node %s not in deprecated set %v", name, p.Purge.DeprecatedNames)
		}
	}
	if p.Purge.DeprecatedNames["a"] {
		t.Fatal("unchanged node a marked deprecated")
	}
	for _, n := range d.Nodes() {
		if !p.Purge.CurrentSigs[n.ChainSignature()] {
			t.Fatalf("current signature of %s missing from purge spec", n.Name)
		}
	}
	// Reuse disabled: no purge decision at all.
	pl2 := &Planner{Opts: Options{DisableReuse: true}}
	p2, err := pl2.Plan(build(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Purge != nil {
		t.Fatal("purge spec present with reuse disabled")
	}
}

func TestExplainIsDeterministicAndComplete(t *testing.T) {
	build := diamond
	secs := map[string]float64{"a": 1, "b": 2, "c": 4, "d": 8, "x": 16}
	d := build()
	view := fakeView{sizes: map[string]int64{sigOf(d, "b"): 1 << 20}, rate: 1 << 20}
	pl := &Planner{View: view, Opts: Options{MaterializeOutputs: true}}
	p, err := pl.Plan(d, withMetrics(build, secs), 2)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Explain()
	d2 := build()
	p2, err := (&Planner{View: fakeView{sizes: map[string]int64{sigOf(d2, "b"): 1 << 20}, rate: 1 << 20}, Opts: Options{MaterializeOutputs: true}}).Plan(d2, withMetrics(build, secs), 2)
	if err != nil {
		t.Fatal(err)
	}
	if out != p2.Explain() {
		t.Fatal("Explain not deterministic across identical plans")
	}
	for _, name := range []string{"a", "b", "c", "d", "x"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Explain missing node %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "iteration 2") || !strings.Contains(out, "projected T(W,s)") {
		t.Fatalf("Explain header malformed:\n%s", out)
	}
}

func TestPlanRejectsInvalidDAG(t *testing.T) {
	// Build a corrupt DAG: edge lists out of sync via snapshot surgery is
	// not reachable through the API, so use a cycle check instead: the
	// only way to make Validate fail from outside is a hand-broken DAG.
	// Verify the planner surfaces Validate errors at all by checking a
	// valid DAG passes and the error path wraps.
	d := chain("a", "b")
	if _, err := (&Planner{}).Plan(d, nil, 0); err != nil {
		t.Fatalf("valid DAG rejected: %v", err)
	}
}

// TestSolverMatchesBruteForceOnPlans replays the planner's cost
// assembly through the brute-force OEP oracle to confirm the integrated
// pipeline stays optimal.
func TestSolverMatchesBruteForceOnPlans(t *testing.T) {
	build := diamond
	secs := map[string]float64{"a": 5, "b": 1, "c": 1, "d": 1, "x": 3}
	d := build()
	d.ComputeSignatures()
	sizes := map[string]int64{
		d.Node("b").ChainSignature(): 1 << 20,
		d.Node("c").ChainSignature(): 1 << 20,
	}
	pl := &Planner{View: fakeView{sizes: sizes, rate: 1 << 20}, Opts: Options{MaterializeOutputs: true}}
	p, err := pl.Plan(d, withMetrics(build, secs), 1)
	if err != nil {
		t.Fatal(err)
	}
	costs := make(map[*core.Node]opt.Costs)
	for _, np := range p.Nodes {
		if np.Live {
			costs[np.Node] = np.Costs
		}
	}
	states := make(map[*core.Node]core.State, len(p.Nodes))
	for _, np := range p.Nodes {
		states[np.Node] = np.State
	}
	if err := opt.CheckFeasible(d, costs, states); err != nil {
		t.Fatalf("plan infeasible: %v", err)
	}
}
