package plan

import (
	"strings"
	"testing"
	"time"

	"helix/internal/core"
	"helix/internal/opt"
)

// nodeRow projects a NodePlan onto its decision-relevant fields, so plans
// from different DAG instances (different Node pointers) can be compared
// for equivalence.
type nodeRow struct {
	name         string
	state        core.State
	live         bool
	original     bool
	output       bool
	mandatoryMat bool
	costs        opt.Costs
	own          float64
	cum          float64
	tail         float64
	rationale    string
}

func rowsOf(p *Plan) []nodeRow {
	rows := make([]nodeRow, len(p.Nodes))
	for i, np := range p.Nodes {
		rows[i] = nodeRow{
			name:         np.Node.Name,
			state:        np.State,
			live:         np.Live,
			original:     np.Original,
			output:       np.Output,
			mandatoryMat: np.MandatoryMat,
			costs:        np.Costs,
			own:          np.ProjectedOwn,
			cum:          np.ProjectedCum,
			tail:         np.ProjectedTail,
			rationale:    np.Rationale,
		}
	}
	return rows
}

// assertEquivalent fails unless the two plans agree on every decision and
// projection (cache provenance aside).
func assertEquivalent(t *testing.T, got, want *Plan) {
	t.Helper()
	gr, wr := rowsOf(got), rowsOf(want)
	if len(gr) != len(wr) {
		t.Fatalf("plan has %d rows, want %d", len(gr), len(wr))
	}
	for i := range gr {
		if gr[i] != wr[i] {
			t.Fatalf("row %d differs:\n got %+v\nwant %+v", i, gr[i], wr[i])
		}
	}
	if got.ProjectedSeconds != want.ProjectedSeconds {
		t.Fatalf("ProjectedSeconds %v, want %v", got.ProjectedSeconds, want.ProjectedSeconds)
	}
	for s, n := range want.Counts {
		if got.Counts[s] != n {
			t.Fatalf("Counts[%v] = %d, want %d", s, got.Counts[s], n)
		}
	}
	if (got.Purge == nil) != (want.Purge == nil) {
		t.Fatalf("purge presence %v, want %v", got.Purge != nil, want.Purge != nil)
	}
	if got.Purge != nil {
		if len(got.Purge.CurrentSigs) != len(want.Purge.CurrentSigs) ||
			len(got.Purge.DeprecatedNames) != len(want.Purge.DeprecatedNames) {
			t.Fatalf("purge spec differs: got %d/%d entries, want %d/%d",
				len(got.Purge.CurrentSigs), len(got.Purge.DeprecatedNames),
				len(want.Purge.CurrentSigs), len(want.Purge.DeprecatedNames))
		}
	}
}

// twoChains builds two independent chains a0→a1→a2 and b0→b1→b2, each
// ending in an output — two weakly-connected components in one DAG.
func twoChains() *core.DAG {
	d := core.NewDAG()
	var prev *core.Node
	for _, name := range []string{"a0", "a1", "a2"} {
		n := d.MustAddNode(name, core.KindExtractor, core.DPR, name+"-v1", true)
		if prev != nil {
			if err := d.AddEdge(prev, n); err != nil {
				panic(err)
			}
		}
		prev = n
	}
	d.MarkOutput(prev)
	prev = nil
	for _, name := range []string{"b0", "b1", "b2"} {
		n := d.MustAddNode(name, core.KindExtractor, core.DPR, name+"-v1", true)
		if prev != nil {
			if err := d.AddEdge(prev, n); err != nil {
				panic(err)
			}
		}
		prev = n
	}
	d.MarkOutput(prev)
	return d
}

// TestCacheFullHitEquivalence: planning byte-identical inputs twice must
// produce a CacheHit whose plan deep-equals the fresh solve, with zero
// additional max-flow solves.
func TestCacheFullHitEquivalence(t *testing.T) {
	secs := map[string]float64{"a": 3, "b": 2, "c": 4}
	build := func() *core.DAG { return chain("a", "b", "c") }
	view := fakeView{sizes: map[string]int64{sigOf(build(), "b"): 1 << 20}, rate: 1 << 20}
	prev := withMetrics(build, secs)

	pl := &Planner{View: view, Opts: Options{MaterializeOutputs: true}, Cache: NewCache("test")}
	d1 := build()
	cold, err := pl.Plan(d1, prev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache != CacheCold {
		t.Fatalf("first plan outcome %v, want cold", cold.Cache)
	}

	before := opt.SolveCount()
	d2 := build()
	hit, err := pl.Plan(d2, prev, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.SolveCount() - before; got != 0 {
		t.Fatalf("cache hit performed %d max-flow solves, want 0", got)
	}
	if hit.Cache != CacheHit {
		t.Fatalf("second plan outcome %v, want hit", hit.Cache)
	}
	if hit.Iteration != 2 {
		t.Fatalf("hit iteration %d, want 2", hit.Iteration)
	}
	if hit.Fingerprint != cold.Fingerprint {
		t.Fatal("hit fingerprint differs from the plan it reused")
	}
	for _, np := range hit.Nodes {
		if !np.Reused {
			t.Fatalf("hit row %s not marked Reused", np.Node.Name)
		}
		if np.Node != d2.Node(np.Node.Name) {
			t.Fatalf("hit row %s still points at the old DAG", np.Node.Name)
		}
	}
	assertEquivalent(t, hit, cold)
	if st := pl.Cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}

	// The hit must also match what a cache-less planner derives from the
	// same inputs — reuse may never drift from a fresh solve.
	fresh, err := (&Planner{View: view, Opts: Options{MaterializeOutputs: true}}).Plan(build(), prev, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, hit, fresh)
}

// TestCachePartialReusesCleanComponent: editing one chain of a
// two-component DAG re-solves only that component; the untouched
// component's rows are reused verbatim and the overall plan still equals
// a fresh solve.
func TestCachePartialReusesCleanComponent(t *testing.T) {
	secs := map[string]float64{"a0": 1, "a1": 1, "a2": 1, "b0": 1, "b1": 1, "b2": 1}
	mkPrev := func() *core.DAG {
		prev := twoChains()
		prev.ComputeSignatures()
		for _, n := range prev.Nodes() {
			n.Metrics = core.Metrics{Compute: time.Duration(secs[n.Name] * float64(time.Second)), Known: true}
		}
		return prev
	}
	view := fakeView{sizes: map[string]int64{
		sigOf(twoChains(), "a2"): 1 << 20,
		sigOf(twoChains(), "b2"): 1 << 20,
	}, rate: 10 << 20}

	pl := &Planner{View: view, Opts: Options{MaterializeOutputs: true}, Cache: NewCache("test")}
	prev := mkPrev()
	if _, err := pl.Plan(twoChains(), prev, 1); err != nil {
		t.Fatal(err)
	}

	// Edit chain b's middle operator: chain a is untouched.
	edit := func() *core.DAG {
		d := twoChains()
		d.Node("b1").OpSignature += "|edited"
		return d
	}
	before := opt.SolveCount()
	partial, err := pl.Plan(edit(), prev, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.SolveCount() - before; got != 1 {
		t.Fatalf("partial hit performed %d solves, want exactly 1 (the dirty component)", got)
	}
	if partial.Cache != CachePartial {
		t.Fatalf("outcome %v, want partial", partial.Cache)
	}
	for _, name := range []string{"a0", "a1", "a2"} {
		np := partial.ByName(name)
		if !np.Reused {
			t.Fatalf("clean-component row %s not reused", name)
		}
	}
	for _, name := range []string{"b0", "b1", "b2"} {
		np := partial.ByName(name)
		if np.Reused {
			t.Fatalf("dirty-component row %s wrongly reused", name)
		}
	}
	if np := partial.ByName("b1"); !np.Original || np.State != core.StateCompute {
		t.Fatalf("edited b1 = %+v, want original compute", np)
	}

	fresh, err := (&Planner{View: view, Opts: Options{MaterializeOutputs: true}}).Plan(edit(), prev, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, partial, fresh)
}

// TestCachePartialDeadBranchEditSkipsSolve: an edit confined to a
// sliced-away branch dirties only non-live rows, so the partial path
// needs no solve at all — and the result still matches a fresh solve.
func TestCachePartialDeadBranchEditSkipsSolve(t *testing.T) {
	build := func() *core.DAG {
		d := chain("a", "b", "c")
		dead := d.MustAddNode("dead", core.KindReducer, core.PPR, "dead-v1", true)
		if err := d.AddEdge(d.Node("b"), dead); err != nil {
			panic(err)
		}
		return d
	}
	pl := &Planner{Opts: Options{MaterializeOutputs: true}, Cache: NewCache("test")}
	if _, err := pl.Plan(build(), nil, 0); err != nil {
		t.Fatal(err)
	}

	edit := func() *core.DAG {
		d := build()
		d.Node("dead").OpSignature += "|edited"
		return d
	}
	before := opt.SolveCount()
	p, err := pl.Plan(edit(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.SolveCount() - before; got != 0 {
		t.Fatalf("dead-branch edit performed %d solves, want 0", got)
	}
	if p.Cache != CachePartial {
		t.Fatalf("outcome %v, want partial", p.Cache)
	}
	if np := p.ByName("dead"); np.Reused || np.State != core.StatePrune {
		t.Fatalf("dead = %+v, want fresh pruned row", np)
	}
	fresh, err := (&Planner{Opts: Options{MaterializeOutputs: true}}).Plan(edit(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, p, fresh)
}

// TestCacheInvalidation: every class of planning-input change must
// prevent wholesale reuse and yield exactly what a fresh solve yields.
func TestCacheInvalidation(t *testing.T) {
	secs := map[string]float64{"a": 3, "b": 2, "c": 4}
	build := func() *core.DAG { return chain("a", "b", "c") }
	baseView := func() fakeView {
		return fakeView{sizes: map[string]int64{sigOf(build(), "b"): 1 << 20}, rate: 1 << 20}
	}
	prev := withMetrics(build, secs)
	opts := Options{MaterializeOutputs: true}

	cases := []struct {
		name string
		// mutate returns the planner (reconfigured as needed) and the DAG
		// for the second plan call.
		mutate func(pl *Planner) *core.DAG
	}{
		{"op-signature edit", func(pl *Planner) *core.DAG {
			d := build()
			d.Node("b").OpSignature += "|v2"
			return d
		}},
		{"store eviction", func(pl *Planner) *core.DAG {
			pl.View = fakeView{sizes: map[string]int64{}, rate: 1 << 20}
			return build()
		}},
		{"store size change", func(pl *Planner) *core.DAG {
			pl.View = fakeView{sizes: map[string]int64{sigOf(build(), "b"): 8 << 20}, rate: 1 << 20}
			return build()
		}},
		{"options change", func(pl *Planner) *core.DAG {
			pl.Opts.DisableReuse = true
			return build()
		}},
		{"config token change", func(pl *Planner) *core.DAG {
			pl.Cache.ConfigToken = "parallelism=8"
			return build()
		}},
		{"topology change", func(pl *Planner) *core.DAG {
			return chain("a", "b", "c", "d")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pl := &Planner{View: baseView(), Opts: opts, Cache: NewCache("base")}
			if _, err := pl.Plan(build(), prev, 1); err != nil {
				t.Fatal(err)
			}
			d := tc.mutate(pl)
			p, err := pl.Plan(d, prev, 2)
			if err != nil {
				t.Fatal(err)
			}
			if p.Cache == CacheHit {
				t.Fatalf("%s still produced a full cache hit", tc.name)
			}
			// Replanning the same DAG with a cache-less planner is safe:
			// the pipeline's mutations (signatures, carried metrics) are
			// idempotent for identical inputs.
			fresh, err := (&Planner{View: pl.View, Opts: pl.Opts}).Plan(d, prev, 2)
			if err != nil {
				t.Fatal(err)
			}
			assertEquivalent(t, p, fresh)
		})
	}
}

// TestCacheLivenessChangeForcesFullResolve: removing an output changes
// the live slice; the partial path must not keep any live row cached on
// stale component boundaries.
func TestCacheLivenessChangeForcesFullResolve(t *testing.T) {
	// a→b→c with both b and c outputs; dropping c's output mark shrinks
	// the slice.
	build := func(markC bool) *core.DAG {
		d := chain("a", "b", "c")
		d.MarkOutput(d.Node("b"))
		if !markC {
			// chain() marked c; rebuild without it.
			d2 := core.NewDAG()
			var prevN *core.Node
			for _, name := range []string{"a", "b", "c"} {
				n := d2.MustAddNode(name, core.KindExtractor, core.DPR, name+"-v1", true)
				if prevN != nil {
					if err := d2.AddEdge(prevN, n); err != nil {
						panic(err)
					}
				}
				prevN = n
			}
			d2.MarkOutput(d2.Node("b"))
			return d2
		}
		return d
	}
	secs := map[string]float64{"a": 1, "b": 1, "c": 1}
	prev := withMetrics(func() *core.DAG { return build(true) }, secs)
	pl := &Planner{Opts: Options{MaterializeOutputs: true}, Cache: NewCache("t")}
	if _, err := pl.Plan(build(true), prev, 1); err != nil {
		t.Fatal(err)
	}
	p, err := pl.Plan(build(false), prev, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cache == CacheHit {
		t.Fatal("liveness change produced a full hit")
	}
	fresh, err := (&Planner{Opts: Options{MaterializeOutputs: true}}).Plan(build(false), prev, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, p, fresh)
	if np := p.ByName("c"); np.Live || np.State != core.StatePrune {
		t.Fatalf("c = %+v, want non-live pruned", np)
	}
}

// TestCacheHitSummaryAndExplainMarkReuse: Explain output must make reuse
// visible per decision and in the summary.
func TestCacheHitSummaryAndExplainMarkReuse(t *testing.T) {
	pl := &Planner{Opts: Options{MaterializeOutputs: true}, Cache: NewCache("t")}
	if _, err := pl.Plan(chain("a", "b"), nil, 0); err != nil {
		t.Fatal(err)
	}
	p, err := pl.Plan(chain("a", "b"), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cache != CacheHit {
		t.Fatalf("outcome %v, want hit", p.Cache)
	}
	out := p.Explain()
	for _, want := range []string{"plan cache hit", "[reused]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain output missing %q:\n%s", want, out)
		}
	}
}
