package plan

import (
	"fmt"
	"math"
	"strings"
	"unicode/utf8"

	"helix/internal/core"
)

// Summary returns a one-line digest of the plan: node counts per state,
// slice size, the projected run time of Equation 1, and — when the plan
// cache contributed — how much of the plan was reused instead of solved.
func (p *Plan) Summary() string {
	total := len(p.Nodes)
	liveCount := p.Counts[core.StateCompute] + p.Counts[core.StateLoad] + p.Counts[core.StatePrune]
	s := fmt.Sprintf(
		"execution plan — iteration %d: %d nodes, %d live (%d Sc, %d Sl, %d Sp), %d sliced away; projected T(W,s) = %.3fs",
		p.Iteration, total, liveCount,
		p.Counts[core.StateCompute], p.Counts[core.StateLoad], p.Counts[core.StatePrune],
		total-liveCount, p.ProjectedSeconds)
	switch p.Cache {
	case CacheHit:
		s += fmt.Sprintf("; plan cache hit [%s]: all %d decisions reused, no solve", p.Fingerprint, total)
	case CachePartial:
		s += fmt.Sprintf("; plan cache partial [%s]: %d/%d decisions reused, dirty slice re-solved", p.Fingerprint, p.Reuses(), total)
	}
	if len(p.Fused) > 0 {
		fusedNodes := 0
		for _, g := range p.Fused {
			fusedNodes += len(g)
		}
		s += fmt.Sprintf("; %d fused run(s) covering %d nodes", len(p.Fused), fusedNodes)
	}
	return s
}

// Explain renders the plan as a per-node decision table in topological
// order: component, assigned state, originality, mandatory-materialization
// marker, the costs the solver weighed (c_i, l_i), the projected
// cumulative time C(n), and the rationale for the decision. The output is
// deterministic for a given plan, so it can be golden-file tested.
func (p *Plan) Explain() string {
	var b strings.Builder
	b.WriteString(p.Summary())
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-22s %-4s %-5s %-4s %-4s %9s %9s %9s  %s\n",
		"node", "comp", "state", "orig", "mat", "c(s)", "l(s)", "C(n)", "why")
	for _, np := range p.Nodes {
		orig := "-"
		if np.Original {
			orig = "yes"
		}
		mat := "-"
		if np.MandatoryMat {
			mat = "out"
		}
		why := np.Rationale
		// Mark decisions the plan cache carried over from the previous
		// iteration's solve, so -explain distinguishes a reused row from
		// a freshly derived one.
		if np.Reused {
			why += " [reused]"
		}
		// Mark fused-run membership: the group index plus the member's
		// role — interiors stream row-by-row and never build a value, the
		// tail builds the run's single output. The merged signature's
		// prefix ties the table to Plan.FusedSigs.
		if np.FuseGroup >= 0 {
			role := "interior"
			g := p.Fused[np.FuseGroup]
			if np.Index == g[0] {
				role = "head"
			}
			if np.Index == g[len(g)-1] {
				role = "tail"
			}
			why += fmt.Sprintf(" [fused #%d %s %s]", np.FuseGroup, role, p.FusedSigs[np.FuseGroup][:8])
		}
		fmt.Fprintf(&b, "%-22s %-4s %-5s %-4s %-4s %s %s %s  %s\n",
			np.Node.Name, np.Node.Component, np.State, orig, mat,
			fmtSecs(np.Costs.Compute), fmtSecs(np.Costs.Load), fmtSecs(np.ProjectedCum),
			why)
	}
	return b.String()
}

// fmtSecs renders a seconds value for the decision table, right-aligned
// to 9 display columns. Infinite load costs (no equivalent
// materialization) print as ∞ — padded by rune count, since %9s pads by
// bytes and would leave the multi-byte ∞ cell two columns narrow.
func fmtSecs(s float64) string {
	v := fmt.Sprintf("%.3f", s)
	if math.IsInf(s, 1) {
		v = "∞"
	}
	if pad := 9 - utf8.RuneCountInString(v); pad > 0 {
		v = strings.Repeat(" ", pad) + v
	}
	return v
}
