// Package plan extracts HELIX's planning pipeline — change tracking
// (paper §4.2), program slicing (§5.4), and the MAX-FLOW reduction of
// OPT-EXEC-PLAN (§5.2) — into a self-contained, inspectable artifact.
//
// A Planner takes the current workflow DAG, the previous iteration's DAG,
// and a read-only view of the materialization store, and produces a Plan:
// per-node execution states with costs, originality, liveness, a
// per-decision rationale (why Load vs Compute vs Prune), precomputed
// ancestor sets and cumulative times C(n) (Definition 6), and the
// projected run time T(W, s) of Equation 1. The execution engine
// (internal/exec) carries a Plan out verbatim; Session.Plan returns one to
// callers without executing, and Plan.Explain renders the decision table
// helixrun -explain prints. Classic plan → explain → execute layering:
// the optimizer's choices become visible and testable in isolation
// instead of living inline in the engine.
//
// # Incremental planning
//
// Planning itself is amortized across iterations. Every Plan call derives
// a Fingerprint — a stable hash over the DAG's topology, per-node chain
// signatures, the store's materialized-set view, carried cost statistics,
// and the planning options. A Planner given a Cache compares the
// fingerprint against the previous iteration's: on a full match the prior
// Plan is reused wholesale (no slicing, no ancestor-bitset construction,
// no max-flow solve — the dominant O(V²)+solve cost on large DAGs); on a
// topology match with localized changes, the ancestor bitsets and the
// unchanged rows are reused and only the weakly-connected live components
// containing a changed node are re-solved. Reuse is sound because the
// fingerprint covers every input the solve depends on, and the
// project-selection objective is separable across weakly-connected
// components of the live slice — an untouched component's cached states
// remain exactly optimal.
//
// helixlint (plandeterminism) holds this package to byte-stable output:
// no wall clocks, no global randomness, no map iteration into
// order-sensitive sinks — equal inputs must always hash and plan
// identically.
//
//lint:deterministic
package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"

	"helix/internal/core"
	"helix/internal/opt"
)

// MatView is the read-only view of the materialization store the planner
// consults. Lookup reports whether an equivalent materialization exists
// under the given chain signature and, if so, its on-disk size;
// EstimateLoad projects the time to load that many bytes. A nil view
// plans as if the store were empty (no reuse).
type MatView interface {
	Lookup(key string) (size int64, ok bool)
	EstimateLoad(size int64) time.Duration
}

// Options configures planning. The zero value plans with reuse and
// pruning enabled and no mandatory output materialization.
//
// Every field here conditions plan identity, so every field must be
// folded into the fingerprint — helixlint enforces the coverage.
//
//lint:fingerprint fingerprintInputs
type Options struct {
	// DisableReuse ignores existing materializations: every live node is
	// computed (models KeystoneML and DeepDive, which never reuse across
	// iterations). It also suppresses the purge spec.
	DisableReuse bool
	// DisablePruning turns off program slicing (ablation): every node is
	// treated as live.
	DisablePruning bool
	// MaterializeOutputs marks computed output nodes for mandatory
	// materialization regardless of the runtime policy (the paper's
	// "mandatory output" drums in Figure 3).
	MaterializeOutputs bool
	// Streaming enables operator fusion: maximal linear runs of live,
	// deterministic, streamable compute nodes are grouped into fused runs
	// (Plan.Fused) the engine executes as single scheduled units with
	// per-element pull, never building the interior collections. Off in
	// the zero value; the engine enables it unless the caller opted out
	// (helix.WithStreaming(false)).
	Streaming bool
	// Shared plans against a content-addressed shared store: originality
	// (Definition 2's "no equivalent in the previous iteration") is
	// derived from the store rather than the previous DAG — a changed
	// chain has a new signature that by construction has no published
	// artifact, so Load is +Inf and the solver is forced to compute or
	// prune it; Constraint 1's MustCompute is never set, and the purge
	// spec deprecates no names (other sessions may still depend on them —
	// eviction is the shared store's refcounted concern). This is what
	// makes a warm session's first fingerprint byte-identical to the
	// steady state another session cached.
	Shared bool
}

// NodePlan is one node's planned treatment plus everything the decision
// rested on.
type NodePlan struct {
	// Index is the node's position in Plan.Nodes (topological order).
	Index int
	// Node is the planned DAG node.
	Node *core.Node
	// State is the execution state OPT-EXEC-PLAN assigned (§5.1).
	State core.State
	// Live reports membership in the backward program slice from the
	// outputs (§5.4); non-live nodes are always pruned.
	Live bool
	// Original reports that the node has no equivalent in the previous
	// iteration (Definition 2) and must be recomputed (Constraint 1).
	Original bool
	// Output reports that the node is a declared workflow output.
	Output bool
	// MandatoryMat marks a computed output that will be materialized
	// regardless of the runtime policy (Options.MaterializeOutputs).
	MandatoryMat bool
	// Costs are the solver inputs: compute time c_i, load time l_i
	// (+Inf without an equivalent materialization), and the constraint
	// flags. Zero for non-live nodes, which never reach the solver.
	Costs opt.Costs
	// ProjectedOwn is the node's own projected time t(n) under the plan:
	// Costs.Compute if computed, Costs.Load if loaded, 0 if pruned.
	ProjectedOwn float64
	// ProjectedCum is the projected cumulative run time C(n) per
	// Definition 6: ProjectedOwn plus the sum over all ancestors'
	// ProjectedOwn. Zero at iteration 0, when no statistics exist yet.
	ProjectedCum float64
	// ProjectedTail is the projected length of the longest chain of
	// compute-state descendants that transitively wait on this node,
	// including the node's own projected time — the node's downstream
	// critical path. The scheduler's critical-path ordering pops the
	// ready node with the largest tail first, so stragglers start early.
	// Zero when no statistics exist yet (the scheduler then degrades to
	// FIFO order).
	ProjectedTail float64
	// Reused reports that this row was taken verbatim from the cached
	// previous iteration's plan (full fingerprint hit, or a clean
	// component of a partial hit) rather than re-derived by the solver.
	Reused bool
	// FuseGroup is the index into Plan.Fused of the fused run this node
	// belongs to, or -1. Within a group, only the last member's value is
	// ever built; the engine schedules the whole run as one unit.
	FuseGroup int
	// Rationale states, in one phrase, why the solver assigned State.
	Rationale string
}

// PurgeSpec records the planner's purge decision: which store entries
// survive the iteration. An entry is kept iff its key is a current chain
// signature, or it belongs to an operator name that did not change this
// iteration (a deprecated name's old results can never be reused, §6.6).
// Nil when reuse is disabled. The executor applies it; planning itself
// never mutates the store.
type PurgeSpec struct {
	// CurrentSigs is the set of chain signatures present in this
	// iteration's DAG.
	CurrentSigs map[string]bool
	// DeprecatedNames is the set of operator names that are original this
	// iteration: their previously stored results are stale.
	DeprecatedNames map[string]bool
}

// Plan is a self-contained execution plan for one iteration: every
// decision the engine will carry out, plus the evidence behind it.
//
// Plans are rebuilt wholesale by the cache's hit() rebind and by
// CloneRows; helixlint requires every non-exempt field to be assigned in
// those literals, so a new field cannot silently vanish on a cache hit
// (the way Fused/FusedSigs once did).
//
//lint:rebind hit CloneRows
type Plan struct {
	// Iteration is the iteration the plan was built for.
	Iteration int
	// Nodes holds the per-node plans in topological order.
	Nodes []*NodePlan
	// ProjectedSeconds is T(W, s) from Equation 1: the projected run time
	// of the chosen states under the known costs.
	ProjectedSeconds float64
	// Counts tallies live nodes per assigned state (the Figure 8 series).
	Counts map[core.State]int
	// Purge is the materialization-purge decision; nil when reuse is
	// disabled.
	Purge *PurgeSpec
	// Cache reports how the planner obtained this plan: a fresh solve, a
	// partial re-solve of dirty components, or a wholesale reuse of the
	// previous iteration's plan.
	Cache CacheOutcome
	// Solves is the number of max-flow solves this particular Plan call
	// ran: 0 on a full fingerprint hit (and on a partial hit whose dirty
	// set held no live node), 1 otherwise. Deterministic per-call
	// accounting for the adaptive re-planner's speculation budget —
	// unlike the process-wide opt.SolveCount, it is unaffected by
	// concurrent planners.
	//
	//lint:fpexempt per-call accounting, not plan state: a hit runs zero solves, so the rebind's zero value is the correct count
	Solves int
	// Fused lists the plan's fused runs (Options.Streaming): each entry is
	// ≥2 Plan.Nodes indices forming a linear chain of streamable compute
	// nodes the engine executes as one unit with per-element pull. Interior
	// members' values are never built, so every member but the last is
	// non-output, non-mandatory, and feeds no compute node outside the run.
	Fused [][]int
	// FusedSigs holds one merged signature per Fused entry — a hash over
	// the members' chain signatures, identifying the fused unit the way a
	// chain signature identifies a single operator. The tail's own chain
	// signature (unchanged by fusion) still keys its materialization, so
	// cross-iteration reuse is untouched.
	FusedSigs []string
	// Fingerprint is the stable hash of every planning input this plan
	// was derived from; two Plan calls with equal fingerprints are
	// guaranteed to produce equivalent plans.
	Fingerprint Fingerprint

	// byNode/byName are built lazily on first lookup: most plans are
	// executed, not queried, and two map constructions per iteration were
	// measurable on 1000-node workflows.
	//
	//lint:fpexempt lazy lookup index, rebuilt on first For/ByName via initMaps; copying would alias stale rows
	mapsOnce sync.Once
	//lint:fpexempt lazy lookup index, rebuilt on first For/ByName via initMaps; copying would alias stale rows
	byNode map[*core.Node]*NodePlan
	//lint:fpexempt lazy lookup index, rebuilt on first For/ByName via initMaps; copying would alias stale rows
	byName map[string]*NodePlan
	// anc holds every node's ancestor set as a bitset over Plan.Nodes
	// indices, ancWords words per node — V²/64 words total, computed once
	// here so the executor's retirement path can price C(n) from measured
	// times with a bit scan instead of an O(ancestors) graph traversal
	// (map allocation and pointer chasing) per retirement. The table
	// depends only on topology, so cache hits and partial hits share the
	// previous plan's table instead of rebuilding it.
	anc      []uint64
	ancWords int
}

func (p *Plan) initMaps() {
	p.mapsOnce.Do(func() {
		p.byNode = make(map[*core.Node]*NodePlan, len(p.Nodes))
		p.byName = make(map[string]*NodePlan, len(p.Nodes))
		for _, np := range p.Nodes {
			p.byNode[np.Node] = np
			p.byName[np.Node.Name] = np
		}
	})
}

// For returns the plan entry for a node of the planned DAG, or nil.
func (p *Plan) For(n *core.Node) *NodePlan {
	p.initMaps()
	return p.byNode[n]
}

// ByName returns the plan entry for the named node, or nil.
func (p *Plan) ByName(name string) *NodePlan {
	p.initMaps()
	return p.byName[name]
}

// ForEachAncestor calls fn with the Plan.Nodes index of every ancestor
// (pruned included) of the node at index i, in ascending index order.
func (p *Plan) ForEachAncestor(i int, fn func(j int)) {
	row := p.anc[i*p.ancWords : (i+1)*p.ancWords]
	for w, word := range row {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			fn(w*64 + b)
		}
	}
}

// CloneRows returns a copy of the plan whose NodePlan rows the caller may
// mutate freely. Cached plans alias their rows into the plan cache (hit
// rebinds and re-stores them), so an executor that adapts states mid-run
// must clone before touching a row. The topology-dependent ancestor
// table, purge spec, and fusion groups are immutable under row mutation
// and stay shared; Counts is copied so state tallies can be adjusted.
func (p *Plan) CloneRows() *Plan {
	q := &Plan{
		Iteration:        p.Iteration,
		Nodes:            make([]*NodePlan, len(p.Nodes)),
		ProjectedSeconds: p.ProjectedSeconds,
		Counts:           make(map[core.State]int, len(p.Counts)),
		Purge:            p.Purge,
		Cache:            p.Cache,
		Solves:           p.Solves,
		Fused:            p.Fused,
		FusedSigs:        p.FusedSigs,
		Fingerprint:      p.Fingerprint,
		anc:              p.anc,
		ancWords:         p.ancWords,
	}
	rows := make([]NodePlan, len(p.Nodes))
	for i, np := range p.Nodes {
		rows[i] = *np
		q.Nodes[i] = &rows[i]
	}
	for s, n := range p.Counts {
		q.Counts[s] = n
	}
	return q
}

// Reuses reports how many of the plan's rows were reused from the cached
// previous plan rather than re-derived.
func (p *Plan) Reuses() int {
	reused := 0
	for _, np := range p.Nodes {
		if np.Reused {
			reused++
		}
	}
	return reused
}

// TestHookMutatePlan, when non-nil, is applied to every plan a Planner
// returns — fresh solves and cache hits alike — before the caller sees
// it. It exists solely for the property-based harness (internal/fuzz),
// which installs a deliberately broken mutation to prove its invariant
// checks catch a planner defect end to end. Never set outside tests.
var TestHookMutatePlan func(*Plan)

// Planner builds Plans. The zero value plans without reuse, without a
// plan cache, and with a throwaway solver. A Planner (or at least its
// Cache and Solver, which hold the cross-iteration state) is not safe for
// concurrent use.
type Planner struct {
	// View is the materialization-store view; nil plans as if empty.
	View MatView
	// Opts configures planning.
	Opts Options
	// Cache, when non-nil, enables incremental planning: Plan consults it
	// for the previous iteration's fingerprinted plan and reuses whatever
	// the fingerprint proves unchanged.
	Cache *Cache
	// Solver, when non-nil, is the pooled OPT-EXEC-PLAN solver whose flow
	// network and buffers are reused across iterations. Nil uses a
	// throwaway solver per call.
	Solver *opt.Solver
	// ConfigToken describes the engine-level configuration (policy,
	// budget, parallelism, …) this particular Plan call runs under. It is
	// hashed into the fingerprint and recorded on the cache entry, so two
	// calls under differing configurations can never reuse each other's
	// decisions — the license run-scoped configuration overrides need.
	// Empty falls back to the Cache's session-wide ConfigToken.
	ConfigToken string
	// Shared, when non-nil, is the process-wide plan cache + frozen
	// statistics board (shared-store mode). The caller still sets Cache to
	// Shared.Cache(); this reference exists so Plan can apply the frozen
	// per-signature metrics after CarryMetrics, keeping every session's
	// solver inputs — and therefore fingerprints — identical.
	Shared *SharedCache
	// SkipCarry suppresses the change-tracking metric carry (CarryMetrics
	// and the shared-stats overlay) for this call: the DAG's current
	// metrics are taken as authoritative. The adaptive re-planner sets it
	// when re-planning mid-run — it has just written corrected frontier
	// metrics into the very DAG being planned, and carrying the previous
	// iteration's statistics back over them would undo the correction.
	// Deliberately NOT part of Options: it changes no planning decision
	// given the same metrics, and folding it into the fingerprinted
	// options would sever re-plans from the run's own cache entries.
	SkipCarry bool
}

// planInputs carries the derived planning inputs between pipeline stages.
// The per-node attributes are slices indexed by topological position —
// the hit path runs every iteration, and four map constructions per call
// were a measurable tax on 1000-node workflows.
type planInputs struct {
	d         *core.DAG
	iteration int
	order     []*core.Node
	// pos maps a node's (dense) ID to its index in order.
	pos       []int32
	originals []bool
	live      []bool
	outputs   []bool
	costs     []opt.Costs // zero value for non-live nodes
	// purge is filled in by the caller only on the paths that need a
	// fresh spec; a full cache hit reuses the cached plan's.
	purge *PurgeSpec
}

// idx returns n's index in the topological order.
func (in *planInputs) idx(n *core.Node) int { return int(in.pos[n.ID]) }

// Plan runs the full planning pipeline against d for the given iteration:
// change tracking versus prev (nil at iteration 0), program slicing, the
// purge decision, cost assembly, and the OPT-EXEC-PLAN solve — or, with a
// Cache attached, as little of that as the input fingerprint proves
// necessary. It mutates only d (signatures and carried metrics); prev and
// the store view are read-only.
func (pl *Planner) Plan(d *core.DAG, prev *core.DAG, iteration int) (*Plan, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("plan: invalid workflow: %w", err)
	}

	// 1. Change tracking (§4.2). A SkipCarry call trusts the DAG as-is:
	// signatures were computed by the run's initial plan and executor
	// goroutines are concurrently reading them, so recomputing (even to
	// identical values) would be a data race — and carrying the previous
	// iteration's statistics would undo the corrections the re-planner
	// just wrote.
	if !pl.SkipCarry {
		d.ComputeSignatures()
		d.CarryMetrics(prev)
		if pl.Shared != nil {
			pl.Shared.ApplyStats(d)
		}
	}

	// 2-3. Originality, slicing, and cost assembly — the cheap O(V+E)
	// stages every call pays, because they are what the fingerprint is
	// computed from.
	in := pl.gather(d, prev, iteration)

	// 5. Fingerprint the planning inputs and consult the cache: a full
	// match reuses the previous plan wholesale (no solve at all); a
	// topology match re-solves only the weakly-connected live components
	// containing a change, reusing the ancestor bitsets and every clean
	// row.
	var (
		fp      Fingerprint
		keys    []nodeKey
		parents []int32
		reused  []*NodePlan
		anc     []uint64
		words   int
		outcome = CacheCold
		token   = pl.ConfigToken
	)
	if pl.Cache != nil {
		if token == "" {
			token = pl.Cache.ConfigToken
		}
		keys, parents, fp = fingerprintInputs(in, pl.Opts, token)
		if p := pl.Cache.hit(fp, in); p != nil {
			if TestHookMutatePlan != nil {
				TestHookMutatePlan(p)
			}
			return p, nil
		}
		reused, anc, words = pl.Cache.partial(in, pl.Opts, token, keys, parents)
		if reused != nil {
			outcome = CachePartial
		}
	}
	pl.buildPurge(in)
	if anc == nil {
		anc, words = buildAncestors(in.order, in.pos)
	}

	// 6. OPT-EXEC-PLAN (Problem 1) via the MAX-FLOW reduction, restricted
	// to the dirty slice on a partial hit. A partial hit whose dirty set
	// contains no live node (e.g. only a sliced-away branch changed)
	// needs no solve at all: every non-reused row is non-live and prunes.
	var dirty []bool
	if outcome == CachePartial {
		dirty = make([]bool, len(in.order))
		for i := range reused {
			dirty[i] = reused[i] == nil
		}
	}
	solveCosts := in.solveCosts(dirty)
	var states map[*core.Node]core.State
	solves := 0
	if outcome != CachePartial || len(solveCosts) > 0 {
		solver := pl.Solver
		if solver == nil {
			solver = new(opt.Solver)
		}
		states = solver.OptimalStates(d, solveCosts).States
		solves = 1
	}

	// 7. Assemble the artifact: states, rationale, ancestor sets, and
	// cumulative times, all in topological order.
	p := pl.assemble(in, states, anc, words, reused, outcome, fp)
	p.Solves = solves
	if pl.Cache != nil {
		pl.Cache.store(fp, keys, parents, pl.Opts, token, p)
	}
	if TestHookMutatePlan != nil {
		TestHookMutatePlan(p)
	}
	return p, nil
}

// gather runs the cheap O(V+E) pipeline stages that every Plan call pays,
// cached or not: originality, program slicing, and cost assembly
// (including the store-view lookups the fingerprint must observe — a
// cached plan may never survive a store eviction unseen). The purge
// decision is NOT built here: see buildPurge, which runs only on misses
// and partial hits — a full hit reuses the cached spec.
func (pl *Planner) gather(d *core.DAG, prev *core.DAG, iteration int) *planInputs {
	in := &planInputs{d: d, iteration: iteration}
	in.order = d.TopoSort()
	n := len(in.order)
	in.pos = make([]int32, n)
	for i, nd := range in.order {
		in.pos[nd.ID] = int32(i)
	}

	// Originality (Definition 2): no equivalent node in prev. In shared
	// mode originality is vacuously false for every node: content
	// addressing subsumes Constraint 1 (a changed chain's new signature
	// has no published artifact, so Load is +Inf and the solver computes
	// or prunes it regardless), and a prev-derived flag would make a warm
	// session's first fingerprint — where prev is nil and everything looks
	// original — differ from the steady-state fingerprint another session
	// cached, forfeiting the zero-solve hit.
	in.originals = make([]bool, n)
	if pl.Opts.Shared {
		// all false
	} else if prev == nil {
		for i := range in.originals {
			in.originals[i] = true
		}
	} else {
		prevSigs := prev.SigIndex()
		for i, nd := range in.order {
			if _, ok := prevSigs[nd.ChainSignature()]; !ok {
				in.originals[i] = true
			}
		}
	}

	// Outputs and program slicing (§5.4): the backward slice is computed
	// in reverse topological order — a node is live iff it is an output
	// or feeds a live consumer. No declared outputs means nothing can be
	// pruned safely, matching DAG.Slice.
	in.outputs = make([]bool, n)
	for _, o := range d.Outputs() {
		in.outputs[in.idx(o)] = true
	}
	in.live = make([]bool, n)
	if len(d.Outputs()) == 0 || pl.Opts.DisablePruning {
		for i := range in.live {
			in.live[i] = true
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			if in.outputs[i] {
				in.live[i] = true
				continue
			}
			for _, c := range in.order[i].Children() {
				if in.live[in.idx(c)] {
					in.live[i] = true
					break
				}
			}
		}
	}

	reuse := !pl.Opts.DisableReuse && pl.View != nil

	// Cost model (§5.1) over the live slice.
	in.costs = make([]opt.Costs, n)
	for i, nd := range in.order {
		if !in.live[i] {
			continue
		}
		c := opt.Costs{
			Compute:     nd.Metrics.Compute.Seconds(),
			Load:        math.Inf(1),
			MustCompute: in.originals[i],
			Required:    in.outputs[i],
		}
		// Nondeterministic nodes never have an equivalent materialization
		// (Definition 3): a stored result is one random draw and must not
		// stand in for a fresh computation.
		if reuse && nd.Deterministic {
			if size, ok := pl.View.Lookup(nd.ChainSignature()); ok {
				c.Load = pl.View.EstimateLoad(size).Seconds()
			}
		}
		in.costs[i] = c
	}
	return in
}

// solveCosts materializes the solver-facing cost map for the live nodes
// the caller wants solved: all of them on a cold solve, only the dirty
// ones on a partial hit (dirty == nil means all). The map is built here,
// off the hit path — a fingerprint hit never needs it.
func (in *planInputs) solveCosts(dirty []bool) map[*core.Node]opt.Costs {
	m := make(map[*core.Node]opt.Costs, len(in.order))
	for i, nd := range in.order {
		if !in.live[i] {
			continue
		}
		if dirty != nil && !dirty[i] {
			continue
		}
		m[nd] = in.costs[i]
	}
	return m
}

// buildPurge records the planner's purge decision: an original node's old
// results can never be reused (§6.6). Applied by the executor; suppressed
// when reuse is off (the no-reuse systems — KeystoneML, DeepDive — never
// touch prior results, stale or not). Built only on cache misses and
// partial hits; a full hit reuses the cached plan's spec, which the
// fingerprint proves identical.
func (pl *Planner) buildPurge(in *planInputs) {
	if pl.Opts.DisableReuse {
		return
	}
	in.purge = &PurgeSpec{
		CurrentSigs:     make(map[string]bool, len(in.order)),
		DeprecatedNames: make(map[string]bool),
	}
	for i, n := range in.order {
		in.purge.CurrentSigs[n.ChainSignature()] = true
		if in.originals[i] {
			in.purge.DeprecatedNames[n.Name] = true
		}
	}
}

// buildAncestors computes ancestor reachability as bitsets over
// topological indices: row i is the union of every parent's row plus the
// parent itself. One O(V·E/64) pass replaces the per-retirement graph
// walks the engine used to pay (O(n²) pointer-chasing per run on deep
// DAGs). The whole table is V²/64 words — ~12 MB even at 10k nodes — and
// is retained on the Plan for the executor's C(n) pricing. It depends
// only on topology, so the plan cache shares it across iterations whose
// DAG shape did not change.
func buildAncestors(order []*core.Node, pos []int32) ([]uint64, int) {
	words := (len(order) + 63) / 64
	anc := make([]uint64, len(order)*words)
	row := func(i int) []uint64 { return anc[i*words : (i+1)*words] }
	for i, n := range order {
		ri := row(i)
		for _, par := range n.Parents() {
			j := int(pos[par.ID])
			for w, word := range row(j) {
				ri[w] |= word
			}
			ri[j/64] |= 1 << uint(j%64)
		}
	}
	return anc, words
}

// assemble builds the Plan artifact from solver states and/or reused
// cached rows: per-node rows with rationale, state counts, cumulative
// times C(n) from the ancestor bitsets, downstream critical-path tails
// for the scheduler, and the Equation-1 projection.
func (pl *Planner) assemble(in *planInputs, states map[*core.Node]core.State, anc []uint64, words int, reused []*NodePlan, outcome CacheOutcome, fp Fingerprint) *Plan {
	order := in.order
	p := &Plan{
		Iteration:   in.iteration,
		Nodes:       make([]*NodePlan, len(order)),
		Counts:      make(map[core.State]int, 3),
		Purge:       in.purge,
		Cache:       outcome,
		Fingerprint: fp,
		anc:         anc,
		ancWords:    words,
	}

	// Rows are block-allocated: one slice instead of V small objects per
	// iteration keeps the per-plan GC bill flat.
	rows := make([]NodePlan, len(order))
	own := make([]float64, len(order))
	for i, n := range order {
		np := &rows[i]
		if reused != nil && reused[i] != nil {
			*np = *reused[i]
			np.Index = i
			np.Node = n
			np.Reused = true
		} else {
			// Nodes outside the (possibly restricted) solve are pruned:
			// in a full solve the state map covers every node, and in a
			// partial one every non-reused node missing from it is
			// non-live.
			state := core.StatePrune
			if s, ok := states[n]; ok {
				state = s
			}
			*np = NodePlan{
				Index:        i,
				Node:         n,
				State:        state,
				Live:         in.live[i],
				Original:     in.originals[i],
				Output:       in.outputs[i],
				Costs:        in.costs[i], // zero value for non-live nodes
				MandatoryMat: pl.Opts.MaterializeOutputs && in.outputs[i] && state == core.StateCompute,
			}
			switch state {
			case core.StateCompute:
				np.ProjectedOwn = np.Costs.Compute
			case core.StateLoad:
				np.ProjectedOwn = np.Costs.Load
			}
			np.Rationale = opt.Rationale(np.Costs, state, n.Deterministic, in.live[i])
		}
		own[i] = np.ProjectedOwn
		if in.live[i] {
			p.Counts[np.State]++
		}
		p.Nodes[i] = np
	}

	// Projected cumulative times from the bitsets (pruned ancestors carry
	// zero ProjectedOwn, so no filtering is needed), and the Equation-1
	// total: the sum of every chosen state's own time.
	for i, np := range p.Nodes {
		cum := own[i]
		p.ForEachAncestor(i, func(j int) { cum += own[j] })
		np.ProjectedCum = cum
		p.ProjectedSeconds += own[i]
	}

	// Downstream critical-path tails in reverse topological order: a
	// node's tail is its own projected time plus the longest tail among
	// compute-state children (loads read from disk and never wait on
	// parents, so they do not extend a parent's tail).
	for i := len(order) - 1; i >= 0; i-- {
		np := p.Nodes[i]
		var best float64
		for _, c := range order[i].Children() {
			if cp := p.Nodes[in.idx(c)]; cp.State == core.StateCompute && cp.ProjectedTail > best {
				best = cp.ProjectedTail
			}
		}
		np.ProjectedTail = own[i] + best
	}
	p.computeFusion(in, pl.Opts.Streaming)
	return p
}

// computeFusion marks the plan's fused runs (Options.Streaming): maximal
// linear chains of ≥2 live, deterministic, streamable, compute-state
// nodes, where each member past the first has the previous member as its
// sole parent, and each member but the last is non-output, carries no
// mandatory materialization, and feeds exactly one compute-state node —
// the next member. Those conditions are what make it safe never to build
// the interior values: pruned children never run, load-state children
// read disk, and the tail's value (the only one built) serves outputs,
// the policy, and cross-iteration reuse under its unchanged chain
// signature. Fusion is a pure function of the plan's states plus the
// DAG's streamable flags, both of which the fingerprint covers, so
// cached plans carry their groups soundly.
func (p *Plan) computeFusion(in *planInputs, streaming bool) {
	p.Fused = nil
	p.FusedSigs = nil
	for _, np := range p.Nodes {
		np.FuseGroup = -1
	}
	if !streaming {
		return
	}
	member := func(i int) bool {
		np := p.Nodes[i]
		return np.Live && np.State == core.StateCompute && np.Node.Streamable &&
			np.Node.Deterministic && len(np.Node.Parents()) == 1 && np.FuseGroup < 0
	}
	// nextMember returns the index of i's unique compute-state child, or
	// -1 when i cannot be an interior (output, mandatory mat, or not
	// exactly one compute consumer).
	nextMember := func(i int) int {
		np := p.Nodes[i]
		if np.Output || np.MandatoryMat {
			return -1
		}
		next := -1
		for _, c := range np.Node.Children() {
			ci := in.idx(c)
			if p.Nodes[ci].State != core.StateCompute {
				continue
			}
			if next != -1 {
				return -1
			}
			next = ci
		}
		return next
	}
	for i := range p.Nodes {
		if !member(i) {
			continue
		}
		// Don't start a chain mid-run: if i's sole parent would itself
		// extend into i, the scan from that parent (a smaller topological
		// index) already claimed it, so a fresh chain here is genuinely
		// maximal.
		chain := []int{i}
		for {
			next := nextMember(chain[len(chain)-1])
			if next < 0 || !member(next) {
				break
			}
			chain = append(chain, next)
		}
		if len(chain) < 2 {
			continue
		}
		g := len(p.Fused)
		h := sha256.New()
		for _, j := range chain {
			p.Nodes[j].FuseGroup = g
			h.Write([]byte(p.Nodes[j].Node.ChainSignature()))
			h.Write([]byte{0})
		}
		p.Fused = append(p.Fused, chain)
		p.FusedSigs = append(p.FusedSigs, hex.EncodeToString(h.Sum(nil)))
	}
}
