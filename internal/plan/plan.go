// Package plan extracts HELIX's planning pipeline — change tracking
// (paper §4.2), program slicing (§5.4), and the MAX-FLOW reduction of
// OPT-EXEC-PLAN (§5.2) — into a self-contained, inspectable artifact.
//
// A Planner takes the current workflow DAG, the previous iteration's DAG,
// and a read-only view of the materialization store, and produces a Plan:
// per-node execution states with costs, originality, liveness, a
// per-decision rationale (why Load vs Compute vs Prune), precomputed
// ancestor sets and cumulative times C(n) (Definition 6), and the
// projected run time T(W, s) of Equation 1. The execution engine
// (internal/exec) carries a Plan out verbatim; Session.Plan returns one to
// callers without executing, and Plan.Explain renders the decision table
// helixrun -explain prints. Classic plan → explain → execute layering:
// the optimizer's choices become visible and testable in isolation
// instead of living inline in the engine.
package plan

import (
	"fmt"
	"math"
	"math/bits"
	"time"

	"helix/internal/core"
	"helix/internal/opt"
)

// MatView is the read-only view of the materialization store the planner
// consults. Lookup reports whether an equivalent materialization exists
// under the given chain signature and, if so, its on-disk size;
// EstimateLoad projects the time to load that many bytes. A nil view
// plans as if the store were empty (no reuse).
type MatView interface {
	Lookup(key string) (size int64, ok bool)
	EstimateLoad(size int64) time.Duration
}

// Options configures planning. The zero value plans with reuse and
// pruning enabled and no mandatory output materialization.
type Options struct {
	// DisableReuse ignores existing materializations: every live node is
	// computed (models KeystoneML and DeepDive, which never reuse across
	// iterations). It also suppresses the purge spec.
	DisableReuse bool
	// DisablePruning turns off program slicing (ablation): every node is
	// treated as live.
	DisablePruning bool
	// MaterializeOutputs marks computed output nodes for mandatory
	// materialization regardless of the runtime policy (the paper's
	// "mandatory output" drums in Figure 3).
	MaterializeOutputs bool
}

// NodePlan is one node's planned treatment plus everything the decision
// rested on.
type NodePlan struct {
	// Index is the node's position in Plan.Nodes (topological order).
	Index int
	// Node is the planned DAG node.
	Node *core.Node
	// State is the execution state OPT-EXEC-PLAN assigned (§5.1).
	State core.State
	// Live reports membership in the backward program slice from the
	// outputs (§5.4); non-live nodes are always pruned.
	Live bool
	// Original reports that the node has no equivalent in the previous
	// iteration (Definition 2) and must be recomputed (Constraint 1).
	Original bool
	// Output reports that the node is a declared workflow output.
	Output bool
	// MandatoryMat marks a computed output that will be materialized
	// regardless of the runtime policy (Options.MaterializeOutputs).
	MandatoryMat bool
	// Costs are the solver inputs: compute time c_i, load time l_i
	// (+Inf without an equivalent materialization), and the constraint
	// flags. Zero for non-live nodes, which never reach the solver.
	Costs opt.Costs
	// ProjectedOwn is the node's own projected time t(n) under the plan:
	// Costs.Compute if computed, Costs.Load if loaded, 0 if pruned.
	ProjectedOwn float64
	// ProjectedCum is the projected cumulative run time C(n) per
	// Definition 6: ProjectedOwn plus the sum over all ancestors'
	// ProjectedOwn. Zero at iteration 0, when no statistics exist yet.
	ProjectedCum float64
	// Rationale states, in one phrase, why the solver assigned State.
	Rationale string
}

// PurgeSpec records the planner's purge decision: which store entries
// survive the iteration. An entry is kept iff its key is a current chain
// signature, or it belongs to an operator name that did not change this
// iteration (a deprecated name's old results can never be reused, §6.6).
// Nil when reuse is disabled. The executor applies it; planning itself
// never mutates the store.
type PurgeSpec struct {
	// CurrentSigs is the set of chain signatures present in this
	// iteration's DAG.
	CurrentSigs map[string]bool
	// DeprecatedNames is the set of operator names that are original this
	// iteration: their previously stored results are stale.
	DeprecatedNames map[string]bool
}

// Plan is a self-contained execution plan for one iteration: every
// decision the engine will carry out, plus the evidence behind it.
type Plan struct {
	// Iteration is the iteration the plan was built for.
	Iteration int
	// Nodes holds the per-node plans in topological order.
	Nodes []*NodePlan
	// ProjectedSeconds is T(W, s) from Equation 1: the projected run time
	// of the chosen states under the known costs.
	ProjectedSeconds float64
	// Counts tallies live nodes per assigned state (the Figure 8 series).
	Counts map[core.State]int
	// Purge is the materialization-purge decision; nil when reuse is
	// disabled.
	Purge *PurgeSpec

	byNode map[*core.Node]*NodePlan
	byName map[string]*NodePlan
	// anc holds every node's ancestor set as a bitset over Plan.Nodes
	// indices, ancWords words per node — V²/64 words total, computed once
	// here so the executor's retirement path can price C(n) from measured
	// times with a bit scan instead of an O(ancestors) graph traversal
	// (map allocation and pointer chasing) per retirement.
	anc      []uint64
	ancWords int
}

// For returns the plan entry for a node of the planned DAG, or nil.
func (p *Plan) For(n *core.Node) *NodePlan { return p.byNode[n] }

// ByName returns the plan entry for the named node, or nil.
func (p *Plan) ByName(name string) *NodePlan { return p.byName[name] }

// ForEachAncestor calls fn with the Plan.Nodes index of every ancestor
// (pruned included) of the node at index i, in ascending index order.
func (p *Plan) ForEachAncestor(i int, fn func(j int)) {
	row := p.anc[i*p.ancWords : (i+1)*p.ancWords]
	for w, word := range row {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			fn(w*64 + b)
		}
	}
}

// Planner builds Plans. The zero value plans without reuse.
type Planner struct {
	// View is the materialization-store view; nil plans as if empty.
	View MatView
	// Opts configures planning.
	Opts Options
}

// Plan runs the full planning pipeline against d for the given iteration:
// change tracking versus prev (nil at iteration 0), program slicing, the
// purge decision, cost assembly, and the OPT-EXEC-PLAN solve. It mutates
// only d (signatures and carried metrics); prev and the store view are
// read-only.
func (pl *Planner) Plan(d *core.DAG, prev *core.DAG, iteration int) (*Plan, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("plan: invalid workflow: %w", err)
	}

	// 1. Change tracking (§4.2).
	d.ComputeSignatures()
	d.CarryMetrics(prev)
	originals := d.OriginalNodes(prev)

	// 2. Program slicing (§5.4).
	live := d.Slice()
	if pl.Opts.DisablePruning {
		for _, n := range d.Nodes() {
			live[n] = true
		}
	}

	reuse := !pl.Opts.DisableReuse && pl.View != nil

	// 3. Purge decision: an original node's old results can never be
	// reused (§6.6). Recorded here, applied by the executor. Suppressed
	// when reuse is off: the no-reuse systems (KeystoneML, DeepDive)
	// never touch prior results, stale or not.
	var purge *PurgeSpec
	if !pl.Opts.DisableReuse {
		purge = &PurgeSpec{
			CurrentSigs:     make(map[string]bool, d.Len()),
			DeprecatedNames: make(map[string]bool),
		}
		for _, n := range d.Nodes() {
			purge.CurrentSigs[n.ChainSignature()] = true
		}
		for n := range originals {
			purge.DeprecatedNames[n.Name] = true
		}
	}

	// 4. Cost model (§5.1) over the live slice.
	costs := make(map[*core.Node]opt.Costs, d.Len())
	for _, n := range d.Nodes() {
		if !live[n] {
			continue
		}
		c := opt.Costs{
			Compute:     n.Metrics.Compute.Seconds(),
			Load:        math.Inf(1),
			MustCompute: originals[n],
		}
		// Nondeterministic nodes never have an equivalent materialization
		// (Definition 3): a stored result is one random draw and must not
		// stand in for a fresh computation.
		if reuse && n.Deterministic {
			if size, ok := pl.View.Lookup(n.ChainSignature()); ok {
				c.Load = pl.View.EstimateLoad(size).Seconds()
			}
		}
		costs[n] = c
	}
	for _, o := range d.Outputs() {
		if c, ok := costs[o]; ok {
			c.Required = true
			costs[o] = c
		}
	}

	// 5. OPT-EXEC-PLAN (Problem 1) via the MAX-FLOW reduction.
	sol := opt.OptimalStates(d, costs)

	// 6. Assemble the artifact: states, rationale, ancestor sets, and
	// cumulative times, all in topological order.
	order := d.TopoSort()
	p := &Plan{
		Iteration:        iteration,
		Nodes:            make([]*NodePlan, len(order)),
		ProjectedSeconds: sol.Time,
		Counts:           make(map[core.State]int, 3),
		Purge:            purge,
		byNode:           make(map[*core.Node]*NodePlan, len(order)),
		byName:           make(map[string]*NodePlan, len(order)),
	}
	outputs := make(map[*core.Node]bool, len(d.Outputs()))
	for _, o := range d.Outputs() {
		outputs[o] = true
	}
	idx := make(map[*core.Node]int, len(order))
	for i, n := range order {
		idx[n] = i
	}

	// Ancestor reachability as bitsets over topological indices: row i is
	// the union of every parent's row plus the parent itself. One
	// O(V·E/64) pass replaces the per-retirement graph walks the engine
	// used to pay (O(n²) pointer-chasing per run on deep DAGs). The whole
	// table is V²/64 words — ~12 MB even at 10k nodes — and is retained
	// on the Plan for the executor's C(n) pricing.
	words := (len(order) + 63) / 64
	anc := make([]uint64, len(order)*words)
	row := func(i int) []uint64 { return anc[i*words : (i+1)*words] }
	p.anc, p.ancWords = anc, words
	for i, n := range order {
		ri := row(i)
		for _, par := range n.Parents() {
			j := idx[par]
			for w, word := range row(j) {
				ri[w] |= word
			}
			ri[j/64] |= 1 << uint(j%64)
		}
	}

	own := make([]float64, len(order))
	for i, n := range order {
		state := sol.States[n]
		np := &NodePlan{
			Index:        i,
			Node:         n,
			State:        state,
			Live:         live[n],
			Original:     originals[n],
			Output:       outputs[n],
			Costs:        costs[n], // zero value for non-live nodes
			MandatoryMat: pl.Opts.MaterializeOutputs && outputs[n] && state == core.StateCompute,
		}
		switch state {
		case core.StateCompute:
			np.ProjectedOwn = np.Costs.Compute
		case core.StateLoad:
			np.ProjectedOwn = np.Costs.Load
		}
		own[i] = np.ProjectedOwn
		np.Rationale = opt.Rationale(np.Costs, state, n.Deterministic, live[n])
		if live[n] {
			p.Counts[state]++
		}
		p.Nodes[i] = np
		p.byNode[n] = np
		p.byName[n.Name] = np
	}

	// Projected cumulative times from the bitsets (pruned ancestors carry
	// zero ProjectedOwn, so no filtering is needed).
	for i, np := range p.Nodes {
		cum := own[i]
		p.ForEachAncestor(i, func(j int) { cum += own[j] })
		np.ProjectedCum = cum
	}
	return p, nil
}
