package plan

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"helix/internal/core"
	"helix/internal/opt"
)

// Fingerprint is a stable hash over every input the planner's decisions
// rest on: the DAG's topology (node names, kinds, and edge structure in
// topological order), each node's chain signature (Definition 2 ancestry
// equivalence), determinism flag, liveness, originality versus the
// previous iteration, the carried cost statistics and store-view lookups
// that become the solver's c_i/l_i, the planning options, and the owning
// cache's configuration token. Two Plan calls with equal fingerprints are
// guaranteed to produce equivalent plans, which is exactly the license
// the plan cache needs to skip the solve.
type Fingerprint [sha256.Size]byte

// IsZero reports whether the fingerprint was never computed (no cache
// attached to the planner).
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// String renders a short hex prefix for logs and Explain output.
func (f Fingerprint) String() string {
	if f.IsZero() {
		return "-"
	}
	return hex.EncodeToString(f[:6])
}

// nodeKey is one node's contribution to the fingerprint, kept in raw
// (comparable) form by the cache so a fingerprint mismatch can be
// localized to the exact dirty nodes without re-hashing. helixlint
// requires every field to be digested by fingerprintInputs: a key field
// that keys cache comparisons but not the hash would let unequal inputs
// collide.
//
//lint:fingerprint fingerprintInputs
type nodeKey struct {
	name       string
	chainSig   string
	kind       core.Kind
	det        bool
	streamable bool
	live       bool
	output     bool
	original   bool
	costs      opt.Costs
}

// fingerprintInputs derives the per-node keys, the flattened parent-index
// topology, and the overall fingerprint for a prepared set of planning
// inputs. The parent list is (count, idx...) per node in topological
// order; equality of the flat list is equality of the DAG's shape, which
// is what licenses reusing the ancestor bitset table.
func fingerprintInputs(in *planInputs, opts Options, configToken string) ([]nodeKey, []int32, Fingerprint) {
	keys := make([]nodeKey, len(in.order))
	parents := make([]int32, 0, 2*len(in.order))
	h := sha256.New()

	// The digest material is staged per node in one reusable buffer and
	// written in a single call: fingerprinting runs on every iteration —
	// it is the whole cost of a cache hit — so thousands of tiny
	// hash-writes and string conversions were a measurable tax. The chain
	// signature contributes its first 32 hex chars (128 bits of the
	// underlying sha256): ample collision resistance for equality
	// evidence at half the hashing volume.
	var buf []byte
	u64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	str := func(s string) {
		u64(uint64(len(s)))
		buf = append(buf, s...)
	}
	bit := func(b bool) {
		if b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}

	str(configToken)
	bit(opts.DisableReuse)
	bit(opts.DisablePruning)
	bit(opts.MaterializeOutputs)
	bit(opts.Streaming)
	bit(opts.Shared)
	u64(uint64(len(in.order)))
	h.Write(buf)

	for i, n := range in.order {
		k := nodeKey{
			name:       n.Name,
			chainSig:   n.ChainSignature(),
			kind:       n.Kind,
			det:        n.Deterministic,
			streamable: n.Streamable,
			live:       in.live[i],
			output:     in.outputs[i],
			original:   in.originals[i],
			costs:      in.costs[i], // zero value for non-live nodes
		}
		keys[i] = k

		buf = buf[:0]
		str(k.name)
		sig := k.chainSig
		if len(sig) > 32 {
			sig = sig[:32]
		}
		str(sig)
		u64(uint64(k.kind))
		bit(k.det)
		bit(k.streamable)
		bit(k.live)
		bit(k.output)
		bit(k.original)
		u64(math.Float64bits(k.costs.Compute))
		u64(math.Float64bits(k.costs.Load))
		bit(k.costs.MustCompute)
		bit(k.costs.Required)
		u64(uint64(len(n.Parents())))
		parents = append(parents, int32(len(n.Parents())))
		for _, par := range n.Parents() {
			j := in.idx(par)
			parents = append(parents, int32(j))
			u64(uint64(j))
		}
		h.Write(buf)
	}

	var fp Fingerprint
	h.Sum(fp[:0])
	return keys, parents, fp
}
