package nlp

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("John married Jane, in 1999!")
	want := []string{"john", "married", "jane", "in", "1999"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeApostrophes(t *testing.T) {
	got := Tokenize("it's John's")
	if !reflect.DeepEqual(got, []string{"it's", "john's"}) {
		t.Fatalf("Tokenize = %v", got)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize("  ... !!! "); got != nil {
		t.Fatalf("Tokenize punctuation-only = %v, want nil", got)
	}
}

func TestSplitSentences(t *testing.T) {
	got := SplitSentences("First. Second! Third? Trailing without period")
	if len(got) != 4 {
		t.Fatalf("sentences = %v", got)
	}
	if got[0] != "First." || got[3] != "Trailing without period" {
		t.Fatalf("sentences = %v", got)
	}
}

func TestTagPOSClosedClasses(t *testing.T) {
	s := TagPOS([]string{"the", "cat", "is", "quickly", "running", "to", "them", "and", "7"})
	wantTags := []string{"DT", "NN", "VB", "RB", "VBG", "IN", "PRP", "CC", "CD"}
	for i, tok := range s {
		if tok.POS != wantTags[i] {
			t.Fatalf("tag[%d] %q = %s, want %s", i, tok.Text, tok.POS, wantTags[i])
		}
	}
}

func TestTagPOSSuffixRules(t *testing.T) {
	cases := map[string]string{
		"walked":    "VBD",
		"creation":  "NN",
		"happiness": "NN",
		"active":    "JJ",
		"wonderful": "JJ",
		"tables":    "NNS",
		"glass":     "NN", // -ss is not plural
	}
	for w, want := range cases {
		if got := tagWord(w, 0); got != want {
			t.Fatalf("tagWord(%q) = %s, want %s", w, got, want)
		}
	}
}

func TestParsePipeline(t *testing.T) {
	doc := Parse("d1", "The gene regulates growth. It binds proteins!", 1)
	if doc.ID != "d1" || len(doc.Sentences) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Sentences[0][0].Text != "the" || doc.Sentences[0][0].POS != "DT" {
		t.Fatalf("first token = %+v", doc.Sentences[0][0])
	}
}

func TestParseCostFactorPreservesOutput(t *testing.T) {
	text := "Alice married Bob in Paris. They live happily."
	d1 := Parse("x", text, 1)
	d5 := Parse("x", text, 5)
	if !reflect.DeepEqual(d1, d5) {
		t.Fatal("cost factor changed parse output")
	}
	d0 := Parse("x", text, 0) // clamps to 1
	if !reflect.DeepEqual(d1, d0) {
		t.Fatal("cost factor 0 not clamped")
	}
}

func TestNGrams(t *testing.T) {
	s := TagPOS([]string{"a", "b", "c"})
	if got := NGrams(s, 2); !reflect.DeepEqual(got, []string{"a_b", "b_c"}) {
		t.Fatalf("bigrams = %v", got)
	}
	if got := NGrams(s, 4); got != nil {
		t.Fatalf("too-long n-gram = %v, want nil", got)
	}
	if got := NGrams(s, 0); got != nil {
		t.Fatalf("n=0 = %v, want nil", got)
	}
}

func TestBuildVocabulary(t *testing.T) {
	docs := []Document{
		Parse("a", "gene gene protein.", 1),
		Parse("b", "gene cell.", 1),
	}
	v := BuildVocabulary(docs)
	if v.Counts["gene"] != 3 || v.Counts["protein"] != 1 || v.Counts["cell"] != 1 {
		t.Fatalf("counts = %v", v.Counts)
	}
	if v.Total != 5 {
		t.Fatalf("total = %d", v.Total)
	}
}

// Property: parsing is deterministic — identical input yields identical
// documents (the property HELIX's reuse correctness rests on).
func TestPropertyParseDeterministic(t *testing.T) {
	words := []string{"gene", "disease", "married", "the", "quickly", "BRCA1", "analysis"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < 3+rng.Intn(5); i++ {
			for j := 0; j < 2+rng.Intn(8); j++ {
				b.WriteString(words[rng.Intn(len(words))])
				b.WriteByte(' ')
			}
			b.WriteString(". ")
		}
		text := b.String()
		return reflect.DeepEqual(Parse("p", text, 1), Parse("p", text, 1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: token count is preserved between tokenization and tagging.
func TestPropertyTagPreservesTokens(t *testing.T) {
	f := func(text string) bool {
		tokens := Tokenize(text)
		tagged := TagPOS(tokens)
		if len(tagged) != len(tokens) {
			return false
		}
		for i := range tokens {
			if tagged[i].Text != tokens[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDocumentApproxBytes(t *testing.T) {
	d := Parse("doc", "Some words here.", 1)
	if d.ApproxBytes() <= 0 {
		t.Fatal("document size must be positive")
	}
	v := BuildVocabulary([]Document{d})
	if v.ApproxBytes() <= 0 {
		t.Fatal("vocabulary size must be positive")
	}
}
