// Package nlp is HELIX-Go's natural-language substrate, standing in for
// CoreNLP in the original system (paper §2.1: "domain-specific libraries
// such as CoreNLP ... for custom needs"). It provides tokenization,
// sentence splitting, a rule-based part-of-speech tagger, n-gram
// extraction, and vocabulary construction.
//
// What matters to HELIX is that the NLP parse is deterministic, expensive
// relative to downstream operators, and therefore profitably reusable
// (paper §6.5.2, NLP workflow: "The first operator in this workflow is a
// time-consuming NLP parsing operator, whose results are reusable for all
// subsequent iterations"). An optional CostFactor lets workloads calibrate
// the expense to reproduce that profile.
package nlp

import (
	"strings"
	"unicode"
)

// Token is one token of a parsed sentence with its part-of-speech tag.
type Token struct {
	Text string
	POS  string
}

// Sentence is an ordered sequence of tagged tokens.
type Sentence []Token

// Document is a parsed document: its identifier and sentences.
type Document struct {
	ID        string
	Sentences []Sentence
}

// ApproxBytes implements the execution engine's Sizer interface.
func (d Document) ApproxBytes() int64 {
	var b int64 = int64(len(d.ID)) + 16
	for _, s := range d.Sentences {
		for _, t := range s {
			b += int64(len(t.Text)+len(t.POS)) + 8
		}
	}
	return b
}

// Tokenize splits text into lowercase word tokens. Word characters are
// letters, digits, apostrophes and underscores (so canonicalized entity
// names like alice_adams survive as single tokens); any other rune is a
// separator and punctuation is dropped.
func Tokenize(text string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' || r == '_' {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// SplitSentences splits text on sentence-final punctuation (. ! ?),
// returning non-empty trimmed sentences.
func SplitSentences(text string) []string {
	var out []string
	var cur strings.Builder
	for _, r := range text {
		cur.WriteRune(r)
		if r == '.' || r == '!' || r == '?' {
			if s := strings.TrimSpace(cur.String()); s != "" {
				out = append(out, s)
			}
			cur.Reset()
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	return out
}

// commonDeterminers, prepositions and pronouns for the rule-based tagger.
var (
	determiners  = wordSet("a", "an", "the", "this", "that", "these", "those")
	prepositions = wordSet("of", "in", "on", "at", "by", "for", "with", "to", "from", "about", "as")
	pronouns     = wordSet("he", "she", "it", "they", "we", "i", "you", "him", "her", "them", "us")
	conjunctions = wordSet("and", "or", "but", "nor", "so", "yet")
	beVerbs      = wordSet("is", "are", "was", "were", "be", "been", "being", "am")
)

func wordSet(words ...string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}

// TagPOS assigns a part-of-speech tag to each token with a deterministic
// rule cascade (closed-class lookup, then morphological suffix rules,
// defaulting to NN). It is a lightweight stand-in for CoreNLP's tagger;
// the workflows only require tags to be deterministic and distributionally
// plausible for feature extraction.
func TagPOS(tokens []string) Sentence {
	out := make(Sentence, len(tokens))
	for i, w := range tokens {
		out[i] = Token{Text: w, POS: tagWord(w, i)}
	}
	return out
}

func tagWord(w string, pos int) string {
	switch {
	case determiners[w]:
		return "DT"
	case prepositions[w]:
		return "IN"
	case pronouns[w]:
		return "PRP"
	case conjunctions[w]:
		return "CC"
	case beVerbs[w]:
		return "VB"
	case len(w) > 0 && unicode.IsDigit(rune(w[0])):
		return "CD"
	case strings.HasSuffix(w, "ly"):
		return "RB"
	case strings.HasSuffix(w, "ing") && len(w) > 4:
		return "VBG"
	case strings.HasSuffix(w, "ed") && len(w) > 3:
		return "VBD"
	case strings.HasSuffix(w, "es") && len(w) > 3, strings.HasSuffix(w, "s") && len(w) > 3 && !strings.HasSuffix(w, "ss"):
		return "NNS"
	case strings.HasSuffix(w, "tion"), strings.HasSuffix(w, "ment"), strings.HasSuffix(w, "ness"):
		return "NN"
	case strings.HasSuffix(w, "ive"), strings.HasSuffix(w, "ous"), strings.HasSuffix(w, "ful"), strings.HasSuffix(w, "able"):
		return "JJ"
	default:
		return "NN"
	}
}

// Parse runs the full pipeline on a raw text: sentence split, tokenize,
// POS tag. CostFactor ≥ 1 repeats the tagging work to calibrate expense
// (see package comment); the output is identical regardless of factor.
func Parse(id, text string, costFactor int) Document {
	if costFactor < 1 {
		costFactor = 1
	}
	doc := Document{ID: id}
	for _, s := range SplitSentences(text) {
		tokens := Tokenize(s)
		if len(tokens) == 0 {
			continue
		}
		var tagged Sentence
		for r := 0; r < costFactor; r++ {
			tagged = TagPOS(tokens)
		}
		doc.Sentences = append(doc.Sentences, tagged)
	}
	return doc
}

// NGrams returns all contiguous n-grams of the token texts, joined by '_'.
func NGrams(s Sentence, n int) []string {
	if n <= 0 || len(s) < n {
		return nil
	}
	out := make([]string, 0, len(s)-n+1)
	var b strings.Builder
	for i := 0; i+n <= len(s); i++ {
		b.Reset()
		for j := 0; j < n; j++ {
			if j > 0 {
				b.WriteByte('_')
			}
			b.WriteString(s[i+j].Text)
		}
		out = append(out, b.String())
	}
	return out
}

// Vocabulary counts token frequencies across documents.
type Vocabulary struct {
	Counts map[string]int
	Total  int
}

// BuildVocabulary aggregates token counts over parsed documents.
func BuildVocabulary(docs []Document) *Vocabulary {
	v := &Vocabulary{Counts: make(map[string]int)}
	for _, d := range docs {
		for _, s := range d.Sentences {
			for _, t := range s {
				v.Counts[t.Text]++
				v.Total++
			}
		}
	}
	return v
}

// ApproxBytes implements the engine's Sizer interface.
func (v *Vocabulary) ApproxBytes() int64 {
	var b int64 = 16
	for w := range v.Counts {
		b += int64(len(w)) + 16
	}
	return b
}
