package fuzz

import "context"

// Shrink minimizes a failing case: it repeatedly tries structural
// reductions — truncating iterations after the failure, dropping whole
// iterations, dropping single edits, and dropping removable DAG nodes —
// and keeps any candidate that still violates the SAME invariant. The
// budget bounds the number of candidate executions; the result is a
// local minimum within that budget, returned with the violation it
// produces. The original case is never mutated.
func Shrink(ctx context.Context, c *Case, v *Violation, budget int) (*Case, *Violation) {
	cur := c.clone()
	fails := func(cand *Case) (*Violation, bool) {
		if budget <= 0 || ctx.Err() != nil {
			return nil, false
		}
		budget--
		cv, err := runInTemp(ctx, cand, nil)
		if err != nil || cv == nil {
			return nil, false
		}
		return cv, cv.Invariant == v.Invariant
	}

	// Everything after the failing iteration is noise by construction.
	if v.Iteration+1 < len(cur.Iters) {
		cand := cur.clone()
		cand.Iters = cand.Iters[:v.Iteration+1]
		if nv, ok := fails(cand); ok {
			cur, v = cand, nv
		}
	}

	for changed := true; changed && budget > 0; {
		changed = false
		// Drop scheduled restarts and cancellations first: if the failure
		// reproduces without the interruption, the report should say so.
		for i := 0; i < len(cur.Restarts) && budget > 0; i++ {
			cand := cur.clone()
			cand.Restarts = append(cand.Restarts[:i], cand.Restarts[i+1:]...)
			if nv, ok := fails(cand); ok {
				cur, v = cand, nv
				changed = true
				i--
			}
		}
		for i := 0; i < len(cur.Cancels) && budget > 0; i++ {
			cand := cur.clone()
			cand.Cancels = append(cand.Cancels[:i], cand.Cancels[i+1:]...)
			if nv, ok := fails(cand); ok {
				cur, v = cand, nv
				changed = true
				i--
			}
		}
		// Drop whole iterations (keep at least one).
		for i := 0; i < len(cur.Iters) && len(cur.Iters) > 1 && budget > 0; i++ {
			cand := cur.clone()
			cand.Iters = append(cand.Iters[:i], cand.Iters[i+1:]...)
			if nv, ok := fails(cand); ok {
				cur, v = cand, nv
				changed = true
				i--
			}
		}
		// Drop single edits.
		for i := 0; i < len(cur.Iters); i++ {
			for j := 0; j < len(cur.Iters[i]) && budget > 0; j++ {
				cand := cur.clone()
				cand.Iters[i] = append(cand.Iters[i][:j], cand.Iters[i][j+1:]...)
				if nv, ok := fails(cand); ok {
					cur, v = cand, nv
					changed = true
					j--
				}
			}
		}
		// Drop base nodes that nothing references: childless in the base
		// DAG, untouched by any surviving edit, and not the sole output.
		for i := 0; i < len(cur.Base) && len(cur.Base) > 1 && budget > 0; i++ {
			name := cur.Base[i].Name
			if hasChild(cur.Base, name) || editsReference(cur.Iters, name) {
				continue
			}
			if cur.Base[i].Output && countOutputs(cur.Base) == 1 {
				continue
			}
			cand := cur.clone()
			cand.Base = append(cand.Base[:i], cand.Base[i+1:]...)
			if nv, ok := fails(cand); ok {
				cur, v = cand, nv
				changed = true
				i--
			}
		}
		// Splice out interior nodes: children inherit the node's parents
		// (which precede it, so topological order is preserved). This is
		// what lets deep chains collapse.
		for i := 0; i < len(cur.Base) && len(cur.Base) > 1 && budget > 0; i++ {
			name := cur.Base[i].Name
			if editsReference(cur.Iters, name) {
				continue
			}
			if cur.Base[i].Output && countOutputs(cur.Base) == 1 {
				continue
			}
			cand := cur.clone()
			parents := cand.Base[i].Parents
			cand.Base = append(cand.Base[:i], cand.Base[i+1:]...)
			for j := range cand.Base {
				cand.Base[j].Parents = spliceParents(cand.Base[j].Parents, name, parents)
			}
			if nv, ok := fails(cand); ok {
				cur, v = cand, nv
				changed = true
				i--
			}
		}
	}
	return cur, v
}

// spliceParents replaces name in the parent list with repl (deduped,
// order preserved).
func spliceParents(parents []string, name string, repl []string) []string {
	out := make([]string, 0, len(parents)+len(repl))
	for _, p := range parents {
		if p == name {
			out = append(out, repl...)
		} else {
			out = append(out, p)
		}
	}
	return dedupe(out)
}

// editsReference reports whether any edit targets the named node or adds
// a node whose parents include it.
func editsReference(iters [][]Edit, name string) bool {
	for _, edits := range iters {
		for _, e := range edits {
			if e.Node == name {
				return true
			}
			if e.Add != nil {
				for _, p := range e.Add.Parents {
					if p == name {
						return true
					}
				}
			}
		}
	}
	return false
}
