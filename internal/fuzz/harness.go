package fuzz

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"helix"
	"helix/internal/store"
)

// Violation reports one invariant failure observed while running a Case.
type Violation struct {
	Invariant string `json:"invariant"`
	Iteration int    `json:"iteration"`
	Detail    string `json:"detail"`
}

func (v *Violation) String() string {
	return fmt.Sprintf("invariant %s violated at iteration %d: %s", v.Invariant, v.Iteration, v.Detail)
}

// Stats accumulates coverage counters across RunCase calls, so a smoke
// run can assert it actually exercised the interesting planner paths
// (full fingerprint hits in particular) rather than vacuously passing.
type Stats struct {
	Cases      int
	Iterations int
	ColdPlans  int
	Partial    int
	FullHits   int
	// Restarts counts mid-sequence close/reopen cycles executed;
	// Cancels counts mid-run cancellation attempts, of which
	// CancelAborted actually aborted the run (the rest outran the
	// cancellation).
	Restarts      int
	Cancels       int
	CancelAborted int
	// EvictCases counts cases generated in eviction-pressure mode
	// (Config.EvictPressure); Evictions counts manifest keys that
	// disappeared between iterations of budgeted cases — actual slot
	// churn, the behaviour eviction pressure exists to force.
	EvictCases int
	Evictions  int
}

// options lowers the case configuration to session options.
func (c Config) options() ([]helix.Option, error) {
	opts := []helix.Option{helix.WithParallelism(c.Parallelism)}
	switch c.Policy {
	case "opt":
		opts = append(opts, helix.WithPolicy(helix.PolicyOpt))
		if c.BudgetBytes > 0 {
			opts = append(opts, helix.WithStorageBudget(c.BudgetBytes))
		}
	case "always":
		opts = append(opts, helix.WithPolicy(helix.PolicyAlways))
	case "never":
		opts = append(opts, helix.WithPolicy(helix.PolicyNever))
	default:
		return nil, fmt.Errorf("fuzz: unknown policy %q", c.Policy)
	}
	if c.SyncMat {
		opts = append(opts, helix.WithSyncMaterialization(true))
	}
	return opts, nil
}

// oracleThreshold is the OMP threshold the invariant-4 oracle plans
// under. The threshold never reaches the OPT-EXEC-PLAN solve — it only
// steers Algorithm 2's materialization decisions at execution time — but
// it IS part of the plan fingerprint's configuration token, so planning
// with a threshold the subject never uses gives a guaranteed-fresh solve
// over the very same session state (previous DAG, carried statistics,
// store view) without ever aliasing the subject's cache entries. The
// value is within rounding distance of the paper's default 2, so the
// oracle's plan options are semantically identical to the subject's.
const oracleThreshold = 2.000001

// adaptiveSiblingThreshold picks the divergence threshold the adaptive
// sibling (invariant 10) arms: the case's random draw when it made one,
// else a sensitive default — the sibling is always on, so every case
// exercises the monitor's claim protocol even when the generator drew no
// threshold.
func adaptiveSiblingThreshold(c Config) float64 {
	if c.Adaptive > 0 {
		return c.Adaptive
	}
	return 0.25
}

// RunCase executes one fuzz case end to end and checks every invariant
// at every iteration. Six sibling sessions run the same workflow
// sequence — the subject (plan cache on, critical-path scheduling,
// streaming fused execution, binary codec), a cache-off oracle, a
// FIFO-scheduled oracle, a streaming-off oracle, a gob-codec oracle,
// and an adaptive sibling with the mid-run divergence monitor armed —
// and a from-scratch reference evaluation provides
// ground-truth values. The case may also schedule mid-sequence restarts
// (every session closed and reopened) and mid-run cancellations of the
// subject. The returned Violation is nil when every invariant held; err
// reports harness infrastructure failures only. stats may be nil.
func RunCase(ctx context.Context, dir string, c *Case, stats *Stats) (*Violation, error) {
	baseOpts, err := c.Config.options()
	if err != nil {
		return nil, err
	}
	siblings := []struct {
		sub   string
		extra []helix.Option
	}{
		{"subject", nil},
		{"cacheoff", []helix.Option{helix.WithPlanCache(helix.PlanCacheOff)}},
		{"fifo", []helix.Option{helix.WithScheduler(helix.SchedFIFO)}},
		{"streamoff", []helix.Option{helix.WithStreaming(false)}},
		{"gob", []helix.Option{helix.WithCodec(helix.CodecGob)}},
		{"adaptive", []helix.Option{helix.WithAdaptive(adaptiveSiblingThreshold(c.Config))}},
	}
	// Invariant-9 pair: two sessions attached to one shared
	// content-addressed store, running the same sequence as the private
	// siblings. The handle outlives restarts (it is process state, like a
	// real multi-session deployment); the sessions detach and reattach.
	sharedDir := filepath.Join(dir, "shared")
	sharedHandle, err := helix.OpenSharedStore(sharedDir)
	if err != nil {
		return nil, err
	}
	defer sharedHandle.Close()

	sess := make([]*helix.Session, len(siblings))
	var sharedA, sharedB *helix.Session
	openAll := func() error {
		for i, sib := range siblings {
			s, err := helix.Open(filepath.Join(dir, sib.sub),
				append(append([]helix.Option{}, baseOpts...), sib.extra...)...)
			if err != nil {
				return err
			}
			sess[i] = s
		}
		var err error
		if sharedA, err = helix.Open("", append(append([]helix.Option{}, baseOpts...),
			helix.WithSharedStore(sharedHandle), helix.WithTenant("a"))...); err != nil {
			return err
		}
		if sharedB, err = helix.Open("", append(append([]helix.Option{}, baseOpts...),
			helix.WithSharedStore(sharedHandle), helix.WithTenant("b"))...); err != nil {
			return err
		}
		return nil
	}
	closeAll := func() error {
		var first error
		for i, s := range sess {
			if s == nil {
				continue
			}
			if err := s.Close(); err != nil && first == nil {
				first = err
			}
			sess[i] = nil
		}
		for _, sp := range []**helix.Session{&sharedA, &sharedB} {
			if *sp == nil {
				continue
			}
			if err := (*sp).Close(); err != nil && first == nil {
				first = err
			}
			*sp = nil
		}
		return first
	}
	if err := openAll(); err != nil {
		closeAll()
		return nil, err
	}
	defer closeAll()
	restarts := indexSet(c.Restarts)
	cancels := indexSet(c.Cancels)

	if stats != nil {
		stats.Cases++
		if c.Config.EvictPressure {
			stats.EvictCases++
		}
	}
	subjectStoreDir := filepath.Join(dir, "subject")
	mandatorySigs := make(map[string]bool)
	prevManifest := make(map[string]int64)
	var purgedMandatoryCredit int64

	cur := cloneSpecs(c.Base)
	for it, edits := range c.Iters {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		cur = applyEdits(cur, edits)
		wf, err := BuildWorkflow(fmt.Sprintf("fuzz%d", c.Seed), cur)
		if err != nil {
			return nil, err
		}
		viol := func(inv, format string, args ...any) *Violation {
			return &Violation{Invariant: inv, Iteration: it, Detail: fmt.Sprintf(format, args...)}
		}

		// Invariant 6 (restart consistency): close every sibling and
		// reopen on the same directories. The iteration counter and the
		// per-iteration history must survive the round trip.
		if restarts[it] {
			pre := sess[0].History()
			preIter := sess[0].Iteration()
			if err := closeAll(); err != nil {
				return nil, err
			}
			if err := openAll(); err != nil {
				return nil, err
			}
			if stats != nil {
				stats.Restarts++
			}
			if got := sess[0].Iteration(); got != preIter {
				return viol("restart-history", "iteration counter %d after restart, want %d", got, preIter), nil
			}
			post := sess[0].History()
			if len(post) != len(pre) || len(post) != it {
				return viol("restart-history", "history has %d records after restart, want %d (iterations run: %d)",
					len(post), len(pre), it), nil
			}
			for i := range post {
				if post[i].Iteration != i || post[i].Iteration != pre[i].Iteration ||
					post[i].WorkflowName != pre[i].WorkflowName ||
					post[i].StorageBytes != pre[i].StorageBytes {
					return viol("restart-history",
						"history record %d diverged across restart: {iter:%d wf:%q bytes:%d} vs {iter:%d wf:%q bytes:%d}",
						i, post[i].Iteration, post[i].WorkflowName, post[i].StorageBytes,
						pre[i].Iteration, pre[i].WorkflowName, pre[i].StorageBytes), nil
				}
			}
		}
		subject, cacheOff, fifo, streamOff, gobSess, adaptSess := sess[0], sess[1], sess[2], sess[3], sess[4], sess[5]

		// Invariant-4 oracle: a fresh cold solve against the subject's
		// current state, taken BEFORE the run so both see the same
		// previous-iteration DAG, carried statistics, and store contents.
		oracle, oerr := subject.Plan(wf, helix.WithOMPThreshold(oracleThreshold))
		if oerr != nil {
			return viol("run-error", "oracle plan failed: %v", oerr), nil
		}

		var res *helix.Result
		if cancels[it] {
			// Invariant 6 (cancellation): run the subject under a context
			// canceled on the first node lifecycle event. An aborted run
			// must surface a cancellation error, leave the session usable,
			// and not advance the iteration; a run that outruns the
			// cancellation counts as this iteration's run (its plan was
			// solved against the same state the oracle saw).
			if stats != nil {
				stats.Cancels++
			}
			cctx, stop := context.WithCancel(ctx)
			attempt, aerr := subject.Run(cctx, wf, helix.WithObserver(func(ev helix.RunEvent) {
				if _, ok := ev.(helix.NodeEvent); ok {
					stop()
				}
			}))
			stop()
			if aerr == nil {
				res = attempt
			} else {
				if stats != nil {
					stats.CancelAborted++
				}
				if !errors.Is(aerr, context.Canceled) {
					return viol("cancel-error", "canceled run failed with non-cancellation error: %v", aerr), nil
				}
				if got := subject.Iteration(); got != it {
					return viol("cancel-error", "aborted run advanced iteration counter to %d, want %d", got, it), nil
				}
				// The aborted attempt may have materialized retired nodes
				// before the cancellation landed; re-solve the oracle over
				// the store as the attempt left it so invariant 4 compares
				// plans over identical state.
				oracle, oerr = subject.Plan(wf, helix.WithOMPThreshold(oracleThreshold))
				if oerr != nil {
					return viol("run-error", "oracle re-plan after aborted run failed: %v", oerr), nil
				}
				res, err = subject.Run(ctx, wf)
				if err != nil {
					return viol("cancel-error", "run after aborted attempt failed: %v", err), nil
				}
			}
		} else {
			res, err = subject.Run(ctx, wf)
			if err != nil {
				return viol("run-error", "subject run failed: %v", err), nil
			}
		}
		offRes, err := cacheOff.Run(ctx, wf)
		if err != nil {
			return viol("run-error", "cache-off run failed: %v", err), nil
		}
		fifoRes, err := fifo.Run(ctx, wf)
		if err != nil {
			return viol("run-error", "fifo run failed: %v", err), nil
		}
		streamRes, err := streamOff.Run(ctx, wf)
		if err != nil {
			return viol("run-error", "streaming-off run failed: %v", err), nil
		}
		gobRes, err := gobSess.Run(ctx, wf)
		if err != nil {
			return viol("run-error", "gob-codec run failed: %v", err), nil
		}
		adaptRes, err := adaptSess.Run(ctx, wf)
		if err != nil {
			return viol("run-error", "adaptive run failed: %v", err), nil
		}
		if stats != nil {
			stats.Iterations++
			switch res.Plan.Cache {
			case helix.PlanCacheCold:
				stats.ColdPlans++
			case helix.PlanCachePartial:
				stats.Partial++
			case helix.PlanCacheHit:
				stats.FullHits++
			}
		}

		// Invariant 3a: required outputs are never pruned and never
		// missing; 3c: nondeterministic operators are never loaded.
		for _, ns := range cur {
			if !ns.Output {
				continue
			}
			np := res.Plan.ByName(ns.Name)
			if np == nil || np.State == helix.StatePrune {
				return viol("output-pruned", "output %s planned as pruned (plan %v)", ns.Name, res.Plan.Cache), nil
			}
			if v, ok := res.Values[ns.Name]; !ok || v == nil {
				return viol("output-pruned", "output %s missing from Result.Values (state %v)", ns.Name, np.State), nil
			}
		}
		for _, np := range res.Plan.Nodes {
			if np.Live && !np.Node.Deterministic && np.State == helix.StateLoad {
				return viol("nondet-load", "nondeterministic node %s assigned StateLoad", np.Node.Name), nil
			}
		}

		// Invariant 3b: reuse never changes values — every output equals
		// the from-scratch reference evaluation, byte for byte.
		ref := Reference(cur)
		for name, want := range ref {
			if d := valueDiff(res.Values[name], want); d != "" {
				return viol("reuse-correctness", "output %s diverged from reference: %s (plan %v, state %v)",
					name, d, res.Plan.Cache, res.Plan.ByName(name).State), nil
			}
		}

		// Invariant 1: plan-cache transparency — cache-on ≡ cache-off.
		for name := range ref {
			if d := valueDiff(res.Values[name], offRes.Values[name]); d != "" {
				return viol("cache-off-equivalence", "output %s: subject vs cache-off: %s (subject plan %v)",
					name, d, res.Plan.Cache), nil
			}
		}
		// Invariant 2: scheduler equivalence — critical-path ≡ FIFO.
		for name := range ref {
			if d := valueDiff(res.Values[name], fifoRes.Values[name]); d != "" {
				return viol("sched-equivalence", "output %s: critical-path vs fifo: %s", name, d), nil
			}
		}
		// Invariant 7: streaming transparency — fused row-wise execution
		// produces the same bytes as batch execution of the same operators.
		for name := range ref {
			if d := valueDiff(res.Values[name], streamRes.Values[name]); d != "" {
				return viol("stream-equivalence", "output %s: streaming vs batch: %s (subject plan %v)",
					name, d, res.Plan.Cache), nil
			}
		}
		// Invariant 8: codec transparency — values round-tripped through the
		// binary codec equal values round-tripped through gob.
		for name := range ref {
			if d := valueDiff(res.Values[name], gobRes.Values[name]); d != "" {
				return viol("codec-equivalence", "output %s: binary codec vs gob: %s", name, d), nil
			}
		}
		// Invariant 10: adaptive transparency — whatever the divergence
		// monitor did mid-run (corrected estimates, partial re-solves,
		// compute→load swaps, or nothing), the outputs are byte-identical
		// to the adaptive-off subject's.
		for name := range ref {
			if d := valueDiff(res.Values[name], adaptRes.Values[name]); d != "" {
				return viol("adaptive-equivalence", "output %s: adaptive (threshold %g) vs subject: %s (adaptive plan %v)",
					name, adaptiveSiblingThreshold(c.Config), d, adaptRes.Plan.Cache), nil
			}
		}

		// Invariant 9: shared-store transparency and no wasteful
		// recompute. Two sessions attached to one content-addressed store
		// run the same iteration: outputs must stay byte-identical to the
		// private-store reference, and a deterministic live node whose
		// artifact is already published must not be recomputed when
		// loading it is cheaper — with the artifact on disk the solver
		// faces a strict load-vs-compute choice, so Compute with
		// Load < Compute contradicts plan optimality (swap argument).
		runShared := func(who string, s *helix.Session) (*Violation, error) {
			pre, merr := readManifest(sharedDir)
			if merr != nil {
				return nil, merr
			}
			r, rerr := s.Run(ctx, wf)
			if rerr != nil {
				return viol("run-error", "shared session %s run failed: %v", who, rerr), nil
			}
			for name, want := range ref {
				if d := valueDiff(r.Values[name], want); d != "" {
					return viol("shared-equivalence", "output %s: shared session %s vs reference: %s (plan %v)",
						name, who, d, r.Plan.Cache), nil
				}
			}
			for _, np := range r.Plan.Nodes {
				if !np.Live || np.State != helix.StateCompute || !np.Node.Deterministic {
					continue
				}
				if _, ok := pre[np.Node.ChainSignature()]; !ok {
					continue
				}
				if np.Costs.Load < np.Costs.Compute {
					return viol("shared-recompute",
						"shared session %s recomputed %s (compute %.6gs) though its artifact is published and cheaper to load (%.6gs)",
						who, np.Node.Name, np.Costs.Compute, np.Costs.Load), nil
				}
			}
			return nil, nil
		}
		if v, serr := runShared("a", sharedA); v != nil || serr != nil {
			return v, serr
		}
		if v, serr := runShared("b", sharedB); v != nil || serr != nil {
			return v, serr
		}

		// Invariant 4: plan-cache soundness — whatever the cache outcome,
		// the executed plan's decisions equal a fresh solve's.
		if len(res.Plan.Nodes) != len(oracle.Nodes) {
			return viol("plan-cache-soundness", "%d planned nodes vs oracle's %d", len(res.Plan.Nodes), len(oracle.Nodes)), nil
		}
		for _, np := range res.Plan.Nodes {
			o := oracle.ByName(np.Node.Name)
			if o == nil {
				return viol("plan-cache-soundness", "node %s absent from oracle plan", np.Node.Name), nil
			}
			if np.State != o.State || np.Live != o.Live || np.Original != o.Original ||
				np.Output != o.Output || np.MandatoryMat != o.MandatoryMat {
				return viol("plan-cache-soundness",
					"node %s under %v plan: executed {state:%v live:%v orig:%v out:%v mandatory:%v} vs fresh solve {state:%v live:%v orig:%v out:%v mandatory:%v}",
					np.Node.Name, res.Plan.Cache,
					np.State, np.Live, np.Original, np.Output, np.MandatoryMat,
					o.State, o.Live, o.Original, o.Output, o.MandatoryMat), nil
			}
		}

		// Invariant 5: storage-budget compliance (PolicyOpt only; blind
		// policies ignore the budget by design). Mandatory output
		// materializations bypass Algorithm 2, so their bytes sit outside
		// the budget; purging a mandatory entry credits the policy's
		// remaining budget (Release is unconditional), so that credit is
		// allowed for too.
		if c.Config.Policy == "opt" {
			manifest, err := readManifest(subjectStoreDir)
			if err != nil {
				return nil, err
			}
			for key, size := range prevManifest {
				if _, still := manifest[key]; !still {
					if stats != nil {
						stats.Evictions++
					}
					if mandatorySigs[key] {
						purgedMandatoryCredit += size
						delete(mandatorySigs, key)
					}
				}
			}
			for _, np := range res.Plan.Nodes {
				if np.MandatoryMat {
					mandatorySigs[np.Node.ChainSignature()] = true
				}
			}
			var used, mandatory int64
			for key, size := range manifest {
				used += size
				if mandatorySigs[key] {
					mandatory += size
				}
			}
			budget := c.Config.BudgetBytes
			if budget <= 0 {
				budget = helix.DefaultStorageBudget
			}
			if used-mandatory > budget+purgedMandatoryCredit {
				return viol("storage-budget",
					"store holds %d B (%d B mandatory) against budget %d B + %d B purged-mandatory credit",
					used, mandatory, budget, purgedMandatoryCredit), nil
			}
			prevManifest = manifest
		}
	}
	return nil, nil
}

// indexSet lowers an iteration-index list to a membership set;
// out-of-range entries are inert by construction.
func indexSet(ints []int) map[int]bool {
	m := make(map[int]bool, len(ints))
	for _, i := range ints {
		m[i] = true
	}
	return m
}

// valueDiff compares two output values by their gob encoding (the same
// bytes a materialization would store); empty string means equal.
func valueDiff(got, want any) string {
	gb, gerr := store.Encode(got)
	wb, werr := store.Encode(want)
	if gerr != nil || werr != nil {
		return fmt.Sprintf("encode error (got: %v, want: %v)", gerr, werr)
	}
	if !bytes.Equal(gb, wb) {
		return fmt.Sprintf("%d-byte value != %d-byte expectation (got %.6v want %.6v)", len(gb), len(wb), got, want)
	}
	return ""
}

// readManifest snapshots the store's on-disk manifest as chain-signature
// → size. After Session.Run returns, the write-behind barrier has
// flushed the manifest, so this is the authoritative post-iteration
// usage — without reaching into the live session's store.
func readManifest(dir string) (map[string]int64, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]int64{}, nil
		}
		return nil, err
	}
	var entries []store.Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("fuzz: parse %s manifest: %w", dir, err)
	}
	m := make(map[string]int64, len(entries))
	for _, e := range entries {
		m[e.Key] = e.Size
	}
	return m, nil
}

// Options configures a fuzz run.
type Options struct {
	// Seed seeds the case-seed stream; each case derives its own seed,
	// which is what a failure report prints.
	Seed int64
	// Cases is the number of generated cases to run (default 100).
	Cases int
	// Corpus, when non-empty, receives the minimized failing case as
	// JSON for the regression corpus.
	Corpus string
	// ShrinkBudget bounds the number of candidate executions the
	// shrinker may spend (default 150).
	ShrinkBudget int
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
	// Stats, when non-nil, accumulates coverage counters.
	Stats *Stats
}

// Failure describes the first failing case of a run: the generating
// seed, the violation, the original and minimized cases, and where the
// corpus entry landed.
type Failure struct {
	CaseSeed   int64
	Violation  *Violation
	Case       *Case
	Minimized  *Case
	CorpusFile string
}

func (f *Failure) String() string {
	return fmt.Sprintf("case seed %d: %s (minimized to %d nodes+edits; reproduce with: go run ./cmd/helixfuzz -case-seed %d)",
		f.CaseSeed, f.Violation, f.Minimized.size(), f.CaseSeed)
}

// Run generates and executes o.Cases random cases. It stops at the
// first invariant violation, shrinks the case to a local minimum,
// writes it to the corpus, and returns the Failure; a clean sweep
// returns (nil, nil). err is reserved for harness infrastructure
// problems.
func Run(ctx context.Context, o Options) (*Failure, error) {
	if o.Cases <= 0 {
		o.Cases = 100
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 150
	}
	logf := o.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(o.Seed))
	for i := 0; i < o.Cases; i++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		caseSeed := rng.Int63()
		c := Generate(caseSeed)
		v, err := runInTemp(ctx, c, o.Stats)
		if err != nil {
			return nil, fmt.Errorf("fuzz: case %d (seed %d): %w", i, caseSeed, err)
		}
		if v == nil {
			if (i+1)%50 == 0 {
				logf("fuzz: %d/%d cases clean", i+1, o.Cases)
			}
			continue
		}
		logf("fuzz: case %d (seed %d) FAILED: %s", i, caseSeed, v)
		min, minV := Shrink(ctx, c, v, o.ShrinkBudget)
		logf("fuzz: minimized %d → %d nodes+edits", c.size(), min.size())
		f := &Failure{CaseSeed: caseSeed, Violation: minV, Case: c, Minimized: min}
		if o.Corpus != "" {
			path, werr := WriteCorpus(o.Corpus, min, minV)
			if werr != nil {
				return f, werr
			}
			f.CorpusFile = path
		}
		return f, nil
	}
	return nil, nil
}

// runInTemp runs one case in a throwaway directory.
func runInTemp(ctx context.Context, c *Case, stats *Stats) (*Violation, error) {
	dir, err := os.MkdirTemp("", "helixfuzz-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	return RunCase(ctx, dir, c, stats)
}

// corpusEntry is the JSON schema of a corpus file. Violation records
// what the case caught when it was written (nil for seed entries that
// document known-good behavior).
type corpusEntry struct {
	Violation *Violation `json:"violation"`
	Case      *Case      `json:"case"`
}

// WriteCorpus writes the (minimized) case into dir as a regression
// corpus entry and returns the file path.
func WriteCorpus(dir string, c *Case, v *Violation) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(corpusEntry{Violation: v, Case: c}, "", "  ")
	if err != nil {
		return "", err
	}
	tag := "seed"
	if v != nil {
		tag = v.Invariant
	}
	name := fmt.Sprintf("case-%d-%s.json", c.Seed, tag)
	path := filepath.Join(dir, name)
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// Replay loads a corpus file and re-runs its case, returning whatever
// violation it produces now (nil = the invariants hold again).
func Replay(ctx context.Context, path string) (*Violation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e corpusEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("fuzz: parse corpus file %s: %w", path, err)
	}
	if e.Case == nil {
		return nil, fmt.Errorf("fuzz: corpus file %s has no case", path)
	}
	return runInTemp(ctx, e.Case, nil)
}
