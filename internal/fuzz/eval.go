package fuzz

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"

	"helix"
)

func init() {
	// Every fuzz operator produces a []float64; register it once so
	// materializations gob-encode and reload across the harness sessions.
	helix.RegisterType([]float64(nil))
}

// EvalNode is the single arithmetic definition of every fuzz operator:
// both the workflow closures and the from-scratch reference evaluator
// call it, so matching results are bitwise-identical floats and any
// divergence observed by the harness is the engine's doing (a stale
// load, a wrong input, a corrupted plan) — never a modeling gap.
//
// The value is a deterministic function of (name, op, param, inputs).
// Nil or empty inputs are skipped: a deliberately corrupted plan (the
// injected-bug test) can hand children of pruned parents nil inputs, and
// the harness must observe the wrong value rather than crash.
//
// The opcode picks the vector width (16/32/64 → varied materialization
// sizes) and the busy-work weight (0–1.2M float ops, i.e. roughly
// 0–2 ms), so the solver faces genuine load-vs-compute trade-offs: the
// store estimates ~1 ms per load, making heavy operators worth loading
// and light ones worth recomputing.
func EvalNode(name string, op, param int, inputs [][]float64) []float64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	x := h.Sum64() ^ uint64(int64(op))*0x9E3779B97F4A7C15 ^ uint64(int64(param))*0xBF58476D1CE4E5B9
	v := make([]float64, 16<<(((op%3)+3)%3))
	for i := range v {
		x = x*6364136223846793005 + 1442695040888963407
		v[i] = float64(x>>40) * 1e-6
	}
	for k, in := range inputs {
		if len(in) == 0 {
			continue
		}
		w := 0.25 + float64(k+1)*1e-3
		for i := range v {
			v[i] = v[i]*0.75 + in[i%len(in)]*w
		}
	}
	v[0] += float64(param)
	s := 1.0
	for i := busyIters(op); i > 0; i-- {
		s = s*1.0000000001 + 1e-12
	}
	v[len(v)-1] += s * 1e-9
	return v
}

// busyIters maps the opcode to its busy-work weight.
func busyIters(op int) int { return (((op % 4) + 4) % 4) * 400000 }

// streamNode reports whether a spec executes as a streaming row-wise
// operator. The guards mirror what the engine can fuse (one parent,
// deterministic); anything else falls back to the batch Kind — in
// BuildWorkflow and Reference alike, so shrunk or hand-edited cases
// remain self-consistent.
func streamNode(ns NodeSpec) bool {
	if ns.Nondet || len(ns.Parents) != 1 {
		return false
	}
	switch ns.Stream {
	case "map", "filter", "flatmap":
		return true
	}
	return false
}

// streamConsts derives a streaming operator's per-row transform
// constants from (name, op, param) — the same inputs that parameterize
// EvalNode, so a param bump deprecates a streaming node exactly like a
// batch one.
func streamConsts(name string, op, param int) (a, b float64) {
	h := fnv.New64a()
	h.Write([]byte(name))
	x := h.Sum64() ^ uint64(int64(op))*0x9E3779B97F4A7C15 ^ uint64(int64(param))*0xBF58476D1CE4E5B9
	a = 0.75 + float64(x>>44)*1e-6
	b = float64((x>>24)&0xFFFFF) * 1e-5
	return a, b
}

// keepRow is the filter predicate: a deterministic ~70% keep rate over
// the transformed row.
func keepRow(x, a, b float64) bool {
	_, frac := math.Modf(math.Abs(x*a + b))
	return frac < 0.7
}

// flatWidth is a flatmap's expansion factor (1–3 rows per input row).
func flatWidth(op int) int { return ((op%3)+3)%3 + 1 }

// StreamEval is the reference semantics of one streaming operator over
// its parent's full vector: the exact per-row arithmetic the workflow
// closures in BuildWorkflow perform, applied eagerly. An empty input
// yields nil, matching the engine's materialization boundary
// byte-for-byte under encoding.
func StreamEval(name, stream string, op, param int, in []float64) []float64 {
	a, b := streamConsts(name, op, param)
	var out []float64
	for _, x := range in {
		switch stream {
		case "map":
			out = append(out, x*a+b)
		case "filter":
			if keepRow(x, a, b) {
				out = append(out, x)
			}
		case "flatmap":
			for j := 0; j < flatWidth(op); j++ {
				out = append(out, x*a+b*float64(j))
			}
		}
	}
	return out
}

// BuildWorkflow lowers a node list into a helix Workflow whose operator
// bodies all call EvalNode. Parents must precede children in the list
// (applyEdits and the generator maintain this).
func BuildWorkflow(name string, nodes []NodeSpec) (*helix.Workflow, error) {
	wf := helix.New(name)
	ops := make(map[string]*helix.Op, len(nodes))
	for _, ns := range nodes {
		spec := ns
		fn := func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			vals := make([][]float64, len(in))
			for i, v := range in {
				if f, ok := v.([]float64); ok {
					vals[i] = f
				}
			}
			return EvalNode(spec.Name, spec.Op, spec.Param, vals), nil
		}
		parents := make([]*helix.Op, len(ns.Parents))
		for i, p := range ns.Parents {
			parent, ok := ops[p]
			if !ok {
				return nil, fmt.Errorf("fuzz: node %s references unknown parent %s", ns.Name, p)
			}
			parents[i] = parent
		}
		params := fmt.Sprintf("op=%d v=%d", ns.Op, ns.Param)
		if streamNode(spec) {
			// Streaming declaration: the per-row closures perform the
			// exact arithmetic StreamEval applies eagerly in the
			// reference evaluator.
			params += " stream=" + spec.Stream
			a, b := streamConsts(spec.Name, spec.Op, spec.Param)
			var op *helix.Op
			switch spec.Stream {
			case "map":
				op = helix.MapRows(wf, spec.Name, params,
					func(x float64) float64 { return x*a + b }, parents[0])
			case "filter":
				op = helix.FilterRows(wf, spec.Name, params,
					func(x float64) bool { return keepRow(x, a, b) }, parents[0])
			case "flatmap":
				w := flatWidth(spec.Op)
				op = helix.FlatMapRows(wf, spec.Name, params,
					func(x float64) []float64 {
						out := make([]float64, w)
						for j := range out {
							out[j] = x*a + b*float64(j)
						}
						return out
					}, parents[0])
			}
			if spec.Output {
				op.IsOutput()
			}
			ops[spec.Name] = op
			continue
		}
		var op *helix.Op
		switch ns.Kind {
		case "source":
			op = wf.Source(ns.Name, params, fn)
		case "scanner":
			op = wf.Scanner(ns.Name, params, fn, parents...)
		case "extractor":
			op = wf.Extractor(ns.Name, params, fn, parents...)
		case "synthesizer":
			op = wf.Synthesizer(ns.Name, params, fn, parents...)
		case "learner":
			op = wf.Learner(ns.Name, params, fn, parents...)
		case "reducer":
			op = wf.Reducer(ns.Name, params, fn, parents...)
		default:
			return nil, fmt.Errorf("fuzz: node %s has unknown kind %q", ns.Name, ns.Kind)
		}
		if ns.Output {
			op.IsOutput()
		}
		if ns.Nondet {
			op.Nondeterministic()
		}
		ops[ns.Name] = op
	}
	return wf, nil
}

// Reference evaluates the workflow from scratch — no engine, no store,
// no planner — and returns the value of every declared output. This is
// the ground truth for the reuse-correctness invariant: whatever mix of
// computing and loading the session chose, its outputs must equal this.
func Reference(nodes []NodeSpec) map[string][]float64 {
	byName := make(map[string]NodeSpec, len(nodes))
	for _, ns := range nodes {
		byName[ns.Name] = ns
	}
	memo := make(map[string][]float64, len(nodes))
	var eval func(name string) []float64
	eval = func(name string) []float64 {
		if v, ok := memo[name]; ok {
			return v
		}
		ns := byName[name]
		var v []float64
		if streamNode(ns) {
			v = StreamEval(ns.Name, ns.Stream, ns.Op, ns.Param, eval(ns.Parents[0]))
		} else {
			ins := make([][]float64, len(ns.Parents))
			for i, p := range ns.Parents {
				ins[i] = eval(p)
			}
			v = EvalNode(ns.Name, ns.Op, ns.Param, ins)
		}
		memo[name] = v
		return v
	}
	out := make(map[string][]float64)
	for _, ns := range nodes {
		if ns.Output {
			out[ns.Name] = eval(ns.Name)
		}
	}
	return out
}
