package fuzz

import (
	"context"
	"fmt"
	"hash/fnv"

	"helix"
)

func init() {
	// Every fuzz operator produces a []float64; register it once so
	// materializations gob-encode and reload across the harness sessions.
	helix.RegisterType([]float64(nil))
}

// EvalNode is the single arithmetic definition of every fuzz operator:
// both the workflow closures and the from-scratch reference evaluator
// call it, so matching results are bitwise-identical floats and any
// divergence observed by the harness is the engine's doing (a stale
// load, a wrong input, a corrupted plan) — never a modeling gap.
//
// The value is a deterministic function of (name, op, param, inputs).
// Nil or empty inputs are skipped: a deliberately corrupted plan (the
// injected-bug test) can hand children of pruned parents nil inputs, and
// the harness must observe the wrong value rather than crash.
//
// The opcode picks the vector width (16/32/64 → varied materialization
// sizes) and the busy-work weight (0–1.2M float ops, i.e. roughly
// 0–2 ms), so the solver faces genuine load-vs-compute trade-offs: the
// store estimates ~1 ms per load, making heavy operators worth loading
// and light ones worth recomputing.
func EvalNode(name string, op, param int, inputs [][]float64) []float64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	x := h.Sum64() ^ uint64(int64(op))*0x9E3779B97F4A7C15 ^ uint64(int64(param))*0xBF58476D1CE4E5B9
	v := make([]float64, 16<<(((op%3)+3)%3))
	for i := range v {
		x = x*6364136223846793005 + 1442695040888963407
		v[i] = float64(x>>40) * 1e-6
	}
	for k, in := range inputs {
		if len(in) == 0 {
			continue
		}
		w := 0.25 + float64(k+1)*1e-3
		for i := range v {
			v[i] = v[i]*0.75 + in[i%len(in)]*w
		}
	}
	v[0] += float64(param)
	s := 1.0
	for i := busyIters(op); i > 0; i-- {
		s = s*1.0000000001 + 1e-12
	}
	v[len(v)-1] += s * 1e-9
	return v
}

// busyIters maps the opcode to its busy-work weight.
func busyIters(op int) int { return (((op % 4) + 4) % 4) * 400000 }

// BuildWorkflow lowers a node list into a helix Workflow whose operator
// bodies all call EvalNode. Parents must precede children in the list
// (applyEdits and the generator maintain this).
func BuildWorkflow(name string, nodes []NodeSpec) (*helix.Workflow, error) {
	wf := helix.New(name)
	ops := make(map[string]*helix.Op, len(nodes))
	for _, ns := range nodes {
		spec := ns
		fn := func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			vals := make([][]float64, len(in))
			for i, v := range in {
				if f, ok := v.([]float64); ok {
					vals[i] = f
				}
			}
			return EvalNode(spec.Name, spec.Op, spec.Param, vals), nil
		}
		parents := make([]*helix.Op, len(ns.Parents))
		for i, p := range ns.Parents {
			parent, ok := ops[p]
			if !ok {
				return nil, fmt.Errorf("fuzz: node %s references unknown parent %s", ns.Name, p)
			}
			parents[i] = parent
		}
		params := fmt.Sprintf("op=%d v=%d", ns.Op, ns.Param)
		var op *helix.Op
		switch ns.Kind {
		case "source":
			op = wf.Source(ns.Name, params, fn)
		case "scanner":
			op = wf.Scanner(ns.Name, params, fn, parents...)
		case "extractor":
			op = wf.Extractor(ns.Name, params, fn, parents...)
		case "synthesizer":
			op = wf.Synthesizer(ns.Name, params, fn, parents...)
		case "learner":
			op = wf.Learner(ns.Name, params, fn, parents...)
		case "reducer":
			op = wf.Reducer(ns.Name, params, fn, parents...)
		default:
			return nil, fmt.Errorf("fuzz: node %s has unknown kind %q", ns.Name, ns.Kind)
		}
		if ns.Output {
			op.IsOutput()
		}
		if ns.Nondet {
			op.Nondeterministic()
		}
		ops[ns.Name] = op
	}
	return wf, nil
}

// Reference evaluates the workflow from scratch — no engine, no store,
// no planner — and returns the value of every declared output. This is
// the ground truth for the reuse-correctness invariant: whatever mix of
// computing and loading the session chose, its outputs must equal this.
func Reference(nodes []NodeSpec) map[string][]float64 {
	byName := make(map[string]NodeSpec, len(nodes))
	for _, ns := range nodes {
		byName[ns.Name] = ns
	}
	memo := make(map[string][]float64, len(nodes))
	var eval func(name string) []float64
	eval = func(name string) []float64 {
		if v, ok := memo[name]; ok {
			return v
		}
		ns := byName[name]
		ins := make([][]float64, len(ns.Parents))
		for i, p := range ns.Parents {
			ins[i] = eval(p)
		}
		v := EvalNode(ns.Name, ns.Op, ns.Param, ins)
		memo[name] = v
		return v
	}
	out := make(map[string][]float64)
	for _, ns := range nodes {
		if ns.Output {
			out[ns.Name] = eval(ns.Name)
		}
	}
	return out
}
