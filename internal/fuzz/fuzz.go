// Package fuzz is the property-based harness for the HELIX reproduction:
// deterministic, seed-driven generation of random workflow DAGs, random
// iteration-to-iteration edit sequences, and random session
// configurations, each executed through a real Session and cross-checked
// against independent oracles.
//
// Ten invariants are enforced on every generated case:
//
//  1. Plan-cache transparency — a session planning through the
//     fingerprint cache produces byte-for-byte the same output values as
//     a cache-off session solving from scratch every iteration.
//  2. Scheduler equivalence — critical-path ready ordering and FIFO
//     ordering produce identical output values.
//  3. Reuse correctness and output liveness — a declared output is never
//     pruned and never missing, and every output value equals a
//     from-scratch reference evaluation of the workflow (so loading a
//     materialized result never changes a value). Nondeterministic
//     operators are additionally never assigned the Load state (Def 3).
//  4. Plan-cache soundness — the plan an iteration executes (cold,
//     partial, or full fingerprint hit) assigns every node the same
//     state, liveness, originality, and mandatory-materialization flag
//     as a fresh solve over the same session state.
//  5. Storage-budget compliance — under PolicyOpt the bytes held by the
//     store after a run's write-behind barrier, minus mandatory output
//     materializations (which bypass Algorithm 2 by design), never
//     exceed the configured budget plus the credit released by purged
//     mandatory entries.
//  6. Restart consistency — closing every session mid-sequence and
//     reopening on the same directories preserves the iteration counter
//     and the per-iteration history records (introspection survives a
//     process restart), and subsequent iterations still satisfy every
//     other invariant. Mid-run context cancellation must fail the run
//     with a cancellation error, leave the session usable, and never
//     advance the iteration counter.
//  7. Streaming transparency — a session executing fused streaming
//     runs produces byte-for-byte the same output values as a
//     WithStreaming(false) session running every operator in batch.
//  8. Codec transparency — a session storing artifacts with the binary
//     columnar codec produces byte-for-byte the same output values as a
//     WithCodec(CodecGob) session.
//  9. Shared-store transparency — two sessions attached to one shared
//     content-addressed store produce outputs byte-identical to the
//     private-store reference, and neither recomputes a deterministic
//     node whose artifact is already published when loading it is
//     cheaper than recomputing (plan optimality's swap argument).
//  10. Adaptive transparency — a session running with the mid-run
//     divergence monitor armed (WithAdaptive, at the case's random
//     threshold) produces byte-for-byte the same output values as the
//     adaptive-off siblings, whether or not any re-plan or
//     compute→load swap fired mid-run.
//
// A failing case is shrunk to a local minimum (dropping iterations,
// edits, restarts, cancellations, and DAG nodes while the same
// invariant still fails), reported
// with its generating seed, and written as JSON into a corpus directory
// so it can be replayed as a regression test (testdata/fuzz at the repo
// root). Everything is reproducible: Generate is a pure function of the
// case seed.
package fuzz

import (
	"fmt"
	"math/rand"
)

// NodeSpec declares one operator of a generated workflow. Parents are
// node names (not indices) so the shrinker can drop nodes without
// remapping references.
type NodeSpec struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"` // source|scanner|extractor|synthesizer|learner|reducer
	Parents []string `json:"parents,omitempty"`
	Op      int      `json:"op"`    // opcode: selects vector width and busy-work cost
	Param   int      `json:"param"` // tunable parameter; bumping it deprecates the node
	Output  bool     `json:"output,omitempty"`
	Nondet  bool     `json:"nondet,omitempty"`
	// Stream declares a row-wise streaming operator: "map", "filter", or
	// "flatmap". Effective only with exactly one parent and Nondet false
	// (fusion requires determinism); otherwise the node falls back to its
	// batch Kind — deterministically, in BuildWorkflow and Reference
	// alike, so shrunk or hand-edited cases stay self-consistent.
	Stream string `json:"stream,omitempty"`
}

// Edit is one mutation applied to the workflow at the start of an
// iteration. Invalid edits (removing a node with children, toggling off
// the sole output, …) are skipped as no-ops — deterministically, so a
// recorded case replays identically.
type Edit struct {
	Op   string    `json:"op"` // bump|add|remove|toggle
	Node string    `json:"node,omitempty"`
	Add  *NodeSpec `json:"add,omitempty"`
}

// Config is the session configuration a case runs under.
type Config struct {
	Policy      string `json:"policy"` // opt|always|never
	BudgetBytes int64  `json:"budget_bytes,omitempty"`
	Parallelism int    `json:"parallelism"`
	SyncMat     bool   `json:"sync_mat,omitempty"`
	// EvictPressure marks a case whose budget was drawn deliberately
	// below a handful of entries (512–1535 B against ~150–600 B values),
	// so Algorithm 2 must constantly evict to admit: every admission
	// churns a slot, exercising invariant 5's purge-credit accounting
	// and the store's delete-under-load paths instead of the steady
	// state where the budget is merely tight.
	EvictPressure bool `json:"evict_pressure,omitempty"`
	// Adaptive is the divergence threshold the adaptive sibling session
	// arms (invariant 10). It never applies to the subject or the other
	// oracles; 0 means the case drew no threshold and the sibling runs at
	// a sensitive default instead, so the invariant is always exercised.
	Adaptive float64 `json:"adaptive,omitempty"`
}

// Case is one complete fuzz scenario: a base DAG, an edit list per
// iteration (empty = rerun unchanged), and a configuration. A Case is a
// pure function of its seed (Generate), and serializes to JSON for the
// regression corpus.
type Case struct {
	Seed   int64      `json:"seed"`
	Config Config     `json:"config"`
	Base   []NodeSpec `json:"base"`
	Iters  [][]Edit   `json:"iters"`
	// Restarts lists iteration indices before which every sibling
	// session is closed and reopened on its directory, exercising
	// persisted-state resumption mid-sequence. Out-of-range entries are
	// inert (shrinking may truncate Iters).
	Restarts []int `json:"restarts,omitempty"`
	// Cancels lists iteration indices at which the subject first
	// attempts the run under a context canceled mid-flight (on the first
	// node lifecycle event). A run that fails must leave the session
	// usable; one that outruns the cancellation counts as the
	// iteration's run.
	Cancels []int `json:"cancels,omitempty"`
}

// clone deep-copies the case so shrink candidates never alias.
func (c *Case) clone() *Case {
	out := &Case{Seed: c.Seed, Config: c.Config}
	out.Restarts = append([]int(nil), c.Restarts...)
	out.Cancels = append([]int(nil), c.Cancels...)
	out.Base = cloneSpecs(c.Base)
	out.Iters = make([][]Edit, len(c.Iters))
	for i, edits := range c.Iters {
		out.Iters[i] = make([]Edit, len(edits))
		for j, e := range edits {
			out.Iters[i][j] = e
			if e.Add != nil {
				add := *e.Add
				add.Parents = append([]string(nil), e.Add.Parents...)
				out.Iters[i][j].Add = &add
			}
		}
	}
	return out
}

// size is the shrink metric: total declared nodes plus edits plus
// restart/cancel injections.
func (c *Case) size() int {
	n := len(c.Base) + len(c.Restarts) + len(c.Cancels)
	for _, edits := range c.Iters {
		n += len(edits)
	}
	return n
}

func cloneSpecs(specs []NodeSpec) []NodeSpec {
	out := make([]NodeSpec, len(specs))
	for i, ns := range specs {
		out[i] = ns
		out[i].Parents = append([]string(nil), ns.Parents...)
	}
	return out
}

func countOutputs(nodes []NodeSpec) int {
	n := 0
	for _, ns := range nodes {
		if ns.Output {
			n++
		}
	}
	return n
}

func hasChild(nodes []NodeSpec, name string) bool {
	for _, ns := range nodes {
		for _, p := range ns.Parents {
			if p == name {
				return true
			}
		}
	}
	return false
}

func findSpec(nodes []NodeSpec, name string) int {
	for i, ns := range nodes {
		if ns.Name == name {
			return i
		}
	}
	return -1
}

// applyEdits folds one iteration's edits into the node list, returning a
// fresh slice. Invalid edits are skipped; the same rules run at
// generation time and at replay time, so a Case means the same DAG
// sequence everywhere.
func applyEdits(nodes []NodeSpec, edits []Edit) []NodeSpec {
	cur := cloneSpecs(nodes)
	for _, e := range edits {
		switch e.Op {
		case "bump":
			if i := findSpec(cur, e.Node); i >= 0 {
				cur[i].Param++
			}
		case "add":
			if e.Add == nil || findSpec(cur, e.Add.Name) >= 0 {
				continue
			}
			ok := true
			for _, p := range e.Add.Parents {
				if findSpec(cur, p) < 0 {
					ok = false
					break
				}
			}
			if !ok || (e.Add.Kind == "source") != (len(e.Add.Parents) == 0) {
				continue
			}
			add := *e.Add
			add.Parents = append([]string(nil), e.Add.Parents...)
			cur = append(cur, add)
		case "remove":
			i := findSpec(cur, e.Node)
			if i < 0 || hasChild(cur, e.Node) {
				continue
			}
			if cur[i].Output && countOutputs(cur) == 1 {
				continue
			}
			cur = append(cur[:i], cur[i+1:]...)
		case "toggle":
			i := findSpec(cur, e.Node)
			if i < 0 {
				continue
			}
			if cur[i].Output && countOutputs(cur) == 1 {
				continue
			}
			cur[i].Output = !cur[i].Output
		}
	}
	return cur
}

// Generate derives a complete Case from a seed: DAG shape (chain,
// layered fan-out, diamond, or two disconnected components), operator
// mix with ~15% nondeterministic nodes and a biased sprinkling of
// streaming row-wise operators (biased to chain so fusible runs of ≥ 2
// appear), 2–6 iterations of edits with ~40% deliberate no-op
// iterations (consecutive quiet iterations are what drives the plan
// cache to full fingerprint hits), mid-sequence session restarts and
// mid-run cancellations, and a configuration drawn from policy × budget
// × parallelism × materialization mode.
func Generate(seed int64) *Case {
	rng := rand.New(rand.NewSource(seed))
	c := &Case{Seed: seed, Config: genConfig(rng)}
	c.Base = genDAG(rng)
	iters := 2 + rng.Intn(5)
	cur := cloneSpecs(c.Base)
	added := 0
	for i := 0; i < iters; i++ {
		var edits []Edit
		if rng.Float64() >= 0.40 {
			n := 1 + rng.Intn(2)
			for j := 0; j < n; j++ {
				e := genEdit(rng, cur, &added)
				edits = append(edits, e)
				cur = applyEdits(cur, []Edit{e})
			}
		}
		c.Iters = append(c.Iters, edits)
	}
	if rng.Float64() < 0.30 {
		c.Restarts = []int{rng.Intn(iters)}
	}
	if rng.Float64() < 0.25 {
		c.Cancels = []int{rng.Intn(iters)}
	}
	return c
}

func genConfig(rng *rand.Rand) Config {
	cfg := Config{
		Parallelism: []int{1, 2, 4}[rng.Intn(3)],
		SyncMat:     rng.Float64() < 0.3,
	}
	if rng.Float64() < 0.5 {
		// Random divergence thresholds spanning hair-trigger (every timing
		// wobble re-plans) to lax (only a gross skew would); either way the
		// adaptive sibling's outputs must stay byte-identical.
		cfg.Adaptive = 0.05 + 1.95*rng.Float64()
	}
	switch p := rng.Float64(); {
	case p < 0.25:
		cfg.Policy = "always"
	case p < 0.50:
		cfg.Policy = "never"
	default:
		cfg.Policy = "opt"
		if rng.Float64() < 0.5 {
			// A deliberately tight budget (4–64 KiB against ~150–600 B
			// entries) so Algorithm 2 actually declines materializations.
			cfg.BudgetBytes = int64(4<<10 + rng.Intn(60<<10))
		}
	}
	if rng.Float64() < 0.15 {
		// Eviction pressure overrides the draw above: force the budgeted
		// policy with a budget of one-to-three entries.
		cfg.EvictPressure = true
		cfg.Policy = "opt"
		cfg.BudgetBytes = int64(512 + rng.Intn(1024))
	}
	return cfg
}

// DAG shapes; scatter builds two disconnected components.
const (
	shapeChain = iota
	shapeLayered
	shapeDiamond
	shapeScatter
)

func genDAG(rng *rand.Rand) []NodeSpec {
	n := 3 + rng.Intn(12)
	shape := rng.Intn(4)
	second := n / 2 // root of the second component under shapeScatter
	nodes := make([]NodeSpec, 0, n)
	for i := 0; i < n; i++ {
		ns := NodeSpec{Name: fmt.Sprintf("n%d", i), Op: rng.Intn(8), Param: 1}
		if i == 0 || (shape == shapeScatter && i == second) {
			ns.Kind = "source"
		} else {
			ns.Kind = pickKind(rng)
			ns.Parents = pickParents(rng, shape, i, second)
			ns.Nondet = rng.Float64() < 0.15
			// Streaming nodes, biased to extend an existing streaming
			// parent so generated DAGs contain fusible runs of length ≥ 2.
			p := 0.25
			if j := findSpec(nodes, ns.Parents[0]); j >= 0 && nodes[j].Stream != "" {
				p = 0.60
			}
			if rng.Float64() < p {
				makeStream(rng, &ns)
			}
		}
		nodes = append(nodes, ns)
	}
	// Sinks become outputs with high probability; interior nodes rarely.
	for i := range nodes {
		p := 0.08
		if !hasChild(nodes, nodes[i].Name) {
			p = 0.85
		}
		if rng.Float64() < p {
			nodes[i].Output = true
		}
	}
	if countOutputs(nodes) == 0 {
		nodes[len(nodes)-1].Output = true
	}
	return nodes
}

// makeStream turns a drafted node into a streaming row-wise operator:
// exactly one parent, deterministic, with the batch Kind matched to the
// streaming declaration (extractor for map/filter, scanner for flatmap)
// for the fallback path.
func makeStream(rng *rand.Rand, ns *NodeSpec) {
	ns.Parents = ns.Parents[:1]
	ns.Nondet = false
	ns.Stream = []string{"map", "filter", "flatmap"}[rng.Intn(3)]
	if ns.Stream == "flatmap" {
		ns.Kind = "scanner"
	} else {
		ns.Kind = "extractor"
	}
}

func pickKind(rng *rand.Rand) string {
	switch p := rng.Float64(); {
	case p < 0.20:
		return "scanner"
	case p < 0.55:
		return "extractor"
	case p < 0.75:
		return "synthesizer"
	case p < 0.90:
		return "learner"
	default:
		return "reducer"
	}
}

// pickParents chooses parent names (all from indices < i, so the list is
// topologically ordered by construction) according to the shape bias.
func pickParents(rng *rand.Rand, shape, i, second int) []string {
	lo, hi := 0, i // candidate index range [lo, hi)
	if shape == shapeScatter && i > second {
		lo = second // second component: parents only from its own root on
	}
	pick := func(j int) string { return fmt.Sprintf("n%d", j) }
	var parents []string
	switch shape {
	case shapeChain:
		parents = append(parents, pick(i-1))
		if i >= 2 && rng.Float64() < 0.2 {
			parents = append(parents, pick(rng.Intn(i-1)))
		}
	case shapeLayered:
		k := 1 + rng.Intn(3)
		base := lo
		if i-4 > base {
			base = i - 4
		}
		for j := 0; j < k; j++ {
			parents = append(parents, pick(base+rng.Intn(hi-base)))
		}
	case shapeDiamond:
		parents = append(parents, pick(i-1))
		if i >= 2 && rng.Float64() < 0.6 {
			parents = append(parents, pick(i-2))
		}
	case shapeScatter:
		k := 1 + rng.Intn(2)
		for j := 0; j < k; j++ {
			parents = append(parents, pick(lo+rng.Intn(hi-lo)))
		}
	}
	return dedupe(parents)
}

func dedupe(names []string) []string {
	seen := make(map[string]bool, len(names))
	out := names[:0]
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func genEdit(rng *rand.Rand, cur []NodeSpec, added *int) Edit {
	switch p := rng.Float64(); {
	case p < 0.45:
		return Edit{Op: "bump", Node: cur[rng.Intn(len(cur))].Name}
	case p < 0.65:
		*added++
		ns := NodeSpec{
			Name:   fmt.Sprintf("a%d", *added),
			Kind:   pickKind(rng),
			Op:     rng.Intn(8),
			Param:  1,
			Output: rng.Float64() < 0.3,
			Nondet: rng.Float64() < 0.1,
		}
		k := 1 + rng.Intn(2)
		for j := 0; j < k; j++ {
			ns.Parents = append(ns.Parents, cur[rng.Intn(len(cur))].Name)
		}
		ns.Parents = dedupe(ns.Parents)
		if rng.Float64() < 0.3 {
			makeStream(rng, &ns)
		}
		return Edit{Op: "add", Add: &ns}
	case p < 0.82:
		return Edit{Op: "toggle", Node: cur[rng.Intn(len(cur))].Name}
	default:
		var cands []string
		for _, ns := range cur {
			if hasChild(cur, ns.Name) {
				continue
			}
			if ns.Output && countOutputs(cur) == 1 {
				continue
			}
			cands = append(cands, ns.Name)
		}
		if len(cands) == 0 {
			return Edit{Op: "bump", Node: cur[rng.Intn(len(cur))].Name}
		}
		return Edit{Op: "remove", Node: cands[rng.Intn(len(cands))]}
	}
}
