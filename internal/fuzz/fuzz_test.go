package fuzz

import (
	"context"
	"os"
	"reflect"
	"testing"

	"helix/internal/core"
	"helix/internal/plan"
)

// chainCase is the directed steady-state scenario: a four-node chain of
// heavy operators under PolicyAlways, run through two quiet iterations
// (all loads), a third quiet iteration (full fingerprint hit), a
// parameter bump (partial hit re-solving the dirty suffix), and a final
// quiet iteration. It deterministically drives the plan cache through
// cold → partial → HIT → partial, so the invariant-4 oracle comparison
// provably runs against a full fingerprint hit.
func chainCase() *Case {
	return &Case{
		Seed:   1,
		Config: Config{Policy: "always", Parallelism: 2},
		Base: []NodeSpec{
			{Name: "n0", Kind: "source", Op: 3, Param: 1},
			{Name: "n1", Kind: "extractor", Parents: []string{"n0"}, Op: 3, Param: 1},
			{Name: "n2", Kind: "learner", Parents: []string{"n1"}, Op: 3, Param: 1},
			{Name: "n3", Kind: "reducer", Parents: []string{"n2"}, Op: 3, Param: 1, Output: true},
		},
		Iters: [][]Edit{
			{}, {}, {},
			{{Op: "bump", Node: "n1"}},
			{},
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 42, 12345, 1 << 40} {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate not deterministic:\n%+v\nvs\n%+v", seed, a, b)
		}
	}
	if reflect.DeepEqual(Generate(1), Generate(2)) {
		t.Fatal("distinct seeds generated identical cases")
	}
}

// TestGeneratedDAGsWellFormed: every generated case builds a compilable
// workflow at every iteration (parents precede children, at least one
// output survives every edit).
func TestGeneratedDAGsWellFormed(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		c := Generate(seed)
		cur := cloneSpecs(c.Base)
		for it, edits := range c.Iters {
			cur = applyEdits(cur, edits)
			if countOutputs(cur) == 0 {
				t.Fatalf("seed %d iter %d: no outputs left", seed, it)
			}
			wf, err := BuildWorkflow("wf", cur)
			if err != nil {
				t.Fatalf("seed %d iter %d: %v", seed, it, err)
			}
			if _, err := wf.Compile(); err != nil {
				t.Fatalf("seed %d iter %d: compile: %v", seed, it, err)
			}
		}
	}
}

// TestDirectedChainCoverage runs the directed steady-state case and
// asserts the harness saw every plan-cache outcome — in particular a
// full fingerprint hit, which is when invariant 4 (cached plan ≡ fresh
// solve) has real teeth.
func TestDirectedChainCoverage(t *testing.T) {
	stats := &Stats{}
	v, err := RunCase(context.Background(), t.TempDir(), chainCase(), stats)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("directed chain case violated an invariant: %s", v)
	}
	if stats.ColdPlans < 1 || stats.Partial < 1 || stats.FullHits < 1 {
		t.Fatalf("directed case missed a plan-cache outcome: cold=%d partial=%d full=%d",
			stats.ColdPlans, stats.Partial, stats.FullHits)
	}
}

// streamChainCase is the directed streaming scenario: a fusible chain of
// three row-wise operators between batch endpoints, run through five
// iterations with a mid-sequence restart before iteration 2 and a
// cancellation attempt during iteration 3. It deterministically exercises
// invariants 6 (restart history, cancellation behavior), 7 (streaming ≡
// batch), and 8 (binary codec ≡ gob).
func streamChainCase() *Case {
	return &Case{
		Seed:   2,
		Config: Config{Policy: "always", Parallelism: 2},
		Base: []NodeSpec{
			{Name: "n0", Kind: "source", Op: 3, Param: 1},
			{Name: "s1", Kind: "extractor", Parents: []string{"n0"}, Op: 2, Param: 1, Stream: "map"},
			{Name: "s2", Kind: "extractor", Parents: []string{"s1"}, Op: 1, Param: 1, Stream: "filter"},
			{Name: "s3", Kind: "scanner", Parents: []string{"s2"}, Op: 4, Param: 1, Stream: "flatmap"},
			{Name: "n4", Kind: "reducer", Parents: []string{"s3"}, Op: 3, Param: 1, Output: true},
		},
		Iters: [][]Edit{
			{}, {}, {},
			{{Op: "bump", Node: "s2"}},
			{},
		},
		Restarts: []int{2},
		Cancels:  []int{3},
	}
}

// TestDirectedStreamRestartCancel runs the streaming chain with a
// scheduled restart and cancellation and asserts both actually happened.
func TestDirectedStreamRestartCancel(t *testing.T) {
	stats := &Stats{}
	v, err := RunCase(context.Background(), t.TempDir(), streamChainCase(), stats)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("directed streaming case violated an invariant: %s", v)
	}
	if stats.Restarts != 1 || stats.Cancels != 1 {
		t.Fatalf("restarts=%d cancels=%d, want 1 each", stats.Restarts, stats.Cancels)
	}
}

// TestFuzzSmoke is the CI smoke budget's little sibling: a few dozen
// random cases through the full eight-invariant harness. The dedicated
// fuzz-smoke CI job runs the same harness at ≥200 cases via
// cmd/helixfuzz.
func TestFuzzSmoke(t *testing.T) {
	cases := 30
	if testing.Short() {
		cases = 8
	}
	stats := &Stats{}
	f, err := Run(context.Background(), Options{Seed: 1, Cases: cases, Stats: stats, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if f != nil {
		t.Fatalf("fuzz failure: %s\nminimized case: %+v", f, f.Minimized)
	}
	t.Logf("coverage: %d cases, %d iterations, %d cold / %d partial / %d full-hit plans, %d restarts, %d cancels (%d aborted)",
		stats.Cases, stats.Iterations, stats.ColdPlans, stats.Partial, stats.FullHits,
		stats.Restarts, stats.Cancels, stats.CancelAborted)
	if stats.Partial == 0 {
		t.Error("smoke run never exercised a partial plan-cache hit")
	}
	if !testing.Short() && stats.Restarts == 0 && stats.Cancels == 0 {
		t.Error("smoke run never scheduled a restart or a cancellation")
	}
}

// TestEvictionPressure runs generated eviction-pressure cases — budgets
// of one-to-three entries that force Algorithm 2 to churn slots on
// every admission — and asserts the mode both appears in generation and
// actually evicts (manifest keys disappearing between iterations), so
// invariant 5's purge-credit accounting is exercised rather than
// vacuously satisfied.
func TestEvictionPressure(t *testing.T) {
	want := 6
	if testing.Short() {
		want = 2
	}
	stats := &Stats{}
	ran := 0
	for seed := int64(1); ran < want && seed < 10_000; seed++ {
		c := Generate(seed)
		if !c.Config.EvictPressure {
			continue
		}
		ran++
		if c.Config.Policy != "opt" || c.Config.BudgetBytes <= 0 || c.Config.BudgetBytes >= 2048 {
			t.Fatalf("seed %d: eviction-pressure case drew policy %q budget %d", seed, c.Config.Policy, c.Config.BudgetBytes)
		}
		v, err := RunCase(context.Background(), t.TempDir(), c, stats)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v != nil {
			t.Fatalf("seed %d: invariant violation under eviction pressure: %s", seed, v)
		}
	}
	if ran < want {
		t.Fatalf("found only %d eviction-pressure cases in seed sweep, want %d", ran, want)
	}
	t.Logf("eviction pressure: %d cases, %d iterations, %d evictions", stats.EvictCases, stats.Iterations, stats.Evictions)
	if stats.EvictCases != ran {
		t.Errorf("stats counted %d eviction-pressure cases, ran %d", stats.EvictCases, ran)
	}
	if stats.Evictions == 0 {
		t.Error("eviction-pressure sweep never evicted a manifest entry")
	}
}

// TestInjectedPlannerBugCaughtAndMinimized is the harness's mutation
// check: deliberately corrupt every plan the planner returns (prune the
// first live output) and assert the fuzzer catches it, auto-minimizes
// the failing case, writes a corpus entry, and that the failure
// reproduces from the printed seed alone.
func TestInjectedPlannerBugCaughtAndMinimized(t *testing.T) {
	plan.TestHookMutatePlan = func(p *plan.Plan) {
		for _, np := range p.Nodes {
			if np.Output && np.State != core.StatePrune {
				np.State = core.StatePrune
				np.MandatoryMat = false
				return
			}
		}
	}
	defer func() { plan.TestHookMutatePlan = nil }()

	corpus := t.TempDir()
	f, err := Run(context.Background(), Options{Seed: 99, Cases: 5, Corpus: corpus, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("injected planner bug (output pruned) escaped the harness")
	}
	if f.Violation.Invariant != "output-pruned" && f.Violation.Invariant != "plan-cache-soundness" {
		t.Errorf("caught as %q, expected the output-pruned (or soundness) invariant", f.Violation.Invariant)
	}
	if f.Minimized.size() > f.Case.size() {
		t.Errorf("minimization grew the case: %d → %d", f.Case.size(), f.Minimized.size())
	}
	if len(f.Minimized.Iters) != 1 {
		t.Errorf("minimized case kept %d iterations, want 1 (bug fires at iteration 0)", len(f.Minimized.Iters))
	}
	if f.CorpusFile == "" {
		t.Fatal("no corpus entry written for the failure")
	}
	if _, err := os.Stat(f.CorpusFile); err != nil {
		t.Fatalf("corpus entry missing: %v", err)
	}

	// The printed seed alone must reproduce the failure.
	c := Generate(f.CaseSeed)
	v, err := runInTemp(context.Background(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("failure did not reproduce from its seed")
	}

	// And the corpus entry replays to the same invariant while the bug
	// is live.
	rv, err := Replay(context.Background(), f.CorpusFile)
	if err != nil {
		t.Fatal(err)
	}
	if rv == nil || rv.Invariant != f.Violation.Invariant {
		t.Fatalf("corpus replay = %v, want invariant %s", rv, f.Violation.Invariant)
	}
}

// TestCorpusRoundTrip: a known-good case written to the corpus replays
// clean.
func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteCorpus(dir, chainCase(), nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Replay(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("known-good corpus case replayed dirty: %s", v)
	}
}
