package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"testing"
)

// wantRe matches analysistest-style expectation comments:
//
//	code() // want "first regexp" "second regexp"
var wantRe = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)

var wantArgRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// RunFixture loads the fixture package in dir, runs the analyzers over
// it, and asserts the diagnostics exactly match the fixture's
// // want "regexp" comments — every want matched by some diagnostic on
// its line, every diagnostic claimed by some want.
func RunFixture(t *testing.T, dir string, analyzers []*Analyzer) {
	t.Helper()
	diags, _ := RunFixtureResult(t, dir, analyzers)
	CheckWants(t, dir, diags)
}

// RunFixtureResult loads and analyzes the fixture without asserting
// expectations, returning the raw findings for custom checks (the
// injected-violation meta-test).
func RunFixtureResult(t *testing.T, dir string, analyzers []*Analyzer) ([]Diagnostic, []Suppression) {
	t.Helper()
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, sups := RunSuite(pkg.NewPass(), analyzers)
	return diags, sups
}

// CheckWants matches diagnostics against the fixture's want comments.
func CheckWants(t *testing.T, dir string, diags []Diagnostic) {
	t.Helper()
	wants, err := collectWants(dir)
	if err != nil {
		t.Fatalf("collecting want comments in %s: %v", dir, err)
	}
	for i := range diags {
		d := &diags[i]
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

// collectWants re-parses the fixture sources for want comments. It works
// on the raw package (not an existing Pass) so meta-tests can call it
// against any diagnostic list.
func collectWants(dir string) ([]*expectation, error) {
	pkg, err := LoadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantArgRe.FindAllString(m[1], -1) {
					raw, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants, nil
}
