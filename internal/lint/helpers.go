package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method a call expression invokes,
// or nil when the callee is not a named function (a func value, a
// builtin, or a type conversion).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	if obj, ok := info.Uses[id].(*types.Func); ok {
		return obj
	}
	if obj, ok := info.Defs[id].(*types.Func); ok {
		return obj
	}
	return nil
}

// funcDecls returns every function declaration in the package keyed by
// bare name (methods and functions alike; methods may shadow functions
// of the same name — the annotated codebase avoids that collision).
func funcDecls(files []*ast.File) map[string][]*ast.FuncDecl {
	out := make(map[string][]*ast.FuncDecl)
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				out[fd.Name.Name] = append(out[fd.Name.Name], fd)
			}
		}
	}
	return out
}

// declOf maps a package-local *types.Func back to its declaration.
func declOf(info *types.Info, files []*ast.File) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// walkWithStack traverses n, invoking fn with each node and the stack of
// its ancestors (outermost first, excluding the node itself). Returning
// false prunes the subtree.
func walkWithStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(node, stack)
		if keep {
			stack = append(stack, node)
		}
		return keep
	})
}

// namedOf unwraps pointers and aliases to the named type underneath, or
// nil if the type isn't named.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// isPkgFunc reports whether obj is the package-level function path.name
// (not a method).
func isPkgFunc(obj *types.Func, path, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return false
	}
	return obj.Pkg().Path() == path && obj.Name() == name
}

// structDecls yields every struct type declaration with its spec, the
// surrounding GenDecl doc, and the resolved named type.
type structDecl struct {
	spec   *ast.TypeSpec
	st     *ast.StructType
	doc    *ast.CommentGroup
	obj    *types.TypeName
	fields map[string]*ast.Field
}

func structDecls(info *types.Info, files []*ast.File) []structDecl {
	var out []structDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				obj, _ := info.Defs[ts.Name].(*types.TypeName)
				sd := structDecl{spec: ts, st: st, doc: doc, obj: obj,
					fields: make(map[string]*ast.Field)}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						sd.fields[name.Name] = field
					}
				}
				out = append(out, sd)
			}
		}
	}
	return out
}
