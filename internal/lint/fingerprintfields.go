package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FingerprintFields enforces fingerprint coverage on annotated structs.
//
// A struct annotated `//lint:fingerprint F1 F2 ...` promises that every
// one of its fields influences the plan fingerprint: each field must be
// read (selected) somewhere inside the named functions, or carry a
// `//lint:fpexempt <reason>` annotation explaining why it is
// fingerprint-neutral.
//
// A struct annotated `//lint:rebind F1 F2 ...` promises that the named
// functions rebuild values of the struct wholesale (the plan cache's
// hit() copy): every composite literal of the struct type inside those
// functions must assign every non-exempt field, so adding a field
// without threading it through the rebind copy fails the build — the
// PR 7 Fused/FusedSigs bug class.
var FingerprintFields = &Analyzer{
	Name: nameFingerprintFields,
	Doc:  "options/plan struct fields must feed the fingerprint (or rebind copy) or carry //lint:fpexempt <reason>",
	Run:  runFingerprintFields,
}

func runFingerprintFields(p *Pass) []Diagnostic {
	var diags []Diagnostic
	decls := funcDecls(p.Files)
	for _, sd := range structDecls(p.Info, p.Files) {
		if sd.obj == nil {
			continue
		}
		if d, ok := directive("fingerprint", sd.doc); ok {
			diags = append(diags, checkFingerprintReads(p, sd, strings.Fields(d.Args), decls)...)
		}
		if d, ok := directive("rebind", sd.doc); ok {
			diags = append(diags, checkRebindLiterals(p, sd, strings.Fields(d.Args), decls)...)
		}
	}
	return diags
}

// fpexemptReason returns the field's fpexempt reason. The second result
// is false when the field carries no fpexempt directive at all; an empty
// reason with ok=true is a misuse the caller diagnoses.
func fpexemptReason(field *ast.Field) (string, bool) {
	if d, ok := directive("fpexempt", field.Doc, field.Comment); ok {
		return strings.TrimSpace(d.Args), true
	}
	return "", false
}

// exemptFields partitions a struct's fields into exempt (with reasons
// recorded as suppressions) and covered-required, diagnosing reasonless
// fpexempt annotations.
func exemptFields(p *Pass, sd structDecl, rule string) (map[string]bool, []Diagnostic) {
	exempt := make(map[string]bool)
	var diags []Diagnostic
	for name, field := range sd.fields {
		reason, ok := fpexemptReason(field)
		if !ok {
			continue
		}
		if reason == "" {
			// Still exempt from the coverage check: the missing reason
			// is the one finding to fix.
			exempt[name] = true
			diags = append(diags, p.report(nameFingerprintFields, field,
				"field %s of %s: //lint:fpexempt requires a reason", name, sd.obj.Name()))
			continue
		}
		exempt[name] = true
		p.Suppress(nameFingerprintFields, field, reason,
			"field %s of %s exempt from %s coverage", name, sd.obj.Name(), rule)
	}
	return exempt, diags
}

func checkFingerprintReads(p *Pass, sd structDecl, funcs []string, decls map[string][]*ast.FuncDecl) []Diagnostic {
	exempt, diags := exemptFields(p, sd, "fingerprint")
	read := make(map[string]bool)
	for _, fn := range funcs {
		fds := decls[fn]
		if len(fds) == 0 {
			diags = append(diags, p.report(nameFingerprintFields, sd.spec,
				"//lint:fingerprint names %s, but no such function exists in this package", fn))
			continue
		}
		for _, fd := range fds {
			markFieldReads(p.Info, fd, sd.obj, read)
		}
	}
	for _, field := range sd.st.Fields.List {
		for _, name := range field.Names {
			if exempt[name.Name] || read[name.Name] {
				continue
			}
			diags = append(diags, p.report(nameFingerprintFields, name,
				"field %s of %s is not read by fingerprint function %s; fold it into the fingerprint or annotate //lint:fpexempt <reason>",
				name.Name, sd.obj.Name(), strings.Join(funcs, "/")))
		}
	}
	return diags
}

// markFieldReads records every field of the annotated struct selected
// anywhere inside fd.
func markFieldReads(info *types.Info, fd *ast.FuncDecl, obj *types.TypeName, read map[string]bool) {
	if fd.Body == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	fieldVars := make(map[types.Object]string, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fieldVars[st.Field(i)] = st.Field(i).Name()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := info.Selections[sel]; ok {
			if name, ok := fieldVars[s.Obj()]; ok {
				read[name] = true
			}
		}
		return true
	})
}

func checkRebindLiterals(p *Pass, sd structDecl, funcs []string, decls map[string][]*ast.FuncDecl) []Diagnostic {
	exempt, diags := exemptFields(p, sd, "rebind")
	var required []string
	for _, field := range sd.st.Fields.List {
		for _, name := range field.Names {
			if !exempt[name.Name] {
				required = append(required, name.Name)
			}
		}
	}
	for _, fn := range funcs {
		fds := decls[fn]
		if len(fds) == 0 {
			diags = append(diags, p.report(nameFingerprintFields, sd.spec,
				"//lint:rebind names %s, but no such function exists in this package", fn))
			continue
		}
		for _, fd := range fds {
			diags = append(diags, checkRebindIn(p, fd, sd, fn, required)...)
		}
	}
	return diags
}

func checkRebindIn(p *Pass, fd *ast.FuncDecl, sd structDecl, fn string, required []string) []Diagnostic {
	var diags []Diagnostic
	if fd.Body == nil {
		return nil
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[lit]
		if !ok || namedOf(tv.Type) == nil || namedOf(tv.Type).Obj() != sd.obj {
			return true
		}
		found = true
		if len(lit.Elts) > 0 {
			if _, ok := lit.Elts[0].(*ast.KeyValueExpr); !ok {
				// Positional literal: the compiler already forces every
				// field to be present.
				return true
			}
		}
		assigned := make(map[string]bool)
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					assigned[id.Name] = true
				}
			}
		}
		for _, name := range required {
			if !assigned[name] {
				diags = append(diags, p.report(nameFingerprintFields, lit,
					"rebind copy of %s in %s does not assign field %s; copy it or annotate the field //lint:fpexempt <reason>",
					sd.obj.Name(), fn, name))
			}
		}
		return true
	})
	if !found {
		diags = append(diags, p.report(nameFingerprintFields, fd,
			"//lint:rebind names %s, but it builds no %s composite literal", fn, sd.obj.Name()))
	}
	return diags
}
