package lint

import (
	"go/ast"
	"go/types"
)

// PlanDeterminism enforces byte-stable planning: in a package annotated
// `//lint:deterministic` (plan, opt, maxflow — everything upstream of
// the plan fingerprint), code may not
//
//   - consult the wall clock (time.Now/Since/Until),
//   - draw from the process-global math/rand source (package-level
//     functions; an explicitly seeded *rand.Rand is fine), or
//   - range over a map into an order-sensitive sink: appending to a
//     slice declared outside the loop (unless the slice is sorted
//     afterwards in the same block), hashing (Write*/Sum calls), or
//     building a string with +=.
//
// Map-to-map transfers stay legal — they are order-insensitive.
var PlanDeterminism = &Analyzer{
	Name: namePlanDeterminism,
	Doc:  "//lint:deterministic packages must not use wall clocks, global rand, or ordered map iteration",
	Run:  runPlanDeterminism,
}

func runPlanDeterminism(p *Pass) []Diagnostic {
	if !p.PackageDirective("deterministic") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if d, ok := nondeterministicCall(p, n); ok {
					diags = append(diags, d)
				}
			case *ast.RangeStmt:
				diags = append(diags, checkMapRange(p, n, stack)...)
			}
			return true
		})
	}
	return diags
}

func nondeterministicCall(p *Pass, call *ast.CallExpr) (Diagnostic, bool) {
	obj := calleeFunc(p.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return Diagnostic{}, false
	}
	switch obj.Pkg().Path() {
	case "time":
		switch obj.Name() {
		case "Now", "Since", "Until":
			return p.report(namePlanDeterminism, call,
				"call to time.%s in a //lint:deterministic package; plans and fingerprints must be byte-stable",
				obj.Name()), true
		}
	case "math/rand", "math/rand/v2":
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() == nil {
			return p.report(namePlanDeterminism, call,
				"call to global %s.%s in a //lint:deterministic package; use an explicitly seeded *rand.Rand",
				obj.Pkg().Name(), obj.Name()), true
		}
	}
	return Diagnostic{}, false
}

func checkMapRange(p *Pass, rng *ast.RangeStmt, stack []ast.Node) []Diagnostic {
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return nil
	}
	if _, ok := tv.Type.Underlying().(*types.Map); !ok {
		return nil
	}
	var diags []Diagnostic
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if d, ok := orderSensitiveAssign(p, n, rng, stack); ok {
				diags = append(diags, d)
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Write", "WriteString", "WriteByte", "Sum":
					if _, isMethod := p.Info.Selections[sel]; isMethod {
						diags = append(diags, p.report(namePlanDeterminism, n,
							"map iteration feeds %s — hash/buffer input depends on map order", sel.Sel.Name))
					}
				}
			}
		}
		return true
	})
	return diags
}

// orderSensitiveAssign flags `x = append(x, ...)` and string `x += ...`
// inside a map-range body when x outlives the loop and is not sorted
// afterwards in the enclosing block.
func orderSensitiveAssign(p *Pass, as *ast.AssignStmt, rng *ast.RangeStmt, stack []ast.Node) (Diagnostic, bool) {
	if len(as.Lhs) != 1 {
		return Diagnostic{}, false
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return Diagnostic{}, false
	}
	obj := p.Info.Uses[id]
	if obj == nil || obj.Pos() >= rng.Pos() {
		// Declared inside the loop; its order-sensitivity dies with the
		// iteration.
		return Diagnostic{}, false
	}
	isAppend := false
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fn.Name == "append" {
				isAppend = true
			}
		}
	}
	isStrConcat := as.Tok.String() == "+=" && types.Identical(obj.Type(), types.Typ[types.String])
	if !isAppend && !isStrConcat {
		return Diagnostic{}, false
	}
	if isAppend && sortedAfter(p, rng, stack, obj) {
		return Diagnostic{}, false
	}
	verb := "appends to"
	if isStrConcat {
		verb = "concatenates into"
	}
	return p.report(namePlanDeterminism, as,
		"map iteration %s %s, which outlives the loop; sort the result or iterate sorted keys", verb, id.Name), true
}

// sortedAfter reports whether a statement after rng in its enclosing
// block passes obj to a sort/slices call — the collect-then-sort idiom.
func sortedAfter(p *Pass, rng *ast.RangeStmt, stack []ast.Node, obj types.Object) bool {
	var block *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b
			break
		}
	}
	if block == nil {
		return false
	}
	after := false
	for _, stmt := range block.List {
		if stmt == ast.Stmt(rng) {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(p.Info, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			switch callee.Pkg().Path() {
			case "sort", "slices":
				if usesObject(p, call, obj) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func usesObject(p *Pass, n ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
