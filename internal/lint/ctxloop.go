package lint

import (
	"go/ast"
	"go/types"
)

// CtxLoop enforces the 1024-row cancellation rule: inside a function
// that takes a context, a loop ranging over a row stream (an iter.Seq-
// shaped func value or a channel) must poll the context — a ctx.Err() /
// ctx.Done() call somewhere in the body, typically on a bounded stride —
// or range over a sequence produced by a function annotated
// `//lint:ctxchecked` (checkedSeq), which polls on the caller's behalf.
// Without the poll, a cancelled run streams every remaining row before
// noticing.
var CtxLoop = &Analyzer{
	Name: nameCtxLoop,
	Doc:  "per-row streaming loops must poll ctx on a bounded stride or range a //lint:ctxchecked sequence",
	Run:  runCtxLoop,
}

func runCtxLoop(p *Pass) []Diagnostic {
	checked := ctxCheckedFuncs(p)
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasContextParam(p, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !isStreamRange(p, rng) {
					return true
				}
				if pollsContext(p, rng.Body) || rangesCheckedSeq(p, rng.X, checked) {
					return true
				}
				diags = append(diags, p.report(nameCtxLoop, rng,
					"streaming loop never polls ctx; check ctx.Err() on a bounded stride (rowCheckInterval) or range a //lint:ctxchecked sequence"))
				return true
			})
		}
	}
	return diags
}

// ctxCheckedFuncs collects package functions annotated //lint:ctxchecked
// — their returned sequences poll the context internally.
func ctxCheckedFuncs(p *Pass) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := directive("ctxchecked", fd.Doc); !ok {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = true
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

func hasContextParam(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := p.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isStreamRange reports whether the range target is a row stream: an
// iter.Seq-shaped func (single func(...) bool parameter, no results) or
// a channel.
func isStreamRange(p *Pass, rng *ast.RangeStmt) bool {
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Signature:
		if t.Params().Len() != 1 || t.Results().Len() != 0 {
			return false
		}
		yield, ok := t.Params().At(0).Type().Underlying().(*types.Signature)
		return ok && yield.Results().Len() == 1 &&
			types.Identical(yield.Results().At(0).Type(), types.Typ[types.Bool])
	}
	return false
}

// pollsContext reports whether body calls Err/Done on a context value.
func pollsContext(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Err" || sel.Sel.Name == "Done" {
				if tv, ok := p.Info.Types[sel.X]; ok && isContextType(tv.Type) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// rangesCheckedSeq reports whether the ranged expression is (or
// contains) a call to a //lint:ctxchecked sequence constructor.
func rangesCheckedSeq(p *Pass, x ast.Expr, checked map[*types.Func]bool) bool {
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if checked[calleeFunc(p.Info, call)] {
				found = true
			}
		}
		return !found
	})
	return found
}
