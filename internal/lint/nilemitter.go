package lint

import (
	"go/ast"
	"go/token"
)

// NilEmitter preserves the zero-allocation observer-off guarantee: a
// composite literal of any type whose name ends in "Event" may only be
// built where a nil guard dominates it, so that when no observer is
// installed no event value is ever materialised.
//
// Two guard shapes are accepted:
//
//  1. the enclosing function's first statement is a nil-return guard
//     (`if em == nil { return }`) — the emitter-method pattern;
//  2. the literal sits in the branch of an if statement that its
//     condition proves non-nil (`x != nil { ... }`, or the else branch
//     of `x == nil`).
var NilEmitter = &Analyzer{
	Name: nameNilEmitter,
	Doc:  "event construction must be dominated by a nil-emitter guard (zero-alloc when observer off)",
	Run:  runNilEmitter,
}

func runNilEmitter(p *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			guardedFunc := startsWithNilReturnGuard(fd)
			walkWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				named := namedOf(p.Info.Types[lit].Type)
				if named == nil || !isEventTypeName(named.Obj().Name()) {
					return true
				}
				if guardedFunc || nilGuardedBy(stack, lit) {
					return true
				}
				diags = append(diags, p.report(nameNilEmitter, lit,
					"%s constructed without a dominating nil-emitter guard; allocate events only behind `if em == nil { return }` or `if obs != nil { ... }`",
					named.Obj().Name()))
				return true
			})
		}
	}
	return diags
}

func isEventTypeName(name string) bool {
	return len(name) > len("Event") && name[len(name)-len("Event"):] == "Event"
}

// startsWithNilReturnGuard reports whether fd opens with
// `if x == nil { return ... }`.
func startsWithNilReturnGuard(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) == 0 {
		return false
	}
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL || !isNilIdent(bin.X) && !isNilIdent(bin.Y) {
		return false
	}
	for _, stmt := range ifs.Body.List {
		if _, ok := stmt.(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// nilGuardedBy reports whether some enclosing if statement proves a
// non-nil condition on the branch containing lit.
func nilGuardedBy(stack []ast.Node, lit *ast.CompositeLit) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		inBody := within(ifs.Body, lit.Pos())
		inElse := ifs.Else != nil && within(ifs.Else, lit.Pos())
		if condHasNilCompare(ifs.Cond, token.NEQ) && inBody {
			return true
		}
		if condHasNilCompare(ifs.Cond, token.EQL) && inElse {
			return true
		}
	}
	return false
}

func within(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// condHasNilCompare reports whether cond contains `x <op> nil` (searching
// through && and || and parens).
func condHasNilCompare(cond ast.Expr, op token.Token) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == op && (isNilIdent(e.X) || isNilIdent(e.Y)) {
			return true
		}
		if e.Op == token.LAND || e.Op == token.LOR {
			return condHasNilCompare(e.X, op) || condHasNilCompare(e.Y, op)
		}
	}
	return false
}
