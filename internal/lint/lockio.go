package lint

import (
	"go/ast"
	"go/types"
)

// LockIO enforces the store/session locking design rule: a mutex field
// annotated `//lint:nolockio` guards in-memory state only and must never
// be held across I/O — a disk syscall (package os/syscall), a
// Flush/Sync, or the simulated-disk throttle's time.Sleep — directly or
// through any chain of same-package calls.
//
// The check is a source-order sweep per function: between a Lock/RLock
// on an annotated mutex and its matching Unlock (a deferred Unlock pins
// the mutex to function exit), no reachable call may perform I/O.
var LockIO = &Analyzer{
	Name: nameLockIO,
	Doc:  "//lint:nolockio mutexes must not be held across disk syscalls, Flush, or throttle sleeps",
	Run:  runLockIO,
}

func runLockIO(p *Pass) []Diagnostic {
	annotated := nolockioFields(p)
	if len(annotated) == 0 {
		return nil
	}
	ioFuncs := transitiveIOFuncs(p)
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, sweepLockIO(p, fd, annotated, ioFuncs)...)
		}
	}
	return diags
}

// nolockioFields collects mutex-typed struct fields and package-level
// mutex vars annotated //lint:nolockio, keyed by their types object,
// valued by display name.
func nolockioFields(p *Pass) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, sd := range structDecls(p.Info, p.Files) {
		for _, field := range sd.st.Fields.List {
			if _, ok := directive("nolockio", field.Doc, field.Comment); !ok {
				continue
			}
			for _, name := range field.Names {
				obj := p.Info.Defs[name]
				if obj == nil || !isMutexType(obj.Type()) {
					continue
				}
				display := name.Name
				if sd.obj != nil {
					display = sd.obj.Name() + "." + name.Name
				}
				out[obj] = display
			}
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if _, ok := directive("nolockio", gd.Doc, vs.Doc, vs.Comment); !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := p.Info.Defs[name]
					if obj == nil || !isMutexType(obj.Type()) {
						continue
					}
					out[obj] = name.Name
				}
			}
		}
	}
	return out
}

func isMutexType(t types.Type) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// directIO reports whether calling obj performs I/O on its own: any
// os/syscall entry point, time.Sleep (the simulated-disk throttle), or a
// Flush/Sync method.
func directIO(obj *types.Func) bool {
	if obj == nil {
		return false
	}
	if pkg := obj.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "os", "syscall":
			return true
		}
	}
	if isPkgFunc(obj, "time", "Sleep") {
		return true
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if obj.Name() == "Flush" || obj.Name() == "Sync" {
			return true
		}
	}
	return false
}

// transitiveIOFuncs computes the set of package-local functions that
// reach I/O through any call chain, to fixpoint.
func transitiveIOFuncs(p *Pass) map[*types.Func]bool {
	decls := declOf(p.Info, p.Files)
	io := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for obj, fd := range decls {
			if io[obj] || fd.Body == nil {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(p.Info, call)
				if directIO(callee) || io[callee] {
					found = true
				}
				return true
			})
			if found {
				io[obj] = true
				changed = true
			}
		}
	}
	return io
}

// lockOp is one position-ordered lock-relevant occurrence inside a
// function body.
type lockOp struct {
	pos    int // byte offset for ordering
	kind   int // 0 lock, 1 unlock, 2 deferred unlock, 3 io call
	mutex  types.Object
	name   string // mutex display name or callee name for io
	node   ast.Node
	callee *types.Func
}

func sweepLockIO(p *Pass, fd *ast.FuncDecl, annotated map[types.Object]string, ioFuncs map[*types.Func]bool) []Diagnostic {
	var events []lockOp
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if mu, name, kind := mutexOp(p, n.Call, annotated); mu != nil && kind == 1 {
				events = append(events, lockOp{pos: int(n.Pos()), kind: 2, mutex: mu, name: name, node: n})
				return false
			}
		case *ast.CallExpr:
			if mu, name, kind := mutexOp(p, n, annotated); mu != nil {
				events = append(events, lockOp{pos: int(n.Pos()), kind: kind, mutex: mu, name: name, node: n})
				return true
			}
			callee := calleeFunc(p.Info, n)
			if directIO(callee) || ioFuncs[callee] {
				events = append(events, lockOp{pos: int(n.Pos()), kind: 3, name: callee.FullName(), node: n, callee: callee})
			}
		}
		return true
	})
	// ast.Inspect is already source-ordered within a file, so events are
	// position-sorted.
	held := make(map[types.Object]string)
	var diags []Diagnostic
	for _, ev := range events {
		switch ev.kind {
		case 0:
			held[ev.mutex] = ev.name
		case 1:
			delete(held, ev.mutex)
		case 2:
			// Deferred unlock: the mutex stays held until function exit.
		case 3:
			for _, name := range held {
				diags = append(diags, p.report(nameLockIO, ev.node,
					"mutex %s (//lint:nolockio) held across call to %s, which performs I/O",
					name, ev.name))
			}
		}
	}
	return diags
}

// mutexOp recognises X.mu.Lock()/RLock() (kind 0) and
// X.mu.Unlock()/RUnlock() (kind 1) on an annotated mutex field.
func mutexOp(p *Pass, call *ast.CallExpr, annotated map[types.Object]string) (types.Object, string, int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", 0
	}
	var kind int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = 0
	case "Unlock", "RUnlock":
		kind = 1
	default:
		return nil, "", 0
	}
	switch inner := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		s, ok := p.Info.Selections[inner]
		if !ok {
			return nil, "", 0
		}
		if name, ok := annotated[s.Obj()]; ok {
			return s.Obj(), name, kind
		}
	case *ast.Ident:
		obj := p.Info.Uses[inner]
		if name, ok := annotated[obj]; ok && obj != nil {
			return obj, name, kind
		}
	}
	return nil, "", 0
}
