// Package fingerprintfields exercises fingerprint and rebind coverage:
// annotated structs must feed every field into the fingerprint function
// or the cache rebind copy, or exempt it with a reason.
package fingerprintfields

import "fmt"

// Options mirrors the planner knobs that condition plan identity.
//
//lint:fingerprint fingerprintInputs
type Options struct {
	DisableReuse bool
	Streaming    bool
	Leaked       bool // want "field Leaked of Options is not read by fingerprint function fingerprintInputs"
	//lint:fpexempt observer wiring never affects plan identity
	Observer func()
	//lint:fpexempt
	Misused bool // want "field Misused of Options: //lint:fpexempt requires a reason"
}

func fingerprintInputs(o Options) string {
	return fmt.Sprintf("%v|%v", o.DisableReuse, o.Streaming)
}

// Misnamed points its directive at a function that does not exist.
//
//lint:fingerprint nosuchFunc
type Misnamed struct { // want "names nosuchFunc, but no such function exists"
	A bool // want "field A of Misnamed is not read"
}

// Plan is rebind-copied on cache hits; every field must survive the
// copy.
//
//lint:rebind rebindHit
type Plan struct {
	Nodes  int
	Fused  []int
	Solves int
	//lint:fpexempt lookup index, rebuilt lazily on first use
	byName map[string]int
}

func rebindHit(p *Plan) *Plan {
	return &Plan{ // want "does not assign field Fused" "does not assign field Solves"
		Nodes: p.Nodes,
	}
}
