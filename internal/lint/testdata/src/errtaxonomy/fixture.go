// Package errtaxonomy exercises the typed-error-taxonomy rule.
//
//lint:errtaxonomy
package errtaxonomy

import (
	"errors"
	"fmt"
)

// ErrBadPlan is a package sentinel: declaring leaves at package level is
// the taxonomy, not a violation.
var ErrBadPlan = errors.New("errtaxonomy: bad plan")

type NodeError struct {
	Op  string
	Err error
}

func (e *NodeError) Error() string { return e.Op + ": " + e.Err.Error() }
func (e *NodeError) Unwrap() error { return e.Err }

func wrapped(n int) error {
	return fmt.Errorf("plan has %d nodes: %w", n, ErrBadPlan)
}

func typed(op string, err error) error {
	return &NodeError{Op: op, Err: err}
}

func bare(n int) error {
	return fmt.Errorf("plan has %d nodes", n) // want "bare fmt.Errorf with no %w"
}

func leaf() error {
	return errors.New("something broke") // want "inline errors.New"
}
