// Package exemptions exercises //lint:exempt mechanics: a reasoned
// exemption suppresses (and records) the finding; a reasonless one is
// itself a finding.
//
//lint:errtaxonomy
package exemptions

import "fmt"

func waived() error {
	//lint:exempt errtaxonomy caller wraps into the typed taxonomy
	return fmt.Errorf("transient glitch")
}

func reasonless() error {
	//lint:exempt errtaxonomy
	return fmt.Errorf("transient glitch")
}
