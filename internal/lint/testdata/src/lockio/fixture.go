// Package lockio exercises the lock-across-I/O rule for annotated
// mutexes.
package lockio

import (
	"os"
	"sync"
	"time"
)

type shard struct {
	//lint:nolockio
	mu    sync.Mutex
	items map[string]int
}

// put releases the shard lock before touching disk — the store's design
// rule.
func (s *shard) put(name string, v int) {
	s.mu.Lock()
	s.items[name] = v
	s.mu.Unlock()
	_ = os.WriteFile(name, nil, 0o644)
}

func (s *shard) bad(name string) {
	s.mu.Lock()
	_ = os.WriteFile(name, nil, 0o644) // want "mutex shard.mu .* held across call to os.WriteFile"
	s.mu.Unlock()
}

func (s *shard) badDefer(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	throttle() // want "mutex shard.mu .* held across call to .*throttle"
}

// throttle reaches I/O transitively through time.Sleep, like the store's
// simulated-disk bandwidth throttle.
func throttle() { time.Sleep(time.Millisecond) }

// registryMu is a package-level annotated mutex, like the codec's
// extension-registry lock.
var (
	//lint:nolockio
	registryMu sync.RWMutex
)

func register(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	_ = os.Remove(name) // want "mutex registryMu .* held across call to os.Remove"
}

func lookup(name string) {
	registryMu.RLock()
	registryMu.RUnlock()
	_ = os.Remove(name)
}

type session struct {
	mu sync.RWMutex // unannotated: allowed to hold across I/O
}

func (s *session) flushUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = os.Remove("x")
}
