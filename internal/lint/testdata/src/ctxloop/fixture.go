// Package ctxloop exercises the bounded-stride cancellation rule for
// per-row streaming loops.
package ctxloop

import "context"

type row struct{ id int }

type seq func(yield func(row) bool)

func drainUnchecked(ctx context.Context, rows seq) int {
	n := 0
	for range rows { // want "streaming loop never polls ctx"
		n++
	}
	return n
}

func drainStride(ctx context.Context, rows seq) int {
	n := 0
	for r := range rows {
		_ = r
		n++
		if n%1024 == 0 && ctx.Err() != nil {
			break
		}
	}
	return n
}

// checked wraps rows with a context poll on a bounded stride, so
// consumers may range it freely.
//
//lint:ctxchecked
func checked(ctx context.Context, rows seq) seq {
	return func(yield func(row) bool) {
		n := 0
		for r := range rows {
			n++
			if n%1024 == 0 && ctx.Err() != nil {
				return
			}
			if !yield(r) {
				return
			}
		}
	}
}

func drainViaChecked(ctx context.Context, rows seq) int {
	n := 0
	for range checked(ctx, rows) {
		n++
	}
	return n
}

func drainChan(ctx context.Context, ch chan row) int {
	n := 0
	for range ch { // want "streaming loop never polls ctx"
		n++
	}
	return n
}

// noCtx takes no context; cancellation is the caller's concern.
func noCtx(rows seq) int {
	n := 0
	for range rows {
		n++
	}
	return n
}
