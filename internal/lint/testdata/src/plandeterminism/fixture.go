// Package plandeterminism exercises the byte-stable-planning rules.
//
//lint:deterministic
package plandeterminism

import (
	"math/rand"
	"sort"
	"time"
)

func now() int64 {
	return time.Now().Unix() // want "call to time.Now"
}

func draw() int {
	return rand.Intn(10) // want "call to global rand.Intn"
}

func seeded(r *rand.Rand) int {
	return r.Intn(10)
}

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "map iteration appends to out"
	}
	return out
}

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func transfer(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "map iteration concatenates into s"
	}
	return s
}

func hashKeys(m map[string]int, h interface{ Write([]byte) (int, error) }) {
	for k := range m {
		h.Write([]byte(k)) // want "map iteration feeds Write"
	}
}
