// Package nilemitter exercises the zero-alloc observer-off rule: event
// values may only be constructed behind a nil guard.
package nilemitter

// NodeEvent and PlanEvent stand in for the exec run events.
type NodeEvent struct{ Name string }

type PlanEvent struct{ N int }

type emitter struct{ obs func(any) }

func newEmitter(obs func(any)) *emitter {
	if obs == nil {
		return nil
	}
	return &emitter{obs: obs}
}

// node follows the emitter-method pattern: first-statement nil guard.
func (em *emitter) node(name string) {
	if em == nil {
		return
	}
	em.obs(NodeEvent{Name: name})
}

// bad builds the event before any guard runs.
func (em *emitter) bad(name string) {
	em.obs(NodeEvent{Name: name}) // want "NodeEvent constructed without a dominating nil-emitter guard"
}

func guardedCaller(em *emitter) {
	if em != nil {
		em.obs(PlanEvent{N: 1})
	}
}

func elseGuarded(em *emitter) {
	if em == nil {
		return
	} else {
		em.obs(PlanEvent{N: 2})
	}
}

func unguarded(em *emitter) {
	ev := PlanEvent{N: 3} // want "PlanEvent constructed without a dominating nil-emitter guard"
	if em != nil {
		em.obs(ev)
	}
}
