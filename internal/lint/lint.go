// Package lint implements helixlint: a suite of repo-specific static
// analyzers that prove, at compile time, the planner/executor/store
// invariants the property fuzzer (internal/fuzz) can only catch when a
// random case happens to trip them at runtime.
//
// The suite encodes six invariants the codebase's hardest bugs have all
// violated:
//
//   - fingerprintfields — every field of an annotated options/plan
//     struct is folded into the plan fingerprint (or the cache's rebind
//     copy), or carries an explicit, reasoned exemption. Makes the PR 7
//     cache-rebind bug class (Fused/FusedSigs silently dropped on a hit)
//     and the PR 5 bug class (a knob leaking past the config token)
//     unrepresentable.
//   - nilemitter — run events are only constructed behind a nil-observer
//     guard, preserving the documented zero-allocation guarantee when no
//     observer is installed.
//   - lockio — a mutex annotated as I/O-free (store shards, session
//     state) is never held across a disk syscall, a Flush, or the
//     simulated-disk throttle sleep.
//   - plandeterminism — packages annotated deterministic (plan, opt,
//     maxflow) never consult wall clocks, global randomness, or iterate
//     maps into order-sensitive sinks: plan artifacts and fingerprints
//     must be byte-stable.
//   - errtaxonomy — error returns in annotated packages carry the typed
//     taxonomy (wrapped sentinels, *NodeError), never bare leaf
//     fmt.Errorf/errors.New values callers cannot classify.
//   - ctxloop — per-row streaming loops poll their context on a bounded
//     stride (the 1024-row rule), so cancellation lands mid-stream.
//
// The framework is deliberately self-contained — stdlib go/ast +
// go/types only, no golang.org/x/tools dependency — with the same shape
// as go/analysis: an Analyzer runs over one typechecked package (a Pass)
// and returns Diagnostics; fixtures under testdata/src assert expected
// findings with // want "regexp" comments, exactly analysistest-style.
//
// # Directives
//
// Analyzers are driven by source annotations:
//
//	//lint:fingerprint F1 F2   (struct doc) every field must be read in
//	                           one of the named functions
//	//lint:rebind F1 F2        (struct doc) every composite literal of
//	                           this type inside the named functions must
//	                           assign every field
//	//lint:fpexempt <reason>   (field) waives both rules for one field
//	//lint:nolockio            (mutex field) never held across I/O
//	//lint:deterministic       (package doc) enables plandeterminism
//	//lint:errtaxonomy         (package doc) enables errtaxonomy
//	//lint:ctxchecked          (func doc) returned sequence already
//	                           polls ctx; consumers may range freely
//	//lint:exempt <analyzer> <reason>  suppresses that analyzer's
//	                           diagnostics on this (or the next) line
//
// Every exemption requires a non-empty reason; the reasons are echoed by
// cmd/helixlint -v so an exemption is always a documented decision.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one static check run over a typechecked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and exemption
	// directives.
	Name string
	// Doc is a one-line description for the multichecker's usage text.
	Doc string
	// Run reports the analyzer's findings on one package.
	Run func(*Pass) []Diagnostic
}

// Pass hands an analyzer one fully parsed and typechecked package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// directives indexes every //lint: comment by file and line.
	directives map[string]map[int][]Directive
	// extraSups accumulates analyzer-recorded suppressions (e.g.
	// fpexempt waivers) between RunSuite drains.
	extraSups []Suppression
}

// Directive is one parsed //lint:<name> <args> comment.
type Directive struct {
	Name string
	Args string
	Pos  token.Position
}

var directiveRe = regexp.MustCompile(`^//lint:(\S+)[ \t]*(.*)$`)

// NewPass assembles a Pass and indexes its directives.
func NewPass(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	p := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info,
		directives: make(map[string]map[int][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := p.directives[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]Directive)
					p.directives[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line],
					Directive{Name: m[1], Args: strings.TrimSpace(m[2]), Pos: pos})
			}
		}
	}
	return p
}

// Pos resolves a node's position.
func (p *Pass) Pos(n ast.Node) token.Position { return p.Fset.Position(n.Pos()) }

// report constructs a Diagnostic at n.
func (p *Pass) report(name string, n ast.Node, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: p.Pos(n), Analyzer: name, Message: fmt.Sprintf(format, args...)}
}

// groupDirectives parses the directives attached to a doc or line
// comment group.
func groupDirectives(groups ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if m := directiveRe.FindStringSubmatch(c.Text); m != nil {
				out = append(out, Directive{Name: m[1], Args: strings.TrimSpace(m[2])})
			}
		}
	}
	return out
}

// directive returns the first directive with the given name among the
// comment groups, if any.
func directive(name string, groups ...*ast.CommentGroup) (Directive, bool) {
	for _, d := range groupDirectives(groups...) {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// PackageDirective reports whether any file-level doc comment in the
// package carries the named directive.
func (p *Pass) PackageDirective(name string) bool {
	for _, f := range p.Files {
		if _, ok := directive(name, f.Doc); ok {
			return true
		}
		// Also accept the directive anywhere in a file's comment groups
		// that sit above the package clause (build-tag style placement).
		for _, cg := range f.Comments {
			if cg.End() >= f.Package {
				break
			}
			if _, ok := directive(name, cg); ok {
				return true
			}
		}
	}
	return false
}

// exemptionAt returns the //lint:exempt directive covering file:line for
// the named analyzer: one on the line itself or on the line directly
// above.
func (p *Pass) exemptionAt(analyzer, file string, line int) (Directive, bool) {
	byLine := p.directives[file]
	for _, l := range []int{line, line - 1} {
		for _, d := range byLine[l] {
			if d.Name != "exempt" {
				continue
			}
			fields := strings.Fields(d.Args)
			if len(fields) > 0 && fields[0] == analyzer {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// Suppression records one diagnostic silenced by a //lint:exempt
// directive, with the author's reason, for -v echoing.
type Suppression struct {
	Diagnostic Diagnostic
	Reason     string
}

// Suppress lets an analyzer record a directive-based waiver (such as a
// //lint:fpexempt field) so its reason is echoed alongside //lint:exempt
// suppressions.
func (p *Pass) Suppress(analyzer string, n ast.Node, reason, format string, args ...any) {
	p.extraSups = append(p.extraSups, Suppression{
		Diagnostic: p.report(analyzer, n, format, args...),
		Reason:     reason,
	})
}

// Filter applies //lint:exempt directives to a diagnostic list: exempted
// findings move to the suppression list (with their reason), and an
// exemption with no reason is itself converted into a diagnostic — an
// undocumented waiver is a finding.
func (p *Pass) Filter(diags []Diagnostic) (kept []Diagnostic, suppressed []Suppression) {
	for _, d := range diags {
		ex, ok := p.exemptionAt(d.Analyzer, d.Pos.Filename, d.Pos.Line)
		if !ok {
			kept = append(kept, d)
			continue
		}
		reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(ex.Args), d.Analyzer))
		if reason == "" {
			kept = append(kept, Diagnostic{Pos: ex.Pos, Analyzer: d.Analyzer,
				Message: "lint:exempt requires a reason (\"//lint:exempt " + d.Analyzer + " <why>\")"})
			continue
		}
		suppressed = append(suppressed, Suppression{Diagnostic: d, Reason: reason})
	}
	return kept, suppressed
}

// Analyzer names, shared between the Analyzer values and their run
// functions (a var referring back to itself would be an initialization
// cycle) and matched by //lint:exempt directives.
const (
	nameFingerprintFields = "fingerprintfields"
	nameNilEmitter        = "nilemitter"
	nameLockIO            = "lockio"
	namePlanDeterminism   = "plandeterminism"
	nameErrTaxonomy       = "errtaxonomy"
	nameCtxLoop           = "ctxloop"
)

// Suite returns the full helixlint analyzer set, in stable order.
func Suite() []*Analyzer {
	return []*Analyzer{
		FingerprintFields,
		NilEmitter,
		LockIO,
		PlanDeterminism,
		ErrTaxonomy,
		CtxLoop,
	}
}

// RunSuite runs the given analyzers over one package and returns the
// exemption-filtered findings plus the suppressions, sorted by position.
func RunSuite(p *Pass, analyzers []*Analyzer) ([]Diagnostic, []Suppression) {
	var diags []Diagnostic
	var sups []Suppression
	for _, a := range analyzers {
		found := a.Run(p)
		kept, suppressed := p.Filter(found)
		diags = append(diags, kept...)
		sups = append(sups, suppressed...)
		sups = append(sups, p.extraSups...)
		p.extraSups = nil
	}
	sortDiags(diags)
	sort.Slice(sups, func(i, j int) bool { return diagLess(sups[i].Diagnostic, sups[j].Diagnostic) })
	return diags, sups
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool { return diagLess(diags[i], diags[j]) })
}

func diagLess(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
