package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewPass wraps the package for analyzer consumption.
func (p *Package) NewPass() *Pass { return NewPass(p.Fset, p.Files, p.Types, p.Info) }

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	GoFiles    []string
	Imports    []string
}

// combinedImporter resolves module-local packages from the set already
// typechecked this load and everything else (stdlib) through the source
// importer, since there is no export data or module cache to lean on.
type combinedImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (ci *combinedImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := ci.local[path]; ok {
		return pkg, nil
	}
	return ci.std.Import(path)
}

// LoadPatterns loads and typechecks the module-local packages matched by
// the go list patterns (e.g. "./..."), in dependency order. dir is the
// module root the patterns are resolved against.
func LoadPatterns(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	order, err := topoOrder(listed)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	ci := &combinedImporter{
		local: make(map[string]*types.Package),
		std:   importer.ForCompiler(fset, "source", nil),
	}
	var out []*Package
	byPath := make(map[string]*listedPackage, len(listed))
	for i := range listed {
		byPath[listed[i].ImportPath] = &listed[i]
	}
	for _, path := range order {
		lp := byPath[path]
		pkg, err := typecheck(fset, lp.ImportPath, lp.Dir, lp.GoFiles, ci)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", lp.ImportPath, err)
		}
		ci.local[lp.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and typechecks every non-test .go file directly in dir
// as a single package, resolving imports from the stdlib only. Used for
// testdata fixtures, which `go list ./...` deliberately skips.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	ci := &combinedImporter{
		local: map[string]*types.Package{},
		std:   importer.ForCompiler(fset, "source", nil),
	}
	return typecheck(fset, "fixture/"+filepath.Base(dir), dir, files, ci)
}

func typecheck(fset *token.FileSet, path, dir string, fileNames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = string(ee.Stderr)
		}
		return nil, fmt.Errorf("lint: go list failed: %s", strings.TrimSpace(msg))
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	var listed []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if lp.Standard {
			continue
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// topoOrder orders the listed packages so every package follows its
// module-local imports.
func topoOrder(listed []listedPackage) ([]string, error) {
	local := make(map[string][]string, len(listed))
	for _, lp := range listed {
		local[lp.ImportPath] = lp.Imports
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int, len(listed))
	var order []string
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = grey
		deps := local[path]
		sorted := make([]string, 0, len(deps))
		for _, dep := range deps {
			if _, ok := local[dep]; ok {
				sorted = append(sorted, dep)
			}
		}
		sort.Strings(sorted)
		for _, dep := range sorted {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, path)
		return nil
	}
	roots := make([]string, 0, len(listed))
	for _, lp := range listed {
		roots = append(roots, lp.ImportPath)
	}
	sort.Strings(roots)
	for _, root := range roots {
		if err := visit(root); err != nil {
			return nil, err
		}
	}
	return order, nil
}
