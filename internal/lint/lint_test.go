package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"helix/internal/lint"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

// Each analyzer's fixture demonstrates at least one caught violation and
// documents the legal shapes next to the illegal ones.

func TestFingerprintFields(t *testing.T) {
	lint.RunFixture(t, fixture("fingerprintfields"), []*lint.Analyzer{lint.FingerprintFields})
}

func TestNilEmitter(t *testing.T) {
	lint.RunFixture(t, fixture("nilemitter"), []*lint.Analyzer{lint.NilEmitter})
}

func TestLockIO(t *testing.T) {
	lint.RunFixture(t, fixture("lockio"), []*lint.Analyzer{lint.LockIO})
}

func TestPlanDeterminism(t *testing.T) {
	lint.RunFixture(t, fixture("plandeterminism"), []*lint.Analyzer{lint.PlanDeterminism})
}

func TestErrTaxonomy(t *testing.T) {
	lint.RunFixture(t, fixture("errtaxonomy"), []*lint.Analyzer{lint.ErrTaxonomy})
}

func TestCtxLoop(t *testing.T) {
	lint.RunFixture(t, fixture("ctxloop"), []*lint.Analyzer{lint.CtxLoop})
}

// TestExemptions checks the waiver mechanics: a reasoned //lint:exempt
// moves the finding to the suppression list with its reason; a
// reasonless one becomes a finding of its own.
func TestExemptions(t *testing.T) {
	diags, sups := lint.RunFixtureResult(t, fixture("exemptions"), []*lint.Analyzer{lint.ErrTaxonomy})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (the reasonless exemption): %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "requires a reason") {
		t.Errorf("diagnostic %q does not flag the missing reason", diags[0].Message)
	}
	if len(sups) != 1 {
		t.Fatalf("got %d suppressions, want 1: %v", len(sups), sups)
	}
	if want := "caller wraps into the typed taxonomy"; sups[0].Reason != want {
		t.Errorf("suppression reason = %q, want %q", sups[0].Reason, want)
	}
}

// TestSuiteCatchesInjectedViolations is the injected-violation
// meta-test: every fixture's seeded violation is caught by the full
// suite, and disabling the one responsible analyzer makes the suite miss
// it — each analyzer is load-bearing.
func TestSuiteCatchesInjectedViolations(t *testing.T) {
	suite := lint.Suite()
	for _, a := range suite {
		t.Run(a.Name, func(t *testing.T) {
			dir := fixture(a.Name)
			full, _ := lint.RunFixtureResult(t, dir, suite)
			if countBy(full, a.Name) == 0 {
				t.Fatalf("full suite found no %s violation in its fixture", a.Name)
			}
			var reduced []*lint.Analyzer
			for _, other := range suite {
				if other.Name != a.Name {
					reduced = append(reduced, other)
				}
			}
			remaining, _ := lint.RunFixtureResult(t, dir, reduced)
			if countBy(remaining, a.Name) != 0 {
				t.Fatalf("suite without %s still reports %s findings", a.Name, a.Name)
			}
			if len(remaining) >= len(full) {
				t.Fatalf("disabling %s did not reduce findings (%d -> %d); the fixture violation is not attributable to it",
					a.Name, len(full), len(remaining))
			}
		})
	}
}

func countBy(diags []lint.Diagnostic, analyzer string) int {
	n := 0
	for _, d := range diags {
		if d.Analyzer == analyzer {
			n++
		}
	}
	return n
}

// TestRepoClean runs the full suite over the whole module — the same
// gate CI applies via cmd/helixlint — and demands zero findings.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck is slow; run without -short")
	}
	pkgs, err := lint.LoadPatterns(filepath.Join("..", ".."), []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, pkg := range pkgs {
		diags, _ := lint.RunSuite(pkg.NewPass(), lint.Suite())
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
