package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// ErrTaxonomy keeps error paths classifiable: in a package annotated
// `//lint:errtaxonomy` (exec, the session layer), a function may not
// return a bare leaf error — fmt.Errorf without a %w wrap, or an inline
// errors.New — because callers dispatch on the typed taxonomy
// (errors.Is against sentinels, errors.As against *NodeError). Wrapping
// a sentinel with %w, returning a typed error, or declaring sentinels at
// package level all remain legal.
var ErrTaxonomy = &Analyzer{
	Name: nameErrTaxonomy,
	Doc:  "//lint:errtaxonomy packages must return typed/wrapped errors, not bare fmt.Errorf or errors.New",
	Run:  runErrTaxonomy,
}

func runErrTaxonomy(p *Pass) []Diagnostic {
	if !p.PackageDirective("errtaxonomy") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					if d, ok := bareLeafError(p, res); ok {
						diags = append(diags, d)
					}
				}
				return true
			})
		}
	}
	return diags
}

// bareLeafError recognises a returned expression that creates an
// unclassifiable leaf error.
func bareLeafError(p *Pass, e ast.Expr) (Diagnostic, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return Diagnostic{}, false
	}
	callee := calleeFunc(p.Info, call)
	switch {
	case isPkgFunc(callee, "fmt", "Errorf"):
		if len(call.Args) > 0 {
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok {
				if s, err := strconv.Unquote(lit.Value); err == nil && strings.Contains(s, "%w") {
					return Diagnostic{}, false
				}
			}
		}
		return p.report(nameErrTaxonomy, call,
			"returns a bare fmt.Errorf with no %%w; wrap a taxonomy sentinel (fmt.Errorf(\"...: %%w\", Err...)) or return a typed error"), true
	case isPkgFunc(callee, "errors", "New"):
		return p.report(nameErrTaxonomy, call,
			"returns an inline errors.New; declare a package sentinel or wrap one from the taxonomy"), true
	}
	return Diagnostic{}, false
}
