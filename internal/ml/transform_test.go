package ml

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBucketizerEqualFrequency(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	b, err := FitBucketizer(values, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumBuckets() != 10 {
		t.Fatalf("buckets = %d, want 10", b.NumBuckets())
	}
	counts := make([]int, 10)
	for _, v := range values {
		counts[int(b.Transform(v))]++
	}
	for i, c := range counts {
		if c != 10 {
			t.Fatalf("bucket %d has %d values, want 10 (equal frequency)", i, c)
		}
	}
}

func TestBucketizerDuplicateHeavyValues(t *testing.T) {
	// 90% identical values must not produce duplicate boundaries.
	values := make([]float64, 100)
	for i := 90; i < 100; i++ {
		values[i] = float64(i)
	}
	b, err := FitBucketizer(values, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(b.Boundaries); i++ {
		if b.Boundaries[i] <= b.Boundaries[i-1] {
			t.Fatal("boundaries not strictly increasing")
		}
	}
}

func TestBucketizerErrors(t *testing.T) {
	if _, err := FitBucketizer(nil, 10); err == nil {
		t.Fatal("expected error on empty values")
	}
	if _, err := FitBucketizer([]float64{1}, 1); err == nil {
		t.Fatal("expected error on <2 bins")
	}
}

// Property: bucket indices are monotone in the input value.
func TestPropertyBucketizerMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		values := make([]float64, 50+rng.Intn(100))
		for i := range values {
			values[i] = rng.NormFloat64() * 100
		}
		b, err := FitBucketizer(values, 2+rng.Intn(8))
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), values...)
		sort.Float64s(sorted)
		last := -1.0
		for _, v := range sorted {
			bk := b.Transform(v)
			if bk < last {
				return false
			}
			last = bk
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStandardScaler(t *testing.T) {
	values := []float64{2, 4, 6, 8}
	s, err := FitStandardScaler(values)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Transformed values should have mean 0 and unit variance.
	var sum, ss float64
	for _, v := range values {
		tv := s.Transform(v)
		sum += tv
		ss += tv * tv
	}
	if !almostEqual(sum/4, 0, 1e-12) || !almostEqual(ss/4, 1, 1e-12) {
		t.Fatalf("standardized moments wrong: mean=%v var=%v", sum/4, ss/4)
	}
}

func TestStandardScalerConstantInput(t *testing.T) {
	s, err := FitStandardScaler([]float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if v := s.Transform(3); v != 0 {
		t.Fatalf("constant input transform = %v, want 0", v)
	}
	if _, err := FitStandardScaler(nil); err == nil {
		t.Fatal("expected error on empty input")
	}
}

func TestIndexerStableSortedIndices(t *testing.T) {
	ix := FitIndexer([]string{"red", "blue", "green", "blue"})
	if ix.Size() != 3 {
		t.Fatalf("size = %d", ix.Size())
	}
	// Sorted order: blue=0, green=1, red=2.
	for i, want := range []string{"blue", "green", "red"} {
		if ix.Name(i) != want {
			t.Fatalf("Name(%d) = %q, want %q", i, ix.Name(i), want)
		}
	}
	if i, ok := ix.Index("green"); !ok || i != 1 {
		t.Fatalf("Index(green) = %d,%v", i, ok)
	}
	if _, ok := ix.Index("magenta"); ok {
		t.Fatal("unseen value should not index")
	}
}

func TestIndexerOneHot(t *testing.T) {
	ix := FitIndexer([]string{"a", "b"})
	v := ix.OneHot("b")
	if v.Dim() != 2 || v.At(1) != 1 || v.At(0) != 0 {
		t.Fatal("one-hot wrong")
	}
	unseen := ix.OneHot("zzz")
	if unseen.NNZ() != 0 {
		t.Fatal("unseen one-hot should be all zeros")
	}
}

func TestFeatureSpaceAssemblesMixedFeatures(t *testing.T) {
	all := []RawFeatures{
		{"age": Num(39), "edu": Cat("Bachelors"), "occ": Cat("Tech")},
		{"age": Num(50), "edu": Cat("Masters"), "occ": Cat("Tech")},
	}
	fs := FitFeatureSpace(all)
	// Slots: age(numeric), edu=Bachelors, edu=Masters, occ=Tech → 4 dims.
	if fs.Dim() != 4 {
		t.Fatalf("dim = %d, want 4", fs.Dim())
	}
	v := fs.Vectorize(all[0])
	var nonzero int
	v.ForEach(func(i int, x float64) {
		if x != 0 {
			nonzero++
		}
	})
	if nonzero != 3 {
		t.Fatalf("nonzero = %d, want 3 (age + 2 one-hots)", nonzero)
	}
}

func TestFeatureSpaceUnseenCategoryIgnored(t *testing.T) {
	fs := FitFeatureSpace([]RawFeatures{{"c": Cat("x")}})
	v := fs.Vectorize(RawFeatures{"c": Cat("never-seen")})
	if v.NNZ() != 0 {
		t.Fatal("unseen category should vectorize to zero")
	}
}

func TestFeatureSpaceSlotNamesProvenance(t *testing.T) {
	fs := FitFeatureSpace([]RawFeatures{{"age": Num(1), "edu": Cat("HS")}})
	found := map[string]bool{}
	for i := 0; i < fs.Dim(); i++ {
		found[fs.SlotName(i)] = true
	}
	if !found["age"] || !found["edu=HS"] {
		t.Fatalf("slot names = %v", found)
	}
}

// Property: vectorization is consistent — same raw features always produce
// the same vector, and every nonzero slot traces back to an input feature.
func TestPropertyFeatureSpaceConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cats := []string{"a", "b", "c", "d"}
		var all []RawFeatures
		for i := 0; i < 20; i++ {
			rf := RawFeatures{
				"n1": Num(rng.NormFloat64()),
				"c1": Cat(cats[rng.Intn(len(cats))]),
			}
			all = append(all, rf)
		}
		fs := FitFeatureSpace(all)
		for _, rf := range all {
			v1, v2 := fs.Vectorize(rf), fs.Vectorize(rf)
			if v1.Dim() != v2.Dim() {
				return false
			}
			for i := 0; i < v1.Dim(); i++ {
				if v1.At(i) != v2.At(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

type constModel float64

func (c constModel) Predict(Vector) float64 { return float64(c) }

func TestMetricsAccuracy(t *testing.T) {
	d := &Dataset{Dim: 1, Examples: []Example{
		{X: Dense(0), Y: 1}, {X: Dense(0), Y: 1}, {X: Dense(0), Y: 0},
	}}
	if acc := BinaryAccuracy(constModel(0.9), d); !almostEqual(acc, 2.0/3, 1e-12) {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestMetricsPRF1(t *testing.T) {
	d := &Dataset{Dim: 1, Examples: []Example{
		{X: Dense(0), Y: 1}, {X: Dense(0), Y: 0}, {X: Dense(0), Y: 1},
	}}
	r := BinaryPRF1(constModel(1), d) // predicts positive for all
	if r.TP != 2 || r.FP != 1 || r.FN != 0 {
		t.Fatalf("counts = %+v", r)
	}
	if !almostEqual(r.Precision, 2.0/3, 1e-12) || r.Recall != 1 {
		t.Fatalf("P/R = %v/%v", r.Precision, r.Recall)
	}
	if r.F1 <= 0 || r.F1 > 1 {
		t.Fatalf("F1 = %v", r.F1)
	}
}

func TestMetricsLogLossBounds(t *testing.T) {
	d := &Dataset{Dim: 1, Examples: []Example{{X: Dense(0), Y: 1}}}
	perfect := LogLoss(constModel(1), d)
	bad := LogLoss(constModel(0.1), d)
	if perfect >= bad {
		t.Fatal("perfect prediction should have lower log loss")
	}
	if math.IsInf(bad, 0) || math.IsNaN(bad) {
		t.Fatal("log loss must be clipped finite")
	}
}

func TestConfusionMatrix(t *testing.T) {
	d := &Dataset{Dim: 1, Examples: []Example{
		{X: Dense(0), Y: 0}, {X: Dense(0), Y: 1}, {X: Dense(0), Y: 1},
	}}
	cm := ConfusionMatrix(constModel(1), d, 2)
	if cm[0][1] != 1 || cm[1][1] != 2 || cm[0][0] != 0 {
		t.Fatalf("confusion = %v", cm)
	}
	if s := FormatConfusion(cm); s == "" {
		t.Fatal("empty confusion format")
	}
}

func TestSummarizeClusters(t *testing.T) {
	m := &KMeansModel{Centroids: []DenseVector{Dense(0, 0), Dense(10, 10)}}
	d := &Dataset{Dim: 2, Examples: []Example{
		{X: Dense(0.1, 0), ID: "near-origin"},
		{X: Dense(9.9, 10), ID: "near-ten"},
		{X: Dense(0, 0.2), ID: "origin2"},
	}}
	s := SummarizeClusters(m, d, 5)
	if s.K != 2 || s.Sizes[0] != 2 || s.Sizes[1] != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Inertia <= 0 {
		t.Fatal("inertia should be positive for off-centroid points")
	}
	if len(s.TopMembers[0]) != 2 || s.TopMembers[0][0] != "near-origin" {
		t.Fatalf("members = %v", s.TopMembers)
	}
}
