package ml

import (
	"math"
	"math/rand"
	"testing"
)

// anisotropic generates data stretched along a known direction.
func anisotropic(n int, seed int64) (*Dataset, DenseVector) {
	rng := rand.New(rand.NewSource(seed))
	dir := Dense(3, 4, 0) // main axis, unnormalized
	normalize(dir)
	d := &Dataset{Dim: 3}
	for i := 0; i < n; i++ {
		t := rng.NormFloat64() * 10 // large variance along dir
		noise := Dense(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		x := Dense(5, -2, 1) // mean offset
		x.AddScaled(t, dir)
		x.AddScaled(0.5, noise)
		d.Examples = append(d.Examples, Example{X: x, Y: t})
	}
	return d, dir
}

func TestPCARecoversPrincipalAxis(t *testing.T) {
	d, dir := anisotropic(500, 1)
	m, err := PCA{Components: 1, Seed: 1}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	// The first axis must align with the generating direction (sign-free).
	cos := math.Abs(m.Axes[0].Dot(dir))
	if cos < 0.99 {
		t.Fatalf("axis alignment |cos| = %.4f", cos)
	}
	if m.Explained[0] < 50 {
		t.Fatalf("explained variance %.1f too small for sigma=10 axis", m.Explained[0])
	}
}

func TestPCAVarianceOrdering(t *testing.T) {
	d, _ := anisotropic(400, 2)
	m, err := PCA{Components: 3, Seed: 2}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(m.Explained); i++ {
		if m.Explained[i] > m.Explained[i-1]+1e-9 {
			t.Fatalf("explained variance not decreasing: %v", m.Explained)
		}
	}
}

func TestPCAAxesOrthonormal(t *testing.T) {
	d, _ := anisotropic(300, 3)
	m, err := PCA{Components: 3, Seed: 3}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Axes {
		if math.Abs(m.Axes[i].Norm2()-1) > 1e-6 {
			t.Fatalf("axis %d not unit norm", i)
		}
		for j := i + 1; j < len(m.Axes); j++ {
			if dot := math.Abs(m.Axes[i].Dot(m.Axes[j])); dot > 1e-6 {
				t.Fatalf("axes %d,%d not orthogonal: %.2e", i, j, dot)
			}
		}
	}
}

func TestPCAProjectionPreservesSignal(t *testing.T) {
	// Projecting onto the first component should preserve the latent t
	// almost perfectly (correlation with labels).
	d, _ := anisotropic(500, 4)
	m, err := PCA{Components: 1, Seed: 4}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	proj := m.ProjectDataset(d)
	if proj.Dim != 1 {
		t.Fatalf("projected dim = %d", proj.Dim)
	}
	var sxy, sxx, syy float64
	for i, e := range proj.Examples {
		x := e.X.At(0)
		y := d.Examples[i].Y
		sxy += x * y
		sxx += x * x
		syy += y * y
	}
	corr := math.Abs(sxy) / math.Sqrt(sxx*syy)
	if corr < 0.99 {
		t.Fatalf("projection-label correlation %.4f", corr)
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := (PCA{Components: 1}).Fit(&Dataset{}); err == nil {
		t.Fatal("expected empty-dataset error")
	}
	d, _ := anisotropic(10, 5)
	if _, err := (PCA{Components: 0}).Fit(d); err == nil {
		t.Fatal("expected components error")
	}
	if _, err := (PCA{Components: 4}).Fit(d); err == nil {
		t.Fatal("expected components > dim error")
	}
}

func TestPCADeterministic(t *testing.T) {
	d, _ := anisotropic(100, 6)
	m1, _ := PCA{Components: 2, Seed: 9}.Fit(d)
	m2, _ := PCA{Components: 2, Seed: 9}.Fit(d)
	for i := range m1.Axes {
		for j := range m1.Axes[i] {
			if m1.Axes[i][j] != m2.Axes[i][j] {
				t.Fatal("same seed produced different axes")
			}
		}
	}
}
