package ml

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Accuracy returns the fraction of examples whose predicted class equals
// the label — the census workflow's checkResults reducer (paper Figure 3a,
// lines 17-18).
func Accuracy(m Model, d *Dataset) float64 {
	if len(d.Examples) == 0 {
		return 0
	}
	var correct int
	for _, e := range d.Examples {
		if !e.HasLabel() {
			continue
		}
		if math.Round(m.Predict(e.X)) == e.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(d.Examples))
}

// BinaryAccuracy thresholds probabilities at 0.5 before comparing.
func BinaryAccuracy(m Model, d *Dataset) float64 {
	var n, correct int
	for _, e := range d.Examples {
		if !e.HasLabel() {
			continue
		}
		n++
		pred := 0.0
		if m.Predict(e.X) >= 0.5 {
			pred = 1
		}
		if pred == e.Y {
			correct++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(correct) / float64(n)
}

// PRF1 holds precision, recall, and F1 for the positive class — the IE
// workflow's evaluation metric.
type PRF1 struct {
	Precision, Recall, F1 float64
	TP, FP, FN            int
}

// BinaryPRF1 computes precision/recall/F1 of the positive class over the
// labeled examples of d using threshold 0.5.
func BinaryPRF1(m Model, d *Dataset) PRF1 {
	var r PRF1
	for _, e := range d.Examples {
		if !e.HasLabel() {
			continue
		}
		pred := m.Predict(e.X) >= 0.5
		truth := e.Y >= 0.5
		switch {
		case pred && truth:
			r.TP++
		case pred && !truth:
			r.FP++
		case !pred && truth:
			r.FN++
		}
	}
	if r.TP+r.FP > 0 {
		r.Precision = float64(r.TP) / float64(r.TP+r.FP)
	}
	if r.TP+r.FN > 0 {
		r.Recall = float64(r.TP) / float64(r.TP+r.FN)
	}
	if r.Precision+r.Recall > 0 {
		r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
	}
	return r
}

// ConfusionMatrix counts [truth][predicted] over the labeled examples.
func ConfusionMatrix(m Model, d *Dataset, classes int) [][]int {
	cm := make([][]int, classes)
	for i := range cm {
		cm[i] = make([]int, classes)
	}
	for _, e := range d.Examples {
		if !e.HasLabel() {
			continue
		}
		t := int(e.Y)
		p := int(math.Round(m.Predict(e.X)))
		if t >= 0 && t < classes && p >= 0 && p < classes {
			cm[t][p]++
		}
	}
	return cm
}

// FormatConfusion renders a confusion matrix for reducer output.
func FormatConfusion(cm [][]int) string {
	var b strings.Builder
	for t, row := range cm {
		fmt.Fprintf(&b, "true=%d:", t)
		for _, c := range row {
			fmt.Fprintf(&b, " %5d", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LogLoss returns the mean negative log-likelihood of binary predictions,
// clipped away from 0 and 1 for stability.
func LogLoss(m Model, d *Dataset) float64 {
	const eps = 1e-12
	var n int
	var sum float64
	for _, e := range d.Examples {
		if !e.HasLabel() {
			continue
		}
		n++
		p := m.Predict(e.X)
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		if e.Y >= 0.5 {
			sum -= math.Log(p)
		} else {
			sum -= math.Log(1 - p)
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ClusterSummary describes a clustering for qualitative PPR evaluation
// (the genomics workflow's "more qualitative and exploratory evaluations",
// paper §6.2).
type ClusterSummary struct {
	K       int
	Sizes   []int
	Inertia float64
	// TopMembers lists up to sample member IDs per cluster.
	TopMembers [][]string
}

// SummarizeClusters assigns every example of d and aggregates sizes,
// within-cluster squared distance, and sample member IDs.
func SummarizeClusters(m *KMeansModel, d *Dataset, sample int) ClusterSummary {
	k := len(m.Centroids)
	s := ClusterSummary{K: k, Sizes: make([]int, k), TopMembers: make([][]string, k)}
	for _, e := range d.Examples {
		c, dist := m.Assign(e.X)
		s.Sizes[c]++
		s.Inertia += dist
		if len(s.TopMembers[c]) < sample {
			s.TopMembers[c] = append(s.TopMembers[c], e.ID)
		}
	}
	for c := range s.TopMembers {
		sort.Strings(s.TopMembers[c])
	}
	return s
}

// ApproxBytes implements the engine's Sizer.
func (s ClusterSummary) ApproxBytes() int64 {
	b := int64(16 + 8*len(s.Sizes))
	for _, ms := range s.TopMembers {
		for _, m := range ms {
			b += int64(len(m)) + 16
		}
	}
	return b
}
