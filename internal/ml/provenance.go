package ml

import (
	"math"
	"sort"
	"strings"
)

// ZeroWeightSlots returns the names of feature-space slots whose learned
// weight magnitude is below eps — the provenance bookkeeping behind the
// paper's data-driven pruning (§5.4): "Operators resulting in features
// with zero weights can be pruned without changing the prediction
// outcome."
func ZeroWeightSlots(w DenseVector, fs *FeatureSpace, eps float64) []string {
	var out []string
	for i := 0; i < fs.Dim() && i < len(w); i++ {
		if math.Abs(w[i]) < eps {
			out = append(out, fs.SlotName(i))
		}
	}
	sort.Strings(out)
	return out
}

// PrunableFeatures groups zero-weight slots by their originating feature
// (the prefix before '=' for categorical one-hot slots) and returns the
// features ALL of whose slots are zero-weight. These are the operators a
// data-driven pruner may remove from the workflow DAG: no surviving slot
// traces back to them.
func PrunableFeatures(w DenseVector, fs *FeatureSpace, eps float64) []string {
	total := make(map[string]int)
	zero := make(map[string]int)
	for i := 0; i < fs.Dim() && i < len(w); i++ {
		feature := featureOfSlot(fs.SlotName(i))
		total[feature]++
		if math.Abs(w[i]) < eps {
			zero[feature]++
		}
	}
	var out []string
	for f, n := range total {
		if zero[f] == n {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// featureOfSlot maps a slot name back to its feature name: categorical
// slots are "feature=value", numeric slots are the bare feature name.
func featureOfSlot(slot string) string {
	if i := strings.IndexByte(slot, '='); i >= 0 {
		return slot[:i]
	}
	return slot
}
