// Package ml is HELIX-Go's machine-learning substrate, standing in for the
// JVM libraries the original system delegates to (MLlib, DeepLearning4j,
// scikit-learn equivalents; paper §2.1, §3.3). It provides dense and sparse
// feature vectors, learners (logistic regression, softmax regression,
// naive Bayes, k-means, skip-gram embeddings, random Fourier features),
// learned feature transformations (bucketizer, standard scaler, indexer),
// and evaluation metrics.
//
// Everything is deterministic given an explicit seed, which is what lets
// the workflow layer distinguish reusable operators from nondeterministic
// ones (paper §6.2, MNIST workflow).
package ml

import (
	"fmt"
	"math"
	"sort"
)

// Vector is a feature vector x ∈ R^d (paper §3.1, "Data Representation").
// It has a dense and a sparse physical representation behind one interface;
// the synthesizer chooses the representation when assembling examples
// (paper §3.2.1, "Sparse vs. Dense Features").
type Vector interface {
	// Dim returns d, the dimensionality of the enclosing space.
	Dim() int
	// At returns the i-th coordinate.
	At(i int) float64
	// Dot returns the inner product with other. Panics on dimension
	// mismatch.
	Dot(other Vector) float64
	// NNZ returns the number of explicitly stored (potentially non-zero)
	// coordinates.
	NNZ() int
	// ForEach calls f for every explicitly stored coordinate in increasing
	// index order.
	ForEach(f func(i int, v float64))
	// ApproxBytes estimates the serialized size, used by the execution
	// engine's materialization decisions.
	ApproxBytes() int64
}

// DenseVector is a contiguous float64 vector.
type DenseVector []float64

// Dense returns a dense vector backed by v (no copy).
func Dense(v ...float64) DenseVector { return DenseVector(v) }

// Zeros returns a dense zero vector of dimension d.
func Zeros(d int) DenseVector { return make(DenseVector, d) }

// Dim implements Vector.
func (v DenseVector) Dim() int { return len(v) }

// At implements Vector.
func (v DenseVector) At(i int) float64 { return v[i] }

// NNZ implements Vector.
func (v DenseVector) NNZ() int { return len(v) }

// ForEach implements Vector.
func (v DenseVector) ForEach(f func(i int, x float64)) {
	for i, x := range v {
		f(i, x)
	}
}

// ApproxBytes implements Vector.
func (v DenseVector) ApproxBytes() int64 { return int64(8 * len(v)) }

// Dot implements Vector.
func (v DenseVector) Dot(other Vector) float64 {
	if v.Dim() != other.Dim() {
		panic(fmt.Sprintf("ml: dot dimension mismatch %d vs %d", v.Dim(), other.Dim()))
	}
	switch o := other.(type) {
	case DenseVector:
		var s float64
		for i, x := range v {
			s += x * o[i]
		}
		return s
	default:
		var s float64
		other.ForEach(func(i int, x float64) { s += v[i] * x })
		return s
	}
}

// Clone returns a copy of v.
func (v DenseVector) Clone() DenseVector {
	out := make(DenseVector, len(v))
	copy(out, v)
	return out
}

// AddScaled adds alpha*other to v in place. other may be sparse.
func (v DenseVector) AddScaled(alpha float64, other Vector) {
	other.ForEach(func(i int, x float64) { v[i] += alpha * x })
}

// Scale multiplies v by alpha in place.
func (v DenseVector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm.
func (v DenseVector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// SparseVector stores only non-zero coordinates, sorted by index.
type SparseVector struct {
	N   int       // dimension d
	Idx []int     // sorted coordinate indices
	Val []float64 // values aligned with Idx
}

// Sparse builds a sparse vector of dimension d from an index→value map.
func Sparse(d int, elems map[int]float64) *SparseVector {
	idx := make([]int, 0, len(elems))
	for i := range elems {
		if i < 0 || i >= d {
			panic(fmt.Sprintf("ml: sparse index %d out of range [0,%d)", i, d))
		}
		idx = append(idx, i)
	}
	sort.Ints(idx)
	val := make([]float64, len(idx))
	for j, i := range idx {
		val[j] = elems[i]
	}
	return &SparseVector{N: d, Idx: idx, Val: val}
}

// Dim implements Vector.
func (v *SparseVector) Dim() int { return v.N }

// NNZ implements Vector.
func (v *SparseVector) NNZ() int { return len(v.Idx) }

// At implements Vector (binary search on indices).
func (v *SparseVector) At(i int) float64 {
	j := sort.SearchInts(v.Idx, i)
	if j < len(v.Idx) && v.Idx[j] == i {
		return v.Val[j]
	}
	return 0
}

// ForEach implements Vector.
func (v *SparseVector) ForEach(f func(i int, x float64)) {
	for j, i := range v.Idx {
		f(i, v.Val[j])
	}
}

// ApproxBytes implements Vector.
func (v *SparseVector) ApproxBytes() int64 { return int64(16 * len(v.Idx)) }

// Dot implements Vector.
func (v *SparseVector) Dot(other Vector) float64 {
	if v.Dim() != other.Dim() {
		panic(fmt.Sprintf("ml: dot dimension mismatch %d vs %d", v.Dim(), other.Dim()))
	}
	var s float64
	for j, i := range v.Idx {
		s += v.Val[j] * other.At(i)
	}
	return s
}

// Concat concatenates vectors into one vector of summed dimension
// (feature concatenation ∈ F, paper §3.1). The result is dense if any
// input is dense or if density exceeds ~25%, sparse otherwise — mirroring
// HELIX's "dense wins mixtures" policy (§3.2.1).
func Concat(vs ...Vector) Vector {
	total, nnz := 0, 0
	anyDense := false
	for _, v := range vs {
		total += v.Dim()
		nnz += v.NNZ()
		if _, ok := v.(DenseVector); ok {
			anyDense = true
		}
	}
	if anyDense || (total > 0 && float64(nnz)/float64(total) > 0.25) {
		out := make(DenseVector, total)
		off := 0
		for _, v := range vs {
			v.ForEach(func(i int, x float64) { out[off+i] = x })
			off += v.Dim()
		}
		return out
	}
	idx := make([]int, 0, nnz)
	val := make([]float64, 0, nnz)
	off := 0
	for _, v := range vs {
		v.ForEach(func(i int, x float64) {
			idx = append(idx, off+i)
			val = append(val, x)
		})
		off += v.Dim()
	}
	return &SparseVector{N: total, Idx: idx, Val: val}
}

// Example is one labeled (or unlabeled) training example: the assembled
// feature vector plus an optional label (paper §3.2.1, "Examples").
type Example struct {
	X Vector
	// Y is the label; NaN when unlabeled (unsupervised settings).
	Y float64
	// Train marks whether the example belongs to the training split.
	Train bool
	// ID carries an application-level identifier through the pipeline
	// (e.g. a gene name in the genomics workflow).
	ID string
}

// HasLabel reports whether the example carries a label.
func (e Example) HasLabel() bool { return !math.IsNaN(e.Y) }

// Dataset is D: a collection of examples with a shared dimensionality.
type Dataset struct {
	Examples []Example
	Dim      int
}

// ApproxBytes implements the engine's Sizer so datasets report their
// materialization footprint cheaply.
func (d *Dataset) ApproxBytes() int64 {
	var b int64 = 16
	for _, e := range d.Examples {
		b += 32
		if e.X != nil {
			b += e.X.ApproxBytes()
		}
		b += int64(len(e.ID))
	}
	return b
}

// Split partitions the dataset into train and test subsets by the Train
// flag, without copying vectors.
func (d *Dataset) Split() (train, test *Dataset) {
	train = &Dataset{Dim: d.Dim}
	test = &Dataset{Dim: d.Dim}
	for _, e := range d.Examples {
		if e.Train {
			train.Examples = append(train.Examples, e)
		} else {
			test.Examples = append(test.Examples, e)
		}
	}
	return train, test
}
