package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeans is Lloyd's algorithm with k-means++ initialization — the
// clustering learner of the genomics workflow (paper Example 1: "cluster
// the vector representation of genes ... to identify functional
// similarity").
type KMeans struct {
	K        int
	MaxIters int   // 0 selects 50
	Seed     int64 // deterministic initialization
}

// KMeansModel is a fitted clustering: K centroids of shared dimension.
type KMeansModel struct {
	Centroids []DenseVector
}

// Predict implements Model: it returns the index of the nearest centroid.
func (m *KMeansModel) Predict(x Vector) float64 {
	k, _ := m.nearest(x)
	return float64(k)
}

// Assign returns the nearest centroid index and the squared distance.
func (m *KMeansModel) Assign(x Vector) (int, float64) { return m.nearest(x) }

// ApproxBytes implements the engine's Sizer.
func (m *KMeansModel) ApproxBytes() int64 {
	var b int64
	for _, c := range m.Centroids {
		b += int64(8 * len(c))
	}
	return b + 16
}

func (m *KMeansModel) nearest(x Vector) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for k, c := range m.Centroids {
		d := sqDist(c, x)
		if d < bestD {
			best, bestD = k, d
		}
	}
	return best, bestD
}

func sqDist(c DenseVector, x Vector) float64 {
	// ‖c−x‖² = ‖c‖² − 2c·x + ‖x‖²
	var cc, xx float64
	for _, v := range c {
		cc += v * v
	}
	cx := x.Dot(c)
	x.ForEach(func(_ int, v float64) { xx += v * v })
	d := cc - 2*cx + xx
	if d < 0 {
		return 0 // numeric noise
	}
	return d
}

// Inertia returns the total within-cluster squared distance over d —
// the qualitative evaluation metric of the genomics workflow's PPR step.
func (m *KMeansModel) Inertia(d *Dataset) float64 {
	var total float64
	for _, e := range d.Examples {
		_, dist := m.nearest(e.X)
		total += dist
	}
	return total
}

// Fit clusters all examples of d (labels are ignored; unsupervised).
func (km KMeans) Fit(d *Dataset) (*KMeansModel, error) {
	if km.K < 1 {
		return nil, fmt.Errorf("ml: kmeans: K must be ≥1, got %d", km.K)
	}
	n := len(d.Examples)
	if n == 0 {
		return nil, fmt.Errorf("ml: kmeans: empty dataset")
	}
	if km.K > n {
		return nil, fmt.Errorf("ml: kmeans: K=%d exceeds %d examples", km.K, n)
	}
	dim := d.Dim
	if dim == 0 {
		dim = d.Examples[0].X.Dim()
	}
	iters := km.MaxIters
	if iters <= 0 {
		iters = 50
	}
	rng := rand.New(rand.NewSource(km.Seed))

	// k-means++ seeding.
	centroids := make([]DenseVector, 0, km.K)
	first := toDense(d.Examples[rng.Intn(n)].X, dim)
	centroids = append(centroids, first.Clone())
	dists := make([]float64, n)
	for len(centroids) < km.K {
		var sum float64
		for i, e := range d.Examples {
			best := math.Inf(1)
			for _, c := range centroids {
				if dd := sqDist(c, e.X); dd < best {
					best = dd
				}
			}
			dists[i] = best
			sum += best
		}
		var pick int
		if sum <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * sum
			for i, dd := range dists {
				r -= dd
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		centroids = append(centroids, toDense(d.Examples[pick].X, dim).Clone())
	}

	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		model := &KMeansModel{Centroids: centroids}
		for i, e := range d.Examples {
			k, _ := model.nearest(e.X)
			if assign[i] != k {
				assign[i] = k
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		sums := make([]DenseVector, km.K)
		counts := make([]int, km.K)
		for k := range sums {
			sums[k] = Zeros(dim)
		}
		for i, e := range d.Examples {
			sums[assign[i]].AddScaled(1, e.X)
			counts[assign[i]]++
		}
		for k := range centroids {
			if counts[k] == 0 {
				// Re-seed an empty cluster at a random example.
				centroids[k] = toDense(d.Examples[rng.Intn(n)].X, dim).Clone()
				continue
			}
			sums[k].Scale(1 / float64(counts[k]))
			centroids[k] = sums[k]
		}
	}
	return &KMeansModel{Centroids: centroids}, nil
}

func toDense(x Vector, dim int) DenseVector {
	if dv, ok := x.(DenseVector); ok {
		return dv
	}
	out := Zeros(dim)
	x.ForEach(func(i int, v float64) { out[i] = v })
	return out
}
