package ml

import (
	"fmt"
	"math"
	"sort"
)

// Transformer is a learned feature transformation T: x^d → x^d' (paper
// §3.1, "Feature Transformation"). Like Scikit-learn's Transformer, its
// behavior is fit to data before use.
type Transformer interface {
	// Transform maps one input value to its transformed representation.
	Transform(x float64) float64
}

// Bucketizer discretizes a continuous feature into equal-frequency bins
// whose boundaries are learned from the data — the ageBucket operator of
// the census workflow (paper Figure 3a, line 11: "discretizing age into
// ten buckets (whose boundaries are computed by HELIX)").
type Bucketizer struct {
	// Boundaries are the learned right-exclusive bin edges (len = bins-1).
	Boundaries []float64
}

// FitBucketizer learns bins equal-frequency bucket boundaries from values.
func FitBucketizer(values []float64, bins int) (*Bucketizer, error) {
	if bins < 2 {
		return nil, fmt.Errorf("ml: bucketizer: need ≥2 bins, got %d", bins)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("ml: bucketizer: no values")
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	bounds := make([]float64, 0, bins-1)
	for b := 1; b < bins; b++ {
		idx := b * len(sorted) / bins
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		v := sorted[idx]
		if len(bounds) == 0 || v > bounds[len(bounds)-1] {
			bounds = append(bounds, v)
		}
	}
	return &Bucketizer{Boundaries: bounds}, nil
}

// Transform returns the bucket index of x as a float64. A value equal to a
// boundary belongs to the bucket starting at that boundary.
func (b *Bucketizer) Transform(x float64) float64 {
	return float64(sort.Search(len(b.Boundaries), func(i int) bool { return b.Boundaries[i] > x }))
}

// NumBuckets returns the number of distinct buckets.
func (b *Bucketizer) NumBuckets() int { return len(b.Boundaries) + 1 }

// ApproxBytes implements the engine's Sizer.
func (b *Bucketizer) ApproxBytes() int64 { return int64(8*len(b.Boundaries)) + 16 }

// StandardScaler standardizes a feature to zero mean and unit variance,
// with statistics learned from the training data (a data-dependent DPR
// function; paper §3.1).
type StandardScaler struct {
	Mean, Std float64
}

// FitStandardScaler estimates mean and standard deviation from values.
func FitStandardScaler(values []float64) (*StandardScaler, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("ml: scaler: no values")
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(len(values))
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(values)))
	if std == 0 {
		std = 1
	}
	return &StandardScaler{Mean: mean, Std: std}, nil
}

// Transform standardizes x.
func (s *StandardScaler) Transform(x float64) float64 { return (x - s.Mean) / s.Std }

// Indexer maps categorical string values to stable dense indices — the
// "human-readable formats (e.g., color=red) into an indexed vector
// representation" conversion of the paper's census workflow (§2.3). The
// mapping is learned from a full pass over the data so that train and test
// share one index space (unified learning support, §3.2.1).
type Indexer struct {
	index map[string]int
	names []string
}

// FitIndexer learns the value→index mapping from all observed values,
// assigning indices in sorted value order for determinism.
func FitIndexer(values []string) *Indexer {
	seen := make(map[string]bool, len(values))
	for _, v := range values {
		seen[v] = true
	}
	names := make([]string, 0, len(seen))
	for v := range seen {
		names = append(names, v)
	}
	sort.Strings(names)
	index := make(map[string]int, len(names))
	for i, v := range names {
		index[v] = i
	}
	return &Indexer{index: index, names: names}
}

// Index returns the dense index for value and whether it was seen at fit
// time.
func (ix *Indexer) Index(value string) (int, bool) {
	i, ok := ix.index[value]
	return i, ok
}

// Size returns the number of distinct indexed values.
func (ix *Indexer) Size() int { return len(ix.names) }

// Name returns the value at index i.
func (ix *Indexer) Name(i int) string { return ix.names[i] }

// OneHot returns the one-hot sparse encoding of value (all-zeros for
// unseen values, matching Scikit-learn's handle_unknown="ignore").
func (ix *Indexer) OneHot(value string) Vector {
	if i, ok := ix.index[value]; ok {
		return &SparseVector{N: len(ix.names), Idx: []int{i}, Val: []float64{1}}
	}
	return &SparseVector{N: len(ix.names)}
}

// ApproxBytes implements the engine's Sizer.
func (ix *Indexer) ApproxBytes() int64 {
	var b int64 = 16
	for _, n := range ix.names {
		b += int64(len(n)) + 24
	}
	return b
}

// FeatureSpace assembles named raw features into indexed feature vectors.
// It is the synthesizer's backing structure: the order of features is
// "determined globally across D" (paper §3.2.1) by sorting feature names,
// and categorical features are expanded one-hot.
type FeatureSpace struct {
	// slots maps "feature=value" (categorical) or "feature" (numeric) to a
	// dense coordinate.
	slots map[string]int
	names []string
}

// RawFeatures is the human-readable feature map produced by extractors:
// name → value, where value is either a number (numeric feature) or an
// arbitrary string (categorical feature).
type RawFeatures map[string]FeatureValue

// FeatureValue is a single raw feature value.
type FeatureValue struct {
	Num      float64
	Str      string
	IsNumber bool
}

// Num returns a numeric feature value.
func Num(v float64) FeatureValue { return FeatureValue{Num: v, IsNumber: true} }

// Cat returns a categorical feature value.
func Cat(s string) FeatureValue { return FeatureValue{Str: s} }

// FitFeatureSpace learns the global feature index from all raw feature
// maps in one pass (the paper's loop-fused "delayed and batched" learning
// of DPR functions, §3.2.1).
func FitFeatureSpace(all []RawFeatures) *FeatureSpace {
	seen := make(map[string]bool)
	for _, rf := range all {
		for name, v := range rf {
			seen[slotKey(name, v)] = true
		}
	}
	names := make([]string, 0, len(seen))
	for k := range seen {
		names = append(names, k)
	}
	sort.Strings(names)
	slots := make(map[string]int, len(names))
	for i, k := range names {
		slots[k] = i
	}
	return &FeatureSpace{slots: slots, names: names}
}

func slotKey(name string, v FeatureValue) string {
	if v.IsNumber {
		return name
	}
	return name + "=" + v.Str
}

// Dim returns the dimensionality of the assembled vector space.
func (fs *FeatureSpace) Dim() int { return len(fs.names) }

// SlotName returns the human-readable name of coordinate i — the
// provenance bookkeeping that lets HELIX trace model weights back to
// operators (paper §5.4, data-driven pruning).
func (fs *FeatureSpace) SlotName(i int) string { return fs.names[i] }

// Vectorize converts a raw feature map into a sparse vector in the learned
// space. Unseen categorical values map to nothing.
func (fs *FeatureSpace) Vectorize(rf RawFeatures) Vector {
	elems := make(map[int]float64, len(rf))
	for name, v := range rf {
		slot, ok := fs.slots[slotKey(name, v)]
		if !ok {
			continue
		}
		if v.IsNumber {
			elems[slot] = v.Num
		} else {
			elems[slot] = 1
		}
	}
	return Sparse(len(fs.names), elems)
}

// ApproxBytes implements the engine's Sizer.
func (fs *FeatureSpace) ApproxBytes() int64 {
	var b int64 = 16
	for _, n := range fs.names {
		b += int64(len(n)) + 24
	}
	return b
}
