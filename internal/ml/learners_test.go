package ml

import (
	"math"
	"math/rand"
	"testing"
)

// synthBinary generates a linearly separable binary dataset with margin.
func synthBinary(n, dim int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	d := &Dataset{Dim: dim}
	for i := 0; i < n; i++ {
		x := make(DenseVector, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		var dot float64
		for j := range x {
			dot += w[j] * x[j]
		}
		y := 0.0
		if dot > 0 {
			y = 1
		}
		d.Examples = append(d.Examples, Example{X: x, Y: y, Train: i%5 != 0})
	}
	return d
}

func TestLogisticRegressionLearnsSeparableData(t *testing.T) {
	d := synthBinary(800, 6, 1)
	m, err := LogisticRegression{RegParam: 0.001, Epochs: 30, Seed: 1}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	_, test := d.Split()
	if acc := BinaryAccuracy(m, test); acc < 0.9 {
		t.Fatalf("test accuracy %.3f < 0.9", acc)
	}
}

func TestLogisticRegressionDeterministicGivenSeed(t *testing.T) {
	d := synthBinary(200, 4, 2)
	m1, err := LogisticRegression{Seed: 7}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := LogisticRegression{Seed: 7}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.W {
		if m1.W[i] != m2.W[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func TestLogisticRegressionRegularizationShrinksWeights(t *testing.T) {
	d := synthBinary(400, 5, 3)
	weak, err := LogisticRegression{RegParam: 0.0001, Seed: 1}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := LogisticRegression{RegParam: 1.0, Seed: 1}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if strong.W.Norm2() >= weak.W.Norm2() {
		t.Fatalf("strong reg norm %.4f ≥ weak reg norm %.4f", strong.W.Norm2(), weak.W.Norm2())
	}
}

func TestLogisticRegressionNoTrainingData(t *testing.T) {
	d := &Dataset{Dim: 2, Examples: []Example{{X: Dense(1, 2), Y: math.NaN(), Train: true}}}
	if _, err := (LogisticRegression{}).Fit(d); err == nil {
		t.Fatal("expected error on unlabeled data")
	}
}

func TestSoftmaxLearnsThreeClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := &Dataset{Dim: 2}
	centers := [][2]float64{{0, 4}, {4, -4}, {-4, -4}}
	for i := 0; i < 600; i++ {
		k := i % 3
		x := Dense(centers[k][0]+rng.NormFloat64(), centers[k][1]+rng.NormFloat64())
		d.Examples = append(d.Examples, Example{X: x, Y: float64(k), Train: i%5 != 0})
	}
	m, err := SoftmaxRegression{Classes: 3, Seed: 4}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	_, test := d.Split()
	if acc := Accuracy(m, test); acc < 0.9 {
		t.Fatalf("softmax accuracy %.3f < 0.9", acc)
	}
}

func TestSoftmaxRejectsBadConfig(t *testing.T) {
	if _, err := (SoftmaxRegression{Classes: 1}).Fit(&Dataset{}); err == nil {
		t.Fatal("expected error for 1 class")
	}
	d := &Dataset{Dim: 1, Examples: []Example{{X: Dense(1), Y: 5, Train: true}}}
	if _, err := (SoftmaxRegression{Classes: 3}).Fit(d); err == nil {
		t.Fatal("expected error for out-of-range label")
	}
}

func TestKMeansRecoversClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := &Dataset{Dim: 2}
	centers := [][2]float64{{0, 10}, {10, 0}, {-10, -10}}
	for i := 0; i < 300; i++ {
		k := i % 3
		x := Dense(centers[k][0]+rng.NormFloat64()*0.5, centers[k][1]+rng.NormFloat64()*0.5)
		d.Examples = append(d.Examples, Example{X: x, Y: float64(k)})
	}
	m, err := KMeans{K: 3, Seed: 5}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	// Every true cluster must map to exactly one centroid.
	seen := make(map[int]int)
	for _, e := range d.Examples {
		c, _ := m.Assign(e.X)
		if prev, ok := seen[int(e.Y)]; ok && prev != c {
			t.Fatalf("true cluster %v split across centroids %d and %d", e.Y, prev, c)
		}
		seen[int(e.Y)] = c
	}
	if len(seen) != 3 {
		t.Fatalf("found %d clusters, want 3", len(seen))
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := &Dataset{Dim: 3}
	for i := 0; i < 200; i++ {
		d.Examples = append(d.Examples, Example{X: Dense(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())})
	}
	m1, err := KMeans{K: 1, Seed: 6}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	m8, err := KMeans{K: 8, Seed: 6}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if m8.Inertia(d) >= m1.Inertia(d) {
		t.Fatalf("K=8 inertia %.2f ≥ K=1 inertia %.2f", m8.Inertia(d), m1.Inertia(d))
	}
}

func TestKMeansRejectsBadConfig(t *testing.T) {
	if _, err := (KMeans{K: 0}).Fit(&Dataset{Examples: []Example{{X: Dense(1)}}}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := (KMeans{K: 5}).Fit(&Dataset{Examples: []Example{{X: Dense(1)}}}); err == nil {
		t.Fatal("expected error for K > n")
	}
	if _, err := (KMeans{K: 1}).Fit(&Dataset{}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestNaiveBayesSeparatesWordCounts(t *testing.T) {
	// Class 0 uses features {0,1}; class 1 uses features {2,3}.
	d := &Dataset{Dim: 4}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		k := i % 2
		elems := map[int]float64{}
		if k == 0 {
			elems[0] = float64(1 + rng.Intn(5))
			elems[1] = float64(rng.Intn(3))
		} else {
			elems[2] = float64(1 + rng.Intn(5))
			elems[3] = float64(rng.Intn(3))
		}
		d.Examples = append(d.Examples, Example{X: Sparse(4, elems), Y: float64(k), Train: i%4 != 0})
	}
	m, err := NaiveBayes{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	_, test := d.Split()
	if acc := Accuracy(m, test); acc < 0.95 {
		t.Fatalf("NB accuracy %.3f < 0.95", acc)
	}
}

func TestNaiveBayesErrors(t *testing.T) {
	if _, err := (NaiveBayes{}).Fit(&Dataset{}); err == nil {
		t.Fatal("expected error on empty dataset")
	}
}

func TestWord2VecGroupsCooccurringWords(t *testing.T) {
	// Two disjoint topic vocabularies; words within a topic co-occur.
	topicA := []string{"gene", "protein", "dna", "rna", "cell"}
	topicB := []string{"stock", "market", "price", "trade", "bond"}
	rng := rand.New(rand.NewSource(8))
	var sentences [][]string
	for i := 0; i < 400; i++ {
		topic := topicA
		if i%2 == 1 {
			topic = topicB
		}
		s := make([]string, 8)
		for j := range s {
			s[j] = topic[rng.Intn(len(topic))]
		}
		sentences = append(sentences, s)
	}
	emb, err := Word2Vec{Dim: 16, Epochs: 4, Seed: 8}.Fit(sentences)
	if err != nil {
		t.Fatal(err)
	}
	within := emb.Similarity("gene", "protein")
	across := emb.Similarity("gene", "stock")
	if within <= across {
		t.Fatalf("within-topic similarity %.3f ≤ across-topic %.3f", within, across)
	}
}

func TestWord2VecMostSimilar(t *testing.T) {
	sentences := [][]string{}
	for i := 0; i < 200; i++ {
		sentences = append(sentences, []string{"a", "b", "a", "b"}, []string{"x", "y", "x", "y"})
	}
	emb, err := Word2Vec{Dim: 8, Epochs: 3, Seed: 9}.Fit(sentences)
	if err != nil {
		t.Fatal(err)
	}
	if got := emb.MostSimilar("a", 1); len(got) != 1 || got[0] != "b" {
		t.Fatalf("MostSimilar(a) = %v, want [b]", got)
	}
	if emb.MostSimilar("missing", 3) != nil {
		t.Fatal("OOV word should return nil")
	}
}

func TestWord2VecEmptyVocabulary(t *testing.T) {
	if _, err := (Word2Vec{MinCount: 10}.Fit([][]string{{"once"}})); err == nil {
		t.Fatal("expected empty-vocabulary error")
	}
}

func TestWord2VecDeterministic(t *testing.T) {
	sentences := [][]string{{"a", "b", "c", "a", "b"}, {"b", "c", "a", "c"}}
	for i := 0; i < 3; i++ {
		sentences = append(sentences, sentences...)
	}
	e1, err := Word2Vec{Dim: 4, Seed: 3, MinCount: 1}.Fit(sentences)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Word2Vec{Dim: 4, Seed: 3, MinCount: 1}.Fit(sentences)
	if err != nil {
		t.Fatal(err)
	}
	for w, v1 := range e1.Vectors {
		v2 := e2.Vectors[w]
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatal("same seed produced different embeddings")
			}
		}
	}
}

func TestRFFApproximatesRBFKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	dim := 5
	gamma := 0.5
	r, err := NewRFF(dim, 2048, gamma, 10)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		x := make(DenseVector, dim)
		y := make(DenseVector, dim)
		for i := 0; i < dim; i++ {
			x[i] = rng.NormFloat64() * 0.3
			y[i] = rng.NormFloat64() * 0.3
		}
		zx, zy := r.Project(x), r.Project(y)
		var sq float64
		for i := range x {
			d := x[i] - y[i]
			sq += d * d
		}
		kernel := math.Exp(-gamma * sq)
		if !almostEqual(zx.Dot(zy), kernel, 0.1) {
			t.Fatalf("RFF approximation %.3f vs kernel %.3f", zx.Dot(zy), kernel)
		}
	}
}

func TestRFFSeedChangesProjection(t *testing.T) {
	r1, _ := NewRFF(3, 16, 1, 1)
	r2, _ := NewRFF(3, 16, 1, 2)
	x := Dense(1, 2, 3)
	p1, p2 := r1.Project(x), r2.Project(x)
	same := true
	for i := range p1 {
		if p1[i] != p2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical projections")
	}
}

func TestRFFErrors(t *testing.T) {
	if _, err := NewRFF(0, 16, 1, 1); err == nil {
		t.Fatal("expected error for zero input dim")
	}
}

func TestRFFProjectDatasetPreservesMetadata(t *testing.T) {
	r, _ := NewRFF(2, 8, 1, 1)
	d := &Dataset{Dim: 2, Examples: []Example{{X: Dense(1, 2), Y: 1, Train: true, ID: "e1"}}}
	out := r.ProjectDataset(d)
	if out.Dim != 8 || len(out.Examples) != 1 {
		t.Fatal("projection shape wrong")
	}
	e := out.Examples[0]
	if e.Y != 1 || !e.Train || e.ID != "e1" {
		t.Fatal("metadata lost")
	}
}
