package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDenseVectorBasics(t *testing.T) {
	v := Dense(1, 2, 3)
	if v.Dim() != 3 || v.NNZ() != 3 {
		t.Fatalf("dim/nnz = %d/%d", v.Dim(), v.NNZ())
	}
	if v.At(1) != 2 {
		t.Fatalf("At(1) = %v", v.At(1))
	}
	if got := v.Dot(Dense(4, 5, 6)); got != 32 {
		t.Fatalf("dot = %v, want 32", got)
	}
}

func TestDenseDotSparse(t *testing.T) {
	d := Dense(1, 0, 2, 0, 3)
	s := Sparse(5, map[int]float64{0: 10, 4: 100})
	if got := d.Dot(s); got != 310 {
		t.Fatalf("dense·sparse = %v, want 310", got)
	}
	if got := s.Dot(d); got != 310 {
		t.Fatalf("sparse·dense = %v, want 310", got)
	}
}

func TestDotDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dense(1, 2).Dot(Dense(1, 2, 3))
}

func TestSparseVectorAt(t *testing.T) {
	s := Sparse(10, map[int]float64{3: 1.5, 7: -2})
	if s.At(3) != 1.5 || s.At(7) != -2 || s.At(0) != 0 || s.At(9) != 0 {
		t.Fatal("sparse At wrong")
	}
	if s.NNZ() != 2 || s.Dim() != 10 {
		t.Fatalf("nnz/dim = %d/%d", s.NNZ(), s.Dim())
	}
}

func TestSparseOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	Sparse(3, map[int]float64{5: 1})
}

func TestSparseForEachOrdered(t *testing.T) {
	s := Sparse(100, map[int]float64{50: 1, 2: 2, 99: 3, 10: 4})
	last := -1
	s.ForEach(func(i int, _ float64) {
		if i <= last {
			t.Fatalf("ForEach out of order: %d after %d", i, last)
		}
		last = i
	})
}

func TestAddScaled(t *testing.T) {
	v := Dense(1, 1, 1)
	v.AddScaled(2, Sparse(3, map[int]float64{1: 3}))
	if v[0] != 1 || v[1] != 7 || v[2] != 1 {
		t.Fatalf("AddScaled = %v", v)
	}
}

func TestConcatDense(t *testing.T) {
	c := Concat(Dense(1, 2), Dense(3))
	if c.Dim() != 3 {
		t.Fatalf("dim = %d", c.Dim())
	}
	if _, ok := c.(DenseVector); !ok {
		t.Fatal("concat of dense should be dense")
	}
	for i, want := range []float64{1, 2, 3} {
		if c.At(i) != want {
			t.Fatalf("c[%d] = %v, want %v", i, c.At(i), want)
		}
	}
}

func TestConcatSparseStaysSparse(t *testing.T) {
	a := Sparse(100, map[int]float64{1: 1})
	b := Sparse(100, map[int]float64{50: 2})
	c := Concat(a, b)
	if _, ok := c.(*SparseVector); !ok {
		t.Fatal("concat of sparse low-density vectors should stay sparse")
	}
	if c.Dim() != 200 || c.At(1) != 1 || c.At(150) != 2 {
		t.Fatal("concat offsets wrong")
	}
}

func TestConcatMixedGoesDense(t *testing.T) {
	// Paper §3.2.1: "When assembling a mixture of dense and sparse FVs,
	// HELIX currently opts for a dense representation".
	c := Concat(Sparse(10, map[int]float64{2: 5}), Dense(1, 2))
	if _, ok := c.(DenseVector); !ok {
		t.Fatal("mixed concat should be dense")
	}
	if c.At(2) != 5 || c.At(10) != 1 || c.At(11) != 2 {
		t.Fatal("mixed concat values wrong")
	}
}

// Property: sparse and dense representations agree on Dot for random data.
func TestPropertySparseDenseDotAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(50)
		dense := make(DenseVector, d)
		elems := make(map[int]float64)
		for i := 0; i < d/2; i++ {
			j := rng.Intn(d)
			v := rng.NormFloat64()
			dense[j] = v
			elems[j] = v
		}
		// Zero out any dense coordinate not recorded in elems (overwrites).
		for i := range dense {
			if _, ok := elems[i]; !ok {
				dense[i] = 0
			}
		}
		sparse := Sparse(d, elems)
		other := make(DenseVector, d)
		for i := range other {
			other[i] = rng.NormFloat64()
		}
		return almostEqual(dense.Dot(other), sparse.Dot(other), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Concat preserves all coordinates at shifted offsets.
func TestPropertyConcatPreservesCoordinates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		vs := make([]Vector, n)
		var flat []float64
		for i := range vs {
			d := 1 + rng.Intn(10)
			dv := make(DenseVector, d)
			for j := range dv {
				dv[j] = rng.NormFloat64()
			}
			vs[i] = dv
			flat = append(flat, dv...)
		}
		c := Concat(vs...)
		if c.Dim() != len(flat) {
			return false
		}
		for i, want := range flat {
			if !almostEqual(c.At(i), want, 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetSplit(t *testing.T) {
	d := &Dataset{Dim: 1, Examples: []Example{
		{X: Dense(1), Y: 0, Train: true},
		{X: Dense(2), Y: 1, Train: false},
		{X: Dense(3), Y: 1, Train: true},
	}}
	train, test := d.Split()
	if len(train.Examples) != 2 || len(test.Examples) != 1 {
		t.Fatalf("split sizes = %d/%d", len(train.Examples), len(test.Examples))
	}
	if train.Dim != 1 || test.Dim != 1 {
		t.Fatal("split lost dim")
	}
}

func TestExampleHasLabel(t *testing.T) {
	if (Example{Y: math.NaN()}).HasLabel() {
		t.Fatal("NaN label should be unlabeled")
	}
	if !(Example{Y: 0}).HasLabel() {
		t.Fatal("zero label is a label")
	}
}

func TestApproxBytesPositive(t *testing.T) {
	if Dense(1, 2, 3).ApproxBytes() != 24 {
		t.Fatal("dense bytes")
	}
	s := Sparse(100, map[int]float64{1: 1, 2: 2})
	if s.ApproxBytes() != 32 {
		t.Fatal("sparse bytes")
	}
	ds := &Dataset{Examples: []Example{{X: Dense(1), ID: "ab"}}}
	if ds.ApproxBytes() <= 0 {
		t.Fatal("dataset bytes")
	}
}
