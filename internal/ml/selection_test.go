package ml

import (
	"math"
	"testing"
)

func scoreAccuracy(m Model, d *Dataset) float64 { return BinaryAccuracy(m, d) }

func TestCrossValidateReasonableScore(t *testing.T) {
	d := synthBinary(400, 5, 21)
	score, err := CrossValidate(LRFitter{LogisticRegression{RegParam: 0.01, Epochs: 15, Seed: 1}}, d, 4, scoreAccuracy)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.85 || score > 1.0 {
		t.Fatalf("cv accuracy = %.3f", score)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	d := synthBinary(10, 2, 1)
	if _, err := CrossValidate(LRFitter{}, d, 1, scoreAccuracy); err == nil {
		t.Fatal("expected error for <2 folds")
	}
	tiny := &Dataset{Dim: 1, Examples: []Example{{X: Dense(1), Y: 1, Train: true}}}
	if _, err := CrossValidate(LRFitter{}, tiny, 5, scoreAccuracy); err == nil {
		t.Fatal("expected error for too few examples")
	}
}

func TestGridSearchPrefersSensibleRegularization(t *testing.T) {
	d := synthBinary(500, 6, 22)
	candidates := []Fitter{
		LRFitter{LogisticRegression{RegParam: 100, Epochs: 15, Seed: 1}},  // over-regularized
		LRFitter{LogisticRegression{RegParam: 0.01, Epochs: 15, Seed: 1}}, // sensible
		LRFitter{LogisticRegression{RegParam: 10, Epochs: 15, Seed: 1}},   // over-regularized
	}
	res, err := GridSearch(candidates, d, 4, scoreAccuracy)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestIndex != 1 {
		t.Fatalf("best index = %d (scores %v), want 1", res.BestIndex, res.Scores)
	}
	if res.Model == nil {
		t.Fatal("no refitted model")
	}
	if math.IsInf(res.BestScore, 0) || res.BestScore < 0.8 {
		t.Fatalf("best score = %v", res.BestScore)
	}
}

func TestGridSearchEmpty(t *testing.T) {
	if _, err := GridSearch(nil, &Dataset{}, 3, scoreAccuracy); err == nil {
		t.Fatal("expected error for empty grid")
	}
}

func TestCrossValidateFoldsDisjoint(t *testing.T) {
	// Every training example must appear in exactly one validation fold:
	// verify by counting with a scorer that tallies validation sizes.
	d := synthBinary(100, 3, 23)
	var seen int
	_, err := CrossValidate(LRFitter{LogisticRegression{Epochs: 1, Seed: 1}}, d, 5,
		func(m Model, fold *Dataset) float64 {
			seen += len(fold.Examples)
			return 0
		})
	if err != nil {
		t.Fatal(err)
	}
	var trainCount int
	for _, e := range d.Examples {
		if e.Train {
			trainCount++
		}
	}
	if seen != trainCount {
		t.Fatalf("validation folds covered %d examples, want %d", seen, trainCount)
	}
}
