package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// PCA learns a linear dimensionality reduction — one of the
// data-dependent feature transformations the paper lists alongside
// scaling and discretization (§3.1.1: "Other examples of data-dependent
// transformations include ... dimensionality reduction"). Components are
// found by power iteration with deflation, which needs only
// matrix-vector products and suits the library's no-dependency policy.
type PCA struct {
	// Components is the target dimensionality k.
	Components int
	// Iterations per component; 0 selects 100.
	Iterations int
	// Seed initializes the power iteration.
	Seed int64
}

// PCAModel is a fitted projection: the data mean and k principal axes.
type PCAModel struct {
	Mean      DenseVector
	Axes      []DenseVector // unit-norm principal directions
	Explained []float64     // eigenvalues (variance along each axis)
	InputDim  int
	OutputDim int
}

// ApproxBytes implements the engine's Sizer.
func (m *PCAModel) ApproxBytes() int64 {
	b := int64(8 * len(m.Mean))
	for _, a := range m.Axes {
		b += int64(8 * len(a))
	}
	return b + int64(8*len(m.Explained)) + 32
}

// Fit estimates the top-k principal components of the examples of d.
func (p PCA) Fit(d *Dataset) (*PCAModel, error) {
	n := len(d.Examples)
	if n == 0 {
		return nil, fmt.Errorf("ml: pca: empty dataset")
	}
	dim := d.Dim
	if dim == 0 {
		dim = d.Examples[0].X.Dim()
	}
	k := p.Components
	if k < 1 || k > dim {
		return nil, fmt.Errorf("ml: pca: components %d out of range [1,%d]", k, dim)
	}
	iters := p.Iterations
	if iters <= 0 {
		iters = 100
	}

	// Mean.
	mean := Zeros(dim)
	for _, e := range d.Examples {
		mean.AddScaled(1, e.X)
	}
	mean.Scale(1 / float64(n))

	// Centered data rows (dense; PCA inputs are typically dense images).
	rows := make([]DenseVector, n)
	for i, e := range d.Examples {
		r := toDense(e.X, dim).Clone()
		r.AddScaled(-1, mean)
		rows[i] = r
	}

	rng := rand.New(rand.NewSource(p.Seed))
	model := &PCAModel{Mean: mean, InputDim: dim, OutputDim: k}
	for c := 0; c < k; c++ {
		v := make(DenseVector, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		normalize(v)
		var lambda float64
		for it := 0; it < iters; it++ {
			// w = Cov·v computed as Σ rows_i (rows_i·v) / n.
			w := Zeros(dim)
			for _, r := range rows {
				w.AddScaled(r.Dot(v), r)
			}
			w.Scale(1 / float64(n))
			lambda = w.Norm2()
			if lambda == 0 {
				break
			}
			w.Scale(1 / lambda)
			// Convergence check.
			if math.Abs(w.Dot(v)) > 1-1e-10 {
				v = w
				break
			}
			v = w
		}
		model.Axes = append(model.Axes, v)
		model.Explained = append(model.Explained, lambda)
		// Deflate: remove the found component from every row.
		for _, r := range rows {
			r.AddScaled(-r.Dot(v), v)
		}
	}
	return model, nil
}

func normalize(v DenseVector) {
	if n := v.Norm2(); n > 0 {
		v.Scale(1 / n)
	}
}

// Project maps one vector into the principal subspace.
func (m *PCAModel) Project(x Vector) DenseVector {
	centered := toDense(x, m.InputDim).Clone()
	centered.AddScaled(-1, m.Mean)
	out := make(DenseVector, len(m.Axes))
	for i, a := range m.Axes {
		out[i] = centered.Dot(a)
	}
	return out
}

// ProjectDataset maps every example, preserving labels and splits.
func (m *PCAModel) ProjectDataset(d *Dataset) *Dataset {
	out := &Dataset{Dim: len(m.Axes), Examples: make([]Example, len(d.Examples))}
	for i, e := range d.Examples {
		out.Examples[i] = Example{X: m.Project(e.X), Y: e.Y, Train: e.Train, ID: e.ID}
	}
	return out
}
