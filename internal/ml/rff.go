package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// RandomFourierFeatures approximates an RBF kernel by projecting inputs
// through random cosine features — the MnistRandomFFT preprocessing of the
// paper's MNIST workflow (KeystoneML's pipeline, §6.2). The projection is
// drawn at construction time; the paper's workflow draws it fresh every
// run, making the operator nondeterministic and hence never reusable
// (§6.2: "nondeterministic (and hence not reusable) data preprocessing").
type RandomFourierFeatures struct {
	// InDim is the input dimensionality.
	InDim int
	// OutDim is the number of random features; 0 selects 256.
	OutDim int
	// Gamma is the RBF bandwidth; 0 selects 1/InDim.
	Gamma float64
	// Seed draws the projection. Callers model nondeterminism by passing a
	// fresh seed per run.
	Seed int64

	w [][]float64 // [OutDim][InDim] projection
	b []float64   // [OutDim] phases
}

// NewRFF draws the random projection for the given configuration.
func NewRFF(inDim, outDim int, gamma float64, seed int64) (*RandomFourierFeatures, error) {
	if inDim <= 0 {
		return nil, fmt.Errorf("ml: rff: input dim must be positive, got %d", inDim)
	}
	if outDim <= 0 {
		outDim = 256
	}
	if gamma <= 0 {
		gamma = 1 / float64(inDim)
	}
	rng := rand.New(rand.NewSource(seed))
	r := &RandomFourierFeatures{InDim: inDim, OutDim: outDim, Gamma: gamma, Seed: seed}
	scale := math.Sqrt(2 * gamma)
	r.w = make([][]float64, outDim)
	r.b = make([]float64, outDim)
	for j := 0; j < outDim; j++ {
		row := make([]float64, inDim)
		for i := range row {
			row[i] = rng.NormFloat64() * scale
		}
		r.w[j] = row
		r.b[j] = rng.Float64() * 2 * math.Pi
	}
	return r, nil
}

// Project maps x into the random feature space: z_j = √(2/D)·cos(w_j·x+b_j).
func (r *RandomFourierFeatures) Project(x Vector) DenseVector {
	if x.Dim() != r.InDim {
		panic(fmt.Sprintf("ml: rff: input dim %d, want %d", x.Dim(), r.InDim))
	}
	out := make(DenseVector, r.OutDim)
	norm := math.Sqrt(2 / float64(r.OutDim))
	for j := 0; j < r.OutDim; j++ {
		var dot float64
		w := r.w[j]
		x.ForEach(func(i int, v float64) { dot += w[i] * v })
		out[j] = norm * math.Cos(dot+r.b[j])
	}
	return out
}

// ProjectDataset maps every example of d, preserving labels and splits.
// The result is dense and OutDim-dimensional — the "large DPR
// intermediates" of the paper's MNIST analysis (§6.5.2).
func (r *RandomFourierFeatures) ProjectDataset(d *Dataset) *Dataset {
	out := &Dataset{Dim: r.OutDim, Examples: make([]Example, len(d.Examples))}
	for i, e := range d.Examples {
		out.Examples[i] = Example{X: r.Project(e.X), Y: e.Y, Train: e.Train, ID: e.ID}
	}
	return out
}
