package ml

import (
	"math/rand"
	"testing"
)

func TestZeroWeightSlots(t *testing.T) {
	fs := FitFeatureSpace([]RawFeatures{
		{"age": Num(30), "edu": Cat("HS"), "noise": Num(1)},
		{"age": Num(40), "edu": Cat("PhD"), "noise": Num(2)},
	})
	w := Zeros(fs.Dim())
	// Give weight only to "age".
	for i := 0; i < fs.Dim(); i++ {
		if fs.SlotName(i) == "age" {
			w[i] = 1.5
		}
	}
	zeros := ZeroWeightSlots(w, fs, 1e-9)
	if len(zeros) != fs.Dim()-1 {
		t.Fatalf("zero slots = %d, want %d", len(zeros), fs.Dim()-1)
	}
	for _, s := range zeros {
		if s == "age" {
			t.Fatal("weighted slot reported as zero")
		}
	}
}

func TestPrunableFeaturesGroupsOneHots(t *testing.T) {
	fs := FitFeatureSpace([]RawFeatures{
		{"edu": Cat("HS"), "occ": Cat("Tech"), "age": Num(30)},
		{"edu": Cat("PhD"), "occ": Cat("Sales"), "age": Num(40)},
	})
	w := Zeros(fs.Dim())
	// edu=PhD carries weight; everything else zero. Then "edu" is NOT
	// prunable (one live slot) but "occ" and "age" are.
	for i := 0; i < fs.Dim(); i++ {
		if fs.SlotName(i) == "edu=PhD" {
			w[i] = -0.7
		}
	}
	prunable := PrunableFeatures(w, fs, 1e-9)
	want := map[string]bool{"age": true, "occ": true}
	if len(prunable) != 2 {
		t.Fatalf("prunable = %v", prunable)
	}
	for _, f := range prunable {
		if !want[f] {
			t.Fatalf("unexpected prunable feature %q", f)
		}
	}
}

// TestDataDrivenPruningEndToEnd trains a model on data where one feature
// is pure noise with no signal; L2 regularization should drive its weight
// toward zero relative to the informative feature, and the provenance
// helpers should reflect the ordering.
func TestDataDrivenPruningEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var raw []RawFeatures
	var labels []float64
	for i := 0; i < 600; i++ {
		signal := rng.NormFloat64()
		noise := rng.NormFloat64()
		raw = append(raw, RawFeatures{"signal": Num(signal), "noise": Num(noise)})
		y := 0.0
		if signal > 0 {
			y = 1
		}
		labels = append(labels, y)
	}
	fs := FitFeatureSpace(raw)
	ds := &Dataset{Dim: fs.Dim()}
	for i := range raw {
		ds.Examples = append(ds.Examples, Example{X: fs.Vectorize(raw[i]), Y: labels[i], Train: true})
	}
	m, err := LogisticRegression{RegParam: 0.05, Epochs: 30, Seed: 11}.Fit(ds)
	if err != nil {
		t.Fatal(err)
	}
	var wSignal, wNoise float64
	for i := 0; i < fs.Dim(); i++ {
		switch fs.SlotName(i) {
		case "signal":
			wSignal = m.W[i]
		case "noise":
			wNoise = m.W[i]
		}
	}
	if abs(wSignal) < 5*abs(wNoise) {
		t.Fatalf("signal weight %.3f not dominant over noise %.3f", wSignal, wNoise)
	}
	// With eps between the two magnitudes, only noise is prunable.
	eps := (abs(wSignal) + abs(wNoise)) / 2
	prunable := PrunableFeatures(m.W, fs, eps)
	if len(prunable) != 1 || prunable[0] != "noise" {
		t.Fatalf("prunable = %v, want [noise]", prunable)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
