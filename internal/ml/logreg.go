package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Model is a learned function f usable for inference (learning D → f,
// inference (D, f) → Y; paper §3.1 L/I). Implementations are immutable
// after Fit.
type Model interface {
	// Predict returns the model output for a single feature vector.
	Predict(x Vector) float64
}

// LogisticRegression is a binary logistic-regression learner trained by
// mini-batch SGD with L2 regularization — the "LR" model of the census
// workflow (paper Figure 3a, line 15).
type LogisticRegression struct {
	// RegParam is the L2 regularization strength λ.
	RegParam float64
	// LearningRate is the SGD step size; 0 selects 0.1.
	LearningRate float64
	// Epochs is the number of passes over the training data; 0 selects 20.
	Epochs int
	// BatchSize is the mini-batch size; 0 selects 32.
	BatchSize int
	// Seed drives shuffling; fits are deterministic given a seed.
	Seed int64
}

// LRModel is a fitted logistic-regression model.
type LRModel struct {
	W    DenseVector // feature weights
	Bias float64
}

// Predict returns P(y=1 | x).
func (m *LRModel) Predict(x Vector) float64 { return sigmoid(x.Dot(m.W) + m.Bias) }

// PredictClass returns the hard 0/1 decision at threshold 0.5.
func (m *LRModel) PredictClass(x Vector) float64 {
	if m.Predict(x) >= 0.5 {
		return 1
	}
	return 0
}

// Weights exposes the learned weights (used by data-driven pruning,
// paper §5.4: operators producing only zero-weight features can be pruned).
func (m *LRModel) Weights() DenseVector { return m.W }

// ApproxBytes implements the engine's Sizer.
func (m *LRModel) ApproxBytes() int64 { return int64(8*len(m.W)) + 16 }

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Fit trains on the labeled training examples of d and returns the model.
func (lr LogisticRegression) Fit(d *Dataset) (*LRModel, error) {
	var train []Example
	for _, e := range d.Examples {
		if e.Train && e.HasLabel() {
			train = append(train, e)
		}
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("ml: logistic regression: no labeled training examples")
	}
	dim := d.Dim
	if dim == 0 {
		dim = train[0].X.Dim()
	}
	rate := lr.LearningRate
	if rate <= 0 {
		rate = 0.1
	}
	epochs := lr.Epochs
	if epochs <= 0 {
		epochs = 20
	}
	batch := lr.BatchSize
	if batch <= 0 {
		batch = 32
	}
	rng := rand.New(rand.NewSource(lr.Seed))
	w := Zeros(dim)
	var bias float64
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	grad := Zeros(dim)
	for ep := 0; ep < epochs; ep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		step := rate / (1 + 0.1*float64(ep)) // decaying schedule
		for off := 0; off < len(order); off += batch {
			end := off + batch
			if end > len(order) {
				end = len(order)
			}
			for i := range grad {
				grad[i] = 0
			}
			var gBias float64
			for _, j := range order[off:end] {
				e := train[j]
				err := sigmoid(e.X.Dot(w)+bias) - e.Y
				grad.AddScaled(err, e.X)
				gBias += err
			}
			inv := 1 / float64(end-off)
			// L2 shrinkage then gradient step.
			if lr.RegParam > 0 {
				w.Scale(1 - step*lr.RegParam)
			}
			w.AddScaled(-step*inv, grad)
			bias -= step * inv * gBias
		}
	}
	return &LRModel{W: w, Bias: bias}, nil
}

// SoftmaxRegression is a K-class linear classifier trained by mini-batch
// SGD — the multiclass learner of the MNIST workflow.
type SoftmaxRegression struct {
	Classes      int
	RegParam     float64
	LearningRate float64
	Epochs       int
	BatchSize    int
	Seed         int64
}

// SoftmaxModel is a fitted softmax-regression model.
type SoftmaxModel struct {
	W    []DenseVector // one weight vector per class
	Bias DenseVector
}

// Scores returns the unnormalized class scores for x.
func (m *SoftmaxModel) Scores(x Vector) DenseVector {
	out := make(DenseVector, len(m.W))
	for k, w := range m.W {
		out[k] = x.Dot(w) + m.Bias[k]
	}
	return out
}

// Predict implements Model: it returns the argmax class as a float64.
func (m *SoftmaxModel) Predict(x Vector) float64 {
	scores := m.Scores(x)
	best, bestV := 0, math.Inf(-1)
	for k, v := range scores {
		if v > bestV {
			best, bestV = k, v
		}
	}
	return float64(best)
}

// ApproxBytes implements the engine's Sizer.
func (m *SoftmaxModel) ApproxBytes() int64 {
	var b int64 = 16
	for _, w := range m.W {
		b += int64(8 * len(w))
	}
	return b + int64(8*len(m.Bias))
}

// Fit trains on the labeled training examples of d.
func (sr SoftmaxRegression) Fit(d *Dataset) (*SoftmaxModel, error) {
	if sr.Classes < 2 {
		return nil, fmt.Errorf("ml: softmax regression: need ≥2 classes, got %d", sr.Classes)
	}
	var train []Example
	for _, e := range d.Examples {
		if e.Train && e.HasLabel() {
			train = append(train, e)
		}
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("ml: softmax regression: no labeled training examples")
	}
	dim := d.Dim
	if dim == 0 {
		dim = train[0].X.Dim()
	}
	rate := sr.LearningRate
	if rate <= 0 {
		rate = 0.1
	}
	epochs := sr.Epochs
	if epochs <= 0 {
		epochs = 10
	}
	batch := sr.BatchSize
	if batch <= 0 {
		batch = 32
	}
	rng := rand.New(rand.NewSource(sr.Seed))
	m := &SoftmaxModel{W: make([]DenseVector, sr.Classes), Bias: Zeros(sr.Classes)}
	for k := range m.W {
		m.W[k] = Zeros(dim)
	}
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	probs := make([]float64, sr.Classes)
	for ep := 0; ep < epochs; ep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		step := rate / (1 + 0.1*float64(ep))
		for off := 0; off < len(order); off += batch {
			end := off + batch
			if end > len(order) {
				end = len(order)
			}
			inv := 1 / float64(end-off)
			for _, j := range order[off:end] {
				e := train[j]
				scores := m.Scores(e.X)
				softmaxInPlace(scores, probs)
				y := int(e.Y)
				if y < 0 || y >= sr.Classes {
					return nil, fmt.Errorf("ml: softmax regression: label %v out of range [0,%d)", e.Y, sr.Classes)
				}
				for k := 0; k < sr.Classes; k++ {
					g := probs[k]
					if k == y {
						g -= 1
					}
					if sr.RegParam > 0 {
						m.W[k].Scale(1 - step*inv*sr.RegParam)
					}
					m.W[k].AddScaled(-step*inv*g, e.X)
					m.Bias[k] -= step * inv * g
				}
			}
		}
	}
	return m, nil
}

func softmaxInPlace(scores DenseVector, out []float64) {
	max := math.Inf(-1)
	for _, s := range scores {
		if s > max {
			max = s
		}
	}
	var sum float64
	for k, s := range scores {
		out[k] = math.Exp(s - max)
		sum += out[k]
	}
	for k := range out {
		out[k] /= sum
	}
}
