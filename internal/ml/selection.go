package ml

import (
	"fmt"
	"math"
)

// Fitter abstracts a learner configuration that can fit a dataset — the
// Estimator passed into Scikit-learn's model selection (paper §3.1.1).
type Fitter interface {
	Fit(d *Dataset) (Model, error)
}

// LRFitter adapts LogisticRegression to the Fitter interface.
type LRFitter struct{ LogisticRegression }

// Fit implements Fitter.
func (f LRFitter) Fit(d *Dataset) (Model, error) { return f.LogisticRegression.Fit(d) }

// Scorer evaluates a fitted model on a dataset; higher is better.
type Scorer func(Model, *Dataset) float64

// CrossValidate estimates a fitter's score by k-fold cross validation
// over the training examples of d. Per Table 1, model selection is a
// reduce implemented in terms of learning, inference, and reduce — this
// is the inner learning+scoring loop.
func CrossValidate(f Fitter, d *Dataset, folds int, score Scorer) (float64, error) {
	if folds < 2 {
		return 0, fmt.Errorf("ml: cross validation needs ≥2 folds, got %d", folds)
	}
	var train []Example
	for _, e := range d.Examples {
		if e.Train && e.HasLabel() {
			train = append(train, e)
		}
	}
	if len(train) < folds {
		return 0, fmt.Errorf("ml: %d examples for %d folds", len(train), folds)
	}
	var total float64
	for k := 0; k < folds; k++ {
		foldTrain := &Dataset{Dim: d.Dim}
		foldTest := &Dataset{Dim: d.Dim}
		for i, e := range train {
			if i%folds == k {
				e.Train = false
				foldTest.Examples = append(foldTest.Examples, e)
			} else {
				e.Train = true
				foldTrain.Examples = append(foldTrain.Examples, e)
			}
		}
		m, err := f.Fit(foldTrain)
		if err != nil {
			return 0, fmt.Errorf("ml: fold %d: %w", k, err)
		}
		total += score(m, foldTest)
	}
	return total / float64(folds), nil
}

// GridSearchResult reports the winning configuration of a grid search.
type GridSearchResult struct {
	BestIndex int
	BestScore float64
	Scores    []float64
	Model     Model
}

// GridSearch fits every candidate via k-fold cross validation, selects
// the best by score, and refits it on the full training data — the
// "reduce over learning, inference, and reduce" composition of Table 1.
func GridSearch(candidates []Fitter, d *Dataset, folds int, score Scorer) (*GridSearchResult, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("ml: grid search with no candidates")
	}
	res := &GridSearchResult{BestIndex: -1, BestScore: math.Inf(-1), Scores: make([]float64, len(candidates))}
	for i, f := range candidates {
		s, err := CrossValidate(f, d, folds, score)
		if err != nil {
			return nil, fmt.Errorf("ml: candidate %d: %w", i, err)
		}
		res.Scores[i] = s
		if s > res.BestScore {
			res.BestScore = s
			res.BestIndex = i
		}
	}
	m, err := candidates[res.BestIndex].Fit(d)
	if err != nil {
		return nil, err
	}
	res.Model = m
	return res, nil
}
