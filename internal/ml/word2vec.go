package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Word2Vec learns word embeddings via skip-gram with negative sampling —
// the embedding learner of the genomics workflow (paper Example 1:
// "compute embeddings using an approach like word2vec"). It is a compact
// reimplementation of Mikolov et al.'s SGNS objective, deterministic given
// a seed.
type Word2Vec struct {
	// Dim is the embedding dimensionality; 0 selects 32.
	Dim int
	// Window is the one-sided context window; 0 selects 4.
	Window int
	// Negatives is the number of negative samples per positive; 0 selects 5.
	Negatives int
	// Epochs is the number of passes over the corpus; 0 selects 3.
	Epochs int
	// LearningRate is the initial SGD step; 0 selects 0.025.
	LearningRate float64
	// MinCount drops words rarer than this from the vocabulary; 0 selects 2.
	MinCount int
	// Seed drives all sampling.
	Seed int64
}

// Embeddings maps each vocabulary word to its learned vector.
type Embeddings struct {
	Dim     int
	Vectors map[string]DenseVector
}

// Vector returns the embedding for word and whether it is in vocabulary.
func (e *Embeddings) Vector(word string) (DenseVector, bool) {
	v, ok := e.Vectors[word]
	return v, ok
}

// Similarity returns the cosine similarity of two words, or 0 if either is
// out of vocabulary.
func (e *Embeddings) Similarity(a, b string) float64 {
	va, oka := e.Vectors[a]
	vb, okb := e.Vectors[b]
	if !oka || !okb {
		return 0
	}
	na, nb := va.Norm2(), vb.Norm2()
	if na == 0 || nb == 0 {
		return 0
	}
	return va.Dot(vb) / (na * nb)
}

// MostSimilar returns the k in-vocabulary words closest to word by cosine
// similarity, excluding word itself, in decreasing order.
func (e *Embeddings) MostSimilar(word string, k int) []string {
	v, ok := e.Vectors[word]
	if !ok || k <= 0 {
		return nil
	}
	type cand struct {
		w string
		s float64
	}
	cands := make([]cand, 0, len(e.Vectors))
	nv := v.Norm2()
	for w, u := range e.Vectors {
		if w == word {
			continue
		}
		nu := u.Norm2()
		if nu == 0 || nv == 0 {
			continue
		}
		cands = append(cands, cand{w, v.Dot(u) / (nv * nu)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return cands[i].w < cands[j].w
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].w
	}
	return out
}

// ApproxBytes implements the engine's Sizer.
func (e *Embeddings) ApproxBytes() int64 {
	var b int64 = 16
	for w, v := range e.Vectors {
		b += int64(len(w)) + int64(8*len(v))
	}
	return b
}

// Fit trains embeddings over sentences (each a slice of tokens).
func (w2v Word2Vec) Fit(sentences [][]string) (*Embeddings, error) {
	dim := w2v.Dim
	if dim <= 0 {
		dim = 32
	}
	window := w2v.Window
	if window <= 0 {
		window = 4
	}
	neg := w2v.Negatives
	if neg <= 0 {
		neg = 5
	}
	epochs := w2v.Epochs
	if epochs <= 0 {
		epochs = 3
	}
	rate := w2v.LearningRate
	if rate <= 0 {
		rate = 0.025
	}
	minCount := w2v.MinCount
	if minCount <= 0 {
		minCount = 2
	}

	// Vocabulary with counts.
	counts := make(map[string]int)
	for _, s := range sentences {
		for _, w := range s {
			counts[w]++
		}
	}
	words := make([]string, 0, len(counts))
	for w, c := range counts {
		if c >= minCount {
			words = append(words, w)
		}
	}
	if len(words) == 0 {
		return nil, fmt.Errorf("ml: word2vec: vocabulary empty (min count %d)", minCount)
	}
	sort.Strings(words) // deterministic ids
	id := make(map[string]int, len(words))
	for i, w := range words {
		id[w] = i
	}
	v := len(words)

	// Unigram^0.75 table for negative sampling.
	cum := make([]float64, v)
	var z float64
	for i, w := range words {
		z += math.Pow(float64(counts[w]), 0.75)
		cum[i] = z
	}

	rng := rand.New(rand.NewSource(w2v.Seed))
	in := make([]DenseVector, v)  // input (word) vectors
	out := make([]DenseVector, v) // output (context) vectors
	for i := 0; i < v; i++ {
		in[i] = make(DenseVector, dim)
		for j := range in[i] {
			in[i][j] = (rng.Float64() - 0.5) / float64(dim)
		}
		out[i] = make(DenseVector, dim)
	}
	sampleNeg := func() int {
		r := rng.Float64() * z
		return sort.SearchFloat64s(cum, r)
	}

	gradIn := make(DenseVector, dim)
	for ep := 0; ep < epochs; ep++ {
		step := rate / (1 + 0.5*float64(ep))
		for _, sent := range sentences {
			// Map to ids, dropping out-of-vocabulary tokens.
			ids := make([]int, 0, len(sent))
			for _, w := range sent {
				if i, ok := id[w]; ok {
					ids = append(ids, i)
				}
			}
			for pos, center := range ids {
				lo := pos - window
				if lo < 0 {
					lo = 0
				}
				hi := pos + window
				if hi >= len(ids) {
					hi = len(ids) - 1
				}
				for cpos := lo; cpos <= hi; cpos++ {
					if cpos == pos {
						continue
					}
					ctx := ids[cpos]
					for i := range gradIn {
						gradIn[i] = 0
					}
					// Positive pair.
					sgnsUpdate(in[center], out[ctx], 1, step, gradIn)
					// Negative samples.
					for s := 0; s < neg; s++ {
						n := sampleNeg()
						if n == ctx {
							continue
						}
						sgnsUpdate(in[center], out[n], 0, step, gradIn)
					}
					in[center].AddScaled(1, gradIn)
				}
			}
		}
	}

	emb := &Embeddings{Dim: dim, Vectors: make(map[string]DenseVector, v)}
	for i, w := range words {
		emb.Vectors[w] = in[i]
	}
	return emb, nil
}

// sgnsUpdate applies one SGNS gradient step for pair (w, c) with label y,
// updating the context vector in place and accumulating the input-vector
// gradient into gradIn (applied by the caller after all samples).
func sgnsUpdate(w, c DenseVector, y float64, step float64, gradIn DenseVector) {
	g := (sigmoid(w.Dot(c)) - y) * step
	for i := range c {
		gradIn[i] -= g * c[i]
		c[i] -= g * w[i]
	}
}
