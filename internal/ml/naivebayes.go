package ml

import (
	"fmt"
	"math"
)

// NaiveBayes is a multinomial naive Bayes classifier with Laplace
// smoothing, operating on non-negative feature counts — a standard
// baseline learner for sparse text features (paper §3.1 uses NB as its
// running data-dependent-transformation example).
type NaiveBayes struct {
	// Alpha is the Laplace smoothing constant; 0 selects 1.
	Alpha float64
	// Classes is the number of classes; 0 infers from labels.
	Classes int
}

// NBModel is a fitted multinomial naive Bayes model.
type NBModel struct {
	LogPrior []float64   // log P(y=k)
	LogCond  [][]float64 // log P(feature i | y=k), [class][feature]
}

// Predict implements Model: it returns the argmax class.
func (m *NBModel) Predict(x Vector) float64 {
	best, bestLL := 0, math.Inf(-1)
	for k := range m.LogPrior {
		ll := m.LogPrior[k]
		x.ForEach(func(i int, v float64) {
			if v > 0 {
				ll += v * m.LogCond[k][i]
			}
		})
		if ll > bestLL {
			best, bestLL = k, ll
		}
	}
	return float64(best)
}

// ApproxBytes implements the engine's Sizer.
func (m *NBModel) ApproxBytes() int64 {
	var b int64 = int64(8 * len(m.LogPrior))
	for _, row := range m.LogCond {
		b += int64(8 * len(row))
	}
	return b
}

// Fit trains on the labeled training examples of d.
func (nb NaiveBayes) Fit(d *Dataset) (*NBModel, error) {
	alpha := nb.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	var train []Example
	classes := nb.Classes
	for _, e := range d.Examples {
		if e.Train && e.HasLabel() {
			train = append(train, e)
			if int(e.Y)+1 > classes {
				classes = int(e.Y) + 1
			}
		}
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("ml: naive bayes: no labeled training examples")
	}
	if classes < 2 {
		return nil, fmt.Errorf("ml: naive bayes: need ≥2 classes, got %d", classes)
	}
	dim := d.Dim
	if dim == 0 {
		dim = train[0].X.Dim()
	}
	counts := make([][]float64, classes)
	totals := make([]float64, classes)
	nPerClass := make([]float64, classes)
	for k := range counts {
		counts[k] = make([]float64, dim)
	}
	for _, e := range train {
		k := int(e.Y)
		if k < 0 || k >= classes {
			return nil, fmt.Errorf("ml: naive bayes: label %v out of range [0,%d)", e.Y, classes)
		}
		nPerClass[k]++
		e.X.ForEach(func(i int, v float64) {
			if v < 0 {
				v = 0 // multinomial NB requires non-negative counts
			}
			counts[k][i] += v
			totals[k] += v
		})
	}
	m := &NBModel{
		LogPrior: make([]float64, classes),
		LogCond:  make([][]float64, classes),
	}
	n := float64(len(train))
	for k := 0; k < classes; k++ {
		m.LogPrior[k] = math.Log((nPerClass[k] + alpha) / (n + alpha*float64(classes)))
		m.LogCond[k] = make([]float64, dim)
		denom := totals[k] + alpha*float64(dim)
		for i := 0; i < dim; i++ {
			m.LogCond[k][i] = math.Log((counts[k][i] + alpha) / denom)
		}
	}
	return m, nil
}
