// Package collection is HELIX-Go's dataflow substrate, standing in for
// Spark in the original system (paper §2.1). It provides partitioned
// in-memory collections with data-parallel Map / FlatMap / Filter / Join /
// GroupBy / Reduce operators executed by a configurable number of workers.
//
// The worker count models cluster size for the scaling experiments
// (paper Figure 7b); an optional per-operation barrier overhead models the
// synchronization/communication cost that grows with cluster size and
// produces the paper's observed PPR slowdown at 8 workers.
package collection

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Env configures the execution environment of a collection, standing in
// for the Spark cluster configuration.
type Env struct {
	// Workers is the degree of parallelism (≥1). Models executors.
	Workers int
	// BarrierOverhead is charged once per parallel operation per worker,
	// modeling the scheduling + shuffle communication cost of a cluster.
	// Zero for single-node runs.
	BarrierOverhead time.Duration
}

// DefaultEnv is a single-node environment with 4 workers and no simulated
// communication overhead.
func DefaultEnv() *Env { return &Env{Workers: 4} }

// normalize clamps invalid configurations.
func (e *Env) normalize() (workers int) {
	if e == nil || e.Workers < 1 {
		return 1
	}
	return e.Workers
}

// barrier simulates the per-operation synchronization cost of a cluster.
func (e *Env) barrier() {
	if e == nil || e.BarrierOverhead <= 0 {
		return
	}
	time.Sleep(e.BarrierOverhead * time.Duration(e.normalize()))
}

// Collection is an immutable, partitioned dataset of T — the physical
// representation behind a HELIX data collection (DC).
type Collection[T any] struct {
	env   *Env
	parts [][]T
}

// New builds a collection from a slice, splitting it into one partition per
// worker. The input slice is not copied; callers must not mutate it.
func New[T any](env *Env, data []T) *Collection[T] {
	w := env.normalize()
	parts := make([][]T, 0, w)
	n := len(data)
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		parts = append(parts, data[lo:hi])
	}
	return &Collection[T]{env: env, parts: parts}
}

// FromPartitions builds a collection directly from partitions.
func FromPartitions[T any](env *Env, parts [][]T) *Collection[T] {
	return &Collection[T]{env: env, parts: parts}
}

// Env returns the collection's environment.
func (c *Collection[T]) Env() *Env { return c.env }

// Len returns the total number of elements.
func (c *Collection[T]) Len() int {
	n := 0
	for _, p := range c.parts {
		n += len(p)
	}
	return n
}

// NumPartitions returns the partition count.
func (c *Collection[T]) NumPartitions() int { return len(c.parts) }

// Collect gathers all elements into a single slice in partition order.
func (c *Collection[T]) Collect() []T {
	out := make([]T, 0, c.Len())
	for _, p := range c.parts {
		out = append(out, p...)
	}
	return out
}

// forEachPartition runs f over partitions on the env's workers.
func forEachPartition[T any](c *Collection[T], f func(pi int, part []T)) {
	c.env.barrier()
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.env.normalize())
	for pi, part := range c.parts {
		wg.Add(1)
		sem <- struct{}{}
		go func(pi int, part []T) {
			defer wg.Done()
			defer func() { <-sem }()
			f(pi, part)
		}(pi, part)
	}
	wg.Wait()
}

// Map applies f to every element in parallel.
func Map[T, U any](c *Collection[T], f func(T) U) *Collection[U] {
	out := make([][]U, len(c.parts))
	forEachPartition(c, func(pi int, part []T) {
		res := make([]U, len(part))
		for i, v := range part {
			res[i] = f(v)
		}
		out[pi] = res
	})
	return &Collection[U]{env: c.env, parts: out}
}

// FlatMap applies f to every element and concatenates the results — the
// Scanner semantics of the paper (§3.2.2: "acts like a flatMap ... can also
// be used to perform filtering").
func FlatMap[T, U any](c *Collection[T], f func(T) []U) *Collection[U] {
	out := make([][]U, len(c.parts))
	forEachPartition(c, func(pi int, part []T) {
		var res []U
		for _, v := range part {
			res = append(res, f(v)...)
		}
		out[pi] = res
	})
	return &Collection[U]{env: c.env, parts: out}
}

// Filter keeps elements where pred is true.
func Filter[T any](c *Collection[T], pred func(T) bool) *Collection[T] {
	out := make([][]T, len(c.parts))
	forEachPartition(c, func(pi int, part []T) {
		var res []T
		for _, v := range part {
			if pred(v) {
				res = append(res, v)
			}
		}
		out[pi] = res
	})
	return &Collection[T]{env: c.env, parts: out}
}

// Reduce folds the collection: fold accumulates within a partition starting
// from init(), merge combines partition results. merge must be associative
// and commutative with respect to fold results.
func Reduce[T, A any](c *Collection[T], init func() A, fold func(A, T) A, merge func(A, A) A) A {
	accs := make([]A, len(c.parts))
	forEachPartition(c, func(pi int, part []T) {
		acc := init()
		for _, v := range part {
			acc = fold(acc, v)
		}
		accs[pi] = acc
	})
	result := init()
	for _, a := range accs {
		result = merge(result, a)
	}
	return result
}

// Pair is a keyed join result.
type Pair[L, R any] struct {
	Left  L
	Right R
}

// Join performs an inner equi-join between two collections — the
// Synthesizer join ∈ F of the paper. The right side is broadcast (hashed
// once); the left side streams in parallel.
func Join[L, R any, K comparable](left *Collection[L], right *Collection[R], keyL func(L) K, keyR func(R) K) *Collection[Pair[L, R]] {
	index := make(map[K][]R)
	for _, p := range right.parts {
		for _, r := range p {
			k := keyR(r)
			index[k] = append(index[k], r)
		}
	}
	out := make([][]Pair[L, R], len(left.parts))
	forEachPartition(left, func(pi int, part []L) {
		var res []Pair[L, R]
		for _, l := range part {
			for _, r := range index[keyL(l)] {
				res = append(res, Pair[L, R]{Left: l, Right: r})
			}
		}
		out[pi] = res
	})
	return &Collection[Pair[L, R]]{env: left.env, parts: out}
}

// GroupBy groups elements by key. The result is a map from key to all
// elements with that key, in partition order.
func GroupBy[T any, K comparable](c *Collection[T], key func(T) K) map[K][]T {
	groups := make([]map[K][]T, len(c.parts))
	forEachPartition(c, func(pi int, part []T) {
		g := make(map[K][]T)
		for _, v := range part {
			k := key(v)
			g[k] = append(g[k], v)
		}
		groups[pi] = g
	})
	merged := make(map[K][]T)
	for _, g := range groups {
		for k, vs := range g {
			merged[k] = append(merged[k], vs...)
		}
	}
	return merged
}

// Sample returns a deterministic pseudo-random sample of approximately
// fraction*Len() elements using the given seed.
func Sample[T any](c *Collection[T], fraction float64, seed int64) *Collection[T] {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("collection: sample fraction %v out of [0,1]", fraction))
	}
	out := make([][]T, len(c.parts))
	forEachPartition(c, func(pi int, part []T) {
		rng := rand.New(rand.NewSource(seed + int64(pi)))
		var res []T
		for _, v := range part {
			if rng.Float64() < fraction {
				res = append(res, v)
			}
		}
		out[pi] = res
	})
	return &Collection[T]{env: c.env, parts: out}
}

// Repartition redistributes the collection into one partition per worker
// of env, rebalancing after size-skewing operations.
func Repartition[T any](c *Collection[T], env *Env) *Collection[T] {
	return New(env, c.Collect())
}

// Split partitions a collection into two by a predicate — used to separate
// training and test examples while keeping a unified DC (paper §3.2.1,
// "unified learning support").
func Split[T any](c *Collection[T], pred func(T) bool) (yes, no *Collection[T]) {
	yesParts := make([][]T, len(c.parts))
	noParts := make([][]T, len(c.parts))
	forEachPartition(c, func(pi int, part []T) {
		var y, n []T
		for _, v := range part {
			if pred(v) {
				y = append(y, v)
			} else {
				n = append(n, v)
			}
		}
		yesParts[pi] = y
		noParts[pi] = n
	})
	return &Collection[T]{env: c.env, parts: yesParts}, &Collection[T]{env: c.env, parts: noParts}
}
