package collection

import "sort"

// Distinct returns the unique elements of c by key, keeping the first
// occurrence in collection order. The key function makes arbitrary
// element types deduplicable (Spark's distinct over keyed rows).
func Distinct[T any, K comparable](c *Collection[T], key func(T) K) *Collection[T] {
	c.env.barrier()
	seen := make(map[K]bool)
	var out []T
	for _, part := range c.parts {
		for _, v := range part {
			k := key(v)
			if !seen[k] {
				seen[k] = true
				out = append(out, v)
			}
		}
	}
	return New(c.env, out)
}

// Union concatenates two collections, preserving order (left then right).
// Both must share an environment semantically; the result uses left's.
func Union[T any](left, right *Collection[T]) *Collection[T] {
	left.env.barrier()
	out := make([]T, 0, left.Len()+right.Len())
	out = append(out, left.Collect()...)
	out = append(out, right.Collect()...)
	return New(left.env, out)
}

// SortBy returns the elements sorted by the given less function. Each
// partition is sorted in parallel, then merged — the shape of a
// distributed sort's local-sort + merge phases.
func SortBy[T any](c *Collection[T], less func(a, b T) bool) *Collection[T] {
	sorted := make([][]T, len(c.parts))
	forEachPartition(c, func(pi int, part []T) {
		local := make([]T, len(part))
		copy(local, part)
		sort.SliceStable(local, func(i, j int) bool { return less(local[i], local[j]) })
		sorted[pi] = local
	})
	// K-way merge of sorted partitions.
	out := make([]T, 0, c.Len())
	idx := make([]int, len(sorted))
	for {
		best := -1
		for pi, part := range sorted {
			if idx[pi] >= len(part) {
				continue
			}
			if best == -1 || less(part[idx[pi]], sorted[best][idx[best]]) {
				best = pi
			}
		}
		if best == -1 {
			break
		}
		out = append(out, sorted[best][idx[best]])
		idx[best]++
	}
	return New(c.env, out)
}

// CountByKey returns the number of elements per key — the aggregation
// shape of word counting and vocabulary building.
func CountByKey[T any, K comparable](c *Collection[T], key func(T) K) map[K]int {
	type partial = map[K]int
	return Reduce(c,
		func() partial { return make(partial) },
		func(acc partial, v T) partial {
			acc[key(v)]++
			return acc
		},
		func(a, b partial) partial {
			for k, n := range b {
				a[k] += n
			}
			return a
		})
}
