package collection

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestNewAndCollectRoundTrip(t *testing.T) {
	env := &Env{Workers: 3}
	data := ints(10)
	c := New(env, data)
	if got := c.Collect(); !reflect.DeepEqual(got, data) {
		t.Fatalf("Collect = %v, want %v", got, data)
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want 10", c.Len())
	}
	if c.NumPartitions() != 3 {
		t.Fatalf("NumPartitions = %d, want 3", c.NumPartitions())
	}
}

func TestNewEmptyCollection(t *testing.T) {
	c := New(DefaultEnv(), []int{})
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
	if got := Map(c, func(i int) int { return i * 2 }).Len(); got != 0 {
		t.Fatalf("Map over empty = %d elements", got)
	}
}

func TestNewFewerElementsThanWorkers(t *testing.T) {
	c := New(&Env{Workers: 8}, []int{1, 2})
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if got := c.Collect(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Collect = %v", got)
	}
}

func TestNilEnvBehavesAsSingleWorker(t *testing.T) {
	c := New(nil, ints(5))
	if got := Map(c, func(i int) int { return i + 1 }).Collect(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("Map with nil env = %v", got)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	c := New(&Env{Workers: 4}, ints(100))
	got := Map(c, func(i int) int { return i * i }).Collect()
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestFlatMapExpandsAndFilters(t *testing.T) {
	c := New(&Env{Workers: 2}, []int{1, 2, 3})
	// Emit i copies of i; 0 copies acts as a filter.
	got := FlatMap(c, func(i int) []int {
		out := make([]int, i)
		for j := range out {
			out[j] = i
		}
		return out
	}).Collect()
	want := []int{1, 2, 2, 3, 3, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FlatMap = %v, want %v", got, want)
	}
}

func TestFilter(t *testing.T) {
	c := New(&Env{Workers: 3}, ints(10))
	got := Filter(c, func(i int) bool { return i%2 == 0 }).Collect()
	if !reflect.DeepEqual(got, []int{0, 2, 4, 6, 8}) {
		t.Fatalf("Filter = %v", got)
	}
}

func TestReduceSum(t *testing.T) {
	c := New(&Env{Workers: 4}, ints(101))
	sum := Reduce(c,
		func() int { return 0 },
		func(a, v int) int { return a + v },
		func(a, b int) int { return a + b })
	if sum != 5050 {
		t.Fatalf("Reduce sum = %d, want 5050", sum)
	}
}

func TestJoinInner(t *testing.T) {
	env := &Env{Workers: 2}
	left := New(env, []string{"apple", "avocado", "banana"})
	right := New(env, []int{1, 5, 6, 7})
	// Join on first letter ↔ digit count parity trick: key by initial/parity.
	pairs := Join(left, right,
		func(s string) int { return len(s) % 2 },
		func(i int) int { return i % 2 })
	got := pairs.Collect()
	// "apple"(5,odd) matches 1,5,7; "avocado"(7,odd) matches 1,5,7;
	// "banana"(6,even) matches 6.
	if len(got) != 7 {
		t.Fatalf("join produced %d pairs, want 7", len(got))
	}
}

func TestJoinNoMatches(t *testing.T) {
	env := DefaultEnv()
	left := New(env, []int{1, 2})
	right := New(env, []int{3, 4})
	pairs := Join(left, right, func(i int) int { return i }, func(i int) int { return i })
	if pairs.Len() != 0 {
		t.Fatalf("join = %d pairs, want 0", pairs.Len())
	}
}

func TestGroupBy(t *testing.T) {
	c := New(&Env{Workers: 3}, ints(10))
	groups := GroupBy(c, func(i int) int { return i % 3 })
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	if got := groups[0]; !reflect.DeepEqual(got, []int{0, 3, 6, 9}) {
		t.Fatalf("group 0 = %v", got)
	}
}

func TestSampleDeterministic(t *testing.T) {
	c := New(&Env{Workers: 2}, ints(1000))
	a := Sample(c, 0.3, 7).Collect()
	b := Sample(c, 0.3, 7).Collect()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Sample not deterministic for same seed")
	}
	if len(a) < 200 || len(a) > 400 {
		t.Fatalf("sample size %d out of expected range for 0.3 of 1000", len(a))
	}
}

func TestSampleFractionBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for fraction > 1")
		}
	}()
	Sample(New(DefaultEnv(), ints(3)), 1.5, 0)
}

func TestSplit(t *testing.T) {
	c := New(&Env{Workers: 2}, ints(10))
	even, odd := Split(c, func(i int) bool { return i%2 == 0 })
	if even.Len() != 5 || odd.Len() != 5 {
		t.Fatalf("split sizes = %d, %d", even.Len(), odd.Len())
	}
	for _, v := range even.Collect() {
		if v%2 != 0 {
			t.Fatalf("even split contains %d", v)
		}
	}
}

func TestRepartition(t *testing.T) {
	c := New(&Env{Workers: 2}, ints(20))
	filtered := Filter(c, func(i int) bool { return i < 3 })
	r := Repartition(filtered, &Env{Workers: 5})
	if r.Len() != 3 {
		t.Fatalf("repartition lost data: %d", r.Len())
	}
	if r.NumPartitions() != 5 {
		t.Fatalf("partitions = %d, want 5", r.NumPartitions())
	}
}

func TestBarrierOverheadCharged(t *testing.T) {
	env := &Env{Workers: 4, BarrierOverhead: 2 * time.Millisecond}
	c := New(env, ints(4))
	start := time.Now()
	Map(c, func(i int) int { return i })
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("barrier overhead not charged: elapsed %v < 8ms", elapsed)
	}
}

// --- property tests ---

// TestQuickMapIdentity: mapping identity preserves the collection.
func TestQuickMapIdentity(t *testing.T) {
	f := func(data []int, workers uint8) bool {
		env := &Env{Workers: int(workers%8) + 1}
		c := New(env, data)
		got := Map(c, func(i int) int { return i }).Collect()
		if len(data) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMapComposition: Map(g) ∘ Map(f) ≡ Map(g∘f).
func TestQuickMapComposition(t *testing.T) {
	fn := func(i int) int { return i*3 + 1 }
	gn := func(i int) int { return i - 7 }
	f := func(data []int, workers uint8) bool {
		env := &Env{Workers: int(workers%8) + 1}
		c := New(env, data)
		a := Map(Map(c, fn), gn).Collect()
		b := Map(c, func(i int) int { return gn(fn(i)) }).Collect()
		if len(a) == 0 && len(b) == 0 {
			return true
		}
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFilterSubset: filtered output is a subsequence of input
// containing exactly the matching elements.
func TestQuickFilterSubset(t *testing.T) {
	f := func(data []int, workers uint8) bool {
		env := &Env{Workers: int(workers%8) + 1}
		pred := func(i int) bool { return i%3 == 0 }
		got := Filter(New(env, data), pred).Collect()
		var want []int
		for _, v := range data {
			if pred(v) {
				want = append(want, v)
			}
		}
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReduceMatchesSequential: parallel reduce equals sequential fold
// for an associative/commutative operation.
func TestQuickReduceMatchesSequential(t *testing.T) {
	f := func(data []int32, workers uint8) bool {
		env := &Env{Workers: int(workers%8) + 1}
		c := New(env, data)
		got := Reduce(c, func() int64 { return 0 },
			func(a int64, v int32) int64 { return a + int64(v) },
			func(a, b int64) int64 { return a + b })
		var want int64
		for _, v := range data {
			want += int64(v)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickJoinMatchesNestedLoop: hash join agrees with the nested-loop
// definition up to ordering.
func TestQuickJoinMatchesNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := &Env{Workers: 1 + rng.Intn(4)}
		nl, nr := rng.Intn(20), rng.Intn(20)
		left := make([]int, nl)
		right := make([]int, nr)
		for i := range left {
			left[i] = rng.Intn(5)
		}
		for i := range right {
			right[i] = rng.Intn(5)
		}
		key := func(i int) int { return i }
		got := Join(New(env, left), New(env, right), key, key).Collect()
		var want []Pair[int, int]
		for _, l := range left {
			for _, r := range right {
				if l == r {
					want = append(want, Pair[int, int]{l, r})
				}
			}
		}
		canon := func(ps []Pair[int, int]) []Pair[int, int] {
			sort.Slice(ps, func(i, j int) bool {
				if ps[i].Left != ps[j].Left {
					return ps[i].Left < ps[j].Left
				}
				return ps[i].Right < ps[j].Right
			})
			return ps
		}
		got, want = canon(got), canon(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
