// Lazy sequence view of collections: the iterator substrate behind
// streaming fused operator execution. Where the eager operators in
// collection.go fully build one partitioned collection per step (with a
// per-operation barrier each), the Seq combinators compose row-wise
// Map / FlatMap / Filter stages into a single per-element pull pipeline —
// only the pipeline's endpoints ever exist as whole collections, so a
// fused chain of k row-wise operators costs one pass, zero interior
// allocations proportional to the data, and no barriers.
package collection

import "iter"

// Seq returns the collection's elements as a lazy sequence in partition
// order — the same order Collect produces, so draining the sequence and
// collecting the collection are interchangeable representations.
func (c *Collection[T]) Seq() iter.Seq[T] {
	return func(yield func(T) bool) {
		for _, part := range c.parts {
			for _, v := range part {
				if !yield(v) {
					return
				}
			}
		}
	}
}

// SliceSeq returns a lazy sequence over a plain slice.
func SliceSeq[T any](s []T) iter.Seq[T] {
	return func(yield func(T) bool) {
		for _, v := range s {
			if !yield(v) {
				return
			}
		}
	}
}

// MapSeq lazily applies f to each element; nothing runs until the result
// is drained.
func MapSeq[T, U any](s iter.Seq[T], f func(T) U) iter.Seq[U] {
	return func(yield func(U) bool) {
		for v := range s {
			if !yield(f(v)) {
				return
			}
		}
	}
}

// FilterSeq lazily keeps the elements for which pred is true.
func FilterSeq[T any](s iter.Seq[T], pred func(T) bool) iter.Seq[T] {
	return func(yield func(T) bool) {
		for v := range s {
			if pred(v) && !yield(v) {
				return
			}
		}
	}
}

// FlatMapSeq lazily expands each element into zero or more elements.
func FlatMapSeq[T, U any](s iter.Seq[T], f func(T) []U) iter.Seq[U] {
	return func(yield func(U) bool) {
		for v := range s {
			for _, u := range f(v) {
				if !yield(u) {
					return
				}
			}
		}
	}
}

// CollectSeq drains a sequence into a slice — the materialization
// boundary of a fused pipeline. An empty sequence yields nil, matching
// the append-based batch operators byte-for-byte under encoding.
func CollectSeq[T any](s iter.Seq[T]) []T {
	var out []T
	for v := range s {
		out = append(out, v)
	}
	return out
}

// FromSeq materializes a sequence into a partitioned collection.
func FromSeq[T any](env *Env, s iter.Seq[T]) *Collection[T] {
	return New(env, CollectSeq(s))
}
