package collection

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDistinctKeepsFirstOccurrence(t *testing.T) {
	c := New(DefaultEnv(), []string{"b", "a", "b", "c", "a"})
	got := Distinct(c, func(s string) string { return s }).Collect()
	if !reflect.DeepEqual(got, []string{"b", "a", "c"}) {
		t.Fatalf("distinct = %v", got)
	}
}

func TestDistinctByDerivedKey(t *testing.T) {
	type pair struct{ K, V int }
	c := New(DefaultEnv(), []pair{{1, 10}, {2, 20}, {1, 30}})
	got := Distinct(c, func(p pair) int { return p.K }).Collect()
	if len(got) != 2 || got[0].V != 10 || got[1].V != 20 {
		t.Fatalf("distinct = %v", got)
	}
}

func TestUnionPreservesOrder(t *testing.T) {
	a := New(DefaultEnv(), []int{1, 2})
	b := New(DefaultEnv(), []int{3})
	got := Union(a, b).Collect()
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("union = %v", got)
	}
}

func TestUnionWithEmpty(t *testing.T) {
	a := New(DefaultEnv(), []int{1})
	b := New(DefaultEnv(), []int(nil))
	if got := Union(a, b).Len(); got != 1 {
		t.Fatalf("len = %d", got)
	}
	if got := Union(b, a).Len(); got != 1 {
		t.Fatalf("len = %d", got)
	}
}

func TestSortBy(t *testing.T) {
	c := New(&Env{Workers: 3}, []int{5, 2, 9, 1, 7, 3})
	got := SortBy(c, func(a, b int) bool { return a < b }).Collect()
	if !reflect.DeepEqual(got, []int{1, 2, 3, 5, 7, 9}) {
		t.Fatalf("sorted = %v", got)
	}
}

func TestSortByStableOnEqualKeys(t *testing.T) {
	type rec struct{ K, Seq int }
	in := []rec{{1, 0}, {0, 1}, {1, 2}, {0, 3}}
	c := New(&Env{Workers: 1}, in)
	got := SortBy(c, func(a, b rec) bool { return a.K < b.K }).Collect()
	want := []rec{{0, 1}, {0, 3}, {1, 0}, {1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sorted = %v", got)
	}
}

func TestCountByKey(t *testing.T) {
	c := New(&Env{Workers: 4}, []string{"a", "b", "a", "a", "c"})
	got := CountByKey(c, func(s string) string { return s })
	if got["a"] != 3 || got["b"] != 1 || got["c"] != 1 {
		t.Fatalf("counts = %v", got)
	}
}

// Property: SortBy output equals sequential sort for random inputs and
// worker counts.
func TestQuickSortByMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(50)
		}
		workers := 1 + rng.Intn(8)
		got := SortBy(New(&Env{Workers: workers}, in), func(a, b int) bool { return a < b }).Collect()
		want := append([]int(nil), in...)
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Distinct produces no duplicate keys and is a subset of input.
func TestQuickDistinctInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100)
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(20)
		}
		got := Distinct(New(&Env{Workers: 1 + rng.Intn(4)}, in), func(x int) int { return x }).Collect()
		seen := make(map[int]bool)
		inSet := make(map[int]bool)
		for _, v := range in {
			inSet[v] = true
		}
		for _, v := range got {
			if seen[v] {
				return false // duplicate survived
			}
			seen[v] = true
			if !inSet[v] {
				return false // invented element
			}
		}
		return len(seen) == len(inSet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: CountByKey sums to the input length.
func TestQuickCountByKeyTotal(t *testing.T) {
	f := func(xs []uint8) bool {
		c := New(&Env{Workers: 4}, xs)
		counts := CountByKey(c, func(x uint8) uint8 { return x % 7 })
		total := 0
		for _, n := range counts {
			total += n
		}
		return total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
