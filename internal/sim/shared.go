package sim

import (
	"context"
	"fmt"
	"os"

	"helix"
	"helix/internal/opt"
	"helix/internal/workloads"
)

// SharedRun captures one session's run against a shared artifact store:
// its wall-clock, how its plan was obtained, how many max-flow solves
// the plan cost, and the plan's state mix. The Solves delta is the
// cross-session plan-cache claim in its sharpest form — a warm session's
// first plan must be a full hit with zero solves.
type SharedRun struct {
	Session   int
	Tenant    string
	Seconds   float64
	PlanCache string
	Solves    int64
	Computes  int
	Loads     int
	Prunes    int
}

// SharedSeries is the outcome of RunSharedWarmStart: one cold session
// that computes and publishes everything, warm sessions that rerun the
// identical workflow, and one suffix session that reruns a mutated
// variant sharing the workflow's prefix.
type SharedSeries struct {
	Workload string
	// Cold is session 0's first run: an empty store, so every live node
	// computes and the intermediates are published under their chain
	// signatures.
	Cold SharedRun
	// Warm are later sessions' first runs of the identical workflow:
	// everything answers from the shared store and the shared plan cache.
	Warm []SharedRun
	// Suffix is a session running the workload's first mutation: its DAG
	// shares the unchanged prefix with the published artifacts, so only
	// the mutated suffix computes.
	Suffix SharedRun
	// Artifacts / StorageBytes snapshot the store after the cold session
	// settled; ArtifactsAfter re-counts after every other session ran.
	// Equality of the two counts is the write-once dedup claim: warm
	// sessions publish nothing new.
	Artifacts      int
	ArtifactsAfter int
	StorageBytes   int64
}

// RunSharedWarmStart drives the cross-session reuse scenario: sessions+1
// sessions attach to one shared store rooted at dir (a temp directory
// when empty) and run the named workload. Session 0 runs it twice — the
// cold publish, then a settle run that caches the steady-state plan —
// and each of the remaining sessions runs it once, warm. A final session
// applies the workload's first scheduled mutation and runs that, so the
// series also measures prefix sharing under change.
func RunSharedWarmStart(ctx context.Context, name string, scale workloads.Scale, seed int64, sessions int, dir string) (*SharedSeries, error) {
	if sessions < 2 {
		return nil, fmt.Errorf("sim: shared warm start needs at least 2 sessions, got %d", sessions)
	}
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "helix-shared-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	shared, err := helix.OpenSharedStore(dir)
	if err != nil {
		return nil, err
	}
	defer shared.Close()

	var tally runTally
	// One run of one session: fresh workload instance (mutations are
	// stateful), fresh session attached to the shared store under its own
	// tenant label, paper-faithful inline materialization so the cold
	// session's publish cost is visible in its wall-clock.
	runOnce := func(i int, mutate bool) (SharedRun, error) {
		wl, err := NewWorkload(name, scale, seed)
		if err != nil {
			return SharedRun{}, err
		}
		runs := 1
		if i == 0 {
			runs = 2 // cold publish + settle (caches the steady-state plan)
		}
		tenant := fmt.Sprintf("tenant-%d", i)
		sess, err := helix.Open("", helix.WithSharedStore(shared),
			helix.WithTenant(tenant),
			helix.WithDiskThroughput(PaperDiskBytesPerSec),
			helix.WithSyncMaterialization(true),
			helix.WithObserver(tally.observe))
		if err != nil {
			return SharedRun{}, err
		}
		defer sess.Close()
		if mutate {
			seq := wl.Sequence()
			if len(seq) > 1 {
				wl.Mutate(1, seq[1])
			}
		}
		var first SharedRun
		for r := 0; r < runs; r++ {
			tally.reset()
			before := opt.SolveCount()
			out, err := sess.Run(ctx, wl.Build())
			if err != nil {
				return SharedRun{}, fmt.Errorf("sim: shared session %d run %d: %w", i, r, err)
			}
			if r > 0 {
				continue
			}
			first = SharedRun{
				Session: i,
				Tenant:  tenant,
				Seconds: out.Wall.Seconds() + out.FlushWait.Seconds(),
				Solves:  opt.SolveCount() - before,
			}
			if p := tally.plan; p != nil {
				first.PlanCache = p.Outcome.String()
				first.Computes, first.Loads, first.Prunes = p.Compute, p.Load, p.Prune
			}
		}
		return first, nil
	}

	res := &SharedSeries{Workload: name}
	if res.Cold, err = runOnce(0, false); err != nil {
		return nil, err
	}
	res.Artifacts = shared.Artifacts()
	res.StorageBytes = shared.StorageBytes()
	for i := 1; i < sessions; i++ {
		warm, err := runOnce(i, false)
		if err != nil {
			return nil, err
		}
		res.Warm = append(res.Warm, warm)
	}
	res.ArtifactsAfter = shared.Artifacts()
	if res.Suffix, err = runOnce(sessions, true); err != nil {
		return nil, err
	}
	return res, nil
}
