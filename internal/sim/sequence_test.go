package sim

import (
	"context"
	"testing"

	"helix/internal/core"
)

func TestSampleSequenceDistribution(t *testing.T) {
	const n = 2000
	seq := SampleSequence("census", n, 1)
	if len(seq) != n {
		t.Fatalf("len = %d", len(seq))
	}
	if seq[0] != core.DPR {
		t.Fatal("iteration 0 must be the initial DPR build")
	}
	counts := map[core.Component]int{}
	for _, c := range seq[1:] {
		counts[c]++
	}
	// Census domain: PPR ≈ 60%, DPR ≈ 30%, L/I ≈ 10%.
	frac := func(c core.Component) float64 { return float64(counts[c]) / float64(n-1) }
	if f := frac(core.PPR); f < 0.5 || f > 0.7 {
		t.Fatalf("PPR fraction = %.2f, want ≈0.6", f)
	}
	if f := frac(core.DPR); f < 0.2 || f > 0.4 {
		t.Fatalf("DPR fraction = %.2f, want ≈0.3", f)
	}
}

func TestSampleSequenceAllDPRForNLP(t *testing.T) {
	for _, c := range SampleSequence("nlp", 50, 2) {
		if c != core.DPR {
			t.Fatal("nlp domain must sample only DPR iterations")
		}
	}
}

func TestSampleSequenceDeterministic(t *testing.T) {
	a := SampleSequence("mnist", 30, 7)
	b := SampleSequence("mnist", 30, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestSampleSequenceEmpty(t *testing.T) {
	if SampleSequence("census", 0, 1) != nil {
		t.Fatal("zero iterations should return nil")
	}
}

// TestRobustnessAcrossRandomSchedules is the paper's methodology run over
// freshly sampled schedules instead of the fixed figure schedule: HELIX
// OPT must beat the no-reuse baseline on every sampled schedule.
func TestRobustnessAcrossRandomSchedules(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(string(rune('a'+seed)), func(t *testing.T) {
			t.Parallel()
			base, err := NewWorkload("census", tinyScale(), 1)
			if err != nil {
				t.Fatal(err)
			}
			wl := WithSampledSequence(base, 6, seed)
			opt, err := RunSeries(ctx, wl, HelixOpt, Config{})
			if err != nil {
				t.Fatal(err)
			}
			base2, _ := NewWorkload("census", tinyScale(), 1)
			wl2 := WithSampledSequence(base2, 6, seed)
			ks, err := RunSeries(ctx, wl2, KeystoneML, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if opt.TotalSeconds() >= ks.TotalSeconds() {
				t.Errorf("schedule seed %d: helix-opt %.3fs ≥ keystoneml %.3fs",
					seed, opt.TotalSeconds(), ks.TotalSeconds())
			}
		})
	}
}
