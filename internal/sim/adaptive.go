package sim

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync/atomic"
	"time"

	"helix"
	"helix/internal/store"
)

// The adaptive proof harness: a deliberately skewed workload that makes
// the carried cost model wrong mid-series, run twice — once statically,
// once with the mid-run divergence monitor armed — so the benchmark can
// measure what adaptation buys on the tick where the skew hits.
//
// Tick 0 runs every operator in a cheap mode: the session materializes
// all twelve fan outputs and carries per-operator statistics saying
// computing them is cheaper than loading them. The harness then flips the
// operators into a slow mode (the statistics are now ~20× off) without
// changing any signature, so tick 1 plans all-compute from stale costs.
// The static session pays the full recompute; the adaptive session
// notices the divergence after the first completions, corrects the
// frontier, re-solves through the plan cache's partial path, and loads
// the rest. Tick 2 shows both sessions recovered: post-run observation
// folded the measured timings into the carried statistics, so even the
// static session plans loads from then on — adaptation only changes the
// tick where the model was wrong.

const (
	// adaptiveFan is the number of slow fan outputs.
	adaptiveFan = 12
	// adaptiveArtifact sizes each child artifact (2 MiB): large enough
	// that loads are real work under the simulated disk, far above the
	// store's bandwidth-model floor — and that the ~13ms load estimate
	// clears the fast compute cost with room for instrumented (race
	// detector) runs, whose overhead inflates measured op time but not the
	// sleep- and throttle-dominated costs the comparison turns on.
	adaptiveArtifact = 2 << 20
	// adaptiveFastDelay/adaptiveSlowDelay are the per-child compute costs
	// in the two modes. Fast sits well below the ~13ms simulated-disk load
	// cost of a 2 MiB artifact (so tick 1 plans all-compute from the
	// carried statistics); slow sits far above it (so loading wins once
	// the model is corrected).
	adaptiveFastDelay = 3 * time.Millisecond
	adaptiveSlowDelay = 80 * time.Millisecond
	// DefaultAdaptiveThreshold is the divergence threshold RunAdaptive
	// arms when the caller passes ≤0.
	DefaultAdaptiveThreshold = 0.5
)

// AdaptiveTick is one iteration of one mode of the adaptive comparison.
type AdaptiveTick struct {
	Iteration int     `json:"iteration"`
	Seconds   float64 `json:"seconds"`
	// ProjectedSeconds is the plan's final T(W,s) projection — the initial
	// plan's, or the last mid-run re-plan's when one was adopted.
	ProjectedSeconds float64 `json:"projected_seconds"`
	// GapSeconds is |Seconds − ProjectedSeconds|: the residual projection
	// error of the cost model on this tick.
	GapSeconds float64 `json:"gap_seconds"`
	PlanCache  string  `json:"plan_cache"`
	Replans    int     `json:"replans"`
	Solves     int     `json:"solves"`
	Swapped    int     `json:"swapped"`
}

// AdaptiveMode is one full series (static or adaptive).
type AdaptiveMode struct {
	Ticks        []AdaptiveTick `json:"ticks"`
	TotalSeconds float64        `json:"total_seconds"`
}

// SkewTick returns the metrics of the tick where the cost skew hit
// (iteration 1) — the tick the two modes differ on.
func (m *AdaptiveMode) SkewTick() AdaptiveTick { return m.Ticks[1] }

// AdaptiveReport is the static-versus-adaptive comparison RunAdaptive
// produces and BenchmarkAdaptive persists as BENCH_adaptive.json.
type AdaptiveReport struct {
	Threshold float64      `json:"threshold"`
	Static    AdaptiveMode `json:"static"`
	Adaptive  AdaptiveMode `json:"adaptive"`
}

// String renders the static-versus-adaptive per-tick table helixbench
// prints.
func (r *AdaptiveReport) String() string {
	out := fmt.Sprintf("Adaptive re-planning (threshold %.2f): static %.3fs vs adaptive %.3fs total",
		r.Threshold, r.Static.TotalSeconds, r.Adaptive.TotalSeconds)
	if st, ad := r.Static.SkewTick().Seconds, r.Adaptive.SkewTick().Seconds; ad > 0 {
		out += fmt.Sprintf("; skew-tick speedup %.1f×", st/ad)
	}
	out += "\nmode     tick  wall(s)  proj(s)  gap(s)   cache    replans solves swapped\n"
	for _, mode := range []struct {
		name string
		m    AdaptiveMode
	}{{"static", r.Static}, {"adaptive", r.Adaptive}} {
		for _, t := range mode.m.Ticks {
			out += fmt.Sprintf("%-8s %-5d %-8.3f %-8.3f %-8.3f %-8s %-7d %-6d %d\n",
				mode.name, t.Iteration, t.Seconds, t.ProjectedSeconds, t.GapSeconds,
				t.PlanCache, t.Replans, t.Solves, t.Swapped)
		}
	}
	return out
}

// adaptiveWorkflow builds the fan: a cheap source feeding adaptiveFan
// deterministic outputs whose cost is governed by the shared slow flag.
// Signatures never change across ticks, so flipping the flag skews the
// carried statistics without marking anything original.
func adaptiveWorkflow(slow *atomic.Bool) *helix.Workflow {
	wf := helix.New("adaptive-skew")
	src := wf.Source("seed", "adaptive-seed-v1", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
		return []float64{1, 2, 3}, nil
	})
	for i := 0; i < adaptiveFan; i++ {
		i := i
		wf.Extractor(fmt.Sprintf("fan%02d", i), "adaptive-fan-v1", func(ctx context.Context, in []helix.Value) (helix.Value, error) {
			d := adaptiveFastDelay
			if slow.Load() {
				d = adaptiveSlowDelay
			}
			time.Sleep(d)
			// The artifact is raw bytes, bulk-zeroed: []byte encodes and
			// decodes by block copy, so both the op's cost and a load's
			// cost stay dominated by the sleep and the simulated-disk
			// throttle (the knobs the comparison turns on) even when
			// instrumentation — the race detector in CI — multiplies
			// per-element memory-access cost.
			rows := make([]byte, adaptiveArtifact)
			rows[0] = byte(i + 1)
			return rows, nil
		}, src).IsOutput()
	}
	return wf
}

// RunAdaptive drives the skewed fan through three ticks under one mode
// pair — static (adaptive off) and adaptive (run-scoped WithAdaptive on
// the skewed tick and after) — in separate sessions with identical
// workloads, and reports per-tick wall time, projection gap, and planner
// counters. threshold ≤ 0 selects DefaultAdaptiveThreshold.
func RunAdaptive(ctx context.Context, cfg Config, threshold float64) (*AdaptiveReport, error) {
	if threshold <= 0 {
		threshold = DefaultAdaptiveThreshold
	}
	store.RegisterValueType([]byte(nil))
	rep := &AdaptiveReport{Threshold: threshold}
	var err error
	if rep.Static, err = runAdaptiveMode(ctx, cfg, 0); err != nil {
		return nil, fmt.Errorf("sim: adaptive comparison, static mode: %w", err)
	}
	if rep.Adaptive, err = runAdaptiveMode(ctx, cfg, threshold); err != nil {
		return nil, fmt.Errorf("sim: adaptive comparison, adaptive mode: %w", err)
	}
	return rep, nil
}

// runAdaptiveMode runs one session through the three-tick sequence;
// threshold 0 leaves the divergence monitor disarmed (the static
// baseline).
func runAdaptiveMode(ctx context.Context, cfg Config, threshold float64) (AdaptiveMode, error) {
	var mode AdaptiveMode
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "helix-adaptive-*")
		if err != nil {
			return mode, err
		}
		defer os.RemoveAll(dir)
	}
	parallelism := cfg.Parallelism
	if parallelism <= 0 {
		// Two workers: enough concurrency to exercise the monitor's claim
		// protocol, few enough that most of the fan is still unstarted when
		// the first completions trip the threshold.
		parallelism = 2
	}
	var tally runTally
	sess, err := helix.Open(dir,
		helix.WithDiskThroughput(PaperDiskBytesPerSec),
		helix.WithSyncMaterialization(true),
		helix.WithParallelism(parallelism),
		helix.WithObserver(tally.observe))
	if err != nil {
		return mode, err
	}
	defer sess.Close()

	var slow atomic.Bool
	for tick := 0; tick < 3; tick++ {
		if tick == 1 {
			slow.Store(true) // the carried cost model is now ~20× wrong
		}
		var runOpts []helix.Option
		if threshold > 0 && tick >= 1 {
			runOpts = append(runOpts, helix.WithAdaptive(threshold))
		}
		tally.reset()
		res, err := sess.Run(ctx, adaptiveWorkflow(&slow), runOpts...)
		if err != nil {
			return mode, fmt.Errorf("tick %d: %w", tick, err)
		}
		t := AdaptiveTick{Iteration: tick, Seconds: res.Wall.Seconds()}
		if p := tally.plan; p != nil {
			t.ProjectedSeconds = p.ProjectedSeconds
			t.PlanCache = p.Outcome.String()
		}
		// A re-plan that was adopted refreshes the projection; the last
		// one wins, mirroring Result.Plan.
		for _, re := range tally.replans {
			if re.Planned {
				t.ProjectedSeconds = re.ProjectedSeconds
			}
		}
		if rs := tally.stats; rs != nil {
			t.Replans, t.Solves, t.Swapped = rs.Replans, rs.Solves, rs.Swapped
		}
		t.GapSeconds = math.Abs(t.Seconds - t.ProjectedSeconds)
		mode.Ticks = append(mode.Ticks, t)
		mode.TotalSeconds += t.Seconds
	}
	return mode, nil
}
