package sim

import (
	"math/rand"

	"helix/internal/core"
	"helix/internal/opt"
	"helix/internal/workloads"
)

// SampleSequence draws an iteration-type schedule from the survey
// distribution of the given domain (paper §6.3: "we use the iteration
// frequency ... to determine the type of modifications to make in each
// iteration ... At each iteration, we draw an iteration type from
// {DPR, L/I, PPR} according to these likelihoods"). Index 0 is the
// initial version and is fixed to DPR (the first run builds everything).
func SampleSequence(domain string, iterations int, seed int64) []core.Component {
	if iterations <= 0 {
		return nil
	}
	model := opt.SurveyChangeModel(domain)
	rng := rand.New(rand.NewSource(seed))
	seq := make([]core.Component, iterations)
	seq[0] = core.DPR
	for t := 1; t < iterations; t++ {
		r := rng.Float64()
		switch {
		case r < model.P[core.DPR]:
			seq[t] = core.DPR
		case r < model.P[core.DPR]+model.P[core.LI]:
			seq[t] = core.LI
		default:
			seq[t] = core.PPR
		}
	}
	return seq
}

// ScheduledWorkload overrides a workload's canonical schedule with a
// sampled one, for robustness experiments across random schedules
// (rather than the single fixed schedule the figures use).
type ScheduledWorkload struct {
	workloads.Workload
	Schedule []core.Component
}

// Sequence implements workloads.Workload with the overridden schedule.
func (s ScheduledWorkload) Sequence() []core.Component { return s.Schedule }

// WithSampledSequence wraps wl with a schedule drawn from its domain's
// survey distribution.
func WithSampledSequence(wl workloads.Workload, iterations int, seed int64) ScheduledWorkload {
	return ScheduledWorkload{
		Workload: wl,
		Schedule: SampleSequence(wl.Name(), iterations, seed),
	}
}
