// Package sim simulates the paper's experimental methodology (§6.3):
// driving a workload through its iteration sequence under each compared
// system — HELIX OPT / AM / NM, KeystoneML, and DeepDive — and collecting
// the per-iteration metrics behind every figure of §6 (cumulative run
// time, component breakdown, state fractions, storage, memory).
//
// KeystoneML and DeepDive are modeled as execution policies over the same
// workflow DAG, isolating exactly the materialization/reuse strategy the
// paper's comparison targets: KeystoneML materializes nothing and never
// reuses (its optimizer handles only one-shot execution); DeepDive
// materializes everything but performs no automatic cross-iteration reuse,
// and its Python/shell data preprocessing runs ~2× slower than Spark's
// (paper §6.5.2).
package sim

import (
	"context"
	"fmt"
	"os"

	"helix"
	"helix/internal/core"
	"helix/internal/workloads"
)

// System identifies one of the compared systems (paper §6.1).
type System struct {
	// Name is the display name used in benchmark output.
	Name string
	// Options are the functional options that configure a session to
	// model the system; RunSeries appends its own overrides after them.
	Options []helix.Option
	// DPROnly restricts the system to DPR iterations: DeepDive supports
	// only DPR changes (paper §6.5.1), so its series stops at the first
	// non-DPR iteration.
	DPROnly bool
}

// The compared systems. DeepDive's 2× DPR slowdown models its Python and
// shell preprocessing versus Spark (paper §6.5.2: "the 2× reduction
// between HELIX OPT and DeepDive is due to the fact that DeepDive does
// data preprocessing with Python and shell scripts, while HELIX OPT uses
// Spark").
// PaperDiskBytesPerSec is the simulated disk throughput of the paper's
// environment: 170 MB/s HDD for both reads and writes (§6.3).
const PaperDiskBytesPerSec = 170e6

// The predefined systems force SyncMaterialization: every system the
// paper measures serializes and writes intermediates on its execution
// critical path, and the evaluation's comparative shapes (e.g. AM losing
// to OPT precisely because it pays materialization inline, §6.6) depend
// on that cost being visible in wall-clock time. The write-behind
// pipeline — this reproduction's own improvement — is benchmarked
// separately (internal/bench.WriteBehind) or forced via Config.Mat.
var (
	HelixOpt = System{Name: "helix-opt", Options: []helix.Option{
		helix.WithPolicy(helix.PolicyOpt),
		helix.WithDiskThroughput(PaperDiskBytesPerSec),
		helix.WithSyncMaterialization(true)}}
	HelixAM = System{Name: "helix-am", Options: []helix.Option{
		helix.WithPolicy(helix.PolicyAlways),
		helix.WithDiskThroughput(PaperDiskBytesPerSec),
		helix.WithSyncMaterialization(true)}}
	HelixNM = System{Name: "helix-nm", Options: []helix.Option{
		helix.WithPolicy(helix.PolicyNever),
		helix.WithDiskThroughput(PaperDiskBytesPerSec),
		helix.WithSyncMaterialization(true)}}
	// KeystoneML's L/I runs ~2× long: its caching optimizer fails to
	// cache the training data for learning (paper §6.5.2).
	KeystoneML = System{Name: "keystoneml", Options: []helix.Option{
		helix.WithPolicy(helix.PolicyNever), helix.WithReuse(false),
		helix.WithLISlowdown(2.0),
		helix.WithDiskThroughput(PaperDiskBytesPerSec),
		helix.WithSyncMaterialization(true)}}
	DeepDive = System{Name: "deepdive", Options: []helix.Option{
		helix.WithPolicy(helix.PolicyAlways), helix.WithReuse(false),
		helix.WithDPRSlowdown(2.0),
		helix.WithDiskThroughput(PaperDiskBytesPerSec),
		helix.WithSyncMaterialization(true)},
		DPROnly: true}
)

// Supports reproduces Table 2's support matrix: which systems can run
// which workloads. KeystoneML cannot express the structured-prediction IE
// workflow; DeepDive cannot express the custom-model genomics and MNIST
// workflows (paper §6.5.1).
func Supports(system, workload string) bool {
	switch system {
	case "keystoneml":
		return workload != "nlp"
	case "deepdive":
		return workload == "census" || workload == "nlp"
	default:
		return true
	}
}

// IterationMetrics captures one iteration's outcome for one system.
type IterationMetrics struct {
	Iteration int
	Type      core.Component
	// Seconds is the iteration's wall-clock run time (includes
	// materialization time, as the paper measures).
	Seconds float64
	// ProjectedSeconds is T(W,s) from Equation 1: what the executed plan
	// projected the iteration would cost under the known per-node
	// statistics. Comparing it against Seconds measures the cost model's
	// fidelity (0 at iteration 0, when no statistics exist yet).
	ProjectedSeconds float64
	// PlanSeconds is the iteration's planning share of Seconds: change
	// tracking, slicing, fingerprinting, and (unless the plan cache hit)
	// the OPT-EXEC-PLAN solve. Cold-vs-cached deltas of this column are
	// the plan cache's payoff.
	PlanSeconds float64
	// PlanCache reports how the iteration's plan was obtained: "cold",
	// "partial", or "hit".
	PlanCache string
	// Breakdown is per-component operator time (Figure 6).
	Breakdown map[core.Component]float64
	// MatSeconds is materialization overhead (Figure 6, gray). With
	// write-behind it largely overlaps computation instead of extending
	// Seconds.
	MatSeconds float64
	// FlushSeconds is the post-compute wait for write-behind stragglers
	// at the iteration's flush barrier (0 with SyncMaterialization).
	FlushSeconds float64
	// StorageBytes is cumulative store usage after the iteration
	// (Figure 9c,d).
	StorageBytes int64
	// PeakMemBytes/AvgMemBytes are heap statistics (Figure 10).
	PeakMemBytes, AvgMemBytes uint64
	// States counts live nodes per execution state (Figure 8).
	States map[core.State]int
	// Outputs holds the workflow's output values (correctness checks).
	Outputs map[string]any
}

// SeriesResult is a full multi-iteration run of one workload under one
// system.
type SeriesResult struct {
	Workload string
	System   string
	Metrics  []IterationMetrics
}

// Cumulative returns the running sum of iteration times.
func (s *SeriesResult) Cumulative() []float64 {
	out := make([]float64, len(s.Metrics))
	var total float64
	for i, m := range s.Metrics {
		total += m.Seconds
		out[i] = total
	}
	return out
}

// TotalSeconds returns the cumulative run time over all iterations.
func (s *SeriesResult) TotalSeconds() float64 {
	var total float64
	for _, m := range s.Metrics {
		total += m.Seconds
	}
	return total
}

// Config controls a simulated session.
type Config struct {
	// Iterations caps the number of iterations; 0 runs the workload's
	// full sequence.
	Iterations int
	// SampleMemory enables heap sampling (Figure 10); costs a goroutine.
	SampleMemory bool
	// StorageBudget overrides the session's byte budget (0 = default).
	StorageBudget int64
	// Dir is the materialization directory; empty uses a temp dir that is
	// removed afterwards.
	Dir string
	// Mat overrides the system's materialization pipeline (MatDefault
	// keeps the system's own setting). Used by the write-behind A/B
	// benchmark.
	Mat MatMode
	// Parallelism bounds the execution scheduler's worker pool (0 keeps
	// the session default of GOMAXPROCS).
	Parallelism int
	// PlanCache overrides the session's plan-cache setting (the zero
	// value keeps the default of enabled); PlanCacheOff forces a cold
	// solve every iteration, for A/B comparison.
	PlanCache helix.PlanCacheMode
	// Sched overrides the scheduler's ready-queue ordering (the zero
	// value keeps the default critical-path priority); SchedFIFO
	// restores pure arrival order, for A/B comparison.
	Sched helix.SchedMode
}

// MatMode selects how a simulated run materializes intermediates.
type MatMode int

const (
	// MatDefault keeps the System's configured pipeline (the predefined
	// systems are all paper-faithful inline).
	MatDefault MatMode = iota
	// MatSync forces inline write-through materialization.
	MatSync
	// MatAsync forces the write-behind pipeline.
	MatAsync
)

// NewWorkload constructs a fresh workload instance by name at the given
// scale. Fresh instances matter: mutations are stateful.
func NewWorkload(name string, scale workloads.Scale, seed int64) (workloads.Workload, error) {
	switch name {
	case "census":
		return workloads.NewCensus(scale, seed), nil
	case "census10x":
		return workloads.NewCensus10x(scale, seed), nil
	case "genomics":
		return workloads.NewGenomics(scale, seed), nil
	case "nlp":
		return workloads.NewIE(scale, seed), nil
	case "mnist":
		return workloads.NewMNIST(scale, seed), nil
	default:
		return nil, fmt.Errorf("sim: unknown workload %q", name)
	}
}

// runTally collects one iteration's structured run events. The observer
// is invoked serially by the engine; plan/flush/done are emitted on the
// Run caller's goroutine and re-plan events on worker goroutines the run
// joins before returning, so reading the tally after Run returns needs no
// extra synchronization.
type runTally struct {
	plan    *helix.PlanEvent
	flush   *helix.FlushEvent
	done    *helix.DoneEvent
	replans []helix.ReplanEvent
	stats   *helix.RunStatsEvent
}

func (t *runTally) observe(ev helix.RunEvent) {
	switch e := ev.(type) {
	case helix.PlanEvent:
		t.plan = &e
	case helix.FlushEvent:
		t.flush = &e
	case helix.DoneEvent:
		t.done = &e
	case helix.ReplanEvent:
		t.replans = append(t.replans, e)
	case helix.RunStatsEvent:
		t.stats = &e
	}
}

func (t *runTally) reset() { *t = runTally{} }

// RunSeries drives wl through its iteration sequence under the given
// system, returning per-iteration metrics. Iteration 0 runs the initial
// workflow; iteration t ≥ 1 first applies the sequence's mutation for t.
// Planning metrics (projection, planning time, cache outcome, state mix,
// flush wait) come from the session's structured event stream rather
// than post-hoc Result scraping.
func RunSeries(ctx context.Context, wl workloads.Workload, sys System, cfg Config) (*SeriesResult, error) {
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "helix-sim-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	var tally runTally
	opts := append([]helix.Option(nil), sys.Options...)
	opts = append(opts, helix.WithMemorySampling(cfg.SampleMemory))
	switch cfg.Mat {
	case MatSync:
		opts = append(opts, helix.WithSyncMaterialization(true))
	case MatAsync:
		opts = append(opts, helix.WithSyncMaterialization(false))
	}
	if cfg.StorageBudget > 0 {
		opts = append(opts, helix.WithStorageBudget(cfg.StorageBudget))
	}
	if cfg.Parallelism > 0 {
		opts = append(opts, helix.WithParallelism(cfg.Parallelism))
	}
	opts = append(opts,
		helix.WithPlanCache(cfg.PlanCache),
		helix.WithScheduler(cfg.Sched),
		helix.WithObserver(tally.observe))
	sess, err := helix.Open(dir, opts...)
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	seq := wl.Sequence()
	iters := cfg.Iterations
	if iters <= 0 || iters > len(seq) {
		iters = len(seq)
	}
	res := &SeriesResult{Workload: wl.Name(), System: sys.Name}
	for t := 0; t < iters; t++ {
		if t > 0 {
			if sys.DPROnly && seq[t] != core.DPR {
				break // DeepDive cannot express this iteration
			}
			wl.Mutate(t, seq[t])
		}
		tally.reset()
		out, err := sess.Run(ctx, wl.Build())
		if err != nil {
			return nil, fmt.Errorf("sim: %s/%s iteration %d: %w", wl.Name(), sys.Name, t, err)
		}
		m := IterationMetrics{
			Iteration:    t,
			Type:         seq[t],
			Seconds:      out.Wall.Seconds(),
			Breakdown:    make(map[core.Component]float64, 3),
			MatSeconds:   out.MatTime.Seconds(),
			StorageBytes: out.StorageBytes,
			PeakMemBytes: out.PeakMemBytes,
			AvgMemBytes:  out.AvgMemBytes,
			Outputs:      out.Values,
		}
		// Planning and barrier metrics come from the run's event stream —
		// the same typed events a live progress consumer sees.
		if p := tally.plan; p != nil {
			m.ProjectedSeconds = p.ProjectedSeconds
			m.PlanSeconds = p.PlanTime.Seconds()
			m.PlanCache = p.Outcome.String()
			m.States = map[core.State]int{
				core.StateCompute: p.Compute,
				core.StateLoad:    p.Load,
				core.StatePrune:   p.Prune,
			}
		}
		if f := tally.flush; f != nil {
			m.FlushSeconds = f.Wait.Seconds()
		}
		for comp, d := range out.Breakdown {
			m.Breakdown[comp] = d.Seconds()
		}
		res.Metrics = append(res.Metrics, m)
	}
	return res, nil
}
