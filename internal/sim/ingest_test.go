package sim

import (
	"context"
	"testing"

	"helix/internal/workloads"
)

// TestContinuousIngest pins the ingest acceptance criteria: over the
// default schedule the long-lived session must plan via BOTH partial hits
// (delivery ticks dirty one slot chain plus the windowed suffix) and full
// fingerprint hits (quiet stretches), never re-solve cold after tick 0,
// and accumulate positive reuse savings.
func TestContinuousIngest(t *testing.T) {
	rep, err := RunIngest(context.Background(), IngestConfig{
		Window:      3,
		Scale:       workloads.Scale{},
		Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ColdPlans != 1 {
		t.Errorf("cold plans = %d, want exactly 1 (tick 0)", rep.ColdPlans)
	}
	if rep.PartialHits == 0 {
		t.Error("no partial plan-cache hits: deliveries should dirty only one weak component")
	}
	if rep.FullHits == 0 {
		t.Error("no full plan-cache hits: quiet stretches should reach a byte-stable fingerprint")
	}
	if rep.TotalSavedSeconds <= 0 {
		t.Errorf("TotalSavedSeconds = %f, want > 0", rep.TotalSavedSeconds)
	}
	// Savings must come from real per-tick reuse, not one lucky tick: every
	// tick after the cold build either loads or prunes clean work.
	for _, tk := range rep.Ticks[1:] {
		if tk.Loaded+tk.Pruned == 0 {
			t.Errorf("tick %d: no loads or prunes — nothing reused", tk.Tick)
		}
	}
	if rep.Ticks[0].PlanCache != "cold" {
		t.Errorf("tick 0 plan cache = %q, want cold", rep.Ticks[0].PlanCache)
	}
	t.Logf("\n%s", rep.String())
}

// TestContinuousIngestSliding runs the same schedule with sliding-window
// semantics: a delivery evicts the ring's oldest batch instead of
// replacing a scheduled slot. The reuse profile must survive the switch —
// a slide dirties exactly one slot chain plus the windowed suffix (the
// synthesizer's param carries the ring head), so deliveries stay partial
// plan-cache hits, quiet stretches still converge to full hits, and the
// W-1 surviving slot chains are served from the store every tick.
func TestContinuousIngestSliding(t *testing.T) {
	rep, err := RunIngest(context.Background(), IngestConfig{
		Window:      3,
		Sliding:     true,
		Scale:       workloads.Scale{},
		Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "sliding" {
		t.Fatalf("mode = %q, want sliding", rep.Mode)
	}
	if rep.ColdPlans != 1 {
		t.Errorf("cold plans = %d, want exactly 1 (tick 0): slides must not defeat incremental planning", rep.ColdPlans)
	}
	if rep.PartialHits == 0 {
		t.Error("no partial plan-cache hits: a slide should dirty only one weak component")
	}
	if rep.FullHits == 0 {
		t.Error("no full plan-cache hits: quiet stretches should reach a byte-stable fingerprint")
	}
	for _, tk := range rep.Ticks[1:] {
		if tk.Loaded+tk.Pruned == 0 {
			t.Errorf("tick %d: no loads or prunes — surviving window slots not reused", tk.Tick)
		}
		// A slide can dirty at most one 3-node slot chain plus the 3-node
		// windowed suffix; recomputing more means eviction invalidated a
		// surviving batch.
		if tk.Slot >= 0 && tk.Computed > 6 {
			t.Errorf("tick %d: computed %d nodes on a slide, want ≤ 6 (one chain + suffix)", tk.Tick, tk.Computed)
		}
	}
	if rep.TotalSavedSeconds <= 0 {
		t.Errorf("TotalSavedSeconds = %f, want > 0", rep.TotalSavedSeconds)
	}
	t.Logf("\n%s", rep.String())
}
