package sim

import (
	"context"
	"fmt"
	"os"

	"helix"
	"helix/internal/core"
	"helix/internal/workloads"
)

// IngestConfig configures a continuous-ingest simulation (the streaming
// adaptation of §5.3 run as a long-lived session instead of per-iteration
// development).
type IngestConfig struct {
	// Window is the number of batch slots (0 = 4).
	Window int
	// Schedule lists, per tick, the slot receiving a new batch, or -1 for
	// a quiet tick (no new data; the pipeline re-runs unchanged). Nil uses
	// DefaultIngestSchedule(Window).
	Schedule []int
	// Sliding switches the window semantics from tumbling (a delivery
	// replaces the scheduled slot in place) to sliding (a delivery evicts
	// the oldest batch from the ring; the schedule's slot value only
	// distinguishes delivery from quiet ticks).
	Sliding bool
	// Scale multiplies the per-batch row count.
	Scale workloads.Scale
	// Dir is the materialization directory; empty uses a temp dir that is
	// removed afterwards.
	Dir string
	// Parallelism bounds the worker pool (0 = session default).
	Parallelism int
	// StorageBudget overrides the session's byte budget (0 = default).
	StorageBudget int64
}

// DefaultIngestSchedule is the canonical tick pattern: an initial build,
// one delivery per slot (each a partial plan-cache hit dirtying one slot
// chain plus the windowed suffix), then alternating bursts and quiet
// stretches. Every quiet stretch is ≥3 ticks long: the first quiet tick
// still re-measures nothing but loads (partial hit), and from the second
// consecutive no-compute tick on, the plan fingerprint is byte-stable and
// the cache serves full hits.
func DefaultIngestSchedule(window int) []int {
	s := []int{-1}
	for i := 0; i < window; i++ {
		s = append(s, i)
	}
	s = append(s, -1, -1, -1)
	s = append(s, 0%window, -1, -1, -1)
	s = append(s, 1%window, -1, -1, -1)
	return s
}

// IngestTick is one tick's outcome.
type IngestTick struct {
	// Tick is the 0-based tick index.
	Tick int `json:"tick"`
	// Slot is the slot that received a batch this tick, or -1 (quiet).
	Slot int `json:"slot"`
	// Seconds is the tick's wall-clock run time.
	Seconds float64 `json:"seconds"`
	// PlanSeconds is the planning share of Seconds.
	PlanSeconds float64 `json:"plan_seconds"`
	// PlanCache is the plan-cache outcome: "cold", "partial", or "hit".
	PlanCache string `json:"plan_cache"`
	// Computed/Loaded/Pruned count live nodes per assigned state.
	Computed int `json:"computed"`
	Loaded   int `json:"loaded"`
	Pruned   int `json:"pruned"`
	// ReuseSavedSeconds estimates the compute time reuse avoided this
	// tick: for every live node served by a store load, the node's known
	// compute cost minus the actual load time; for every live node pruned
	// outright, its full compute cost.
	ReuseSavedSeconds float64 `json:"reuse_saved_seconds"`
	// StorageBytes is cumulative store usage after the tick.
	StorageBytes int64 `json:"storage_bytes"`
}

// IngestReport aggregates a continuous-ingest run.
type IngestReport struct {
	Window      int          `json:"window"`
	Mode        string       `json:"mode"`
	Ticks       []IngestTick `json:"ticks"`
	ColdPlans   int          `json:"cold_plans"`
	PartialHits int          `json:"partial_hits"`
	FullHits    int          `json:"full_hits"`
	// TotalSeconds sums tick wall-clock times; TotalSavedSeconds sums
	// per-tick reuse savings.
	TotalSeconds      float64 `json:"total_seconds"`
	TotalSavedSeconds float64 `json:"total_saved_seconds"`
}

// PartialHitRate is the fraction of ticks planned via a partial hit.
func (r *IngestReport) PartialHitRate() float64 {
	if len(r.Ticks) == 0 {
		return 0
	}
	return float64(r.PartialHits) / float64(len(r.Ticks))
}

// String renders the per-tick table helixbench prints.
func (r *IngestReport) String() string {
	out := fmt.Sprintf("Continuous ingest (%d %s slots, %d ticks): %d cold / %d partial / %d full-hit plans, %.1f%% partial-hit rate\n",
		r.Window, r.Mode, len(r.Ticks), r.ColdPlans, r.PartialHits, r.FullHits, 100*r.PartialHitRate())
	out += fmt.Sprintf("total %.3fs wall, ≈%.3fs compute avoided by reuse\n", r.TotalSeconds, r.TotalSavedSeconds)
	out += "tick  slot   cache    wall(s)  plan(s)  C/L/P     saved(s)\n"
	for _, t := range r.Ticks {
		slot := "-"
		if t.Slot >= 0 {
			slot = fmt.Sprintf("%d", t.Slot)
		}
		out += fmt.Sprintf("%-5d %-6s %-8s %-8.3f %-8.4f %d/%d/%-5d %.3f\n",
			t.Tick, slot, t.PlanCache, t.Seconds, t.PlanSeconds,
			t.Computed, t.Loaded, t.Pruned, t.ReuseSavedSeconds)
	}
	return out
}

// RunIngest drives the continuous-ingest workload through cfg.Schedule in
// one long-lived session (helix-opt configuration: PolicyOpt at the
// paper's disk throughput) and reports per-tick plan-cache outcomes and
// reuse savings. Batch ids are tick numbers, so every delivery is new
// data.
func RunIngest(ctx context.Context, cfg IngestConfig) (*IngestReport, error) {
	workloads.RegisterAll()
	window := cfg.Window
	if window <= 0 {
		window = 4
	}
	schedule := cfg.Schedule
	if schedule == nil {
		schedule = DefaultIngestSchedule(window)
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "helix-ingest-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}

	var tally runTally
	opts := []helix.Option{
		helix.WithPolicy(helix.PolicyOpt),
		helix.WithDiskThroughput(PaperDiskBytesPerSec),
		helix.WithObserver(tally.observe),
	}
	if cfg.Parallelism > 0 {
		opts = append(opts, helix.WithParallelism(cfg.Parallelism))
	}
	if cfg.StorageBudget > 0 {
		opts = append(opts, helix.WithStorageBudget(cfg.StorageBudget))
	}
	sess, err := helix.Open(dir, opts...)
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	wl := workloads.NewIngest(window, cfg.Scale)
	if cfg.Sliding {
		wl = workloads.NewSlidingIngest(window, cfg.Scale)
	}
	rep := &IngestReport{Window: window, Mode: wl.Mode()}
	for tick, slot := range schedule {
		if slot >= 0 {
			if cfg.Sliding {
				wl.Slide(tick + 1)
			} else {
				wl.Deliver(slot, tick+1)
			}
		}
		tally.reset()
		res, err := sess.Run(ctx, wl.Build())
		if err != nil {
			return nil, fmt.Errorf("sim: ingest tick %d: %w", tick, err)
		}
		t := IngestTick{
			Tick:         tick,
			Slot:         slot,
			Seconds:      res.Wall.Seconds(),
			StorageBytes: res.StorageBytes,
		}
		if p := tally.plan; p != nil {
			t.PlanSeconds = p.PlanTime.Seconds()
			t.PlanCache = p.Outcome.String()
			t.Computed, t.Loaded, t.Pruned = p.Compute, p.Load, p.Prune
			switch p.Outcome {
			case helix.PlanCacheCold:
				rep.ColdPlans++
			case helix.PlanCachePartial:
				rep.PartialHits++
			case helix.PlanCacheHit:
				rep.FullHits++
			}
		}
		// Reuse savings: known compute cost avoided, net of the load time
		// actually paid. Costs come from the executed plan's solver inputs
		// (measured statistics from earlier ticks), load times from the
		// run's per-node reports.
		for _, np := range res.Plan.Nodes {
			if !np.Live {
				continue
			}
			switch np.State {
			case core.StateLoad:
				t.ReuseSavedSeconds += np.Costs.Compute - res.Nodes[np.Node.Name].Seconds
			case core.StatePrune:
				t.ReuseSavedSeconds += np.Costs.Compute
			}
		}
		rep.TotalSeconds += t.Seconds
		rep.TotalSavedSeconds += t.ReuseSavedSeconds
		rep.Ticks = append(rep.Ticks, t)
	}
	return rep, nil
}
