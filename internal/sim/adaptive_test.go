package sim

import (
	"context"
	"testing"
)

// TestRunAdaptiveBeatsStaticOnSkew is the end-to-end adaptive acceptance
// scenario: on the tick where the carried cost model is ~20× wrong, the
// adaptive session re-plans mid-run and finishes well ahead of the static
// session; on every other tick the two are equivalent.
func TestRunAdaptiveBeatsStaticOnSkew(t *testing.T) {
	rep, err := RunAdaptive(context.Background(), Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, ad := rep.Static.SkewTick(), rep.Adaptive.SkewTick()

	// The static baseline must never re-plan; the adaptive run must.
	for _, tick := range rep.Static.Ticks {
		if tick.Replans != 0 || tick.Swapped != 0 {
			t.Fatalf("static tick %d re-planned: %+v", tick.Iteration, tick)
		}
	}
	if ad.Replans < 1 {
		t.Fatalf("adaptive skew tick never re-planned: %+v", ad)
	}
	if ad.Swapped < 1 {
		t.Fatalf("adaptive skew tick swapped nothing to loads: %+v", ad)
	}
	// Solve bounding: initial solve plus at most the default budget.
	if ad.Solves > 1+3 {
		t.Fatalf("adaptive skew tick consumed %d solves, budget allows 4", ad.Solves)
	}

	// The payoff: adaptation must beat the static recompute decisively on
	// the skewed tick (the probe shows ~3.5×; 25% margin keeps CI noise
	// out), and its corrected projection must track reality more closely.
	if ad.Seconds >= st.Seconds*0.75 {
		t.Fatalf("adaptive skew tick %.3fs not decisively faster than static %.3fs", ad.Seconds, st.Seconds)
	}
	if ad.GapSeconds >= st.GapSeconds {
		t.Fatalf("adaptive projection gap %.3fs not tighter than static %.3fs", ad.GapSeconds, st.GapSeconds)
	}

	// Tick 2: post-run observation has corrected the carried statistics in
	// both sessions, so even the static one plans the cheap path — the two
	// modes should be back within noise of each other.
	st2, ad2 := rep.Static.Ticks[2], rep.Adaptive.Ticks[2]
	if st2.Seconds > rep.Static.SkewTick().Seconds/2 {
		t.Fatalf("static tick 2 (%.3fs) did not recover from the skew tick (%.3fs): carried statistics failed to self-correct", st2.Seconds, rep.Static.SkewTick().Seconds)
	}
	// Tick 2's plan is usually already right for the adaptive session too —
	// but loading through the skew tick means some operators were never
	// re-measured, so when sampling noise leaves the shared-signature
	// statistics borderline, one more corrective round is legitimate. What
	// must hold is that tick 2 stays bounded and cheap: within the solve
	// budget and nowhere near the static session's skew-tick cost.
	if ad2.Solves > 1+3 {
		t.Fatalf("adaptive tick 2 consumed %d solves, budget allows 4: %+v", ad2.Solves, ad2)
	}
	if ad2.Seconds >= st.Seconds*0.75 {
		t.Fatalf("adaptive tick 2 (%.3fs) regressed toward static-skew cost (%.3fs)", ad2.Seconds, st.Seconds)
	}
}
