package sim

import (
	"context"
	"testing"

	"helix/internal/core"
	"helix/internal/workloads"
)

func init() { workloads.RegisterAll() }

func tinyScale() workloads.Scale { return workloads.Scale{Rows: 0, CostFactor: 2} }

func TestSupportsMatchesTable2(t *testing.T) {
	cases := []struct {
		system, workload string
		want             bool
	}{
		{"helix-opt", "census", true},
		{"helix-opt", "genomics", true},
		{"helix-opt", "nlp", true},
		{"helix-opt", "mnist", true},
		{"keystoneml", "census", true},
		{"keystoneml", "genomics", true},
		{"keystoneml", "nlp", false},
		{"keystoneml", "mnist", true},
		{"deepdive", "census", true},
		{"deepdive", "genomics", false},
		{"deepdive", "nlp", true},
		{"deepdive", "mnist", false},
	}
	for _, c := range cases {
		if got := Supports(c.system, c.workload); got != c.want {
			t.Errorf("Supports(%s, %s) = %v, want %v", c.system, c.workload, got, c.want)
		}
	}
}

func TestNewWorkloadNames(t *testing.T) {
	for _, name := range []string{"census", "census10x", "genomics", "nlp", "mnist"} {
		wl, err := NewWorkload(name, tinyScale(), 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if wl == nil {
			t.Fatalf("%s: nil workload", name)
		}
	}
	if _, err := NewWorkload("nope", tinyScale(), 1); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestRunSeriesCensusHelixOpt(t *testing.T) {
	wl, err := NewWorkload("census", tinyScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSeries(context.Background(), wl, HelixOpt, Config{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != 4 {
		t.Fatalf("metrics = %d iterations", len(res.Metrics))
	}
	cum := res.Cumulative()
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatal("cumulative time decreased")
		}
	}
	if res.TotalSeconds() <= 0 {
		t.Fatal("zero total time")
	}
	for _, m := range res.Metrics {
		if len(m.Outputs) == 0 {
			t.Fatalf("iteration %d produced no outputs", m.Iteration)
		}
	}
}

func TestRunSeriesDeepDiveStopsAtNonDPR(t *testing.T) {
	wl, err := NewWorkload("census", tinyScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSeries(context.Background(), wl, DeepDive, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The census sequence is DPR,DPR,DPR,PPR,...: DeepDive runs 3.
	if len(res.Metrics) != 3 {
		t.Fatalf("DeepDive ran %d iterations, want 3 (DPR prefix)", len(res.Metrics))
	}
	for _, m := range res.Metrics {
		if m.Type != core.DPR {
			t.Fatal("DeepDive ran a non-DPR iteration")
		}
	}
}

func TestRunSeriesReuseBeatsNoReuse(t *testing.T) {
	// The core claim of the paper at unit-test scale: HELIX OPT's
	// cumulative time over PPR-heavy iterations is below KeystoneML's.
	ctx := context.Background()
	wlA, _ := NewWorkload("census", tinyScale(), 1)
	optRes, err := RunSeries(ctx, wlA, HelixOpt, Config{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	wlB, _ := NewWorkload("census", tinyScale(), 1)
	ksRes, err := RunSeries(ctx, wlB, KeystoneML, Config{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if optRes.TotalSeconds() >= ksRes.TotalSeconds() {
		t.Fatalf("helix-opt %.3fs ≥ keystoneml %.3fs: no cross-iteration gain",
			optRes.TotalSeconds(), ksRes.TotalSeconds())
	}
}

func TestRunSeriesOutputsAgreeAcrossSystems(t *testing.T) {
	// Theorem 1 at the system level: HELIX OPT must produce the same
	// numeric outputs as a from-scratch system on the same sequence.
	ctx := context.Background()
	wlA, _ := NewWorkload("census", tinyScale(), 1)
	opt, err := RunSeries(ctx, wlA, HelixOpt, Config{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	wlB, _ := NewWorkload("census", tinyScale(), 1)
	ks, err := RunSeries(ctx, wlB, KeystoneML, Config{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range opt.Metrics {
		a := opt.Metrics[i].Outputs["checked"].(workloads.EvalReport)
		b := ks.Metrics[i].Outputs["checked"].(workloads.EvalReport)
		if a.Metrics["accuracy"] != b.Metrics["accuracy"] {
			t.Fatalf("iteration %d: accuracy %v vs %v (Theorem 1 violated)",
				i, a.Metrics["accuracy"], b.Metrics["accuracy"])
		}
	}
}

func TestRunSeriesStateCountsRecorded(t *testing.T) {
	wl, _ := NewWorkload("census", tinyScale(), 1)
	res, err := RunSeries(context.Background(), wl, HelixOpt, Config{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	m0 := res.Metrics[0]
	if m0.States[core.StateCompute] == 0 {
		t.Fatal("iteration 0 should compute nodes")
	}
	m1 := res.Metrics[1]
	total := m1.States[core.StateCompute] + m1.States[core.StateLoad] + m1.States[core.StatePrune]
	if total == 0 {
		t.Fatal("iteration 1 recorded no states")
	}
	if m1.States[core.StatePrune] == 0 && m1.States[core.StateLoad] == 0 {
		t.Fatal("iteration 1 should reuse something (load or prune)")
	}
}
